package reconcile

import (
	"errors"
	"fmt"
	"io"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/snapshot"
)

// Ranged checkpointing: a single huge job's checkpoint is one serial encode
// and one serial replay however many cores the store has. A
// RangedCheckpointer splits the session state into per-node-range shards —
// each a well-formed state carried by the existing full/delta codec — plus
// one small manifest record holding everything global, so a store can
// encode, fsync, and replay the shards in parallel and commit the
// checkpoint by writing the manifest last. Restoring (manifest + shards),
// with deltas replayed per shard, merges back to the identical state; the
// kill-anywhere/resume-bit-identically guarantee holds unchanged across
// ranged and monolithic chains (pinned by the ranged resume-equivalence
// suite).

// MaxStateRanges is the largest shard count a ranged checkpoint may use.
const MaxStateRanges = core.MaxStateRanges

// StateRangeCount returns the shard count for a graph pair:
// ceil((n1+n2)/targetNodes) clamped to [1, MaxStateRanges]; non-positive
// targetNodes disables sharding (returns 1). A count of 1 means ranged and
// monolithic checkpoints coincide — stores use the plain Checkpointer
// there.
func StateRangeCount(n1, n2, targetNodes int) int {
	return core.RangeCount(n1, n2, targetNodes)
}

// RangeManifest is a decoded manifest record: the global half of a ranged
// checkpoint, binding its shards together.
type RangeManifest struct {
	m *core.RangeManifest
}

// Ranges returns the shard count the manifest's checkpoint was written
// with.
func (m *RangeManifest) Ranges() int { return m.m.Ranges }

// ReadRangeManifest reads a manifest record written by
// RangedCheckpoint.EncodeManifest.
func ReadRangeManifest(r io.Reader) (*RangeManifest, error) {
	man, err := snapshot.ReadManifest(r)
	if err != nil {
		return nil, err
	}
	return &RangeManifest{m: man}, nil
}

// MergeRangeParts reassembles the session state from a manifest and its
// shard states (fulls, or fulls advanced by per-shard deltas via Apply).
// The shards are cross-checked against the manifest — geometry, repeated
// fingerprints, totals — so a torn or mixed checkpoint fails cleanly here
// rather than restoring something subtly wrong.
func MergeRangeParts(man *RangeManifest, parts []*SessionState) (*SessionState, error) {
	if man == nil {
		return nil, errors.New("reconcile: merge: nil manifest")
	}
	sts := make([]*core.SessionState, len(parts))
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("reconcile: merge: nil shard %d", i)
		}
		sts[i] = p.st
	}
	merged, err := core.MergeStateRanges(man.m, sts)
	if err != nil {
		return nil, err
	}
	return &SessionState{st: merged}, nil
}

// A RangedCheckpointer writes a checkpoint chain sharded into a fixed
// number of node ranges. Each checkpoint is prepared as one unit (Prepare),
// encoded to the caller's writers in any order or in parallel (EncodePart,
// EncodeManifest), and committed (Commit) once every write durably landed —
// the same ownership-of-durability contract as Checkpointer, extended to a
// multi-file checkpoint. Drive it between runs or from a progress hook,
// never concurrently with a run.
type RangedCheckpointer struct {
	ranges int
	bases  []*core.SessionState
}

// NewRangedCheckpointer returns a checkpointer writing chains of the given
// shard count, clamped to [1, MaxStateRanges]. The count is fixed for the
// life of the chain: recovery must merge with the same geometry the chain
// was written with.
func NewRangedCheckpointer(ranges int) *RangedCheckpointer {
	if ranges < 1 {
		ranges = 1
	}
	if ranges > MaxStateRanges {
		ranges = MaxStateRanges
	}
	return &RangedCheckpointer{ranges: ranges}
}

// Ranges returns the fixed shard count.
func (c *RangedCheckpointer) Ranges() int { return c.ranges }

// Reset drops the delta base: the next Prepare must be a full. Call it
// after a failed or discarded write, exactly like starting a new
// Checkpointer chain.
func (c *RangedCheckpointer) Reset() { c.bases = nil }

// A RangedCheckpoint is one prepared checkpoint: a manifest plus Ranges()
// shard records, all frozen from a single ExportState and safe to encode
// from any goroutine until Commit or abandonment.
type RangedCheckpoint struct {
	full   bool
	man    *core.RangeManifest
	parts  []*core.SessionState
	deltas []*core.StateDelta
}

// Full reports whether the shards are full state records (true) or delta
// records against the previous committed checkpoint (false).
func (ck *RangedCheckpoint) Full() bool { return ck.full }

// Ranges returns the checkpoint's shard count.
func (ck *RangedCheckpoint) Ranges() int { return len(ck.parts) }

// EncodeManifest writes the manifest record. Stores write it after every
// shard landed: its durable presence is the checkpoint's commit point.
func (ck *RangedCheckpoint) EncodeManifest(w io.Writer) error {
	return snapshot.WriteManifest(w, ck.man)
}

// EncodePart writes shard i — a state record when Full, a delta record
// otherwise. Parts may be encoded concurrently (each to its own writer).
func (ck *RangedCheckpoint) EncodePart(i int, w io.Writer) error {
	if i < 0 || i >= len(ck.parts) {
		return fmt.Errorf("reconcile: ranged checkpoint has no part %d (ranges %d)", i, len(ck.parts))
	}
	if ck.full {
		return snapshot.WriteState(w, ck.parts[i])
	}
	return snapshot.WriteDelta(w, ck.deltas[i])
}

// Prepare exports the Reconciler's state and splits it into the next
// checkpoint of the chain. With wantFull false it prepares per-shard deltas
// against the previous committed checkpoint, freezing the pair-log cut at
// the base geometry so every shard diffs as a pure prefix; if there is no
// base, or any shard is not delta-expressible (seed ingestion, engine
// switch), nothing is prepared and ErrFullRequired says to retry with
// wantFull true.
func (c *RangedCheckpointer) Prepare(r *Reconciler, wantFull bool) (*RangedCheckpoint, error) {
	st := r.sess.ExportState()
	if wantFull {
		man, parts, err := core.SplitStateRanges(st, c.ranges, nil)
		if err != nil {
			return nil, err
		}
		return &RangedCheckpoint{full: true, man: man, parts: parts}, nil
	}
	if c.bases == nil {
		return nil, ErrFullRequired
	}
	man, parts, err := core.SplitStateRanges(st, c.ranges, core.PairChunkStarts(c.bases))
	if err != nil {
		// A frozen cut that no longer fits the state means the session
		// moved somewhere deltas do not express; restart the chain.
		return nil, fmt.Errorf("%w: %v", ErrFullRequired, err)
	}
	deltas := make([]*core.StateDelta, c.ranges)
	for i := range parts {
		d, err := core.DiffStates(c.bases[i], parts[i])
		if err != nil {
			if errors.Is(err, core.ErrNotDiffable) {
				return nil, fmt.Errorf("%w: %v", ErrFullRequired, err)
			}
			return nil, err
		}
		deltas[i] = d
	}
	return &RangedCheckpoint{man: man, parts: parts, deltas: deltas}, nil
}

// Commit makes ck the base the next delta Prepare diffs against. Call it
// only after every shard and the manifest durably landed; on any failure,
// abandon ck (and Reset if a previous base may now be ahead of disk).
func (c *RangedCheckpointer) Commit(ck *RangedCheckpoint) {
	c.bases = ck.parts
}

// Clone returns an independent copy of the state value: Apply on the clone
// leaves the original untouched. Recovery paths use it to replay a delta
// set all-or-nothing — advance copies, keep the originals if any shard's
// record turns out torn.
func (s *SessionState) Clone() *SessionState {
	st := *s.st
	return &SessionState{st: &st}
}
