package reconcile_test

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end. Each example
// is deterministic (fixed seeds), so beyond "it runs", the test checks one
// load-bearing line of each output.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries")
	}
	cases := []struct {
		dir      string
		mustShow string
	}{
		{"./examples/quickstart", "discovered"},
		{"./examples/deanonymize", "re-identified"},
		{"./examples/crosslingual", "matched"},
		{"./examples/attack", "real users identified"},
		{"./examples/friendsuggest", "cross-network suggestions"},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			cmd := exec.Command("go", "run", c.dir)
			cmd.Env = os.Environ()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.mustShow) {
				t.Fatalf("%s output missing %q:\n%s", c.dir, c.mustShow, out)
			}
		})
	}
}
