package reconcile_test

// Benchmark harness: one benchmark per table and figure of the paper's
// Section 5 (each regenerates the corresponding experiment at bench scale
// and reports its headline quantities as custom metrics), plus
// micro-benchmarks for the matcher itself and the design-choice ablations
// called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks run the scaled stand-ins (the paper's graphs reach 121M nodes);
// see EXPERIMENTS.md for the paper-vs-measured comparison at these scales
// and cmd/experiments for larger runs.

import (
	"context"
	"io"
	"testing"

	"github.com/sociograph/reconcile"
	"github.com/sociograph/reconcile/internal/baseline"
	"github.com/sociograph/reconcile/internal/experiments"
)

// benchConfig sizes the experiment stand-ins for benchmarking.
func benchConfig() experiments.Config {
	return experiments.Config{Scale: 0.02, Seed: 1, RMATBase: 12}
}

// BenchmarkFigure2 regenerates Figure 2 (PA + random deletion; recall by
// seed probability and threshold, precision ~100%).
func BenchmarkFigure2(b *testing.B) {
	cfg := benchConfig()
	var good, bad int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure2Data(cfg)
		if err != nil {
			b.Fatal(err)
		}
		good, bad = 0, 0
		for _, row := range rows {
			good += row.Counts.Good
			bad += row.Counts.Bad
		}
	}
	b.ReportMetric(float64(good), "good")
	b.ReportMetric(float64(bad), "bad")
}

// BenchmarkTable2 regenerates Table 2 (relative running time on growing
// RMAT graphs); the interesting metric is the largest-to-smallest ratio.
func BenchmarkTable2(b *testing.B) {
	cfg := benchConfig()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2Data(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[len(rows)-1].Relative
	}
	b.ReportMetric(ratio, "rel-time-largest")
}

// BenchmarkTable3Facebook regenerates Table 3 (left).
func BenchmarkTable3Facebook(b *testing.B) {
	benchGoodBad(b, experiments.Table3FacebookData)
}

// BenchmarkTable3Enron regenerates Table 3 (right).
func BenchmarkTable3Enron(b *testing.B) {
	benchGoodBad(b, experiments.Table3EnronData)
}

// BenchmarkTable4 regenerates Table 4 (correlated community deletion).
func BenchmarkTable4(b *testing.B) {
	benchGoodBad(b, experiments.Table4Data)
}

// BenchmarkTable5DBLP regenerates Table 5 (top left).
func BenchmarkTable5DBLP(b *testing.B) {
	benchGoodBad(b, experiments.Table5DBLPData)
}

// BenchmarkTable5Gowalla regenerates Table 5 (top right).
func BenchmarkTable5Gowalla(b *testing.B) {
	benchGoodBad(b, experiments.Table5GowallaData)
}

// BenchmarkTable5Wikipedia regenerates Table 5 (bottom).
func BenchmarkTable5Wikipedia(b *testing.B) {
	benchGoodBad(b, experiments.Table5WikipediaData)
}

func benchGoodBad(b *testing.B, data func(experiments.Config) ([]experiments.GoodBadRow, error)) {
	b.Helper()
	cfg := benchConfig()
	var good, bad int
	for i := 0; i < b.N; i++ {
		rows, err := data(cfg)
		if err != nil {
			b.Fatal(err)
		}
		good, bad = 0, 0
		for _, row := range rows {
			good += row.Counts.Good
			bad += row.Counts.Bad
		}
	}
	b.ReportMetric(float64(good), "good")
	b.ReportMetric(float64(bad), "bad")
}

// BenchmarkFigure3 regenerates Figure 3 (cascade-model copies).
func BenchmarkFigure3(b *testing.B) {
	cfg := benchConfig()
	var good, bad int
	var recall float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3Data(cfg)
		if err != nil {
			b.Fatal(err)
		}
		good, bad = 0, 0
		for _, row := range rows {
			good += row.Counts.Good
			bad += row.Counts.Bad
			recall = row.Recall
		}
	}
	b.ReportMetric(float64(good), "good")
	b.ReportMetric(float64(bad), "bad")
	b.ReportMetric(recall, "recall-last")
}

// BenchmarkFigure4 regenerates Figure 4 (precision/recall vs degree).
func BenchmarkFigure4(b *testing.B) {
	cfg := benchConfig()
	var buckets int
	for i := 0; i < b.N; i++ {
		data, err := experiments.Figure4Curves(cfg)
		if err != nil {
			b.Fatal(err)
		}
		buckets = len(data.Gowalla) + len(data.DBLP)
	}
	b.ReportMetric(float64(buckets), "buckets")
}

// BenchmarkAttack regenerates the robustness-to-attack experiment.
func BenchmarkAttack(b *testing.B) {
	cfg := benchConfig()
	var data *experiments.AttackData
	for i := 0; i < b.N; i++ {
		var err error
		data, err = experiments.AttackRun(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(data.Core.Good), "core-good")
	b.ReportMetric(float64(data.Core.Bad), "core-bad")
	b.ReportMetric(float64(data.Baseline.Good), "baseline-good")
}

// BenchmarkAblationBucketing regenerates the degree-bucketing ablation and
// the straightforward-baseline comparison.
func BenchmarkAblationBucketing(b *testing.B) {
	cfg := benchConfig()
	var data *experiments.AblationData
	for i := 0; i < b.N; i++ {
		var err error
		data, err = experiments.AblationRun(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(data.Bucketed.Bad), "bucketed-bad")
	b.ReportMetric(float64(data.Unbucketed.Bad), "unbucketed-bad")
}

// --- matcher micro-benchmarks (per-edge cost, engine comparison) ---

type benchInstance struct {
	g1, g2 *reconcile.Graph
	seeds  []reconcile.Pair
}

func makeInstance(n, m int) benchInstance {
	r := reconcile.NewRand(99)
	g := reconcile.GeneratePA(r, n, m)
	g1, g2 := reconcile.IndependentCopies(r, g, 0.5, 0.5)
	seeds := reconcile.Seeds(r, reconcile.IdentityPairs(n), 0.10)
	return benchInstance{g1, g2, seeds}
}

// BenchmarkReconcilePA measures the end-to-end matcher on a PA instance
// (n=20k, m=20 — Figure 2's shape at bench scale), default (hybrid)
// engine.
func BenchmarkReconcilePA(b *testing.B) {
	inst := makeInstance(20000, 20)
	opts := reconcile.DefaultOptions()
	edges := float64(inst.g1.NumEdges() + inst.g2.NumEdges())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reconcile.Reconcile(inst.g1, inst.g2, inst.seeds, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(edges, "edges")
}

// BenchmarkReconcileSequential is the single-threaded reference cost.
func BenchmarkReconcileSequential(b *testing.B) {
	inst := makeInstance(10000, 10)
	opts := reconcile.DefaultOptions()
	opts.Engine = reconcile.EngineSequential
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reconcile.Reconcile(inst.g1, inst.g2, inst.seeds, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconcileParallel is the same instance on the parallel engine —
// the speedup over BenchmarkReconcileSequential is the scalability headline.
func BenchmarkReconcileParallel(b *testing.B) {
	inst := makeInstance(10000, 10)
	opts := reconcile.DefaultOptions()
	opts.Engine = reconcile.EngineParallel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reconcile.Reconcile(inst.g1, inst.g2, inst.seeds, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconcileFrontier is the same instance on the frontier engine —
// identical output to BenchmarkReconcileSequential/Parallel with only the
// dirty neighborhoods of committed links re-scored each pass. The ratio to
// BenchmarkReconcileParallel is the incremental-scheduling headline tracked
// in BENCH_engines.json.
func BenchmarkReconcileFrontier(b *testing.B) {
	inst := makeInstance(10000, 10)
	opts := reconcile.DefaultOptions()
	opts.Engine = reconcile.EngineFrontier
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reconcile.Reconcile(inst.g1, inst.g2, inst.seeds, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconcileHybrid is the same instance on the hybrid engine — the
// default. Cold batch runs stay in the parallel regime until the commit rate
// decays, so this row must track BenchmarkReconcileParallel, not
// BenchmarkReconcileFrontier's 0.6x; the recorded gap is the cost of the
// late-sweep handoff minus the frontier's win on the converged tail.
func BenchmarkReconcileHybrid(b *testing.B) {
	inst := makeInstance(10000, 10)
	opts := reconcile.DefaultOptions()
	opts.Engine = reconcile.EngineHybrid
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reconcile.Reconcile(inst.g1, inst.g2, inst.seeds, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconcileFrontierIncremental measures the production steady
// state the frontier engine exists for: a converged Reconciler ingesting a
// small batch of new trusted links and re-sweeping. The full engines pay a
// complete re-scan per sweep here; the frontier touches only the new links'
// neighborhoods.
func BenchmarkReconcileFrontierIncremental(b *testing.B) {
	benchIncremental(b, reconcile.EngineFrontier)
}

// BenchmarkReconcileParallelIncremental is the same incremental workload on
// the full parallel engine, for the ratio.
func BenchmarkReconcileParallelIncremental(b *testing.B) {
	benchIncremental(b, reconcile.EngineParallel)
}

// BenchmarkReconcileHybridIncremental is the incremental workload on the
// default engine: by ingest time the run converged long ago, so the hybrid
// has handed off and this row must track the frontier's order-of-magnitude
// win over BenchmarkReconcileParallelIncremental — the degenerate default
// this PR's engine switch exists to fix, measured on the workload users get
// without choosing an engine.
func BenchmarkReconcileHybridIncremental(b *testing.B) {
	benchIncremental(b, reconcile.EngineHybrid)
}

// BenchmarkReconcileFrontierIncrementalCheckpoint is the incremental
// workload with a durable checkpoint taken at every sweep boundary (state
// encoded to a discarded stream — the serve job store's cadence minus the
// disk). The delta against BenchmarkReconcileFrontierIncremental is the
// per-checkpoint cost a -data-dir deployment pays; BENCH_snapshot.json
// records both, and DESIGN.md's Durability section discusses choosing a
// cadence.
func BenchmarkReconcileFrontierIncrementalCheckpoint(b *testing.B) {
	benchIncrementalCheckpoint(b, reconcile.EngineFrontier, true)
}

// BenchmarkReconcileFrontierIncrementalTraced is the incremental workload
// with a span recorder actually installed. BENCH_trace.json's
// machinery_overhead row measures what tracing costs everyone (the nil
// checks left in the hot path when no recorder is set); this row shows the
// opt-in price of recording spans.
func BenchmarkReconcileFrontierIncrementalTraced(b *testing.B) {
	tr := reconcile.NewTraceRecorder(reconcile.TraceConfig{})
	benchIncrementalCheckpoint(b, reconcile.EngineFrontier, false, reconcile.WithTracer(tr))
}

func benchIncremental(b *testing.B, engine reconcile.Engine) {
	benchIncrementalCheckpoint(b, engine, false)
}

func benchIncrementalCheckpoint(b *testing.B, engine reconcile.Engine, checkpoint bool, extra ...reconcile.Option) {
	inst := makeInstance(10000, 10)
	hold := 20
	if len(inst.seeds) <= hold {
		b.Fatal("instance has too few seeds")
	}
	early, late := inst.seeds[:len(inst.seeds)-hold], inst.seeds[len(inst.seeds)-hold:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		opts := append([]reconcile.Option{reconcile.WithEngine(engine), reconcile.WithSeeds(early)}, extra...)
		var rec *reconcile.Reconciler
		if checkpoint {
			// Checkpoint at every sweep boundary, like cmd/serve's store; the
			// hook runs between buckets on the run goroutine, where state is
			// exportable.
			opts = append(opts, reconcile.WithProgress(func(e reconcile.PhaseEvent) {
				if e.Bucket == e.Buckets {
					if err := rec.SnapshotState(io.Discard); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
		rec, err := reconcile.New(inst.g1, inst.g2, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rec.RunUntilStable(context.Background(), 10); err != nil {
			b.Fatal(err)
		}
		// Keep only held-back seeds that do not collide with links the
		// converged run already discovered.
		matchedL := map[reconcile.NodeID]bool{}
		matchedR := map[reconcile.NodeID]bool{}
		for _, p := range rec.Result().Pairs {
			matchedL[p.Left] = true
			matchedR[p.Right] = true
		}
		fresh := late[:0:0]
		for _, p := range late {
			if !matchedL[p.Left] && !matchedR[p.Right] {
				fresh = append(fresh, p)
			}
		}
		b.StartTimer()
		if err := rec.AddSeeds(fresh); err != nil {
			b.Fatal(err)
		}
		if _, err := rec.RunUntilStable(context.Background(), 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconcileMapReduce is the same instance on the 4-round MapReduce
// formulation (materializes candidate pairs; expected to trail the in-core
// engines — it exists for fidelity, not speed).
func BenchmarkReconcileMapReduce(b *testing.B) {
	inst := makeInstance(5000, 8)
	opts := reconcile.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reconcile.ReconcileMapReduce(inst.g1, inst.g2, inst.seeds, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineCommonNeighbors measures the straightforward algorithm on
// the same instance as BenchmarkReconcileSequential.
func BenchmarkBaselineCommonNeighbors(b *testing.B) {
	inst := makeInstance(10000, 10)
	opts := baseline.DefaultCommonNeighbors()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.CommonNeighbors(inst.g1, inst.g2, inst.seeds, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselinePropagation measures the NS09-style propagation matcher —
// the Θ(Δ1·Δ2) per-node comparator the paper argues is unscalable.
func BenchmarkBaselinePropagation(b *testing.B) {
	inst := makeInstance(5000, 8)
	opts := baseline.DefaultPropagation()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Propagation(inst.g1, inst.g2, inst.seeds, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtNoise regenerates the copy-noise robustness extension sweep.
func BenchmarkExtNoise(b *testing.B) {
	cfg := benchConfig()
	var precision float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.NoiseData(cfg)
		if err != nil {
			b.Fatal(err)
		}
		precision = rows[len(rows)-1].Counts.Precision()
	}
	b.ReportMetric(precision, "precision-noisiest")
}

// BenchmarkExtSeedNoise regenerates the corrupted-seed robustness sweep.
func BenchmarkExtSeedNoise(b *testing.B) {
	cfg := benchConfig()
	var errRate float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SeedNoiseData(cfg)
		if err != nil {
			b.Fatal(err)
		}
		errRate = rows[len(rows)-1].Counts.ErrorRate()
	}
	b.ReportMetric(errRate, "error-at-20pct-flips")
}

// BenchmarkExtScoring regenerates the scoring/margin ablation.
func BenchmarkExtScoring(b *testing.B) {
	cfg := benchConfig()
	var adamicBad float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ScoringAblationData(cfg)
		if err != nil {
			b.Fatal(err)
		}
		adamicBad = float64(rows[1].Counts.Bad)
	}
	b.ReportMetric(adamicBad, "adamic-adar-bad")
}

// BenchmarkExtTheory regenerates the Theorem 1 validation.
func BenchmarkExtTheory(b *testing.B) {
	cfg := benchConfig()
	var wrong float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TheoryCheckData(cfg)
		if err != nil {
			b.Fatal(err)
		}
		wrong = rows[2].Measured
	}
	b.ReportMetric(wrong, "wrong-matches")
}

// BenchmarkReconcileAdamicAdar measures the weighted-scoring matcher on the
// BenchmarkReconcileSequential instance (the weighting's runtime overhead).
func BenchmarkReconcileAdamicAdar(b *testing.B) {
	inst := makeInstance(10000, 10)
	opts := reconcile.DefaultOptions()
	opts.Scoring = reconcile.ScoreAdamicAdar
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reconcile.Reconcile(inst.g1, inst.g2, inst.seeds, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneratePA measures graph generation throughput (edges/sec drive
// how large an experiment fits in a run).
func BenchmarkGeneratePA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := reconcile.NewRand(uint64(i))
		reconcile.GeneratePA(r, 50000, 10)
	}
}

// BenchmarkGenerateRMAT measures RMAT generation at scale 16.
func BenchmarkGenerateRMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := reconcile.NewRand(uint64(i))
		reconcile.GenerateRMAT(r, reconcile.DefaultRMAT(16))
	}
}
