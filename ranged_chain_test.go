package reconcile_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/sociograph/reconcile"
)

// rangedRecord is one ranged checkpoint of a victim run: the manifest, the
// per-range shard records (fulls or deltas), and the monolithic state
// snapshot of the same moment for the bit-identity comparison.
type rangedRecord struct {
	full       bool
	manifest   []byte
	parts      [][]byte
	monolithic []byte
}

// rangedChain checkpoints a victim run at every bucket boundary with a
// RangedCheckpointer of the given shard count and returns the chain.
func rangedChain(t *testing.T, g1, g2 *reconcile.Graph, ranges int, opts []reconcile.Option) []rangedRecord {
	t.Helper()
	var chain []rangedRecord
	rckpt := reconcile.NewRangedCheckpointer(ranges)
	var victim *reconcile.Reconciler
	victim, err := reconcile.New(g1, g2, append(opts,
		reconcile.WithProgress(func(reconcile.PhaseEvent) {
			ck, err := rckpt.Prepare(victim, len(chain) == 0)
			if errors.Is(err, reconcile.ErrFullRequired) {
				// The hybrid handoff just landed; re-anchor the chain.
				ck, err = rckpt.Prepare(victim, true)
			}
			if err != nil {
				t.Errorf("prepare checkpoint %d: %v", len(chain), err)
				return
			}
			rec := rangedRecord{full: ck.Full(), parts: make([][]byte, ck.Ranges())}
			var buf bytes.Buffer
			if err := ck.EncodeManifest(&buf); err != nil {
				t.Errorf("encode manifest %d: %v", len(chain), err)
				return
			}
			rec.manifest = append([]byte(nil), buf.Bytes()...)
			for j := 0; j < ck.Ranges(); j++ {
				buf.Reset()
				if err := ck.EncodePart(j, &buf); err != nil {
					t.Errorf("encode part %d of checkpoint %d: %v", j, len(chain), err)
					return
				}
				rec.parts[j] = append([]byte(nil), buf.Bytes()...)
			}
			rckpt.Commit(ck)
			var mono bytes.Buffer
			if err := victim.SnapshotState(&mono); err != nil {
				t.Errorf("monolithic checkpoint: %v", err)
				return
			}
			rec.monolithic = mono.Bytes()
			chain = append(chain, rec)
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return chain
}

// replayRanged reconstructs the state at chain[cut] from bytes alone: decode
// the last full's manifest and shards, apply each later checkpoint's shard
// deltas, and merge under the cut's manifest.
func replayRanged(t *testing.T, chain []rangedRecord, cut int) *reconcile.SessionState {
	t.Helper()
	base := cut
	for base > 0 && !chain[base].full {
		base--
	}
	man, err := reconcile.ReadRangeManifest(bytes.NewReader(chain[base].manifest))
	if err != nil {
		t.Fatalf("cut %d: read manifest %d: %v", cut, base, err)
	}
	parts := make([]*reconcile.SessionState, man.Ranges())
	for j := range parts {
		if parts[j], err = reconcile.ReadSessionState(bytes.NewReader(chain[base].parts[j])); err != nil {
			t.Fatalf("cut %d: read part %d of full %d: %v", cut, j, base, err)
		}
	}
	for i := base + 1; i <= cut; i++ {
		for j := range parts {
			d, err := reconcile.ReadStateDelta(bytes.NewReader(chain[i].parts[j]))
			if err != nil {
				t.Fatalf("cut %d: read delta part %d of checkpoint %d: %v", cut, j, i, err)
			}
			if err := parts[j].Apply(d); err != nil {
				t.Fatalf("cut %d: apply delta part %d of checkpoint %d: %v", cut, j, i, err)
			}
		}
		if man, err = reconcile.ReadRangeManifest(bytes.NewReader(chain[i].manifest)); err != nil {
			t.Fatalf("cut %d: read manifest %d: %v", cut, i, err)
		}
	}
	st, err := reconcile.MergeRangeParts(man, parts)
	if err != nil {
		t.Fatalf("cut %d: merge: %v", cut, err)
	}
	return st
}

// TestRangedChainResumeEquivalence extends the chain resume-equivalence
// guarantee to per-range shards: a run checkpointed as (manifest + R shard
// records) per boundary, cut at any checkpoint, shard-replayed, merged and
// resumed finishes bit-identically to the run that was never interrupted —
// and the merged state is byte-identical to the monolithic snapshot of the
// same boundary, so ranged and monolithic chains restore the same moment.
func TestRangedChainResumeEquivalence(t *testing.T) {
	g1, g2, seeds := snapshotInstance(t)
	for _, engine := range []reconcile.Engine{reconcile.EngineFrontier, reconcile.EngineParallel, reconcile.EngineHybrid} {
		t.Run(engine.String(), func(t *testing.T) {
			iterations := 3
			if engine == reconcile.EngineHybrid {
				iterations = 8 // commits decay to zero and the handoff fires mid-chain
			}
			opts := []reconcile.Option{
				reconcile.WithSeeds(seeds),
				reconcile.WithEngine(engine),
				reconcile.WithIterations(iterations),
			}
			ref, err := reconcile.New(g1, g2, opts...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if len(want.NewPairs) == 0 {
				t.Fatal("reference run found nothing; instance too weak")
			}

			chain := rangedChain(t, g1, g2, 3, opts)
			if len(chain) != len(want.Phases) {
				t.Fatalf("victim checkpointed %d times, want one per phase (%d)", len(chain), len(want.Phases))
			}
			if engine == reconcile.EngineHybrid {
				anchored := false
				for _, rec := range chain[1:] {
					anchored = anchored || rec.full
				}
				if !anchored {
					t.Fatal("hybrid chain has no mid-chain full; the handoff never fired")
				}
			}

			for _, cut := range []int{0, 1, len(chain) / 2, len(chain) - 1} {
				st := replayRanged(t, chain, cut)
				restored, err := reconcile.RestoreSessionState(g1, g2, st)
				if err != nil {
					t.Fatalf("cut %d: restore: %v", cut, err)
				}
				var again bytes.Buffer
				if err := restored.SnapshotState(&again); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(again.Bytes(), chain[cut].monolithic) {
					t.Fatalf("cut %d: merged state differs from the monolithic snapshot", cut)
				}
				got, err := restored.Resume(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("cut %d: ranged-restored run diverged: %d pairs / %d phases, want %d / %d",
						cut, len(got.Pairs), len(got.Phases), len(want.Pairs), len(want.Phases))
				}
			}

			// Shards from one checkpoint do not merge under another
			// checkpoint's manifest: a torn ranged checkpoint is refused.
			if len(chain) > 1 {
				man, err := reconcile.ReadRangeManifest(bytes.NewReader(chain[len(chain)-1].manifest))
				if err != nil {
					t.Fatal(err)
				}
				parts := make([]*reconcile.SessionState, man.Ranges())
				for j := range parts {
					if parts[j], err = reconcile.ReadSessionState(bytes.NewReader(chain[0].parts[j])); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := reconcile.MergeRangeParts(man, parts); err == nil {
					t.Fatal("merged checkpoint-0 shards under the final manifest (tear undetected)")
				}
			}
		})
	}
}

// TestRangedCheckpointerContract pins the edges of the ranged API: a fresh
// checkpointer demands a full first, the shard count is clamped and fixed,
// and StateRangeCount scales with graph size under its cap.
func TestRangedCheckpointerContract(t *testing.T) {
	g1, g2, seeds := snapshotInstance(t)
	rec, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds))
	if err != nil {
		t.Fatal(err)
	}
	rckpt := reconcile.NewRangedCheckpointer(3)
	if _, err := rckpt.Prepare(rec, false); !errors.Is(err, reconcile.ErrFullRequired) {
		t.Fatalf("Prepare(delta) without a base: err = %v, want ErrFullRequired", err)
	}
	ck, err := rckpt.Prepare(rec, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Full() || ck.Ranges() != 3 {
		t.Fatalf("full checkpoint: Full=%v Ranges=%d, want true/3", ck.Full(), ck.Ranges())
	}
	rckpt.Commit(ck)
	if _, err := rckpt.Prepare(rec, false); err != nil {
		t.Fatalf("Prepare(delta) after a committed full: %v", err)
	}
	rckpt.Reset()
	if _, err := rckpt.Prepare(rec, false); !errors.Is(err, reconcile.ErrFullRequired) {
		t.Fatalf("Prepare(delta) after Reset: err = %v, want ErrFullRequired", err)
	}

	if got := reconcile.NewRangedCheckpointer(0).Ranges(); got != 1 {
		t.Fatalf("ranges clamp low: %d, want 1", got)
	}
	if got := reconcile.NewRangedCheckpointer(10_000).Ranges(); got != reconcile.MaxStateRanges {
		t.Fatalf("ranges clamp high: %d, want %d", got, reconcile.MaxStateRanges)
	}
	for _, tc := range []struct{ n1, n2, target, want int }{
		{600, 600, 0, 1},       // disabled
		{600, 600, 1 << 20, 1}, // small job, one range
		{600, 600, 400, 3},
		{1 << 20, 1 << 20, 1, reconcile.MaxStateRanges}, // capped
	} {
		if got := reconcile.StateRangeCount(tc.n1, tc.n2, tc.target); got != tc.want {
			t.Fatalf("StateRangeCount(%d, %d, %d) = %d, want %d", tc.n1, tc.n2, tc.target, got, tc.want)
		}
	}
}

// graphFiles writes g1/g2 to dir in the given format and returns the paths.
func graphFiles(t *testing.T, dir, tag string, g1, g2 *reconcile.Graph, mappable bool) (string, string) {
	t.Helper()
	write := func(name string, g *reconcile.Graph) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		var werr error
		if mappable {
			werr = reconcile.WriteGraphMapped(f, g)
		} else {
			werr = reconcile.WriteGraphBinary(f, g)
		}
		if werr != nil {
			t.Fatal(werr)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return write("g1."+tag, g1), write("g2."+tag, g2)
}

// graphBytes returns g's canonical legacy encoding, the equality yardstick
// across formats and backings.
func graphBytes(t *testing.T, g *reconcile.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := reconcile.WriteGraphBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMappedRangedRestoreMatrix is the acceptance matrix for this PR's
// tentpole: a mid-run checkpoint restores and resumes bit-identically under
// every combination of graph backing (mmap-served mappable file, heap-decoded
// mappable file, heap-decoded legacy file, mmap-API-opened legacy file) and
// chain form (monolithic state snapshot, ranged manifest + shards). One
// reference run on the original in-memory graphs anchors every cell.
func TestMappedRangedRestoreMatrix(t *testing.T) {
	g1, g2, seeds := snapshotInstance(t)
	opts := []reconcile.Option{reconcile.WithSeeds(seeds), reconcile.WithIterations(3)}

	ref, err := reconcile.New(g1, g2, opts...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(want.NewPairs) == 0 {
		t.Fatal("reference run found nothing; instance too weak")
	}
	chain := rangedChain(t, g1, g2, 4, opts)
	cut := len(chain) / 2
	wantG1, wantG2 := graphBytes(t, g1), graphBytes(t, g2)

	dir := t.TempDir()
	m1, m2 := graphFiles(t, dir, "rgmm", g1, g2, true)
	l1, l2 := graphFiles(t, dir, "legacy", g1, g2, false)

	backings := []struct {
		name       string
		p1, p2     string
		mapped     bool // load through OpenGraphMapped
		wantMapped bool // and expect a live mapping
	}{
		{"mapped-mappable", m1, m2, true, reconcile.MmapSupported},
		{"mapped-legacy", l1, l2, true, false},
		{"heap-mappable", m1, m2, false, false},
		{"heap-legacy", l1, l2, false, false},
	}
	for _, b := range backings {
		t.Run(b.name, func(t *testing.T) {
			var lg1, lg2 *reconcile.Graph
			if b.mapped {
				mg1, err := reconcile.OpenGraphMapped(b.p1)
				if err != nil {
					t.Fatal(err)
				}
				defer mg1.Close()
				mg2, err := reconcile.OpenGraphMapped(b.p2)
				if err != nil {
					t.Fatal(err)
				}
				defer mg2.Close()
				if mg1.Mapped() != b.wantMapped {
					t.Fatalf("Mapped() = %v, want %v", mg1.Mapped(), b.wantMapped)
				}
				if lg1, err = mg1.Acquire(); err != nil {
					t.Fatal(err)
				}
				defer mg1.Release()
				if lg2, err = mg2.Acquire(); err != nil {
					t.Fatal(err)
				}
				defer mg2.Release()
			} else {
				for _, load := range []struct {
					path string
					into **reconcile.Graph
				}{{b.p1, &lg1}, {b.p2, &lg2}} {
					f, err := os.Open(load.path)
					if err != nil {
						t.Fatal(err)
					}
					*load.into, err = reconcile.ReadGraphBinary(f)
					f.Close()
					if err != nil {
						t.Fatal(err)
					}
				}
			}
			if !bytes.Equal(graphBytes(t, lg1), wantG1) || !bytes.Equal(graphBytes(t, lg2), wantG2) {
				t.Fatal("loaded graphs are not bit-identical to the originals")
			}

			for _, ranged := range []bool{false, true} {
				var st *reconcile.SessionState
				if ranged {
					st = replayRanged(t, chain, cut)
				} else {
					var err error
					if st, err = reconcile.ReadSessionState(bytes.NewReader(chain[cut].monolithic)); err != nil {
						t.Fatal(err)
					}
				}
				restored, err := reconcile.RestoreSessionState(lg1, lg2, st)
				if err != nil {
					t.Fatalf("ranged=%v: restore: %v", ranged, err)
				}
				got, err := restored.Resume(context.Background())
				if err != nil {
					t.Fatalf("ranged=%v: resume: %v", ranged, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("ranged=%v: resumed run diverged from the reference", ranged)
				}
			}
		})
	}
}

// TestGraphFormatInterop pins the two-way format bridge: ReadGraphBinary
// sniffs and decodes the mappable container, OpenGraphMapped serves legacy
// files from the heap, and a clone of a mapped graph written back in either
// format reproduces the original bytes.
func TestGraphFormatInterop(t *testing.T) {
	g1, _, _ := snapshotInstance(t)
	legacy := graphBytes(t, g1)

	var mapped bytes.Buffer
	if err := reconcile.WriteGraphMapped(&mapped, g1); err != nil {
		t.Fatal(err)
	}
	back, err := reconcile.ReadGraphBinary(bytes.NewReader(mapped.Bytes()))
	if err != nil {
		t.Fatalf("ReadGraphBinary on a mappable stream: %v", err)
	}
	if !bytes.Equal(graphBytes(t, back), legacy) {
		t.Fatal("mappable container round-trip lost bits")
	}

	// Truncated mappable input is rejected by the sniffing reader too.
	if _, err := reconcile.ReadGraphBinary(bytes.NewReader(mapped.Bytes()[:mapped.Len()-3])); err == nil {
		t.Fatal("accepted a truncated mappable stream")
	}

	// OpenGraphMapped on a legacy file: heap-backed, same graph, and the
	// lifetime protocol still applies.
	path := filepath.Join(t.TempDir(), "legacy.g")
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	mg, err := reconcile.OpenGraphMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if mg.Mapped() {
		t.Fatal("legacy file reported as mapped")
	}
	g, err := mg.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(graphBytes(t, g), legacy) {
		t.Fatal("legacy file through OpenGraphMapped lost bits")
	}
	mg.Release()
	if err := mg.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Acquire(); !errors.Is(err, reconcile.ErrGraphClosed) {
		t.Fatalf("Acquire after Close: err = %v, want ErrGraphClosed", err)
	}
	if mg.Graph() != nil {
		t.Fatal("Graph() non-nil after Close")
	}
}
