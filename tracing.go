package reconcile

import "github.com/sociograph/reconcile/internal/trace"

// Execution tracing. A TraceRecorder collects typed spans — sweeps, bucket
// phases, the hybrid engine handoff, seed ingests, and whatever the caller
// observes onto it (cmd/serve adds checkpoint writes, replays, slot waits
// and graph opens) — on a per-job monotonic timeline. See internal/trace
// for the model: bounded ring, phase-log-window retention with cumulative
// totals, persistable form, Chrome trace_event export.
//
// Tracing is observability only: timestamps never feed matching state, and
// a Reconciler without a tracer pays a nil check per bucket. Like progress
// hooks, tracers do not serialize — Restore paths re-install them.
type (
	// TraceRecorder records spans for one Reconciler or job.
	TraceRecorder = trace.Recorder
	// TraceConfig parameterizes a recorder (clock, retention, span hook).
	TraceConfig = trace.Config
	// TraceSpan is one completed interval on a recorder's timeline.
	TraceSpan = trace.Span
	// TraceKind tags a span's type.
	TraceKind = trace.Kind
	// TracePersisted is a recorder's serializable snapshot.
	TracePersisted = trace.Persisted
)

// NewTraceRecorder builds a recorder whose timeline starts at zero. The
// zero TraceConfig selects the process clock and the default retention
// (the session phase-log window).
func NewTraceRecorder(cfg TraceConfig) *TraceRecorder { return trace.New(cfg) }

// RestoreTraceRecorder continues a persisted trace: the restored timeline
// picks up after the snapshot's clock position instead of restarting, which
// is what keeps a killed-then-resumed job's trace continuous. The caller
// marks the seam with a resume span (trace.KindResume).
func RestoreTraceRecorder(cfg TraceConfig, p *TracePersisted) *TraceRecorder {
	return trace.Restore(cfg, p)
}

// WithTracer installs a span recorder on the Reconciler under construction
// or restore. A nil recorder disables tracing (the default).
func WithTracer(tr *TraceRecorder) Option { return func(s *settings) { s.tracer = tr } }

// SetTracer installs (or, with nil, removes) a span recorder on a live
// Reconciler. Call it between runs, not concurrently with one.
func (r *Reconciler) SetTracer(tr *TraceRecorder) { r.sess.SetTracer(tr) }
