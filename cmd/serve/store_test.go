package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/sociograph/reconcile"
)

// testStoreConfig keeps the chain short so the existing suites exercise
// full→delta→delta chains, retention and multi-shard layouts as a matter of
// course.
var testStoreConfig = storeConfig{shards: 3, fullEvery: 3, keep: 2}

func newTestStore(t *testing.T) *store {
	t.Helper()
	st, err := newStore(t.TempDir(), testStoreConfig)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// jobPairs fetches a job's link list.
func jobPairs(t *testing.T, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s?pairs=1", base, id))
	if err != nil {
		t.Fatal(err)
	}
	return decode[jobView](t, resp)
}

// TestServeDurableRestart runs jobs to completion, "crashes" the server
// (builds a fresh one over the same data dir), and requires every job to be
// re-listed with its terminal status and its exact link list.
func TestServeDurableRestart(t *testing.T) {
	st := newTestStore(t)
	ts := httptest.NewServer(newTestServer(t, st).handler())

	req := testInstance(t, 500, 0.15)
	var ids []string
	var want []jobView
	for i := 0; i < 3; i++ {
		req.UntilStable = i%2 == 1
		resp := postJSON(t, ts.URL+"/v1/jobs", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
		}
		ids = append(ids, decode[map[string]string](t, resp)["id"])
	}
	for _, id := range ids {
		v := waitForJob(t, ts.URL, id)
		if v.Status != statusDone {
			t.Fatalf("job %s: status %q (%s)", id, v.Status, v.Error)
		}
		want = append(want, jobPairs(t, ts.URL, id))
	}
	ts.Close()

	// "Crash": nothing is shut down gracefully; a new server reads the dir.
	ts2 := httptest.NewServer(newTestServer(t, st).handler())
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[map[string][]jobView](t, resp)
	if len(list["jobs"]) != len(ids) {
		t.Fatalf("restart lists %d jobs, want %d", len(list["jobs"]), len(ids))
	}
	for i, id := range ids {
		v := jobPairs(t, ts2.URL, id)
		if v.Status != statusDone {
			t.Fatalf("job %s after restart: status %q", id, v.Status)
		}
		if v.Links != want[i].Links || v.Seeds != want[i].Seeds || len(v.Phases) != len(want[i].Phases) {
			t.Fatalf("job %s after restart: links/seeds/phases %d/%d/%d, want %d/%d/%d",
				id, v.Links, v.Seeds, len(v.Phases), want[i].Links, want[i].Seeds, len(want[i].Phases))
		}
		if fmt.Sprint(v.Pairs) != fmt.Sprint(want[i].Pairs) {
			t.Fatalf("job %s after restart: pair list changed", id)
		}
	}

	// New submissions continue the ID sequence instead of colliding.
	resp = postJSON(t, ts2.URL+"/v1/jobs", req)
	newID := decode[map[string]string](t, resp)["id"]
	for _, id := range ids {
		if newID == id {
			t.Fatalf("post-restart job reused id %s", id)
		}
	}
	if v := waitForJob(t, ts2.URL, newID); v.Status != statusDone {
		t.Fatalf("post-restart job: status %q", v.Status)
	}
}

// TestServeInterruptedResume simulates a crash mid-run deterministically: a
// job's files are crafted from a Reconciler killed at a bucket boundary and
// a meta that still says "running". Boot must surface it as interrupted, and
// resume must finish it bit-identically to a never-interrupted run.
func TestServeInterruptedResume(t *testing.T) {
	st := newTestStore(t)
	req := testInstance(t, 500, 0.15)
	g1, err := buildGraph(req.G1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := buildGraph(req.G2)
	if err != nil {
		t.Fatal(err)
	}
	seeds := toPairs(req.Seeds)

	// The uninterrupted reference.
	ref, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// The victim: killed at the third bucket boundary, checkpointed exactly
	// as the progress hook would have left it, meta frozen mid-run.
	var phases []phaseJSON
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	victim, err := reconcile.New(g1, g2,
		reconcile.WithSeeds(seeds),
		reconcile.WithProgress(func(e reconcile.PhaseEvent) {
			phases = append(phases, phaseJSON{
				Iteration: e.Iteration, Bucket: e.Bucket, Buckets: e.Buckets,
				MinDegree: e.MinDegree, Matched: e.Matched, Total: e.TotalLinks,
			})
			if len(phases) == 3 {
				cancel()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("victim err = %v, want cancellation", err)
	}
	js := st.jobStore("job-1")
	if err := js.saveGraphs(g1, g2); err != nil {
		t.Fatal(err)
	}
	meta := jobMeta{
		ID: "job-1", Num: 1, Status: statusRunning,
		Seeds: victim.Result().Seeds, MaxSweeps: 50, Phases: phases,
	}
	if err := js.checkpoint(victim, meta); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(newTestServer(t, st).handler())
	defer ts.Close()

	v := jobPairs(t, ts.URL, "job-1")
	if v.Status != statusInterrupted {
		t.Fatalf("restored status = %q, want interrupted", v.Status)
	}
	if len(v.Phases) != 3 {
		t.Fatalf("restored phases = %d, want 3", len(v.Phases))
	}

	resp := postJSON(t, ts.URL+"/v1/jobs/job-1/resume", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST resume: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	done := waitForJob(t, ts.URL, "job-1")
	if done.Status != statusDone {
		t.Fatalf("resumed job: status %q (%s)", done.Status, done.Error)
	}
	got := jobPairs(t, ts.URL, "job-1")
	if got.Links != len(want.Pairs) {
		t.Fatalf("resumed job found %d links, uninterrupted run %d", got.Links, len(want.Pairs))
	}
	wantPairs := make([][2]int, len(want.Pairs))
	for i, p := range want.Pairs {
		wantPairs[i] = [2]int{int(p.Left), int(p.Right)}
	}
	if fmt.Sprint(got.Pairs) != fmt.Sprint(wantPairs) {
		t.Fatal("resumed job's matching is not bit-identical to the uninterrupted run")
	}
	// Phase logs agree too: the resumed sweep replays bucket for bucket.
	if len(got.Phases) != len(want.Phases) {
		t.Fatalf("resumed job ran %d phases, uninterrupted run %d", len(got.Phases), len(want.Phases))
	}

	// A second resume of the now-done job is refused.
	resp = postJSON(t, ts.URL+"/v1/jobs/job-1/resume", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("resume of done job: status %d, want 409", resp.StatusCode)
	}
}

// TestServeCheckpointEndpoint covers the explicit checkpoint API.
func TestServeCheckpointEndpoint(t *testing.T) {
	// Without a store the endpoint is a clear refusal, not a silent no-op.
	ts := httptest.NewServer(newTestServer(t, nil).handler())
	req := testInstance(t, 120, 0.3)
	resp := postJSON(t, ts.URL+"/v1/jobs", req)
	id := decode[map[string]string](t, resp)["id"]
	waitForJob(t, ts.URL, id)
	resp = postJSON(t, fmt.Sprintf("%s/v1/jobs/%s/checkpoint", ts.URL, id), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint without -data-dir: status %d, want 409", resp.StatusCode)
	}
	ts.Close()

	st := newTestStore(t)
	ts = httptest.NewServer(newTestServer(t, st).handler())
	defer ts.Close()
	resp = postJSON(t, ts.URL+"/v1/jobs", req)
	id = decode[map[string]string](t, resp)["id"]
	if v := waitForJob(t, ts.URL, id); v.Status != statusDone {
		t.Fatalf("job status %q", v.Status)
	}
	resp = postJSON(t, fmt.Sprintf("%s/v1/jobs/%s/checkpoint", ts.URL, id), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint of idle job: status %d, want 200", resp.StatusCode)
	}
	js := st.jobStore(id) // same hash placement as the server's handle
	if len(js.listChain()) == 0 {
		t.Fatal("no chain records after checkpoint")
	}

	// The checkpoint chain restores into the same matching out-of-band.
	p := jobPairs(t, ts.URL, id)
	state, dropped, err := js.recoverState()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("recovery dropped %d records from an intact chain", dropped)
	}
	g1, _ := buildGraph(req.G1)
	g2, _ := buildGraph(req.G2)
	rec, err := reconcile.RestoreSessionState(g1, g2, state)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != p.Links {
		t.Fatalf("restored checkpoint has %d links, job reports %d", rec.Len(), p.Links)
	}
}

// TestServeStoreStress hammers a durable server concurrently — submissions,
// polls, checkpoints, incremental seeds and cancels in parallel — then
// restarts it and requires every job to come back readable and resumable.
// Run under -race (CI does), this is the store's data-race suite.
func TestServeStoreStress(t *testing.T) {
	st := newTestStore(t)
	ts := httptest.NewServer(newTestServer(t, st).handler())

	const workers = 4
	const jobsPerWorker = 3
	req := testInstance(t, 150, 0.25)

	var mu sync.Mutex
	var ids []string
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < jobsPerWorker; i++ {
				r := req
				r.UntilStable = rng.Intn(2) == 0
				body, err := json.Marshal(r)
				if err != nil {
					t.Errorf("worker %d: marshal: %v", w, err)
					return
				}
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("worker %d: submit: %v", w, err)
					return
				}
				var created map[string]string
				err = json.NewDecoder(resp.Body).Decode(&created)
				resp.Body.Close()
				if err != nil {
					t.Errorf("worker %d: decode: %v", w, err)
					return
				}
				id := created["id"]
				mu.Lock()
				ids = append(ids, id)
				mu.Unlock()
				// Poke the job while it runs.
				for k := 0; k < 4; k++ {
					switch rng.Intn(3) {
					case 0:
						resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", ts.URL, id))
						if err == nil {
							resp.Body.Close()
						}
					case 1:
						resp, err := http.Post(fmt.Sprintf("%s/v1/jobs/%s/checkpoint", ts.URL, id), "application/json", nil)
						if err == nil {
							resp.Body.Close()
						}
					case 2:
						resp, err := http.Post(fmt.Sprintf("%s/v1/jobs/%s/cancel", ts.URL, id), "application/json", nil)
						if err == nil {
							resp.Body.Close()
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Everything reaches a terminal state.
	for _, id := range ids {
		v := waitForJob(t, ts.URL, id)
		if v.Status != statusDone && v.Status != statusCancelled {
			t.Fatalf("job %s: status %q (%s)", id, v.Status, v.Error)
		}
	}
	before := map[string]jobView{}
	for _, id := range ids {
		before[id] = jobPairs(t, ts.URL, id)
	}
	ts.Close()

	// Restart; all jobs re-listed with identical state, cancelled ones
	// resumable to completion.
	ts2 := httptest.NewServer(newTestServer(t, st).handler())
	defer ts2.Close()
	for _, id := range ids {
		v := jobPairs(t, ts2.URL, id)
		if v.Status != before[id].Status || v.Links != before[id].Links {
			t.Fatalf("job %s after restart: %q/%d links, want %q/%d",
				id, v.Status, v.Links, before[id].Status, before[id].Links)
		}
		if v.Status == statusCancelled {
			resp := postJSON(t, fmt.Sprintf("%s/v1/jobs/%s/resume", ts2.URL, id), nil)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("resume %s: status %d", id, resp.StatusCode)
			}
			if done := waitForJob(t, ts2.URL, id); done.Status != statusDone {
				t.Fatalf("resumed %s: status %q (%s)", id, done.Status, done.Error)
			}
		}
	}
}
