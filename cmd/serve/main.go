// Command serve exposes the reconciler as a long-lived, multi-tenant
// HTTP/JSON service — the operational shape of the problem, where networks
// are reconciled once and trusted links keep trickling in, and many
// independent customers share one deployment.
//
// Usage:
//
//	serve -addr :8080 [-data-dir /var/lib/reconcile] [-shards 4]
//	      [-full-every 8] [-keep 3] [-mmap] [-range-nodes 1048576]
//	      [-tenants tenants.json] [-admin-token $TOKEN] [-run-slots N]
//	      [-max-body-bytes N] [-shutdown-grace 15s]
//
// With -data-dir the server is crash-safe: every job is persisted to a
// sharded, delta-checkpointed store under its tenant's root
// (<data-dir>/<tenant>/shard-NN/...; graphs once, per-sweep checkpoints as
// chains of one full state snapshot followed by cheap delta records), all
// jobs are re-listed after a restart with their results intact, and a job
// that was mid-run when the process died comes back as "interrupted" —
// POST .../resume finishes it with a matching bit-identical to a
// never-interrupted run. Jobs hash across -shards directories per tenant
// (independent fsync domains), a full snapshot anchors every
// -full-every-th checkpoint, and the last -keep full chains are retained
// per job. Pre-tenant -data-dir layouts (flat or root-sharded) migrate
// automatically into the default tenant's root at boot. Without -data-dir
// jobs live in RAM only.
//
// With -mmap (the default where the platform supports it) new jobs' graphs
// are written in the mappable container format and every job's graphs are
// served from read-only file mappings after a restart: recovery pages the
// immutable CSR arrays in on demand instead of re-decoding them onto the
// heap, and concurrent processes share one page-cache copy. Either setting
// reads graph files written under the other, so -mmap can be flipped over
// an existing data directory without migration (legacy files are decoded
// onto the heap behind the same lifetime API). -range-nodes shards the
// checkpoint state of large jobs: a job whose graphs total more than
// -range-nodes nodes checkpoints as per-node-range shard files plus a small
// manifest — shards are written (and replayed at boot) in parallel, and the
// manifest's durable rename is the checkpoint's commit point. 0 disables
// sharding; existing jobs keep the chain geometry they were created with.
//
// Multi-tenancy: every job belongs to a tenant. The un-namespaced routes
// below operate on the built-in "default" tenant, so single-tenant
// deployments and pre-tenancy clients keep working unchanged; the same
// routes exist for every registered tenant under
// /v1/tenants/{tenant}/jobs... . Tenants are declared in the -tenants JSON
// config file ({"tenants": [{"name": ..., "token"|"tokenEnv": ...,
// "weight": ..., "maxJobs": ..., "maxNodes": ..., "maxCheckpointBytes":
// ...}, ...]}) or registered at runtime over the admin API. A tenant with
// a token requires "Authorization: Bearer <token>" on every request to its
// namespace (401 without a token, 403 with a wrong one); a tenant without
// one is open, which is also the default tenant's initial state. Quotas
// are admission limits (429 when exceeded): concurrent runs, total graph
// nodes, and durable checkpoint bytes under the tenant's store root.
// -run-slots caps run goroutines across all tenants; a weighted-fair
// scheduler shares the slots so no tenant can starve another (see
// DESIGN.md "Multi-tenancy").
//
// API (all bodies JSON; {tenant} routes take the tenant's bearer token):
//
//	POST /v1/jobs                  submit {g1, g2, seeds, options,
//	                               untilStable, maxSweeps}; answers 202
//	                               {id, status} and runs the job
//	                               asynchronously. untilStable sweeps until
//	                               nothing new is found (bounded by
//	                               maxSweeps, default 50); otherwise the
//	                               job performs options.iterations sweeps
//	                               and maxSweeps is ignored
//	GET  /v1/jobs                  list the tenant's jobs
//	GET  /v1/jobs/{id}             job status, link counts and per-bucket
//	                               phase statistics (streamed live while
//	                               the job runs); ?pairs=1 appends the
//	                               links once the job has stopped
//	DELETE /v1/jobs/{id}           cancel the job if running, purge its
//	                               graphs/checkpoints/meta from the store,
//	                               release its quota
//	POST /v1/jobs/{id}/seeds       ingest {seeds: [[l, r], ...]}
//	                               incrementally and resume sweeping until
//	                               stable
//	POST /v1/jobs/{id}/cancel      stop the job at the next bucket boundary
//	POST /v1/jobs/{id}/checkpoint  force a durable checkpoint: immediately
//	                               for an idle job (200), at the next phase
//	                               boundary for a running one (202);
//	                               requires -data-dir (409 otherwise)
//	POST /v1/jobs/{id}/resume      continue an interrupted or cancelled job
//	                               from its last state, finishing the
//	                               schedule bit-identically to an
//	                               uninterrupted run
//	/v1/tenants/{tenant}/jobs...   every route above, namespaced
//	GET  /v1/admin/tenants         tenant configs plus live usage (active
//	                               runs, held/queued run slots, nodes,
//	                               checkpoint bytes); takes -admin-token
//	PUT  /v1/admin/tenants/{name}  register a tenant or update its token,
//	                               weight and quotas in place
//	GET  /healthz                  liveness
//
// Graphs are submitted as {"nodes": n, "edges": [[u, v], ...]} with dense
// 0-based IDs; seeds and returned pairs are [left, right] arrays. Options
// mirror the functional options of the Go API: threshold, iterations,
// engine ("hybrid"/"frontier"/"parallel"/"sequential" — identical output, see
// DESIGN.md for the scheduling difference), scoring ("count"/"adamic-adar"),
// ties ("reject"/"lowest-id"), workers, margin, bucketing, minBucketExp,
// maxDegree. Request bodies beyond -max-body-bytes are refused with 413.
//
// On SIGINT/SIGTERM the server drains gracefully within -shutdown-grace:
// in-flight HTTP requests complete, running jobs are cancelled at their
// next bucket boundary, and each durable job writes a final checkpoint —
// so a restart re-lists them as "cancelled" at their exact stop point and
// POST .../resume finishes them bit-identically, instead of the crash
// path's "interrupted" at the last sweep boundary.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/sociograph/reconcile"
	"github.com/sociograph/reconcile/internal/tenant"
)

// setupLogging installs the process-wide slog handler: text (the default,
// for terminals) or json (for log pipelines), at info level, or debug with
// -log-debug (which adds a line per HTTP request).
func setupLogging(format string, debug bool) error {
	level := slog.LevelInfo
	if debug {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, opts)))
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, opts)))
	default:
		return fmt.Errorf("serve: -log-format must be text or json (got %q)", format)
	}
	return nil
}

// fatal logs err and exits — log.Fatalf's shape under slog.
func fatal(msg string, err error) {
	slog.Error(msg, "err", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data-dir", "", "job store directory; enables crash-safe durable jobs (empty: in-memory only)")
	shards := flag.Int("shards", 4, "shard directories new jobs hash across within each tenant's root; each is an independent fsync domain (mount on separate volumes to spread checkpoint IO)")
	fullEvery := flag.Int("full-every", 8, "checkpoint chain period: one full state snapshot, then full-every-1 cheap delta records (1 = every checkpoint full)")
	keep := flag.Int("keep", 3, "full checkpoint chains retained per job; older records are removed after each new full and on boot")
	mmapGraphs := flag.Bool("mmap", reconcile.MmapSupported, "serve job graphs from read-only file mappings: new graphs are written in the mappable container format and restored jobs page them in on demand (either setting reads files written under the other)")
	rangeNodes := flag.Int("range-nodes", 1<<20, "node-range shard target: jobs whose graphs total more than this many nodes checkpoint as per-range shard files plus a manifest, written and replayed in parallel (0: always one monolithic record)")
	tenantsFile := flag.String("tenants", "", "tenant registry JSON ({\"tenants\": [{name, token|tokenEnv, weight, maxJobs, maxNodes, maxCheckpointBytes}, ...]}); empty: only the open default tenant")
	adminToken := flag.String("admin-token", os.Getenv("RECONCILE_ADMIN_TOKEN"), "bearer token for /v1/admin (default $RECONCILE_ADMIN_TOKEN; empty leaves the admin API open)")
	runSlots := flag.Int("run-slots", runtime.GOMAXPROCS(0), "concurrent run goroutines across all tenants, shared by weighted fair scheduling (0: unlimited)")
	maxBodyBytes := flag.Int64("max-body-bytes", defaultMaxBodyBytes, "largest accepted request body; oversized bodies answer 413")
	shutdownGrace := flag.Duration("shutdown-grace", 15*time.Second, "drain budget after SIGINT/SIGTERM: running jobs stop at a bucket boundary and write a final checkpoint within this window")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logDebug := flag.Bool("log-debug", false, "log at debug level (adds a line per HTTP request, with request ids)")
	flag.Parse()

	if err := setupLogging(*logFormat, *logDebug); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	reg := tenant.NewRegistry()
	if *tenantsFile != "" {
		if err := reg.LoadFile(*tenantsFile); err != nil {
			fatal("loading tenant registry", err)
		}
	}

	var st *store
	if *dataDir != "" {
		var err error
		if st, err = newStore(*dataDir, storeConfig{
			shards:     *shards,
			fullEvery:  *fullEvery,
			keep:       *keep,
			mmap:       *mmapGraphs,
			rangeNodes: *rangeNodes,
		}); err != nil {
			fatal("opening job store", err)
		}
	}
	s, skipped := newServerWith(st, serverConfig{
		registry:     reg,
		runSlots:     *runSlots,
		adminToken:   *adminToken,
		maxBodyBytes: *maxBodyBytes,
	})
	for _, err := range skipped {
		slog.Warn("skipping persisted job", "err", err)
	}
	if st != nil {
		restored := 0
		s.mu.Lock()
		for _, tj := range s.tenants {
			restored += len(tj.jobs)
		}
		s.mu.Unlock()
		slog.Info("job store open", "dir", *dataDir, "tenants", len(reg.All()), "jobsRestored", restored)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	slog.Info("listening", "addr", *addr)

	select {
	case err := <-errCh:
		fatal("http server", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining
	slog.Info("signal received; draining", "budget", shutdownGrace.String())
	dctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	// Cancel jobs first: handlers parked on a running job (DELETE waiting
	// out a run) unblock, so the HTTP drain below cannot starve the job
	// drain of the shared grace budget.
	jobs := s.cancelRunning()
	if err := srv.Shutdown(dctx); err != nil {
		slog.Warn("http shutdown", "err", err)
	}
	if err := s.awaitDrain(dctx, jobs); err != nil {
		slog.Error("drain incomplete", "err", err)
		os.Exit(1)
	}
	s.closeMappings() // drained: no run can touch a mapped graph anymore
	// Report each job's final-checkpoint outcome, not just a blanket
	// success line: a drain where a final checkpoint failed restarts that
	// job from its previous checkpoint, and the operator should know which.
	failed := 0
	for _, o := range drainOutcomes(jobs) {
		if o.err != "" {
			failed++
			slog.Error("final checkpoint failed", "tenant", o.tenant, "job", o.job, "status", string(o.status), "err", o.err)
		}
	}
	if failed > 0 {
		slog.Warn("drained with checkpoint failures", "jobs", len(jobs), "failed", failed)
	} else {
		slog.Info("drained; final checkpoints written", "jobs", len(jobs))
	}
}
