// Command serve exposes the reconciler as a long-lived HTTP/JSON service —
// the operational shape of the problem, where networks are reconciled once
// and trusted links keep trickling in.
//
// Usage:
//
//	serve -addr :8080
//
// API (all bodies JSON):
//
//	POST /v1/jobs                submit {g1, g2, seeds, options, untilStable,
//	                             maxSweeps}; answers 202 {id, status} and
//	                             runs the job asynchronously. untilStable
//	                             sweeps until nothing new is found (bounded
//	                             by maxSweeps, default 50); otherwise the
//	                             job performs options.iterations sweeps and
//	                             maxSweeps is ignored
//	GET  /v1/jobs                list all jobs
//	GET  /v1/jobs/{id}           job status, link counts and per-bucket
//	                             phase statistics (streamed live while the
//	                             job runs); ?pairs=1 appends the links once
//	                             the job has stopped
//	POST /v1/jobs/{id}/seeds     ingest {seeds: [[l, r], ...]} incrementally
//	                             and resume sweeping until stable
//	POST /v1/jobs/{id}/cancel    stop the job at the next bucket boundary
//	GET  /healthz                liveness
//
// Graphs are submitted as {"nodes": n, "edges": [[u, v], ...]} with dense
// 0-based IDs; seeds and returned pairs are [left, right] arrays. Options
// mirror the functional options of the Go API: threshold, iterations,
// engine ("frontier"/"parallel"/"sequential" — identical output, see
// DESIGN.md for the scheduling difference), scoring ("count"/"adamic-adar"),
// ties
// ("reject"/"lowest-id"), workers, margin, bucketing, minBucketExp,
// maxDegree.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	s := newServer()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("serve: listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
