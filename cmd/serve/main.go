// Command serve exposes the reconciler as a long-lived HTTP/JSON service —
// the operational shape of the problem, where networks are reconciled once
// and trusted links keep trickling in.
//
// Usage:
//
//	serve -addr :8080 [-data-dir /var/lib/reconcile] [-shards 4] [-full-every 8] [-keep 3]
//
// With -data-dir the server is crash-safe: every job is persisted to a
// sharded, delta-checkpointed store (graphs once; per-sweep checkpoints as
// chains of one full state snapshot followed by cheap delta records), all
// jobs are re-listed after a restart with their results intact, and a job
// that was mid-run when the process died comes back as "interrupted" —
// POST /v1/jobs/{id}/resume finishes it with a matching bit-identical to a
// never-interrupted run. Jobs hash across -shards directories (independent
// fsync domains), a full snapshot anchors every -full-every-th checkpoint,
// and the last -keep full chains are retained per job. A flat pre-shard
// -data-dir layout is auto-detected and stays readable. Without -data-dir
// jobs live in RAM only.
//
// API (all bodies JSON):
//
//	POST /v1/jobs                  submit {g1, g2, seeds, options,
//	                               untilStable, maxSweeps}; answers 202
//	                               {id, status} and runs the job
//	                               asynchronously. untilStable sweeps until
//	                               nothing new is found (bounded by
//	                               maxSweeps, default 50); otherwise the
//	                               job performs options.iterations sweeps
//	                               and maxSweeps is ignored
//	GET  /v1/jobs                  list all jobs
//	GET  /v1/jobs/{id}             job status, link counts and per-bucket
//	                               phase statistics (streamed live while
//	                               the job runs); ?pairs=1 appends the
//	                               links once the job has stopped
//	POST /v1/jobs/{id}/seeds       ingest {seeds: [[l, r], ...]}
//	                               incrementally and resume sweeping until
//	                               stable
//	POST /v1/jobs/{id}/cancel      stop the job at the next bucket boundary
//	POST /v1/jobs/{id}/checkpoint  force a durable checkpoint: immediately
//	                               for an idle job (200), at the next phase
//	                               boundary for a running one (202);
//	                               requires -data-dir (409 otherwise)
//	POST /v1/jobs/{id}/resume      continue an interrupted or cancelled job
//	                               from its last state, finishing the
//	                               schedule bit-identically to an
//	                               uninterrupted run
//	GET  /healthz                  liveness
//
// Graphs are submitted as {"nodes": n, "edges": [[u, v], ...]} with dense
// 0-based IDs; seeds and returned pairs are [left, right] arrays. Options
// mirror the functional options of the Go API: threshold, iterations,
// engine ("frontier"/"parallel"/"sequential" — identical output, see
// DESIGN.md for the scheduling difference), scoring ("count"/"adamic-adar"),
// ties
// ("reject"/"lowest-id"), workers, margin, bucketing, minBucketExp,
// maxDegree.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data-dir", "", "job store directory; enables crash-safe durable jobs (empty: in-memory only)")
	shards := flag.Int("shards", 4, "shard directories new jobs hash across; each is an independent fsync domain (mount on separate volumes to spread checkpoint IO)")
	fullEvery := flag.Int("full-every", 8, "checkpoint chain period: one full state snapshot, then full-every-1 cheap delta records (1 = every checkpoint full)")
	keep := flag.Int("keep", 3, "full checkpoint chains retained per job; older records are removed after each new full and on boot")
	flag.Parse()

	var st *store
	if *dataDir != "" {
		var err error
		if st, err = newStore(*dataDir, storeConfig{shards: *shards, fullEvery: *fullEvery, keep: *keep}); err != nil {
			log.Fatalf("serve: %v", err)
		}
	}
	s, skipped := newServer(st)
	for _, err := range skipped {
		log.Printf("serve: skipping persisted job: %v", err)
	}
	if st != nil {
		log.Printf("serve: job store at %s (%d jobs restored)", *dataDir, len(s.jobs))
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("serve: listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
