package main

import (
	"errors"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	runtimemetrics "runtime/metrics"

	"github.com/sociograph/reconcile"
	"github.com/sociograph/reconcile/internal/metrics"
	"github.com/sociograph/reconcile/internal/tenant"
)

// serveMetrics is the server's observability surface: one metrics.Registry
// exposed at GET /metrics, fed by three kinds of sources. Counters and
// histograms are pushed at the event (HTTP middleware, scheduler wait
// observer, store write observer, quota refusals, regime switches); live
// gauges (queue depths, slots held, durable bytes, jobs by status) are
// pulled fresh at scrape time through the registry's collect hook, so they
// need no invalidation discipline in the serving paths.
//
// Label hygiene: the only label values are route patterns (static strings
// from the mux), HTTP status codes, tenant names, shard directory names,
// quota resource kinds and job statuses — all low-cardinality and none
// derived from request bodies or credentials. internal/analysis runs the
// secret-hygiene rule over this package to keep it that way.
type serveMetrics struct {
	registry *metrics.Registry

	httpRequests *metrics.CounterVec   // route, code
	httpSeconds  *metrics.HistogramVec // route
	slotWait     *metrics.HistogramVec // tenant
	queueDepth   *metrics.GaugeVec     // tenant
	slotsHeld    *metrics.GaugeVec     // tenant
	quotaRejects *metrics.CounterVec   // resource
	writeBytes   *metrics.CounterVec   // shard
	fsyncSeconds *metrics.HistogramVec // shard
	tenantBytes  *metrics.GaugeVec     // tenant
	regimeSwitch *metrics.Counter
	jobsByStatus *metrics.GaugeVec // status
	jobsCreated  *metrics.Counter
	jobsDeleted  *metrics.Counter
	traceSpans   *metrics.HistogramVec // kind

	// Go runtime health, refreshed at scrape time from runtime/metrics.
	goroutines *metrics.Gauge
	heapBytes  *metrics.Gauge
	gcPause    *metrics.GaugeVec // quantile
	mappings   *metrics.Gauge
}

// newServeMetrics builds the registry, registers every family, and wires
// the push sources (scheduler wait observer, store write observer) and the
// scrape-time collectors onto the server. Called once from newServerWith;
// every server owns its own registry so tests compose freely.
func newServeMetrics(s *server) *serveMetrics {
	r := metrics.NewRegistry()
	m := &serveMetrics{
		registry: r,
		httpRequests: r.CounterVec("reconcile_http_requests_total",
			"HTTP requests served, by route pattern and status code.", "route", "code"),
		httpSeconds: r.HistogramVec("reconcile_http_request_seconds",
			"HTTP request latency in seconds, by route pattern.", nil, "route"),
		slotWait: r.HistogramVec("reconcile_sched_slot_wait_seconds",
			"Time runs spent queued for a fair-scheduler slot, by tenant.", nil, "tenant"),
		queueDepth: r.GaugeVec("reconcile_sched_queue_depth",
			"Runs currently queued for a scheduler slot, by tenant.", "tenant"),
		slotsHeld: r.GaugeVec("reconcile_sched_slots_inflight",
			"Scheduler slots currently held, by tenant.", "tenant"),
		quotaRejects: r.CounterVec("reconcile_quota_rejections_total",
			"Admissions refused over quota, by resource kind.", "resource"),
		writeBytes: r.CounterVec("reconcile_store_write_bytes_total",
			"Bytes of durable files written (graphs, checkpoints, metas), by shard directory.", "shard"),
		fsyncSeconds: r.HistogramVec("reconcile_store_fsync_seconds",
			"Durable write latency in seconds (temp write, fsync, rename, dir fsync), by shard directory.", nil, "shard"),
		tenantBytes: r.GaugeVec("reconcile_store_tenant_bytes",
			"Durable bytes currently held under each tenant's store root.", "tenant"),
		regimeSwitch: r.Counter("reconcile_engine_regime_switches_total",
			"Hybrid-engine handoffs from the parallel to the frontier regime."),
		jobsByStatus: r.GaugeVec("reconcile_jobs",
			"Jobs in the tables, by status.", "status"),
		jobsCreated: r.Counter("reconcile_jobs_created_total",
			"Jobs accepted by POST .../jobs."),
		jobsDeleted: r.Counter("reconcile_jobs_deleted_total",
			"Jobs removed by DELETE .../jobs/{id}."),
		traceSpans: r.HistogramVec("reconcile_trace_span_seconds",
			"Trace span durations in seconds, by span kind (sweep, bucket, checkpoint-write, ...).", nil, "kind"),
		goroutines: r.Gauge("reconcile_go_goroutines",
			"Goroutines at scrape time."),
		heapBytes: r.Gauge("reconcile_go_heap_bytes",
			"Bytes of live heap objects at scrape time."),
		gcPause: r.GaugeVec("reconcile_go_gc_pause_seconds",
			"GC stop-the-world pause quantiles over the process lifetime.", "quantile"),
		mappings: r.Gauge("reconcile_graph_open_mappings",
			"Graph file mappings currently open (-mmap jobs; heap fallbacks not counted)."),
	}
	s.sched.SetWaitObserver(func(tn string, seconds float64) {
		m.slotWait.With(tn).Observe(seconds)
	})
	if s.store != nil {
		s.store.SetWriteObserver(func(shard string, bytes int64, seconds float64) {
			m.writeBytes.With(shard).Add(float64(bytes))
			m.fsyncSeconds.With(shard).Observe(seconds)
		})
	}
	r.OnCollect(func() { m.collect(s) })
	return m
}

// collect refreshes the pull-style gauges at scrape time.
func (m *serveMetrics) collect(s *server) {
	for _, t := range s.reg.All() {
		name := t.Name()
		m.queueDepth.With(name).Set(float64(s.sched.Queued(name)))
		m.slotsHeld.With(name).Set(float64(s.sched.InFlight(name)))
		if s.store != nil {
			m.tenantBytes.With(name).Set(float64(s.store.tenant(name).checkpointBytes()))
		}
	}
	// Snapshot the job pointers under s.mu, read each status under its own
	// j.mu afterwards — collect() must never hold both (createJob's abort
	// path acquires them in the opposite order). The sort erases map order
	// before anything observes the slice.
	s.mu.Lock()
	var jobs []*job
	for _, tj := range s.tenants {
		for _, j := range tj.jobs {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].tname != jobs[b].tname {
			return jobs[a].tname < jobs[b].tname
		}
		return jobs[a].num < jobs[b].num
	})
	counts := make(map[jobStatus]int)
	for _, j := range jobs {
		j.mu.Lock()
		st := j.status
		j.mu.Unlock()
		counts[st]++
	}
	for _, st := range []jobStatus{statusRunning, statusDone, statusCancelled, statusFailed, statusInterrupted} {
		m.jobsByStatus.With(string(st)).Set(float64(counts[st]))
	}
	m.collectRuntime()
}

// collectRuntime refreshes the Go runtime gauges from runtime/metrics — a
// fixed, documented sample set, read in one call at scrape time.
func (m *serveMetrics) collectRuntime() {
	samples := []runtimemetrics.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/pauses:seconds"},
	}
	runtimemetrics.Read(samples)
	if samples[0].Value.Kind() == runtimemetrics.KindUint64 {
		m.goroutines.Set(float64(samples[0].Value.Uint64()))
	}
	if samples[1].Value.Kind() == runtimemetrics.KindUint64 {
		m.heapBytes.Set(float64(samples[1].Value.Uint64()))
	}
	if samples[2].Value.Kind() == runtimemetrics.KindFloat64Histogram {
		h := samples[2].Value.Float64Histogram()
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}} {
			m.gcPause.With(q.label).Set(runtimeHistQuantile(h, q.q))
		}
	}
	m.mappings.Set(float64(reconcile.OpenMappings()))
}

// runtimeHistQuantile estimates quantile q from a runtime/metrics histogram
// the way histogram_quantile does: the upper bound of the bucket the rank
// falls in (the bucket's lower bound when the upper is +Inf, so the estimate
// stays finite whenever any data exists).
func runtimeHistQuantile(h *runtimemetrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				return h.Buckets[i]
			}
			return ub
		}
	}
	return 0
}

// quotaRefused counts one 429 by its resource kind; refusals that are not
// QuotaErrors (there are none today) land under "other".
func (m *serveMetrics) quotaRefused(err error) {
	resource := "other"
	var qe *tenant.QuotaError
	if errors.As(err, &qe) {
		resource = qe.Resource
	}
	m.quotaRejects.With(resource).Inc()
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps the mux with the per-endpoint request metrics. The route
// label is http.Request.Pattern — the registered pattern the mux matched
// (method and path wildcards included), populated after routing, so label
// cardinality is bounded by the route table and never carries request data.
func (m *serveMetrics) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rw := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(rw, r)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		m.httpRequests.With(route, strconv.Itoa(rw.code)).Inc()
		m.httpSeconds.With(route).Observe(time.Since(start).Seconds())
	})
}
