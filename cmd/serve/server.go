package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"github.com/sociograph/reconcile"
)

// jobStatus is the lifecycle of a submitted reconciliation job.
type jobStatus string

const (
	statusRunning   jobStatus = "running"
	statusDone      jobStatus = "done"
	statusCancelled jobStatus = "cancelled"
	statusFailed    jobStatus = "failed"
)

// graphSpec is a graph in the wire format: a node count and an edge list.
type graphSpec struct {
	Nodes int      `json:"nodes"`
	Edges [][2]int `json:"edges"`
}

// optionsSpec mirrors the functional options over JSON. Absent fields keep
// the defaults.
type optionsSpec struct {
	Threshold    *int   `json:"threshold,omitempty"`
	Iterations   *int   `json:"iterations,omitempty"`
	Engine       string `json:"engine,omitempty"`  // "frontier" | "parallel" | "sequential"
	Scoring      string `json:"scoring,omitempty"` // "count" | "adamic-adar"
	Ties         string `json:"ties,omitempty"`    // "reject" | "lowest-id"
	Workers      *int   `json:"workers,omitempty"`
	Margin       *int   `json:"margin,omitempty"`
	Bucketing    *bool  `json:"bucketing,omitempty"`
	MinBucketExp *int   `json:"minBucketExp,omitempty"`
	MaxDegree    *int   `json:"maxDegree,omitempty"`
}

// jobRequest is the POST /v1/jobs body. With untilStable the job sweeps
// until nothing new is found, bounded by maxSweeps (default 50); otherwise
// it performs options.iterations sweeps and maxSweeps is ignored.
type jobRequest struct {
	G1          graphSpec   `json:"g1"`
	G2          graphSpec   `json:"g2"`
	Seeds       [][2]int    `json:"seeds"`
	Options     optionsSpec `json:"options"`
	UntilStable bool        `json:"untilStable,omitempty"`
	MaxSweeps   int         `json:"maxSweeps,omitempty"`
}

// phaseJSON is one progress event in wire form.
type phaseJSON struct {
	Iteration int `json:"iteration"`
	Bucket    int `json:"bucket"`
	Buckets   int `json:"buckets"`
	MinDegree int `json:"minDegree"`
	Matched   int `json:"matched"`
	Total     int `json:"total"`
}

// jobView is the GET /v1/jobs/{id} body.
type jobView struct {
	ID     string      `json:"id"`
	Status jobStatus   `json:"status"`
	Links  int         `json:"links"`
	New    int         `json:"new"`
	Seeds  int         `json:"seeds"`
	Phases []phaseJSON `json:"phases"`
	Error  string      `json:"error,omitempty"`
	Pairs  [][2]int    `json:"pairs,omitempty"`
}

// job is one reconciliation run owned by the server. The job mutex guards
// everything below it; the Reconciler itself is only driven by the single
// run goroutine (or, between runs, by the seeds handler), never concurrently.
type job struct {
	id     string
	num    int // creation order (job IDs sort lexicographically past 9)
	n1, n2 int // node counts, for validating incremental seeds up front

	mu      sync.Mutex
	rec     *reconcile.Reconciler
	cancel  context.CancelFunc
	status  jobStatus
	phases  []phaseJSON
	errMsg  string
	seeds   int
	links   int
	pending sync.WaitGroup // run goroutine in flight (tests wait on it)
}

// view snapshots the job for JSON rendering.
func (j *job) view(includePairs bool) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:     j.id,
		Status: j.status,
		Links:  j.links,
		Seeds:  j.seeds,
		New:    j.links - j.seeds,
		Phases: append([]phaseJSON(nil), j.phases...),
		Error:  j.errMsg,
	}
	if includePairs && j.status != statusRunning {
		for _, p := range j.rec.Result().Pairs {
			v.Pairs = append(v.Pairs, [2]int{int(p.Left), int(p.Right)})
		}
	}
	return v
}

// server is the reconciliation service: an in-memory job table over the
// Reconciler API.
type server struct {
	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
}

func newServer() *server {
	return &server{jobs: make(map[string]*job)}
}

// handler routes the v1 API.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /v1/jobs", s.createJob)
	mux.HandleFunc("GET /v1/jobs", s.listJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	mux.HandleFunc("POST /v1/jobs/{id}/seeds", s.addSeeds)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.cancelJob)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// buildOptions translates an optionsSpec into functional options.
func buildOptions(spec optionsSpec) ([]reconcile.Option, error) {
	var opts []reconcile.Option
	if spec.Threshold != nil {
		opts = append(opts, reconcile.WithThreshold(*spec.Threshold))
	}
	if spec.Iterations != nil {
		opts = append(opts, reconcile.WithIterations(*spec.Iterations))
	}
	switch spec.Engine {
	case "":
	case "frontier":
		opts = append(opts, reconcile.WithEngine(reconcile.EngineFrontier))
	case "parallel":
		opts = append(opts, reconcile.WithEngine(reconcile.EngineParallel))
	case "sequential":
		opts = append(opts, reconcile.WithEngine(reconcile.EngineSequential))
	default:
		return nil, fmt.Errorf("unknown engine %q", spec.Engine)
	}
	switch spec.Scoring {
	case "":
	case "count":
		opts = append(opts, reconcile.WithScoring(reconcile.ScoreWitnessCount))
	case "adamic-adar":
		opts = append(opts, reconcile.WithScoring(reconcile.ScoreAdamicAdar))
	default:
		return nil, fmt.Errorf("unknown scoring %q", spec.Scoring)
	}
	switch spec.Ties {
	case "":
	case "reject":
		opts = append(opts, reconcile.WithTieBreak(reconcile.TieReject))
	case "lowest-id":
		opts = append(opts, reconcile.WithTieBreak(reconcile.TieLowestID))
	default:
		return nil, fmt.Errorf("unknown tie policy %q", spec.Ties)
	}
	if spec.Workers != nil {
		opts = append(opts, reconcile.WithWorkers(*spec.Workers))
	}
	if spec.Margin != nil {
		opts = append(opts, reconcile.WithMargin(*spec.Margin))
	}
	if spec.Bucketing != nil {
		opts = append(opts, reconcile.WithBucketing(*spec.Bucketing))
	}
	if spec.MinBucketExp != nil {
		opts = append(opts, reconcile.WithMinBucketExp(*spec.MinBucketExp))
	}
	if spec.MaxDegree != nil {
		opts = append(opts, reconcile.WithMaxDegree(*spec.MaxDegree))
	}
	return opts, nil
}

func buildGraph(spec graphSpec) (*reconcile.Graph, error) {
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("graph needs a positive node count")
	}
	edges := make([]reconcile.Edge, 0, len(spec.Edges))
	for _, e := range spec.Edges {
		if e[0] < 0 || e[0] >= spec.Nodes || e[1] < 0 || e[1] >= spec.Nodes {
			return nil, fmt.Errorf("edge (%d, %d) out of range for %d nodes", e[0], e[1], spec.Nodes)
		}
		edges = append(edges, reconcile.Edge{U: reconcile.NodeID(e[0]), V: reconcile.NodeID(e[1])})
	}
	return reconcile.FromEdges(spec.Nodes, edges), nil
}

func toPairs(raw [][2]int) []reconcile.Pair {
	out := make([]reconcile.Pair, 0, len(raw))
	for _, p := range raw {
		out = append(out, reconcile.Pair{Left: reconcile.NodeID(p[0]), Right: reconcile.NodeID(p[1])})
	}
	return out
}

// createJob handles POST /v1/jobs: build the graphs and a Reconciler, start
// the run in a goroutine, answer 202 with the job id immediately.
func (s *server) createJob(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	g1, err := buildGraph(req.G1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "g1: %v", err)
		return
	}
	g2, err := buildGraph(req.G2)
	if err != nil {
		writeError(w, http.StatusBadRequest, "g2: %v", err)
		return
	}
	opts, err := buildOptions(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "options: %v", err)
		return
	}

	s.mu.Lock()
	s.nextID++
	j := &job{
		id:     fmt.Sprintf("job-%d", s.nextID),
		num:    s.nextID,
		n1:     req.G1.Nodes,
		n2:     req.G2.Nodes,
		status: statusRunning,
	}
	s.jobs[j.id] = j
	s.mu.Unlock()

	// The progress hook streams phase events into the job under its lock,
	// so a concurrent GET sees bucket-by-bucket statistics live.
	opts = append(opts,
		reconcile.WithSeeds(toPairs(req.Seeds)),
		reconcile.WithProgress(func(e reconcile.PhaseEvent) {
			j.mu.Lock()
			j.phases = append(j.phases, phaseJSON{
				Iteration: e.Iteration,
				Bucket:    e.Bucket,
				Buckets:   e.Buckets,
				MinDegree: e.MinDegree,
				Matched:   e.Matched,
				Total:     e.TotalLinks,
			})
			j.links = e.TotalLinks
			j.mu.Unlock()
		}))

	rec, err := reconcile.New(g1, g2, opts...)
	if err != nil {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest, "constructing reconciler: %v", err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.mu.Lock()
	j.rec = rec
	j.cancel = cancel
	j.seeds = rec.Len()
	j.links = rec.Len()
	j.mu.Unlock()

	maxSweeps := req.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 50
	}
	j.pending.Add(1)
	go func() {
		defer j.pending.Done()
		defer cancel()
		var err error
		if req.UntilStable {
			_, err = rec.RunUntilStable(ctx, maxSweeps)
		} else {
			_, err = rec.Run(ctx)
		}
		j.finish(err)
	}()

	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "status": string(statusRunning)})
}

// finish records a run's outcome on the job.
func (j *job) finish(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.links = j.rec.Len()
	switch {
	case err == nil:
		j.status = statusDone
	case errors.Is(err, context.Canceled):
		j.status = statusCancelled
		j.errMsg = err.Error()
	default:
		j.status = statusFailed
		j.errMsg = err.Error()
	}
}

func (s *server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	}
	return j
}

// getJob handles GET /v1/jobs/{id}; ?pairs=1 includes the link list once the
// job has stopped running.
func (s *server) getJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.view(r.URL.Query().Get("pairs") == "1"))
}

// listJobs handles GET /v1/jobs.
func (s *server) listJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].num < jobs[b].num })
	views := make([]jobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.view(false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

// addSeeds handles POST /v1/jobs/{id}/seeds: ingest incremental trusted
// links into a job that is not currently running, then resume sweeping
// asynchronously until stable.
func (s *server) addSeeds(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	var req struct {
		Seeds [][2]int `json:"seeds"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}

	j.mu.Lock()
	if j.status == statusRunning {
		j.mu.Unlock()
		writeError(w, http.StatusConflict, "job %s is running; wait for it to finish", j.id)
		return
	}
	// All-or-nothing: Reconciler.AddSeeds commits seeds up to the first
	// conflict, which would leave the job's counters and matching out of
	// step on a 409. Pre-check the whole batch against the current links
	// (and itself) so a rejected request changes nothing.
	newSeeds := toPairs(req.Seeds)
	usedL := make(map[reconcile.NodeID]reconcile.NodeID)
	usedR := make(map[reconcile.NodeID]reconcile.NodeID)
	for _, p := range j.rec.Result().Pairs {
		usedL[p.Left] = p.Right
		usedR[p.Right] = p.Left
	}
	for _, p := range newSeeds {
		if int(p.Left) >= j.n1 || int(p.Right) >= j.n2 {
			j.mu.Unlock()
			writeError(w, http.StatusBadRequest, "seed (%d, %d): node out of range (%d x %d nodes)", p.Left, p.Right, j.n1, j.n2)
			return
		}
		if cur, ok := usedL[p.Left]; ok {
			if cur == p.Right {
				continue // exact duplicate, ignored by AddSeeds
			}
			j.mu.Unlock()
			writeError(w, http.StatusConflict, "seed (%d, %d): left node already linked to %d", p.Left, p.Right, cur)
			return
		}
		if cur, ok := usedR[p.Right]; ok {
			j.mu.Unlock()
			writeError(w, http.StatusConflict, "seed (%d, %d): right node already linked to %d", p.Left, p.Right, cur)
			return
		}
		usedL[p.Left] = p.Right
		usedR[p.Right] = p.Left
	}
	before := j.rec.Len()
	if err := j.rec.AddSeeds(newSeeds); err != nil {
		j.mu.Unlock()
		writeError(w, http.StatusConflict, "adding seeds: %v", err)
		return
	}
	j.seeds += j.rec.Len() - before // duplicates are ignored, not inserted
	j.links = j.rec.Len()
	j.status = statusRunning
	j.errMsg = ""
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	rec := j.rec
	j.mu.Unlock()

	j.pending.Add(1)
	go func() {
		defer j.pending.Done()
		defer cancel()
		_, err := rec.RunUntilStable(ctx, 50)
		j.finish(err)
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "status": string(statusRunning)})
}

// cancelJob handles POST /v1/jobs/{id}/cancel: stop a running job at the
// next bucket boundary. Cancelling a finished job is a no-op.
func (s *server) cancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.cancel != nil {
		j.cancel()
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id})
}
