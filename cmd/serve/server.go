package main

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/sociograph/reconcile"
	"github.com/sociograph/reconcile/internal/tenant"
	"github.com/sociograph/reconcile/internal/trace"
)

// jobStatus is the lifecycle of a submitted reconciliation job.
type jobStatus string

const (
	statusRunning   jobStatus = "running"
	statusDone      jobStatus = "done"
	statusCancelled jobStatus = "cancelled"
	statusFailed    jobStatus = "failed"
	// statusInterrupted marks a job that was running when the server died;
	// its last checkpoint is intact and POST /v1/jobs/{id}/resume finishes
	// the run bit-identically to an uninterrupted one.
	statusInterrupted jobStatus = "interrupted"
)

// graphSpec is a graph in the wire format: a node count and an edge list.
type graphSpec struct {
	Nodes int      `json:"nodes"`
	Edges [][2]int `json:"edges"`
}

// optionsSpec mirrors the functional options over JSON. Absent fields keep
// the defaults.
type optionsSpec struct {
	Threshold    *int   `json:"threshold,omitempty"`
	Iterations   *int   `json:"iterations,omitempty"`
	Engine       string `json:"engine,omitempty"`  // "hybrid" | "frontier" | "parallel" | "sequential"
	Scoring      string `json:"scoring,omitempty"` // "count" | "adamic-adar"
	Ties         string `json:"ties,omitempty"`    // "reject" | "lowest-id"
	Workers      *int   `json:"workers,omitempty"`
	Margin       *int   `json:"margin,omitempty"`
	Bucketing    *bool  `json:"bucketing,omitempty"`
	MinBucketExp *int   `json:"minBucketExp,omitempty"`
	MaxDegree    *int   `json:"maxDegree,omitempty"`
}

// jobRequest is the POST /v1/jobs body. With untilStable the job sweeps
// until nothing new is found, bounded by maxSweeps (default 50); otherwise
// it performs options.iterations sweeps and maxSweeps is ignored.
type jobRequest struct {
	G1          graphSpec   `json:"g1"`
	G2          graphSpec   `json:"g2"`
	Seeds       [][2]int    `json:"seeds"`
	Options     optionsSpec `json:"options"`
	UntilStable bool        `json:"untilStable,omitempty"`
	MaxSweeps   int         `json:"maxSweeps,omitempty"`
}

// phaseJSON is one progress event in wire form.
type phaseJSON struct {
	Iteration int `json:"iteration"`
	Bucket    int `json:"bucket"`
	Buckets   int `json:"buckets"`
	MinDegree int `json:"minDegree"`
	Matched   int `json:"matched"`
	Total     int `json:"total"`
}

// jobView is the GET /v1/jobs/{id} body.
type jobView struct {
	ID     string      `json:"id"`
	Status jobStatus   `json:"status"`
	Links  int         `json:"links"`
	New    int         `json:"new"`
	Seeds  int         `json:"seeds"`
	Phases []phaseJSON `json:"phases"`
	Error  string      `json:"error,omitempty"`
	Pairs  [][2]int    `json:"pairs,omitempty"`
}

// job is one reconciliation run owned by the server. The job mutex guards
// everything below it; the Reconciler itself is only driven by the single
// run goroutine (or, between runs, by the seeds/checkpoint/resume handlers),
// never concurrently.
type job struct {
	id          string
	num         int            // creation order (job IDs sort lexicographically past 9)
	tname       string         // owning tenant's name
	tn          *tenant.Tenant // owning tenant (quota counters)
	n1, n2      int            // node counts, for validating incremental seeds up front
	js          *jobStore      // the job's slice of the store; nil without -data-dir
	untilStable bool
	maxSweeps   int
	// mg1/mg2 hold the graphs' file mappings for jobs restored under -mmap
	// (nil otherwise): the Reconciler reads the mapped arrays in place, so
	// the job owns their lifetime — runs pin them (pinGraphs), and they are
	// closed only after the run goroutine drains, on delete and at shutdown.
	mg1, mg2 *reconcile.MappedGraph
	// tr is the job's span recorder — sweeps, buckets, checkpoint writes,
	// slot waits, and (after a restart) replay and graph-open spans. Set once
	// at creation or restore, before any run goroutine starts, and never
	// replaced, so emitters read it without j.mu; the recorder itself is
	// concurrency-safe.
	tr *trace.Recorder

	mu             sync.Mutex
	rec            *reconcile.Reconciler
	cancel         context.CancelFunc
	status         jobStatus
	phases         []phaseJSON
	errMsg         string
	seeds          int
	links          int
	deleted        bool           // DELETE in progress: no handler or persist may touch it again
	wantCheckpoint bool           // one-shot: checkpoint at the next phase boundary
	frontier       bool           // last observed hybrid regime (frontier = true)
	persistErr     string         // last finish-time checkpoint failure; "" = written
	pending        sync.WaitGroup // run goroutine in flight (tests wait on it)
}

// meta snapshots the job's bookkeeping for persistence. Caller holds j.mu.
func (j *job) metaLocked() jobMeta {
	return jobMeta{
		ID:          j.id,
		Num:         j.num,
		Status:      j.status,
		Error:       j.errMsg,
		Seeds:       j.seeds,
		UntilStable: j.untilStable,
		MaxSweeps:   j.maxSweeps,
		Phases:      append([]phaseJSON(nil), j.phases...),
		Trace:       j.tr.Export(),
	}
}

// persistLocked checkpoints the job's state and meta to the store, if any.
// Caller holds j.mu and must be the goroutine driving the Reconciler (the
// run goroutine inside a progress hook, or a handler while no run is in
// flight) — ExportState is only safe at a phase boundary, and the
// checkpoint chain's delta base advances with each write.
func (j *job) persistLocked() error {
	if j.js == nil || j.deleted {
		return nil
	}
	err := j.js.checkpoint(j.rec, j.metaLocked())
	if j.status != statusRunning {
		// The job just went (or already is) idle; its next checkpoint, if
		// any, re-anchors with a full, so the delta base is dead weight.
		j.js.releaseBase()
	}
	return err
}

// view snapshots the job for JSON rendering. The lock covers only the
// bookkeeping copies and one bulk pair snapshot; the per-pair wire
// conversion (and the caller's JSON marshal) runs outside j.mu, so a
// million-link ?pairs=1 read no longer stalls the run goroutine's progress
// hook and checkpoint path for its duration. The snapshot must still be
// taken under the lock: an addSeeds can restart the run (and with it the
// only goroutine allowed to drive the Reconciler) the moment it is
// released.
func (j *job) view(includePairs bool) jobView {
	j.mu.Lock()
	v := jobView{
		ID:     j.id,
		Status: j.status,
		Links:  j.links,
		Seeds:  j.seeds,
		New:    j.links - j.seeds,
		Phases: append([]phaseJSON(nil), j.phases...),
		Error:  j.errMsg,
	}
	var pairs []reconcile.Pair
	if includePairs && j.status != statusRunning {
		pairs = j.rec.Result().Pairs // Result materializes a fresh copy
	}
	j.mu.Unlock()
	if pairs != nil {
		v.Pairs = make([][2]int, 0, len(pairs))
		for _, p := range pairs {
			v.Pairs = append(v.Pairs, [2]int{int(p.Left), int(p.Right)})
		}
	}
	return v
}

// tenantJobs is one tenant's job table. Guarded by the server mutex.
type tenantJobs struct {
	name   string
	jobs   map[string]*job
	nextID int
}

// serverConfig carries the serve layer's tenancy and hardening knobs.
type serverConfig struct {
	registry *tenant.Registry
	// runSlots caps concurrent run goroutines across all tenants; <= 0
	// means unlimited (the pre-tenancy behaviour).
	runSlots int
	// adminToken protects /v1/admin; empty leaves the admin surface open
	// (development mode — set it in any shared deployment).
	adminToken string
	// maxBodyBytes bounds every request body read; <= 0 uses
	// defaultMaxBodyBytes.
	maxBodyBytes int64
}

// defaultMaxBodyBytes bounds request bodies when -max-body-bytes is unset:
// large enough for multi-million-edge graph submissions, small enough that
// a stray upload cannot exhaust memory.
const defaultMaxBodyBytes = 256 << 20

// server is the reconciliation service: per-tenant job tables over the
// Reconciler API, optionally backed by a crash-safe on-disk store
// (-data-dir), with bearer-token auth, per-tenant quotas, and a
// weighted-fair run-slot scheduler between tenants.
type server struct {
	store        *store // nil: jobs live in RAM only
	reg          *tenant.Registry
	sched        *tenant.Scheduler
	metrics      *serveMetrics
	adminToken   string
	maxBodyBytes int64

	mu      sync.Mutex
	tenants map[string]*tenantJobs
	// jobs aliases the default tenant's job table — the pre-tenancy field
	// the store suites (and any single-tenant tooling) reach into.
	jobs map[string]*job
}

// newServer builds a single-tenant service with pre-tenancy defaults: an
// open unlimited default tenant, no admin token, unlimited run slots.
func newServer(st *store) (*server, []error) {
	return newServerWith(st, serverConfig{registry: tenant.NewRegistry()})
}

// newServerWith builds the service. With a store, previously persisted jobs
// are restored per tenant from their last checkpoints and re-listed:
// finished jobs keep their terminal status and full results; jobs that were
// running when the process died come back as "interrupted" and can be
// finished with POST .../resume. Tenants discovered on disk but absent from
// the registry are auto-registered open and unlimited so their jobs stay
// servable (tokens and quotas can be applied over the admin API).
// Unreadable or half-written jobs are skipped, not fatal — crash recovery
// must not brick the service.
func newServerWith(st *store, cfg serverConfig) (*server, []error) {
	reg := cfg.registry
	if reg == nil {
		reg = tenant.NewRegistry()
	}
	if cfg.maxBodyBytes <= 0 {
		cfg.maxBodyBytes = defaultMaxBodyBytes
	}
	s := &server{
		store:        st,
		reg:          reg,
		sched:        tenant.NewScheduler(cfg.runSlots, reg),
		adminToken:   cfg.adminToken,
		maxBodyBytes: cfg.maxBodyBytes,
		tenants:      make(map[string]*tenantJobs),
	}
	s.metrics = newServeMetrics(s)
	for _, t := range reg.All() {
		s.tenantTable(t.Name())
		if st != nil {
			st.tenant(t.Name()) // pre-create the tenant's store root
		}
	}
	s.jobs = s.tenantTable(tenant.Default).jobs
	if st == nil {
		return s, nil
	}
	loaded, maxNum, skipped := st.loadAll()
	for name, n := range maxNum {
		if !tenant.ValidName(name) {
			continue // load already skipped these jobs with errors
		}
		s.tenantTable(name).nextID = n
	}
	for _, p := range loaded {
		if reg.Get(p.tenant) == nil {
			if _, err := reg.Register(tenant.Config{Name: p.tenant}); err != nil {
				skipped = append(skipped, fmt.Errorf("store: tenant %s: %w", p.tenant, err))
				continue
			}
		}
		t := reg.Get(p.tenant)
		j := &job{
			id:          p.meta.ID,
			num:         p.meta.Num,
			tname:       p.tenant,
			tn:          t,
			n1:          p.g1.NumNodes(),
			n2:          p.g2.NumNodes(),
			js:          p.js,
			untilStable: p.meta.UntilStable,
			maxSweeps:   p.meta.MaxSweeps,
			status:      p.meta.Status,
			errMsg:      p.meta.Error,
			seeds:       p.meta.Seeds,
			mg1:         p.mg1,
			mg2:         p.mg2,
		}
		// Continue the persisted trace (or start one for jobs persisted before
		// tracing existed): the restored timeline picks up after the
		// snapshot's clock position, and the boot work the store measured —
		// graph opens, chain replay — lands as spans before the resume mark.
		j.tr = s.newJobRecorder(p.meta.Trace)
		p.js.tracer = j.tr
		for _, b := range p.js.boot {
			j.tr.Observe(b.kind, b.detail, b.nanos)
		}
		p.js.boot = nil
		j.tr.Mark(trace.KindResume, "process restart")
		rec, err := reconcile.RestoreSessionState(p.g1, p.g2, p.state,
			reconcile.WithProgress(s.progressHook(j)),
			reconcile.WithTracer(j.tr))
		if err != nil {
			p.closeMapped()
			skipped = append(skipped, fmt.Errorf("store: tenant %s job %s: %w", p.tenant, p.meta.ID, err))
			continue
		}
		j.rec = rec
		// A state restored past the hybrid handoff must not count a switch
		// on its first phase event: the switch happened in a previous life.
		j.frontier = rec.FrontierActive()
		// The replayed chain is the durable truth (each record lands before
		// its meta, so a crash between the two renames leaves the meta one
		// phase batch behind); rebuild the wire counters and phase log from
		// it.
		j.links = rec.Len()
		j.phases = wirePhases(rec)
		if j.status == statusRunning {
			j.status = statusInterrupted
			j.errMsg = "server stopped mid-run; POST /v1/jobs/" + j.id + "/resume to finish"
		}
		if p.dropped > 0 {
			// Recovery fell back to the last consistent chain prefix: the
			// restored state is older than the last acknowledged checkpoint,
			// whatever the meta claims. Resume finishes the rest
			// bit-identically.
			j.status = statusInterrupted
			j.errMsg = fmt.Sprintf("recovery dropped %d trailing checkpoint record(s); POST /v1/jobs/%s/resume to finish", p.dropped, j.id)
		}
		// Restored jobs occupy their node quota (the data is resident);
		// unchecked, because refusing data already on disk helps no one.
		t.AddNodes(int64(j.n1 + j.n2))
		s.tenantTable(p.tenant).jobs[j.id] = j
	}
	return s, skipped
}

// tenantTable returns (creating if needed) a tenant's job table.
func (s *server) tenantTable(name string) *tenantJobs {
	s.mu.Lock()
	defer s.mu.Unlock()
	tj := s.tenants[name]
	if tj == nil {
		tj = &tenantJobs{name: name, jobs: make(map[string]*job)}
		s.tenants[name] = tj
	}
	return tj
}

// wirePhases reconstructs the wire-form phase log from a Reconciler's own
// phase statistics. Every sweep runs the full bucket schedule in order, so
// the bucket index is the entry's position within its sweep.
func wirePhases(rec *reconcile.Reconciler) []phaseJSON {
	g1, g2 := rec.Graphs()
	buckets := len(rec.Options().BucketSchedule(g1, g2))
	var out []phaseJSON
	for i, ph := range rec.Result().Phases {
		out = append(out, phaseJSON{
			Iteration: ph.Iteration,
			Bucket:    i%buckets + 1,
			Buckets:   buckets,
			MinDegree: ph.MinDegree,
			Matched:   ph.Matched,
			Total:     ph.TotalL,
		})
	}
	return out
}

// progressHook streams phase events into the job under its lock, so a
// concurrent GET sees bucket-by-bucket statistics live; with a store it also
// checkpoints at every sweep boundary (and at any phase boundary an explicit
// checkpoint request is waiting on). The hook runs on the run goroutine
// between buckets, exactly where session state is exportable.
func (s *server) progressHook(j *job) func(reconcile.PhaseEvent) {
	return func(e reconcile.PhaseEvent) {
		j.mu.Lock()
		j.phases = append(j.phases, phaseJSON{
			Iteration: e.Iteration,
			Bucket:    e.Bucket,
			Buckets:   e.Buckets,
			MinDegree: e.MinDegree,
			Matched:   e.Matched,
			Total:     e.TotalLinks,
		})
		if e.Bucket == e.Buckets {
			// Mirror the session's own bounded phase log: a long-lived
			// incremental job keeps the last PhaseRetainSweeps sweeps of
			// bucket detail, so the wire view and meta stay O(1) however
			// many resume/seed rounds the job accumulates.
			minIter := e.Iteration - reconcile.PhaseRetainSweeps + 1
			cut := 0
			for cut < len(j.phases) && j.phases[cut].Iteration < minIter {
				cut++
			}
			if cut > 0 {
				j.phases = append(j.phases[:0], j.phases[cut:]...)
			}
		}
		j.links = e.TotalLinks
		// The hook runs on the run goroutine between buckets — the one place
		// session state is readable mid-run — so sample the hybrid regime
		// here and count the (one-way) parallel-to-frontier handoff.
		if fr := j.rec.FrontierActive(); fr && !j.frontier {
			j.frontier = true
			s.metrics.regimeSwitch.Inc()
		}
		persist := j.js != nil && !j.deleted && (e.Bucket == e.Buckets || j.wantCheckpoint)
		var meta jobMeta
		var rec *reconcile.Reconciler
		if persist {
			j.wantCheckpoint = false
			meta = j.metaLocked()
			rec = j.rec
		}
		j.mu.Unlock()
		if !persist {
			return
		}
		// The encode and fsync run outside j.mu so reads stay responsive
		// during checkpoints. This is safe: the job is running, so this run
		// goroutine is the only driver of the Reconciler and its checkpoint
		// chain (every handler that would touch either refuses running
		// jobs), and the bookkeeping snapshot was taken under the lock.
		if err := j.js.checkpoint(rec, meta); err != nil {
			slog.Error("checkpoint failed", "tenant", j.tname, "job", j.id, "err", err)
		}
	}
}

// newJobRecorder builds a job's span recorder — restoring the persisted
// trace when one exists — and feeds every completed span into the
// reconcile_trace_span_seconds histogram. The hook runs outside the
// recorder's mutex on the emitting goroutine.
func (s *server) newJobRecorder(p *trace.Persisted) *trace.Recorder {
	cfg := trace.Config{OnSpan: func(sp trace.Span) {
		s.metrics.traceSpans.With(string(sp.Kind)).Observe(float64(sp.End-sp.Start) / 1e9)
	}}
	if p != nil {
		return trace.Restore(cfg, p)
	}
	return trace.New(cfg)
}

// tenantHandler is a job-API handler bound to an authenticated tenant.
type tenantHandler func(w http.ResponseWriter, r *http.Request, tj *tenantJobs, t *tenant.Tenant)

// handler routes the v1 API: the tenant-namespaced job surface
// (/v1/tenants/{tenant}/jobs...), the un-namespaced twin mapped to the
// default tenant (every pre-tenancy client keeps working), and the admin
// surface (/v1/admin/tenants).
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	routes := []struct {
		method, suffix string
		h              tenantHandler
	}{
		{"POST", "/jobs", s.createJob},
		{"GET", "/jobs", s.listJobs},
		{"GET", "/jobs/{id}", s.getJob},
		{"DELETE", "/jobs/{id}", s.deleteJob},
		{"POST", "/jobs/{id}/seeds", s.addSeeds},
		{"POST", "/jobs/{id}/cancel", s.cancelJob},
		{"POST", "/jobs/{id}/checkpoint", s.checkpointJob},
		{"POST", "/jobs/{id}/resume", s.resumeJob},
		{"GET", "/jobs/{id}/trace", s.getTrace},
	}
	for _, rt := range routes {
		mux.HandleFunc(rt.method+" /v1"+rt.suffix, s.tenantRoute(rt.h))
		mux.HandleFunc(rt.method+" /v1/tenants/{tenant}"+rt.suffix, s.tenantRoute(rt.h))
	}
	mux.HandleFunc("GET /v1/admin/tenants", s.adminRoute(s.adminListTenants))
	mux.HandleFunc("PUT /v1/admin/tenants/{tenant}", s.adminRoute(s.adminPutTenant))
	// The metrics surface is open like /healthz: its labels are route
	// patterns, tenant names, shard names and statuses — never tokens or
	// request data (the secret-hygiene analyzer pins this package).
	mux.Handle("GET /metrics", s.metrics.registry.Handler())
	// The profiling surface rides behind the same credential as /v1/admin:
	// pprof exposes heap contents and execution timings, which in a shared
	// deployment are as sensitive as the tenant table. (Importing net/http/
	// pprof also registers on http.DefaultServeMux; that mux is never
	// served here, so only these guarded mounts are reachable.)
	mux.HandleFunc("GET /debug/pprof/", s.adminRoute(pprof.Index))
	mux.HandleFunc("GET /debug/pprof/cmdline", s.adminRoute(pprof.Cmdline))
	mux.HandleFunc("GET /debug/pprof/profile", s.adminRoute(pprof.Profile))
	mux.HandleFunc("GET /debug/pprof/symbol", s.adminRoute(pprof.Symbol))
	mux.HandleFunc("GET /debug/pprof/trace", s.adminRoute(pprof.Trace))
	return s.metrics.instrument(logRequests(mux))
}

// reqID numbers requests process-wide, for correlating a request's log
// lines without trusting (or echoing) anything client-supplied.
var reqID atomic.Int64

// logRequests tags every request with a process-unique id and logs it at
// debug level once served, with the matched route pattern (never the raw
// URL — tenant names are fine, but patterns keep cardinality and
// accidental-secret risk at zero) and the tenant/job path values.
func logRequests(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := reqID.Add(1)
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sr, r)
		// The mux records the matched pattern on the request during routing,
		// so it is readable here, after serving — same trick instrument uses.
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		slog.Debug("http request",
			"requestId", id, "method", r.Method, "route", route, "status", sr.code,
			"tenant", r.PathValue("tenant"), "job", r.PathValue("id"))
	})
}

// traceView is the GET .../jobs/{id}/trace body: the retained span timeline
// plus cumulative per-kind totals (which include spans the retention window
// has dropped).
type traceView struct {
	ID     string                      `json:"id"`
	Sweep  int                         `json:"sweep"`
	Spans  []trace.Span                `json:"spans"`
	Totals map[trace.Kind]trace.Totals `json:"totals"`
}

// getTrace handles GET .../jobs/{id}/trace: the job's execution trace as a
// JSON timeline, or — with ?format=chrome — as Chrome trace_event JSON
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
func (s *server) getTrace(w http.ResponseWriter, r *http.Request, tj *tenantJobs, t *tenant.Tenant) {
	j := s.lookup(w, r, tj)
	if j == nil {
		return
	}
	p := j.tr.Export()
	if r.URL.Query().Get("format") == "chrome" {
		writeJSON(w, http.StatusOK, p.Chrome(j.id))
		return
	}
	writeJSON(w, http.StatusOK, traceView{ID: j.id, Sweep: p.Sweep, Spans: p.Spans, Totals: p.TotalsByKind()})
}

// bearerToken extracts the Authorization bearer token, if any.
func bearerToken(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	if token, ok := strings.CutPrefix(auth, "Bearer "); ok {
		return strings.TrimSpace(token)
	}
	return ""
}

// tenantRoute authenticates the request against its tenant (the {tenant}
// path segment, or the default tenant on un-namespaced routes), bounds the
// body, and hands the authenticated tenant to the handler. Unknown tenants
// are 404, missing credentials 401, wrong credentials 403.
func (s *server) tenantRoute(h tenantHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		if name == "" {
			name = tenant.Default
		}
		t, err := s.reg.Authenticate(name, bearerToken(r))
		switch {
		case errors.Is(err, tenant.ErrUnknownTenant):
			writeError(w, http.StatusNotFound, "no tenant %q", name)
			return
		case errors.Is(err, tenant.ErrNoToken):
			w.Header().Set("WWW-Authenticate", `Bearer realm="reconcile"`)
			writeError(w, http.StatusUnauthorized, "tenant %s requires a bearer token", name)
			return
		case errors.Is(err, tenant.ErrBadToken):
			writeError(w, http.StatusForbidden, "token not valid for tenant %s", name)
			return
		case err != nil:
			writeError(w, http.StatusInternalServerError, "authenticating: %v", err)
			return
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
		}
		h(w, r, s.tenantTable(name), t)
	}
}

// adminRoute guards the admin surface with the -admin-token credential.
// With no admin token configured the surface is open (development mode).
func (s *server) adminRoute(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.adminToken != "" {
			got := bearerToken(r)
			if got == "" {
				w.Header().Set("WWW-Authenticate", `Bearer realm="reconcile-admin"`)
				writeError(w, http.StatusUnauthorized, "admin API requires a bearer token")
				return
			}
			if subtle.ConstantTimeCompare([]byte(got), []byte(s.adminToken)) != 1 {
				writeError(w, http.StatusForbidden, "token not valid for the admin API")
				return
			}
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeQuotaError renders a tenant admission refusal as 429 with the
// standard error JSON, counting it by resource kind — every quota refusal
// in the API funnels through here.
func (s *server) writeQuotaError(w http.ResponseWriter, err error) {
	s.metrics.quotaRefused(err)
	writeError(w, http.StatusTooManyRequests, "%v", err)
}

// decodeBody decodes a JSON request body, translating an
// http.MaxBytesReader overrun into 413 and anything else into 400. Returns
// false when a response has been written.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		return false
	}
	writeError(w, http.StatusBadRequest, "decoding request: %v", err)
	return false
}

// buildOptions translates an optionsSpec into functional options.
func buildOptions(spec optionsSpec) ([]reconcile.Option, error) {
	var opts []reconcile.Option
	if spec.Threshold != nil {
		opts = append(opts, reconcile.WithThreshold(*spec.Threshold))
	}
	if spec.Iterations != nil {
		opts = append(opts, reconcile.WithIterations(*spec.Iterations))
	}
	switch spec.Engine {
	case "":
	case "hybrid":
		opts = append(opts, reconcile.WithEngine(reconcile.EngineHybrid))
	case "frontier":
		opts = append(opts, reconcile.WithEngine(reconcile.EngineFrontier))
	case "parallel":
		opts = append(opts, reconcile.WithEngine(reconcile.EngineParallel))
	case "sequential":
		opts = append(opts, reconcile.WithEngine(reconcile.EngineSequential))
	default:
		return nil, fmt.Errorf("unknown engine %q", spec.Engine)
	}
	switch spec.Scoring {
	case "":
	case "count":
		opts = append(opts, reconcile.WithScoring(reconcile.ScoreWitnessCount))
	case "adamic-adar":
		opts = append(opts, reconcile.WithScoring(reconcile.ScoreAdamicAdar))
	default:
		return nil, fmt.Errorf("unknown scoring %q", spec.Scoring)
	}
	switch spec.Ties {
	case "":
	case "reject":
		opts = append(opts, reconcile.WithTieBreak(reconcile.TieReject))
	case "lowest-id":
		opts = append(opts, reconcile.WithTieBreak(reconcile.TieLowestID))
	default:
		return nil, fmt.Errorf("unknown tie policy %q", spec.Ties)
	}
	if spec.Workers != nil {
		opts = append(opts, reconcile.WithWorkers(*spec.Workers))
	}
	if spec.Margin != nil {
		opts = append(opts, reconcile.WithMargin(*spec.Margin))
	}
	if spec.Bucketing != nil {
		opts = append(opts, reconcile.WithBucketing(*spec.Bucketing))
	}
	if spec.MinBucketExp != nil {
		opts = append(opts, reconcile.WithMinBucketExp(*spec.MinBucketExp))
	}
	if spec.MaxDegree != nil {
		opts = append(opts, reconcile.WithMaxDegree(*spec.MaxDegree))
	}
	return opts, nil
}

func buildGraph(spec graphSpec) (*reconcile.Graph, error) {
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("graph needs a positive node count")
	}
	edges := make([]reconcile.Edge, 0, len(spec.Edges))
	for _, e := range spec.Edges {
		if e[0] < 0 || e[0] >= spec.Nodes || e[1] < 0 || e[1] >= spec.Nodes {
			return nil, fmt.Errorf("edge (%d, %d) out of range for %d nodes", e[0], e[1], spec.Nodes)
		}
		edges = append(edges, reconcile.Edge{U: reconcile.NodeID(e[0]), V: reconcile.NodeID(e[1])})
	}
	return reconcile.FromEdges(spec.Nodes, edges), nil
}

func toPairs(raw [][2]int) []reconcile.Pair {
	out := make([]reconcile.Pair, 0, len(raw))
	for _, p := range raw {
		out = append(out, reconcile.Pair{Left: reconcile.NodeID(p[0]), Right: reconcile.NodeID(p[1])})
	}
	return out
}

// runJob drives one admitted run on its own goroutine: wait for a fair
// run slot (queued runs still read as "running" over the API — the queue
// position is a scheduling detail), run, finish. The job-quota slot
// acquired at admission is released in finish. Callers must hold j.mu, so
// pending.Add is ordered before any deleteJob's pending.Wait (which takes
// j.mu to set the deleted flag first).
func (s *server) runJob(ctx context.Context, cancel context.CancelFunc, j *job, run func(context.Context) error) {
	j.pending.Add(1)
	go func() {
		defer j.pending.Done()
		defer cancel()
		release, err := s.sched.AcquireTraced(ctx, j.tname, func(waitNanos int64) {
			j.tr.Observe(trace.KindSlotWait, "run slot", waitNanos)
		})
		if err != nil {
			j.finish(err) // cancelled (or shut down) while queued
			return
		}
		defer release()
		unpin, err := j.pinGraphs()
		if err != nil {
			j.finish(err) // mappings already closed: the job is being deleted
			return
		}
		defer unpin()
		j.finish(run(ctx))
	}()
}

// pinGraphs pins the job's graph mappings for the duration of a run, so a
// Close racing the run (delete, shutdown) waits for the run's bucket
// boundary instead of unmapping memory the engines are scanning. A no-op
// for heap-backed jobs.
func (j *job) pinGraphs() (unpin func(), err error) {
	if j.mg1 == nil {
		return func() {}, nil
	}
	if _, err := j.mg1.Acquire(); err != nil {
		return nil, err
	}
	if _, err := j.mg2.Acquire(); err != nil {
		j.mg1.Release()
		return nil, err
	}
	return func() {
		j.mg2.Release()
		j.mg1.Release()
	}, nil
}

// closeMappings closes the job's graph mappings. Callers must guarantee no
// run goroutine is in flight (pending.Wait has returned).
func (j *job) closeMappings() {
	if j.mg1 != nil {
		j.mg1.Close()
	}
	if j.mg2 != nil {
		j.mg2.Close()
	}
}

// createJob handles POST .../jobs: admit against the tenant's quotas, build
// the graphs and a Reconciler, start the run in a goroutine, answer 202
// with the job id immediately.
func (s *server) createJob(w http.ResponseWriter, r *http.Request, tj *tenantJobs, t *tenant.Tenant) {
	var req jobRequest
	if !decodeBody(w, r, &req) {
		return
	}
	g1, err := buildGraph(req.G1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "g1: %v", err)
		return
	}
	g2, err := buildGraph(req.G2)
	if err != nil {
		writeError(w, http.StatusBadRequest, "g2: %v", err)
		return
	}
	opts, err := buildOptions(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "options: %v", err)
		return
	}

	// Admission control: a concurrent-run slot, the graph-node budget, and
	// (with a store) the durable-byte budget. All-or-nothing — a refused
	// submission holds nothing.
	if err := t.AcquireJob(); err != nil {
		s.writeQuotaError(w, err)
		return
	}
	nodes := int64(req.G1.Nodes) + int64(req.G2.Nodes)
	if err := t.ReserveNodes(nodes); err != nil {
		t.ReleaseJob()
		s.writeQuotaError(w, err)
		return
	}
	undo := func() {
		t.ReleaseJob()
		t.ReleaseNodes(nodes)
	}
	if s.store != nil {
		if err := t.CheckBytes(s.store.tenant(t.Name()).checkpointBytes()); err != nil {
			undo()
			s.writeQuotaError(w, err)
			return
		}
	}

	maxSweeps := req.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 50
	}
	s.mu.Lock()
	tj.nextID++
	j := &job{
		id:          fmt.Sprintf("job-%d", tj.nextID),
		num:         tj.nextID,
		tname:       tj.name,
		tn:          t,
		n1:          req.G1.Nodes,
		n2:          req.G2.Nodes,
		untilStable: req.UntilStable,
		maxSweeps:   maxSweeps,
		status:      statusRunning,
	}
	j.tr = s.newJobRecorder(nil)
	if s.store != nil {
		j.js = s.store.tenant(tj.name).jobStore(j.id)
		j.js.tracer = j.tr
	}
	// Publish under the job lock and hold it for the entire creation: job
	// IDs are predictable, so a racing DELETE can reach the job the moment
	// it is in the table — serializing it behind the creation (and marking
	// failed creations deleted) keeps it from purging a half-built job,
	// double-releasing quotas, or letting saveGraphs recreate purged files.
	j.mu.Lock()
	tj.jobs[j.id] = j
	s.mu.Unlock()
	abort := func(code int, format string, args ...any) {
		j.deleted = true
		j.mu.Unlock()
		s.mu.Lock()
		delete(tj.jobs, j.id)
		s.mu.Unlock()
		undo()
		writeError(w, code, format, args...)
	}

	opts = append(opts,
		reconcile.WithSeeds(toPairs(req.Seeds)),
		reconcile.WithProgress(s.progressHook(j)),
		reconcile.WithTracer(j.tr))

	rec, err := reconcile.New(g1, g2, opts...)
	if err != nil {
		abort(http.StatusBadRequest, "constructing reconciler: %v", err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.rec = rec
	j.cancel = cancel
	j.seeds = rec.Len()
	j.links = rec.Len()
	// Make the job durable before acknowledging it: graphs once, then the
	// initial checkpoint. A submission the store cannot hold is refused
	// whole rather than accepted into a state a crash would lose.
	if j.js != nil {
		err := j.js.saveGraphs(g1, g2)
		if err == nil {
			err = j.persistLocked()
		}
		if err != nil {
			cancel()
			// Remove whatever landed before the failure: a refused submission
			// must hold no durable bytes, or the orphaned graph files count
			// against the tenant's byte quota forever.
			j.js.purge()
			abort(http.StatusInternalServerError, "persisting job: %v", err)
			return
		}
	}
	s.runJob(ctx, cancel, j, func(ctx context.Context) error {
		var err error
		if req.UntilStable {
			_, err = rec.RunUntilStable(ctx, maxSweeps)
		} else {
			_, err = rec.Run(ctx)
		}
		return err
	})
	j.mu.Unlock()

	s.metrics.jobsCreated.Inc()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "status": string(statusRunning)})
}

// finish records a run's outcome on the job, persists the terminal state
// (for a cancelled job, that checkpoint is what a later resume finishes
// from), and releases the tenant's concurrent-run slot.
func (j *job) finish(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.links = j.rec.Len()
	switch {
	case err == nil:
		j.status = statusDone
		j.errMsg = ""
	case errors.Is(err, context.Canceled):
		j.status = statusCancelled
		j.errMsg = err.Error()
	default:
		j.status = statusFailed
		j.errMsg = err.Error()
	}
	if perr := j.persistLocked(); perr != nil {
		j.persistErr = perr.Error()
		slog.Error("final checkpoint failed", "tenant", j.tname, "job", j.id, "status", string(j.status), "err", perr)
	} else {
		j.persistErr = ""
	}
	if j.tn != nil {
		j.tn.ReleaseJob()
	}
}

func (s *server) lookup(w http.ResponseWriter, r *http.Request, tj *tenantJobs) *job {
	s.mu.Lock()
	j := tj.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	}
	return j
}

// getJob handles GET .../jobs/{id}; ?pairs=1 includes the link list once
// the job has stopped running.
func (s *server) getJob(w http.ResponseWriter, r *http.Request, tj *tenantJobs, t *tenant.Tenant) {
	j := s.lookup(w, r, tj)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.view(r.URL.Query().Get("pairs") == "1"))
}

// listJobs handles GET .../jobs.
func (s *server) listJobs(w http.ResponseWriter, r *http.Request, tj *tenantJobs, t *tenant.Tenant) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(tj.jobs))
	for _, j := range tj.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].num < jobs[b].num })
	views := make([]jobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.view(false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

// addSeeds handles POST .../jobs/{id}/seeds: ingest incremental trusted
// links into a job that is not currently running, then resume sweeping
// asynchronously until stable.
func (s *server) addSeeds(w http.ResponseWriter, r *http.Request, tj *tenantJobs, t *tenant.Tenant) {
	j := s.lookup(w, r, tj)
	if j == nil {
		return
	}
	var req struct {
		Seeds [][2]int `json:"seeds"`
	}
	if !decodeBody(w, r, &req) {
		return
	}

	j.mu.Lock()
	if j.status == statusRunning {
		j.mu.Unlock()
		writeError(w, http.StatusConflict, "job %s is running; wait for it to finish", j.id)
		return
	}
	if j.deleted {
		j.mu.Unlock()
		writeError(w, http.StatusNotFound, "no job %q", j.id)
		return
	}
	// All-or-nothing: Reconciler.AddSeeds commits seeds up to the first
	// conflict, which would leave the job's counters and matching out of
	// step on a 409. Pre-check the whole batch against the current links
	// (and itself) so a rejected request changes nothing.
	newSeeds := toPairs(req.Seeds)
	usedL := make(map[reconcile.NodeID]reconcile.NodeID)
	usedR := make(map[reconcile.NodeID]reconcile.NodeID)
	for _, p := range j.rec.Result().Pairs {
		usedL[p.Left] = p.Right
		usedR[p.Right] = p.Left
	}
	for _, p := range newSeeds {
		if int(p.Left) >= j.n1 || int(p.Right) >= j.n2 {
			j.mu.Unlock()
			writeError(w, http.StatusBadRequest, "seed (%d, %d): node out of range (%d x %d nodes)", p.Left, p.Right, j.n1, j.n2)
			return
		}
		if cur, ok := usedL[p.Left]; ok {
			if cur == p.Right {
				continue // exact duplicate, ignored by AddSeeds
			}
			j.mu.Unlock()
			writeError(w, http.StatusConflict, "seed (%d, %d): left node already linked to %d", p.Left, p.Right, cur)
			return
		}
		if cur, ok := usedR[p.Right]; ok {
			j.mu.Unlock()
			writeError(w, http.StatusConflict, "seed (%d, %d): right node already linked to %d", p.Left, p.Right, cur)
			return
		}
		usedL[p.Left] = p.Right
		usedR[p.Right] = p.Left
	}
	// The ingest restarts sweeping: that run needs a concurrent-run slot.
	if err := t.AcquireJob(); err != nil {
		j.mu.Unlock()
		s.writeQuotaError(w, err)
		return
	}
	before := j.rec.Len()
	if err := j.rec.AddSeeds(newSeeds); err != nil {
		j.mu.Unlock()
		t.ReleaseJob()
		writeError(w, http.StatusConflict, "adding seeds: %v", err)
		return
	}
	j.seeds += j.rec.Len() - before // duplicates are ignored, not inserted
	j.links = j.rec.Len()
	j.status = statusRunning
	j.errMsg = ""
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	rec := j.rec
	s.runJob(ctx, cancel, j, func(ctx context.Context) error {
		_, err := rec.RunUntilStable(ctx, j.maxSweeps)
		return err
	})
	j.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "status": string(statusRunning)})
}

// cancelJob handles POST .../jobs/{id}/cancel: stop a running job at the
// next bucket boundary. Cancelling a finished job is a no-op.
func (s *server) cancelJob(w http.ResponseWriter, r *http.Request, tj *tenantJobs, t *tenant.Tenant) {
	j := s.lookup(w, r, tj)
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.cancel != nil {
		j.cancel()
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id})
}

// deleteJob handles DELETE .../jobs/{id}: cancel any in-flight run, purge
// the job's durable records, release its node quota, and forget it. The
// freed checkpoint bytes immediately count toward the tenant's budget
// again.
func (s *server) deleteJob(w http.ResponseWriter, r *http.Request, tj *tenantJobs, t *tenant.Tenant) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := tj.jobs[id]
	if j == nil {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	// Unlink first: no later handler can reach the job while we tear it
	// down (a racing DELETE gets a clean 404).
	delete(tj.jobs, id)
	s.mu.Unlock()

	j.mu.Lock()
	if j.deleted {
		// A failed creation (or a prior DELETE holding a stale pointer)
		// already tore the job down; its quotas are settled.
		j.mu.Unlock()
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	j.deleted = true // persistLocked and the progress hook stand down
	if j.cancel != nil {
		j.cancel()
	}
	j.mu.Unlock()
	// Wait out the run goroutine (it stops at the next bucket boundary);
	// after this no one drives the Reconciler or its chain.
	j.pending.Wait()
	if j.js != nil {
		j.js.purge()
		j.js.releaseBase()
	}
	j.closeMappings()
	t.ReleaseNodes(int64(j.n1) + int64(j.n2))
	s.metrics.jobsDeleted.Inc()
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "deleted": true})
}

// checkpointJob handles POST .../jobs/{id}/checkpoint: force a durable
// checkpoint now. An idle job is checkpointed synchronously (200); a running
// job is flagged and checkpointed by its own run goroutine at the next
// phase boundary — the only place its state is exportable (202).
func (s *server) checkpointJob(w http.ResponseWriter, r *http.Request, tj *tenantJobs, t *tenant.Tenant) {
	if s.store == nil {
		writeError(w, http.StatusConflict, "server started without -data-dir; nothing to checkpoint to")
		return
	}
	j := s.lookup(w, r, tj)
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == statusRunning {
		j.wantCheckpoint = true
		writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "checkpoint": "at next phase boundary"})
		return
	}
	if err := j.persistLocked(); err != nil {
		writeError(w, http.StatusInternalServerError, "checkpointing: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": j.id, "checkpoint": "written"})
}

// resumeJob handles POST .../jobs/{id}/resume: continue an interrupted or
// cancelled job from its current state — completing a sweep the stop split,
// then the rest of the schedule (until-stable jobs sweep to stability). The
// finished result is bit-identical to a never-stopped run.
func (s *server) resumeJob(w http.ResponseWriter, r *http.Request, tj *tenantJobs, t *tenant.Tenant) {
	j := s.lookup(w, r, tj)
	if j == nil {
		return
	}
	j.mu.Lock()
	switch j.status {
	case statusInterrupted, statusCancelled:
	default:
		status := j.status
		j.mu.Unlock()
		writeError(w, http.StatusConflict, "job %s is %s; only interrupted or cancelled jobs resume", j.id, status)
		return
	}
	if j.deleted {
		j.mu.Unlock()
		writeError(w, http.StatusNotFound, "no job %q", j.id)
		return
	}
	if err := t.AcquireJob(); err != nil {
		j.mu.Unlock()
		s.writeQuotaError(w, err)
		return
	}
	j.status = statusRunning
	j.errMsg = ""
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	rec := j.rec
	s.runJob(ctx, cancel, j, func(ctx context.Context) error {
		if j.untilStable {
			// Only the unspent sweep budget remains: an uninterrupted run
			// would have stopped at maxSweeps total, so the resumed one must
			// too (the sweep the stop split is completed for free).
			remaining := j.maxSweeps - rec.Sweeps()
			if remaining < 0 {
				remaining = 0
			}
			_, err := rec.RunUntilStable(ctx, remaining)
			return err
		}
		_, err := rec.Resume(ctx)
		return err
	})
	j.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "status": string(statusRunning)})
}

// tenantView is one row of GET /v1/admin/tenants.
type tenantView struct {
	Name   string        `json:"name"`
	Auth   string        `json:"auth"` // "open" | "token"
	Weight int           `json:"weight"`
	Quotas tenant.Quotas `json:"quotas"`
	Usage  tenantUsage   `json:"usage"`
}

type tenantUsage struct {
	Jobs            int   `json:"jobs"`       // jobs in the table, any status
	ActiveRuns      int   `json:"activeRuns"` // admitted against MaxJobs
	RunSlots        int   `json:"runSlots"`   // fair-scheduler slots held
	QueuedRuns      int   `json:"queuedRuns"` // waiting for a slot
	Nodes           int64 `json:"nodes"`
	CheckpointBytes int64 `json:"checkpointBytes"`
	// WalkedBytes is the byte-accounting invariant probe, present only on
	// GET /v1/admin/tenants?verify=bytes: a fresh walk of the tenant's
	// store root, which must equal CheckpointBytes while the tenant's jobs
	// are settled. The load harness asserts zero drift with it.
	WalkedBytes *int64 `json:"walkedBytes,omitempty"`
}

// adminTenantView assembles one tenant's config-plus-usage row. With
// verifyBytes it also runs the store's walk-vs-counter invariant check.
func (s *server) adminTenantView(t *tenant.Tenant, verifyBytes bool) tenantView {
	name := t.Name()
	auth := "token"
	if t.Open() {
		auth = "open"
	}
	active, nodes := t.Usage()
	v := tenantView{
		Name:   name,
		Auth:   auth,
		Weight: t.Weight(),
		Quotas: t.Quotas(),
		Usage: tenantUsage{
			ActiveRuns: active,
			RunSlots:   s.sched.InFlight(name),
			QueuedRuns: s.sched.Queued(name),
			Nodes:      nodes,
		},
	}
	s.mu.Lock()
	if tj := s.tenants[name]; tj != nil {
		v.Usage.Jobs = len(tj.jobs)
	}
	s.mu.Unlock()
	if s.store != nil {
		ts := s.store.tenant(name)
		v.Usage.CheckpointBytes = ts.checkpointBytes()
		if verifyBytes {
			tracked, walked := ts.verifyBytes()
			v.Usage.CheckpointBytes = tracked
			v.Usage.WalkedBytes = &walked
		}
	}
	return v
}

// adminListTenants handles GET /v1/admin/tenants. ?verify=bytes adds each
// tenant's walked durable bytes next to the incremental counter so drift
// is observable from outside (meaningful while jobs are settled).
func (s *server) adminListTenants(w http.ResponseWriter, r *http.Request) {
	verifyBytes := r.URL.Query().Get("verify") == "bytes"
	views := []tenantView{}
	for _, t := range s.reg.All() {
		views = append(views, s.adminTenantView(t, verifyBytes))
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": views})
}

// adminPutTenant handles PUT /v1/admin/tenants/{tenant}: register a tenant
// or update its token, weight and quotas in place. Tokens travel in the
// body — run the admin surface behind TLS.
func (s *server) adminPutTenant(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	var cfg tenant.Config
	if !decodeBody(w, r, &cfg) {
		return
	}
	if cfg.Name == "" {
		cfg.Name = name
	}
	if cfg.Name != name {
		writeError(w, http.StatusBadRequest, "body names tenant %q, path %q", cfg.Name, name)
		return
	}
	t, err := s.reg.Register(cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.tenantTable(name)
	if s.store != nil {
		s.store.tenant(name) // create the tenant's store root eagerly
	}
	writeJSON(w, http.StatusOK, s.adminTenantView(t, false))
}

// cancelRunning starts a graceful drain: every running job's context is
// cancelled (the run stops at its next bucket boundary and finish() writes
// a final durable checkpoint). Returns every job for awaitDrain. Called
// BEFORE http.Server.Shutdown in main: a handler parked on a running job
// (DELETE in pending.Wait) would otherwise hold HTTP shutdown open while
// the job it is waiting for is only cancelled afterwards — burning the
// whole grace budget on a self-inflicted deadlock.
func (s *server) cancelRunning() []*job {
	s.mu.Lock()
	var jobs []*job
	for _, tj := range s.tenants {
		for _, j := range tj.jobs {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	// Cancel (and later drain) in a stable order: map iteration would make
	// the shutdown sequence — cancellation, final checkpoints, drain log —
	// differ run to run for no reason.
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].tname != jobs[b].tname {
			return jobs[a].tname < jobs[b].tname
		}
		return jobs[a].num < jobs[b].num
	})
	for _, j := range jobs {
		j.mu.Lock()
		if j.status == statusRunning && j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
	}
	return jobs
}

// awaitDrain waits (bounded by ctx) for the run goroutines of jobs
// returned by cancelRunning to finish; each finish() has then written its
// final checkpoint, so with a store a restart re-lists drained jobs as
// "cancelled" with current state and POST .../resume completes them
// bit-identically — instead of the crash path's "interrupted" at the last
// sweep boundary.
func (s *server) awaitDrain(ctx context.Context, jobs []*job) error {
	done := make(chan struct{})
	go func() {
		for _, j := range jobs {
			j.pending.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: jobs still draining at the shutdown deadline (up to %d unfinished)", len(jobs))
	}
}

// shutdown is cancelRunning + awaitDrain in one call, for callers with no
// HTTP listener to drain in between (tests).
func (s *server) shutdown(ctx context.Context) error {
	return s.awaitDrain(ctx, s.cancelRunning())
}

// drainOutcome is one drained job's terminal status and final-checkpoint
// result, for the shutdown report.
type drainOutcome struct {
	tenant, job string
	status      jobStatus
	err         string // "" — final checkpoint written (or job has no store)
}

// drainOutcomes reports each drained job's status and final-checkpoint
// outcome, in the stable drain order. Call after awaitDrain: finish() has
// then recorded every job's persist result.
func drainOutcomes(jobs []*job) []drainOutcome {
	out := make([]drainOutcome, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		out = append(out, drainOutcome{tenant: j.tname, job: j.id, status: j.status, err: j.persistErr})
		j.mu.Unlock()
	}
	return out
}

// closeMappings closes every job's mapped graph files — the -mmap lifetime's
// shutdown half. Call only after the jobs have drained (awaitDrain); a
// restart reopens the mappings from the store.
func (s *server) closeMappings() {
	s.mu.Lock()
	var jobs []*job
	for _, tj := range s.tenants {
		for _, j := range tj.jobs {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	// Close in a stable order so any unmap errors surface in the same
	// sequence run to run.
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].tname != jobs[b].tname {
			return jobs[a].tname < jobs[b].tname
		}
		return jobs[a].num < jobs[b].num
	})
	for _, j := range jobs {
		j.closeMappings()
	}
}
