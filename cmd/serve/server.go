package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"

	"github.com/sociograph/reconcile"
)

// jobStatus is the lifecycle of a submitted reconciliation job.
type jobStatus string

const (
	statusRunning   jobStatus = "running"
	statusDone      jobStatus = "done"
	statusCancelled jobStatus = "cancelled"
	statusFailed    jobStatus = "failed"
	// statusInterrupted marks a job that was running when the server died;
	// its last checkpoint is intact and POST /v1/jobs/{id}/resume finishes
	// the run bit-identically to an uninterrupted one.
	statusInterrupted jobStatus = "interrupted"
)

// graphSpec is a graph in the wire format: a node count and an edge list.
type graphSpec struct {
	Nodes int      `json:"nodes"`
	Edges [][2]int `json:"edges"`
}

// optionsSpec mirrors the functional options over JSON. Absent fields keep
// the defaults.
type optionsSpec struct {
	Threshold    *int   `json:"threshold,omitempty"`
	Iterations   *int   `json:"iterations,omitempty"`
	Engine       string `json:"engine,omitempty"`  // "frontier" | "parallel" | "sequential"
	Scoring      string `json:"scoring,omitempty"` // "count" | "adamic-adar"
	Ties         string `json:"ties,omitempty"`    // "reject" | "lowest-id"
	Workers      *int   `json:"workers,omitempty"`
	Margin       *int   `json:"margin,omitempty"`
	Bucketing    *bool  `json:"bucketing,omitempty"`
	MinBucketExp *int   `json:"minBucketExp,omitempty"`
	MaxDegree    *int   `json:"maxDegree,omitempty"`
}

// jobRequest is the POST /v1/jobs body. With untilStable the job sweeps
// until nothing new is found, bounded by maxSweeps (default 50); otherwise
// it performs options.iterations sweeps and maxSweeps is ignored.
type jobRequest struct {
	G1          graphSpec   `json:"g1"`
	G2          graphSpec   `json:"g2"`
	Seeds       [][2]int    `json:"seeds"`
	Options     optionsSpec `json:"options"`
	UntilStable bool        `json:"untilStable,omitempty"`
	MaxSweeps   int         `json:"maxSweeps,omitempty"`
}

// phaseJSON is one progress event in wire form.
type phaseJSON struct {
	Iteration int `json:"iteration"`
	Bucket    int `json:"bucket"`
	Buckets   int `json:"buckets"`
	MinDegree int `json:"minDegree"`
	Matched   int `json:"matched"`
	Total     int `json:"total"`
}

// jobView is the GET /v1/jobs/{id} body.
type jobView struct {
	ID     string      `json:"id"`
	Status jobStatus   `json:"status"`
	Links  int         `json:"links"`
	New    int         `json:"new"`
	Seeds  int         `json:"seeds"`
	Phases []phaseJSON `json:"phases"`
	Error  string      `json:"error,omitempty"`
	Pairs  [][2]int    `json:"pairs,omitempty"`
}

// job is one reconciliation run owned by the server. The job mutex guards
// everything below it; the Reconciler itself is only driven by the single
// run goroutine (or, between runs, by the seeds/checkpoint/resume handlers),
// never concurrently.
type job struct {
	id          string
	num         int       // creation order (job IDs sort lexicographically past 9)
	n1, n2      int       // node counts, for validating incremental seeds up front
	js          *jobStore // the job's slice of the store; nil without -data-dir
	untilStable bool
	maxSweeps   int

	mu             sync.Mutex
	rec            *reconcile.Reconciler
	cancel         context.CancelFunc
	status         jobStatus
	phases         []phaseJSON
	errMsg         string
	seeds          int
	links          int
	wantCheckpoint bool           // one-shot: checkpoint at the next phase boundary
	pending        sync.WaitGroup // run goroutine in flight (tests wait on it)
}

// meta snapshots the job's bookkeeping for persistence. Caller holds j.mu.
func (j *job) metaLocked() jobMeta {
	return jobMeta{
		ID:          j.id,
		Num:         j.num,
		Status:      j.status,
		Error:       j.errMsg,
		Seeds:       j.seeds,
		UntilStable: j.untilStable,
		MaxSweeps:   j.maxSweeps,
		Phases:      append([]phaseJSON(nil), j.phases...),
	}
}

// persistLocked checkpoints the job's state and meta to the store, if any.
// Caller holds j.mu and must be the goroutine driving the Reconciler (the
// run goroutine inside a progress hook, or a handler while no run is in
// flight) — ExportState is only safe at a phase boundary, and the
// checkpoint chain's delta base advances with each write.
func (j *job) persistLocked() error {
	if j.js == nil {
		return nil
	}
	err := j.js.checkpoint(j.rec, j.metaLocked())
	if j.status != statusRunning {
		// The job just went (or already is) idle; its next checkpoint, if
		// any, re-anchors with a full, so the delta base is dead weight.
		j.js.releaseBase()
	}
	return err
}

// view snapshots the job for JSON rendering.
func (j *job) view(includePairs bool) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:     j.id,
		Status: j.status,
		Links:  j.links,
		Seeds:  j.seeds,
		New:    j.links - j.seeds,
		Phases: append([]phaseJSON(nil), j.phases...),
		Error:  j.errMsg,
	}
	if includePairs && j.status != statusRunning {
		for _, p := range j.rec.Result().Pairs {
			v.Pairs = append(v.Pairs, [2]int{int(p.Left), int(p.Right)})
		}
	}
	return v
}

// server is the reconciliation service: a job table over the Reconciler API,
// optionally backed by a crash-safe on-disk store (-data-dir).
type server struct {
	store *store // nil: jobs live in RAM only

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
}

// newServer builds the service. With a store, previously persisted jobs are
// restored from their last checkpoints and re-listed: finished jobs keep
// their terminal status and full results; jobs that were running when the
// process died come back as "interrupted" and can be finished with POST
// /v1/jobs/{id}/resume. Unreadable or half-written jobs are skipped, not
// fatal — crash recovery must not brick the service.
func newServer(st *store) (*server, []error) {
	s := &server{store: st, jobs: make(map[string]*job)}
	if st == nil {
		return s, nil
	}
	loaded, maxNum, skipped := st.loadAll()
	s.nextID = maxNum
	for _, p := range loaded {
		j := &job{
			id:          p.meta.ID,
			num:         p.meta.Num,
			n1:          p.g1.NumNodes(),
			n2:          p.g2.NumNodes(),
			js:          p.js,
			untilStable: p.meta.UntilStable,
			maxSweeps:   p.meta.MaxSweeps,
			status:      p.meta.Status,
			errMsg:      p.meta.Error,
			seeds:       p.meta.Seeds,
		}
		rec, err := reconcile.RestoreSessionState(p.g1, p.g2, p.state,
			reconcile.WithProgress(s.progressHook(j)))
		if err != nil {
			skipped = append(skipped, fmt.Errorf("store: job %s: %w", p.meta.ID, err))
			continue
		}
		j.rec = rec
		// The replayed chain is the durable truth (each record lands before
		// its meta, so a crash between the two renames leaves the meta one
		// phase batch behind); rebuild the wire counters and phase log from
		// it.
		j.links = rec.Len()
		j.phases = wirePhases(rec)
		if j.status == statusRunning {
			j.status = statusInterrupted
			j.errMsg = "server stopped mid-run; POST /v1/jobs/" + j.id + "/resume to finish"
		}
		if p.dropped > 0 {
			// Recovery fell back to the last consistent chain prefix: the
			// restored state is older than the last acknowledged checkpoint,
			// whatever the meta claims. Resume finishes the rest
			// bit-identically.
			j.status = statusInterrupted
			j.errMsg = fmt.Sprintf("recovery dropped %d trailing checkpoint record(s); POST /v1/jobs/%s/resume to finish", p.dropped, j.id)
		}
		s.jobs[j.id] = j
	}
	return s, skipped
}

// wirePhases reconstructs the wire-form phase log from a Reconciler's own
// phase statistics. Every sweep runs the full bucket schedule in order, so
// the bucket index is the entry's position within its sweep.
func wirePhases(rec *reconcile.Reconciler) []phaseJSON {
	g1, g2 := rec.Graphs()
	buckets := len(rec.Options().BucketSchedule(g1, g2))
	var out []phaseJSON
	for i, ph := range rec.Result().Phases {
		out = append(out, phaseJSON{
			Iteration: ph.Iteration,
			Bucket:    i%buckets + 1,
			Buckets:   buckets,
			MinDegree: ph.MinDegree,
			Matched:   ph.Matched,
			Total:     ph.TotalL,
		})
	}
	return out
}

// progressHook streams phase events into the job under its lock, so a
// concurrent GET sees bucket-by-bucket statistics live; with a store it also
// checkpoints at every sweep boundary (and at any phase boundary an explicit
// checkpoint request is waiting on). The hook runs on the run goroutine
// between buckets, exactly where session state is exportable.
func (s *server) progressHook(j *job) func(reconcile.PhaseEvent) {
	return func(e reconcile.PhaseEvent) {
		j.mu.Lock()
		j.phases = append(j.phases, phaseJSON{
			Iteration: e.Iteration,
			Bucket:    e.Bucket,
			Buckets:   e.Buckets,
			MinDegree: e.MinDegree,
			Matched:   e.Matched,
			Total:     e.TotalLinks,
		})
		j.links = e.TotalLinks
		persist := j.js != nil && (e.Bucket == e.Buckets || j.wantCheckpoint)
		var meta jobMeta
		var rec *reconcile.Reconciler
		if persist {
			j.wantCheckpoint = false
			meta = j.metaLocked()
			rec = j.rec
		}
		j.mu.Unlock()
		if !persist {
			return
		}
		// The encode and fsync run outside j.mu so reads stay responsive
		// during checkpoints. This is safe: the job is running, so this run
		// goroutine is the only driver of the Reconciler and its checkpoint
		// chain (every handler that would touch either refuses running
		// jobs), and the bookkeeping snapshot was taken under the lock.
		if err := j.js.checkpoint(rec, meta); err != nil {
			log.Printf("serve: checkpoint of %s: %v", j.id, err)
		}
	}
}

// handler routes the v1 API.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /v1/jobs", s.createJob)
	mux.HandleFunc("GET /v1/jobs", s.listJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	mux.HandleFunc("POST /v1/jobs/{id}/seeds", s.addSeeds)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.cancelJob)
	mux.HandleFunc("POST /v1/jobs/{id}/checkpoint", s.checkpointJob)
	mux.HandleFunc("POST /v1/jobs/{id}/resume", s.resumeJob)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// buildOptions translates an optionsSpec into functional options.
func buildOptions(spec optionsSpec) ([]reconcile.Option, error) {
	var opts []reconcile.Option
	if spec.Threshold != nil {
		opts = append(opts, reconcile.WithThreshold(*spec.Threshold))
	}
	if spec.Iterations != nil {
		opts = append(opts, reconcile.WithIterations(*spec.Iterations))
	}
	switch spec.Engine {
	case "":
	case "frontier":
		opts = append(opts, reconcile.WithEngine(reconcile.EngineFrontier))
	case "parallel":
		opts = append(opts, reconcile.WithEngine(reconcile.EngineParallel))
	case "sequential":
		opts = append(opts, reconcile.WithEngine(reconcile.EngineSequential))
	default:
		return nil, fmt.Errorf("unknown engine %q", spec.Engine)
	}
	switch spec.Scoring {
	case "":
	case "count":
		opts = append(opts, reconcile.WithScoring(reconcile.ScoreWitnessCount))
	case "adamic-adar":
		opts = append(opts, reconcile.WithScoring(reconcile.ScoreAdamicAdar))
	default:
		return nil, fmt.Errorf("unknown scoring %q", spec.Scoring)
	}
	switch spec.Ties {
	case "":
	case "reject":
		opts = append(opts, reconcile.WithTieBreak(reconcile.TieReject))
	case "lowest-id":
		opts = append(opts, reconcile.WithTieBreak(reconcile.TieLowestID))
	default:
		return nil, fmt.Errorf("unknown tie policy %q", spec.Ties)
	}
	if spec.Workers != nil {
		opts = append(opts, reconcile.WithWorkers(*spec.Workers))
	}
	if spec.Margin != nil {
		opts = append(opts, reconcile.WithMargin(*spec.Margin))
	}
	if spec.Bucketing != nil {
		opts = append(opts, reconcile.WithBucketing(*spec.Bucketing))
	}
	if spec.MinBucketExp != nil {
		opts = append(opts, reconcile.WithMinBucketExp(*spec.MinBucketExp))
	}
	if spec.MaxDegree != nil {
		opts = append(opts, reconcile.WithMaxDegree(*spec.MaxDegree))
	}
	return opts, nil
}

func buildGraph(spec graphSpec) (*reconcile.Graph, error) {
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("graph needs a positive node count")
	}
	edges := make([]reconcile.Edge, 0, len(spec.Edges))
	for _, e := range spec.Edges {
		if e[0] < 0 || e[0] >= spec.Nodes || e[1] < 0 || e[1] >= spec.Nodes {
			return nil, fmt.Errorf("edge (%d, %d) out of range for %d nodes", e[0], e[1], spec.Nodes)
		}
		edges = append(edges, reconcile.Edge{U: reconcile.NodeID(e[0]), V: reconcile.NodeID(e[1])})
	}
	return reconcile.FromEdges(spec.Nodes, edges), nil
}

func toPairs(raw [][2]int) []reconcile.Pair {
	out := make([]reconcile.Pair, 0, len(raw))
	for _, p := range raw {
		out = append(out, reconcile.Pair{Left: reconcile.NodeID(p[0]), Right: reconcile.NodeID(p[1])})
	}
	return out
}

// createJob handles POST /v1/jobs: build the graphs and a Reconciler, start
// the run in a goroutine, answer 202 with the job id immediately.
func (s *server) createJob(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	g1, err := buildGraph(req.G1)
	if err != nil {
		writeError(w, http.StatusBadRequest, "g1: %v", err)
		return
	}
	g2, err := buildGraph(req.G2)
	if err != nil {
		writeError(w, http.StatusBadRequest, "g2: %v", err)
		return
	}
	opts, err := buildOptions(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "options: %v", err)
		return
	}

	maxSweeps := req.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 50
	}
	s.mu.Lock()
	s.nextID++
	j := &job{
		id:          fmt.Sprintf("job-%d", s.nextID),
		num:         s.nextID,
		n1:          req.G1.Nodes,
		n2:          req.G2.Nodes,
		untilStable: req.UntilStable,
		maxSweeps:   maxSweeps,
		status:      statusRunning,
	}
	if s.store != nil {
		j.js = s.store.jobStore(j.id)
	}
	s.jobs[j.id] = j
	s.mu.Unlock()

	opts = append(opts,
		reconcile.WithSeeds(toPairs(req.Seeds)),
		reconcile.WithProgress(s.progressHook(j)))

	rec, err := reconcile.New(g1, g2, opts...)
	if err != nil {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest, "constructing reconciler: %v", err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.mu.Lock()
	j.rec = rec
	j.cancel = cancel
	j.seeds = rec.Len()
	j.links = rec.Len()
	// Make the job durable before acknowledging it: graphs once, then the
	// initial checkpoint. A submission the store cannot hold is refused
	// whole rather than accepted into a state a crash would lose.
	if j.js != nil {
		err := j.js.saveGraphs(g1, g2)
		if err == nil {
			err = j.persistLocked()
		}
		if err != nil {
			j.mu.Unlock()
			s.mu.Lock()
			delete(s.jobs, j.id)
			s.mu.Unlock()
			cancel()
			writeError(w, http.StatusInternalServerError, "persisting job: %v", err)
			return
		}
	}
	j.mu.Unlock()

	j.pending.Add(1)
	go func() {
		defer j.pending.Done()
		defer cancel()
		var err error
		if req.UntilStable {
			_, err = rec.RunUntilStable(ctx, maxSweeps)
		} else {
			_, err = rec.Run(ctx)
		}
		j.finish(err)
	}()

	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "status": string(statusRunning)})
}

// finish records a run's outcome on the job and persists the terminal state
// (for a cancelled job, that checkpoint is what a later resume finishes
// from).
func (j *job) finish(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.links = j.rec.Len()
	switch {
	case err == nil:
		j.status = statusDone
		j.errMsg = ""
	case errors.Is(err, context.Canceled):
		j.status = statusCancelled
		j.errMsg = err.Error()
	default:
		j.status = statusFailed
		j.errMsg = err.Error()
	}
	if perr := j.persistLocked(); perr != nil {
		log.Printf("serve: checkpoint of %s: %v", j.id, perr)
	}
}

func (s *server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	}
	return j
}

// getJob handles GET /v1/jobs/{id}; ?pairs=1 includes the link list once the
// job has stopped running.
func (s *server) getJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.view(r.URL.Query().Get("pairs") == "1"))
}

// listJobs handles GET /v1/jobs.
func (s *server) listJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].num < jobs[b].num })
	views := make([]jobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.view(false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

// addSeeds handles POST /v1/jobs/{id}/seeds: ingest incremental trusted
// links into a job that is not currently running, then resume sweeping
// asynchronously until stable.
func (s *server) addSeeds(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	var req struct {
		Seeds [][2]int `json:"seeds"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}

	j.mu.Lock()
	if j.status == statusRunning {
		j.mu.Unlock()
		writeError(w, http.StatusConflict, "job %s is running; wait for it to finish", j.id)
		return
	}
	// All-or-nothing: Reconciler.AddSeeds commits seeds up to the first
	// conflict, which would leave the job's counters and matching out of
	// step on a 409. Pre-check the whole batch against the current links
	// (and itself) so a rejected request changes nothing.
	newSeeds := toPairs(req.Seeds)
	usedL := make(map[reconcile.NodeID]reconcile.NodeID)
	usedR := make(map[reconcile.NodeID]reconcile.NodeID)
	for _, p := range j.rec.Result().Pairs {
		usedL[p.Left] = p.Right
		usedR[p.Right] = p.Left
	}
	for _, p := range newSeeds {
		if int(p.Left) >= j.n1 || int(p.Right) >= j.n2 {
			j.mu.Unlock()
			writeError(w, http.StatusBadRequest, "seed (%d, %d): node out of range (%d x %d nodes)", p.Left, p.Right, j.n1, j.n2)
			return
		}
		if cur, ok := usedL[p.Left]; ok {
			if cur == p.Right {
				continue // exact duplicate, ignored by AddSeeds
			}
			j.mu.Unlock()
			writeError(w, http.StatusConflict, "seed (%d, %d): left node already linked to %d", p.Left, p.Right, cur)
			return
		}
		if cur, ok := usedR[p.Right]; ok {
			j.mu.Unlock()
			writeError(w, http.StatusConflict, "seed (%d, %d): right node already linked to %d", p.Left, p.Right, cur)
			return
		}
		usedL[p.Left] = p.Right
		usedR[p.Right] = p.Left
	}
	before := j.rec.Len()
	if err := j.rec.AddSeeds(newSeeds); err != nil {
		j.mu.Unlock()
		writeError(w, http.StatusConflict, "adding seeds: %v", err)
		return
	}
	j.seeds += j.rec.Len() - before // duplicates are ignored, not inserted
	j.links = j.rec.Len()
	j.status = statusRunning
	j.errMsg = ""
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	rec := j.rec
	j.mu.Unlock()

	j.pending.Add(1)
	go func() {
		defer j.pending.Done()
		defer cancel()
		_, err := rec.RunUntilStable(ctx, j.maxSweeps)
		j.finish(err)
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "status": string(statusRunning)})
}

// cancelJob handles POST /v1/jobs/{id}/cancel: stop a running job at the
// next bucket boundary. Cancelling a finished job is a no-op.
func (s *server) cancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.cancel != nil {
		j.cancel()
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id})
}

// checkpointJob handles POST /v1/jobs/{id}/checkpoint: force a durable
// checkpoint now. An idle job is checkpointed synchronously (200); a running
// job is flagged and checkpointed by its own run goroutine at the next
// phase boundary — the only place its state is exportable (202).
func (s *server) checkpointJob(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusConflict, "server started without -data-dir; nothing to checkpoint to")
		return
	}
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == statusRunning {
		j.wantCheckpoint = true
		writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "checkpoint": "at next phase boundary"})
		return
	}
	if err := j.persistLocked(); err != nil {
		writeError(w, http.StatusInternalServerError, "checkpointing: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": j.id, "checkpoint": "written"})
}

// resumeJob handles POST /v1/jobs/{id}/resume: continue an interrupted or
// cancelled job from its current state — completing a sweep the stop split,
// then the rest of the schedule (until-stable jobs sweep to stability). The
// finished result is bit-identical to a never-stopped run.
func (s *server) resumeJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	switch j.status {
	case statusInterrupted, statusCancelled:
	default:
		status := j.status
		j.mu.Unlock()
		writeError(w, http.StatusConflict, "job %s is %s; only interrupted or cancelled jobs resume", j.id, status)
		return
	}
	j.status = statusRunning
	j.errMsg = ""
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	rec := j.rec
	j.mu.Unlock()

	j.pending.Add(1)
	go func() {
		defer j.pending.Done()
		defer cancel()
		var err error
		if j.untilStable {
			// Only the unspent sweep budget remains: an uninterrupted run
			// would have stopped at maxSweeps total, so the resumed one must
			// too (the sweep the stop split is completed for free).
			remaining := j.maxSweeps - rec.Sweeps()
			if remaining < 0 {
				remaining = 0
			}
			_, err = rec.RunUntilStable(ctx, remaining)
		} else {
			_, err = rec.Resume(ctx)
		}
		j.finish(err)
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "status": string(statusRunning)})
}
