package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/sociograph/reconcile"
)

// scrapeMetrics fetches /metrics, checks the exposition envelope, and
// parses every sample line into a series-name (labels included) → value
// map. Format defects — unparseable samples, duplicate series, samples
// outside a TYPE-announced family — fail the test here so every caller
// doubles as a format check.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	typed := map[string]bool{}
	series := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[f[2]] = true
		case strings.HasPrefix(line, "#"):
		default:
			i := strings.LastIndexByte(line, ' ')
			if i < 0 {
				t.Fatalf("unparseable sample line %q", line)
			}
			v, err := strconv.ParseFloat(line[i+1:], 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			name := line[:i]
			if _, dup := series[name]; dup {
				t.Fatalf("duplicate series %q", name)
			}
			series[name] = v
		}
	}
	for name := range series {
		fam := name
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		for _, suffix := range []string{"", "_bucket", "_sum", "_count"} {
			if typed[strings.TrimSuffix(fam, suffix)] {
				fam = ""
				break
			}
		}
		if fam != "" {
			t.Fatalf("sample %q has no TYPE comment for its family", name)
		}
	}
	return series
}

// sumPrefix totals every series whose name starts with prefix — for
// families whose label values (shard directories) the test cannot predict.
func sumPrefix(series map[string]float64, prefix string) float64 {
	var sum float64
	for name, v := range series {
		if strings.HasPrefix(name, prefix) {
			sum += v
		}
	}
	return sum
}

// TestMetricsEndpoint scripts one of everything against a stored server —
// job lifecycle, seeds, quota refusal, unmatched route, delete — and
// asserts the /metrics surface is well-formed, wide (≥15 series) and that
// each instrumented family actually moved.
func TestMetricsEndpoint(t *testing.T) {
	st := newTestStore(t)
	ts := httptest.NewServer(newTestServer(t, st).handler())
	defer ts.Close()

	before := scrapeMetrics(t, ts.URL)

	// A nodes-limited tenant supplies the quota refusal.
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/admin/tenants/tiny",
		strings.NewReader(`{"maxNodes":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("registering tiny tenant: status %d", resp.StatusCode)
	}

	inst := testInstance(t, 80, 0.25)
	inst.UntilStable = true
	inst.MaxSweeps = 8
	resp = postJSON(t, ts.URL+"/v1/jobs", inst)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	id := decode[map[string]string](t, resp)["id"]
	if v := waitForJob(t, ts.URL, id); v.Status != statusDone {
		t.Fatalf("job settled as %q", v.Status)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + id + "?pairs=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp = postJSON(t, ts.URL+"/v1/tenants/tiny/jobs", inst)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/no-such-route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Scrape while the finished job is still in the table: the done gauge
	// and the tenant byte gauge are only non-zero here.
	mid := scrapeMetrics(t, ts.URL)
	if got := mid[`reconcile_jobs{status="done"}`]; got < 1 {
		t.Errorf(`reconcile_jobs{status="done"} = %v, want >= 1`, got)
	}
	if got := mid[`reconcile_store_tenant_bytes{tenant="default"}`]; got <= 0 {
		t.Errorf("tenant byte gauge = %v, want > 0", got)
	}

	req, err = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}

	after := scrapeMetrics(t, ts.URL)
	if len(after) < 15 {
		t.Fatalf("only %d series exposed, want >= 15", len(after))
	}

	moved := func(name string) {
		t.Helper()
		if !(after[name] > before[name]) {
			t.Errorf("series %q did not move: before %v, after %v", name, before[name], after[name])
		}
	}
	moved(`reconcile_http_requests_total{route="POST /v1/jobs",code="202"}`)
	moved(`reconcile_http_requests_total{route="GET /v1/jobs/{id}",code="200"}`)
	moved(`reconcile_http_requests_total{route="PUT /v1/admin/tenants/{tenant}",code="200"}`)
	moved(`reconcile_http_requests_total{route="POST /v1/tenants/{tenant}/jobs",code="429"}`)
	moved(`reconcile_http_requests_total{route="unmatched",code="404"}`)
	moved(`reconcile_http_request_seconds_count{route="POST /v1/jobs"}`)
	moved(`reconcile_http_request_seconds_sum{route="GET /v1/jobs/{id}"}`)
	moved(`reconcile_jobs_created_total`)
	moved(`reconcile_jobs_deleted_total`)
	moved(`reconcile_quota_rejections_total{resource="nodes"}`)
	moved(`reconcile_sched_slot_wait_seconds_count{tenant="default"}`)
	for _, prefix := range []string{
		"reconcile_store_write_bytes_total{",
		"reconcile_store_fsync_seconds_count{",
	} {
		if !(sumPrefix(after, prefix) > sumPrefix(before, prefix)) {
			t.Errorf("no %s* series moved", prefix)
		}
	}
	// Gauges that legitimately read zero now must still be exposed.
	for _, name := range []string{
		`reconcile_jobs{status="running"}`,
		`reconcile_sched_queue_depth{tenant="default"}`,
		`reconcile_sched_slots_inflight{tenant="default"}`,
		`reconcile_engine_regime_switches_total`,
		`reconcile_go_gc_pause_seconds{quantile="0.5"}`,
		`reconcile_go_gc_pause_seconds{quantile="0.9"}`,
		`reconcile_go_gc_pause_seconds{quantile="0.99"}`,
		`reconcile_graph_open_mappings`,
	} {
		if _, ok := after[name]; !ok {
			t.Errorf("series %q not exposed", name)
		}
	}
	// Go runtime gauges carry live values: a serving process always has
	// goroutines and heap objects.
	if got := after[`reconcile_go_goroutines`]; got < 1 {
		t.Errorf("reconcile_go_goroutines = %v, want >= 1", got)
	}
	if got := after[`reconcile_go_heap_bytes`]; got <= 0 {
		t.Errorf("reconcile_go_heap_bytes = %v, want > 0", got)
	}
	// The finished job emitted execution-trace spans into the histogram:
	// sweeps certainly, checkpoint writes because the server is stored.
	for _, name := range []string{
		`reconcile_trace_span_seconds_count{kind="sweep"}`,
		`reconcile_trace_span_seconds_count{kind="checkpoint-write"}`,
	} {
		if !(after[name] > before[name]) {
			t.Errorf("series %q did not move: before %v, after %v", name, before[name], after[name])
		}
	}
}

// TestMetricsOpenMappingsGauge pins reconcile_graph_open_mappings to the
// -mmap lifetime: a live job holds no mappings (its graphs arrived over the
// wire), but restoring it on reboot pages both graph files in, moving the
// gauge by two per job wherever the platform supports mapping.
func TestMetricsOpenMappingsGauge(t *testing.T) {
	st, err := newStore(t.TempDir(), rangedStoreConfig)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newTestServer(t, st).handler())

	inst := testInstance(t, 400, 0.2)
	inst.UntilStable = true
	inst.MaxSweeps = 6
	resp := postJSON(t, ts.URL+"/v1/jobs", inst)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	id := decode[map[string]string](t, resp)["id"]
	if v := waitForJob(t, ts.URL, id); v.Status != statusDone {
		t.Fatalf("job settled as %q", v.Status)
	}
	v0 := scrapeMetrics(t, ts.URL)[`reconcile_graph_open_mappings`]
	ts.Close()

	ts2 := httptest.NewServer(newTestServer(t, st).handler())
	defer ts2.Close()
	v1 := scrapeMetrics(t, ts2.URL)[`reconcile_graph_open_mappings`]
	if reconcile.MmapSupported {
		// The gauge is process-wide, so assert the delta, not the level.
		if v1 < v0+2 {
			t.Fatalf("open mappings after mapped restore = %v, want >= %v", v1, v0+2)
		}
	} else if v1 != v0 {
		t.Fatalf("open mappings moved (%v -> %v) without mmap support", v0, v1)
	}
}

// TestMetricsRegimeSwitchCounter pins the hybrid handoff counter: a job
// run to convergence under the default hybrid engine crosses into the
// frontier regime exactly once, and restoring the job on reboot must not
// count it again.
func TestMetricsRegimeSwitchCounter(t *testing.T) {
	st := newTestStore(t)
	s := newTestServer(t, st)
	ts := httptest.NewServer(s.handler())

	inst := testInstance(t, 200, 0.3)
	inst.UntilStable = true
	inst.MaxSweeps = 12
	resp := postJSON(t, ts.URL+"/v1/jobs", inst)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	id := decode[map[string]string](t, resp)["id"]
	if v := waitForJob(t, ts.URL, id); v.Status != statusDone {
		t.Fatalf("job settled as %q", v.Status)
	}
	after := scrapeMetrics(t, ts.URL)
	if got := after[`reconcile_engine_regime_switches_total`]; got != 1 {
		t.Fatalf("regime switches after convergence = %v, want 1", got)
	}
	ts.Close()

	// Reboot from the store: the restored job is already past the handoff,
	// so the fresh server's counter must stay at zero.
	ts2 := httptest.NewServer(newTestServer(t, st).handler())
	defer ts2.Close()
	rebooted := scrapeMetrics(t, ts2.URL)
	if got := rebooted[`reconcile_engine_regime_switches_total`]; got != 0 {
		t.Fatalf("regime switches after restore = %v, want 0", got)
	}
}
