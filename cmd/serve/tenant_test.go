package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/sociograph/reconcile"
	"github.com/sociograph/reconcile/internal/tenant"
)

// regWith builds a registry from configs, failing the test on error.
func regWith(t *testing.T, configs ...tenant.Config) *tenant.Registry {
	t.Helper()
	reg := tenant.NewRegistry()
	for _, c := range configs {
		if _, err := reg.Register(c); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// newMTServer builds a multi-tenant server, failing the test if any
// persisted job was skipped during restore.
func newMTServer(t *testing.T, st *store, cfg serverConfig) *server {
	t.Helper()
	s, skipped := newServerWith(st, cfg)
	for _, err := range skipped {
		t.Errorf("restore skipped a job: %v", err)
	}
	return s
}

// doJSON performs an arbitrary-method request with an optional bearer
// token and JSON body.
func doJSON(t *testing.T, method, url, token string, body any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// tenantBase returns the namespaced API root for a tenant.
func tenantBase(serverURL, name string) string {
	return serverURL + "/v1/tenants/" + name
}

// waitTenantJob polls a namespaced job until it leaves the running state.
func waitTenantJob(t *testing.T, base, token, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp := doJSON(t, "GET", fmt.Sprintf("%s/jobs/%s", base, id), token, nil)
		v := decode[jobView](t, resp)
		if v.Status != statusRunning {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s still running after 30s", id)
	return jobView{}
}

// TestTenantNamespaceBackCompat pins the compatibility contract: the
// un-namespaced /v1/jobs routes and /v1/tenants/default/jobs are the same
// job table.
func TestTenantNamespaceBackCompat(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil).handler())
	defer ts.Close()

	req := testInstance(t, 200, 0.3)
	resp := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	id := decode[map[string]string](t, resp)["id"]
	waitForJob(t, ts.URL, id)

	// The same job is visible through the default tenant's namespace…
	v := decode[jobView](t, doJSON(t, "GET", tenantBase(ts.URL, "default")+"/jobs/"+id, "", nil))
	if v.ID != id || v.Status != statusDone {
		t.Fatalf("namespaced view = %+v", v)
	}
	// …and a namespaced submission shows up in the un-namespaced listing.
	resp = doJSON(t, "POST", tenantBase(ts.URL, "default")+"/jobs", "", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST namespaced: status %d", resp.StatusCode)
	}
	id2 := decode[map[string]string](t, resp)["id"]
	waitForJob(t, ts.URL, id2)
	list := decode[map[string][]jobView](t, doJSON(t, "GET", ts.URL+"/v1/jobs", "", nil))
	if len(list["jobs"]) != 2 {
		t.Fatalf("un-namespaced listing has %d jobs, want 2", len(list["jobs"]))
	}
}

// TestTenantAuth covers the auth matrix: 404 unknown tenant, 401 missing
// token, 403 wrong token, 202 right token — and the same for the admin
// surface.
func TestTenantAuth(t *testing.T) {
	reg := regWith(t, tenant.Config{Name: "acme", Token: "s3cret"})
	s := newMTServer(t, nil, serverConfig{registry: reg, adminToken: "root"})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := testInstance(t, 100, 0.3)
	cases := []struct {
		name, url, token string
		want             int
	}{
		{"unknown tenant", tenantBase(ts.URL, "ghost") + "/jobs", "", http.StatusNotFound},
		{"missing token", tenantBase(ts.URL, "acme") + "/jobs", "", http.StatusUnauthorized},
		{"wrong token", tenantBase(ts.URL, "acme") + "/jobs", "nope", http.StatusForbidden},
		{"right token", tenantBase(ts.URL, "acme") + "/jobs", "s3cret", http.StatusAccepted},
	}
	for _, c := range cases {
		resp := doJSON(t, "POST", c.url, c.token, req)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	// The auth wall covers reads too, not just submissions.
	resp := doJSON(t, "GET", tenantBase(ts.URL, "acme")+"/jobs", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated list: status %d, want 401", resp.StatusCode)
	}

	// Admin surface.
	for _, c := range []struct {
		token string
		want  int
	}{{"", http.StatusUnauthorized}, {"nope", http.StatusForbidden}, {"root", http.StatusOK}} {
		resp := doJSON(t, "GET", ts.URL+"/v1/admin/tenants", c.token, nil)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("admin with token %q: status %d, want %d", c.token, resp.StatusCode, c.want)
		}
	}

	// The default tenant stays open: pre-tenancy clients send no token.
	resp = postJSON(t, ts.URL+"/v1/jobs", req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("open default tenant: status %d", resp.StatusCode)
	}
}

// TestTenantIsolation: tenants cannot see or touch each other's jobs.
func TestTenantIsolation(t *testing.T) {
	reg := regWith(t, tenant.Config{Name: "a"}, tenant.Config{Name: "b"})
	s := newMTServer(t, nil, serverConfig{registry: reg})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := testInstance(t, 150, 0.3)
	resp := doJSON(t, "POST", tenantBase(ts.URL, "a")+"/jobs", "", req)
	id := decode[map[string]string](t, resp)["id"]
	waitTenantJob(t, tenantBase(ts.URL, "a"), "", id)

	for _, probe := range []struct{ method, url string }{
		{"GET", tenantBase(ts.URL, "b") + "/jobs/" + id},
		{"DELETE", tenantBase(ts.URL, "b") + "/jobs/" + id},
		{"POST", tenantBase(ts.URL, "b") + "/jobs/" + id + "/cancel"},
		{"GET", ts.URL + "/v1/jobs/" + id}, // default tenant can't see it either
	} {
		resp := doJSON(t, probe.method, probe.url, "", nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", probe.method, probe.url, resp.StatusCode)
		}
	}
	list := decode[map[string][]jobView](t, doJSON(t, "GET", tenantBase(ts.URL, "b")+"/jobs", "", nil))
	if len(list["jobs"]) != 0 {
		t.Fatalf("tenant b lists %d jobs, want 0", len(list["jobs"]))
	}
}

// TestTenantQuotaJobsAndNodes covers 429 admission refusals on the
// concurrent-run and graph-node quotas, and that finishing/deleting
// releases them.
func TestTenantQuotaJobsAndNodes(t *testing.T) {
	reg := regWith(t,
		tenant.Config{Name: "jobsq", Quotas: tenant.Quotas{MaxJobs: 2}},
		tenant.Config{Name: "nodesq", Quotas: tenant.Quotas{MaxNodes: 700}},
	)
	s := newMTServer(t, nil, serverConfig{registry: reg})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Concurrent-run quota. Jobs on these instances finish in milliseconds,
	// so deterministically saturate the tenant's two run slots through the
	// same counters a long-running job would hold, then probe the API.
	jt := reg.Get("jobsq")
	for i := 0; i < 2; i++ {
		if err := jt.AcquireJob(); err != nil {
			t.Fatal(err)
		}
	}
	base := tenantBase(ts.URL, "jobsq")
	resp := doJSON(t, "POST", base+"/jobs", "", testInstance(t, 100, 0.3))
	refusal := decode[map[string]string](t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job over the concurrent-run quota: status %d, want 429 (%v)", resp.StatusCode, refusal)
	}
	if !strings.Contains(refusal["error"], "jobs quota") {
		t.Fatalf("429 body = %v", refusal)
	}
	// Slots released: admission works again (and the finished run hands
	// its own slot back, leaving room for the next one too).
	jt.ReleaseJob()
	jt.ReleaseJob()
	resp = doJSON(t, "POST", base+"/jobs", "", testInstance(t, 100, 0.3))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job after quota release: status %d", resp.StatusCode)
	}
	id := decode[map[string]string](t, resp)["id"]
	waitTenantJob(t, base, "", id)
	if active, _ := jt.Usage(); active != 0 {
		t.Fatalf("finished run left %d active-job slots held", active)
	}

	// Node quota: one 300+300-node job fits in 700, a second does not;
	// deleting the first frees the budget.
	small := testInstance(t, 300, 0.3)
	nbase := tenantBase(ts.URL, "nodesq")
	resp = doJSON(t, "POST", nbase+"/jobs", "", small)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first nodes job: status %d", resp.StatusCode)
	}
	nid := decode[map[string]string](t, resp)["id"]
	waitTenantJob(t, nbase, "", nid)
	resp = doJSON(t, "POST", nbase+"/jobs", "", small)
	refusal = decode[map[string]string](t, resp)
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(refusal["error"], "nodes quota") {
		t.Fatalf("over-node job: status %d body %v", resp.StatusCode, refusal)
	}
	resp = doJSON(t, "DELETE", nbase+"/jobs/"+nid, "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	resp = doJSON(t, "POST", nbase+"/jobs", "", small)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("nodes job after delete: status %d", resp.StatusCode)
	}
}

// TestTenantQuotaCheckpointBytes: a tenant at its durable-byte budget
// cannot admit new jobs until a DELETE frees the bytes.
func TestTenantQuotaCheckpointBytes(t *testing.T) {
	reg := regWith(t, tenant.Config{Name: "acme", Quotas: tenant.Quotas{MaxCheckpointBytes: 1}})
	st := newTestStore(t)
	s := newMTServer(t, st, serverConfig{registry: reg})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	base := tenantBase(ts.URL, "acme")

	req := testInstance(t, 200, 0.3)
	resp := doJSON(t, "POST", base+"/jobs", "", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first job (zero bytes used): status %d", resp.StatusCode)
	}
	id := decode[map[string]string](t, resp)["id"]
	waitTenantJob(t, base, "", id)
	if got := st.tenant("acme").checkpointBytes(); got <= 0 {
		t.Fatalf("tenant byte accounting = %d after a durable job", got)
	}

	// Over budget now: the next submission is refused.
	resp = doJSON(t, "POST", base+"/jobs", "", req)
	refusal := decode[map[string]string](t, resp)
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(refusal["error"], "checkpointBytes") {
		t.Fatalf("over-byte job: status %d body %v", resp.StatusCode, refusal)
	}

	// DELETE purges the records and frees the budget.
	resp = doJSON(t, "DELETE", base+"/jobs/"+id, "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	if got := st.tenant("acme").checkpointBytes(); got != 0 {
		t.Fatalf("tenant still accounts %d bytes after delete", got)
	}
	resp = doJSON(t, "POST", base+"/jobs", "", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job after delete: status %d", resp.StatusCode)
	}
	// Wait it out: its run goroutine checkpoints into the test TempDir.
	waitTenantJob(t, base, "", decode[map[string]string](t, resp)["id"])
}

// TestTenantDeleteJob: DELETE cancels a running job, purges every durable
// record, and the id answers 404 afterwards — also across a restart.
func TestTenantDeleteJob(t *testing.T) {
	st := newTestStore(t)
	ts := httptest.NewServer(newTestServer(t, st).handler())

	req := testInstance(t, 1500, 0.1)
	req.UntilStable = true
	resp := postJSON(t, ts.URL+"/v1/jobs", req)
	id := decode[map[string]string](t, resp)["id"]

	// Delete while (most likely still) running: cancel + purge in one call.
	resp = doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+id, "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE running job: status %d", resp.StatusCode)
	}
	decode[map[string]any](t, resp)
	resp = doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE: status %d, want 404", resp.StatusCode)
	}
	resp = doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+id, "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double DELETE: status %d, want 404", resp.StatusCode)
	}
	// No trace on disk.
	js := st.jobStore(id)
	if n := len(js.listChain()); n != 0 {
		t.Fatalf("%d chain records survive the delete", n)
	}
	for _, suffix := range []string{".g1", ".g2", ".meta.json"} {
		if _, err := os.Stat(js.path(suffix)); !os.IsNotExist(err) {
			t.Fatalf("%s survives the delete (err=%v)", suffix, err)
		}
	}
	ts.Close()

	// A restart does not resurrect it.
	ts2 := httptest.NewServer(newTestServer(t, st).handler())
	defer ts2.Close()
	resp = doJSON(t, "GET", ts2.URL+"/v1/jobs/"+id, "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted job came back after restart: status %d", resp.StatusCode)
	}
}

// TestTenantFairness is the contention pin: a greedy tenant saturating its
// concurrent-job quota cannot starve a second tenant — the small tenant's
// job is granted after at most one slot release (bounded wait through the
// weighted-fair scheduler), ahead of the greedy backlog that queued first.
//
// Contention is held open deterministically: two slots are occupied
// directly on the scheduler (standing in for heavy runs mid-sweep, which
// hold their slot for the whole run), so the greedy tenant's HTTP jobs are
// pinned in the queue however fast the instances solve.
func TestTenantFairness(t *testing.T) {
	reg := regWith(t,
		tenant.Config{Name: "greedy", Quotas: tenant.Quotas{MaxJobs: 4}},
		tenant.Config{Name: "small"},
	)
	s := newMTServer(t, nil, serverConfig{registry: reg, runSlots: 2})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	releaseHeavy1, err := s.sched.Acquire(t.Context(), "greedy")
	if err != nil {
		t.Fatal(err)
	}
	releaseHeavy2, err := s.sched.Acquire(t.Context(), "greedy")
	if err != nil {
		t.Fatal(err)
	}

	// Greedy saturates its job quota: four submissions queue behind its
	// own slot-hogging runs…
	heavy := testInstance(t, 1000, 0.1)
	gbase := tenantBase(ts.URL, "greedy")
	var greedyIDs []string
	for i := 0; i < 4; i++ {
		resp := doJSON(t, "POST", gbase+"/jobs", "", heavy)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("greedy job %d: status %d", i, resp.StatusCode)
		}
		greedyIDs = append(greedyIDs, decode[map[string]string](t, resp)["id"])
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.sched.Queued("greedy") != 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.sched.Queued("greedy"); got != 4 {
		t.Fatalf("greedy queued runs = %d, want 4", got)
	}
	// …and its fifth bounces off the quota with 429.
	resp := doJSON(t, "POST", gbase+"/jobs", "", heavy)
	refusal := decode[map[string]string](t, resp)
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(refusal["error"], "jobs quota") {
		t.Fatalf("greedy job over quota: status %d body %v, want 429", resp.StatusCode, refusal)
	}

	// The small tenant arrives last in every queue (its job is not tiny —
	// the tenant is small in queue presence, one run against six).
	sbase := tenantBase(ts.URL, "small")
	resp = doJSON(t, "POST", sbase+"/jobs", "", testInstance(t, 3000, 0.1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("small job: status %d", resp.StatusCode)
	}
	smallID := decode[map[string]string](t, resp)["id"]
	for s.sched.Queued("small") != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Bounded wait: ONE release while greedy still holds a slot and has
	// four runs queued ahead of small — the freed slot must go to small.
	releaseHeavy1()
	for s.sched.InFlight("small") != 1 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	// While small runs, both slots are held (greedy's standing run + small),
	// so the greedy backlog must sit frozen at 4 queued runs: the one freed
	// slot went to the newcomer, not the four earlier greedy waiters. The
	// double-check of InFlight makes the read race-free (if the job already
	// finished on a very fast machine, the strict grant-order pin still
	// lives in internal/tenant's TestSchedulerBoundedWait).
	if q := s.sched.Queued("greedy"); s.sched.InFlight("small") == 1 && q != 4 {
		t.Fatalf("greedy queue = %d while small held the freed slot, want 4", q)
	}
	v := waitTenantJob(t, sbase, "", smallID)
	if v.Status != statusDone {
		t.Fatalf("small job: status %q (%s)", v.Status, v.Error)
	}

	// Cleanup: hand the slots back and let the greedy backlog drain.
	releaseHeavy2()
	for _, id := range greedyIDs {
		if v := waitTenantJob(t, gbase, "", id); v.Status != statusDone {
			t.Fatalf("greedy job %s: status %q (%s)", id, v.Status, v.Error)
		}
	}
}

// TestTenantChurn hammers a durable multi-tenant server with concurrent
// create/cancel/delete/poll churn across three tenants (the -race suite for
// the tenancy layer), then restarts it and checks the survivors.
func TestTenantChurn(t *testing.T) {
	reg := regWith(t,
		tenant.Config{Name: "a", Weight: 2},
		tenant.Config{Name: "b"},
		tenant.Config{Name: "c", Quotas: tenant.Quotas{MaxJobs: 8}},
	)
	st := newTestStore(t)
	s := newMTServer(t, st, serverConfig{registry: reg, runSlots: 4})
	ts := httptest.NewServer(s.handler())

	req := testInstance(t, 150, 0.25)
	names := []string{"a", "b", "c"}
	type slot struct {
		tenant, id string
		deleted    bool
	}
	var mu sync.Mutex
	var slots []slot
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			name := names[w%len(names)]
			base := tenantBase(ts.URL, name)
			for i := 0; i < 3; i++ {
				r := req
				r.UntilStable = rng.Intn(2) == 0
				resp := doJSON(t, "POST", base+"/jobs", "", r)
				if resp.StatusCode == http.StatusTooManyRequests {
					resp.Body.Close()
					continue
				}
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("worker %d: submit status %d", w, resp.StatusCode)
					resp.Body.Close()
					return
				}
				id := decode[map[string]string](t, resp)["id"]
				deleted := false
				for k := 0; k < 4; k++ {
					switch rng.Intn(4) {
					case 0:
						resp := doJSON(t, "GET", base+"/jobs/"+id, "", nil)
						resp.Body.Close()
					case 1:
						resp := doJSON(t, "POST", base+"/jobs/"+id+"/cancel", "", nil)
						resp.Body.Close()
					case 2:
						resp := doJSON(t, "POST", base+"/jobs/"+id+"/checkpoint", "", nil)
						resp.Body.Close()
					case 3:
						if !deleted && rng.Intn(2) == 0 {
							resp := doJSON(t, "DELETE", base+"/jobs/"+id, "", nil)
							if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
								t.Errorf("worker %d: delete status %d", w, resp.StatusCode)
							}
							resp.Body.Close()
							deleted = true
						}
					}
				}
				mu.Lock()
				slots = append(slots, slot{tenant: name, id: id, deleted: deleted})
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// Every surviving job reaches a terminal state; deleted ones are gone.
	want := map[string]jobView{}
	for _, sl := range slots {
		base := tenantBase(ts.URL, sl.tenant)
		if sl.deleted {
			resp := doJSON(t, "GET", base+"/jobs/"+sl.id, "", nil)
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("deleted %s/%s: status %d, want 404", sl.tenant, sl.id, resp.StatusCode)
			}
			continue
		}
		v := waitTenantJob(t, base, "", sl.id)
		if v.Status != statusDone && v.Status != statusCancelled {
			t.Fatalf("%s/%s: status %q (%s)", sl.tenant, sl.id, v.Status, v.Error)
		}
		want[sl.tenant+"/"+sl.id] = v
	}
	ts.Close()

	// Restart over the same store: survivors identical, deletions durable,
	// and no tenant's active-run or node accounting leaks below zero
	// (admission keeps working).
	s2 := newMTServer(t, st, serverConfig{registry: regWith(t,
		tenant.Config{Name: "a", Weight: 2},
		tenant.Config{Name: "b"},
		tenant.Config{Name: "c", Quotas: tenant.Quotas{MaxJobs: 8}},
	), runSlots: 4})
	ts2 := httptest.NewServer(s2.handler())
	defer ts2.Close()
	for _, sl := range slots {
		base := tenantBase(ts2.URL, sl.tenant)
		resp := doJSON(t, "GET", base+"/jobs/"+sl.id, "", nil)
		if sl.deleted {
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("deleted %s/%s resurrected: status %d", sl.tenant, sl.id, resp.StatusCode)
			}
			continue
		}
		v := decode[jobView](t, resp)
		if v.Status != want[sl.tenant+"/"+sl.id].Status || v.Links != want[sl.tenant+"/"+sl.id].Links {
			t.Fatalf("%s/%s after restart: %q/%d links, want %q/%d",
				sl.tenant, sl.id, v.Status, v.Links, want[sl.tenant+"/"+sl.id].Status, want[sl.tenant+"/"+sl.id].Links)
		}
	}
	for _, name := range names {
		resp := doJSON(t, "POST", tenantBase(ts2.URL, name)+"/jobs", "", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("tenant %s admission after restart: status %d", name, resp.StatusCode)
		}
		id := decode[map[string]string](t, resp)["id"]
		waitTenantJob(t, tenantBase(ts2.URL, name), "", id)
	}
}

// TestTenantRecoveryAfterKill pins PR 3/4's headline guarantee per tenant:
// two tenants' jobs killed mid-run restore under their own roots as
// interrupted and resume bit-identically through the namespaced API.
func TestTenantRecoveryAfterKill(t *testing.T) {
	st := newTestStore(t)
	wants := map[string]*reconcile.Result{}
	for _, name := range []string{"acme", "beta"} {
		wants[name] = tenantChainVictim(t, st, name, "job-1", 6, 4)
	}
	reg := regWith(t, tenant.Config{Name: "acme", Token: "ta"}, tenant.Config{Name: "beta", Token: "tb"})
	s := newMTServer(t, st, serverConfig{registry: reg})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	for name, token := range map[string]string{"acme": "ta", "beta": "tb"} {
		base := tenantBase(ts.URL, name)
		v := decode[jobView](t, doJSON(t, "GET", base+"/jobs/job-1", token, nil))
		if v.Status != statusInterrupted {
			t.Fatalf("tenant %s restored status = %q (%s), want interrupted", name, v.Status, v.Error)
		}
		resp := doJSON(t, "POST", base+"/jobs/job-1/resume", token, nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("tenant %s resume: status %d", name, resp.StatusCode)
		}
		if done := waitTenantJob(t, base, token, "job-1"); done.Status != statusDone {
			t.Fatalf("tenant %s resumed: status %q (%s)", name, done.Status, done.Error)
		}
		got := decode[jobView](t, doJSON(t, "GET", base+"/jobs/job-1?pairs=1", token, nil))
		want := wants[name]
		wantPairs := make([][2]int, len(want.Pairs))
		for i, p := range want.Pairs {
			wantPairs[i] = [2]int{int(p.Left), int(p.Right)}
		}
		if fmt.Sprint(got.Pairs) != fmt.Sprint(wantPairs) {
			t.Fatalf("tenant %s: resumed matching not bit-identical to the uninterrupted run", name)
		}
	}
}

// tenantChainVictim is chainVictim under a named tenant's root: a job of
// `iterations` sweeps killed after `sweeps`, checkpointed at every sweep
// boundary, meta frozen mid-run. Returns the uninterrupted reference.
func tenantChainVictim(t *testing.T, st *store, tenantName, id string, iterations, sweeps int) *reconcile.Result {
	t.Helper()
	req := testInstance(t, 400, 0.15)
	g1, err := buildGraph(req.G1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := buildGraph(req.G2)
	if err != nil {
		t.Fatal(err)
	}
	seeds := toPairs(req.Seeds)

	ref, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds), reconcile.WithIterations(iterations))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}

	js := st.tenant(tenantName).jobStore(id)
	if err := js.saveGraphs(g1, g2); err != nil {
		t.Fatal(err)
	}
	var phases []phaseJSON
	ctx, cancel := context.WithCancel(t.Context())
	defer cancel()
	var victim *reconcile.Reconciler
	victim, err = reconcile.New(g1, g2,
		reconcile.WithSeeds(seeds),
		reconcile.WithIterations(iterations),
		reconcile.WithProgress(func(e reconcile.PhaseEvent) {
			phases = append(phases, phaseJSON{
				Iteration: e.Iteration, Bucket: e.Bucket, Buckets: e.Buckets,
				MinDegree: e.MinDegree, Matched: e.Matched, Total: e.TotalLinks,
			})
			if e.Bucket == e.Buckets {
				meta := jobMeta{
					ID: id, Num: 1, Status: statusRunning,
					Seeds: victim.Result().Seeds, Phases: phases,
				}
				if err := js.checkpoint(victim, meta); err != nil {
					t.Errorf("checkpoint at sweep %d: %v", e.Iteration, err)
				}
				if e.Iteration == sweeps {
					cancel()
				}
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Run(ctx); err == nil {
		t.Fatal("victim ran to completion; wanted a mid-run kill")
	}
	return want
}

// TestTenantStoreMigration: a pre-tenant -data-dir (root shard dirs, as PR
// 4 wrote them) is migrated into default/ at open and every job stays
// readable through the un-namespaced API.
func TestTenantStoreMigration(t *testing.T) {
	dir := t.TempDir()
	st, err := newStore(dir, testStoreConfig)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newTestServer(t, st).handler())
	req := testInstance(t, 300, 0.2)
	var ids []string
	var want []jobView
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/jobs", req)
		ids = append(ids, decode[map[string]string](t, resp)["id"])
	}
	for _, id := range ids {
		if v := waitForJob(t, ts.URL, id); v.Status != statusDone {
			t.Fatalf("job %s: status %q", id, v.Status)
		}
		want = append(want, jobPairs(t, ts.URL, id))
	}
	ts.Close()

	// Reconstruct the pre-tenant layout: everything under default/ moves
	// back to the data-dir root, default/ disappears.
	defRoot := filepath.Join(dir, "default")
	entries, err := os.ReadDir(defRoot)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.Rename(filepath.Join(defRoot, e.Name()), filepath.Join(dir, e.Name())); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(defRoot); err != nil {
		t.Fatal(err)
	}

	// Re-open: migration must move it all back under default/ and reload.
	st2, err := newStore(dir, testStoreConfig)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"shard-00", "job-1.meta.json"} {
		if matches, _ := filepath.Glob(filepath.Join(dir, "*", name)); len(matches) == 0 {
			if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
				t.Fatalf("%s still at the data-dir root after migration", name)
			}
		}
	}
	ts2 := httptest.NewServer(newTestServer(t, st2).handler())
	defer ts2.Close()
	for i, id := range ids {
		v := jobPairs(t, ts2.URL, id)
		if v.Status != statusDone || fmt.Sprint(v.Pairs) != fmt.Sprint(want[i].Pairs) {
			t.Fatalf("job %s after migration: status %q, pairs changed=%v", id, v.Status, fmt.Sprint(v.Pairs) != fmt.Sprint(want[i].Pairs))
		}
	}
}

// TestMaxBodyBytes: oversized POST bodies are refused with 413 and the
// standard error JSON, on both the create and seeds paths.
func TestMaxBodyBytes(t *testing.T) {
	s := newMTServer(t, nil, serverConfig{registry: tenant.NewRegistry(), maxBodyBytes: 16 << 10})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	big := testInstance(t, 2000, 0.2) // hundreds of KiB once marshalled
	resp := postJSON(t, ts.URL+"/v1/jobs", big)
	body := decode[map[string]string](t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized create: status %d, want 413", resp.StatusCode)
	}
	if body["error"] == "" {
		t.Fatalf("413 without the standard error JSON: %v", body)
	}

	small := testInstance(t, 40, 0.3) // a few KiB: fits
	resp = postJSON(t, ts.URL+"/v1/jobs", small)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("small create under the limit: status %d", resp.StatusCode)
	}
	id := decode[map[string]string](t, resp)["id"]
	waitForJob(t, ts.URL, id)

	seeds := make([][2]int, 8000) // ~50 KiB of [0,0] pairs
	resp = postJSON(t, fmt.Sprintf("%s/v1/jobs/%s/seeds", ts.URL, id), map[string]any{"seeds": seeds})
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized seeds: status %d, want 413", resp.StatusCode)
	}
}

// TestAdminTenantAPI: PUT registers and updates tenants at runtime, GET
// reports config plus live usage, and malformed updates are refused.
func TestAdminTenantAPI(t *testing.T) {
	st := newTestStore(t)
	s := newMTServer(t, st, serverConfig{registry: tenant.NewRegistry(), adminToken: "root"})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Register a tenant at runtime.
	resp := doJSON(t, "PUT", ts.URL+"/v1/admin/tenants/acme", "root",
		tenant.Config{Token: "sk-acme", Weight: 2, Quotas: tenant.Quotas{MaxJobs: 3}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT tenant: status %d", resp.StatusCode)
	}
	view := decode[tenantView](t, resp)
	if view.Name != "acme" || view.Auth != "token" || view.Weight != 2 || view.Quotas.MaxJobs != 3 {
		t.Fatalf("PUT response = %+v", view)
	}
	// Its store root exists immediately.
	if _, err := os.Stat(filepath.Join(st.root, "acme", "shard-00")); err != nil {
		t.Fatalf("tenant store root not created: %v", err)
	}

	// The new tenant serves namespaced, authenticated traffic.
	base := tenantBase(ts.URL, "acme")
	resp = doJSON(t, "POST", base+"/jobs", "sk-acme", testInstance(t, 150, 0.3))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job as new tenant: status %d", resp.StatusCode)
	}
	id := decode[map[string]string](t, resp)["id"]
	waitTenantJob(t, base, "sk-acme", id)

	// GET reports it with usage.
	list := decode[map[string][]tenantView](t, doJSON(t, "GET", ts.URL+"/v1/admin/tenants", "root", nil))
	var acme *tenantView
	for i := range list["tenants"] {
		if list["tenants"][i].Name == "acme" {
			acme = &list["tenants"][i]
		}
	}
	if acme == nil {
		t.Fatalf("acme missing from admin listing: %+v", list)
	}
	if acme.Usage.Jobs != 1 || acme.Usage.Nodes != 300 || acme.Usage.CheckpointBytes <= 0 {
		t.Fatalf("acme usage = %+v", acme.Usage)
	}

	// Quota updates apply in place: shrink MaxJobs to 0-concurrent…
	resp = doJSON(t, "PUT", ts.URL+"/v1/admin/tenants/acme", "root",
		tenant.Config{Token: "sk-acme", Weight: 2, Quotas: tenant.Quotas{MaxJobs: -1}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative quota accepted: status %d", resp.StatusCode)
	}

	// Malformed: body/path mismatch and invalid names.
	resp = doJSON(t, "PUT", ts.URL+"/v1/admin/tenants/acme", "root", tenant.Config{Name: "other"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("name mismatch accepted: status %d", resp.StatusCode)
	}
	resp = doJSON(t, "PUT", ts.URL+"/v1/admin/tenants/shard-00", "root", tenant.Config{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reserved name accepted: status %d", resp.StatusCode)
	}
}

// TestServeGracefulShutdown: shutdown cancels running jobs and writes
// final checkpoints, so a restart re-lists them as cancelled (not
// interrupted) at their exact stop point, and resume finishes
// bit-identically to an uninterrupted run.
func TestServeGracefulShutdown(t *testing.T) {
	st := newTestStore(t)
	s := newMTServer(t, st, serverConfig{registry: tenant.NewRegistry()})
	ts := httptest.NewServer(s.handler())

	req := testInstance(t, 3000, 0.05)
	req.UntilStable = true
	resp := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: status %d", resp.StatusCode)
	}
	id := decode[map[string]string](t, resp)["id"]

	// The uninterrupted reference for the bit-identity check.
	g1, err := buildGraph(req.G1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := buildGraph(req.G2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := reconcile.New(g1, g2, reconcile.WithSeeds(toPairs(req.Seeds)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.RunUntilStable(t.Context(), 50)
	if err != nil {
		t.Fatal(err)
	}

	dctx, cancel := context.WithTimeout(t.Context(), 30*time.Second)
	defer cancel()
	if err := s.shutdown(dctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	stopped := decode[jobView](t, doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, "", nil))
	ts.Close()
	if stopped.Status != statusCancelled && stopped.Status != statusDone {
		t.Fatalf("after shutdown: status %q (%s)", stopped.Status, stopped.Error)
	}

	// Restart: the drained job must NOT be "interrupted" — its final
	// checkpoint (state + terminal meta) made the stop graceful.
	ts2 := httptest.NewServer(newTestServer(t, st).handler())
	defer ts2.Close()
	v := decode[jobView](t, doJSON(t, "GET", ts2.URL+"/v1/jobs/"+id, "", nil))
	if v.Status != stopped.Status {
		t.Fatalf("restart status %q, want %q (graceful shutdown must not look like a crash)", v.Status, stopped.Status)
	}
	if v.Status == statusCancelled {
		resp := doJSON(t, "POST", ts2.URL+"/v1/jobs/"+id+"/resume", "", nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("resume: status %d", resp.StatusCode)
		}
		if done := waitForJob(t, ts2.URL, id); done.Status != statusDone {
			t.Fatalf("resumed: status %q (%s)", done.Status, done.Error)
		}
	}
	got := jobPairs(t, ts2.URL, id)
	wantPairs := make([][2]int, len(want.Pairs))
	for i, p := range want.Pairs {
		wantPairs[i] = [2]int{int(p.Left), int(p.Right)}
	}
	if fmt.Sprint(got.Pairs) != fmt.Sprint(wantPairs) {
		t.Fatal("post-shutdown resume is not bit-identical to the uninterrupted run")
	}
}
