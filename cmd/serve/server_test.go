package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/sociograph/reconcile"
)

// testInstance builds a reconciliation instance in wire form: a PA graph,
// two independent partial copies, and identity seeds.
func testInstance(t *testing.T, n int, seedFrac float64) jobRequest {
	t.Helper()
	r := reconcile.NewRand(71)
	world := reconcile.GeneratePA(r, n, 8)
	g1, g2 := reconcile.IndependentCopies(r, world, 0.8, 0.8)
	seeds := reconcile.Seeds(r, reconcile.IdentityPairs(n), seedFrac)

	spec := func(g *reconcile.Graph) graphSpec {
		s := graphSpec{Nodes: g.NumNodes()}
		g.Edges(func(e reconcile.Edge) bool {
			s.Edges = append(s.Edges, [2]int{int(e.U), int(e.V)})
			return true
		})
		return s
	}
	req := jobRequest{G1: spec(g1), G2: spec(g2)}
	for _, p := range seeds {
		req.Seeds = append(req.Seeds, [2]int{int(p.Left), int(p.Right)})
	}
	return req
}

// newTestServer builds a server, failing the test if any persisted job was
// skipped during restore — tests never write jobs they cannot read back.
func newTestServer(t *testing.T, st *store) *server {
	t.Helper()
	s, skipped := newServer(st)
	for _, err := range skipped {
		t.Errorf("restore skipped a job: %v", err)
	}
	return s
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitForJob polls GET /v1/jobs/{id} until the job leaves the running state.
func waitForJob(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, id))
		if err != nil {
			t.Fatal(err)
		}
		v := decode[jobView](t, resp)
		if v.Status != statusRunning {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s still running after 30s", id)
	return jobView{}
}

func TestServeJobLifecycle(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil).handler())
	defer ts.Close()

	// Submit a job.
	req := testInstance(t, 800, 0.15)
	resp := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	created := decode[map[string]string](t, resp)
	id := created["id"]
	if id == "" {
		t.Fatal("no job id in response")
	}

	// It finishes and reports per-bucket phase statistics.
	v := waitForJob(t, ts.URL, id)
	if v.Status != statusDone {
		t.Fatalf("status = %q (%s), want done", v.Status, v.Error)
	}
	if len(v.Phases) == 0 {
		t.Fatal("no phase statistics reported")
	}
	for _, ph := range v.Phases {
		if ph.Iteration < 1 || ph.Bucket < 1 || ph.Bucket > ph.Buckets || ph.MinDegree < 1 {
			t.Fatalf("malformed phase stat %+v", ph)
		}
	}
	if v.Seeds != len(req.Seeds) {
		t.Fatalf("seeds = %d, want %d", v.Seeds, len(req.Seeds))
	}
	if v.New <= 0 || v.Links != v.Seeds+v.New {
		t.Fatalf("links = %d, seeds = %d, new = %d: matcher found nothing", v.Links, v.Seeds, v.New)
	}

	// The HTTP result matches the in-process API on the same instance.
	g1, err := buildGraph(req.G1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := buildGraph(req.G2)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := reconcile.New(g1, g2, reconcile.WithSeeds(toPairs(req.Seeds)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := rec.Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if v.Links != len(want.Pairs) {
		t.Fatalf("HTTP run found %d links, in-process %d", v.Links, len(want.Pairs))
	}

	// ?pairs=1 returns the link list once stopped.
	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s?pairs=1", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	withPairs := decode[jobView](t, resp)
	if len(withPairs.Pairs) != v.Links {
		t.Fatalf("pairs = %d, want %d", len(withPairs.Pairs), v.Links)
	}

	// Incremental seeds resume the job and never lose links.
	extra := [][2]int{}
	usedL := make(map[int]bool, len(withPairs.Pairs))
	usedR := make(map[int]bool, len(withPairs.Pairs))
	for _, p := range withPairs.Pairs {
		usedL[p[0]] = true
		usedR[p[1]] = true
	}
	for i := 0; i < req.G1.Nodes && len(extra) < 20; i++ {
		if !usedL[i] && !usedR[i] {
			extra = append(extra, [2]int{i, i})
		}
	}
	if len(extra) == 0 {
		t.Skip("matcher already identified every node; nothing to ingest")
	}
	resp = postJSON(t, fmt.Sprintf("%s/v1/jobs/%s/seeds", ts.URL, id), map[string]any{"seeds": extra})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST seeds: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	after := waitForJob(t, ts.URL, id)
	if after.Status != statusDone {
		t.Fatalf("after seeds: status %q (%s)", after.Status, after.Error)
	}
	if after.Links < v.Links+len(extra) {
		t.Fatalf("links after ingest = %d, want >= %d", after.Links, v.Links+len(extra))
	}

	// The job shows up in the listing.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[map[string][]jobView](t, resp)
	if len(list["jobs"]) != 1 || list["jobs"][0].ID != id {
		t.Fatalf("listing = %+v", list)
	}
}

func TestServeCancel(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil).handler())
	defer ts.Close()

	req := testInstance(t, 2000, 0.1)
	req.UntilStable = true
	resp := postJSON(t, ts.URL+"/v1/jobs", req)
	created := decode[map[string]string](t, resp)

	resp = postJSON(t, fmt.Sprintf("%s/v1/jobs/%s/cancel", ts.URL, created["id"]), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST cancel: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// The job must reach a terminal state promptly — cancelled if the signal
	// landed mid-run, done if the run won the race.
	v := waitForJob(t, ts.URL, created["id"])
	if v.Status != statusCancelled && v.Status != statusDone {
		t.Fatalf("status after cancel = %q", v.Status)
	}
}

func TestServeValidation(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil).handler())
	defer ts.Close()

	// Malformed body.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}

	// Unknown engine.
	req := testInstance(t, 50, 0.2)
	req.Options.Engine = "quantum"
	resp = postJSON(t, ts.URL+"/v1/jobs", req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown engine: status %d", resp.StatusCode)
	}

	// Out-of-range edge.
	req = testInstance(t, 50, 0.2)
	req.G1.Edges = append(req.G1.Edges, [2]int{0, 99})
	resp = postJSON(t, ts.URL+"/v1/jobs", req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range edge: status %d", resp.StatusCode)
	}

	// Unknown job.
	resp, err = http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}

	// Conflicting incremental seed.
	req = testInstance(t, 200, 0.3)
	resp = postJSON(t, ts.URL+"/v1/jobs", req)
	created := decode[map[string]string](t, resp)
	v := waitForJob(t, ts.URL, created["id"])
	if v.Status != statusDone {
		t.Fatalf("setup job: status %q", v.Status)
	}
	bad := [][2]int{{int(req.Seeds[0][0]), int(req.Seeds[1][1])}} // left already linked elsewhere
	resp = postJSON(t, fmt.Sprintf("%s/v1/jobs/%s/seeds", ts.URL, created["id"]), map[string]any{"seeds": bad})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("conflicting seed: status %d", resp.StatusCode)
	}

	// Seed batches are all-or-nothing: a valid seed ahead of a conflicting
	// one must not be committed when the batch is rejected.
	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s?pairs=1", ts.URL, created["id"]))
	if err != nil {
		t.Fatal(err)
	}
	before := decode[jobView](t, resp)
	free := -1
	usedL := map[int]bool{}
	usedR := map[int]bool{}
	for _, p := range before.Pairs {
		usedL[p[0]] = true
		usedR[p[1]] = true
	}
	for i := 0; i < req.G1.Nodes; i++ {
		if !usedL[i] && !usedR[i] {
			free = i
			break
		}
	}
	if free < 0 {
		t.Skip("no unmatched node to build the batch from")
	}
	batch := [][2]int{{free, free}, bad[0]}
	resp = postJSON(t, fmt.Sprintf("%s/v1/jobs/%s/seeds", ts.URL, created["id"]), map[string]any{"seeds": batch})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mixed batch: status %d, want 409", resp.StatusCode)
	}
	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s?pairs=1", ts.URL, created["id"]))
	if err != nil {
		t.Fatal(err)
	}
	after := decode[jobView](t, resp)
	if after.Status != statusDone || len(after.Pairs) != len(before.Pairs) || after.Links != before.Links {
		t.Fatalf("rejected batch changed the job: %d -> %d pairs, links %d -> %d, status %q",
			len(before.Pairs), len(after.Pairs), before.Links, after.Links, after.Status)
	}

	// An out-of-range incremental seed is a 400, also without state change.
	resp = postJSON(t, fmt.Sprintf("%s/v1/jobs/%s/seeds", ts.URL, created["id"]),
		map[string]any{"seeds": [][2]int{{free, req.G2.Nodes + 5}}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range seed: status %d, want 400", resp.StatusCode)
	}
}

// TestServeEngineSelection submits the same instance under every engine
// string and requires identical link counts — the HTTP surface of the
// engines' bit-identical guarantee.
func TestServeEngineSelection(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil).handler())
	defer ts.Close()

	req := testInstance(t, 400, 0.2)
	counts := map[string]int{}
	for _, engine := range []string{"hybrid", "frontier", "parallel", "sequential"} {
		req.Options.Engine = engine
		resp := postJSON(t, ts.URL+"/v1/jobs", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("engine %q: status %d", engine, resp.StatusCode)
		}
		created := decode[map[string]string](t, resp)
		v := waitForJob(t, ts.URL, created["id"])
		if v.Status != statusDone {
			t.Fatalf("engine %q: status %q (%s)", engine, v.Status, v.Error)
		}
		if v.New <= 0 {
			t.Fatalf("engine %q: matcher found nothing", engine)
		}
		counts[engine] = v.Links
	}
	if counts["frontier"] != counts["sequential"] || counts["parallel"] != counts["sequential"] {
		t.Fatalf("engines disagree over HTTP: %v", counts)
	}
}
