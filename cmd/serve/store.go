package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sociograph/reconcile"
	"github.com/sociograph/reconcile/internal/tenant"
	"github.com/sociograph/reconcile/internal/trace"
)

// store is the crash-safe on-disk job store behind -data-dir: per-tenant
// roots, each sharded and delta-checkpointed:
//
//	<data-dir>/
//	  default/                           one root per tenant
//	    shard-00/ shard-01/ … shard-NN/  one directory per shard (-shards)
//	      <id>.g1, <id>.g2               the immutable graphs, written once
//	      <id>.ckpt-00000001.full        a full state checkpoint
//	      <id>.ckpt-00000002.delta       a delta record (changes since #1)
//	      <id>.ckpt-….delta | .full      … the chain continues; a full every
//	                                     -full-every checkpoints
//	      <id>.meta.json                 job-level bookkeeping
//	  acme/
//	    shard-00/ …                      every tenant gets its own shard set
//
// Within a tenant, jobs hash across the shard directories, so each shard is
// an independent fsync domain — mount them on different volumes and N
// concurrent jobs stop contending on one directory's rename+fsync path.
// Tenant roots additionally keep tenants' durable bytes separable for
// quota accounting: the store tracks the bytes under each root (graphs,
// chain records, metas), rebuilt by a walk at boot and maintained
// incrementally afterwards, and the serve layer checks that figure against
// the tenant's checkpoint-byte quota at job admission.
//
// Checkpoints form chains: a full snapshot (reconcile.Checkpointer
// .WriteFull), then cheap delta records holding only the pairs, phase
// entries and frontier-cache edits since the previous checkpoint —
// O(churn) instead of O(matching), which is what lets per-sweep
// checkpointing stay on by default at paper scale. Recovery replays the
// newest readable full plus its contiguous deltas; a missing or corrupt
// trailing record makes recovery fall back to the last consistent prefix
// and surface the job as "interrupted" (its next resume finishes
// bit-identically from there — the chain resume-equivalence suite pins
// this). Retention keeps the last -keep full chains per job and removes
// older records after each new full and on boot.
//
// Every write is atomic — a temp file in the same directory, fsynced,
// renamed, directory fsynced — so a crash mid-checkpoint leaves the
// previous chain intact. Pre-tenant layouts migrate automatically: a
// -data-dir whose root still holds shard-NN directories or flat job files
// (the PR 3/4 layouts) has them moved under default/ at open, after which
// the old read-compatibility paths keep working inside the default root
// (legacy flat jobs load from their .state snapshot and move onto chain
// checkpoints, which retire the .state file, on their first write).
type store struct {
	root string
	cfg  storeConfig

	mu      sync.Mutex
	tenants map[string]*tenantStore
	onWrite func(shard string, bytes int64, seconds float64)
}

// SetWriteObserver installs fn, called after every tracked durable write
// with the shard directory's base name, the bytes the file holds after the
// write, and the wall time the write spent (temp write + fsync + rename +
// dir fsync). The serve layer feeds the checkpoint-byte counters and fsync
// latency histograms from it. Install before serving traffic.
func (st *store) SetWriteObserver(fn func(shard string, bytes int64, seconds float64)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.onWrite = fn
}

// writeObserver snapshots the observer under the store lock.
func (st *store) writeObserver() func(string, int64, float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.onWrite
}

// storeConfig carries the store's tuning flags.
type storeConfig struct {
	shards    int // shard directories for new jobs, per tenant
	fullEvery int // chain period: one full, then fullEvery-1 deltas
	keep      int // full chains retained per job
	// mmap writes new jobs' graphs in the mappable container format and
	// loads graph files through reconcile.OpenGraphMapped, so restored jobs
	// serve their immutable CSR arrays straight from read-only file mappings
	// (falling back to heap copies where mmap is unavailable). Either
	// setting reads files written under the other.
	mmap bool
	// rangeNodes is the node-range shard target: a new job whose graphs
	// total more than rangeNodes nodes checkpoints as per-range shard files
	// plus a manifest (written and replayed in parallel) instead of one
	// monolithic record per checkpoint. 0 disables ranged chains. The shard
	// count is fixed per job at submission; existing jobs keep the geometry
	// their chain was created with.
	rangeNodes int
}

func newStore(dir string, cfg storeConfig) (*store, error) {
	if cfg.shards < 1 {
		return nil, fmt.Errorf("store: -shards must be >= 1 (got %d)", cfg.shards)
	}
	if cfg.fullEvery < 1 {
		return nil, fmt.Errorf("store: -full-every must be >= 1 (got %d)", cfg.fullEvery)
	}
	if cfg.keep < 1 {
		return nil, fmt.Errorf("store: -keep must be >= 1 (got %d)", cfg.keep)
	}
	st := &store{root: dir, cfg: cfg, tenants: make(map[string]*tenantStore)}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := st.migrateLegacy(); err != nil {
		return nil, fmt.Errorf("store: migrating pre-tenant layout: %w", err)
	}
	return st, nil
}

// migrateLegacy moves a pre-tenant -data-dir layout under the default
// tenant's root: shard-NN directories and flat job files that used to live
// at the top level belong to default/ now. Renames within one filesystem
// are cheap and leave file contents untouched, so chains stay replayable
// byte for byte. A partially migrated dir (crash mid-migration) is fine:
// migration is idempotent and merges into an existing default/.
func (st *store) migrateLegacy() error {
	entries, err := os.ReadDir(st.root)
	if err != nil {
		return err
	}
	var legacy []os.DirEntry
	for _, e := range entries {
		if e.IsDir() {
			if strings.HasPrefix(e.Name(), "shard-") {
				legacy = append(legacy, e)
			}
			continue
		}
		if strings.Contains(e.Name(), ".tmp-") {
			os.Remove(filepath.Join(st.root, e.Name())) // orphaned temp file
			continue
		}
		legacy = append(legacy, e)
	}
	if len(legacy) == 0 {
		return nil
	}
	defRoot := filepath.Join(st.root, tenant.Default)
	if err := os.MkdirAll(defRoot, 0o755); err != nil {
		return err
	}
	for _, e := range legacy {
		src := filepath.Join(st.root, e.Name())
		dst := filepath.Join(defRoot, e.Name())
		if err := moveMerge(src, dst); err != nil {
			return err
		}
	}
	return syncDir(st.root)
}

// moveMerge renames src to dst; when dst is an existing directory the
// contents are merged file by file (a re-run after a crash mid-migration,
// or a shard dir that already exists under default/).
func moveMerge(src, dst string) error {
	if _, err := os.Stat(dst); os.IsNotExist(err) {
		//lint:allow atomic-write migration renames already-durable files within one filesystem; there is no torn-write window and migrateLegacy fsyncs the affected directories afterwards
		return os.Rename(src, dst)
	}
	fi, err := os.Stat(src)
	if err != nil {
		return err
	}
	if !fi.IsDir() {
		// Overwrite a half-moved file.
		//lint:allow atomic-write migration re-run after a crash: both names hold the same already-durable bytes, so either outcome of the rename is consistent
		return os.Rename(src, dst)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := moveMerge(filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())); err != nil {
			return err
		}
	}
	return os.Remove(src)
}

// tenantNames lists the tenant roots present on disk, sorted. Directories
// whose names are not valid tenant names (a stray lost+found, a backup
// folder) are not tenant roots: they are reported in skipped and — more
// importantly — never handed to tenant(), which would create shard
// directories inside them.
func (st *store) tenantNames() (names []string, skipped []error) {
	entries, err := os.ReadDir(st.root)
	if err != nil {
		return nil, []error{err}
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !tenant.ValidName(e.Name()) {
			skipped = append(skipped, fmt.Errorf("store: ignoring non-tenant directory %s", filepath.Join(st.root, e.Name())))
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, skipped
}

// tenant returns (creating on first use) the named tenant's slice of the
// store. Directory creation is best-effort: a failure surfaces as an IO
// error on the first write rather than here.
func (st *store) tenant(name string) *tenantStore {
	st.mu.Lock()
	defer st.mu.Unlock()
	if ts := st.tenants[name]; ts != nil {
		return ts
	}
	ts := &tenantStore{store: st, name: name, root: filepath.Join(st.root, name)}
	os.MkdirAll(ts.root, 0o755)
	for i := 0; i < st.cfg.shards; i++ {
		sd := filepath.Join(ts.root, fmt.Sprintf("shard-%02d", i))
		os.MkdirAll(sd, 0o755)
		ts.shardDirs = append(ts.shardDirs, sd)
	}
	// A crash between CreateTemp and rename orphans a temp file; sweep them
	// so checkpoint-heavy servers do not leak one per crash. Swept in every
	// directory that exists, including shards beyond the current -shards
	// (the store reads jobs wherever a previous configuration put them).
	for _, d := range append([]string{ts.root}, ts.allShardDirs()...) {
		if stale, err := filepath.Glob(filepath.Join(d, "*.tmp-*")); err == nil {
			for _, path := range stale {
				os.Remove(path)
			}
		}
	}
	st.tenants[name] = ts
	return ts
}

// tenantStore is one tenant's root: its shard set and its durable-byte
// accounting (the figure the tenant's checkpoint-byte quota is checked
// against at job admission).
type tenantStore struct {
	store *store
	name  string
	root  string
	// shardDirs are the placement targets for new jobs, len == cfg.shards.
	shardDirs []string
	// bytes is the durable footprint under root: graphs, chain records,
	// metas and legacy .state files. Rebuilt by a walk at boot
	// (recountBytes), adjusted incrementally by tracked writes/removes.
	bytes atomic.Int64
}

// checkpointBytes returns the tenant's current durable footprint.
func (ts *tenantStore) checkpointBytes() int64 { return ts.bytes.Load() }

// recountBytes rebuilds the byte accounting from a filesystem walk.
func (ts *tenantStore) recountBytes() {
	ts.bytes.Store(ts.walkBytes())
}

// walkBytes sums the sizes of every file under the tenant root.
func (ts *tenantStore) walkBytes() int64 {
	var total int64
	filepath.WalkDir(ts.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if fi, err := d.Info(); err == nil {
			total += fi.Size()
		}
		return nil
	})
	return total
}

// verifyBytes is the accounting invariant check: the incrementally
// maintained counter must equal a fresh walk of the tenant root. Both
// figures are returned so callers can report the drift. Meaningful only
// while no job of the tenant is mid-write — the walk and the counter
// legitimately diverge during a write — so the admin surface and the load
// harness call it over settled jobs.
func (ts *tenantStore) verifyBytes() (tracked, walked int64) {
	return ts.bytes.Load(), ts.walkBytes()
}

// allShardDirs lists every shard directory present under the tenant root —
// not just the first cfg.shards — so jobs placed by a previous -shards
// setting stay readable.
func (ts *tenantStore) allShardDirs() []string {
	dirs, err := filepath.Glob(filepath.Join(ts.root, "shard-*"))
	if err != nil {
		return nil
	}
	sort.Strings(dirs)
	var out []string
	for _, d := range dirs {
		if fi, err := os.Stat(d); err == nil && fi.IsDir() {
			out = append(out, d)
		}
	}
	return out
}

// jobStore returns the handle for a new job, placed on its hash shard
// within the tenant's shard set.
func (ts *tenantStore) jobStore(id string) *jobStore {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &jobStore{ts: ts, id: id, dir: ts.shardDirs[h.Sum32()%uint32(len(ts.shardDirs))]}
}

// jobStore returns the default tenant's handle for a job — the pre-tenancy
// call surface, kept for the store suites and single-tenant tooling.
func (st *store) jobStore(id string) *jobStore {
	return st.tenant(tenant.Default).jobStore(id)
}

// jobMeta is the JSON sidecar of a persisted job: everything the server
// tracks about a job beyond the session state itself.
type jobMeta struct {
	ID          string      `json:"id"`
	Num         int         `json:"num"`
	Status      jobStatus   `json:"status"`
	Error       string      `json:"error,omitempty"`
	Seeds       int         `json:"seeds"`
	UntilStable bool        `json:"untilStable"`
	MaxSweeps   int         `json:"maxSweeps"`
	Phases      []phaseJSON `json:"phases"`
	// Ranges is the job's chain geometry: > 1 means checkpoints are written
	// as that many per-node-range shard files plus a manifest. Fixed when
	// the job is submitted; recovery replays with the same geometry.
	Ranges int `json:"ranges,omitempty"`
	// Trace is the job's span recorder snapshot as of this meta write. A
	// restart restores it (trace.Restore), so a resumed job's trace timeline
	// continues instead of restarting — the /trace endpoint's continuity
	// promise.
	Trace *trace.Persisted `json:"trace,omitempty"`
}

// jobStore is one job's slice of the store: its shard directory, checkpoint
// chain position, and the delta base. It is driven by one goroutine at a
// time (the run goroutine inside a progress hook, or a handler while no run
// is in flight), like the Reconciler it checkpoints.
type jobStore struct {
	ts  *tenantStore
	dir string
	id  string

	seq       int // sequence number of the newest chain record on disk
	sinceFull int // chain records written since the last full
	haveBase  bool
	ckpt      reconcile.Checkpointer
	// ranges > 1 switches the chain to ranged form: each checkpoint is
	// ranges shard files plus a manifest, the manifest written last as the
	// commit point. rckpt is its checkpointer, built lazily.
	ranges int
	rckpt  *reconcile.RangedCheckpointer

	// tracer, when set by the serve layer, receives a checkpoint-write span
	// per durable record (each range shard and the manifest separately on
	// ranged chains). Set before any run goroutine starts and never replaced;
	// the recorder itself is concurrency-safe, so the ranged path's parallel
	// shard writers may all emit spans at once. All emission is nil-safe.
	tracer *trace.Recorder
	// boot accumulates spans for work done before the job's recorder exists —
	// graph opens and chain replay at load. The serve layer observes them
	// onto the restored recorder and clears the slice.
	boot []bootSpan
}

// bootSpan is one load-time observation waiting for a recorder.
type bootSpan struct {
	kind   trace.Kind
	detail string
	nanos  int64
}

// bootObserve queues one load-time measurement for the job's future recorder.
func (js *jobStore) bootObserve(kind trace.Kind, detail string, d time.Duration) {
	js.boot = append(js.boot, bootSpan{kind: kind, detail: detail, nanos: d.Nanoseconds()})
}

func (js *jobStore) path(suffix string) string {
	return filepath.Join(js.dir, js.id+suffix)
}

func (js *jobStore) chainPath(seq int, kind string) string {
	return js.path(fmt.Sprintf(".ckpt-%08d.%s", seq, kind))
}

// rangePath names one range shard of a ranged checkpoint.
func (js *jobStore) rangePath(seq, rng int, kind string) string {
	return js.path(fmt.Sprintf(".ckpt-%08d.r%04d.%s", seq, rng, kind))
}

// fileSize returns a file's size, or 0 when it does not exist.
func fileSize(path string) int64 {
	if fi, err := os.Stat(path); err == nil {
		return fi.Size()
	}
	return 0
}

// writeTracked is atomicWrite plus tenant byte accounting: the delta
// between the file's size before and after lands on the tenant's counter
// (metas are overwritten in place, so the delta is what matters). The
// accounting re-stats the path even when atomicWrite reports an error —
// the write can fail after its rename landed (the directory fsync open),
// and skipping the adjustment then left the counter permanently below the
// walk, a drift the boot-walk invariant (verifyBytes) now pins.
func (js *jobStore) writeTracked(path string, write func(*os.File) error) error {
	old := fileSize(path)
	start := time.Now()
	err := atomicWrite(path, write)
	now := fileSize(path)
	js.ts.bytes.Add(now - old)
	if err == nil {
		if fn := js.ts.store.writeObserver(); fn != nil {
			fn(filepath.Base(js.dir), now, time.Since(start).Seconds())
		}
	}
	return err
}

// removeTracked deletes a file and credits its bytes back to the tenant.
func (js *jobStore) removeTracked(path string) {
	sz := fileSize(path)
	if err := os.Remove(path); err == nil {
		js.ts.bytes.Add(-sz)
	}
}

// atomicWrite writes via a temp file in the same directory, fsyncs it,
// renames it into place and fsyncs the directory, so concurrent readers and
// crash recovery only ever see a complete previous or complete new file —
// and the rename itself is durable before the caller builds on it.
func atomicWrite(path string, write func(*os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Best-effort: directory fsync is optional in POSIX and some
	// filesystems refuse it; the rename itself is still atomic.
	_ = d.Sync()
	return nil
}

// saveGraphs persists the job's two graphs — in the mappable container
// format under -mmap, so a restart serves them from file mappings — and
// fixes the job's chain geometry from their size. Called once at submission.
func (js *jobStore) saveGraphs(g1, g2 *reconcile.Graph) error {
	cfg := js.ts.store.cfg
	if cfg.rangeNodes > 0 {
		js.ranges = reconcile.StateRangeCount(g1.NumNodes(), g2.NumNodes(), cfg.rangeNodes)
	}
	for _, f := range []struct {
		suffix string
		g      *reconcile.Graph
	}{{".g1", g1}, {".g2", g2}} {
		err := js.writeTracked(js.path(f.suffix), func(w *os.File) error {
			if cfg.mmap {
				return reconcile.WriteGraphMapped(w, f.g)
			}
			return reconcile.WriteGraphBinary(w, f.g)
		})
		if err != nil {
			return fmt.Errorf("store: graphs of %s: %w", js.id, err)
		}
	}
	return nil
}

// checkpoint appends one record to the job's chain — a delta when a durable
// base exists and the chain period allows it, a full otherwise — then
// persists the meta. The chain record lands first: if the crash window falls
// between the two renames, recovery sees a fresh state with slightly stale
// bookkeeping, which restore reconciles (counters are re-derived from the
// state). Any write failure poisons the delta base, so the next checkpoint
// re-anchors the chain with a full instead of building on a record that may
// never have become durable.
func (js *jobStore) checkpoint(rec *reconcile.Reconciler, meta jobMeta) error {
	meta.Ranges = js.ranges
	if js.ranges > 1 {
		return js.checkpointRanged(rec, meta)
	}
	seq := js.seq + 1
	wantFull := !js.haveBase || js.sinceFull+1 >= js.ts.store.cfg.fullEvery
	if !wantFull {
		sp := js.tracer.Begin(trace.KindCheckpointWrite, fmt.Sprintf("delta #%d", seq))
		err := js.writeTracked(js.chainPath(seq, "delta"), func(w *os.File) error {
			return js.ckpt.WriteDelta(w, rec)
		})
		sp.End()
		switch {
		case err == nil:
			js.sinceFull++
		case errors.Is(err, reconcile.ErrFullRequired):
			wantFull = true
		default:
			js.haveBase = false
			return fmt.Errorf("store: delta checkpoint of %s: %w", js.id, err)
		}
	}
	if wantFull {
		sp := js.tracer.Begin(trace.KindCheckpointWrite, fmt.Sprintf("full #%d", seq))
		err := js.writeTracked(js.chainPath(seq, "full"), func(w *os.File) error {
			return js.ckpt.WriteFull(w, rec)
		})
		sp.End()
		if err != nil {
			js.haveBase = false
			return fmt.Errorf("store: full checkpoint of %s: %w", js.id, err)
		}
		js.sinceFull = 0
		js.haveBase = true
		js.retireOld()
	}
	js.seq = seq
	return js.writeMeta(meta)
}

func (js *jobStore) writeMeta(meta jobMeta) error {
	err := js.writeTracked(js.path(".meta.json"), func(w *os.File) error {
		return json.NewEncoder(w).Encode(meta)
	})
	if err != nil {
		return fmt.Errorf("store: meta of %s: %w", js.id, err)
	}
	return nil
}

// checkpointRanged appends one ranged checkpoint: the ranges shard files
// written concurrently (each atomically, so every core the host has can
// fsync a slice of the state at once), then the manifest — whose durable
// presence is the checkpoint's commit point. A crash before the manifest
// rename leaves orphan shard files recovery ignores; a crash after it left a
// complete checkpoint. Failure handling matches the monolithic path: any
// write error poisons the delta base so the next checkpoint re-anchors with
// a full.
func (js *jobStore) checkpointRanged(rec *reconcile.Reconciler, meta jobMeta) error {
	seq := js.seq + 1
	if js.rckpt == nil {
		js.rckpt = reconcile.NewRangedCheckpointer(js.ranges)
	}
	wantFull := !js.haveBase || js.sinceFull+1 >= js.ts.store.cfg.fullEvery
	ck, err := js.rckpt.Prepare(rec, wantFull)
	if errors.Is(err, reconcile.ErrFullRequired) {
		wantFull = true
		ck, err = js.rckpt.Prepare(rec, true)
	}
	if err != nil {
		js.haveBase = false
		return fmt.Errorf("store: ranged checkpoint of %s: %w", js.id, err)
	}
	kind := "delta"
	if ck.Full() {
		kind = "full"
	}
	errs := make([]error, ck.Ranges())
	var wg sync.WaitGroup
	for j := 0; j < ck.Ranges(); j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			sp := js.tracer.Begin(trace.KindCheckpointWrite, fmt.Sprintf("%s #%d r%d/%d", kind, seq, j+1, ck.Ranges()))
			errs[j] = js.writeTracked(js.rangePath(seq, j, kind), func(w *os.File) error {
				return ck.EncodePart(j, w)
			})
			sp.End()
		}(j)
	}
	wg.Wait()
	for _, werr := range errs {
		if werr != nil {
			js.haveBase = false
			return fmt.Errorf("store: ranged checkpoint of %s: %w", js.id, werr)
		}
	}
	sp := js.tracer.Begin(trace.KindCheckpointWrite, fmt.Sprintf("manifest #%d", seq))
	err = js.writeTracked(js.chainPath(seq, "manifest"), func(w *os.File) error {
		return ck.EncodeManifest(w)
	})
	sp.End()
	if err != nil {
		js.haveBase = false
		return fmt.Errorf("store: ranged checkpoint of %s: %w", js.id, err)
	}
	js.rckpt.Commit(ck)
	// A failed attempt at this seq may have left shard files of the other
	// kind; now that the manifest committed this one, drop them so recovery
	// never sees two candidate shard sets for one checkpoint.
	other := "full"
	if ck.Full() {
		other = "delta"
	}
	for j := 0; j < ck.Ranges(); j++ {
		js.removeTracked(js.rangePath(seq, j, other))
	}
	if ck.Full() {
		js.sinceFull = 0
		js.haveBase = true
		js.retireOld()
	} else {
		js.sinceFull++
	}
	js.seq = seq
	return js.writeMeta(meta)
}

// releaseBase drops the in-memory delta base — a full deep copy of the
// session state the Checkpointer keeps to diff the next record against.
// Called once a job goes idle: idle jobs checkpoint rarely, holding
// megabytes per terminal job forever is how servers bloat, and the next
// chain record simply re-anchors with a full.
func (js *jobStore) releaseBase() {
	js.ckpt = reconcile.Checkpointer{}
	js.rckpt = nil
	js.haveBase = false
}

// purge deletes every durable record of the job — chain, graphs, meta and
// any legacy .state — crediting the bytes back to the tenant. Used by
// DELETE /v1/.../jobs/{id}; the caller guarantees no run goroutine is
// still driving the job.
func (js *jobStore) purge() {
	for _, rec := range js.listChain() {
		js.removeTracked(rec.path)
	}
	for _, suffix := range []string{".g1", ".g2", ".state", ".meta.json"} {
		js.removeTracked(js.path(suffix))
	}
}

// chainRecord locates one checkpoint file of a job's chain. kind is "full"
// or "delta" for a monolithic record, "manifest" for a ranged checkpoint's
// commit record, or "part" (with rng and pfull) for one range shard.
type chainRecord struct {
	seq   int
	full  bool // monolithic full snapshot
	kind  string
	rng   int
	pfull bool // a "part" holding a full state record (vs a delta)
	path  string
}

// listChain returns the job's checkpoint files sorted by sequence number.
func (js *jobStore) listChain() []chainRecord {
	matches, err := filepath.Glob(js.path(".ckpt-*.*"))
	if err != nil {
		return nil
	}
	var out []chainRecord
	for _, path := range matches {
		rest, ok := strings.CutPrefix(filepath.Base(path), js.id+".ckpt-")
		if !ok {
			continue
		}
		seqStr, kind, ok := strings.Cut(rest, ".")
		if !ok {
			continue
		}
		seq, err := strconv.Atoi(seqStr)
		if err != nil || seq <= 0 {
			continue
		}
		switch kind {
		case "full", "delta":
			out = append(out, chainRecord{seq: seq, full: kind == "full", kind: kind, path: path})
		case "manifest":
			out = append(out, chainRecord{seq: seq, kind: "manifest", path: path})
		default:
			// rNNNN.full / rNNNN.delta: one range shard of a ranged checkpoint.
			rngStr, pkind, ok := strings.Cut(kind, ".")
			if !ok || len(rngStr) < 2 || rngStr[0] != 'r' {
				continue
			}
			rng, err := strconv.Atoi(rngStr[1:])
			if err != nil || rng < 0 || (pkind != "full" && pkind != "delta") {
				continue
			}
			out = append(out, chainRecord{seq: seq, kind: "part", rng: rng, pfull: pkind == "full", path: path})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].seq != out[b].seq {
			return out[a].seq < out[b].seq
		}
		return out[a].path < out[b].path
	})
	return out
}

// seqGroup collects the files of one checkpoint sequence number: at most one
// monolithic record, and/or a ranged checkpoint's manifest and shard files.
type seqGroup struct {
	seq       int
	mono      *chainRecord
	manifest  string
	partFull  map[int]string
	partDelta map[int]string
}

// groupChain folds per-file records into per-checkpoint groups, ascending.
func groupChain(records []chainRecord) []seqGroup {
	var groups []seqGroup
	bySeq := map[int]int{}
	for i := range records {
		rec := &records[i]
		gi, ok := bySeq[rec.seq]
		if !ok {
			gi = len(groups)
			bySeq[rec.seq] = gi
			groups = append(groups, seqGroup{seq: rec.seq, partFull: map[int]string{}, partDelta: map[int]string{}})
		}
		g := &groups[gi]
		switch rec.kind {
		case "full", "delta":
			g.mono = rec
		case "manifest":
			g.manifest = rec.path
		case "part":
			if rec.pfull {
				g.partFull[rec.rng] = rec.path
			} else {
				g.partDelta[rec.rng] = rec.path
			}
		}
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].seq < groups[b].seq })
	return groups
}

// retireOld enforces keep-last-K retention: chain records older than the
// K-th newest full snapshot are deleted, as is a legacy flat .state file
// once a chain full supersedes it. Called after each new full and once per
// job on boot.
func (js *jobStore) retireOld() {
	records := js.listChain()
	groups := groupChain(records)
	fullSeqs := make([]int, 0, len(groups))
	for _, g := range groups {
		// An anchor is a monolithic full, or a committed ranged full
		// (manifest plus at least one full shard — completeness is recovery's
		// concern; retention only needs to know where chains can start).
		if (g.mono != nil && g.mono.full) || (g.manifest != "" && len(g.partFull) > 0) {
			fullSeqs = append(fullSeqs, g.seq)
		}
	}
	if len(fullSeqs) == 0 {
		return
	}
	if len(fullSeqs) > js.ts.store.cfg.keep {
		minKeep := fullSeqs[len(fullSeqs)-js.ts.store.cfg.keep]
		for _, rec := range records {
			if rec.seq < minKeep {
				js.removeTracked(rec.path)
			}
		}
	}
	js.removeTracked(js.path(".state")) // pre-shard layout, superseded by the chain
}

// recoverState replays the job's chain: the newest readable full checkpoint
// (monolithic, or a ranged manifest plus all its full shards) and the
// contiguous, applicable checkpoints that follow it. dropped counts the
// checkpoints past the replayed prefix (corrupt, gapped, torn, or built on
// a corrupt full) — zero means the restored state is the newest durable
// checkpoint. With no readable chain it falls back to a legacy flat .state
// snapshot.
func (js *jobStore) recoverState() (st *reconcile.SessionState, dropped int, err error) {
	groups := groupChain(js.listChain())
	var firstErr error
	for i := len(groups) - 1; i >= 0; i-- {
		gr := groups[i]
		var lastApplied int
		var rerr error
		switch {
		case gr.manifest != "" && len(gr.partFull) > 0:
			st, lastApplied, rerr = js.replayRangedFrom(groups, i)
		case gr.mono != nil && gr.mono.full:
			st, lastApplied, rerr = js.replayMonoFrom(groups, i)
		default:
			continue
		}
		if rerr != nil {
			if firstErr == nil {
				firstErr = rerr
			}
			continue
		}
		for _, g := range groups {
			if g.seq > lastApplied {
				dropped++
			}
		}
		return st, dropped, nil
	}
	// No readable full: the pre-shard flat layout kept a single .state file.
	raw, rerr := os.Open(js.path(".state"))
	if rerr != nil {
		if firstErr != nil {
			return nil, 0, firstErr
		}
		return nil, 0, fmt.Errorf("no readable checkpoint: %w", rerr)
	}
	defer raw.Close()
	st, err = reconcile.ReadSessionState(raw)
	if err != nil {
		return nil, 0, fmt.Errorf("legacy state: %w", err)
	}
	return st, len(groups), nil
}

// replayMonoFrom reads the monolithic full at groups[i] and applies the
// monolithic deltas that follow it, stopping at the first gap, unreadable
// record, or delta that does not fit — the last consistent prefix.
func (js *jobStore) replayMonoFrom(groups []seqGroup, i int) (*reconcile.SessionState, int, error) {
	rec := groups[i].mono
	start := time.Now()
	f, err := os.Open(rec.path)
	if err != nil {
		return nil, 0, fmt.Errorf("chain full #%d: %w", rec.seq, err)
	}
	st, err := reconcile.ReadSessionState(f)
	f.Close()
	if err != nil {
		return nil, 0, fmt.Errorf("chain full #%d: %w", rec.seq, err)
	}
	js.bootObserve(trace.KindCheckpointReplay, fmt.Sprintf("full #%d", rec.seq), time.Since(start))
	lastApplied := rec.seq
	for _, g := range groups[i+1:] {
		if g.mono == nil || g.mono.full || g.seq != lastApplied+1 {
			break // a later full starts its own chain; a gap ends this one
		}
		start := time.Now()
		df, err := os.Open(g.mono.path)
		if err != nil {
			break
		}
		d, err := reconcile.ReadStateDelta(df)
		df.Close()
		if err != nil {
			break
		}
		if err := st.Apply(d); err != nil {
			break
		}
		lastApplied = g.seq
		js.bootObserve(trace.KindCheckpointReplay, fmt.Sprintf("delta #%d", g.seq), time.Since(start))
	}
	return st, lastApplied, nil
}

// readManifestFile reads one ranged checkpoint's manifest record.
func readManifestFile(path string) (*reconcile.RangeManifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return reconcile.ReadRangeManifest(f)
}

// replayRangedFrom reads the ranged full at groups[i] — its manifest and
// every full shard — and applies the ranged delta checkpoints that follow
// it. Each later checkpoint is replayed all-or-nothing onto shard clones
// and then merge-verified against its own manifest, so a torn or corrupt
// checkpoint ends the replay at the last consistent prefix instead of
// restoring a mixed state.
func (js *jobStore) replayRangedFrom(groups []seqGroup, i int) (*reconcile.SessionState, int, error) {
	anchor := groups[i]
	man, err := readManifestFile(anchor.manifest)
	if err != nil {
		return nil, 0, fmt.Errorf("chain manifest #%d: %w", anchor.seq, err)
	}
	parts := make([]*reconcile.SessionState, man.Ranges())
	for j := range parts {
		path, ok := anchor.partFull[j]
		if !ok {
			return nil, 0, fmt.Errorf("chain full #%d: missing range %d of %d", anchor.seq, j, man.Ranges())
		}
		start := time.Now()
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, fmt.Errorf("chain full #%d range %d: %w", anchor.seq, j, err)
		}
		parts[j], err = reconcile.ReadSessionState(f)
		f.Close()
		if err != nil {
			return nil, 0, fmt.Errorf("chain full #%d range %d: %w", anchor.seq, j, err)
		}
		js.bootObserve(trace.KindCheckpointReplay, fmt.Sprintf("full #%d r%d/%d", anchor.seq, j+1, man.Ranges()), time.Since(start))
	}
	merged, err := reconcile.MergeRangeParts(man, parts)
	if err != nil {
		return nil, 0, fmt.Errorf("chain full #%d: %w", anchor.seq, err)
	}
	lastApplied := anchor.seq
	for _, g := range groups[i+1:] {
		if g.seq != lastApplied+1 || g.manifest == "" || len(g.partFull) > 0 {
			break // a later full starts its own chain; a gap ends this one
		}
		m2, err := readManifestFile(g.manifest)
		if err != nil {
			break
		}
		clones := make([]*reconcile.SessionState, len(parts))
		ok := true
		for j := range parts {
			path, have := g.partDelta[j]
			if !have {
				ok = false
				break
			}
			start := time.Now()
			df, err := os.Open(path)
			if err != nil {
				ok = false
				break
			}
			d, err := reconcile.ReadStateDelta(df)
			df.Close()
			if err != nil {
				ok = false
				break
			}
			clones[j] = parts[j].Clone()
			if err := clones[j].Apply(d); err != nil {
				ok = false
				break
			}
			js.bootObserve(trace.KindCheckpointReplay, fmt.Sprintf("delta #%d r%d/%d", g.seq, j+1, len(parts)), time.Since(start))
		}
		if !ok {
			break
		}
		m, err := reconcile.MergeRangeParts(m2, clones)
		if err != nil {
			break
		}
		parts, merged = clones, m
		lastApplied = g.seq
	}
	return merged, lastApplied, nil
}

// persisted is one job loaded back from disk.
type persisted struct {
	tenant  string
	meta    jobMeta
	g1, g2  *reconcile.Graph
	state   *reconcile.SessionState
	js      *jobStore
	dropped int // trailing checkpoints recovery had to abandon
	// mg1/mg2 are the graphs' mapping handles when the store runs with
	// -mmap: g1/g2 alias file-backed memory whose lifetime the server must
	// tie to the job (Close on delete and at shutdown). nil without -mmap.
	mg1, mg2 *reconcile.MappedGraph
}

// closeMapped releases the job's graph mappings, if any.
func (p *persisted) closeMapped() {
	if p.mg1 != nil {
		p.mg1.Close()
	}
	if p.mg2 != nil {
		p.mg2.Close()
	}
}

// loadAll reads every fully-persisted job, in creation order per tenant,
// walking each tenant root (flat pre-shard layouts migrate here) and every
// shard directory beneath it. Jobs whose files are incomplete or unreadable
// (e.g. a crash between submission and the first checkpoint, or a snapshot
// from a newer format version) are skipped and reported in the last return
// value. maxNum maps each tenant to the highest job number present anywhere
// under its root — including skipped jobs, whose number is recovered from
// the "job-N" filename — so new submissions never reuse a skipped job's ID
// and overwrite files a newer binary could still recover. As a side effect
// each tenant's durable-byte accounting is rebuilt from a walk.
func (st *store) loadAll() (out []persisted, maxNum map[string]int, skipped []error) {
	maxNum = make(map[string]int)
	names, skipped := st.tenantNames()
	for _, name := range names {
		ts := st.tenant(name)
		ts.recountBytes()
		seen := map[string]string{}
		for _, dir := range append([]string{ts.root}, ts.allShardDirs()...) {
			metas, err := filepath.Glob(filepath.Join(dir, "*.meta.json"))
			if err != nil {
				skipped = append(skipped, err)
				continue
			}
			sort.Strings(metas)
			for _, path := range metas {
				id := strings.TrimSuffix(filepath.Base(path), ".meta.json")
				if n, err := strconv.Atoi(strings.TrimPrefix(id, "job-")); err == nil && n > maxNum[name] {
					maxNum[name] = n
				}
				if prev, dup := seen[id]; dup {
					skipped = append(skipped, fmt.Errorf("store: tenant %s job %s: duplicate directories %s and %s", name, id, prev, dir))
					continue
				}
				seen[id] = dir
				p, err := ts.load(dir, id)
				if err != nil {
					skipped = append(skipped, fmt.Errorf("store: tenant %s job %s: %w", name, id, err))
					continue
				}
				if p.meta.Num > maxNum[name] {
					maxNum[name] = p.meta.Num
				}
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].tenant != out[b].tenant {
			return out[a].tenant < out[b].tenant
		}
		return out[a].meta.Num < out[b].meta.Num
	})
	return out, maxNum, skipped
}

func (ts *tenantStore) load(dir, id string) (persisted, error) {
	js := &jobStore{ts: ts, dir: dir, id: id}
	p := persisted{tenant: ts.name, js: js}
	raw, err := os.ReadFile(js.path(".meta.json"))
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(raw, &p.meta); err != nil {
		return p, fmt.Errorf("meta: %w", err)
	}
	if p.meta.ID != id {
		return p, fmt.Errorf("meta names job %q", p.meta.ID)
	}
	js.ranges = p.meta.Ranges // the chain keeps the geometry it was written with
	for _, f := range []struct {
		suffix string
		dst    **reconcile.Graph
		mg     **reconcile.MappedGraph
	}{{".g1", &p.g1, &p.mg1}, {".g2", &p.g2, &p.mg2}} {
		start := time.Now()
		if ts.store.cfg.mmap {
			mg, err := reconcile.OpenGraphMapped(js.path(f.suffix))
			if err != nil {
				p.closeMapped()
				return p, fmt.Errorf("graph %s: %w", f.suffix, err)
			}
			*f.mg = mg
			*f.dst = mg.Graph()
			mode := "heap"
			if mg.Mapped() {
				mode = "mapped"
			}
			js.bootObserve(trace.KindGraphOpen, f.suffix[1:]+" "+mode, time.Since(start))
			continue
		}
		file, err := os.Open(js.path(f.suffix))
		if err != nil {
			return p, err
		}
		g, err := reconcile.ReadGraphBinary(file)
		file.Close()
		if err != nil {
			return p, fmt.Errorf("graph %s: %w", f.suffix, err)
		}
		*f.dst = g
		js.bootObserve(trace.KindGraphOpen, f.suffix[1:]+" heap", time.Since(start))
	}
	if p.state, p.dropped, err = js.recoverState(); err != nil {
		p.closeMapped()
		return p, err
	}
	// Continue the chain past everything on disk, and re-anchor it with a
	// full on the first post-boot checkpoint: the replayed state is only
	// known to match the newest durable record when nothing was dropped,
	// and a fresh full is cheap insurance either way.
	for _, rec := range js.listChain() {
		if rec.seq > js.seq {
			js.seq = rec.seq
		}
	}
	// Boot-time compaction only when recovery replayed the chain to its
	// very end: retention counts every full on disk, readable or not, so
	// after a fallback it could delete the older records the restored
	// state actually came from — the next full (which every post-boot
	// checkpoint starts with) compacts instead.
	if p.dropped == 0 {
		js.retireOld()
	}
	return p, nil
}
