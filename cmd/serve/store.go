package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/sociograph/reconcile"
)

// store is the crash-safe on-disk job store behind -data-dir. Each job owns
// four files:
//
//	<id>.g1, <id>.g2      the immutable graphs, written once at submission
//	<id>.state            the latest session-state checkpoint
//	<id>.meta.json        job-level bookkeeping (status, counters, phases)
//
// Graphs use the framed binary CSR form (reconcile.WriteGraphBinary); state
// checkpoints use reconcile.(*Reconciler).SnapshotState, so a checkpoint
// costs O(links + frontier cache) however large the graphs are. Every write
// is atomic — a temp file in the same directory, fsynced, then renamed — so
// a crash mid-checkpoint leaves the previous checkpoint intact, and a
// restored job resumes bit-identically from the last completed phase
// boundary.
type store struct {
	dir string
}

func newStore(dir string) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// A crash between CreateTemp and rename orphans a temp file; sweep them
	// here so checkpoint-heavy servers do not leak one per crash. Nothing
	// else is running against the store at open time.
	if stale, err := filepath.Glob(filepath.Join(dir, "*.tmp-*")); err == nil {
		for _, path := range stale {
			os.Remove(path)
		}
	}
	return &store{dir: dir}, nil
}

// jobMeta is the JSON sidecar of a persisted job: everything the server
// tracks about a job beyond the session state itself.
type jobMeta struct {
	ID          string      `json:"id"`
	Num         int         `json:"num"`
	Status      jobStatus   `json:"status"`
	Error       string      `json:"error,omitempty"`
	Seeds       int         `json:"seeds"`
	UntilStable bool        `json:"untilStable"`
	MaxSweeps   int         `json:"maxSweeps"`
	Phases      []phaseJSON `json:"phases"`
}

func (st *store) path(id, suffix string) string {
	return filepath.Join(st.dir, id+suffix)
}

// atomicWrite writes via a temp file in the same directory and renames it
// into place, so concurrent readers and crash recovery only ever see a
// complete previous or complete new file.
func atomicWrite(path string, write func(*os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// saveGraphs persists the job's two graphs. Called once at submission.
func (st *store) saveGraphs(id string, g1, g2 *reconcile.Graph) error {
	for _, f := range []struct {
		suffix string
		g      *reconcile.Graph
	}{{".g1", g1}, {".g2", g2}} {
		err := atomicWrite(st.path(id, f.suffix), func(w *os.File) error {
			return reconcile.WriteGraphBinary(w, f.g)
		})
		if err != nil {
			return fmt.Errorf("store: graphs of %s: %w", id, err)
		}
	}
	return nil
}

// checkpoint atomically persists the job's current session state and meta.
// The state lands first: if the crash window falls between the two renames,
// recovery sees a fresh state with slightly stale bookkeeping, which restore
// reconciles (counters are re-derived from the state).
func (st *store) checkpoint(rec *reconcile.Reconciler, meta jobMeta) error {
	err := atomicWrite(st.path(meta.ID, ".state"), func(w *os.File) error {
		return rec.SnapshotState(w)
	})
	if err != nil {
		return fmt.Errorf("store: state of %s: %w", meta.ID, err)
	}
	err = atomicWrite(st.path(meta.ID, ".meta.json"), func(w *os.File) error {
		return json.NewEncoder(w).Encode(meta)
	})
	if err != nil {
		return fmt.Errorf("store: meta of %s: %w", meta.ID, err)
	}
	return nil
}

// persisted is one job loaded back from disk.
type persisted struct {
	meta   jobMeta
	g1, g2 *reconcile.Graph
	state  []byte
}

// loadAll reads every fully-persisted job, in creation order. Jobs whose
// files are incomplete or unreadable (e.g. a crash between submission and
// the first checkpoint, or a snapshot from a newer format version) are
// skipped and reported in the last return value. maxNum is the highest job
// number present in the directory — including skipped jobs, whose number is
// recovered from the "job-N" filename — so new submissions never reuse a
// skipped job's ID and overwrite files a newer binary could still recover.
func (st *store) loadAll() (out []persisted, maxNum int, skipped []error) {
	metas, err := filepath.Glob(filepath.Join(st.dir, "*.meta.json"))
	if err != nil {
		return nil, 0, []error{err}
	}
	sort.Strings(metas)
	for _, path := range metas {
		id := strings.TrimSuffix(filepath.Base(path), ".meta.json")
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "job-")); err == nil && n > maxNum {
			maxNum = n
		}
		p, err := st.load(id)
		if err != nil {
			skipped = append(skipped, fmt.Errorf("store: job %s: %w", id, err))
			continue
		}
		if p.meta.Num > maxNum {
			maxNum = p.meta.Num
		}
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].meta.Num < out[b].meta.Num })
	return out, maxNum, skipped
}

func (st *store) load(id string) (persisted, error) {
	var p persisted
	raw, err := os.ReadFile(st.path(id, ".meta.json"))
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(raw, &p.meta); err != nil {
		return p, fmt.Errorf("meta: %w", err)
	}
	if p.meta.ID != id {
		return p, fmt.Errorf("meta names job %q", p.meta.ID)
	}
	for _, f := range []struct {
		suffix string
		dst    **reconcile.Graph
	}{{".g1", &p.g1}, {".g2", &p.g2}} {
		file, err := os.Open(st.path(id, f.suffix))
		if err != nil {
			return p, err
		}
		g, err := reconcile.ReadGraphBinary(file)
		file.Close()
		if err != nil {
			return p, fmt.Errorf("graph %s: %w", f.suffix, err)
		}
		*f.dst = g
	}
	if p.state, err = os.ReadFile(st.path(id, ".state")); err != nil {
		return p, err
	}
	return p, nil
}
