package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/sociograph/reconcile"
	"github.com/sociograph/reconcile/internal/trace"
)

// getTraceView fetches a job's trace timeline.
func getTraceView(t *testing.T, base, id string) traceView {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/trace", base, id))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d", resp.StatusCode)
	}
	return decode[traceView](t, resp)
}

// TestTraceEndpoint runs one stored job to completion and checks both faces
// of GET .../jobs/{id}/trace: the JSON timeline (spans for the sweeps, the
// finish-time checkpoint write, and the scheduler slot wait, with totals
// that account for every span) and the ?format=chrome trace_event form.
func TestTraceEndpoint(t *testing.T) {
	st := newTestStore(t)
	ts := httptest.NewServer(newTestServer(t, st).handler())
	defer ts.Close()

	inst := testInstance(t, 200, 0.3)
	inst.UntilStable = true
	inst.MaxSweeps = 8
	resp := postJSON(t, ts.URL+"/v1/jobs", inst)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	id := decode[map[string]string](t, resp)["id"]
	if v := waitForJob(t, ts.URL, id); v.Status != statusDone {
		t.Fatalf("job settled as %q", v.Status)
	}

	v := getTraceView(t, ts.URL, id)
	if v.ID != id {
		t.Fatalf("trace id = %q, want %q", v.ID, id)
	}
	if v.Sweep < 1 {
		t.Fatalf("trace sweep = %d, want >= 1", v.Sweep)
	}
	byKind := map[trace.Kind]int{}
	for _, s := range v.Spans {
		if s.End < s.Start {
			t.Fatalf("span %v ends before it starts", s)
		}
		byKind[s.Kind]++
	}
	for _, k := range []trace.Kind{trace.KindSweep, trace.KindCheckpointWrite, trace.KindSlotWait} {
		if byKind[k] == 0 {
			t.Errorf("no %q span recorded; have %v", k, byKind)
		}
	}
	// Totals fold ring + evictions; with nothing evicted they must match
	// the span list exactly.
	for k, n := range byKind {
		if v.Totals[k].Count != int64(n) {
			t.Errorf("totals[%s].count = %d, want %d", k, v.Totals[k].Count, n)
		}
	}

	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/trace?format=chrome", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace?format=chrome: status %d", resp.StatusCode)
	}
	ct := decode[trace.ChromeTrace](t, resp)
	var meta, durations int
	processNamed := false
	for _, ev := range ct.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name == "process_name" && ev.Args["name"] == id {
				processNamed = true
			}
		case "X":
			durations++
			// Perfetto requires complete events to carry dur, even dur:0
			// (an uncontended slot-wait can legitimately round to zero).
			if ev.Dur == nil {
				t.Errorf("complete event %q has no dur field", ev.Name)
			}
		}
	}
	if !processNamed {
		t.Error("chrome trace has no process_name metadata naming the job")
	}
	if meta == 0 || durations == 0 {
		t.Fatalf("chrome trace has %d metadata and %d duration events, want both > 0", meta, durations)
	}
	if durations != len(v.Spans) {
		t.Errorf("chrome trace has %d duration events, timeline has %d spans", durations, len(v.Spans))
	}

	// Unknown jobs 404 like every other job route.
	resp, err = http.Get(ts.URL + "/v1/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET trace of unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestTraceContinuousAcrossRestart is the serve face of the trace-continuity
// promise, per engine: a job killed mid-run and rebooted from its checkpoint
// resumes its trace instead of restarting it — one marked resume span, boot
// replay and graph-open spans from the restore, no sweep recorded twice, and
// a timeline that never rewinds. The hybrid case additionally pins at most
// one engine-handoff span across the kill.
func TestTraceContinuousAcrossRestart(t *testing.T) {
	for _, engine := range []string{"sequential", "frontier", "parallel", "hybrid"} {
		t.Run(engine, func(t *testing.T) {
			st := newTestStore(t)
			req := testInstance(t, 300, 0.2)
			req.Options.Engine = engine
			g1, err := buildGraph(req.G1)
			if err != nil {
				t.Fatal(err)
			}
			g2, err := buildGraph(req.G2)
			if err != nil {
				t.Fatal(err)
			}
			opts, err := buildOptions(req.Options)
			if err != nil {
				t.Fatal(err)
			}

			// The victim: a traced run killed at the third bucket boundary,
			// checkpointed as the progress hook would have left it, meta
			// frozen mid-run — exactly what a crash leaves behind.
			tr := trace.New(trace.Config{})
			var phases []phaseJSON
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			victim, err := reconcile.New(g1, g2, append(opts,
				reconcile.WithSeeds(toPairs(req.Seeds)),
				reconcile.WithTracer(tr),
				reconcile.WithProgress(func(e reconcile.PhaseEvent) {
					phases = append(phases, phaseJSON{
						Iteration: e.Iteration, Bucket: e.Bucket, Buckets: e.Buckets,
						MinDegree: e.MinDegree, Matched: e.Matched, Total: e.TotalLinks,
					})
					if len(phases) == 3 {
						cancel()
					}
				}))...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := victim.Run(ctx); !errors.Is(err, context.Canceled) {
				t.Fatalf("victim err = %v, want cancellation", err)
			}
			js := st.jobStore("job-1")
			if err := js.saveGraphs(g1, g2); err != nil {
				t.Fatal(err)
			}
			meta := jobMeta{
				ID: "job-1", Num: 1, Status: statusRunning,
				Seeds: victim.Result().Seeds, UntilStable: true, MaxSweeps: 12,
				Phases: phases, Trace: tr.Export(),
			}
			if err := js.checkpoint(victim, meta); err != nil {
				t.Fatal(err)
			}
			preSpans := len(meta.Trace.Spans)

			ts := httptest.NewServer(newTestServer(t, st).handler())
			defer ts.Close()
			if v := jobPairs(t, ts.URL, "job-1"); v.Status != statusInterrupted {
				t.Fatalf("restored status = %q, want interrupted", v.Status)
			}
			resp := postJSON(t, ts.URL+"/v1/jobs/job-1/resume", nil)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("POST resume: status %d", resp.StatusCode)
			}
			if done := waitForJob(t, ts.URL, "job-1"); done.Status != statusDone {
				t.Fatalf("resumed job: status %q (%s)", done.Status, done.Error)
			}

			v := getTraceView(t, ts.URL, "job-1")
			if len(v.Spans) <= preSpans {
				t.Fatalf("resumed trace has %d spans, crash left %d — resume recorded nothing",
					len(v.Spans), preSpans)
			}
			counts := map[trace.Kind]int{}
			sweepSeen := map[int]int{}
			lastEnd := int64(-1 << 62)
			for _, s := range v.Spans {
				counts[s.Kind]++
				if s.Kind == trace.KindSweep {
					sweepSeen[s.Sweep]++
				}
				if s.End < s.Start {
					t.Fatalf("span %+v ends before it starts", s)
				}
				// Spans are recorded at completion; a restored timeline must
				// never run backwards across the restart.
				if s.End < lastEnd {
					t.Fatalf("timeline rewinds at span %+v (previous end %d)", s, lastEnd)
				}
				lastEnd = s.End
			}
			if counts[trace.KindResume] != 1 {
				t.Fatalf("resume spans = %d, want exactly 1", counts[trace.KindResume])
			}
			if counts[trace.KindSweep] == 0 {
				t.Fatal("no sweep spans after resume")
			}
			for sweep, n := range sweepSeen {
				if n > 1 {
					t.Fatalf("sweep %d recorded %d spans — duplicated across the restart", sweep, n)
				}
			}
			if counts[trace.KindCheckpointReplay] == 0 {
				t.Error("no checkpoint-replay spans from the boot restore")
			}
			if counts[trace.KindGraphOpen] != 2 {
				t.Errorf("graph-open spans = %d, want 2", counts[trace.KindGraphOpen])
			}
			if engine == "hybrid" && counts[trace.KindHandoff] > 1 {
				t.Fatalf("hybrid recorded %d handoff spans across the restart, want <= 1", counts[trace.KindHandoff])
			}
		})
	}
}
