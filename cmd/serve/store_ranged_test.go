package main

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"github.com/sociograph/reconcile"
)

// rangedStoreConfig shards the chain state of the 800-node test instance
// (testInstance n=400 builds two ~400-node graphs) into 4 node ranges, with
// graphs mapped — the full tentpole configuration.
var rangedStoreConfig = storeConfig{shards: 3, fullEvery: 3, keep: 2, mmap: true, rangeNodes: 200}

func newRangedStore(t *testing.T) *store {
	t.Helper()
	st, err := newStore(t.TempDir(), rangedStoreConfig)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreRangedChainShape pins the on-disk form of a ranged chain: every
// checkpoint is a manifest plus one shard file per range (fulls on the
// fullEvery grid, deltas between), no monolithic records exist, and the
// meta records the geometry.
func TestStoreRangedChainShape(t *testing.T) {
	st := newRangedStore(t)
	chainVictim(t, st, "job-1", 6, 5)
	js := st.jobStore("job-1")

	groups := groupChain(js.listChain())
	if len(groups) != 5 {
		t.Fatalf("chain has %d checkpoints, want 5: %v", len(groups), chainFiles(t, js))
	}
	for i, g := range groups {
		if g.mono != nil {
			t.Fatalf("checkpoint #%d has a monolithic record in a ranged chain", g.seq)
		}
		if g.manifest == "" {
			t.Fatalf("checkpoint #%d has no manifest", g.seq)
		}
		// fullEvery=3: full, delta, delta, full, delta.
		wantFull := i%3 == 0
		parts := g.partDelta
		if wantFull {
			parts = g.partFull
		}
		if len(parts) != 4 {
			t.Fatalf("checkpoint #%d: %d shards of the expected kind (full=%v), want 4: %v",
				g.seq, len(parts), wantFull, chainFiles(t, js))
		}
		man, err := readManifestFile(g.manifest)
		if err != nil {
			t.Fatalf("checkpoint #%d manifest: %v", g.seq, err)
		}
		if man.Ranges() != 4 {
			t.Fatalf("checkpoint #%d manifest says %d ranges, want 4", g.seq, man.Ranges())
		}
	}

	meta, err := os.ReadFile(js.path(".meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(meta, []byte(`"ranges":4`)) {
		t.Fatalf("meta does not record the chain geometry: %s", meta)
	}
}

// TestStoreRangedRecovery is the serve-level face of the tentpole: a job
// checkpointed as ranged shards over mapped graphs, killed mid-run, boots
// as interrupted and resumes bit-identically to the uninterrupted run.
func TestStoreRangedRecovery(t *testing.T) {
	st := newRangedStore(t)
	want := chainVictim(t, st, "job-1", 6, 5)
	resumeAndVerify(t, st, "job-1", want)
}

// TestStoreRangedTornTailFallback pins the commit-point contract of ranged
// checkpoints: with the newest checkpoint torn — its manifest missing (crash
// before the commit rename) or one shard corrupt — boot falls back to the
// previous consistent checkpoint, surfaces the job as interrupted with
// dropped records, and resume still finishes bit-identically.
func TestStoreRangedTornTailFallback(t *testing.T) {
	for _, tear := range []string{"manifest-missing", "shard-corrupt", "shard-missing"} {
		t.Run(tear, func(t *testing.T) {
			st := newRangedStore(t)
			want := chainVictim(t, st, "job-1", 6, 5)
			js := st.jobStore("job-1")
			groups := groupChain(js.listChain())
			last := groups[len(groups)-1]
			switch tear {
			case "manifest-missing":
				if err := os.Remove(last.manifest); err != nil {
					t.Fatal(err)
				}
			case "shard-corrupt":
				path := last.partDelta[2]
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				raw[len(raw)/2] ^= 0x41
				if err := os.WriteFile(path, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			case "shard-missing":
				if err := os.Remove(last.partDelta[1]); err != nil {
					t.Fatal(err)
				}
			}
			state, dropped, err := js.recoverState()
			if err != nil {
				t.Fatalf("recovery with a torn tail: %v", err)
			}
			if dropped != 1 {
				t.Fatalf("recovery dropped %d checkpoints, want 1", dropped)
			}
			if state == nil {
				t.Fatal("recovery returned no state")
			}
			resumeAndVerify(t, st, "job-1", want)
		})
	}
}

// TestStoreRangedRetention pins keep-last-K on ranged chains: after enough
// fulls, only keep anchors remain and every surviving checkpoint still has
// its manifest and full shard set.
func TestStoreRangedRetention(t *testing.T) {
	st := newRangedStore(t)
	chainVictim(t, st, "job-1", 9, 8) // fulls at 1, 4, 7; keep=2 drops seqs < 4
	js := st.jobStore("job-1")
	groups := groupChain(js.listChain())
	anchors := 0
	for _, g := range groups {
		if len(g.partFull) > 0 {
			anchors++
			if g.manifest == "" {
				t.Fatalf("retained full #%d lost its manifest", g.seq)
			}
		}
	}
	if anchors != rangedStoreConfig.keep {
		t.Fatalf("retention kept %d ranged fulls, want %d (chain %v)", anchors, rangedStoreConfig.keep, chainFiles(t, js))
	}
	if groups[0].seq != 4 {
		t.Fatalf("oldest surviving checkpoint is #%d, want 4 (chain %v)", groups[0].seq, chainFiles(t, js))
	}
}

// TestStoreMappedRestartLifecycle pins the -mmap lifetime across a restart:
// graphs written in the mappable format come back as live mappings, seed
// ingestion runs over the mapped arrays (pinned for the run's duration),
// and DELETE waits out the run, purges the files and closes the mapping —
// after which access fails cleanly.
func TestStoreMappedRestartLifecycle(t *testing.T) {
	st := newRangedStore(t)
	ts := httptest.NewServer(newTestServer(t, st).handler())
	resp := postJSON(t, ts.URL+"/v1/jobs", testInstance(t, 400, 0.15))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	first := waitForJob(t, ts.URL, "job-1")
	if first.Status != statusDone {
		t.Fatalf("job: status %q (%s)", first.Status, first.Error)
	}
	firstPairs := jobPairs(t, ts.URL, "job-1").Pairs
	ts.Close()

	// "Restart": a fresh server over the same store loads the graphs
	// through the mapping path.
	s2 := newTestServer(t, st)
	ts2 := httptest.NewServer(s2.handler())
	defer ts2.Close()
	j := s2.jobs["job-1"]
	if j == nil {
		t.Fatal("job not restored")
	}
	if j.mg1 == nil || j.mg2 == nil {
		t.Fatal("restored job holds no mapping handles under -mmap")
	}
	if j.mg1.Mapped() != reconcile.MmapSupported {
		t.Fatalf("Mapped() = %v, want %v", j.mg1.Mapped(), reconcile.MmapSupported)
	}
	restored := jobPairs(t, ts2.URL, "job-1")
	if restored.Status != statusDone {
		t.Fatalf("restored job: status %q (%s)", restored.Status, restored.Error)
	}
	if len(restored.Pairs) != len(firstPairs) {
		t.Fatalf("restored job has %d pairs, want %d", len(restored.Pairs), len(firstPairs))
	}

	// A run over the mapped graphs: ingest one fresh seed and sweep.
	var seed [2]int
	used := map[int]bool{}
	usedR := map[int]bool{}
	for _, p := range restored.Pairs {
		used[p[0]] = true
		usedR[p[1]] = true
	}
	for v := 0; v < j.n1; v++ {
		if !used[v] && !usedR[v] {
			seed = [2]int{v, v}
			break
		}
	}
	resp = postJSON(t, ts2.URL+"/v1/jobs/job-1/seeds", map[string]any{"seeds": [][2]int{seed}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST seeds: status %d", resp.StatusCode)
	}
	if v := waitForJob(t, ts2.URL, "job-1"); v.Status != statusDone {
		t.Fatalf("post-seed run: status %q (%s)", v.Status, v.Error)
	}

	// DELETE tears the whole job down: durable files, then the mappings.
	req, err := http.NewRequest(http.MethodDelete, ts2.URL+"/v1/jobs/job-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	if _, err := j.mg1.Acquire(); !errors.Is(err, reconcile.ErrGraphClosed) {
		t.Fatalf("Acquire after DELETE: err = %v, want ErrGraphClosed", err)
	}
	if _, err := os.Stat(j.js.path(".g1")); !os.IsNotExist(err) {
		t.Fatalf("graph file survives DELETE: err = %v", err)
	}
	// Shutdown-path close is idempotent over the already-closed job.
	s2.closeMappings()
}

// TestStoreMmapFormatInterop pins the migration contract: a store written
// without -mmap reads back with it (legacy graphs decode onto the heap
// behind the mapping API), and a store written with -mmap reads back
// without it (ReadGraphBinary sniffs the mappable container).
func TestStoreMmapFormatInterop(t *testing.T) {
	for _, dir := range []struct {
		name           string
		write, read    bool // cfg.mmap at write/read time
		wantMappedRead bool
	}{
		{"legacy-then-mmap", false, true, false},
		{"mmap-then-legacy", true, false, false},
	} {
		t.Run(dir.name, func(t *testing.T) {
			root := t.TempDir()
			cfg := testStoreConfig
			cfg.mmap = dir.write
			st, err := newStore(root, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(newTestServer(t, st).handler())
			resp := postJSON(t, ts.URL+"/v1/jobs", testInstance(t, 300, 0.15))
			resp.Body.Close()
			if v := waitForJob(t, ts.URL, "job-1"); v.Status != statusDone {
				t.Fatalf("job: status %q (%s)", v.Status, v.Error)
			}
			want := jobPairs(t, ts.URL, "job-1").Pairs
			ts.Close()

			cfg.mmap = dir.read
			st2, err := newStore(root, cfg)
			if err != nil {
				t.Fatal(err)
			}
			s2 := newTestServer(t, st2)
			ts2 := httptest.NewServer(s2.handler())
			defer ts2.Close()
			got := jobPairs(t, ts2.URL, "job-1")
			if got.Status != statusDone || len(got.Pairs) != len(want) {
				t.Fatalf("flipped-format restore: status %q, %d pairs, want done/%d", got.Status, len(got.Pairs), len(want))
			}
			if j := s2.jobs["job-1"]; dir.read && (j.mg1 == nil || j.mg1.Mapped() != dir.wantMappedRead && reconcile.MmapSupported) {
				t.Fatalf("legacy graphs under -mmap: mg=%v", j.mg1)
			}
		})
	}
}

// TestRangedChainFilesAreChainRecords pins listChain's parse of the ranged
// names so purge and retention see every file (an unlisted file would leak
// bytes forever).
func TestRangedChainFilesAreChainRecords(t *testing.T) {
	st := newRangedStore(t)
	chainVictim(t, st, "job-1", 4, 3)
	js := st.jobStore("job-1")
	listed := map[string]bool{}
	for _, rec := range js.listChain() {
		listed[rec.path] = true
	}
	entries, err := os.ReadDir(js.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "job-1.ckpt-") {
			continue
		}
		if !listed[js.path(strings.TrimPrefix(name, "job-1"))] {
			t.Fatalf("chain file %s not listed (purge would leak it)", name)
		}
	}

	js.purge()
	entries, err = os.ReadDir(js.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "job-1.") {
			t.Fatalf("purge left %s behind", e.Name())
		}
	}
	if tracked, walked := js.ts.verifyBytes(); tracked != walked {
		t.Fatalf("byte accounting drifted after ranged purge: tracked %d, walked %d", tracked, walked)
	}
}
