package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/sociograph/reconcile/internal/loadgen"
	"github.com/sociograph/reconcile/internal/tenant"
)

// runLoad builds a stored server with the given run-slot capacity and
// drives one loadgen scenario against it over real HTTP.
func runLoad(tb testing.TB, runSlots int, cfg loadgen.Config) *loadgen.Report {
	tb.Helper()
	st, err := newStore(tb.TempDir(), testStoreConfig)
	if err != nil {
		tb.Fatal(err)
	}
	s, skipped := newServerWith(st, serverConfig{registry: tenant.NewRegistry(), runSlots: runSlots})
	for _, err := range skipped {
		tb.Errorf("restore skipped a job: %v", err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cfg.BaseURL = ts.URL
	cfg.Client = ts.Client()
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		tb.Fatalf("loadgen: %v", err)
	}
	for _, f := range rep.Failures {
		tb.Errorf("loadgen failure: %s", f)
	}
	for _, v := range rep.Invariants {
		tb.Errorf("invariant violation: %s", v)
	}
	if dir := os.Getenv("LOADGEN_ARTIFACT_DIR"); dir != "" {
		writeLoadArtifacts(tb, dir, ts.URL, rep)
	}
	return rep
}

// writeLoadArtifacts saves the run report and one surviving job's
// chrome-format execution trace for CI to upload — set LOADGEN_ARTIFACT_DIR
// to collect them. Must run before the httptest server closes.
func writeLoadArtifacts(tb testing.TB, dir, baseURL string, rep *loadgen.Report) {
	tb.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		tb.Fatalf("artifact dir: %v", err)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		tb.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "loadgen-report.json"), append(buf, '\n'), 0o644); err != nil {
		tb.Fatalf("writing report artifact: %v", err)
	}
	// The deletes shape destroys its jobs; any other shape's job is still
	// listed, so the first tenant's first surviving job stands in for all.
	resp, err := http.Get(baseURL + "/v1/tenants/load-00/jobs")
	if err != nil {
		tb.Fatalf("listing jobs for trace artifact: %v", err)
	}
	var listed struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listed)
	resp.Body.Close()
	if err != nil || len(listed.Jobs) == 0 {
		tb.Fatalf("no jobs to trace (err %v)", err)
	}
	resp, err = http.Get(baseURL + "/v1/tenants/load-00/jobs/" + listed.Jobs[0].ID + "/trace?format=chrome")
	if err != nil {
		tb.Fatalf("fetching trace artifact: %v", err)
	}
	trace, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		tb.Fatalf("fetching trace artifact: status %d err %v", resp.StatusCode, err)
	}
	if err := os.WriteFile(filepath.Join(dir, "loadgen-trace-chrome.json"), trace, 0o644); err != nil {
		tb.Fatalf("writing trace artifact: %v", err)
	}
}

// TestLoadgenSmoke runs a small mixed scenario end to end — every job
// shape, the admin registration path, and the end-of-run invariant checks.
// Fast enough for -short; CI's bench-smoke lane runs it before gating the
// serve baseline.
func TestLoadgenSmoke(t *testing.T) {
	rep := runLoad(t, 4, loadgen.Config{
		Scenario:      "mixed",
		Tenants:       2,
		JobsPerTenant: 4,
		Workers:       4,
		Nodes:         24,
		Seed:          7,
	})
	if rep.JobsSubmitted != 8 || rep.JobsDone != 8 {
		t.Fatalf("submitted %d done %d, want 8/8", rep.JobsSubmitted, rep.JobsDone)
	}
	// mixed over 4 jobs/tenant covers every shape once per tenant.
	if rep.JobsDeleted != 2 {
		t.Fatalf("deleted %d jobs, want 2", rep.JobsDeleted)
	}
	if rep.Latency["submit"].Count != 8 || rep.Latency["job"].Count != 8 {
		t.Fatalf("latency counts submit=%d job=%d, want 8/8",
			rep.Latency["submit"].Count, rep.Latency["job"].Count)
	}
	// Every finished job contributed its execution trace to the per-phase
	// breakdown: 8 jobs of at least one sweep each.
	if ph := rep.TracePhases["sweep"]; ph.Count < 8 {
		t.Fatalf("tracePhases[sweep].count = %d, want >= 8 (phases: %v)", ph.Count, rep.TracePhases)
	}
	if ph := rep.TracePhases["slot-wait"]; ph.Count < 8 {
		t.Fatalf("tracePhases[slot-wait].count = %d, want >= 8", ph.Count)
	}
}

// TestLoadSustained is the load harness acceptance run: 1,000 concurrent
// job lifecycles across 8 tenants squeezed through 16 run slots, then the
// admin API must report zero leaked slots, zero queued runs, and exact
// byte-accounting agreement for every tenant.
func TestLoadSustained(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained load run skipped in -short")
	}
	rep := runLoad(t, 16, loadgen.Config{
		Scenario:      "mixed",
		Tenants:       8,
		JobsPerTenant: 125,
		Workers:       125, // one worker per job: all 1,000 lifecycles in flight at once
		Nodes:         16,
		Seed:          11,
	})
	if rep.JobsSubmitted != 1000 || rep.JobsDone != 1000 {
		t.Fatalf("submitted %d done %d, want 1000/1000", rep.JobsSubmitted, rep.JobsDone)
	}
}

// BenchmarkServeLoadMixed times one mixed loadgen scenario against a fresh
// stored server per iteration — the serve stack's end-to-end figure
// (HTTP, scheduling, engine runs, durable writes) gated by
// BENCH_serve.json in CI.
func BenchmarkServeLoadMixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runLoad(b, 8, loadgen.Config{
			Scenario:      "mixed",
			Tenants:       4,
			JobsPerTenant: 8,
			Workers:       8,
			Nodes:         32,
			Seed:          3,
		})
		if rep.JobsDone != 32 {
			b.Fatalf("done %d, want 32", rep.JobsDone)
		}
	}
}
