package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/sociograph/reconcile"
	"github.com/sociograph/reconcile/internal/tenant"
)

// chainVictim builds a deterministic checkpoint chain: a job of `iterations`
// sweeps killed after `sweeps` of them, checkpointed at every sweep boundary
// exactly like the server's progress hook (one full every
// testStoreConfig.fullEvery records). It returns the uninterrupted
// reference result for bit-identity checks.
func chainVictim(t *testing.T, st *store, id string, iterations, sweeps int) (want *reconcile.Result) {
	t.Helper()
	req := testInstance(t, 400, 0.15)
	g1, err := buildGraph(req.G1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := buildGraph(req.G2)
	if err != nil {
		t.Fatal(err)
	}
	seeds := toPairs(req.Seeds)

	// Pin a fixed engine: the default hybrid's regime handoff forces one
	// extra full record mid-chain (ErrFullRequired), which would perturb the
	// exact full/delta shapes these tests assert on.
	ref, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds), reconcile.WithIterations(iterations),
		reconcile.WithEngine(reconcile.EngineFrontier))
	if err != nil {
		t.Fatal(err)
	}
	if want, err = ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	js := st.jobStore(id)
	if err := js.saveGraphs(g1, g2); err != nil {
		t.Fatal(err)
	}
	var phases []phaseJSON
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var victim *reconcile.Reconciler
	victim, err = reconcile.New(g1, g2,
		reconcile.WithSeeds(seeds),
		reconcile.WithIterations(iterations),
		reconcile.WithEngine(reconcile.EngineFrontier),
		reconcile.WithProgress(func(e reconcile.PhaseEvent) {
			phases = append(phases, phaseJSON{
				Iteration: e.Iteration, Bucket: e.Bucket, Buckets: e.Buckets,
				MinDegree: e.MinDegree, Matched: e.Matched, Total: e.TotalLinks,
			})
			if e.Bucket == e.Buckets {
				meta := jobMeta{
					ID: id, Num: 1, Status: statusRunning,
					Seeds: victim.Result().Seeds, Phases: phases,
				}
				if err := js.checkpoint(victim, meta); err != nil {
					t.Errorf("checkpoint at sweep %d: %v", e.Iteration, err)
				}
				if e.Iteration == sweeps {
					cancel()
				}
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("victim err = %v, want cancellation", err)
	}
	return want
}

// chainFiles lists a job's chain record basenames in sequence order.
func chainFiles(t *testing.T, js *jobStore) []string {
	t.Helper()
	var out []string
	for _, rec := range js.listChain() {
		out = append(out, filepath.Base(rec.path))
	}
	return out
}

// resumeAndVerify boots a server over the store, requires the job to be
// interrupted, resumes it and requires the final matching to be
// bit-identical to the uninterrupted reference.
func resumeAndVerify(t *testing.T, st *store, id string, want *reconcile.Result) {
	t.Helper()
	s, skipped := newServer(st)
	for _, err := range skipped {
		t.Fatalf("boot skipped a job: %v", err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	v := jobPairs(t, ts.URL, id)
	if v.Status != statusInterrupted {
		t.Fatalf("restored status = %q (%s), want interrupted", v.Status, v.Error)
	}
	resp := postJSON(t, ts.URL+"/v1/jobs/"+id+"/resume", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST resume: status %d", resp.StatusCode)
	}
	if done := waitForJob(t, ts.URL, id); done.Status != statusDone {
		t.Fatalf("resumed job: status %q (%s)", done.Status, done.Error)
	}
	got := jobPairs(t, ts.URL, id)
	wantPairs := make([][2]int, len(want.Pairs))
	for i, p := range want.Pairs {
		wantPairs[i] = [2]int{int(p.Left), int(p.Right)}
	}
	if fmt.Sprint(got.Pairs) != fmt.Sprint(wantPairs) {
		t.Fatal("resumed matching is not bit-identical to the uninterrupted run")
	}
}

// TestStoreRecoveryCorruptTrailingDelta pins the fallback contract: a
// corrupt trailing delta record must make boot fall back to the last
// consistent chain prefix and surface the job as interrupted — never panic,
// never skip the job — and resume must still finish bit-identically.
func TestStoreRecoveryCorruptTrailingDelta(t *testing.T) {
	st := newTestStore(t)
	want := chainVictim(t, st, "job-1", 6, 5)
	js := st.jobStore("job-1")
	// fullEvery=3: expect full, delta, delta, full, delta.
	files := chainFiles(t, js)
	if len(files) != 5 || !strings.HasSuffix(files[4], ".delta") {
		t.Fatalf("unexpected chain %v", files)
	}
	records := js.listChain()
	trailing := records[len(records)-1].path
	raw, err := os.ReadFile(trailing)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(trailing, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	resumeAndVerify(t, st, "job-1", want)
}

// TestStoreRecoveryTruncatedTrailingDelta is the torn-write variant: the
// trailing record lost its tail.
func TestStoreRecoveryTruncatedTrailingDelta(t *testing.T) {
	st := newTestStore(t)
	want := chainVictim(t, st, "job-1", 6, 5)
	js := st.jobStore("job-1")
	records := js.listChain()
	trailing := records[len(records)-1].path
	raw, err := os.ReadFile(trailing)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(trailing, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	resumeAndVerify(t, st, "job-1", want)
}

// TestStoreRecoveryMissingDelta removes a mid-chain delta: the records
// after the gap must be abandoned and the job surfaced as interrupted.
func TestStoreRecoveryMissingDelta(t *testing.T) {
	st := newTestStore(t)
	want := chainVictim(t, st, "job-1", 6, 3)
	js := st.jobStore("job-1")
	// Chain is full(1), delta(2), delta(3); removing delta(2) leaves
	// delta(3) unreachable — recovery must stop at the full.
	records := js.listChain()
	if len(records) != 3 {
		t.Fatalf("unexpected chain %v", chainFiles(t, js))
	}
	if err := os.Remove(records[1].path); err != nil {
		t.Fatal(err)
	}
	resumeAndVerify(t, st, "job-1", want)
}

// TestStoreRecoveryCorruptFull corrupts the newest full snapshot: recovery
// must fall back to the previous full's chain (replaying its deltas), not
// panic and not lose the job.
func TestStoreRecoveryCorruptFull(t *testing.T) {
	st := newTestStore(t)
	want := chainVictim(t, st, "job-1", 6, 5)
	js := st.jobStore("job-1")
	records := js.listChain()
	var newestFull chainRecord
	for _, rec := range records {
		if rec.full {
			newestFull = rec
		}
	}
	if newestFull.path == "" || newestFull.seq != 4 {
		t.Fatalf("unexpected chain %v", chainFiles(t, js))
	}
	raw, err := os.ReadFile(newestFull.path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(newestFull.path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	resumeAndVerify(t, st, "job-1", want)
}

// TestStoreRecoveryFallbackSurvivesRestarts pins that boot-time compaction
// never deletes the records a fallback recovery is living off: after a
// corrupt newest full sends recovery back to an older chain, the server can
// be restarted any number of times without resuming and the job must keep
// loading — retention waits for the next durable full.
func TestStoreRecoveryFallbackSurvivesRestarts(t *testing.T) {
	st := newTestStore(t)
	want := chainVictim(t, st, "job-1", 6, 5)
	js := st.jobStore("job-1")
	records := js.listChain()
	for _, rec := range records {
		if rec.full && rec.seq > 1 {
			raw, err := os.ReadFile(rec.path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)/2] ^= 0x01
			if err := os.WriteFile(rec.path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for boot := 0; boot < 3; boot++ {
		s, skipped := newServer(st)
		if len(skipped) != 0 {
			t.Fatalf("boot %d skipped the job: %v", boot, skipped)
		}
		j := s.jobs["job-1"]
		if j == nil || j.status != statusInterrupted {
			t.Fatalf("boot %d: job missing or not interrupted", boot)
		}
	}
	resumeAndVerify(t, st, "job-1", want)
}

// TestStoreRecoveryCorruptionMarksDoneJobInterrupted pins that the dropped
// detection does not depend on the meta: a job whose meta says "done" but
// whose trailing record is unreadable restores behind its acknowledged
// state and must come back interrupted (resumable), not silently "done"
// with links missing.
func TestStoreRecoveryCorruptionMarksDoneJobInterrupted(t *testing.T) {
	st := newTestStore(t)
	want := chainVictim(t, st, "job-1", 6, 5)
	js := st.jobStore("job-1")
	meta := jobMeta{ID: "job-1", Num: 1, Status: statusDone, Seeds: want.Seeds}
	if err := atomicWriteJSON(js.path(".meta.json"), meta); err != nil {
		t.Fatal(err)
	}
	records := js.listChain()
	trailing := records[len(records)-1].path
	raw, err := os.ReadFile(trailing)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x10 // inside the CRC trailer
	if err := os.WriteFile(trailing, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	resumeAndVerify(t, st, "job-1", want)
}

// atomicWriteJSON is a small test helper over atomicWrite.
func atomicWriteJSON(path string, v jobMeta) error {
	return atomicWrite(path, func(w *os.File) error {
		_, err := fmt.Fprintf(w, `{"id":%q,"num":%d,"status":%q,"seeds":%d,"untilStable":false,"maxSweeps":0,"phases":[]}`,
			v.ID, v.Num, v.Status, v.Seeds)
		return err
	})
}

// TestStoreRetention pins keep-last-K compaction: after enough sweeps the
// chain holds at most keep full snapshots and no records older than the
// oldest kept full, and the retained suffix still restores.
func TestStoreRetention(t *testing.T) {
	st := newTestStore(t)
	want := chainVictim(t, st, "job-1", 14, 13) // 13 records: fulls at 1,4,7,10,13
	js := st.jobStore("job-1")
	records := js.listChain()
	fulls := 0
	for _, rec := range records {
		if rec.full {
			fulls++
		}
		if rec.seq < 10 {
			t.Fatalf("retention left record %d (chain %v)", rec.seq, chainFiles(t, js))
		}
	}
	if fulls != testStoreConfig.keep {
		t.Fatalf("retention kept %d fulls, want %d (chain %v)", fulls, testStoreConfig.keep, chainFiles(t, js))
	}
	resumeAndVerify(t, st, "job-1", want)
}

// TestStoreShardPlacement pins the sharded layout: jobs land in their hash
// shard, every shard directory exists, and a restart re-lists jobs from all
// shards.
func TestStoreShardPlacement(t *testing.T) {
	dir := t.TempDir()
	st, err := newStore(dir, storeConfig{shards: 4, fullEvery: 2, keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Shard sets live under each tenant's root; jobs off the un-namespaced
	// API land in default/.
	st.tenant("default")
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(filepath.Join(dir, "default", fmt.Sprintf("shard-%02d", i))); err != nil {
			t.Fatalf("missing shard dir: %v", err)
		}
	}
	ts := httptest.NewServer(newTestServer(t, st).handler())
	req := testInstance(t, 150, 0.25)
	var ids []string
	for i := 0; i < 6; i++ {
		resp := postJSON(t, ts.URL+"/v1/jobs", req)
		ids = append(ids, decode[map[string]string](t, resp)["id"])
	}
	dirsUsed := map[string]bool{}
	for _, id := range ids {
		waitForJob(t, ts.URL, id)
		js := st.jobStore(id)
		if !strings.HasPrefix(filepath.Base(js.dir), "shard-") {
			t.Fatalf("job %s placed outside a shard: %s", id, js.dir)
		}
		if _, err := os.Stat(js.path(".meta.json")); err != nil {
			t.Fatalf("job %s not in its hash shard: %v", id, err)
		}
		dirsUsed[js.dir] = true
	}
	if len(dirsUsed) < 2 {
		t.Fatalf("6 jobs all hashed to one shard (%v); placement broken", dirsUsed)
	}
	ts.Close()

	// A restart — even with a different -shards setting — re-lists them all.
	st2, err := newStore(dir, storeConfig{shards: 2, fullEvery: 2, keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(newTestServer(t, st2).handler())
	defer ts2.Close()
	for _, id := range ids {
		if v := jobPairs(t, ts2.URL, id); v.Status != statusDone {
			t.Fatalf("job %s after reshard restart: status %q", id, v.Status)
		}
	}
}

// TestStoreReleasesBaseWhenIdle pins that a terminal job does not pin its
// delta base (a full deep copy of the session state) in memory for the
// server's lifetime — the base exists to diff the next checkpoint against,
// and an idle job's next checkpoint re-anchors with a full anyway.
func TestStoreReleasesBaseWhenIdle(t *testing.T) {
	st := newTestStore(t)
	s := newTestServer(t, st)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	req := testInstance(t, 150, 0.25)
	resp := postJSON(t, ts.URL+"/v1/jobs", req)
	id := decode[map[string]string](t, resp)["id"]
	if v := waitForJob(t, ts.URL, id); v.Status != statusDone {
		t.Fatalf("job status %q", v.Status)
	}
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	j.pending.Wait() // the run goroutine's finish() writes the terminal checkpoint
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.js.haveBase {
		t.Fatal("terminal job still pins its delta base")
	}
	// An explicit checkpoint of the idle job re-anchors with a full and
	// releases again.
	if err := j.persistLocked(); err != nil {
		t.Fatal(err)
	}
	if j.js.haveBase {
		t.Fatal("idle checkpoint left the delta base pinned")
	}
	records := j.js.listChain()
	if !records[len(records)-1].full {
		t.Fatal("idle checkpoint did not re-anchor with a full")
	}
}

// TestStoreLegacyFlatLayout pins the migration contract: a pre-shard flat
// -data-dir (graphs + one .state + meta in the root) is auto-detected and
// read-compatible, and the job's first new checkpoint moves it onto a chain
// that supersedes the .state file.
func TestStoreLegacyFlatLayout(t *testing.T) {
	dir := t.TempDir()
	req := testInstance(t, 300, 0.2)
	g1, err := buildGraph(req.G1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := buildGraph(req.G2)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := reconcile.New(g1, g2, reconcile.WithSeeds(toPairs(req.Seeds)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := rec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Write the PR 3 flat layout by hand: <root>/<id>.{g1,g2,state,meta.json}.
	writeFile := func(name string, write func(*os.File) error) {
		t.Helper()
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("job-1.g1", func(f *os.File) error { return reconcile.WriteGraphBinary(f, g1) })
	writeFile("job-1.g2", func(f *os.File) error { return reconcile.WriteGraphBinary(f, g2) })
	writeFile("job-1.state", func(f *os.File) error { return rec.SnapshotState(f) })
	meta := jobMeta{ID: "job-1", Num: 1, Status: statusDone, Seeds: res.Seeds, MaxSweeps: 50}
	if err := atomicWriteJSON(filepath.Join(dir, "job-1.meta.json"), meta); err != nil {
		t.Fatal(err)
	}

	st, err := newStore(dir, testStoreConfig)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newTestServer(t, st).handler())
	v := jobPairs(t, ts.URL, "job-1")
	if v.Status != statusDone || v.Links != len(res.Pairs) {
		t.Fatalf("legacy job loaded as %q with %d links, want done with %d", v.Status, v.Links, len(res.Pairs))
	}

	// Migration moved the flat files under the default tenant's root.
	if _, err := os.Stat(filepath.Join(dir, "job-1.state")); !os.IsNotExist(err) {
		t.Fatalf("flat .state not migrated out of the data-dir root (err=%v)", err)
	}

	// Its first new checkpoint starts a chain in the tenant root and
	// retires the .state file.
	resp := postJSON(t, ts.URL+"/v1/jobs/job-1/checkpoint", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint of legacy job: status %d", resp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, "default", "job-1.state")); !os.IsNotExist(err) {
		t.Fatalf(".state not retired after chain checkpoint (err=%v)", err)
	}
	chain, err := filepath.Glob(filepath.Join(dir, "default", "job-1.ckpt-*"))
	if err != nil || len(chain) == 0 {
		t.Fatalf("no chain records in the tenant root for the legacy job (err=%v)", err)
	}
	ts.Close()

	// And it survives another restart from the chain alone.
	st2, err := newStore(dir, testStoreConfig)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(newTestServer(t, st2).handler())
	defer ts2.Close()
	v = jobPairs(t, ts2.URL, "job-1")
	if v.Status != statusDone || v.Links != len(res.Pairs) {
		t.Fatalf("migrated job reloaded as %q with %d links, want done with %d", v.Status, v.Links, len(res.Pairs))
	}
}

// TestStoreByteAccountingInvariant pins the durable-byte invariant the
// quota system depends on: the incrementally maintained per-tenant counter
// equals a fresh walk of the tenant root after every path that moves bytes
// — graph writes, delta and full checkpoints, retention compaction, failed
// writes, legacy .state retirement, and purge. Aggressive chain settings
// (fullEvery 2, keep 1) make compaction fire constantly.
func TestStoreByteAccountingInvariant(t *testing.T) {
	st, err := newStore(t.TempDir(), storeConfig{shards: 2, fullEvery: 2, keep: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := st.tenant(tenant.Default)
	check := func(stage string) {
		t.Helper()
		tracked, walked := ts.verifyBytes()
		if tracked != walked {
			t.Fatalf("%s: tracked %d bytes, walk found %d (drift %+d)", stage, tracked, walked, tracked-walked)
		}
	}
	check("empty store")

	// Two jobs checkpointing at every sweep boundary: fulls, deltas, and
	// keep-1 retention all churn the counter.
	chainVictim(t, st, "job-1", 6, 3)
	check("after job-1 chain")
	chainVictim(t, st, "job-2", 4, 2)
	check("after job-2 chain")

	// A write that fails before its rename moves nothing: the old file (or
	// its absence) is still what is on disk.
	js := st.jobStore("job-1")
	boom := errors.New("boom")
	if err := js.writeTracked(js.path(".probe"), func(*os.File) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("failed write returned %v, want boom", err)
	}
	check("after failed write")

	// Legacy flat layout: a pre-shard .state lands in the counter via the
	// boot walk, then a chain full supersedes it and retireOld removes it.
	legacyState := filepath.Join(ts.root, "job-9.state")
	if err := os.WriteFile(legacyState, []byte("legacy snapshot bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts.recountBytes()
	check("after legacy .state boot walk")
	js9 := &jobStore{ts: ts, dir: ts.root, id: "job-9"}
	if err := js9.writeTracked(js9.chainPath(1, "full"), func(f *os.File) error {
		_, err := f.Write([]byte("full record"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	js9.retireOld()
	if _, err := os.Stat(legacyState); !os.IsNotExist(err) {
		t.Fatalf(".state not retired (err=%v)", err)
	}
	check("after legacy retirement")

	// Purge credits everything back.
	st.jobStore("job-2").purge()
	js9.purge()
	check("after purges")
}
