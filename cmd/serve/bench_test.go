package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"github.com/sociograph/reconcile"
)

// BenchmarkStoreCheckpoint measures the store's per-checkpoint cost under
// concurrent jobs: each op is one checkpoint wave — 8 converged jobs writing
// one chain record (state + meta, atomic temp/fsync/rename) each, in
// parallel. Sub-benchmarks cross the cadence (full: every record a full
// snapshot, i.e. -full-every 1, the pre-delta behaviour; delta: one anchoring
// full then delta records, the default) with the shard count (1: every job
// contends on one directory; 8: one independent fsync domain per job). The
// ckpt_bytes metric is the size of the newest chain record per job —
// BENCH_store.json records the full-vs-delta ratio alongside the ns/op rows.
func BenchmarkStoreCheckpoint(b *testing.B) {
	const jobs = 8
	for _, mode := range []struct {
		name      string
		fullEvery int
	}{
		{"full", 1},
		{"delta", 1 << 20}, // one anchoring full, deltas from then on
	} {
		for _, shards := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", mode.name, shards), func(b *testing.B) {
				st, err := newStore(b.TempDir(), storeConfig{shards: shards, fullEvery: mode.fullEvery, keep: 2})
				if err != nil {
					b.Fatal(err)
				}
				r := reconcile.NewRand(7)
				world := reconcile.GeneratePA(r, 2000, 6)
				g1, g2 := reconcile.IndependentCopies(r, world, 0.8, 0.8)
				seeds := reconcile.Seeds(r, reconcile.IdentityPairs(2000), 0.2)

				type bj struct {
					js   *jobStore
					rec  *reconcile.Reconciler
					meta jobMeta
				}
				var bjs []bj
				for i := 0; i < jobs; i++ {
					id := fmt.Sprintf("job-%d", i+1)
					rec, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds))
					if err != nil {
						b.Fatal(err)
					}
					if _, err := rec.RunUntilStable(context.Background(), 10); err != nil {
						b.Fatal(err)
					}
					js := st.jobStore(id)
					if err := js.saveGraphs(g1, g2); err != nil {
						b.Fatal(err)
					}
					meta := jobMeta{ID: id, Num: i + 1, Status: statusRunning, Seeds: rec.Result().Seeds}
					// Warm-up record so delta mode measures deltas, not the
					// anchoring full.
					if err := js.checkpoint(rec, meta); err != nil {
						b.Fatal(err)
					}
					bjs = append(bjs, bj{js: js, rec: rec, meta: meta})
				}

				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					for _, j := range bjs {
						wg.Add(1)
						go func(j bj) {
							defer wg.Done()
							if err := j.js.checkpoint(j.rec, j.meta); err != nil {
								b.Error(err)
							}
						}(j)
					}
					wg.Wait()
				}
				b.StopTimer()

				var bytesPerRecord int64
				for _, j := range bjs {
					records := j.js.listChain()
					fi, err := os.Stat(records[len(records)-1].path)
					if err != nil {
						b.Fatal(err)
					}
					bytesPerRecord += fi.Size()
				}
				b.ReportMetric(float64(bytesPerRecord)/float64(jobs), "ckpt_bytes")
			})
		}
	}
}

// benchRecoveryChain builds the recovery-bench fixture: one job persisted
// under cfg with a chain of one full plus 7 deltas (the -full-every 8 worst
// case). The engine is pinned to frontier: the default hybrid's regime
// handoff re-anchors the chain with a mid-run full, which (with retention)
// would change the chain shape these benches exist to measure.
func benchRecoveryChain(b *testing.B, cfg storeConfig) *store {
	b.Helper()
	st, err := newStore(b.TempDir(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := reconcile.NewRand(7)
	world := reconcile.GeneratePA(r, 2000, 6)
	g1, g2 := reconcile.IndependentCopies(r, world, 0.8, 0.8)
	seeds := reconcile.Seeds(r, reconcile.IdentityPairs(2000), 0.2)
	rec, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds), reconcile.WithIterations(8),
		reconcile.WithEngine(reconcile.EngineFrontier))
	if err != nil {
		b.Fatal(err)
	}
	js := st.jobStore("job-1")
	if err := js.saveGraphs(g1, g2); err != nil {
		b.Fatal(err)
	}
	meta := jobMeta{ID: "job-1", Num: 1, Status: statusRunning, Seeds: rec.Result().Seeds}
	ctx := context.Background()
	hook := func(e reconcile.PhaseEvent) {
		if e.Bucket == e.Buckets {
			if err := js.checkpoint(rec, meta); err != nil {
				b.Fatal(err)
			}
		}
	}
	rec2, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds), reconcile.WithIterations(8),
		reconcile.WithEngine(reconcile.EngineFrontier), reconcile.WithProgress(hook))
	if err != nil {
		b.Fatal(err)
	}
	rec = rec2
	if _, err := rec.Run(ctx); err != nil {
		b.Fatal(err)
	}
	if n := len(js.listChain()); n != 8 {
		b.Fatalf("chain has %d records, want 8", n)
	}
	return st
}

// BenchmarkStoreRecovery measures boot-time chain replay: loading one job
// back from the full-plus-7-deltas chain, including graph reads and full
// state re-validation, with graphs decoded onto the heap.
func BenchmarkStoreRecovery(b *testing.B) {
	st := benchRecoveryChain(b, storeConfig{shards: 1, fullEvery: 8, keep: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, skipped := st.loadAll(); len(skipped) != 0 {
			b.Fatalf("recovery skipped: %v", skipped)
		}
	}
}

// BenchmarkStoreRecoveryMapped is BenchmarkStoreRecovery with -mmap: the
// graphs come back as read-only file mappings instead of heap decodes, so
// the delta between the two rows is the syscall path's recovery win. The
// per-iteration closeMapped mirrors the server's shutdown path and keeps
// the bench from accumulating mappings across iterations.
func BenchmarkStoreRecoveryMapped(b *testing.B) {
	st := benchRecoveryChain(b, storeConfig{shards: 1, fullEvery: 8, keep: 2, mmap: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps, _, skipped := st.loadAll()
		if len(skipped) != 0 {
			b.Fatalf("recovery skipped: %v", skipped)
		}
		b.StopTimer()
		for _, p := range ps {
			p.closeMapped()
		}
		b.StartTimer()
	}
}
