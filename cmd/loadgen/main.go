// Command loadgen drives a live serve process with deterministic
// multi-tenant load and prints a JSON run report (throughput, latency
// quantiles, error counts, end-of-run invariant checks) to stdout.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -scenario mixed -tenants 8 -jobs 125
//
// The exit status is 0 only for a clean run: any request failure or
// invariant violation (scheduler slot leak, byte-accounting drift) exits 1,
// so the command doubles as a CI gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/sociograph/reconcile/internal/loadgen"
)

func main() {
	var (
		url     = flag.String("url", "http://127.0.0.1:8080", "base URL of the serve process")
		scen    = flag.String("scenario", "mixed", "job-shape mix: "+strings.Join(loadgen.Scenarios, "|"))
		tenants = flag.Int("tenants", 8, "number of load tenants to register and drive")
		jobs    = flag.Int("jobs", 16, "jobs submitted per tenant")
		workers = flag.Int("workers", 4, "concurrent driver goroutines per tenant")
		nodes   = flag.Int("nodes", 48, "per-side node count of generated instances")
		seed    = flag.Uint64("seed", 1, "workload seed; equal seeds submit identical requests")
		token   = flag.String("admin-token", "", "bearer token for /v1/admin (empty for open admin)")
		timeout = flag.Duration("timeout", 10*time.Minute, "whole-run deadline")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()

	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:       strings.TrimRight(*url, "/"),
		Scenario:      *scen,
		Tenants:       *tenants,
		JobsPerTenant: *jobs,
		Workers:       *workers,
		Nodes:         *nodes,
		Seed:          *seed,
		AdminToken:    *token,
	})
	if err != nil && rep == nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if len(rep.Failures) > 0 || len(rep.Invariants) > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d failures, %d invariant violations\n",
			len(rep.Failures), len(rep.Invariants))
		os.Exit(1)
	}
}
