package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestExperimentsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a binary")
	}
	bin := filepath.Join(t.TempDir(), "experiments")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building: %v\n%s", err, out)
	}

	out, err := exec.Command(bin, "-run", "table5gowalla", "-scale", "0.02", "-seed", "3").Output()
	if err != nil {
		t.Fatalf("running: %v", err)
	}
	s := string(out)
	if !strings.Contains(s, "Table 5") || !strings.Contains(s, "finished in") {
		t.Fatalf("unexpected output:\n%s", s)
	}

	// Unknown experiment exits nonzero and names the registry.
	cmd := exec.Command(bin, "-run", "nope")
	msg, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(string(msg), "available") {
		t.Fatalf("error does not list experiments: %s", msg)
	}
}
