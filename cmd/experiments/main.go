// Command experiments reproduces the paper's tables and figures.
//
// Usage:
//
//	experiments -run all
//	experiments -run figure2,table4 -scale 0.1 -seed 3
//
// Each experiment prints the same rows the paper reports (see DESIGN.md §5
// for the experiment index and EXPERIMENTS.md for paper-vs-measured notes).
// Scale is the stand-in size as a fraction of the paper's dataset sizes;
// the default suite finishes in minutes on a laptop.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/sociograph/reconcile/internal/experiments"
)

func main() {
	var (
		run      = flag.String("run", "all", "comma-separated experiment names, or 'all' (available: "+strings.Join(experiments.Names(), ", ")+")")
		scale    = flag.Float64("scale", 0.05, "stand-in size as a fraction of the paper's dataset sizes, in (0,1]")
		seed     = flag.Uint64("seed", 1, "random seed; every experiment is deterministic in it")
		rmatBase = flag.Int("rmatbase", 15, "smallest RMAT scale for table2 (paper uses 24/26/28)")
		workers  = flag.Int("workers", 0, "matcher goroutines (0 = GOMAXPROCS)")
	)
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Seed: *seed, RMATBase: *rmatBase, Workers: *workers}
	var names []string
	if *run == "all" {
		names = experiments.Names()
	} else {
		names = strings.Split(*run, ",")
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		runner, ok := experiments.Registry[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (available: %s)\n", name, strings.Join(experiments.Names(), ", "))
			os.Exit(2)
		}
		start := time.Now()
		rep, err := runner(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(rep)
		fmt.Printf("(%s finished in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
