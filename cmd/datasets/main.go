// Command datasets generates the synthetic dataset stand-ins and prints
// their statistics next to the published Table 1 figures, so the
// calibration documented in DESIGN.md §4 can be inspected at any scale.
//
// Usage:
//
//	datasets -scale 0.05
//	datasets -scale 0.05 -only facebook,enron
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/sociograph/reconcile/internal/datasets"
	"github.com/sociograph/reconcile/internal/eval"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.05, "stand-in size as a fraction of the published dataset size")
		seed  = flag.Uint64("seed", 1, "random seed")
		only  = flag.String("only", "", "comma-separated subset: facebook, enron, an, dblp, gowalla, wikipedia")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	pick := func(name string) bool { return len(want) == 0 || want[name] }

	t := &eval.Table{
		Title:  fmt.Sprintf("dataset stand-ins at scale %.3f (published sizes in parentheses)", *scale),
		Header: []string{"dataset", "nodes", "edges", "avg deg", "deg<=5", "clustering"},
	}
	published := map[string]datasets.PaperStats{}
	for _, d := range datasets.Table1 {
		published[d.Name] = d
	}
	addRow := func(name, paperName string, g *graph.Graph) {
		s := graph.ComputeStats(g)
		pub := published[paperName]
		t.AddRow(
			fmt.Sprintf("%s (%d / %d)", name, pub.Nodes, pub.Edges),
			s.Nodes, s.Edges,
			s.AvgDegree,
			fmt.Sprintf("%.0f%%", 100*float64(s.DegreeLE5)/float64(max(s.Nodes, 1))),
			graph.AverageClustering(g, 13),
		)
	}

	r := xrand.New(*seed)
	if pick("facebook") {
		addRow("facebook", "Facebook", datasets.Facebook(r.Split(), *scale))
	}
	if pick("enron") {
		addRow("enron", "Enron", datasets.Enron(r.Split(), *scale))
	}
	if pick("an") {
		an := datasets.AffiliationStandIn(r.Split(), *scale)
		addRow("an (folded)", "AN", an.Fold(150))
	}
	if pick("dblp") {
		d := datasets.DBLP(r.Split(), *scale)
		g1, g2 := d.Split()
		addRow("dblp (even years)", "DBLP", g1)
		addRow("dblp (odd years)", "DBLP", g2)
	}
	if pick("gowalla") {
		d := datasets.Gowalla(r.Split(), *scale)
		addRow("gowalla (friends)", "Gowalla", d.Friends)
		g1, g2 := d.Split()
		addRow("gowalla (odd months)", "Gowalla", g1)
		addRow("gowalla (even months)", "Gowalla", g2)
	}
	if pick("wikipedia") {
		d := datasets.Wikipedia(r.Split(), *scale/10)
		addRow("wikipedia FR", "French Wikipedia", d.FR)
		addRow("wikipedia DE", "German Wikipedia", d.DE)
		fmt.Fprintf(os.Stderr, "wikipedia: %d shared concepts, %d curated links\n", len(d.Truth), len(d.InterLang))
	}
	fmt.Println(t)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
