package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestDatasetsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a binary")
	}
	bin := filepath.Join(t.TempDir(), "datasets")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-scale", "0.01", "-only", "facebook,enron").Output()
	if err != nil {
		t.Fatalf("running: %v", err)
	}
	s := string(out)
	if !strings.Contains(s, "facebook") || !strings.Contains(s, "enron") {
		t.Fatalf("missing datasets in output:\n%s", s)
	}
	if strings.Contains(s, "gowalla") {
		t.Fatalf("-only filter ignored:\n%s", s)
	}
}
