package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/sociograph/reconcile"
)

func TestLoadSeedsAndReverse(t *testing.T) {
	dir := t.TempDir()
	seedsPath := filepath.Join(dir, "seeds.txt")
	content := "# comment\n100 200\n300 400\n"
	if err := os.WriteFile(seedsPath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ids1 := []int64{100, 300, 500}
	ids2 := []int64{200, 400}
	seeds, err := loadSeeds(seedsPath, ids1, ids2)
	if err != nil {
		t.Fatal(err)
	}
	want := []reconcile.Pair{{Left: 0, Right: 0}, {Left: 1, Right: 1}}
	if len(seeds) != 2 || seeds[0] != want[0] || seeds[1] != want[1] {
		t.Fatalf("seeds = %v, want %v", seeds, want)
	}
}

func TestLoadSeedsErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	ids := []int64{1, 2}
	if _, err := loadSeeds(write("a.txt", "9 1\n"), ids, ids); err == nil {
		t.Error("unknown original ID accepted")
	}
	if _, err := loadSeeds(write("b.txt", "oops\n"), ids, ids); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := loadSeeds(filepath.Join(dir, "missing.txt"), ids, ids); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadGraph(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(p, []byte("1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, ids, err := loadGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 || len(ids) != 3 {
		t.Fatalf("graph: %d nodes %d edges %d ids", g.NumNodes(), g.NumEdges(), len(ids))
	}
	if _, _, err := loadGraph(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing graph file accepted")
	}
}

// End-to-end: generate an instance, write it to disk, run the built binary,
// check the output links.
func TestReconcileEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a binary")
	}
	bin := filepath.Join(t.TempDir(), "reconcile-cli")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building: %v\n%s", err, out)
	}

	dir := t.TempDir()
	r := reconcile.NewRand(1)
	g := reconcile.GeneratePA(r, 600, 8)
	g1, g2 := reconcile.IndependentCopies(r, g, 0.8, 0.8)
	seeds := reconcile.Seeds(r, reconcile.IdentityPairs(600), 0.15)

	writeGraph := func(name string, gr *reconcile.Graph) string {
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := reconcile.WriteEdgeList(f, gr); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return p
	}
	p1 := writeGraph("g1.txt", g1)
	p2 := writeGraph("g2.txt", g2)
	ps := filepath.Join(dir, "seeds.txt")
	var sb strings.Builder
	for _, s := range seeds {
		// Written graphs use dense IDs equal to original IDs here.
		sb.WriteString(strings.TrimSpace(strings.Join([]string{itoa(int(s.Left)), itoa(int(s.Right))}, " ")))
		sb.WriteByte('\n')
	}
	if err := os.WriteFile(ps, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	outPath := filepath.Join(dir, "links.txt")
	cmd := exec.Command(bin, "-g1", p1, "-g2", p2, "-seeds", ps, "-threshold", "2", "-out", outPath)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("running: %v\n%s", err, out)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < len(seeds)+50 {
		t.Fatalf("only %d output lines for %d seeds; matcher found too little", len(lines), len(seeds))
	}
	// Every non-comment line must be a pair, and (in this identity-truth
	// instance) the overwhelming majority must be self-pairs.
	good, bad := 0, 0
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad output line %q", line)
		}
		if fields[0] == fields[1] {
			good++
		} else {
			bad++
		}
	}
	if bad*20 > good {
		t.Fatalf("output quality: %d good, %d bad", good, bad)
	}
}

// A microscopic -timeout must abort the run with a clear message and a
// non-zero exit, and a generous one must not fire.
func TestReconcileTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a binary")
	}
	bin := filepath.Join(t.TempDir(), "reconcile-cli")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building: %v\n%s", err, out)
	}

	dir := t.TempDir()
	r := reconcile.NewRand(2)
	g := reconcile.GeneratePA(r, 2000, 10)
	g1, g2 := reconcile.IndependentCopies(r, g, 0.8, 0.8)
	seeds := reconcile.Seeds(r, reconcile.IdentityPairs(2000), 0.15)

	write := func(name string, gr *reconcile.Graph) string {
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := reconcile.WriteEdgeList(f, gr); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return p
	}
	p1 := write("g1.txt", g1)
	p2 := write("g2.txt", g2)
	ps := filepath.Join(dir, "seeds.txt")
	var sb strings.Builder
	for _, s := range seeds {
		sb.WriteString(itoa(int(s.Left)) + " " + itoa(int(s.Right)) + "\n")
	}
	if err := os.WriteFile(ps, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	// 1ns expires before the first bucket boundary: non-zero exit, message.
	cmd := exec.Command(bin, "-g1", p1, "-g2", p2, "-seeds", ps, "-timeout", "1ns")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("1ns timeout: command succeeded\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 0 {
		t.Fatalf("1ns timeout: err = %v, want non-zero exit", err)
	}
	if !strings.Contains(string(out), "deadline exceeded") {
		t.Fatalf("1ns timeout: no clear message in output:\n%s", out)
	}

	// A generous timeout completes normally.
	cmd = exec.Command(bin, "-g1", p1, "-g2", p2, "-seeds", ps, "-timeout", "5m", "-progress")
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("5m timeout: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "links total") {
		t.Fatalf("5m timeout: missing summary:\n%s", out)
	}
	if !strings.Contains(string(out), "bucket") {
		t.Fatalf("-progress: no bucket lines:\n%s", out)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	digits := []byte{}
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
