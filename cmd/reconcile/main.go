// Command reconcile runs User-Matching over two edge-list files and a seed
// file, writing the expanded identification links.
//
// Usage:
//
//	reconcile -g1 network1.txt -g2 network2.txt -seeds seeds.txt \
//	    -threshold 2 -iterations 2 -timeout 30s -out links.txt
//
// -timeout bounds the whole run (the matcher stops at the next bucket
// boundary and the command exits non-zero); -progress streams per-bucket
// statistics to stderr.
//
// Graph files are SNAP-style edge lists ("u v" per line, '#' comments).
// Node IDs may be arbitrary; they are densified per file, and the seed file
// refers to the ORIGINAL IDs ("id-in-g1 id-in-g2" per line). Output links
// are written in original IDs as well.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/sociograph/reconcile"
)

func main() {
	var (
		g1Path     = flag.String("g1", "", "first network edge list (required)")
		g2Path     = flag.String("g2", "", "second network edge list (required)")
		seedsPath  = flag.String("seeds", "", "seed links file: 'id1 id2' per line in original IDs (required)")
		threshold  = flag.Int("threshold", 2, "minimum matching score T")
		iterations = flag.Int("iterations", 2, "number of sweeps k")
		engine     = flag.String("engine", "hybrid", "engine: hybrid, frontier, parallel, sequential, mapreduce (all produce identical links)")
		workers    = flag.Int("workers", 0, "goroutines (0 = GOMAXPROCS)")
		noBuckets  = flag.Bool("no-bucketing", false, "disable the degree bucketing schedule (ablation)")
		ties       = flag.String("ties", "reject", "tie policy: reject (conservative) or lowest-id (greedy)")
		scoring    = flag.String("scoring", "count", "candidate ranking: count (paper) or adamic-adar")
		margin     = flag.Int("margin", 0, "required witness-count gap over the runner-up")
		timeout    = flag.Duration("timeout", 0, "abort the run after this duration, e.g. 30s (0 = no limit; not honored by the mapreduce engine)")
		progress   = flag.Bool("progress", false, "log each bucket pass to stderr as it completes")
		out        = flag.String("out", "", "output links file (default stdout)")
	)
	flag.Parse()
	if *g1Path == "" || *g2Path == "" || *seedsPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	g1, ids1, err := loadGraph(*g1Path)
	if err != nil {
		fatal(err)
	}
	g2, ids2, err := loadGraph(*g2Path)
	if err != nil {
		fatal(err)
	}
	seeds, err := loadSeeds(*seedsPath, ids1, ids2)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "reconcile: G1 %v\n", reconcile.ComputeStats(g1))
	fmt.Fprintf(os.Stderr, "reconcile: G2 %v\n", reconcile.ComputeStats(g2))
	fmt.Fprintf(os.Stderr, "reconcile: %d seed links\n", len(seeds))

	opts := reconcile.DefaultOptions()
	opts.Threshold = *threshold
	opts.Iterations = *iterations
	opts.Workers = *workers
	opts.DisableBucketing = *noBuckets
	opts.MinMargin = *margin
	switch *ties {
	case "reject":
		opts.Ties = reconcile.TieReject
	case "lowest-id":
		opts.Ties = reconcile.TieLowestID
	default:
		fatal(fmt.Errorf("unknown tie policy %q", *ties))
	}
	switch *scoring {
	case "count":
		opts.Scoring = reconcile.ScoreWitnessCount
	case "adamic-adar":
		opts.Scoring = reconcile.ScoreAdamicAdar
	default:
		fatal(fmt.Errorf("unknown scoring %q", *scoring))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var res *reconcile.Result
	switch *engine {
	case "hybrid", "frontier", "parallel", "sequential":
		switch *engine {
		case "hybrid":
			opts.Engine = reconcile.EngineHybrid
		case "frontier":
			opts.Engine = reconcile.EngineFrontier
		case "parallel":
			opts.Engine = reconcile.EngineParallel
		case "sequential":
			opts.Engine = reconcile.EngineSequential
		}
		ropts := []reconcile.Option{reconcile.WithOptions(opts), reconcile.WithSeeds(seeds)}
		if *progress {
			start := time.Now()
			ropts = append(ropts, reconcile.WithProgress(func(e reconcile.PhaseEvent) {
				fmt.Fprintf(os.Stderr, "reconcile: [%6.2fs] sweep %d bucket %d/%d (degree >= %d): +%d links (total %d)\n",
					time.Since(start).Seconds(), e.Iteration, e.Bucket, e.Buckets, e.MinDegree, e.Matched, e.TotalLinks)
			}))
		}
		rec, err2 := reconcile.New(g1, g2, ropts...)
		if err2 != nil {
			fatal(err2)
		}
		res, err = rec.Run(ctx)
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "reconcile: deadline exceeded: run aborted after %v with %d links (%d discovered); rerun with a larger -timeout\n",
				*timeout, len(res.Pairs), len(res.NewPairs))
			os.Exit(1)
		}
	case "mapreduce":
		// The MapReduce formulation is batch-only: -timeout and -progress
		// do not apply.
		if *progress || *timeout > 0 {
			fmt.Fprintln(os.Stderr, "reconcile: note: -progress and -timeout are not honored by the mapreduce engine")
		}
		res, err = reconcile.ReconcileMapReduce(g1, g2, seeds, opts)
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "reconcile: %d links total (%d new)\n", len(res.Pairs), len(res.NewPairs))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# identification links: %d pairs (%d seeds first)\n", len(res.Pairs), res.Seeds)
	for _, p := range res.Pairs {
		fmt.Fprintf(bw, "%d\t%d\n", ids1[p.Left], ids2[p.Right])
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}
}

func loadGraph(path string) (*reconcile.Graph, []int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	g, ids, err := reconcile.ReadEdgeList(bufio.NewReader(f))
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, ids, nil
}

// loadSeeds reads "origID1 origID2" lines and maps them to dense node IDs.
func loadSeeds(path string, ids1, ids2 []int64) ([]reconcile.Pair, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rev1 := reverse(ids1)
	rev2 := reverse(ids2)
	var out []reconcile.Pair
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		var a, b int64
		if n, _ := fmt.Sscanf(line, "%d %d", &a, &b); n < 2 {
			if len(line) == 0 || line[0] == '#' {
				continue
			}
			return nil, fmt.Errorf("%s: line %d: want 'id1 id2'", path, lineno)
		}
		l, ok1 := rev1[a]
		r, ok2 := rev2[b]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("%s: line %d: seed (%d, %d) not present in the graphs", path, lineno, a, b)
		}
		out = append(out, reconcile.Pair{Left: l, Right: r})
	}
	return out, sc.Err()
}

func reverse(ids []int64) map[int64]reconcile.NodeID {
	m := make(map[int64]reconcile.NodeID, len(ids))
	for dense, orig := range ids {
		m[orig] = reconcile.NodeID(dense)
	}
	return m
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "reconcile: %v\n", err)
	os.Exit(1)
}
