package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildSelf compiles this command once per test binary into a temp dir.
func buildSelf(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gengraph")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building gengraph: %v\n%s", err, out)
	}
	return bin
}

func TestGengraphModels(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a binary")
	}
	bin := buildSelf(t)
	for _, args := range [][]string{
		{"-model", "pa", "-n", "200", "-m", "3"},
		{"-model", "er", "-n", "200", "-p", "0.05"},
		{"-model", "rmat", "-rmatscale", "7"},
		{"-model", "ws", "-n", "100", "-k", "2"},
		{"-model", "affiliation", "-n", "150"},
	} {
		out, err := exec.Command(bin, args...).Output()
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if !strings.HasPrefix(string(out), "#") {
			t.Fatalf("%v: output does not start with a header comment", args)
		}
		if !strings.Contains(string(out), "\t") {
			t.Fatalf("%v: no edges emitted", args)
		}
	}
}

func TestGengraphWritesFile(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a binary")
	}
	bin := buildSelf(t)
	out := filepath.Join(t.TempDir(), "g.txt")
	if err := exec.Command(bin, "-model", "pa", "-n", "100", "-m", "2", "-out", out).Run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty output file")
	}
}

func TestGengraphUnknownModel(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a binary")
	}
	bin := buildSelf(t)
	if err := exec.Command(bin, "-model", "nope").Run(); err == nil {
		t.Fatal("unknown model should exit nonzero")
	}
}
