// Command gengraph generates synthetic social networks in the models the
// paper evaluates on and writes them as SNAP-style edge lists.
//
// Usage:
//
//	gengraph -model pa -n 100000 -m 20 -out pa.txt
//	gengraph -model er -n 10000 -p 0.002
//	gengraph -model rmat -rmatscale 20
//	gengraph -model ws -n 10000 -k 5 -beta 0.1
//	gengraph -model affiliation -n 60000
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/sociograph/reconcile"
)

func main() {
	var (
		model     = flag.String("model", "pa", "graph model: pa, er, rmat, ws, affiliation")
		n         = flag.Int("n", 10000, "number of nodes (pa, er, ws, affiliation)")
		m         = flag.Int("m", 10, "edges per node (pa)")
		p         = flag.Float64("p", 0.001, "edge probability (er)")
		k         = flag.Int("k", 5, "lattice neighbors per side (ws)")
		beta      = flag.Float64("beta", 0.1, "rewiring probability (ws)")
		rmatScale = flag.Int("rmatscale", 16, "RMAT scale: 2^scale nodes (rmat)")
		seed      = flag.Uint64("seed", 1, "random seed")
		out       = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	r := reconcile.NewRand(*seed)
	var g *reconcile.Graph
	switch *model {
	case "pa":
		g = reconcile.GeneratePA(r, *n, *m)
	case "er":
		g = reconcile.GenerateER(r, *n, *p)
	case "rmat":
		g = reconcile.GenerateRMAT(r, reconcile.DefaultRMAT(*rmatScale))
	case "ws":
		g = reconcile.GenerateWattsStrogatz(r, *n, *k, *beta)
	case "affiliation":
		an := reconcile.GenerateAffiliation(r, reconcile.DefaultAffiliation(*n))
		g = an.Fold(150)
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown model %q\n", *model)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := reconcile.WriteEdgeList(w, g); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gengraph: %v\n", reconcile.ComputeStats(g))
}
