// Command benchcheck is the CI benchmark gate: it parses `go test -bench`
// output, takes the best (minimum) ns/op per benchmark across repeated runs,
// and fails when a benchmark with a committed baseline in a BENCH_*.json
// file regressed beyond the tolerance.
//
// Usage:
//
//	benchcheck -tolerance 0.25 -baseline BENCH_engines.json [-baseline …] \
//	    [-dominance 'BenchmarkDefault:BenchmarkFixedA,BenchmarkFixedB' …] out1.txt [out2.txt …]
//
// Bench output files are whatever `go test -run '^$' -bench … -count N`
// printed (CI tees them and uploads them as artifacts). Baselines are the
// repository's BENCH_*.json files; only their "benchmarks" arrays are read,
// matching on the "name" field with the GOMAXPROCS suffix ("-8") stripped
// from measured names. When several baseline files define the same name the
// last one wins (BENCH_store.json re-baselines engine rows in 1x mode this
// way). Benchmarks without a baseline row — or whose row carries no
// ns_per_op, the convention for fsync-bound benchmarks too noisy to gate —
// are reported informationally and do not gate; baseline rows that were not
// measured are ignored (other CI jobs cover them).
//
// The tolerance is deliberately loose (see the note field of each BENCH
// file): baselines are recorded on the maintainer's hardware, CI runners
// differ, and -benchtime 1x is noisy — the gate exists to catch
// order-of-magnitude scheduling regressions the moment they land, not 5%
// drifts, which re-recording on comparable hardware tracks instead.
//
// A -dominance rule 'Default:FixedA,FixedB' additionally asserts that the
// measured Default row is no slower than the best of the fixed rows times
// (1+tolerance). Unlike the baseline gate, this compares rows measured in
// the same run on the same machine, so it holds on any hardware: it is how
// CI pins that the default (hybrid) engine never loses a workload to an
// engine a user could have pinned by hand. Every benchmark a rule names
// must appear in the measured output — a missing row fails the gate rather
// than silently weakening it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineDoc is the slice of a BENCH_*.json file this tool reads.
type baselineDoc struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkReconcileFrontier-8   	      10	 103053633 ns/op	…
//
// The -8 GOMAXPROCS suffix is optional (absent at GOMAXPROCS=1).
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBenchOutput folds result lines into the minimum ns/op per benchmark
// name — with -count N the minimum is the least-noisy estimate of the true
// cost.
func parseBenchOutput(lines []string, best map[string]float64) {
	for _, line := range lines {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if cur, ok := best[m[1]]; !ok || ns < cur {
			best[m[1]] = ns
		}
	}
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// dominanceRule asserts that one benchmark (the default engine's row) is no
// slower than the best of a set of alternatives measured in the same run.
type dominanceRule struct {
	def        string
	candidates []string
}

// parseDominance parses 'Default:FixedA,FixedB'.
func parseDominance(spec string) (dominanceRule, error) {
	def, rest, ok := strings.Cut(spec, ":")
	var r dominanceRule
	if !ok || def == "" || rest == "" {
		return r, fmt.Errorf("dominance rule %q: want 'Default:FixedA,FixedB'", spec)
	}
	r.def = def
	for _, c := range strings.Split(rest, ",") {
		if c == "" {
			return r, fmt.Errorf("dominance rule %q: empty candidate name", spec)
		}
		r.candidates = append(r.candidates, c)
	}
	return r, nil
}

// checkDominance applies one rule against the measured results; the returned
// error is the gate failure, if any.
func checkDominance(r dominanceRule, best map[string]float64, tolerance float64) error {
	def, ok := best[r.def]
	if !ok {
		return fmt.Errorf("dominance rule names %s, which was not measured", r.def)
	}
	bestFixed := 0.0
	bestName := ""
	for _, c := range r.candidates {
		ns, ok := best[c]
		if !ok {
			return fmt.Errorf("dominance rule names %s, which was not measured", c)
		}
		if bestName == "" || ns < bestFixed {
			bestFixed, bestName = ns, c
		}
	}
	if def > bestFixed*(1+tolerance) {
		return fmt.Errorf("%s at %.0f ns/op loses to %s at %.0f ns/op by more than %.0f%% — the default engine must not lose a workload to a pinned engine",
			r.def, def, bestName, bestFixed, tolerance*100)
	}
	fmt.Printf("  ok %-55s %14.0f ns/op vs best fixed %s %.0f (%+.1f%%)\n",
		r.def+" (dominance)", def, bestName, bestFixed, (def/bestFixed-1)*100)
	return nil
}

func run() error {
	var baselines, dominances multiFlag
	tolerance := flag.Float64("tolerance", 0.25, "allowed ns/op regression vs the baseline (0.25 = +25%)")
	flag.Var(&baselines, "baseline", "BENCH_*.json baseline file (repeatable)")
	flag.Var(&dominances, "dominance", "'Default:FixedA,FixedB' same-run dominance assertion (repeatable)")
	flag.Parse()
	if len(baselines) == 0 || flag.NArg() == 0 {
		return fmt.Errorf("usage: benchcheck -tolerance 0.25 -baseline BENCH_x.json [...] bench-output.txt [...]")
	}

	baseline := map[string]float64{}
	for _, path := range baselines {
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var doc baselineDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, b := range doc.Benchmarks {
			if b.NsPerOp > 0 {
				baseline[b.Name] = b.NsPerOp
			}
		}
	}

	best := map[string]float64{}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		var lines []string
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		parseBenchOutput(lines, best)
	}
	if len(best) == 0 {
		return fmt.Errorf("no benchmark result lines found in %s", strings.Join(flag.Args(), ", "))
	}

	failed := 0
	for _, name := range sortedKeys(best) {
		ns := best[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Printf("  ?  %-55s %14.0f ns/op (no baseline)\n", name, ns)
			continue
		}
		limit := base * (1 + *tolerance)
		mark, note := "ok", ""
		if ns > limit {
			mark = "FAIL"
			note = fmt.Sprintf("  exceeds +%.0f%% tolerance", *tolerance*100)
			failed++
		}
		fmt.Printf("%4s %-55s %14.0f ns/op vs baseline %.0f (%+.1f%%)%s\n",
			mark, name, ns, base, (ns/base-1)*100, note)
	}
	for _, spec := range dominances {
		rule, err := parseDominance(spec)
		if err != nil {
			return err
		}
		if err := checkDominance(rule, best, *tolerance); err != nil {
			fmt.Printf("FAIL %s\n", err)
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark gate(s) failed at the %.0f%% tolerance", failed, *tolerance*100)
	}
	return nil
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}
