package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	best := map[string]float64{}
	parseBenchOutput([]string{
		"goos: linux",
		"BenchmarkReconcileFrontier-8   	      10	 103053633 ns/op	 2469728 B/op",
		"BenchmarkReconcileFrontier-8   	      12	  95000000 ns/op	 2469728 B/op",
		"BenchmarkReconcileFrontier-8   	       9	 110000000 ns/op",
		"BenchmarkStoreCheckpoint/delta/shards=8 	       1	   9473738 ns/op	        26.00 ckpt_bytes",
		"BenchmarkSnapshotEncodeState 	    1135	   2127301 ns/op	1420.37 MB/s",
		"PASS",
		"ok  	github.com/sociograph/reconcile	1.9s",
	}, best)
	want := map[string]float64{
		"BenchmarkReconcileFrontier":              95000000, // min of three runs
		"BenchmarkStoreCheckpoint/delta/shards=8": 9473738,  // sub-benchmark names survive
		"BenchmarkSnapshotEncodeState":            2127301,  // no GOMAXPROCS suffix
	}
	if len(best) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(best), len(want), best)
	}
	for name, ns := range want {
		if best[name] != ns {
			t.Errorf("%s: parsed %.0f ns/op, want %.0f", name, best[name], ns)
		}
	}
}

// TestGateEndToEnd runs the built checker against synthetic baselines: a
// passing run, a >tolerance regression, and an unknown benchmark (which must
// not gate).
func TestGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "benchcheck")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	baseline := write("BENCH_test.json", `{
	  "note": "synthetic",
	  "benchmarks": [
	    {"name": "BenchmarkA", "ns_per_op": 1000000},
	    {"name": "BenchmarkB/sub=1", "ns_per_op": 500}
	  ]
	}`)

	ok := write("ok.txt", strings.Join([]string{
		"BenchmarkA-4   	     100	 1100000 ns/op", // +10%: inside 25%
		"BenchmarkB/sub=1 	    1000	     480 ns/op",
		"BenchmarkUnknown 	       1	 9999999 ns/op", // no baseline: informational
	}, "\n"))
	if out, err := exec.Command(bin, "-tolerance", "0.25", "-baseline", baseline, ok).CombinedOutput(); err != nil {
		t.Fatalf("passing run failed: %v\n%s", err, out)
	}

	bad := write("bad.txt", strings.Join([]string{
		"BenchmarkA-4   	     100	 1400000 ns/op", // +40%: regression
		"BenchmarkA-4   	     100	 1350000 ns/op", // min still +35%
		"BenchmarkB/sub=1 	    1000	     480 ns/op",
	}, "\n"))
	out, err := exec.Command(bin, "-tolerance", "0.25", "-baseline", baseline, bad).CombinedOutput()
	if err == nil {
		t.Fatalf("regressed run passed:\n%s", out)
	}
	if !strings.Contains(string(out), "BenchmarkA") || !strings.Contains(string(out), "FAIL") {
		t.Fatalf("regression report missing the failing row:\n%s", out)
	}

	// Min-of-count: one good run among noisy ones passes.
	noisy := write("noisy.txt", strings.Join([]string{
		"BenchmarkA   	     100	 9000000 ns/op",
		"BenchmarkA   	     100	 1010000 ns/op",
		"BenchmarkA   	     100	 8000000 ns/op",
	}, "\n"))
	if out, err := exec.Command(bin, "-tolerance", "0.25", "-baseline", baseline, noisy).CombinedOutput(); err != nil {
		t.Fatalf("min-of-count run failed: %v\n%s", err, out)
	}

	// Empty input is an error, not a silent pass.
	empty := write("empty.txt", "PASS\n")
	if _, err := exec.Command(bin, "-tolerance", "0.25", "-baseline", baseline, empty).CombinedOutput(); err == nil {
		t.Fatal("empty bench output passed the gate")
	}

	// Dominance: the default-engine row must stay within tolerance of the
	// best fixed-engine row measured in the same run.
	engines := write("engines.txt", strings.Join([]string{
		"BenchmarkHybrid-4   	     100	 1050000 ns/op", // +5% over best fixed: fine
		"BenchmarkFixedA-4   	     100	 1000000 ns/op",
		"BenchmarkFixedB-4   	     100	 2000000 ns/op",
	}, "\n"))
	rule := "BenchmarkHybrid:BenchmarkFixedA,BenchmarkFixedB"
	if out, err := exec.Command(bin, "-tolerance", "0.25", "-baseline", baseline,
		"-dominance", rule, engines).CombinedOutput(); err != nil {
		t.Fatalf("dominance within tolerance failed: %v\n%s", err, out)
	}

	lost := write("lost.txt", strings.Join([]string{
		"BenchmarkHybrid-4   	     100	 1300000 ns/op", // +30% over best fixed
		"BenchmarkFixedA-4   	     100	 1000000 ns/op",
		"BenchmarkFixedB-4   	     100	 2000000 ns/op",
	}, "\n"))
	out, err = exec.Command(bin, "-tolerance", "0.25", "-baseline", baseline,
		"-dominance", rule, lost).CombinedOutput()
	if err == nil {
		t.Fatalf("default engine losing a workload passed the gate:\n%s", out)
	}
	if !strings.Contains(string(out), "BenchmarkFixedA") {
		t.Fatalf("dominance failure does not name the winning fixed engine:\n%s", out)
	}

	// A rule naming an unmeasured benchmark fails loudly instead of
	// silently weakening the gate.
	if _, err := exec.Command(bin, "-tolerance", "0.25", "-baseline", baseline,
		"-dominance", "BenchmarkHybrid:BenchmarkMissing", engines).CombinedOutput(); err == nil {
		t.Fatal("dominance rule with an unmeasured candidate passed")
	}
	if _, err := exec.Command(bin, "-tolerance", "0.25", "-baseline", baseline,
		"-dominance", "garbage", engines).CombinedOutput(); err == nil {
		t.Fatal("malformed dominance rule accepted")
	}
}
