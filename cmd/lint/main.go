// Command lint runs the repo's invariant analyzer suite (internal/analysis)
// over the module: determinism in the bit-identity-critical packages,
// codec canonicality, atomic durable writes, panic-free decoding, context
// propagation, and secret hygiene. CI gates on it next to go vet and
// staticcheck.
//
// Usage:
//
//	lint [-json] [packages]
//
// Packages are module-relative patterns: ./... (the default) sweeps the
// whole module, ./internal/... a subtree, ./cmd/serve a single package.
// Findings print one per line as
//
//	file:line: [analyzer] message
//
// and the exit status is 1 when any finding survives suppression, 2 on a
// load or usage error, 0 on a clean tree. Intentional exceptions are
// suppressed inline with "//lint:allow <analyzer> <reason>" (reason
// mandatory; unused or malformed directives are themselves findings).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/sociograph/reconcile/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lint [-json] [packages]\n\npackages default to ./... (the whole module)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	patterns, err := relPatterns(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}

	findings, err := analysis.Lint(analysis.LoadConfig{Dir: root}, analysis.DefaultPolicy(), patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// relPatterns turns ./-style CLI patterns into module-relative ones.
func relPatterns(root string, args []string) ([]string, error) {
	if len(args) == 0 {
		return nil, nil // everything
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, arg := range args {
		pat := arg
		suffix := ""
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, suffix = rest, "/..."
		}
		if pat == "." && suffix == "/..." && cwd == root {
			return nil, nil // ./... at the root selects everything
		}
		abs, err := filepath.Abs(filepath.Join(cwd, pat))
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q is outside the module at %s", arg, root)
		}
		out = append(out, filepath.ToSlash(rel)+suffix)
	}
	return out, nil
}
