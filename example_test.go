package reconcile_test

import (
	"fmt"

	"github.com/sociograph/reconcile"
)

// The basic model end to end: a hidden network, two partial copies, a few
// seed links, reconciliation, evaluation.
func ExampleReconcile() {
	r := reconcile.NewRand(7)
	world := reconcile.GeneratePA(r, 2000, 10)
	g1, g2 := reconcile.IndependentCopies(r, world, 0.7, 0.7)
	seeds := reconcile.Seeds(r, reconcile.IdentityPairs(2000), 0.10)

	res, err := reconcile.Reconcile(g1, g2, seeds, reconcile.DefaultOptions())
	if err != nil {
		panic(err)
	}
	c := reconcile.Evaluate(res.Pairs, res.Seeds, reconcile.IdentityTruth(2000))
	fmt.Printf("good=%d bad=%d\n", c.Good, c.Bad)
	// Output: good=1768 bad=5
}

// Incremental reconciliation: run, learn more trusted links, resume.
func ExampleNewSession() {
	r := reconcile.NewRand(7)
	world := reconcile.GeneratePA(r, 2000, 10)
	g1, g2 := reconcile.IndependentCopies(r, world, 0.7, 0.7)
	seeds := reconcile.Seeds(r, reconcile.IdentityPairs(2000), 0.10)

	sess, err := reconcile.NewSession(g1, g2, seeds[:len(seeds)/2], reconcile.DefaultOptions())
	if err != nil {
		panic(err)
	}
	sess.RunUntilStable(10)
	phase1 := sess.Len()

	for _, s := range seeds[len(seeds)/2:] {
		// A late seed can conflict with an existing link; skip those.
		_ = sess.AddSeeds([]reconcile.Pair{s})
	}
	sess.RunUntilStable(10)
	fmt.Printf("grew=%v\n", sess.Len() >= phase1)
	// Output: grew=true
}

// Options control the precision/recall trade: higher thresholds are
// stricter.
func ExampleOptions() {
	opts := reconcile.DefaultOptions()
	opts.Threshold = 3 // require 3 similarity witnesses
	opts.MinMargin = 1 // and a strict gap over the runner-up
	opts.Engine = reconcile.EngineSequential
	fmt.Println(opts.Threshold, opts.MinMargin)
	// Output: 3 1
}
