package reconcile_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/sociograph/reconcile"
)

// chainRecord is one checkpoint of a victim run: the chain form (a full
// snapshot or a delta record) plus the monolithic state snapshot of the same
// moment, for the bit-identity comparison.
type chainRecord struct {
	full       bool
	data       []byte // WriteFull or WriteDelta bytes
	monolithic []byte // SnapshotState bytes at the same boundary
}

// TestDeltaChainResumeEquivalence extends the PR 3 resume-equivalence
// guarantee to delta chains, on all four engines: a run checkpointed as
// (full + per-bucket deltas), cut at any checkpoint, replayed and resumed,
// finishes bit-identically to the run that was never interrupted — and the
// replayed state is byte-identical to the monolithic snapshot taken at the
// same boundary, so restore-from-chain and restore-from-snapshot are the
// same operation. The hybrid row runs a schedule long enough to cross its
// regime handoff, whose checkpoint is not delta-expressible: the chain must
// re-anchor with a full there (ErrFullRequired) and keep replaying.
func TestDeltaChainResumeEquivalence(t *testing.T) {
	g1, g2, seeds := snapshotInstance(t)
	for _, engine := range []reconcile.Engine{reconcile.EngineFrontier, reconcile.EngineParallel, reconcile.EngineSequential, reconcile.EngineHybrid} {
		t.Run(engine.String(), func(t *testing.T) {
			iterations := 3
			if engine == reconcile.EngineHybrid {
				iterations = 8 // commits decay to zero and the handoff fires mid-chain
			}
			opts := []reconcile.Option{
				reconcile.WithSeeds(seeds),
				reconcile.WithEngine(engine),
				reconcile.WithIterations(iterations),
			}
			ref, err := reconcile.New(g1, g2, opts...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if len(want.NewPairs) == 0 {
				t.Fatal("reference run found nothing; instance too weak")
			}

			// The victim checkpoints at every bucket boundary: one full,
			// then deltas (cmd/serve writes fulls every K checkpoints; every
			// cut below exercises a full→delta…delta prefix either way).
			var chain []chainRecord
			var ckpt reconcile.Checkpointer
			var victim *reconcile.Reconciler
			victim, err = reconcile.New(g1, g2, append(opts,
				reconcile.WithProgress(func(reconcile.PhaseEvent) {
					var rec chainRecord
					var buf bytes.Buffer
					if len(chain) == 0 {
						rec.full = true
						if err := ckpt.WriteFull(&buf, victim); err != nil {
							t.Errorf("full checkpoint: %v", err)
							return
						}
					} else if err := ckpt.WriteDelta(&buf, victim); errors.Is(err, reconcile.ErrFullRequired) {
						// The hybrid handoff just landed; re-anchor the chain.
						rec.full = true
						buf.Reset()
						if err := ckpt.WriteFull(&buf, victim); err != nil {
							t.Errorf("re-anchor full checkpoint %d: %v", len(chain), err)
							return
						}
					} else if err != nil {
						t.Errorf("delta checkpoint %d: %v", len(chain), err)
						return
					}
					rec.data = append([]byte(nil), buf.Bytes()...)
					var mono bytes.Buffer
					if err := victim.SnapshotState(&mono); err != nil {
						t.Errorf("monolithic checkpoint: %v", err)
						return
					}
					rec.monolithic = mono.Bytes()
					chain = append(chain, rec)
				}))...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := victim.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			if len(chain) != len(want.Phases) {
				t.Fatalf("victim checkpointed %d times, want one per phase (%d)", len(chain), len(want.Phases))
			}

			// The hybrid chain must actually contain the re-anchoring full —
			// otherwise the schedule never crossed the handoff and the row
			// proves nothing extra.
			anchor := func(cut int) int {
				for i := cut; i > 0; i-- {
					if chain[i].full {
						return i
					}
				}
				return 0
			}
			if engine == reconcile.EngineHybrid && anchor(len(chain)-1) == 0 {
				t.Fatal("hybrid chain has no mid-chain full; the handoff never fired")
			}

			for _, cut := range []int{0, 1, len(chain) / 2, len(chain) - 1} {
				// "New process": replay from the last full at or before the
				// cut, from bytes alone.
				base := anchor(cut)
				st, err := reconcile.ReadSessionState(bytes.NewReader(chain[base].data))
				if err != nil {
					t.Fatalf("cut %d: read full %d: %v", cut, base, err)
				}
				for i := base + 1; i <= cut; i++ {
					d, err := reconcile.ReadStateDelta(bytes.NewReader(chain[i].data))
					if err != nil {
						t.Fatalf("cut %d: read delta %d: %v", cut, i, err)
					}
					if err := st.Apply(d); err != nil {
						t.Fatalf("cut %d: apply delta %d: %v", cut, i, err)
					}
				}
				restored, err := reconcile.RestoreSessionState(g1, g2, st)
				if err != nil {
					t.Fatalf("cut %d: restore: %v", cut, err)
				}
				// Bit-identity of the replayed state: re-snapshotting it
				// yields the exact bytes of the monolithic snapshot taken at
				// the same boundary.
				var again bytes.Buffer
				if err := restored.SnapshotState(&again); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(again.Bytes(), chain[cut].monolithic) {
					t.Fatalf("cut %d: replayed state differs from the monolithic snapshot", cut)
				}
				// And the resumed run finishes bit-identically.
				got, err := restored.Resume(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("cut %d: chain-restored run diverged: %d pairs / %d phases, want %d / %d",
						cut, len(got.Pairs), len(got.Phases), len(want.Pairs), len(want.Phases))
				}
			}

			// A delta applied out of order is refused, not replayed wrongly.
			if len(chain) > 2 && !chain[2].full {
				st, err := reconcile.ReadSessionState(bytes.NewReader(chain[0].data))
				if err != nil {
					t.Fatal(err)
				}
				d, err := reconcile.ReadStateDelta(bytes.NewReader(chain[2].data))
				if err != nil {
					t.Fatal(err)
				}
				if err := st.Apply(d); err == nil {
					t.Fatal("delta 2 applied directly onto the full snapshot (gap undetected)")
				}
			}
		})
	}
}

// TestCheckpointerFullRequired pins the fallback contract: the first write
// must be a full, and a fresh Checkpointer says so with ErrFullRequired.
func TestCheckpointerFullRequired(t *testing.T) {
	g1, g2, seeds := snapshotInstance(t)
	rec, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds))
	if err != nil {
		t.Fatal(err)
	}
	var ckpt reconcile.Checkpointer
	var buf bytes.Buffer
	if err := ckpt.WriteDelta(&buf, rec); !errors.Is(err, reconcile.ErrFullRequired) {
		t.Fatalf("WriteDelta without a base: err = %v, want ErrFullRequired", err)
	}
	if buf.Len() != 0 {
		t.Fatal("failed WriteDelta wrote bytes")
	}
	if err := ckpt.WriteFull(&buf, rec); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := ckpt.WriteDelta(&buf, rec); err != nil {
		t.Fatalf("WriteDelta after a full: %v", err)
	}
}

// TestDeltaCheckpointSizeRatio pins the tentpole's economics on the
// incremental benchmark workload (a converged 10k-node frontier session
// ingesting 20 fresh seeds and re-sweeping): the per-sweep delta checkpoint
// must be at least 5x smaller than the full state snapshot it replaces.
func TestDeltaCheckpointSizeRatio(t *testing.T) {
	r := reconcile.NewRand(99)
	g := reconcile.GeneratePA(r, 10000, 10)
	g1, g2 := reconcile.IndependentCopies(r, g, 0.5, 0.5)
	seeds := reconcile.Seeds(r, reconcile.IdentityPairs(10000), 0.10)
	hold := 20
	early, late := seeds[:len(seeds)-hold], seeds[len(seeds)-hold:]

	rec, err := reconcile.New(g1, g2, reconcile.WithSeeds(early))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.RunUntilStable(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	matchedL := map[reconcile.NodeID]bool{}
	matchedR := map[reconcile.NodeID]bool{}
	for _, p := range rec.Result().Pairs {
		matchedL[p.Left] = true
		matchedR[p.Right] = true
	}
	var fresh []reconcile.Pair
	for _, p := range late {
		if !matchedL[p.Left] && !matchedR[p.Right] {
			fresh = append(fresh, p)
		}
	}
	if len(fresh) == 0 {
		t.Fatal("no fresh seeds survive; instance too saturated")
	}

	var ckpt reconcile.Checkpointer
	var full bytes.Buffer
	if err := ckpt.WriteFull(&full, rec); err != nil {
		t.Fatal(err)
	}
	if err := rec.AddSeeds(fresh); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.RunUntilStable(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	var delta bytes.Buffer
	if err := ckpt.WriteDelta(&delta, rec); err != nil {
		t.Fatal(err)
	}
	var fullAfter bytes.Buffer
	if err := rec.SnapshotState(&fullAfter); err != nil {
		t.Fatal(err)
	}
	if delta.Len() == 0 || fullAfter.Len() == 0 {
		t.Fatal("empty checkpoint bytes")
	}
	if ratio := float64(fullAfter.Len()) / float64(delta.Len()); ratio < 5 {
		t.Fatalf("delta checkpoint only %.1fx smaller than full (%d vs %d bytes), want >= 5x",
			ratio, delta.Len(), fullAfter.Len())
	} else {
		t.Logf("delta %d bytes vs full %d bytes: %.0fx smaller", delta.Len(), fullAfter.Len(), ratio)
	}
}
