package reconcile_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"reflect"
	"testing"

	"github.com/sociograph/reconcile"
)

func snapshotInstance(t testing.TB) (*reconcile.Graph, *reconcile.Graph, []reconcile.Pair) {
	t.Helper()
	r := reconcile.NewRand(301)
	g := reconcile.GeneratePA(r, 600, 6)
	g1, g2 := reconcile.IndependentCopies(r, g, 0.7, 0.8)
	seeds := reconcile.Seeds(r, reconcile.IdentityPairs(600), 0.15)
	return g1, g2, seeds
}

// TestSnapshotRestoreMidRun is the public-API face of the crash-safety
// guarantee: kill a run at a bucket boundary, snapshot, restore in a "new
// process" (nothing shared but the bytes), Resume — and get bit-identical
// output to the run that never stopped.
func TestSnapshotRestoreMidRun(t *testing.T) {
	g1, g2, seeds := snapshotInstance(t)

	ref, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(want.NewPairs) == 0 {
		t.Fatal("reference run found nothing; instance too weak")
	}

	for _, stop := range []int{1, 3, len(want.Phases) - 1} {
		ctx, cancel := context.WithCancel(context.Background())
		events := 0
		rec, err := reconcile.New(g1, g2,
			reconcile.WithSeeds(seeds),
			reconcile.WithProgress(func(reconcile.PhaseEvent) {
				events++
				if events == stop {
					cancel()
				}
			}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rec.Run(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("stop=%d: err = %v, want context.Canceled", stop, err)
		}
		cancel()

		var buf bytes.Buffer
		if err := rec.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := reconcile.Restore(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Resume(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("stop=%d: restored run diverged: %d pairs / %d phases, want %d / %d",
				stop, len(got.Pairs), len(got.Phases), len(want.Pairs), len(want.Phases))
		}
		// Resume on a finished schedule is a no-op.
		again, err := restored.Resume(context.Background())
		if err != nil || !reflect.DeepEqual(want, again) {
			t.Fatalf("stop=%d: second Resume changed the result (err=%v)", stop, err)
		}
	}
}

// TestSnapshotStateSplitFiles exercises the store-shaped API: graphs
// persisted once with WriteGraphBinary, state checkpointed separately, the
// pair restored with RestoreState.
func TestSnapshotStateSplitFiles(t *testing.T) {
	g1, g2, seeds := snapshotInstance(t)
	rec, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := rec.Result()

	var gb1, gb2, sb bytes.Buffer
	if err := reconcile.WriteGraphBinary(&gb1, g1); err != nil {
		t.Fatal(err)
	}
	if err := reconcile.WriteGraphBinary(&gb2, g2); err != nil {
		t.Fatal(err)
	}
	if err := rec.SnapshotState(&sb); err != nil {
		t.Fatal(err)
	}

	rg1, err := reconcile.ReadGraphBinary(bytes.NewReader(gb1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rg2, err := reconcile.ReadGraphBinary(bytes.NewReader(gb2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := reconcile.RestoreState(rg1, rg2, bytes.NewReader(sb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, restored.Result()) {
		t.Fatal("state-only restore lost results")
	}
	if restored.Sweeps() != rec.Sweeps() {
		t.Fatalf("sweeps = %d, want %d", restored.Sweeps(), rec.Sweeps())
	}

	// A shape mismatch is refused up front (content fidelity beyond shape is
	// the store's to guarantee — see RestoreState's contract).
	small := reconcile.FromEdges(3, nil)
	if _, err := reconcile.RestoreState(small, rg2, bytes.NewReader(sb.Bytes())); err == nil {
		t.Fatal("graph of the wrong shape accepted")
	}
}

// TestRestoreOptionRules pins which options a restore accepts: execution
// knobs yes, matching semantics no.
func TestRestoreOptionRules(t *testing.T) {
	g1, g2, seeds := snapshotInstance(t)
	rec, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds))
	if err != nil {
		t.Fatal(err)
	}
	// Converge before snapshotting, so post-restore sweeps find nothing new
	// on any engine and the counts below are comparable.
	want, err := rec.RunUntilStable(context.Background(), 20)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	// Engine switches resume bit-identically (here: after convergence, more
	// sweeps find nothing either way). Restoring as hybrid from this
	// converged hybrid snapshot exercises the regime-preserving mask;
	// switching to the fixed engines exercises cache drop and rebuild.
	for _, engine := range []reconcile.Engine{reconcile.EngineSequential, reconcile.EngineParallel, reconcile.EngineFrontier, reconcile.EngineHybrid} {
		r2, err := reconcile.Restore(bytes.NewReader(snap),
			reconcile.WithEngine(engine), reconcile.WithWorkers(2), reconcile.WithIterations(3))
		if err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		if got := r2.Options().Engine; got != engine {
			t.Fatalf("engine = %v, want %v", got, engine)
		}
		res, err := r2.RunUntilStable(context.Background(), 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Pairs) != len(want.Pairs) {
			t.Fatalf("engine %v: %d pairs after restore, want %d", engine, len(res.Pairs), len(want.Pairs))
		}
	}

	// Progress hooks re-attach.
	events := 0
	r2, err := reconcile.Restore(bytes.NewReader(snap),
		reconcile.WithProgress(func(reconcile.PhaseEvent) { events++ }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("progress hook not re-attached")
	}

	// New seeds ingest exactly like AddSeeds.
	free := -1
	usedL := map[reconcile.NodeID]bool{}
	usedR := map[reconcile.NodeID]bool{}
	for _, p := range want.Pairs {
		usedL[p.Left] = true
		usedR[p.Right] = true
	}
	for i := 0; i < g1.NumNodes() && i < g2.NumNodes(); i++ {
		if !usedL[reconcile.NodeID(i)] && !usedR[reconcile.NodeID(i)] {
			free = i
			break
		}
	}
	if free >= 0 {
		r3, err := reconcile.Restore(bytes.NewReader(snap),
			reconcile.WithSeeds([]reconcile.Pair{{Left: reconcile.NodeID(free), Right: reconcile.NodeID(free)}}))
		if err != nil {
			t.Fatal(err)
		}
		if r3.Len() != len(want.Pairs)+1 {
			t.Fatalf("restore-time seed not ingested: %d links", r3.Len())
		}
	}

	// Matching semantics are locked.
	for name, opt := range map[string]reconcile.Option{
		"threshold": reconcile.WithThreshold(3),
		"scoring":   reconcile.WithScoring(reconcile.ScoreAdamicAdar),
		"ties":      reconcile.WithTieBreak(reconcile.TieLowestID),
		"margin":    reconcile.WithMargin(1),
		"bucketing": reconcile.WithBucketing(false),
		"minexp":    reconcile.WithMinBucketExp(0),
		"maxdeg":    reconcile.WithMaxDegree(7),
	} {
		if _, err := reconcile.Restore(bytes.NewReader(snap), opt); err == nil {
			t.Errorf("restore accepted a %s change", name)
		}
	}
}

// TestRecordedCheckpointOverhead pins the measured cost of the durability
// machinery against BENCH_snapshot.json: the wiring this PR added to the
// session hot path (schedule-position tracking) must cost
// BenchmarkReconcileFrontierIncremental less than 5% versus the PR 2
// baseline recorded in BENCH_engines.json, and the recorded numbers are the
// proof. Re-record both files on the same hardware when re-measuring.
func TestRecordedCheckpointOverhead(t *testing.T) {
	raw, err := os.ReadFile("BENCH_snapshot.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		MachineryOverhead struct {
			BaselineNsPerOp int     `json:"baseline_ns_per_op"`
			WithSubsystemNs int     `json:"with_subsystem_ns_per_op"`
			OverheadPct     float64 `json:"overhead_pct"`
		} `json:"machinery_overhead"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	m := doc.MachineryOverhead
	if m.BaselineNsPerOp <= 0 || m.WithSubsystemNs <= 0 {
		t.Fatal("BENCH_snapshot.json missing machinery_overhead measurements")
	}
	pct := (float64(m.WithSubsystemNs)/float64(m.BaselineNsPerOp) - 1) * 100
	if pct >= 5.0 {
		t.Fatalf("recorded checkpoint machinery overhead %.2f%% (baseline %d ns, now %d ns) exceeds the 5%% budget",
			pct, m.BaselineNsPerOp, m.WithSubsystemNs)
	}
	if diff := pct - m.OverheadPct; diff > 0.01 || diff < -0.01 {
		t.Fatalf("recorded overhead_pct %.2f disagrees with the recorded measurements (%.2f)", m.OverheadPct, pct)
	}
}
