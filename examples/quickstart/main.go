// Quickstart: the paper's model end to end in thirty lines.
//
// A "true" social network is generated, two partial copies are derived by
// independent edge deletion (each edge survives a copy with probability
// s = 0.6), 10% of the users link their accounts across the two services,
// and User-Matching recovers the rest.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/sociograph/reconcile"
)

func main() {
	r := reconcile.NewRand(42)

	// The hidden "real" network: preferential attachment, 10k users.
	truthGraph := reconcile.GeneratePA(r, 10000, 12)
	fmt.Printf("underlying network: %v\n", reconcile.ComputeStats(truthGraph))

	// Two online services observe partial copies of it.
	g1, g2 := reconcile.IndependentCopies(r, truthGraph, 0.6, 0.6)
	fmt.Printf("copy 1: %v\n", reconcile.ComputeStats(g1))
	fmt.Printf("copy 2: %v\n", reconcile.ComputeStats(g2))

	// A few users explicitly link their accounts.
	truth := reconcile.IdentityPairs(truthGraph.NumNodes())
	seeds := reconcile.Seeds(r, truth, 0.10)
	fmt.Printf("seed links: %d\n", len(seeds))

	// Reconcile: build a long-lived matcher over the two networks and run
	// it under a context, watching each bucket pass complete live.
	rec, err := reconcile.New(g1, g2,
		reconcile.WithSeeds(seeds),
		reconcile.WithThreshold(2),
		reconcile.WithIterations(2),
		reconcile.WithProgress(func(e reconcile.PhaseEvent) {
			fmt.Printf("  sweep %d, bucket %d/%d (degree >= %-4d): +%d links (total %d)\n",
				e.Iteration, e.Bucket, e.Buckets, e.MinDegree, e.Matched, e.TotalLinks)
		}))
	if err != nil {
		log.Fatal(err)
	}
	res, err := rec.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// Score against the ground truth.
	counts := reconcile.Evaluate(res.Pairs, res.Seeds, reconcile.IdentityTruth(truthGraph.NumNodes()))
	recall := reconcile.LinkedRecall(res.Pairs, reconcile.IdentityTruth(truthGraph.NumNodes()), g1, g2)
	fmt.Printf("discovered %d links: %d correct, %d wrong (precision %.2f%%, recall %.2f%%)\n",
		len(res.NewPairs), counts.Good, counts.Bad, 100*counts.Precision(), 100*recall)
}
