// De-anonymization: the Narayanan–Shmatikov setting the paper's related
// work discusses, driven by User-Matching.
//
// A provider releases an "anonymized" copy of its network: node identities
// replaced by random numbers, 25% of edges withheld. The attacker holds a
// crawl of a different service covering the same population (another 25% of
// edges missing) and knows the identities of a handful of users on both
// (public figures with verified accounts). Structure alone re-identifies
// most of the remaining users — the privacy point of the paper's algorithm,
// and the reason the paper frames 72%-precision de-anonymization as a
// serious violation.
//
// Run with: go run ./examples/deanonymize
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/sociograph/reconcile"
)

func main() {
	r := reconcile.NewRand(7)

	// The population's real social graph.
	world := reconcile.GeneratePA(r, 8000, 10)
	n := world.NumNodes()

	// The attacker's crawl: a partial view with original identities.
	crawl, release := reconcile.IndependentCopies(r, world, 0.75, 0.75)

	// The provider's release: partial view, identities permuted.
	permInts := r.Perm(n)
	perm := make([]reconcile.NodeID, n)
	for i, p := range permInts {
		perm[i] = reconcile.NodeID(p)
	}
	anonymized := reconcile.Relabel(release, perm)

	// Ground truth: crawl node v corresponds to anonymized node perm[v].
	truthPairs := make([]reconcile.Pair, n)
	for v := 0; v < n; v++ {
		truthPairs[v] = reconcile.Pair{Left: reconcile.NodeID(v), Right: perm[v]}
	}

	// The attacker knows 5% of the identities (celebrities, self-revealed).
	known := reconcile.Seeds(r, truthPairs, 0.05)
	fmt.Printf("released graph: %v\n", reconcile.ComputeStats(anonymized))
	fmt.Printf("attacker knowledge: %d of %d identities (%.1f%%)\n", len(known), n, 100*float64(len(known))/float64(n))

	rec, err := reconcile.New(crawl, anonymized,
		reconcile.WithSeeds(known),
		reconcile.WithThreshold(3)) // de-anonymization wants high confidence
	if err != nil {
		log.Fatal(err)
	}
	res, err := rec.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	counts := reconcile.Evaluate(res.Pairs, res.Seeds, reconcile.TruthFromPairs(truthPairs))
	fmt.Printf("re-identified %d users: %d correct, %d wrong (precision %.2f%%)\n",
		len(res.NewPairs), counts.Good, counts.Bad, 100*counts.Precision())
	fmt.Printf("total identity coverage: %.1f%% of the released network\n",
		100*float64(res.Seeds+counts.Good)/float64(n))
}
