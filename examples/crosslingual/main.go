// Cross-lingual article matching: the paper's hardest scenario (Table 5,
// bottom), where the two graphs are not copies of any common parent.
//
// Two "language editions" grow over a shared concept space: each covers a
// different subset of the concepts, keeps a different subset of the links,
// and adds its own language-specific articles and link noise. A partial,
// slightly noisy set of curated cross-language links seeds the matcher —
// exactly how the paper uses 10% of Wikipedia's inter-language links and
// nearly triples them.
//
// Run with: go run ./examples/crosslingual
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/sociograph/reconcile"
)

func main() {
	r := reconcile.NewRand(3)

	// Shared concept space with heavy-tailed link structure.
	const nConcepts = 12000
	backbone := reconcile.GeneratePA(r, nConcepts, 8)

	// Each edition covers part of the concept space with its own numbering.
	buildEdition := func(coverage, keepEdge float64) (g *reconcile.Graph, ids []reconcile.NodeID, in []bool) {
		in = make([]bool, nConcepts)
		ids = make([]reconcile.NodeID, nConcepts)
		count := 0
		for c := 0; c < nConcepts; c++ {
			if r.Float64() < coverage {
				in[c] = true
				ids[c] = reconcile.NodeID(count)
				count++
			}
		}
		b := reconcile.NewBuilder(count, backbone.NumEdges())
		backbone.Edges(func(e reconcile.Edge) bool {
			if in[e.U] && in[e.V] && r.Float64() < keepEdge {
				b.AddEdge(ids[e.U], ids[e.V])
			}
			return true
		})
		// Edition-specific link noise (local "see also" links etc.).
		for i := 0; i < count/2; i++ {
			b.AddEdge(reconcile.NodeID(r.IntN(count)), reconcile.NodeID(r.IntN(count)))
		}
		return b.Build(), ids, in
	}
	french, frID, inFR := buildEdition(0.90, 0.75)
	german, deID, inDE := buildEdition(0.62, 0.70)

	// Ground truth: concepts present in both editions.
	var truthPairs []reconcile.Pair
	for c := 0; c < nConcepts; c++ {
		if inFR[c] && inDE[c] {
			truthPairs = append(truthPairs, reconcile.Pair{Left: frID[c], Right: deID[c]})
		}
	}
	fmt.Printf("french edition: %v\n", reconcile.ComputeStats(french))
	fmt.Printf("german edition: %v\n", reconcile.ComputeStats(german))
	fmt.Printf("shared concepts: %d\n", len(truthPairs))

	// Curated cross-language links cover a minority; 10% seed the matcher.
	curated := reconcile.Seeds(r, truthPairs, 0.60)
	seeds := reconcile.Seeds(r, curated, 0.10)
	fmt.Printf("curated links: %d, used as seeds: %d\n", len(curated), len(seeds))

	rec, err := reconcile.New(french, german,
		reconcile.WithSeeds(seeds),
		reconcile.WithThreshold(3))
	if err != nil {
		log.Fatal(err)
	}
	res, err := rec.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	counts := reconcile.Evaluate(res.Pairs, res.Seeds, reconcile.TruthFromPairs(truthPairs))
	fmt.Printf("matched %d article pairs: %d correct, %d wrong (error rate %.1f%%)\n",
		len(res.NewPairs), counts.Good, counts.Bad, 100*counts.ErrorRate())
	fmt.Printf("link set grew %.1fx over the seeds\n", float64(len(res.Pairs))/float64(len(seeds)))
}
