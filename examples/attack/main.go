// Attack robustness: the paper's adversarial experiment.
//
// An attacker clones every user on both networks: each clone sends friend
// requests to the victim's real friends, half of which are accepted — a
// profile that is locally almost indistinguishable from the victim, built
// to defeat feature-based matchers. User-Matching's mutual-best rule over
// similarity witnesses still aligns the real accounts with very few errors;
// the attacker's clones mostly align with each other, never stealing a real
// identity.
//
// Run with: go run ./examples/attack
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/sociograph/reconcile"
)

func main() {
	r := reconcile.NewRand(11)

	world := reconcile.GeneratePA(r, 6000, 12)
	n := world.NumNodes()
	g1, g2 := reconcile.IndependentCopies(r, world, 0.75, 0.75)

	// The attack hits both services independently.
	g1 = reconcile.SybilAttack(r, g1, 0.5)
	g2 = reconcile.SybilAttack(r, g2, 0.5)
	fmt.Printf("network 1 under attack: %v\n", reconcile.ComputeStats(g1))
	fmt.Printf("network 2 under attack: %v\n", reconcile.ComputeStats(g2))

	seeds := reconcile.Seeds(r, reconcile.IdentityPairs(n), 0.10)
	rec, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds))
	if err != nil {
		log.Fatal(err)
	}
	res, err := rec.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// Score: clone of node v carries ID n+v on both sides.
	var good, bad, cloneAligned int
	for _, p := range res.NewPairs {
		switch {
		case int(p.Left) < n && p.Left == p.Right:
			good++
		case int(p.Left) >= n && p.Left == p.Right:
			cloneAligned++
		default:
			bad++
		}
	}
	fmt.Printf("real users identified: %d of %d possible (%d seeds)\n", good, n, len(seeds))
	fmt.Printf("misidentifications: %d (%.3f%% of real matches)\n", bad, 100*float64(bad)/float64(good+bad))
	fmt.Printf("attacker clones aligned to each other (harmless): %d\n", cloneAligned)
}
