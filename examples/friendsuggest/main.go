// Friend suggestion: the application the paper's introduction motivates —
// "having information about connections of a user across multiple networks
// would make it easier to construct tools such as 'friend suggestion'".
//
// After reconciling the two networks, every matched user can be offered the
// friends their counterpart has on the other network but they lack here.
// Because the two copies are partial views of the same real network, these
// cross-network suggestions are (in this synthetic world) guaranteed-real
// relationships — the example measures how many of the true missing edges
// the reconciliation recovers.
//
// Run with: go run ./examples/friendsuggest
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/sociograph/reconcile"
)

func main() {
	r := reconcile.NewRand(5)

	world := reconcile.GeneratePA(r, 8000, 10)
	g1, g2 := reconcile.IndependentCopies(r, world, 0.6, 0.6)
	n := world.NumNodes()

	seeds := reconcile.Seeds(r, reconcile.IdentityPairs(n), 0.10)
	rec, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds))
	if err != nil {
		log.Fatal(err)
	}
	res, err := rec.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconciled %d of %d users\n", len(res.Pairs), n)

	// Cross-network friend suggestion: for user v on network 1 matched to
	// v' on network 2, suggest the matched-back counterparts of v''s
	// network-2 friends that v doesn't already have on network 1.
	match1 := make(map[reconcile.NodeID]reconcile.NodeID, len(res.Pairs)) // G1 -> G2
	match2 := make(map[reconcile.NodeID]reconcile.NodeID, len(res.Pairs)) // G2 -> G1
	for _, p := range res.Pairs {
		match1[p.Left] = p.Right
		match2[p.Right] = p.Left
	}
	var suggestions, realSuggestions int64
	for v := 0; v < n; v++ {
		v2, ok := match1[reconcile.NodeID(v)]
		if !ok {
			continue
		}
		for _, w2 := range g2.Neighbors(v2) {
			w1, ok := match2[w2]
			if !ok || w1 == reconcile.NodeID(v) {
				continue
			}
			if g1.HasEdge(reconcile.NodeID(v), w1) {
				continue // already friends on network 1
			}
			suggestions++
			// In this synthetic world we can check the suggestion against
			// the real underlying network.
			if world.HasEdge(reconcile.NodeID(v), w1) {
				realSuggestions++
			}
		}
	}
	missing := 2 * (world.NumEdges() - g1.NumEdges()) // directed count of absent friendships
	fmt.Printf("cross-network suggestions: %d, of which %d are real relationships (%.2f%%)\n",
		suggestions, realSuggestions, 100*float64(realSuggestions)/float64(suggestions))
	fmt.Printf("coverage: %.1f%% of the %d friendships missing from network 1 recovered\n",
		100*float64(realSuggestions)/float64(missing), missing)
}
