package reconcile_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/sociograph/reconcile"
)

// TestQuickstart is the end-to-end flow of the README through the public
// API only: generate a network, derive two partial copies, seed, reconcile,
// evaluate.
func TestQuickstart(t *testing.T) {
	r := reconcile.NewRand(42)
	g := reconcile.GeneratePA(r, 3000, 10)
	g1, g2 := reconcile.IndependentCopies(r, g, 0.7, 0.7)
	truth := reconcile.IdentityPairs(g.NumNodes())
	seeds := reconcile.Seeds(r, truth, 0.10)

	res, err := reconcile.Reconcile(g1, g2, seeds, reconcile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := reconcile.Evaluate(res.Pairs, res.Seeds, reconcile.IdentityTruth(g.NumNodes()))
	if c.Precision() < 0.98 {
		t.Errorf("precision %.4f", c.Precision())
	}
	recall := reconcile.LinkedRecall(res.Pairs, reconcile.IdentityTruth(g.NumNodes()), g1, g2)
	if recall < 0.80 {
		t.Errorf("recall %.4f", recall)
	}
}

func TestFacadeEnginesAgree(t *testing.T) {
	r := reconcile.NewRand(7)
	g := reconcile.GeneratePA(r, 500, 6)
	g1, g2 := reconcile.IndependentCopies(r, g, 0.8, 0.8)
	seeds := reconcile.Seeds(r, reconcile.IdentityPairs(g.NumNodes()), 0.15)
	opts := reconcile.DefaultOptions()

	direct, err := reconcile.Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := reconcile.ReconcileMapReduce(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	set := map[reconcile.Pair]bool{}
	for _, p := range direct.Pairs {
		set[p] = true
	}
	if len(mr.Pairs) != len(direct.Pairs) {
		t.Fatalf("MapReduce found %d pairs, direct %d", len(mr.Pairs), len(direct.Pairs))
	}
	for _, p := range mr.Pairs {
		if !set[p] {
			t.Fatalf("MapReduce pair %v not found by direct engine", p)
		}
	}
}

func TestFacadeGraphConstruction(t *testing.T) {
	b := reconcile.NewBuilder(3, 2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	if g.NumEdges() != 2 || g.Degree(1) != 2 {
		t.Fatalf("edges=%d deg(1)=%d", g.NumEdges(), g.Degree(1))
	}
	h := reconcile.FromEdges(3, []reconcile.Edge{{U: 0, V: 1}})
	if h.NumEdges() != 1 {
		t.Fatal("FromEdges failed")
	}
	x := reconcile.Intersection(g, reconcile.FromEdges(3, []reconcile.Edge{{U: 0, V: 1}, {U: 0, V: 2}}))
	if x.NumEdges() != 1 || !x.HasEdge(0, 1) {
		t.Fatal("Intersection failed")
	}
	s := reconcile.ComputeStats(g)
	if s.Nodes != 3 || s.Edges != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestFacadeIO(t *testing.T) {
	g := reconcile.FromEdges(3, []reconcile.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	var buf bytes.Buffer
	if err := reconcile.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, ids, err := reconcile.ReadEdgeList(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 || len(ids) != 3 {
		t.Fatalf("round trip: %d edges, %d ids", h.NumEdges(), len(ids))
	}
}

func TestFacadeGenerators(t *testing.T) {
	r := reconcile.NewRand(1)
	if g := reconcile.GenerateER(r, 100, 0.1); g.NumNodes() != 100 {
		t.Fatal("ER")
	}
	if g := reconcile.GenerateWattsStrogatz(r, 100, 2, 0.1); g.NumNodes() != 100 {
		t.Fatal("WS")
	}
	if g := reconcile.GenerateRMAT(r, reconcile.DefaultRMAT(8)); g.NumNodes() == 0 {
		t.Fatal("RMAT")
	}
	an := reconcile.GenerateAffiliation(r, reconcile.DefaultAffiliation(200))
	g1, g2 := reconcile.CommunityCopies(r, an, 0.25, 150)
	if g1.NumNodes() != 200 || g2.NumNodes() != 200 {
		t.Fatal("affiliation copies")
	}
	base := reconcile.GeneratePA(r, 300, 5)
	c1, c2 := reconcile.CascadeCopies(r, base, 0.3)
	if c1.NumNodes() != 300 || c2.NumNodes() != 300 {
		t.Fatal("cascade copies")
	}
	a := reconcile.SybilAttack(r, base, 0.5)
	if a.NumNodes() != 600 {
		t.Fatal("attack")
	}
}

func TestFacadeTimeSplitAndRelabel(t *testing.T) {
	edges := []reconcile.TemporalEdge{{U: 0, V: 1, Time: 2}, {U: 1, V: 2, Time: 3}}
	g1, g2 := reconcile.TimeSplit(3, edges, func(t int) bool { return t%2 == 0 })
	if !g1.HasEdge(0, 1) || !g2.HasEdge(1, 2) {
		t.Fatal("TimeSplit")
	}
	g := reconcile.FromEdges(3, []reconcile.Edge{{U: 0, V: 1}})
	h := reconcile.Relabel(g, []reconcile.NodeID{2, 1, 0})
	if !h.HasEdge(2, 1) {
		t.Fatal("Relabel")
	}
}

func TestFacadeDegreeCurveAndTruth(t *testing.T) {
	r := reconcile.NewRand(5)
	g := reconcile.GeneratePA(r, 400, 5)
	g1, g2 := reconcile.IndependentCopies(r, g, 0.8, 0.8)
	seeds := reconcile.Seeds(r, reconcile.IdentityPairs(400), 0.2)
	res, err := reconcile.Reconcile(g1, g2, seeds, reconcile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	curve := reconcile.DegreeCurve(g1, g2, res.Pairs, res.Seeds, reconcile.IdentityTruth(400))
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	tr := reconcile.TruthFromPairs([]reconcile.Pair{{Left: 1, Right: 2}})
	if tr[1] != 2 {
		t.Fatal("TruthFromPairs")
	}
}

func TestFacadeErrors(t *testing.T) {
	g := reconcile.FromEdges(2, nil)
	if _, err := reconcile.Reconcile(g, g, nil, reconcile.Options{}); err == nil {
		t.Error("zero options accepted")
	}
	if _, err := reconcile.ReconcileMapReduce(g, g, []reconcile.Pair{{Left: 5, Right: 0}}, reconcile.DefaultOptions()); err == nil {
		t.Error("bad seed accepted")
	}
}
