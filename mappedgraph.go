package reconcile

import (
	"bufio"
	"io"
	"os"

	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/snapshot"
)

// Memory-mapped graphs: restore cost for a big job is dominated by
// re-materializing the immutable CSR arrays on the heap, N times for N jobs
// over the same networks. WriteGraphMapped lays the arrays out fixed-width
// and checksummed so OpenGraphMapped can serve them straight from a
// read-only file mapping: opening validates the whole image, then restore
// becomes page-ins, and every process mapping the file shares one
// page-cache copy. A mapped graph is bit-identical to the decoded one and
// flows everywhere a *Graph does; the difference is the explicit Close
// lifetime. On platforms without mmap support (or builds with the
// reconcile_nommap tag) the same API transparently falls back to a
// validated heap copy.

// MmapSupported reports whether this build serves OpenGraphMapped from a
// real file mapping. When false (no syscall.Mmap, unknown byte order, or
// the reconcile_nommap build tag), OpenGraphMapped still works — it decodes
// into a private heap copy with identical semantics.
const MmapSupported = graph.MmapSupported

// ErrGraphClosed is returned by MappedGraph.Acquire once Close has begun.
var ErrGraphClosed = graph.ErrMappedClosed

// MappedGraph is a graph with an explicit lifetime: its arrays may live in
// a read-only file mapping, so the graph (and every slice it hands out) is
// valid only until Close. Readers that can overlap a Close — a job run
// racing a delete — bracket their use with Acquire/Release; Close fails all
// future Acquires, waits for outstanding ones to drain, then unmaps. A
// heap-backed instance (legacy file, or !MmapSupported) honors the same
// protocol with nothing to unmap.
type MappedGraph struct {
	m *graph.Mapped
}

// OpenGraphMapped opens a graph file for mapped reading. Files written by
// WriteGraphMapped are served from the mapping (or the heap fallback);
// legacy files written by WriteGraphBinary are transparently decoded onto
// the heap behind the same lifetime API, so a store can flip -mmap on over
// an existing data directory. Corrupt, truncated, or structurally invalid
// files return an error — the whole image is validated before any graph is
// handed out.
func OpenGraphMapped(path string) (*MappedGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if peek, err := br.Peek(len(graph.MappableMagic)); err == nil && string(peek) == graph.MappableMagic {
		// Mappable container: reopen through the platform mmap path (it
		// needs the path, not the stream).
		m, err := graph.OpenMapped(path)
		if err != nil {
			return nil, err
		}
		return &MappedGraph{m: m}, nil
	}
	g, err := snapshot.ReadGraph(br)
	if err != nil {
		return nil, err
	}
	return &MappedGraph{m: graph.NewHeapMapped(g)}, nil
}

// WriteGraphMapped writes g in the mappable container format OpenGraphMapped
// serves zero-copy. ReadGraphBinary also reads this format, so either flag
// setting can read files written under the other.
func WriteGraphMapped(w io.Writer, g *Graph) error { return graph.EncodeMappable(w, g) }

// Graph returns the mapped graph, or nil once Close has begun. The result
// is valid only until Close; use Acquire/Release to pin it across one.
func (m *MappedGraph) Graph() *Graph { return m.m.Graph() }

// Mapped reports whether this instance is backed by a live file mapping
// (false for heap fallbacks and legacy-format files).
func (m *MappedGraph) Mapped() bool { return !m.m.Heap() }

// Acquire pins the mapping and returns its graph; pair every success with
// exactly one Release. After Close has begun it fails with ErrGraphClosed.
func (m *MappedGraph) Acquire() (*Graph, error) { return m.m.Acquire() }

// Release undoes one Acquire.
func (m *MappedGraph) Release() { m.m.Release() }

// Close fails all future Acquires, waits for outstanding ones to drain,
// and unmaps. Idempotent. Tie it to the owning job's purge or the process
// shutdown path — never close a mapping a run may still be scanning
// (Acquire/Release makes that impossible to get wrong: Close waits).
func (m *MappedGraph) Close() error { return m.m.Close() }

// OpenMappings returns the number of graph file mappings this process
// currently holds open: incremented when OpenGraphMapped serves a real
// mapping, decremented by Close. Heap fallbacks are not counted. cmd/serve
// exports it as the reconcile_graph_open_mappings gauge.
func OpenMappings() int { return graph.OpenMappings() }
