package reconcile_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/sociograph/reconcile"
)

// reconcilerInstance builds a deterministic matching instance for the
// Reconciler tests.
func reconcilerInstance(seed uint64, n int) (g1, g2 *reconcile.Graph, seeds []reconcile.Pair) {
	r := reconcile.NewRand(seed)
	g := reconcile.GeneratePA(r, n, 8)
	g1, g2 = reconcile.IndependentCopies(r, g, 0.8, 0.8)
	seeds = reconcile.Seeds(r, reconcile.IdentityPairs(n), 0.15)
	return g1, g2, seeds
}

// Constructing with no options must run with exactly DefaultOptions.
func TestNewDefaultsEqualDefaultOptions(t *testing.T) {
	g1, g2, _ := reconcilerInstance(1, 50)
	rec, err := reconcile.New(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rec.Options(), reconcile.DefaultOptions(); got != want {
		t.Fatalf("Options() = %+v, want DefaultOptions %+v", got, want)
	}
}

// Every functional option must land on the corresponding Options field.
func TestFunctionalOptionsSetFields(t *testing.T) {
	g1, g2, _ := reconcilerInstance(2, 50)
	rec, err := reconcile.New(g1, g2,
		reconcile.WithThreshold(3),
		reconcile.WithIterations(4),
		reconcile.WithEngine(reconcile.EngineSequential),
		reconcile.WithScoring(reconcile.ScoreAdamicAdar),
		reconcile.WithTieBreak(reconcile.TieLowestID),
		reconcile.WithWorkers(5),
		reconcile.WithMargin(2),
		reconcile.WithBucketing(false),
		reconcile.WithMinBucketExp(0),
		reconcile.WithMaxDegree(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := reconcile.Options{
		Threshold:        3,
		Iterations:       4,
		Engine:           reconcile.EngineSequential,
		Scoring:          reconcile.ScoreAdamicAdar,
		Ties:             reconcile.TieLowestID,
		Workers:          5,
		MinMargin:        2,
		DisableBucketing: true,
		MinBucketExp:     0,
		MaxDegree:        64,
	}
	if got := rec.Options(); got != want {
		t.Fatalf("Options() = %+v, want %+v", got, want)
	}

	// WithOptions bridges a legacy struct; later options refine it.
	legacy := reconcile.DefaultOptions()
	legacy.Threshold = 7
	rec, err = reconcile.New(g1, g2,
		reconcile.WithOptions(legacy),
		reconcile.WithIterations(9))
	if err != nil {
		t.Fatal(err)
	}
	legacy.Iterations = 9
	if got := rec.Options(); got != legacy {
		t.Fatalf("Options() = %+v, want %+v", got, legacy)
	}
}

func TestNewValidation(t *testing.T) {
	g1, g2, seeds := reconcilerInstance(3, 50)
	if _, err := reconcile.New(nil, g2); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := reconcile.New(g1, g2, reconcile.WithThreshold(0)); err == nil {
		t.Error("zero threshold accepted")
	}
	bad := append([]reconcile.Pair{}, seeds...)
	bad = append(bad, reconcile.Pair{Left: 0, Right: 9999})
	if _, err := reconcile.New(g1, g2, reconcile.WithSeeds(bad)); err == nil {
		t.Error("out-of-range seed accepted")
	}
}

// The deprecated free function must produce results byte-identical to the
// new API, for the default and for a customized configuration.
func TestDeprecatedWrapperEquivalence(t *testing.T) {
	g1, g2, seeds := reconcilerInstance(4, 600)
	cases := []struct {
		name    string
		opts    reconcile.Options
		newOpts []reconcile.Option
	}{
		{
			name:    "defaults",
			opts:    reconcile.DefaultOptions(),
			newOpts: nil,
		},
		{
			name: "customized",
			opts: func() reconcile.Options {
				o := reconcile.DefaultOptions()
				o.Threshold = 3
				o.Iterations = 1
				o.Engine = reconcile.EngineSequential
				o.Ties = reconcile.TieLowestID
				o.Scoring = reconcile.ScoreAdamicAdar
				return o
			}(),
			newOpts: []reconcile.Option{
				reconcile.WithThreshold(3),
				reconcile.WithIterations(1),
				reconcile.WithEngine(reconcile.EngineSequential),
				reconcile.WithTieBreak(reconcile.TieLowestID),
				reconcile.WithScoring(reconcile.ScoreAdamicAdar),
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old, err := reconcile.Reconcile(g1, g2, seeds, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := reconcile.New(g1, g2, append([]reconcile.Option{reconcile.WithSeeds(seeds)}, tc.newOpts...)...)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := rec.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(old, fresh) {
				t.Fatalf("results differ:\nold   %d pairs, %d phases\nnew   %d pairs, %d phases",
					len(old.Pairs), len(old.Phases), len(fresh.Pairs), len(fresh.Phases))
			}
			if len(fresh.NewPairs) == 0 {
				t.Fatal("instance found nothing; equivalence is vacuous")
			}
		})
	}
}

// An already-cancelled context returns promptly with the seeds-only partial
// Result; cancelling from inside the progress hook stops at the next bucket
// boundary, and the Reconciler stays usable and catches up afterwards.
func TestRunCancellation(t *testing.T) {
	g1, g2, seeds := reconcilerInstance(5, 600)

	// Pre-cancelled: no bucket runs at all.
	rec, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := rec.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Pairs) != len(seeds) || len(res.Phases) != 0 {
		t.Fatalf("partial result: %d pairs, %d phases; want seeds only", len(res.Pairs), len(res.Phases))
	}

	// Mid-run: the progress hook cancels after the first bucket pass.
	events := 0
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	rec2, err := reconcile.New(g1, g2,
		reconcile.WithSeeds(seeds),
		reconcile.WithProgress(func(e reconcile.PhaseEvent) {
			events++
			cancel2()
		}))
	if err != nil {
		t.Fatal(err)
	}
	partial, err := rec2.Run(ctx2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if events != 1 || len(partial.Phases) != 1 {
		t.Fatalf("run continued past the cancelled boundary: %d events, %d phases", events, len(partial.Phases))
	}

	// The instance is still valid: finishing the run reaches the same link
	// set as an uninterrupted batch (the algorithm is monotone).
	full, err := reconcile.Reconcile(g1, g2, seeds, reconcile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := rec2.RunUntilStable(context.Background(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Pairs) < len(full.Pairs) {
		t.Fatalf("resumed run found %d links, batch %d", len(resumed.Pairs), len(full.Pairs))
	}
}

// AddSeeds between runs: duplicates are no-ops, conflicts are errors, and
// ingested links expand on the next run.
func TestReconcilerAddSeeds(t *testing.T) {
	g1, g2, seeds := reconcilerInstance(6, 600)
	half := len(seeds) / 2

	rec, err := reconcile.New(g1, g2, reconcile.WithSeeds(seeds[:half]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.RunUntilStable(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	before := rec.Len()

	// Exact duplicate of a known seed is ignored.
	if err := rec.AddSeeds(seeds[:1]); err != nil {
		t.Fatalf("duplicate seed rejected: %v", err)
	}
	if rec.Len() != before {
		t.Fatalf("duplicate seed changed the link count: %d -> %d", before, rec.Len())
	}
	// A seed conflicting with an existing link is an error.
	conflict := reconcile.Pair{Left: seeds[0].Left, Right: seeds[1].Right}
	if err := rec.AddSeeds([]reconcile.Pair{conflict}); err == nil {
		t.Fatal("conflicting seed accepted")
	}

	// Ingest the second half (skipping conflicts with discovered links) and
	// catch up to at least 90% of the one-shot run, as the Session did.
	for _, s := range seeds[half:] {
		_ = rec.AddSeeds([]reconcile.Pair{s})
	}
	if _, err := rec.RunUntilStable(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	batch, err := reconcile.Reconcile(g1, g2, seeds, reconcile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() < len(batch.Pairs)*90/100 {
		t.Fatalf("incremental reconciler found %d links, batch %d", rec.Len(), len(batch.Pairs))
	}
}

// Progress events must agree 1:1 with the Phases recorded in the Result.
func TestWithProgressMatchesPhases(t *testing.T) {
	g1, g2, seeds := reconcilerInstance(7, 400)
	var events []reconcile.PhaseEvent
	rec, err := reconcile.New(g1, g2,
		reconcile.WithSeeds(seeds),
		reconcile.WithProgress(func(e reconcile.PhaseEvent) { events = append(events, e) }))
	if err != nil {
		t.Fatal(err)
	}
	res, err := rec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(res.Phases) {
		t.Fatalf("%d events, %d phases", len(events), len(res.Phases))
	}
	for i, e := range events {
		ph := res.Phases[i]
		if e.Iteration != ph.Iteration || e.MinDegree != ph.MinDegree ||
			e.Matched != ph.Matched || e.TotalLinks != ph.TotalL {
			t.Fatalf("event %d = %+v disagrees with phase %+v", i, e, ph)
		}
		if e.Bucket < 1 || e.Bucket > e.Buckets {
			t.Fatalf("event %d: bucket %d of %d", i, e.Bucket, e.Buckets)
		}
	}
}
