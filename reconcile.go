// Package reconcile implements the social-network reconciliation algorithm
// of Korula & Lattanzi, "An efficient reconciliation algorithm for social
// networks" (PVLDB 7(5), 2014), together with the network models, copy
// models and evaluation tooling of the paper.
//
// Given two partial views G1, G2 of an unknown social network and a small
// set of trusted cross-network identity links, the matcher expands the links
// into an identification of a large fraction of the users, by iteratively
// linking mutual-best pairs under the similarity-witness score with a
// degree-bucketing schedule (the paper's User-Matching algorithm).
//
// The primary entry point is the Reconciler, built with New and functional
// options:
//
//	rec, err := reconcile.New(g1, g2,
//	    reconcile.WithSeeds(seeds),
//	    reconcile.WithThreshold(2),
//	    reconcile.WithProgress(func(e reconcile.PhaseEvent) { ... }))
//	res, err := rec.Run(ctx)
//
// It supports context cancellation (checked at bucket-phase boundaries),
// incremental seed ingestion (AddSeeds between runs) and live progress
// events. The free functions Reconcile, ReconcileMapReduce and NewSession
// predate it and remain as thin deprecated wrappers.
//
// The package is a facade over the implementation in internal/...; it is the
// entire supported API surface:
//
//   - graphs: Graph, Builder, NewBuilder, FromEdges, ReadEdgeList,
//     WriteEdgeList, WriteGraphBinary, ReadGraphBinary, Relabel,
//     Intersection, ComputeStats;
//   - randomness: Rand, NewRand (all generators are deterministic in the
//     seed);
//   - network models: GenerateER, GeneratePA, GenerateRMAT,
//     GenerateWattsStrogatz, GenerateAffiliation;
//   - copy models: IndependentCopies, CascadeCopies, CommunityCopies,
//     TimeSplit, SybilAttack, Seeds;
//   - matching: New, Reconciler, Option (WithThreshold, WithIterations,
//     WithEngine, WithScoring, WithTieBreak, WithWorkers, WithMargin,
//     WithBucketing, WithSeeds, WithProgress, ...), Result, PhaseEvent;
//   - durability: Reconciler.Snapshot/SnapshotState, Restore, RestoreState,
//     Reconciler.Resume — serialize a session mid-run and finish it later,
//     bit-identically to an uninterrupted run (see DESIGN.md "Durability");
//   - evaluation: Truth, IdentityTruth, Evaluate, Counts, LinkedRecall,
//     DegreeCurve.
//
// See examples/ for runnable end-to-end programs, cmd/serve for the HTTP
// service, and DESIGN.md for the mapping from the paper's sections to the
// implementation.
package reconcile

import (
	"context"
	"io"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/eval"
	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/mapreduce"
	"github.com/sociograph/reconcile/internal/sampling"
	"github.com/sociograph/reconcile/internal/xrand"
)

// Graph is an immutable undirected graph in compressed sparse row form.
type Graph = graph.Graph

// NodeID identifies a node; IDs are dense (0..n-1).
type NodeID = graph.NodeID

// Edge is an undirected edge.
type Edge = graph.Edge

// Pair links a node of G1 (Left) to a node of G2 (Right): a trusted seed
// link on input, an identification on output.
type Pair = graph.Pair

// Builder accumulates edges and produces an immutable Graph.
type Builder = graph.Builder

// Stats summarizes a graph.
type Stats = graph.Stats

// Rand is the deterministic random stream all generators draw from.
type Rand = xrand.Rand

// TemporalEdge is an undirected edge observed at an integer time.
type TemporalEdge = sampling.TemporalEdge

// AffiliationNetwork is a bipartite user/interest structure whose folded
// projection is a social graph of overlapping communities.
type AffiliationNetwork = gen.AffiliationNetwork

// Options configures the matching algorithm; see DefaultOptions.
//
// Deprecated: new code should configure a Reconciler with functional options
// (New, WithThreshold, ...). Options remains the bridge type: WithOptions
// converts an existing struct, and Reconciler.Options reports the validated
// configuration.
type Options = core.Options

// Result is the matcher's output: all links (seeds first), the discovered
// links, and per-phase statistics.
type Result = core.Result

// PhaseRetainSweeps is how many of the most recent sweeps keep per-bucket
// entries in Result.Phases; older sweeps are folded into Result.Totals so a
// long-lived incremental session's phase log stays bounded.
const PhaseRetainSweeps = core.PhaseRetainSweeps

// Engine selects the matcher's execution strategy.
type Engine = core.Engine

// TieBreak selects how equally-scored best candidates are handled.
type TieBreak = core.TieBreak

// Truth is a ground-truth correspondence used for evaluation.
type Truth = eval.Truth

// Counts aggregates an evaluation in the paper's Good/Bad vocabulary.
type Counts = eval.Counts

// DegreeBucket is one row of a precision/recall-versus-degree curve.
type DegreeBucket = eval.DegreeBucket

// RMATParams configures the RMAT generator.
type RMATParams = gen.RMATParams

// AffiliationParams configures the Affiliation Networks generator.
type AffiliationParams = gen.AffiliationParams

// Scoring selects the candidate ranking function.
type Scoring = core.Scoring

// NoisyCopyParams configures the generalized copy model (noise edges,
// vertex deletion) of Section 3.1.
type NoisyCopyParams = sampling.NoisyCopyParams

// Execution, tie-break and scoring policies (see core.Options).
//
// EngineHybrid — the default — starts on the parallel engine, where the
// commit-dense early sweeps are cheapest, and hands off to the frontier
// engine once the observed per-sweep commit rate drops below the measured
// crossover, so converged and incremental phases stop rescanning the whole
// node set. EngineFrontier re-scores only nodes whose scoring inputs changed
// since their last scoring (the dirty frontier around freshly committed
// links), caching per-bucket proposals across passes. EngineParallel
// re-scans all candidates every pass with a goroutine pool; EngineSequential
// is the single-threaded reference. All four produce bit-identical matchings
// for every option combination — the engine is purely a scheduling choice.
const (
	EngineParallel    = core.EngineParallel
	EngineSequential  = core.EngineSequential
	EngineFrontier    = core.EngineFrontier
	EngineHybrid      = core.EngineHybrid
	TieReject         = core.TieReject
	TieLowestID       = core.TieLowestID
	ScoreWitnessCount = core.ScoreWitnessCount
	ScoreAdamicAdar   = core.ScoreAdamicAdar
)

// NewRand returns a deterministic random stream for the given seed.
func NewRand(seed uint64) *Rand { return xrand.New(seed) }

// NewBuilder returns a graph builder for n nodes; expectedEdges sizes
// buffers and may be 0.
func NewBuilder(n int, expectedEdges int64) *Builder { return graph.NewBuilder(n, expectedEdges) }

// FromEdges builds a graph with n nodes from an edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// ReadEdgeList parses a SNAP-style edge list ("u v" lines, '#' comments),
// densifying arbitrary IDs; ids maps dense ID back to the original.
func ReadEdgeList(r io.Reader) (g *Graph, ids []int64, err error) { return graph.ReadEdgeList(r) }

// WriteEdgeList writes g as an edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Relabel renames node v to perm[v]; perm must be a permutation. Relabeling
// models anonymization (the de-anonymization example recovers the
// permutation).
func Relabel(g *Graph, perm []NodeID) *Graph { return graph.Relabel(g, perm) }

// Intersection returns the graph of edges present in both copies; a node
// isolated there can never be identified from structure alone.
func Intersection(g, h *Graph) *Graph { return graph.Intersection(g, h) }

// ComputeStats summarizes g.
func ComputeStats(g *Graph) Stats { return graph.ComputeStats(g) }

// IdentityPairs returns the pairs (i, i) for i < n — the ground truth when
// both copies share the parent graph's numbering.
func IdentityPairs(n int) []Pair { return graph.IdentityPairs(n) }

// GenerateER samples an Erdős–Rényi G(n, p) graph.
func GenerateER(r *Rand, n int, p float64) *Graph { return gen.ErdosRenyi(r, n, p) }

// GeneratePA samples a preferential attachment graph G^m_n (Definition 2 of
// the paper).
func GeneratePA(r *Rand, n, m int) *Graph { return gen.PreferentialAttachment(r, n, m) }

// GenerateRMAT samples a recursive-matrix graph; see DefaultRMAT.
func GenerateRMAT(r *Rand, p RMATParams) *Graph { return gen.RMAT(r, p) }

// DefaultRMAT returns the Graph500-style RMAT parameterization at the given
// scale (2^scale nodes).
func DefaultRMAT(scale int) RMATParams { return gen.DefaultRMAT(scale) }

// GenerateWattsStrogatz samples a small-world graph.
func GenerateWattsStrogatz(r *Rand, n, k int, beta float64) *Graph {
	return gen.WattsStrogatz(r, n, k, beta)
}

// GenerateAffiliation samples an Affiliation Networks structure; Fold and
// CommunityCopies turn it into social graphs.
func GenerateAffiliation(r *Rand, p AffiliationParams) *AffiliationNetwork {
	return gen.Affiliation(r, p)
}

// DefaultAffiliation returns Affiliation parameters shaped like the paper's
// AN dataset at the given user count.
func DefaultAffiliation(users int) AffiliationParams { return gen.DefaultAffiliation(users) }

// IndependentCopies derives the two observed networks of the paper's basic
// model: each edge of g survives in copy i independently with probability si.
func IndependentCopies(r *Rand, g *Graph, s1, s2 float64) (*Graph, *Graph) {
	return sampling.IndependentCopies(r, g, s1, s2)
}

// CascadeCopies derives two copies by the Independent Cascade growth model
// (Section 5, Figure 3), both seeded at the highest-degree node.
func CascadeCopies(r *Rand, g *Graph, p float64) (*Graph, *Graph) {
	return sampling.CascadeCopies(r, g, p)
}

// CommunityCopies derives two copies of an affiliation network by dropping
// whole interests with the given probability in each copy (Table 4's
// correlated deletion).
func CommunityCopies(r *Rand, an *AffiliationNetwork, dropProb float64, maxCommunity int) (*Graph, *Graph) {
	return sampling.CommunityCopies(r, an, dropProb, maxCommunity)
}

// TimeSplit partitions timestamped edges into two graphs over n nodes by a
// predicate on the timestamp (Table 5's even/odd-year DBLP construction).
func TimeSplit(n int, edges []TemporalEdge, inFirst func(t int) bool) (*Graph, *Graph) {
	return sampling.TimeSplit(n, edges, inFirst)
}

// SybilAttack injects a malicious clone of every node, each accepted by real
// neighbors with probability acceptProb (the paper's attack model). Clone of
// node v gets ID n+v.
func SybilAttack(r *Rand, g *Graph, acceptProb float64) *Graph {
	return sampling.SybilAttack(r, g, acceptProb)
}

// Seeds reveals each ground-truth pair independently with probability l —
// the model's initial trusted links.
func Seeds(r *Rand, truth []Pair, l float64) []Pair { return sampling.Seeds(r, truth, l) }

// NoisyCopies derives two copies under the generalized model of Section 3.1:
// edge deletion plus spurious noise edges and vertex deletion.
func NoisyCopies(r *Rand, g *Graph, p NoisyCopyParams) (*Graph, *Graph) {
	return sampling.NoisyCopies(r, g, p)
}

// CorruptSeeds flips a fraction of seed links to wrong targets — the human
// errors the paper observes in Wikipedia's curated inter-language links.
func CorruptSeeds(r *Rand, seeds []Pair, n2 int, flip float64) []Pair {
	return sampling.CorruptSeeds(r, seeds, n2, flip)
}

// DefaultOptions returns the configuration used throughout the paper's
// experiments (T=2, two sweeps, bucketing to degree 2) on the hybrid
// engine.
func DefaultOptions() Options { return core.DefaultOptions() }

// Reconcile runs User-Matching over the two observed networks and the seed
// links, returning the expanded identification. Deterministic for fixed
// inputs and options. The default hybrid engine adapts to the workload —
// parallel scans while commits are dense, frontier scheduling once they
// thin out — so one-shot batch and incremental runs alike need no engine
// tuning (see "Choosing an engine" in README.md to pin a fixed engine).
//
// Deprecated: use New with WithSeeds and WithOptions (or the individual
// With functions), then Run — which adds context cancellation, incremental
// seeds and progress events. This wrapper produces identical results.
func Reconcile(g1, g2 *Graph, seeds []Pair, opts Options) (*Result, error) {
	r, err := New(g1, g2, WithOptions(opts), WithSeeds(seeds))
	if err != nil {
		return nil, err
	}
	//lint:allow ctx-propagation deprecated pre-context wrapper; documented to produce identical results, cancellable callers use New+Run
	return r.Run(context.Background())
}

// ReconcileMapReduce runs the identical algorithm formulated as the paper's
// 4-rounds-per-bucket MapReduce job (O(k·log D) rounds total). Results match
// Reconcile exactly; use it to inspect or port the distributed formulation.
//
// Deprecated: prefer New and Run for production use; this entry point
// remains for studying the distributed formulation.
func ReconcileMapReduce(g1, g2 *Graph, seeds []Pair, opts Options) (*Result, error) {
	return mapreduce.Reconcile(g1, g2, seeds, opts)
}

// Session is the incremental matcher: reconcile once, then keep feeding
// newly learned trusted links and resuming — the production shape of the
// problem, where users keep connecting their accounts.
//
// Deprecated: Reconciler absorbs the Session (incremental AddSeeds, context
// runs, progress) behind one construction path; use New.
type Session = core.Session

// NewSession prepares an incremental matcher; drive it with
// Session.AddSeeds, Session.Run / Session.RunUntilStable, Session.Result.
//
// Deprecated: use New; Reconciler offers the same incremental workflow plus
// context support and progress events.
func NewSession(g1, g2 *Graph, seeds []Pair, opts Options) (*Session, error) {
	return core.NewSession(g1, g2, seeds, opts)
}

// IdentityTruth returns the identity correspondence over n nodes.
func IdentityTruth(n int) Truth { return eval.IdentityTruth(n) }

// TruthFromPairs builds a ground-truth correspondence from a pair list.
func TruthFromPairs(ps []Pair) Truth { return eval.FromPairs(ps) }

// Evaluate scores a matching against ground truth: pairs holds all links
// with the first nSeeds being seeds (Result.Pairs layout).
func Evaluate(pairs []Pair, nSeeds int, truth Truth) Counts {
	return eval.Evaluate(pairs, nSeeds, truth)
}

// LinkedRecall returns the fraction of identifiable nodes (degree >= 1 in
// both copies) whose true pair appears in pairs.
func LinkedRecall(pairs []Pair, truth Truth, g1, g2 *Graph) float64 {
	return eval.LinkedRecall(pairs, truth, g1, g2)
}

// DegreeCurve computes precision/recall per power-of-two degree bucket (the
// paper's Figure 4 analysis).
func DegreeCurve(g1, g2 *Graph, pairs []Pair, nSeeds int, truth Truth) []DegreeBucket {
	return eval.DegreeCurve(g1, g2, pairs, nSeeds, truth)
}
