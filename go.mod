module github.com/sociograph/reconcile

go 1.24
