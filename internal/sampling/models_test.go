package sampling

import (
	"math"
	"testing"

	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

func TestCommunityCopies(t *testing.T) {
	r := xrand.New(1)
	an := gen.Affiliation(r, gen.DefaultAffiliation(1500))
	g1, g2 := CommunityCopies(r, an, 0.25, 150)
	if g1.NumNodes() != an.Users || g2.NumNodes() != an.Users {
		t.Fatal("copies must cover all users")
	}
	full := an.Fold(150)
	// Copies hold roughly 75% of the full fold's edges (correlated within
	// communities, so variance is high; just check the direction).
	if g1.NumEdges() > full.NumEdges() || g2.NumEdges() > full.NumEdges() {
		t.Fatal("copy has more edges than the full fold")
	}
	if g1.NumEdges() < full.NumEdges()/3 {
		t.Fatalf("copy suspiciously sparse: %d of %d", g1.NumEdges(), full.NumEdges())
	}
}

func TestCommunityCopiesDropAll(t *testing.T) {
	r := xrand.New(2)
	an := gen.Affiliation(r, gen.DefaultAffiliation(100))
	g1, g2 := CommunityCopies(r, an, 1, 150)
	if g1.NumEdges() != 0 || g2.NumEdges() != 0 {
		t.Fatal("dropProb=1 must delete everything")
	}
}

func TestCommunityCopiesPanics(t *testing.T) {
	r := xrand.New(3)
	an := gen.Affiliation(r, gen.DefaultAffiliation(10))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CommunityCopies(r, an, 1.5, 150)
}

func TestTimeSplit(t *testing.T) {
	edges := []TemporalEdge{
		{0, 1, 2010}, // even -> first
		{1, 2, 2011}, // odd  -> second
		{0, 1, 2012}, // duplicate in first
		{2, 3, 2013},
		{0, 3, 2014},
	}
	g1, g2 := TimeSplit(4, edges, EvenOdd)
	if g1.NumEdges() != 2 { // {0,1}, {0,3}
		t.Fatalf("g1 edges = %d", g1.NumEdges())
	}
	if g2.NumEdges() != 2 { // {1,2}, {2,3}
		t.Fatalf("g2 edges = %d", g2.NumEdges())
	}
	if !g1.HasEdge(0, 1) || !g1.HasEdge(0, 3) || !g2.HasEdge(1, 2) || !g2.HasEdge(2, 3) {
		t.Fatal("edges landed in the wrong copy")
	}
}

func TestTimeSplitOverlap(t *testing.T) {
	// A pair observed in both windows appears in both copies.
	edges := []TemporalEdge{{0, 1, 2010}, {0, 1, 2011}}
	g1, g2 := TimeSplit(2, edges, EvenOdd)
	if !g1.HasEdge(0, 1) || !g2.HasEdge(0, 1) {
		t.Fatal("repeated observation should appear in both copies")
	}
}

func TestSybilAttack(t *testing.T) {
	r := xrand.New(4)
	g := gen.ErdosRenyi(r, 400, 0.05)
	a := SybilAttack(r, g, 0.5)
	n := g.NumNodes()
	if a.NumNodes() != 2*n {
		t.Fatalf("attacked nodes = %d, want %d", a.NumNodes(), 2*n)
	}
	// Original edges intact.
	g.Edges(func(e graph.Edge) bool {
		if !a.HasEdge(e.U, e.V) {
			t.Fatalf("original edge %v lost under attack", e)
		}
		return true
	})
	// Each clone's neighbors are a subset of the original's, with rate ≈ 0.5.
	var cloneDeg, origDeg int64
	for v := 0; v < n; v++ {
		clone := graph.NodeID(n + v)
		for _, u := range a.Neighbors(clone) {
			if !g.HasEdge(u, graph.NodeID(v)) {
				t.Fatalf("clone %d linked to non-neighbor %d", clone, u)
			}
		}
		cloneDeg += int64(a.Degree(clone))
		origDeg += int64(g.Degree(graph.NodeID(v)))
	}
	rate := float64(cloneDeg) / float64(origDeg)
	if math.Abs(rate-0.5) > 0.05 {
		t.Fatalf("clone accept rate %v, want ≈ 0.5", rate)
	}
	// Clones never connect to clones.
	for v := n; v < 2*n; v++ {
		for _, u := range a.Neighbors(graph.NodeID(v)) {
			if int(u) >= n {
				t.Fatalf("clone-clone edge %d-%d", v, u)
			}
		}
	}
}

func TestSybilAttackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SybilAttack(xrand.New(1), gen.ErdosRenyi(xrand.New(1), 5, 0.5), -1)
}

func TestSeedsRate(t *testing.T) {
	r := xrand.New(5)
	truth := graph.IdentityPairs(20000)
	for _, l := range []float64{0.05, 0.1, 0.2} {
		seeds := Seeds(r, truth, l)
		want := l * float64(len(truth))
		got := float64(len(seeds))
		sd := math.Sqrt(want * (1 - l))
		if math.Abs(got-want) > 6*sd {
			t.Errorf("l=%v: %v seeds, want %v ± %v", l, got, want, 6*sd)
		}
		// Each seed is a ground-truth pair.
		for _, s := range seeds {
			if s.Left != s.Right {
				t.Fatalf("seed %v is not an identity pair", s)
			}
		}
	}
}

func TestSeedsExtremes(t *testing.T) {
	r := xrand.New(6)
	truth := graph.IdentityPairs(100)
	if len(Seeds(r, truth, 0)) != 0 {
		t.Fatal("l=0 must produce no seeds")
	}
	if len(Seeds(r, truth, 1)) != 100 {
		t.Fatal("l=1 must reveal everything")
	}
	if got := Seeds(r, nil, 0.5); len(got) != 0 {
		t.Fatal("empty truth must produce no seeds")
	}
}

func TestSeedsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Seeds(xrand.New(1), nil, 2)
}

func TestDegreeBiasedSeeds(t *testing.T) {
	r := xrand.New(7)
	g := gen.PreferentialAttachment(r, 5000, 4)
	g1, g2 := IndependentCopies(r, g, 0.8, 0.8)
	truth := graph.IdentityPairs(g.NumNodes())
	seeds := DegreeBiasedSeeds(r, truth, g1, g2, 0.1)
	if len(seeds) == 0 {
		t.Fatal("no seeds produced")
	}
	// Seeds must be biased toward high degree: mean seed degree above the
	// graph's mean degree.
	var seedDeg float64
	for _, s := range seeds {
		seedDeg += float64(g1.Degree(s.Left))
	}
	seedDeg /= float64(len(seeds))
	stats := graph.ComputeStats(g1)
	if seedDeg <= stats.AvgDegree {
		t.Fatalf("mean seed degree %v not above average %v", seedDeg, stats.AvgDegree)
	}
	if got := DegreeBiasedSeeds(r, nil, g1, g2, 0.1); got != nil {
		t.Fatal("empty truth should return nil")
	}
}

func TestDegreeBiasedSeedsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := gen.ErdosRenyi(xrand.New(1), 5, 0.5)
	DegreeBiasedSeeds(xrand.New(1), graph.IdentityPairs(5), g, g, -0.5)
}
