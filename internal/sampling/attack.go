package sampling

import (
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// SybilAttack injects the adversary of Section 5 ("Robustness to attack")
// into one observed network: for every node v, a malicious clone w is
// created, and every real neighbor u of v accepts a friend request from w
// independently with probability acceptProb. The clone of node v gets ID
// n + v, where n = g.NumNodes(); real nodes keep their IDs, so the ground
// truth over real nodes is unchanged and clones act purely as distractors.
//
// This is the paper's strong attack model: the adversary knows v's entire
// neighborhood and half of it links back, locally mimicking v.
func SybilAttack(r *xrand.Rand, g *graph.Graph, acceptProb float64) *graph.Graph {
	if acceptProb < 0 || acceptProb > 1 {
		panic("sampling: accept probability outside [0,1]")
	}
	n := g.NumNodes()
	b := graph.NewBuilder(2*n, 2*g.NumEdges())
	g.Edges(func(e graph.Edge) bool {
		b.AddEdge(e.U, e.V)
		return true
	})
	for v := 0; v < n; v++ {
		clone := graph.NodeID(n + v)
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if r.Bool(acceptProb) {
				b.AddEdge(u, clone)
			}
		}
	}
	return b.Build()
}
