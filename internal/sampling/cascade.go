package sampling

import (
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// CascadeCopy generates one observed network by the Independent Cascade
// process of Goldenberg, Libai & Muller, exactly as Section 5 describes:
// start from a seed node; when a node joins, each of its neighbors joins
// independently with probability p — and a node can be tried multiple times,
// once per joined neighbor, until it succeeds or runs out of inviters. The
// copy is g's subgraph induced on the joined set.
//
// The model captures network growth by invitation: a user appears on the new
// service only if one of her friends pulled her in.
func CascadeCopy(r *xrand.Rand, g *graph.Graph, seed graph.NodeID, p float64) *graph.Graph {
	if p < 0 || p > 1 {
		panic("sampling: cascade probability outside [0,1]")
	}
	n := g.NumNodes()
	if n == 0 {
		return graph.NewBuilder(0, 0).Build()
	}
	if int(seed) >= n {
		panic("sampling: cascade seed out of range")
	}
	joined := make([]bool, n)
	joined[seed] = true
	frontier := []graph.NodeID{seed}
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, v := range frontier {
			for _, w := range g.Neighbors(v) {
				if joined[w] {
					continue
				}
				if r.Bool(p) {
					joined[w] = true
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return graph.InducedSubgraph(g, joined)
}

// HighestDegreeNode returns the node of maximum degree — the natural cascade
// seed (the paper seeds the cascade from a node inside the giant component;
// the hub guarantees that).
func HighestDegreeNode(g *graph.Graph) graph.NodeID {
	best := graph.NodeID(0)
	bestDeg := -1
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(graph.NodeID(v)); d > bestDeg {
			bestDeg = d
			best = graph.NodeID(v)
		}
	}
	return best
}

// CascadeCopies returns two independent cascade realizations of g, both
// seeded at the same hub node.
func CascadeCopies(r *xrand.Rand, g *graph.Graph, p float64) (*graph.Graph, *graph.Graph) {
	seed := HighestDegreeNode(g)
	g1 := CascadeCopy(r, g, seed, p)
	g2 := CascadeCopy(r, g, seed, p)
	return g1, g2
}
