package sampling

import (
	"testing"
	"testing/quick"

	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// Property tests over the copy models: structural invariants that must hold
// for every seed and parameter draw.

func TestIndependentCopySubsetProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, sRaw uint8) bool {
		s := float64(sRaw%101) / 100
		r := xrand.New(seed)
		g := gen.ErdosRenyi(r, 60, 0.2)
		c := IndependentCopy(r, g, s)
		if c.NumNodes() != g.NumNodes() {
			return false
		}
		ok := true
		c.Edges(func(e graph.Edge) bool {
			if !g.HasEdge(e.U, e.V) {
				ok = false
				return false
			}
			return true
		})
		return ok && c.Validate() == nil
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestCascadeSubsetProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, pRaw uint8) bool {
		p := float64(pRaw%101) / 100
		r := xrand.New(seed)
		g := gen.PreferentialAttachment(r, 80, 3)
		c := CascadeCopy(r, g, HighestDegreeNode(g), p)
		ok := true
		c.Edges(func(e graph.Edge) bool {
			if !g.HasEdge(e.U, e.V) {
				ok = false
				return false
			}
			return true
		})
		return ok && c.Validate() == nil
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestSybilAttackInvariants(t *testing.T) {
	err := quick.Check(func(seed uint64, aRaw uint8) bool {
		accept := float64(aRaw%101) / 100
		r := xrand.New(seed)
		g := gen.ErdosRenyi(r, 50, 0.15)
		a := SybilAttack(r, g, accept)
		n := g.NumNodes()
		if a.NumNodes() != 2*n {
			return false
		}
		// Clone edges only to true neighbors; no clone-clone edges.
		for v := n; v < 2*n; v++ {
			orig := graph.NodeID(v - n)
			for _, u := range a.Neighbors(graph.NodeID(v)) {
				if int(u) >= n {
					return false
				}
				if !g.HasEdge(u, orig) {
					return false
				}
			}
		}
		return a.Validate() == nil
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestTimeSplitPartitionProperty(t *testing.T) {
	// Every temporal event lands in exactly one copy, and the union of the
	// two copies' edge sets equals the distinct event pairs.
	err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		const n = 30
		var events []TemporalEdge
		for i := 0; i < 100; i++ {
			u := graph.NodeID(r.IntN(n))
			v := graph.NodeID(r.IntN(n))
			if u == v {
				continue
			}
			events = append(events, TemporalEdge{U: u, V: v, Time: r.IntN(20)})
		}
		g1, g2 := TimeSplit(n, events, EvenOdd)
		union := graph.Union(g1, g2)
		want := map[graph.Edge]bool{}
		for _, e := range events {
			want[graph.Edge{U: e.U, V: e.V}.Canonical()] = true
		}
		if int(union.NumEdges()) != len(want) {
			return false
		}
		for e := range want {
			if !union.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestSeedsSubsetProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, lRaw uint8) bool {
		l := float64(lRaw%101) / 100
		r := xrand.New(seed)
		truth := graph.IdentityPairs(200)
		seeds := Seeds(r, truth, l)
		if len(seeds) > len(truth) {
			return false
		}
		for _, s := range seeds {
			if s.Left != s.Right || int(s.Left) >= 200 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}
