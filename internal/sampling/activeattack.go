package sampling

import (
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// ActiveAttack implements the *active* de-anonymization attack of Backstrom,
// Dwork & Kleinberg (WWW 2007), which the paper's related work contrasts
// with its passive setting: before the network is released, the attacker
// plants k colluding accounts wired into a distinctive random pattern among
// themselves, and each planted account befriends a few targeted real users.
// After release the attacker re-locates the planted subgraph (trivial here
// since the attacker knows the plant IDs) and uses it to identify the
// targets' neighborhoods.
//
// In the reconciliation setting the planted accounts act as attacker-known
// seeds: PlantedPairs returns the cross-copy identity of the plants, and an
// experiment can measure how much of the network k plants identify — the
// active-attack analogue of the seed links the model assumes.
type ActiveAttackResult struct {
	// Attacked is the input graph plus the planted subgraph; plant i has ID
	// originalN + i.
	Attacked *graph.Graph
	// Plants lists the planted node IDs.
	Plants []graph.NodeID
	// Targets lists the real nodes each plant befriended.
	Targets [][]graph.NodeID
}

// ActiveAttackParams configures the plant.
type ActiveAttackParams struct {
	// Plants is k, the number of colluding accounts.
	Plants int
	// InterPlantProb wires each plant pair independently (the distinctive
	// pattern; 0.5 in the published attack).
	InterPlantProb float64
	// TargetsPerPlant is the number of real users each plant befriends.
	TargetsPerPlant int
}

// DefaultActiveAttack mirrors the published construction: k plants with
// i.i.d. half-density internal wiring, a handful of targets each.
func DefaultActiveAttack(k int) ActiveAttackParams {
	return ActiveAttackParams{Plants: k, InterPlantProb: 0.5, TargetsPerPlant: 3}
}

// PlanTargets draws each plant's target list over a population of n users.
// The attacker plans ONE campaign and befriends the same users on every
// network — that coordination is what turns the plants into cross-network
// witnesses.
func PlanTargets(r *xrand.Rand, n int, p ActiveAttackParams) [][]graph.NodeID {
	if p.TargetsPerPlant < 0 {
		panic("sampling: negative TargetsPerPlant")
	}
	targets := make([][]graph.NodeID, p.Plants)
	for i := range targets {
		for t := 0; t < p.TargetsPerPlant && n > 0; t++ {
			targets[i] = append(targets[i], graph.NodeID(r.IntN(n)))
		}
	}
	return targets
}

// ActiveAttack plants the attacker subgraph into g with freshly drawn
// targets (single-network use). For the cross-network attack, draw targets
// once with PlanTargets and use ActiveAttackWith on each copy.
func ActiveAttack(r *xrand.Rand, g *graph.Graph, p ActiveAttackParams) *ActiveAttackResult {
	return ActiveAttackWith(r, g, p, PlanTargets(r, g.NumNodes(), p))
}

// ActiveAttackWith plants the attacker subgraph into g using the given
// per-plant target lists.
func ActiveAttackWith(r *xrand.Rand, g *graph.Graph, p ActiveAttackParams, targets [][]graph.NodeID) *ActiveAttackResult {
	if p.Plants < 0 {
		panic("sampling: negative plant count")
	}
	if p.InterPlantProb < 0 || p.InterPlantProb > 1 {
		panic("sampling: InterPlantProb outside [0,1]")
	}
	if len(targets) != p.Plants {
		panic("sampling: target lists do not match plant count")
	}
	n := g.NumNodes()
	b := graph.NewBuilder(n+p.Plants, g.NumEdges()+int64(p.Plants*p.Plants/2))
	g.Edges(func(e graph.Edge) bool {
		b.AddEdge(e.U, e.V)
		return true
	})
	res := &ActiveAttackResult{Targets: targets}
	for i := 0; i < p.Plants; i++ {
		id := graph.NodeID(n + i)
		b.EnsureNode(id)
		res.Plants = append(res.Plants, id)
	}
	// Distinctive internal pattern.
	for i := 0; i < p.Plants; i++ {
		for j := i + 1; j < p.Plants; j++ {
			if r.Bool(p.InterPlantProb) {
				b.AddEdge(res.Plants[i], res.Plants[j])
			}
		}
	}
	// Targeted friendships.
	for i := 0; i < p.Plants; i++ {
		for _, tg := range targets[i] {
			b.AddEdge(res.Plants[i], tg)
		}
	}
	res.Attacked = b.Build()
	return res
}

// PlantedPairs returns the cross-copy identity links of the plants, given
// that both copies were attacked with the same parameters (the attacker
// controls its accounts on both networks and knows which is which).
func PlantedPairs(a1, a2 *ActiveAttackResult) []graph.Pair {
	k := len(a1.Plants)
	if len(a2.Plants) < k {
		k = len(a2.Plants)
	}
	pairs := make([]graph.Pair, k)
	for i := 0; i < k; i++ {
		pairs[i] = graph.Pair{Left: a1.Plants[i], Right: a2.Plants[i]}
	}
	return pairs
}
