package sampling

import (
	"github.com/sociograph/reconcile/internal/graph"
)

// TemporalEdge is an undirected edge observed at an integer time (a year for
// DBLP, a month index for Gowalla). The same node pair may appear at many
// times; it then lands in every copy whose window contains one of its
// observations — exactly how the paper builds the even/odd-year DBLP graphs.
type TemporalEdge struct {
	U, V graph.NodeID
	Time int
}

// TimeSplit partitions temporal edges into two graphs over n nodes: an edge
// observed at time t goes to the first copy when inFirst(t) is true and to
// the second otherwise. Self-loops and repeated observations are collapsed
// by graph construction.
func TimeSplit(n int, edges []TemporalEdge, inFirst func(t int) bool) (*graph.Graph, *graph.Graph) {
	b1 := graph.NewBuilder(n, int64(len(edges))/2)
	b2 := graph.NewBuilder(n, int64(len(edges))/2)
	for _, e := range edges {
		if inFirst(e.Time) {
			b1.AddEdge(e.U, e.V)
		} else {
			b2.AddEdge(e.U, e.V)
		}
	}
	return b1.Build(), b2.Build()
}

// EvenOdd reports whether t is even; the predicate the paper uses to split
// DBLP by publication year ("publications written in even years" vs odd).
func EvenOdd(t int) bool { return t%2 == 0 }
