package sampling

import (
	"math"
	"testing"

	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

func TestNoisyCopyRates(t *testing.T) {
	r := xrand.New(1)
	g := gen.ErdosRenyi(r, 1500, 0.01)
	p := NoisyCopyParams{EdgeSurvival: 0.6, NoiseEdgeFraction: 0.2, VertexDeletion: 0.1}
	c := NoisyCopy(r, g, p)
	if c.NumNodes() != g.NumNodes() {
		t.Fatal("node space changed")
	}
	// Expected edges ≈ |E|·(0.9²·0.6 + 0.2·0.9²) (true survivors among
	// surviving vertices plus noise among surviving vertices).
	want := float64(g.NumEdges()) * (0.81*0.6 + 0.2*0.81)
	got := float64(c.NumEdges())
	if math.Abs(got-want) > want*0.15 {
		t.Errorf("edges = %v, want ≈ %v", got, want)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNoisyCopyVertexDeletion(t *testing.T) {
	r := xrand.New(2)
	g := gen.PreferentialAttachment(r, 800, 6)
	c := NoisyCopy(r, g, NoisyCopyParams{EdgeSurvival: 1, VertexDeletion: 0.5})
	isolated := 0
	for v := 0; v < c.NumNodes(); v++ {
		if c.Degree(graph.NodeID(v)) == 0 {
			isolated++
		}
	}
	// Roughly half the vertices must be gone (isolated).
	if isolated < 300 || isolated > 500 {
		t.Errorf("isolated = %d, want ≈ 400", isolated)
	}
}

func TestNoisyCopyNoNoiseNoDeletionIsIndependentCopy(t *testing.T) {
	r := xrand.New(3)
	g := gen.ErdosRenyi(r, 400, 0.05)
	c := NoisyCopy(r, g, NoisyCopyParams{EdgeSurvival: 1})
	if c.NumEdges() != g.NumEdges() {
		t.Fatal("s=1 with no noise should be the identity")
	}
	c.Edges(func(e graph.Edge) bool {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("invented edge %v", e)
		}
		return true
	})
}

func TestNoisyCopyNoiseEdgesAreNew(t *testing.T) {
	r := xrand.New(4)
	g := gen.ErdosRenyi(r, 500, 0.02)
	c := NoisyCopy(r, g, NoisyCopyParams{EdgeSurvival: 0, NoiseEdgeFraction: 0.5})
	// All edges are noise; none required to exist in g, but count ≈ |E|/2.
	want := float64(g.NumEdges()) * 0.5
	got := float64(c.NumEdges())
	if math.Abs(got-want) > want*0.2+5 {
		t.Errorf("noise edges = %v, want ≈ %v", got, want)
	}
}

func TestNoisyCopyPanics(t *testing.T) {
	r := xrand.New(5)
	g := gen.ErdosRenyi(r, 10, 0.5)
	for _, p := range []NoisyCopyParams{
		{EdgeSurvival: -0.1},
		{EdgeSurvival: 1.1},
		{EdgeSurvival: 0.5, NoiseEdgeFraction: -1},
		{EdgeSurvival: 0.5, VertexDeletion: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("params %+v did not panic", p)
				}
			}()
			NoisyCopy(r, g, p)
		}()
	}
}

func TestNoisyCopiesIndependent(t *testing.T) {
	r := xrand.New(6)
	g := gen.PreferentialAttachment(r, 600, 8)
	p := NoisyCopyParams{EdgeSurvival: 0.7, NoiseEdgeFraction: 0.05, VertexDeletion: 0.05}
	g1, g2 := NoisyCopies(r, g, p)
	if g1.NumEdges() == 0 || g2.NumEdges() == 0 {
		t.Fatal("empty copies")
	}
	x := graph.Intersection(g1, g2)
	if x.NumEdges() == 0 {
		t.Fatal("copies share no edges")
	}
	if x.NumEdges() == g1.NumEdges() && x.NumEdges() == g2.NumEdges() {
		t.Fatal("copies identical; independence broken")
	}
}

func TestCorruptSeeds(t *testing.T) {
	r := xrand.New(7)
	truth := graph.IdentityPairs(2000)
	seeds := Seeds(r, truth, 0.5)
	out := CorruptSeeds(r, seeds, 2000, 0.1)
	if len(out) != len(seeds) {
		t.Fatalf("length changed: %d vs %d", len(out), len(seeds))
	}
	flipped := 0
	seenR := map[graph.NodeID]bool{}
	for i, s := range out {
		if s.Left != seeds[i].Left {
			t.Fatal("left endpoint changed")
		}
		if s.Right != seeds[i].Right {
			flipped++
		}
		if seenR[s.Right] {
			t.Fatalf("right endpoint %d duplicated", s.Right)
		}
		seenR[s.Right] = true
	}
	rate := float64(flipped) / float64(len(out))
	if math.Abs(rate-0.1) > 0.03 {
		t.Errorf("flip rate %.3f, want ≈ 0.1", rate)
	}
}

func TestCorruptSeedsZeroFlip(t *testing.T) {
	r := xrand.New(8)
	seeds := Seeds(r, graph.IdentityPairs(100), 0.5)
	out := CorruptSeeds(r, seeds, 100, 0)
	for i := range out {
		if out[i] != seeds[i] {
			t.Fatal("flip=0 changed a seed")
		}
	}
}

func TestCorruptSeedsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CorruptSeeds(xrand.New(1), nil, 10, 1.5)
}
