package sampling

import (
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// Seeds samples the initial trusted links of the model: every ground-truth
// pair is revealed independently with probability l (the linking
// probability). The paper's l is a small constant, typically 0.05–0.20.
func Seeds(r *xrand.Rand, truth []graph.Pair, l float64) []graph.Pair {
	if l < 0 || l > 1 {
		panic("sampling: linking probability outside [0,1]")
	}
	out := make([]graph.Pair, 0, int(float64(len(truth))*l)+16)
	for _, p := range truth {
		if r.Bool(l) {
			out = append(out, p)
		}
	}
	return out
}

// DegreeBiasedSeeds reveals pair i with probability proportional to
// min(deg_G1, deg_G2) scaled so the maximum-degree pair is revealed with
// probability l*boost (capped at 1) and the average rate stays near l.
// It models the paper's observation that celebrities are more likely to
// cross-link their accounts, and the seed choice of [23]'s experiments.
func DegreeBiasedSeeds(r *xrand.Rand, truth []graph.Pair, g1, g2 *graph.Graph, l float64) []graph.Pair {
	if l < 0 || l > 1 {
		panic("sampling: linking probability outside [0,1]")
	}
	if len(truth) == 0 {
		return nil
	}
	// Probability proportional to log(1+mindeg), normalized to mean l.
	weights := make([]float64, len(truth))
	var sum float64
	for i, p := range truth {
		d1, d2 := g1.Degree(p.Left), g2.Degree(p.Right)
		d := d1
		if d2 < d {
			d = d2
		}
		w := log2(1 + d)
		weights[i] = w
		sum += w
	}
	if sum == 0 {
		return Seeds(r, truth, l)
	}
	mean := sum / float64(len(truth))
	out := make([]graph.Pair, 0, int(float64(len(truth))*l)+16)
	for i, p := range truth {
		prob := l * weights[i] / mean
		if prob > 1 {
			prob = 1
		}
		if r.Bool(prob) {
			out = append(out, p)
		}
	}
	return out
}

func log2(x int) float64 {
	f := 0.0
	for v := x; v > 1; v >>= 1 {
		f++
	}
	return f
}
