package sampling

import (
	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// CommunityCopies implements the correlated edge deletion model of Table 4:
// independently in each copy, every interest (community) of the affiliation
// network is deleted with probability dropProb, and the copy is the folded
// projection of the surviving interests. Whole community cliques live or die
// together, so the same user can have entirely different neighborhoods in
// the two copies — personal friends on one network, colleagues on the other.
func CommunityCopies(r *xrand.Rand, an *gen.AffiliationNetwork, dropProb float64, maxCommunity int) (*graph.Graph, *graph.Graph) {
	if dropProb < 0 || dropProb > 1 {
		panic("sampling: community drop probability outside [0,1]")
	}
	keep1 := make([]bool, an.NumCommunities())
	keep2 := make([]bool, an.NumCommunities())
	for i := range keep1 {
		keep1[i] = !r.Bool(dropProb)
		keep2[i] = !r.Bool(dropProb)
	}
	g1 := an.FoldKeeping(keep1, maxCommunity)
	g2 := an.FoldKeeping(keep2, maxCommunity)
	return g1, g2
}
