// Package sampling implements the paper's models for deriving the two
// observed networks G1, G2 from the underlying "true" network G, plus the
// seed-link and attack models:
//
//   - independent edge deletion (Section 3.1): each edge of G survives in
//     copy i independently with probability s_i;
//   - the Independent Cascade copy model (Section 5, Figure 3): each copy is
//     the subgraph reached by an invitation cascade;
//   - correlated community deletion (Section 5, Table 4): whole affiliation
//     communities survive or die together in each copy;
//   - timestamp splitting (Section 5, Table 5): copies take edges from
//     disjoint time windows;
//   - the sybil attack model (Section 5, "Robustness to attack");
//   - seed link generation (each node linked across copies with probability l).
package sampling

import (
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// IndependentCopy returns a copy of g in which every edge survives
// independently with probability s. Node IDs are preserved.
func IndependentCopy(r *xrand.Rand, g *graph.Graph, s float64) *graph.Graph {
	if s < 0 || s > 1 {
		panic("sampling: survival probability outside [0,1]")
	}
	b := graph.NewBuilder(g.NumNodes(), int64(float64(g.NumEdges())*s)+16)
	g.Edges(func(e graph.Edge) bool {
		if r.Bool(s) {
			b.AddEdge(e.U, e.V)
		}
		return true
	})
	return b.Build()
}

// IndependentCopies returns the two observed networks of the paper's basic
// model: each edge of g survives in the first copy with probability s1 and,
// independently, in the second with probability s2.
func IndependentCopies(r *xrand.Rand, g *graph.Graph, s1, s2 float64) (*graph.Graph, *graph.Graph) {
	if s1 < 0 || s1 > 1 || s2 < 0 || s2 > 1 {
		panic("sampling: survival probability outside [0,1]")
	}
	b1 := graph.NewBuilder(g.NumNodes(), int64(float64(g.NumEdges())*s1)+16)
	b2 := graph.NewBuilder(g.NumNodes(), int64(float64(g.NumEdges())*s2)+16)
	g.Edges(func(e graph.Edge) bool {
		if r.Bool(s1) {
			b1.AddEdge(e.U, e.V)
		}
		if r.Bool(s2) {
			b2.AddEdge(e.U, e.V)
		}
		return true
	})
	return b1.Build(), b2.Build()
}
