package sampling

import (
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// NoisyCopyParams configures the generalized copy model that Section 3.1
// sketches but does not analyze: besides deleting edges, a copy may contain
// "noise" edges absent from the underlying graph, and whole vertices may be
// missing (users who never joined the service).
type NoisyCopyParams struct {
	// EdgeSurvival is s: each true edge survives independently.
	EdgeSurvival float64
	// NoiseEdgeFraction adds this fraction of |E| spurious uniform edges
	// (dropped if they duplicate a surviving true edge).
	NoiseEdgeFraction float64
	// VertexDeletion removes each vertex (with all its edges) independently.
	VertexDeletion float64
}

// NoisyCopy derives one observed network under the generalized model. Node
// IDs are preserved; deleted vertices become isolated.
func NoisyCopy(r *xrand.Rand, g *graph.Graph, p NoisyCopyParams) *graph.Graph {
	if p.EdgeSurvival < 0 || p.EdgeSurvival > 1 {
		panic("sampling: EdgeSurvival outside [0,1]")
	}
	if p.NoiseEdgeFraction < 0 {
		panic("sampling: negative NoiseEdgeFraction")
	}
	if p.VertexDeletion < 0 || p.VertexDeletion > 1 {
		panic("sampling: VertexDeletion outside [0,1]")
	}
	n := g.NumNodes()
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = !r.Bool(p.VertexDeletion)
	}
	b := graph.NewBuilder(n, g.NumEdges())
	g.Edges(func(e graph.Edge) bool {
		if alive[e.U] && alive[e.V] && r.Bool(p.EdgeSurvival) {
			b.AddEdge(e.U, e.V)
		}
		return true
	})
	if n > 1 {
		noise := int(float64(g.NumEdges()) * p.NoiseEdgeFraction)
		for i := 0; i < noise; i++ {
			u := r.IntN(n)
			v := r.IntN(n - 1)
			if v >= u {
				v++
			}
			if alive[u] && alive[v] {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	return b.Build()
}

// NoisyCopies derives the two observed networks under independent draws of
// the same generalized model.
func NoisyCopies(r *xrand.Rand, g *graph.Graph, p NoisyCopyParams) (*graph.Graph, *graph.Graph) {
	return NoisyCopy(r, g, p), NoisyCopy(r, g, p)
}

// CorruptSeeds replaces each seed's right endpoint with a uniform random
// node with probability flip — the wrong trusted links the paper observes
// in Wikipedia's human-curated inter-language set. The result stays
// injective on the right side by retrying collisions (and keeping the
// original pair when no free target is found).
func CorruptSeeds(r *xrand.Rand, seeds []graph.Pair, n2 int, flip float64) []graph.Pair {
	if flip < 0 || flip > 1 {
		panic("sampling: flip outside [0,1]")
	}
	used := make(map[graph.NodeID]bool, len(seeds))
	for _, s := range seeds {
		used[s.Right] = true
	}
	out := make([]graph.Pair, len(seeds))
	for i, s := range seeds {
		out[i] = s
		if !r.Bool(flip) || n2 < 2 {
			continue
		}
		for tries := 0; tries < 16; tries++ {
			w := graph.NodeID(r.IntN(n2))
			if w != s.Right && !used[w] {
				out[i].Right = w
				used[w] = true
				break
			}
		}
	}
	return out
}
