package sampling

import (
	"math"
	"testing"

	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

func TestIndependentCopySurvivalRate(t *testing.T) {
	r := xrand.New(1)
	g := gen.ErdosRenyi(r, 1000, 0.02) // ~10k edges
	for _, s := range []float64{0.25, 0.5, 0.75} {
		c := IndependentCopy(r, g, s)
		want := s * float64(g.NumEdges())
		got := float64(c.NumEdges())
		sd := math.Sqrt(want * (1 - s))
		if math.Abs(got-want) > 6*sd {
			t.Errorf("s=%v: edges %v, want %v ± %v", s, got, want, 6*sd)
		}
		// The copy's edges must be a subset of g's.
		c.Edges(func(e graph.Edge) bool {
			if !g.HasEdge(e.U, e.V) {
				t.Fatalf("copy invented edge %v", e)
			}
			return true
		})
		if c.NumNodes() != g.NumNodes() {
			t.Fatalf("copy changed node count: %d", c.NumNodes())
		}
	}
}

func TestIndependentCopyExtremes(t *testing.T) {
	r := xrand.New(2)
	g := gen.ErdosRenyi(r, 100, 0.1)
	if c := IndependentCopy(r, g, 0); c.NumEdges() != 0 {
		t.Fatal("s=0 should delete every edge")
	}
	if c := IndependentCopy(r, g, 1); c.NumEdges() != g.NumEdges() {
		t.Fatal("s=1 should keep every edge")
	}
}

func TestIndependentCopiesIndependent(t *testing.T) {
	r := xrand.New(3)
	g := gen.ErdosRenyi(r, 600, 0.05)
	g1, g2 := IndependentCopies(r, g, 0.5, 0.5)
	// P(edge in both copies) = 0.25; check the intersection rate.
	x := graph.Intersection(g1, g2)
	want := 0.25 * float64(g.NumEdges())
	got := float64(x.NumEdges())
	sd := math.Sqrt(want * 0.75)
	if math.Abs(got-want) > 6*sd {
		t.Fatalf("intersection edges %v, want %v ± %v", got, want, 6*sd)
	}
}

func TestIndependentCopiesAsymmetric(t *testing.T) {
	r := xrand.New(4)
	g := gen.ErdosRenyi(r, 500, 0.05)
	g1, g2 := IndependentCopies(r, g, 0.9, 0.1)
	if g1.NumEdges() <= g2.NumEdges() {
		t.Fatalf("s1=0.9 copy (%d edges) should dominate s2=0.1 copy (%d)", g1.NumEdges(), g2.NumEdges())
	}
}

func TestSamplingPanics(t *testing.T) {
	r := xrand.New(5)
	g := gen.ErdosRenyi(r, 10, 0.5)
	for _, f := range []func(){
		func() { IndependentCopy(r, g, -0.1) },
		func() { IndependentCopy(r, g, 1.1) },
		func() { IndependentCopies(r, g, -0.1, 0.5) },
		func() { IndependentCopies(r, g, 0.5, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
