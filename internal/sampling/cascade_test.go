package sampling

import (
	"testing"

	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

func TestCascadeCopyInduced(t *testing.T) {
	r := xrand.New(1)
	g := gen.PreferentialAttachment(r, 2000, 8)
	c := CascadeCopy(r, g, HighestDegreeNode(g), 0.3)
	if c.NumNodes() != g.NumNodes() {
		t.Fatalf("node space changed: %d", c.NumNodes())
	}
	// Every copy edge exists in g.
	c.Edges(func(e graph.Edge) bool {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("cascade invented edge %v", e)
		}
		return true
	})
	// Induced property: if both endpoints joined (deg > 0 in c counts as a
	// proxy only for nodes with joined neighbors, so check directly: any g
	// edge between two nodes that each have an edge in c must be in c).
	joined := make([]bool, g.NumNodes())
	for v := 0; v < c.NumNodes(); v++ {
		if c.Degree(graph.NodeID(v)) > 0 {
			joined[v] = true
		}
	}
	g.Edges(func(e graph.Edge) bool {
		if joined[e.U] && joined[e.V] && !c.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v between joined nodes missing from induced copy", e)
		}
		return true
	})
}

func TestCascadeSupercriticalReach(t *testing.T) {
	// With avg degree 16 and p = 0.3 the cascade is strongly supercritical:
	// it must reach most of the graph from the hub.
	r := xrand.New(2)
	g := gen.PreferentialAttachment(r, 3000, 8)
	c := CascadeCopy(r, g, HighestDegreeNode(g), 0.3)
	s := graph.ComputeStats(c)
	reached := s.Nodes - s.Isolated
	if reached < 2*s.Nodes/3 {
		t.Fatalf("cascade reached only %d/%d nodes", reached, s.Nodes)
	}
}

func TestCascadeSubcriticalDiesOut(t *testing.T) {
	// On a ring (degree 2), p = 0.05 is far below the percolation threshold:
	// the cascade must stay tiny.
	r := xrand.New(3)
	g := gen.WattsStrogatz(r, 5000, 1, 0)
	c := CascadeCopy(r, g, 0, 0.05)
	s := graph.ComputeStats(c)
	reached := s.Nodes - s.Isolated
	if reached > 200 {
		t.Fatalf("subcritical cascade reached %d nodes", reached)
	}
}

func TestCascadeZeroProb(t *testing.T) {
	r := xrand.New(4)
	g := gen.ErdosRenyi(r, 100, 0.1)
	c := CascadeCopy(r, g, 0, 0)
	if c.NumEdges() != 0 {
		t.Fatalf("p=0 cascade has %d edges", c.NumEdges())
	}
}

func TestCascadeEmptyGraph(t *testing.T) {
	c := CascadeCopy(xrand.New(1), graph.NewBuilder(0, 0).Build(), 0, 0.5)
	if c.NumNodes() != 0 {
		t.Fatal("empty graph cascade should be empty")
	}
}

func TestCascadePanics(t *testing.T) {
	r := xrand.New(5)
	g := gen.ErdosRenyi(r, 10, 0.5)
	for _, f := range []func(){
		func() { CascadeCopy(r, g, 0, -0.1) },
		func() { CascadeCopy(r, g, 0, 1.1) },
		func() { CascadeCopy(r, g, 10, 0.5) }, // seed out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHighestDegreeNode(t *testing.T) {
	b := graph.NewBuilder(5, 6)
	b.AddEdge(2, 0)
	b.AddEdge(2, 1)
	b.AddEdge(2, 3)
	b.AddEdge(0, 1)
	g := b.Build()
	if got := HighestDegreeNode(g); got != 2 {
		t.Fatalf("hub = %d, want 2", got)
	}
}

func TestCascadeCopies(t *testing.T) {
	r := xrand.New(6)
	g := gen.PreferentialAttachment(r, 1000, 8)
	g1, g2 := CascadeCopies(r, g, 0.3)
	if g1.NumNodes() != g.NumNodes() || g2.NumNodes() != g.NumNodes() {
		t.Fatal("copies must preserve the node space")
	}
	// Two independent cascades should differ.
	if g1.NumEdges() == g2.NumEdges() {
		x := graph.Intersection(g1, g2)
		if x.NumEdges() == g1.NumEdges() {
			t.Fatal("two cascade copies are identical (suspicious)")
		}
	}
}
