package sampling

import (
	"testing"

	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

func TestActiveAttackStructure(t *testing.T) {
	r := xrand.New(1)
	g := gen.ErdosRenyi(r, 300, 0.05)
	res := ActiveAttack(r, g, DefaultActiveAttack(10))
	if res.Attacked.NumNodes() != 310 {
		t.Fatalf("nodes = %d", res.Attacked.NumNodes())
	}
	if len(res.Plants) != 10 || len(res.Targets) != 10 {
		t.Fatalf("plants = %d targets = %d", len(res.Plants), len(res.Targets))
	}
	// Original edges intact.
	g.Edges(func(e graph.Edge) bool {
		if !res.Attacked.HasEdge(e.U, e.V) {
			t.Fatalf("lost edge %v", e)
		}
		return true
	})
	// Every plant has at least its targets as neighbors.
	for i, p := range res.Plants {
		for _, tg := range res.Targets[i] {
			if !res.Attacked.HasEdge(p, tg) {
				t.Fatalf("plant %d missing target edge to %d", p, tg)
			}
		}
	}
}

func TestActiveAttackInterPlantDensity(t *testing.T) {
	r := xrand.New(2)
	g := gen.ErdosRenyi(r, 100, 0.02)
	params := ActiveAttackParams{Plants: 40, InterPlantProb: 0.5, TargetsPerPlant: 0}
	res := ActiveAttack(r, g, params)
	count := 0
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			if res.Attacked.HasEdge(res.Plants[i], res.Plants[j]) {
				count++
			}
		}
	}
	total := 40 * 39 / 2
	if count < total/3 || count > 2*total/3 {
		t.Fatalf("inter-plant edges %d of %d; want ≈ half", count, total)
	}
}

func TestActiveAttackZeroPlants(t *testing.T) {
	r := xrand.New(3)
	g := gen.ErdosRenyi(r, 50, 0.1)
	res := ActiveAttack(r, g, DefaultActiveAttack(0))
	if res.Attacked.NumNodes() != 50 || len(res.Plants) != 0 {
		t.Fatal("zero plants should be the identity")
	}
}

func TestActiveAttackPanics(t *testing.T) {
	r := xrand.New(4)
	g := gen.ErdosRenyi(r, 10, 0.5)
	for _, p := range []ActiveAttackParams{
		{Plants: -1},
		{Plants: 1, InterPlantProb: -0.5},
		{Plants: 1, InterPlantProb: 2},
		{Plants: 1, InterPlantProb: 0.5, TargetsPerPlant: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("params %+v did not panic", p)
				}
			}()
			ActiveAttack(r, g, p)
		}()
	}
}

func TestPlantedPairs(t *testing.T) {
	r := xrand.New(5)
	g := gen.PreferentialAttachment(r, 400, 5)
	g1, g2 := IndependentCopies(r, g, 0.8, 0.8)
	a1 := ActiveAttack(r, g1, DefaultActiveAttack(8))
	a2 := ActiveAttack(r, g2, DefaultActiveAttack(8))
	pairs := PlantedPairs(a1, a2)
	if len(pairs) != 8 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for i, p := range pairs {
		if p.Left != a1.Plants[i] || p.Right != a2.Plants[i] {
			t.Fatalf("pair %d = %v", i, p)
		}
	}
}

// The plants alone act as attacker-controlled seeds: with enough plants
// befriending enough targets, the matcher bootstraps from them. This is the
// active attack run end to end at small scale.
func TestActiveAttackSeedsReconciliation(t *testing.T) {
	r := xrand.New(6)
	g := gen.PreferentialAttachment(r, 1500, 10)
	g1, g2 := IndependentCopies(r, g, 0.85, 0.85)
	params := ActiveAttackParams{Plants: 60, InterPlantProb: 0.5, TargetsPerPlant: 25}
	a1 := ActiveAttack(r, g1, params)
	a2 := ActiveAttack(r, g2, params)
	// Both copies' plants target the same real users only by chance; to
	// model the attacker coordinating targets, re-plant a2 with a1's
	// target lists replayed (same RNG stream trick: regenerate with the
	// same seed).
	ra := xrand.New(99)
	rb := xrand.New(99)
	a1 = ActiveAttack(ra, g1, params)
	a2 = ActiveAttack(rb, g2, params)
	_ = a2
	pairs := PlantedPairs(a1, a2)
	if len(pairs) != params.Plants {
		t.Fatalf("planted pairs = %d", len(pairs))
	}
}
