// Package experiments reproduces every table and figure of the paper's
// Section 5. Each experiment is a pure function of a Config (seed + scale),
// prints the same rows the paper reports, and returns structured results so
// tests can assert the qualitative claims (perfect precision on synthetic
// copies, the degree-bucketing error reduction, cascade ≥ independent
// deletion, attack robustness, baseline weaknesses).
//
// Experiments run on scaled-down stand-ins by default — the paper's graphs
// reach 121M nodes — with the scale exposed so larger runs reproduce the
// trend lines; see EXPERIMENTS.md for paper-vs-measured numbers.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/eval"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// Config parameterizes a run. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// Scale is the stand-in size as a fraction of the paper's dataset size
	// (see datasets.Table1). Experiments note their per-dataset floors.
	Scale float64
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// Workers bounds matcher parallelism (0 = GOMAXPROCS).
	Workers int
	// RMATBase is the smallest RMAT scale for Table 2 (paper: 24; the two
	// larger graphs are base+2 and base+4).
	RMATBase int
}

// DefaultConfig is sized for a laptop run of the full suite in minutes.
func DefaultConfig() Config {
	return Config{Scale: 0.05, Seed: 1, RMATBase: 15}
}

func (c Config) validate() error {
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("experiments: scale %v outside (0,1]", c.Scale)
	}
	if c.RMATBase < 4 || c.RMATBase > 26 {
		return fmt.Errorf("experiments: RMAT base %d outside [4,26]", c.RMATBase)
	}
	return nil
}

func (c Config) rng(salt uint64) *xrand.Rand {
	return xrand.New(c.Seed*0x9e3779b97f4a7c15 + salt)
}

// Report is an experiment's output: rendered tables plus free-form notes.
type Report struct {
	Name   string
	Tables []*eval.Table
	Notes  []string
}

func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", r.Name)
	for _, t := range r.Tables {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func (r *Report) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Runner executes one experiment.
type Runner func(Config) (*Report, error)

// Registry maps experiment IDs (as used by cmd/experiments -run) to runners.
var Registry = map[string]Runner{
	"figure2":       Figure2,
	"table2":        Table2,
	"table3fb":      Table3Facebook,
	"table3enron":   Table3Enron,
	"figure3":       Figure3,
	"table4":        Table4,
	"table5dblp":    Table5DBLP,
	"table5gowalla": Table5Gowalla,
	"table5wiki":    Table5Wikipedia,
	"figure4":       Figure4,
	"attack":        Attack,
	"ablation":      Ablation,
	// Extensions beyond the paper's evaluation (Section 3.1 generalizations
	// and design-choice ablations; see extensions.go).
	"ext-noise":     Noise,
	"ext-seednoise": SeedNoise,
	"ext-scoring":   ScoringAblation,
	"ext-theory":    TheoryCheck,
	"ext-active":    ActiveAttackExp,
}

// Names returns the registry keys in sorted order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// reconcile runs the core matcher with experiment-standard options.
func reconcile(g1, g2 *graph.Graph, seeds []graph.Pair, threshold int, cfg Config) (*core.Result, error) {
	opts := core.DefaultOptions()
	opts.Threshold = threshold
	opts.Workers = cfg.Workers
	return core.Reconcile(g1, g2, seeds, opts)
}

// percent renders a fraction like "10%".
func percent(l float64) string { return fmt.Sprintf("%.0f%%", l*100) }
