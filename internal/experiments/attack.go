package experiments

import (
	"github.com/sociograph/reconcile/internal/baseline"
	"github.com/sociograph/reconcile/internal/datasets"
	"github.com/sociograph/reconcile/internal/eval"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
)

// AttackCounts scores a matching over an attacked instance. Real nodes keep
// their IDs; clone IDs are offset by the real node count. A clone aligned to
// its counterpart clone in the other network is the matcher identifying the
// attacker's two fake accounts with each other — harmless, and tracked
// separately rather than as an error; every other non-true match (real to
// wrong real, clone to real, clone to wrong clone) is Bad. Clone-to-real is
// the dangerous impersonation outcome the attack aims for.
type AttackCounts struct {
	Seeds        int
	Good         int // real node matched to its true copy
	Bad          int
	CloneAligned int // clone(v) in G1 matched to clone(v) in G2
}

// Precision is Good/(Good+Bad).
func (c AttackCounts) Precision() float64 {
	if c.Good+c.Bad == 0 {
		return 1
	}
	return float64(c.Good) / float64(c.Good+c.Bad)
}

func evaluateAttack(pairs []graph.Pair, nSeeds, nReal int) AttackCounts {
	c := AttackCounts{Seeds: nSeeds}
	for _, p := range pairs[nSeeds:] {
		switch {
		case int(p.Left) < nReal && p.Left == p.Right:
			c.Good++
		case int(p.Left) >= nReal && p.Left == p.Right:
			c.CloneAligned++
		default:
			c.Bad++
		}
	}
	return c
}

// AttackData reproduces the "robustness to attack" experiment: Facebook
// copies at s = 0.75, then every node in each copy gets a malicious clone
// that is accepted by each real neighbor with probability 0.5 — an attacker
// who locally mimics every user. Seeds 10%, threshold 2.
//
// Paper: User-Matching still aligns 46,955 of 63,731 possible nodes with
// only 114 errors, while the plain common-neighbor baseline finds fewer
// than half as many matches (22,346).
type AttackData struct {
	Possible int // real nodes (clones excluded)
	Core     AttackCounts
	Baseline AttackCounts
}

// AttackRun runs both matchers on the attacked copies.
func AttackRun(cfg Config) (*AttackData, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.rng(0xA77)
	g := datasets.Facebook(r, cfg.Scale)
	n := g.NumNodes()
	g1, g2 := sampling.IndependentCopies(r, g, 0.75, 0.75)
	g1 = sampling.SybilAttack(r, g1, 0.5)
	g2 = sampling.SybilAttack(r, g2, 0.5)
	seeds := sampling.Seeds(r.Split(), graph.IdentityPairs(n), 0.10)

	out := &AttackData{Possible: n}
	res, err := reconcile(g1, g2, seeds, 2, cfg)
	if err != nil {
		return nil, err
	}
	out.Core = evaluateAttack(res.Pairs, res.Seeds, n)

	basePairs, err := baseline.CommonNeighbors(g1, g2, seeds, baseline.CommonNeighborsOptions{
		Threshold: 2, Iterations: 2,
	})
	if err != nil {
		return nil, err
	}
	out.Baseline = evaluateAttack(basePairs, len(seeds), n)
	return out, nil
}

// Attack renders the experiment.
func Attack(cfg Config) (*Report, error) {
	data, err := AttackRun(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "Attack: Facebook s=0.75 + sybil clones (accept prob 0.5), 10% seeds, T=2"}
	t := &eval.Table{Header: []string{"algorithm", "seeds", "good", "bad", "clone-aligned", "possible"}}
	t.AddRow("User-Matching", data.Core.Seeds, data.Core.Good, data.Core.Bad, data.Core.CloneAligned, data.Possible)
	t.AddRow("common-neighbors", data.Baseline.Seeds, data.Baseline.Good, data.Baseline.Bad, data.Baseline.CloneAligned, data.Possible)
	rep.Tables = append(rep.Tables, t)
	rep.notef("paper: User-Matching 46955 correct / 114 wrong of 63731 possible; the simple baseline reconstructs under half as many (22346)")
	rep.notef("clone-aligned pairs link the attacker's two fake accounts for the same victim to each other; no real user is misidentified")
	return rep, nil
}
