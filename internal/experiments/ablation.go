package experiments

import (
	"github.com/sociograph/reconcile/internal/baseline"
	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/datasets"
	"github.com/sociograph/reconcile/internal/eval"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
)

// AblationData reproduces the paper's final experiment block ("Importance of
// degree bucketing, comparison with straightforward algorithm"):
//
//  1. Facebook, s = 0.5, 5% seeds: User-Matching with the degree schedule
//     versus the same algorithm with bucketing disabled and threshold 1.
//     Paper: bad matches increase by ~50% without bucketing, good matches
//     barely change.
//  2. The Wikipedia-style workload: User-Matching versus the plain
//     common-neighbor baseline. Paper: the baseline's error rate is 27.87%
//     versus 17.31%, with recall under 13.52%.
type AblationData struct {
	Bucketed    eval.Counts // Facebook, schedule on, T=1
	Unbucketed  eval.Counts // Facebook, schedule off, T=1
	WikiCore    eval.Counts
	WikiBase    eval.Counts
	WikiCoreRes int // total links found by core (incl. seeds)
	WikiBaseRes int
}

// AblationRun executes both comparisons.
func AblationRun(cfg Config) (*AblationData, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	out := &AblationData{}
	{
		r := cfg.rng(0xAB1)
		g := datasets.Facebook(r, cfg.Scale)
		n := g.NumNodes()
		g1, g2 := sampling.IndependentCopies(r, g, 0.5, 0.5)
		truth := eval.IdentityTruth(n)
		seeds := sampling.Seeds(r.Split(), graph.IdentityPairs(n), 0.05)

		// The paper's ablation runs at threshold 1, where nearly every
		// low-degree candidate ties; a tie-rejecting matcher would simply
		// abstain, so the greedy tie-breaking policy is used here — the
		// behaviour implied by "the pair with highest score in which either
		// u or v appear".
		opts := core.DefaultOptions()
		opts.Threshold = 1
		opts.Workers = cfg.Workers
		opts.Ties = core.TieLowestID
		res, err := core.Reconcile(g1, g2, seeds, opts)
		if err != nil {
			return nil, err
		}
		out.Bucketed = eval.Evaluate(res.Pairs, res.Seeds, truth)

		// Equalize total scoring passes: the bucketed run performs
		// k·⌈log D⌉ passes, the unbucketed one k — giving it the same pass
		// budget isolates the effect of the degree schedule itself.
		opts.Iterations *= len(opts.BucketSchedule(g1, g2))
		opts.DisableBucketing = true
		res, err = core.Reconcile(g1, g2, seeds, opts)
		if err != nil {
			return nil, err
		}
		out.Unbucketed = eval.Evaluate(res.Pairs, res.Seeds, truth)
	}
	{
		r := cfg.rng(0xAB2)
		d := datasets.Wikipedia(r, wikiScale(cfg))
		truth := eval.FromPairs(d.Truth)
		seeds := sampling.Seeds(r.Split(), d.InterLang, 0.10)

		res, err := reconcile(d.FR, d.DE, seeds, 3, cfg)
		if err != nil {
			return nil, err
		}
		out.WikiCore = eval.Evaluate(res.Pairs, res.Seeds, truth)
		out.WikiCoreRes = len(res.Pairs)

		basePairs, err := baseline.CommonNeighbors(d.FR, d.DE, seeds, baseline.CommonNeighborsOptions{
			Threshold: 3, Iterations: 2,
		})
		if err != nil {
			return nil, err
		}
		out.WikiBase = eval.Evaluate(basePairs, len(seeds), truth)
		out.WikiBaseRes = len(basePairs)
	}
	return out, nil
}

// Ablation renders the experiment.
func Ablation(cfg Config) (*Report, error) {
	data, err := AblationRun(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "Ablation: degree bucketing and the straightforward baseline"}
	t1 := &eval.Table{
		Title:  "Facebook s=0.5, 5% seeds, T=1",
		Header: []string{"variant", "good", "bad", "error rate"},
	}
	t1.AddRow("with bucketing", data.Bucketed.Good, data.Bucketed.Bad, data.Bucketed.ErrorRate())
	t1.AddRow("no bucketing", data.Unbucketed.Good, data.Unbucketed.Bad, data.Unbucketed.ErrorRate())
	rep.Tables = append(rep.Tables, t1)

	t2 := &eval.Table{
		Title:  "Wikipedia-style workload, 10% of inter-language links as seeds, T=3",
		Header: []string{"algorithm", "good", "bad", "error rate", "total links"},
	}
	t2.AddRow("User-Matching", data.WikiCore.Good, data.WikiCore.Bad, data.WikiCore.ErrorRate(), data.WikiCoreRes)
	t2.AddRow("common-neighbors", data.WikiBase.Good, data.WikiBase.Bad, data.WikiBase.ErrorRate(), data.WikiBaseRes)
	rep.Tables = append(rep.Tables, t2)

	rep.notef("paper: without bucketing bad matches rise ~50%% at unchanged good matches; on Wikipedia the baseline errs 27.87%% vs 17.31%% with recall under 13.52%%")
	return rep, nil
}
