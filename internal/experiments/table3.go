package experiments

import (
	"github.com/sociograph/reconcile/internal/datasets"
	"github.com/sociograph/reconcile/internal/eval"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
)

// GoodBadRow is one cell group of a paper-style results table: Good/Bad
// counts at one (seed probability, threshold) setting.
type GoodBadRow struct {
	SeedProb  float64
	Threshold int
	Counts    eval.Counts
}

// goodBadSweep runs the matcher over a grid of seed probabilities and
// thresholds against a fixed pair of copies.
func goodBadSweep(cfg Config, g1, g2 *graph.Graph, truth eval.Truth, truthPairs []graph.Pair,
	seedProbs []float64, thresholds []int, salt uint64) ([]GoodBadRow, error) {
	var rows []GoodBadRow
	r := cfg.rng(salt)
	for _, l := range seedProbs {
		seeds := sampling.Seeds(r.Split(), truthPairs, l)
		for _, T := range thresholds {
			res, err := reconcile(g1, g2, seeds, T, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, GoodBadRow{
				SeedProb:  l,
				Threshold: T,
				Counts:    eval.Evaluate(res.Pairs, res.Seeds, truth),
			})
		}
	}
	return rows, nil
}

func goodBadTable(title string, rows []GoodBadRow) *eval.Table {
	t := &eval.Table{
		Title:  title,
		Header: []string{"seed prob", "threshold", "seeds", "good", "bad", "error rate"},
	}
	for _, row := range rows {
		t.AddRow(percent(row.SeedProb), row.Threshold, row.Counts.Seeds,
			row.Counts.Good, row.Counts.Bad, row.Counts.ErrorRate())
	}
	return t
}

// Table3FacebookData reproduces Table 3 (left): the Facebook graph under
// independent edge deletion at s = 0.5, seed probabilities 20/10/5%,
// thresholds 5/4/2. Paper: error well under 1% everywhere; e.g. at 20%
// seeds, T=5 → 23915 good / 0 bad, T=2 → 41472 good / 203 bad.
func Table3FacebookData(cfg Config) ([]GoodBadRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.rng(0xFB)
	g := datasets.Facebook(r, cfg.Scale)
	g1, g2 := sampling.IndependentCopies(r, g, 0.5, 0.5)
	n := g.NumNodes()
	return goodBadSweep(cfg, g1, g2, eval.IdentityTruth(n), graph.IdentityPairs(n),
		[]float64{0.20, 0.10, 0.05}, []int{5, 4, 2}, 0xFB1)
}

// Table3Facebook renders Table 3 (left).
func Table3Facebook(cfg Config) (*Report, error) {
	rows, err := Table3FacebookData(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "Table 3 (left): Facebook, random deletion s=0.5"}
	rep.Tables = append(rep.Tables, goodBadTable("", rows))
	rep.notef("paper: 20%%/T5 23915/0 · 20%%/T2 41472/203 · 10%%/T2 38752/213 · 5%%/T2 36484/236 (error < 1%%)")
	return rep, nil
}

// Table3EnronData reproduces Table 3 (right): the Enron email graph, s = 0.5,
// seed probability 10%, thresholds 5/4/3. Paper: 3426/61, 3549/90, 3666/149
// — error under 5% on a network far sparser than real social graphs.
func Table3EnronData(cfg Config) ([]GoodBadRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.rng(0xE4)
	g := datasets.Enron(r, cfg.Scale)
	g1, g2 := sampling.IndependentCopies(r, g, 0.5, 0.5)
	n := g.NumNodes()
	return goodBadSweep(cfg, g1, g2, eval.IdentityTruth(n), graph.IdentityPairs(n),
		[]float64{0.10}, []int{5, 4, 3}, 0xE41)
}

// Table3Enron renders Table 3 (right).
func Table3Enron(cfg Config) (*Report, error) {
	rows, err := Table3EnronData(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "Table 3 (right): Enron, random deletion s=0.5"}
	rep.Tables = append(rep.Tables, goodBadTable("", rows))
	rep.notef("paper: T5 3426/61 · T4 3549/90 · T3 3666/149")
	return rep, nil
}
