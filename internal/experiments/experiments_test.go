package experiments

import (
	"strings"
	"testing"

	"github.com/sociograph/reconcile/internal/eval"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{Scale: 0.02, Seed: 7, RMATBase: 9}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{Scale: 0, RMATBase: 10},
		{Scale: 1.5, RMATBase: 10},
		{Scale: 0.5, RMATBase: 2},
		{Scale: 0.5, RMATBase: 30},
	} {
		if err := bad.validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	if err := DefaultConfig().validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"figure2", "table2", "table3fb", "table3enron", "figure3",
		"table4", "table5dblp", "table5gowalla", "table5wiki",
		"figure4", "attack", "ablation",
		"ext-noise", "ext-seednoise", "ext-scoring", "ext-theory", "ext-active",
	}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Registry), len(want))
	}
	for _, name := range want {
		if Registry[name] == nil {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("Names() returned %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names() not sorted")
		}
	}
}

func TestFigure2Claims(t *testing.T) {
	rows, err := Figure2Data(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	for _, row := range rows {
		// The paper's headline: precision ~100% on PA at every setting.
		// At unit-test scale (n=20K vs the paper's 1M) the sparsest seed
		// setting admits a few dense-core coincidences; 95% is the floor.
		if row.Counts.Precision() < 0.95 {
			t.Errorf("l=%v T=%d: precision %.4f below 95%%", row.SeedProb, row.Threshold, row.Counts.Precision())
		}
	}
	// Recall grows with seed probability at fixed threshold.
	recallAt := func(l float64, T int) float64 {
		for _, row := range rows {
			if row.SeedProb == l && row.Threshold == T {
				return row.Recall
			}
		}
		t.Fatalf("row l=%v T=%d missing", l, T)
		return 0
	}
	if recallAt(0.20, 2) < recallAt(0.01, 2) {
		t.Error("recall should not decrease with more seeds")
	}
	// Lowering the threshold raises recall.
	if recallAt(0.05, 2) < recallAt(0.05, 5) {
		t.Error("recall should not decrease with a lower threshold")
	}
	// High recall at the permissive end.
	if got := recallAt(0.20, 2); got < 0.85 {
		t.Errorf("recall at l=20%% T=2 is %.3f; expected near-complete identification", got)
	}
}

func TestTable2Scaling(t *testing.T) {
	rows, err := Table2Data(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Relative != 1 {
		t.Fatalf("base relative = %v", rows[0].Relative)
	}
	if rows[0].Nodes >= rows[1].Nodes || rows[1].Nodes >= rows[2].Nodes {
		t.Fatal("RMAT sizes not increasing")
	}
	if rows[2].Relative < rows[0].Relative {
		t.Error("largest graph should not be faster than the smallest")
	}
}

func TestTable3FacebookClaims(t *testing.T) {
	rows, err := Table3FacebookData(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	for _, row := range rows {
		// Paper: error well under 1%; allow small-scale slack to 5%.
		if row.Counts.ErrorRate() > 0.05 {
			t.Errorf("l=%v T=%d: error rate %.3f", row.SeedProb, row.Threshold, row.Counts.ErrorRate())
		}
	}
	// Lower threshold ⇒ more good matches (recall/precision trade).
	var t5, t2 int
	for _, row := range rows {
		if row.SeedProb == 0.20 && row.Threshold == 5 {
			t5 = row.Counts.Good
		}
		if row.SeedProb == 0.20 && row.Threshold == 2 {
			t2 = row.Counts.Good
		}
	}
	if t2 < t5 {
		t.Errorf("T=2 good (%d) should be >= T=5 good (%d)", t2, t5)
	}
}

func TestTable3EnronClaims(t *testing.T) {
	rows, err := Table3EnronData(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		// Paper: ~4.8% error among new matches on this very sparse graph;
		// allow up to 12% at reduced scale.
		if row.Counts.ErrorRate() > 0.12 {
			t.Errorf("T=%d: error rate %.3f", row.Threshold, row.Counts.ErrorRate())
		}
		if row.Counts.Good == 0 {
			t.Errorf("T=%d: no good matches", row.Threshold)
		}
	}
}

func TestFigure3Claims(t *testing.T) {
	rows, err := Figure3Data(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		// Paper: 100% precision on the real Facebook graph; the small-scale
		// configuration-model stand-in is locally more random, so a few
		// nodes missing from the cascade intersection get mismatched.
		if row.Counts.Precision() < 0.93 {
			t.Errorf("cascade l=%v T=%d: precision %.4f", row.SeedProb, row.Threshold, row.Counts.Precision())
		}
	}
	// Cascade recall at T=2/l=5% should be high (paper: 98.4%).
	for _, row := range rows {
		if row.SeedProb == 0.05 && row.Threshold == 2 && row.Recall < 0.80 {
			t.Errorf("cascade recall %.3f at l=5%% T=2; paper reports 98.4%%", row.Recall)
		}
	}
}

func TestTable4Claims(t *testing.T) {
	rows, err := Table4Data(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		// Paper: zero errors under correlated community deletion; allow the
		// tiny-scale stand-in (1200 users at 26% density vs the paper's 60K
		// at 0.45%) a 5% coincidence budget.
		if row.Counts.ErrorRate() > 0.05 {
			t.Errorf("T=%d: error rate %.4f; paper reports 0", row.Threshold, row.Counts.ErrorRate())
		}
		if row.Counts.Good == 0 {
			t.Errorf("T=%d: no matches found", row.Threshold)
		}
	}
}

func TestTable5Claims(t *testing.T) {
	dblp, err := Table5DBLPData(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range dblp {
		if row.Counts.ErrorRate() > 0.15 {
			t.Errorf("dblp T=%d: error rate %.3f; paper < 4.2%%", row.Threshold, row.Counts.ErrorRate())
		}
	}
	gow, err := Table5GowallaData(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range gow {
		if row.Counts.ErrorRate() > 0.15 {
			t.Errorf("gowalla T=%d: error rate %.3f; paper < 4%%", row.Threshold, row.Counts.ErrorRate())
		}
	}
	wiki, err := Table5WikipediaData(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range wiki {
		// The hard regime: error is expected (paper 17.5%) but bounded.
		if row.Counts.ErrorRate() > 0.40 {
			t.Errorf("wiki T=%d: error rate %.3f", row.Threshold, row.Counts.ErrorRate())
		}
		if row.Counts.Good == 0 {
			t.Errorf("wiki T=%d: no good matches", row.Threshold)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	data, err := Figure4Curves(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, nc := range []struct {
		name    string
		buckets []eval.DegreeBucket
	}{
		{"gowalla", data.Gowalla},
		{"dblp", data.DBLP},
	} {
		// Collect recall for populated buckets in degree order.
		var rs []float64
		for _, b := range nc.buckets {
			if b.Total > 0 {
				rs = append(rs, b.Recall())
			}
		}
		if len(rs) < 3 {
			t.Fatalf("%s: only %d populated buckets", nc.name, len(rs))
		}
		// The paper's shape: recall climbs with degree. Compare the lowest
		// populated bucket against the mean of the top three.
		top := (rs[len(rs)-1] + rs[len(rs)-2] + rs[len(rs)-3]) / 3
		if top < rs[0] {
			t.Errorf("%s: high-degree recall %.3f below low-degree recall %.3f", nc.name, top, rs[0])
		}
	}
}

func TestAttackClaims(t *testing.T) {
	data, err := AttackRun(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// User-Matching must keep precision high under attack...
	if data.Core.Precision() < 0.95 {
		t.Errorf("core precision under attack %.3f", data.Core.Precision())
	}
	if data.Core.Good == 0 {
		t.Fatal("no matches under attack")
	}
	// ...and out-recall the straightforward baseline (paper: 2.1×).
	if data.Core.Good <= data.Baseline.Good {
		t.Errorf("core good %d should exceed baseline good %d", data.Core.Good, data.Baseline.Good)
	}
}

func TestAblationClaims(t *testing.T) {
	data, err := AblationRun(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Degree bucketing reduces bad matches (paper: ~50% more without it)
	// without materially changing good matches.
	if data.Unbucketed.Bad <= data.Bucketed.Bad {
		t.Errorf("no-bucketing bad (%d) should exceed bucketed bad (%d)",
			data.Unbucketed.Bad, data.Bucketed.Bad)
	}
	lo, hi := data.Bucketed.Good*8/10, data.Bucketed.Good*12/10
	if data.Unbucketed.Good < lo || data.Unbucketed.Good > hi {
		t.Logf("note: good matches moved more than ±20%% without bucketing: %d vs %d",
			data.Unbucketed.Good, data.Bucketed.Good)
	}
	// On the Wikipedia workload the baseline must err more than core.
	if data.WikiBase.ErrorRate() < data.WikiCore.ErrorRate() {
		t.Errorf("baseline error %.3f should exceed core error %.3f",
			data.WikiBase.ErrorRate(), data.WikiCore.ErrorRate())
	}
}

func TestReportsRender(t *testing.T) {
	// Every registered experiment must produce a printable report at tiny
	// scale without error.
	for name, run := range Registry {
		rep, err := run(tiny())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := rep.String()
		if !strings.Contains(out, "==") || len(out) < 40 {
			t.Errorf("%s: implausible report output:\n%s", name, out)
		}
	}
}
