package experiments

import "testing"

func TestNoiseDegradesGracefully(t *testing.T) {
	rows, err := NoiseData(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Baseline (no noise) should be near-perfect; heavy noise should still
	// keep precision reasonable (graceful degradation, not collapse).
	if rows[0].Counts.Precision() < 0.95 {
		t.Errorf("baseline precision %.3f", rows[0].Counts.Precision())
	}
	for _, row := range rows {
		if row.Counts.Precision() < 0.80 {
			t.Errorf("noise=%v vdel=%v: precision collapsed to %.3f",
				row.NoiseFraction, row.VertexDeletion, row.Counts.Precision())
		}
		if row.Counts.Good == 0 {
			t.Errorf("noise=%v vdel=%v: no matches", row.NoiseFraction, row.VertexDeletion)
		}
	}
	// Recall at 30% noise should not exceed the clean recall.
	if rows[3].Recall > rows[0].Recall+0.02 {
		t.Errorf("recall rose under noise: %.3f vs %.3f", rows[3].Recall, rows[0].Recall)
	}
}

func TestSeedNoiseLinearNotCascading(t *testing.T) {
	rows, err := SeedNoiseData(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].FlipFraction != 0 {
		t.Fatal("first row must be the clean baseline")
	}
	base := rows[0].Counts
	if base.Precision() < 0.95 {
		t.Errorf("clean baseline precision %.3f", base.Precision())
	}
	for _, row := range rows[1:] {
		// Errors grow with seed corruption but must not cascade into the
		// majority of matches at 20% flips.
		if row.Counts.ErrorRate() > 0.5 {
			t.Errorf("flip=%v: error rate %.3f (cascade)", row.FlipFraction, row.Counts.ErrorRate())
		}
	}
	if rows[len(rows)-1].Counts.Bad < rows[0].Counts.Bad {
		t.Error("heavy seed corruption should not reduce errors")
	}
}

func TestScoringAblation(t *testing.T) {
	rows, err := ScoringAblationData(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// All variants stay precise on this instance.
	for _, row := range rows {
		if row.Counts.Precision() < 0.95 {
			t.Errorf("%v margin=%d: precision %.3f", row.Scoring, row.Margin, row.Counts.Precision())
		}
	}
	// Margins monotonically reduce matches (recall/precision trade).
	if rows[3].Counts.Good > rows[2].Counts.Good {
		t.Errorf("margin 2 good (%d) exceeds margin 1 good (%d)", rows[3].Counts.Good, rows[2].Counts.Good)
	}
	if rows[2].Counts.Good > rows[0].Counts.Good {
		t.Errorf("margin 1 good (%d) exceeds margin 0 good (%d)", rows[2].Counts.Good, rows[0].Counts.Good)
	}
}

func TestActiveAttackUnlocksNetwork(t *testing.T) {
	rows, err := ActiveAttackData(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More plants unlock more of the network, and the largest budget must
	// identify a substantial fraction with high precision.
	if rows[len(rows)-1].Counts.Good < rows[0].Counts.Good {
		t.Errorf("more plants found fewer matches: %d vs %d",
			rows[len(rows)-1].Counts.Good, rows[0].Counts.Good)
	}
	last := rows[len(rows)-1]
	if last.Recall < 0.3 {
		t.Errorf("40 plants unlocked only %.1f%% of the population", 100*last.Recall)
	}
	if last.Counts.Precision() < 0.90 {
		t.Errorf("active-attack precision %.3f", last.Counts.Precision())
	}
}
