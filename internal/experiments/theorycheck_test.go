package experiments

import (
	"math"
	"testing"
)

func TestTheoryCheck(t *testing.T) {
	rows, err := TheoryCheckData(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]TheoryRow{}
	for _, r := range rows {
		byName[r.Quantity] = r
	}
	// Measured witness means must track the closed-form expectations.
	tw := rows[0]
	if math.Abs(tw.Measured-tw.Predicted) > 0.2*tw.Predicted {
		t.Errorf("true witnesses: predicted %.1f, measured %.1f", tw.Predicted, tw.Measured)
	}
	fw := rows[1]
	if fw.Measured > 0.5*tw.Measured {
		t.Errorf("false witnesses %.2f not separated from true %.2f", fw.Measured, tw.Measured)
	}
	// Theorem 1 + Lemma 3 regime: no wrong matches, near-total recall.
	if rows[2].Measured != 0 {
		t.Errorf("wrong matches = %v, theory predicts 0", rows[2].Measured)
	}
	if rows[3].Measured < 0.9 {
		t.Errorf("identified fraction = %.3f, theory predicts 1-o(1)", rows[3].Measured)
	}
}
