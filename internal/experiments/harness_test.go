package experiments

import (
	"strings"
	"testing"
)

func TestPercent(t *testing.T) {
	cases := map[float64]string{
		0.01: "1%",
		0.05: "5%",
		0.10: "10%",
		0.20: "20%",
		1.0:  "100%",
	}
	for in, want := range cases {
		if got := percent(in); got != want {
			t.Errorf("percent(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestItoaAndRMATName(t *testing.T) {
	for in, want := range map[int]string{0: "0", 7: "7", 24: "24", 121: "121"} {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q, want %q", in, got, want)
		}
	}
	if got := rmatName(24); got != "RMAT24" {
		t.Errorf("rmatName = %q", got)
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{Name: "Demo"}
	rep.notef("value is %d", 42)
	out := rep.String()
	if !strings.Contains(out, "== Demo ==") || !strings.Contains(out, "note: value is 42") {
		t.Fatalf("report rendering:\n%s", out)
	}
}

func TestScaledFloor(t *testing.T) {
	cfg := Config{Scale: 0.001, RMATBase: 10}
	if got := scaled(cfg, 1000, 500); got != 500 {
		t.Errorf("scaled floor = %d, want 500", got)
	}
	cfg.Scale = 0.5
	if got := scaled(cfg, 1000, 100); got != 500 {
		t.Errorf("scaled = %d, want 500", got)
	}
}

func TestWikiScaleFloor(t *testing.T) {
	cfg := Config{Scale: 0.002, RMATBase: 10}
	if got := wikiScale(cfg); got != 0.001 {
		t.Errorf("wikiScale floor = %v, want 0.001", got)
	}
	cfg.Scale = 0.5
	if got := wikiScale(cfg); got != 0.05 {
		t.Errorf("wikiScale = %v, want 0.05", got)
	}
}

func TestConfigRngDeterministic(t *testing.T) {
	cfg := Config{Scale: 0.1, Seed: 9, RMATBase: 10}
	a := cfg.rng(1).Uint64()
	b := cfg.rng(1).Uint64()
	c := cfg.rng(2).Uint64()
	if a != b {
		t.Error("same salt must give the same stream")
	}
	if a == c {
		t.Error("different salts should differ")
	}
}
