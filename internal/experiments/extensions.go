package experiments

import (
	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/eval"
	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
)

// Extension experiments beyond the paper's evaluation, exercising the model
// generalizations Section 3.1 sketches ("with small probability, the two
// copies could have new 'noise' edges not present in the original network,
// or vertices could be deleted in the copies") and the robustness question
// raised by the Wikipedia experiment's corrupted human-curated seeds.

// NoiseRow is one setting of the copy-noise robustness sweep.
type NoiseRow struct {
	NoiseFraction  float64
	VertexDeletion float64
	Counts         eval.Counts
	Recall         float64
}

// NoiseData sweeps the generalized copy model on a PA graph: edge survival
// fixed at the paper's 0.5, with growing noise-edge fractions and vertex
// deletion. The paper proves nothing here; the expectation from its
// discussion is graceful degradation — precision staying high while recall
// erodes — because noise edges rarely align into mutual-best witnesses.
func NoiseData(cfg Config) ([]NoiseRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.rng(0x0E1)
	n := int(1000000 * cfg.Scale)
	if n < 1000 {
		n = 1000
	}
	g := gen.PreferentialAttachment(r, n, 20)
	truth := eval.IdentityTruth(n)
	var rows []NoiseRow
	for _, setting := range []struct{ noise, vdel float64 }{
		{0, 0}, {0.05, 0}, {0.15, 0}, {0.30, 0},
		{0.05, 0.05}, {0.15, 0.10},
	} {
		p := sampling.NoisyCopyParams{
			EdgeSurvival:      0.5,
			NoiseEdgeFraction: setting.noise,
			VertexDeletion:    setting.vdel,
		}
		g1, g2 := sampling.NoisyCopies(r.Split(), g, p)
		seeds := sampling.Seeds(r.Split(), graph.IdentityPairs(n), 0.10)
		res, err := reconcile(g1, g2, seeds, 2, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, NoiseRow{
			NoiseFraction:  setting.noise,
			VertexDeletion: setting.vdel,
			Counts:         eval.Evaluate(res.Pairs, res.Seeds, truth),
			Recall:         eval.LinkedRecall(res.Pairs, truth, g1, g2),
		})
	}
	return rows, nil
}

// Noise renders the copy-noise robustness extension.
func Noise(cfg Config) (*Report, error) {
	rows, err := NoiseData(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "Extension: noise edges and vertex deletion in the copies (PA, s=0.5, 10% seeds, T=2)"}
	t := &eval.Table{Header: []string{"noise frac", "vertex del", "good", "bad", "precision", "recall"}}
	for _, row := range rows {
		t.AddRow(row.NoiseFraction, row.VertexDeletion, row.Counts.Good, row.Counts.Bad,
			row.Counts.Precision(), row.Recall)
	}
	rep.Tables = append(rep.Tables, t)
	rep.notef("the paper's Section 3.1 generalization, not evaluated there; expectation: precision degrades slowly, recall erodes with noise")
	return rep, nil
}

// SeedNoiseRow is one setting of the corrupted-seed sweep.
type SeedNoiseRow struct {
	FlipFraction float64
	Counts       eval.Counts
}

// SeedNoiseData measures sensitivity to wrong trusted links: a fraction of
// the seed pairs point at the wrong node, as Wikipedia's curated
// inter-language links do. Wrong seeds radiate wrong witnesses, so some
// multiplication of errors is expected; the mutual-best rule should keep it
// roughly linear rather than cascading.
func SeedNoiseData(cfg Config) ([]SeedNoiseRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.rng(0x5EED)
	n := int(1000000 * cfg.Scale)
	if n < 1000 {
		n = 1000
	}
	g := gen.PreferentialAttachment(r, n, 20)
	g1, g2 := sampling.IndependentCopies(r, g, 0.5, 0.5)
	truth := eval.IdentityTruth(n)
	clean := sampling.Seeds(r.Split(), graph.IdentityPairs(n), 0.10)
	var rows []SeedNoiseRow
	for _, flip := range []float64{0, 0.01, 0.05, 0.10, 0.20} {
		seeds := sampling.CorruptSeeds(r.Split(), clean, n, flip)
		res, err := reconcile(g1, g2, seeds, 2, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SeedNoiseRow{
			FlipFraction: flip,
			Counts:       eval.Evaluate(res.Pairs, res.Seeds, truth),
		})
	}
	return rows, nil
}

// SeedNoise renders the corrupted-seed robustness extension.
func SeedNoise(cfg Config) (*Report, error) {
	rows, err := SeedNoiseData(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "Extension: corrupted seed links (PA, s=0.5, 10% seeds, T=2)"}
	t := &eval.Table{Header: []string{"flipped seeds", "good", "bad", "error rate"}}
	for _, row := range rows {
		t.AddRow(percent(row.FlipFraction), row.Counts.Good, row.Counts.Bad, row.Counts.ErrorRate())
	}
	rep.Tables = append(rep.Tables, t)
	rep.notef("models the human errors in Wikipedia's inter-language links; the paper suggests ML-based signals to validate seeds")
	return rep, nil
}

// ScoringRow is one setting of the scoring-function ablation.
type ScoringRow struct {
	Scoring core.Scoring
	Margin  int
	Counts  eval.Counts
}

// ScoringAblationData compares the paper's raw witness-count ranking with
// the Adamic-Adar weighted ranking and with margin requirements on the
// Facebook stand-in (s=0.5, 5% seeds, T=2) — the design-choice ablations
// DESIGN.md calls out.
func ScoringAblationData(cfg Config) ([]ScoringRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.rng(0x5C0)
	g := gen.PreferentialAttachment(r, scaled(cfg, 1000000, 1000), 20)
	g1, g2 := sampling.IndependentCopies(r, g, 0.5, 0.5)
	n := g.NumNodes()
	truth := eval.IdentityTruth(n)
	seeds := sampling.Seeds(r.Split(), graph.IdentityPairs(n), 0.05)
	var rows []ScoringRow
	for _, setting := range []struct {
		scoring core.Scoring
		margin  int
	}{
		{core.ScoreWitnessCount, 0},
		{core.ScoreAdamicAdar, 0},
		{core.ScoreWitnessCount, 1},
		{core.ScoreWitnessCount, 2},
	} {
		opts := core.DefaultOptions()
		opts.Threshold = 2
		opts.Workers = cfg.Workers
		opts.Scoring = setting.scoring
		opts.MinMargin = setting.margin
		res, err := core.Reconcile(g1, g2, seeds, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScoringRow{
			Scoring: setting.scoring,
			Margin:  setting.margin,
			Counts:  eval.Evaluate(res.Pairs, res.Seeds, truth),
		})
	}
	return rows, nil
}

func scaled(cfg Config, paperN, minN int) int {
	n := int(float64(paperN) * cfg.Scale)
	if n < minN {
		n = minN
	}
	return n
}

// ScoringAblation renders the scoring/margin ablation.
func ScoringAblation(cfg Config) (*Report, error) {
	rows, err := ScoringAblationData(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "Extension: scoring-function and margin ablation (PA, s=0.5, 5% seeds, T=2)"}
	t := &eval.Table{Header: []string{"scoring", "margin", "good", "bad", "error rate"}}
	for _, row := range rows {
		t.AddRow(row.Scoring.String(), row.Margin, row.Counts.Good, row.Counts.Bad, row.Counts.ErrorRate())
	}
	rep.Tables = append(rep.Tables, t)
	rep.notef("witness-count with margin 0 is the paper's algorithm; Adamic-Adar reweighting and margins are the refinements its discussion invites")
	return rep, nil
}
