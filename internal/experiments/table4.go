package experiments

import (
	"github.com/sociograph/reconcile/internal/datasets"
	"github.com/sociograph/reconcile/internal/eval"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
)

// Table4Data reproduces the correlated-deletion experiment: an Affiliation
// Networks graph whose copies drop whole interests (communities) with
// probability 0.25 each, seed probability 10%, thresholds 4/3/2. The same
// user can have completely different neighborhoods in the two copies.
// Paper: 54770/0, 55863/0, 55942/0 — perfect precision, near-total recall.
func Table4Data(cfg Config) ([]GoodBadRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.rng(0x7B4)
	an := datasets.AffiliationStandIn(r, cfg.Scale)
	g1, g2 := sampling.CommunityCopies(r, an, 0.25, 150)
	n := an.Users
	return goodBadSweep(cfg, g1, g2, eval.IdentityTruth(n), graph.IdentityPairs(n),
		[]float64{0.10}, []int{4, 3, 2}, 0x7B41)
}

// Table4 renders the experiment.
func Table4(cfg Config) (*Report, error) {
	rows, err := Table4Data(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "Table 4: Affiliation Networks under correlated interest deletion (drop prob 0.25)"}
	rep.Tables = append(rep.Tables, goodBadTable("", rows))
	rep.notef("paper: T4 54770/0 · T3 55863/0 · T2 55942/0 (zero errors)")
	return rep, nil
}
