package experiments

import (
	"github.com/sociograph/reconcile/internal/eval"
	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
)

// Figure2 reproduces the paper's Figure 2: a preferential attachment graph
// (paper: n = 1M, m = 20) with independent edge deletion at s = 0.5; the
// number of correctly detected pairs as the seed link probability and the
// matching threshold vary. The paper's headline: recall recovers almost the
// whole graph and precision is 100% at every threshold and seed probability.
type Figure2Row struct {
	SeedProb  float64
	Threshold int
	Counts    eval.Counts
	Recall    float64
}

// Figure2Data runs the experiment and returns structured rows.
func Figure2Data(cfg Config) ([]Figure2Row, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.rng(0xF16)
	n := int(1000000 * cfg.Scale)
	if n < 1000 {
		n = 1000
	}
	g := gen.PreferentialAttachment(r, n, 20)
	g1, g2 := sampling.IndependentCopies(r, g, 0.5, 0.5)
	truth := eval.IdentityTruth(n)
	var rows []Figure2Row
	for _, l := range []float64{0.01, 0.05, 0.10, 0.20} {
		seeds := sampling.Seeds(r.Split(), graph.IdentityPairs(n), l)
		for _, T := range []int{5, 4, 3, 2} {
			res, err := reconcile(g1, g2, seeds, T, cfg)
			if err != nil {
				return nil, err
			}
			c := eval.Evaluate(res.Pairs, res.Seeds, truth)
			rows = append(rows, Figure2Row{
				SeedProb:  l,
				Threshold: T,
				Counts:    c,
				Recall:    eval.LinkedRecall(res.Pairs, truth, g1, g2),
			})
		}
	}
	return rows, nil
}

// Figure2 renders the experiment as a paper-style report.
func Figure2(cfg Config) (*Report, error) {
	rows, err := Figure2Data(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "Figure 2: PA + random deletion (s=0.5), corrected pairs by seed probability and threshold"}
	t := &eval.Table{Header: []string{"seed prob", "threshold", "seeds", "good", "bad", "precision", "recall"}}
	for _, row := range rows {
		t.AddRow(percent(row.SeedProb), row.Threshold, row.Counts.Seeds,
			row.Counts.Good, row.Counts.Bad, row.Counts.Precision(), row.Recall)
	}
	rep.Tables = append(rep.Tables, t)
	rep.notef("paper: precision 100%% at every threshold and seed probability; recall approaches the whole graph")
	return rep, nil
}
