package experiments

import (
	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/datasets"
	"github.com/sociograph/reconcile/internal/eval"
	"github.com/sociograph/reconcile/internal/sampling"
)

// ActiveAttackRow is one plant-budget setting of the active-attack sweep.
type ActiveAttackRow struct {
	Plants  int
	Targets int
	Counts  eval.Counts
	Recall  float64
}

// ActiveAttackData runs the Backstrom-et-al.-style *active* attack end to
// end (an extension; the paper's related work discusses the attack but its
// own evaluation is passive): the attacker plants k colluding accounts into
// both networks before observing them, each befriending a set of targets,
// and uses only the planted accounts as seeds. The sweep measures how much
// of the network k plants unlock — the active-attack analogue of Figure 2's
// seed-probability axis, and a measure of how little control an attacker
// needs to de-anonymize users via reconciliation.
func ActiveAttackData(cfg Config) ([]ActiveAttackRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.rng(0xAC7)
	g := datasets.Facebook(r, cfg.Scale)
	n := g.NumNodes()
	g1, g2 := sampling.IndependentCopies(r, g, 0.75, 0.75)
	truth := eval.IdentityTruth(n)
	var rows []ActiveAttackRow
	for _, setting := range []struct{ plants, targets int }{
		{5, 10}, {10, 20}, {20, 20}, {40, 40},
	} {
		params := sampling.ActiveAttackParams{
			Plants:          setting.plants,
			InterPlantProb:  0.5,
			TargetsPerPlant: setting.targets,
		}
		// The attacker plans one campaign — the same plant IDs and the same
		// targeted users on both networks; the coordinated targets are what
		// make the plants usable witnesses.
		targets := sampling.PlanTargets(r.Split(), n, params)
		a1 := sampling.ActiveAttackWith(r.Split(), g1, params, targets)
		a2 := sampling.ActiveAttackWith(r.Split(), g2, params, targets)
		seeds := sampling.PlantedPairs(a1, a2)
		opts := core.DefaultOptions()
		opts.Threshold = 2
		opts.Iterations = 4 // plants are few; give the cascade room
		opts.Workers = cfg.Workers
		res, err := core.Reconcile(a1.Attacked, a2.Attacked, seeds, opts)
		if err != nil {
			return nil, err
		}
		// Judge only real-node matches; plant-plant re-identifications are
		// the attacker's own accounts.
		c := eval.Counts{Seeds: res.Seeds}
		for _, p := range res.NewPairs {
			if int(p.Left) >= n && int(p.Right) >= n {
				continue
			}
			if want, ok := truth[p.Left]; ok && want == p.Right {
				c.Good++
			} else {
				c.Bad++
			}
		}
		rows = append(rows, ActiveAttackRow{
			Plants:  setting.plants,
			Targets: setting.targets,
			Counts:  c,
			Recall:  float64(c.Good) / float64(n),
		})
	}
	return rows, nil
}

// ActiveAttackExp renders the active-attack extension.
func ActiveAttackExp(cfg Config) (*Report, error) {
	rows, err := ActiveAttackData(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "Extension: active attack (planted colluding accounts as the only seeds; Facebook, s=0.75, T=2)"}
	t := &eval.Table{Header: []string{"plants", "targets each", "good", "bad", "recall of population"}}
	for _, row := range rows {
		t.AddRow(row.Plants, row.Targets, row.Counts.Good, row.Counts.Bad, row.Recall)
	}
	rep.Tables = append(rep.Tables, t)
	rep.notef("the Backstrom et al. active attack driven through the reconciliation algorithm; a few dozen planted accounts substitute for thousands of organic seed links")
	return rep, nil
}
