package experiments

import (
	"github.com/sociograph/reconcile/internal/datasets"
	"github.com/sociograph/reconcile/internal/eval"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
)

// Figure4 reproduces the precision/recall-versus-degree curves for Gowalla
// and DBLP (threshold 2, 10% seeds — the Table 5 configuration). The
// paper's shape: precision is high at every degree; recall climbs steeply
// with degree, passing 50% around degree 11 on DBLP and nearing 100% for
// high-degree nodes.
type Figure4Data struct {
	Gowalla []eval.DegreeBucket
	DBLP    []eval.DegreeBucket
}

// Figure4Curves runs both datasets and returns the per-degree buckets.
func Figure4Curves(cfg Config) (*Figure4Data, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	out := &Figure4Data{}

	{
		r := cfg.rng(0xF40)
		d := datasets.Gowalla(r, cfg.Scale)
		g1, g2 := d.Split()
		n := d.Friends.NumNodes()
		seeds := sampling.Seeds(r.Split(), graph.IdentityPairs(n), 0.10)
		res, err := reconcile(g1, g2, seeds, 2, cfg)
		if err != nil {
			return nil, err
		}
		out.Gowalla = eval.DegreeCurve(g1, g2, res.Pairs, res.Seeds, eval.IdentityTruth(n))
	}
	{
		r := cfg.rng(0xF41)
		d := datasets.DBLP(r, cfg.Scale)
		g1, g2 := d.Split()
		seeds := sampling.Seeds(r.Split(), graph.IdentityPairs(d.Nodes), 0.10)
		res, err := reconcile(g1, g2, seeds, 2, cfg)
		if err != nil {
			return nil, err
		}
		out.DBLP = eval.DegreeCurve(g1, g2, res.Pairs, res.Seeds, eval.IdentityTruth(d.Nodes))
	}
	return out, nil
}

// Figure4 renders both curves.
func Figure4(cfg Config) (*Report, error) {
	data, err := Figure4Curves(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "Figure 4: precision and recall vs degree (Gowalla, DBLP; T=2, 10% seeds)"}
	for _, part := range []struct {
		name    string
		buckets []eval.DegreeBucket
	}{{"Gowalla", data.Gowalla}, {"DBLP", data.DBLP}} {
		t := &eval.Table{
			Title:  part.name,
			Header: []string{"degree", "nodes", "seeds", "good", "bad", "precision", "recall"},
		}
		for _, b := range part.buckets {
			if b.Total == 0 && b.Good+b.Bad+b.Seeds == 0 {
				continue
			}
			t.AddRow(bucketRange(b), b.Total, b.Seeds, b.Good, b.Bad, b.Precision(), b.Recall())
		}
		rep.Tables = append(rep.Tables, t)
	}
	rep.notef("paper: precision stays high at all degrees; recall climbs with degree (over half of DBLP nodes of degree >= 11 identified)")
	return rep, nil
}

func bucketRange(b eval.DegreeBucket) string {
	if b.Lo == b.Hi {
		return itoa(b.Lo)
	}
	return itoa(b.Lo) + "-" + itoa(b.Hi)
}
