package experiments

import (
	"github.com/sociograph/reconcile/internal/datasets"
	"github.com/sociograph/reconcile/internal/eval"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
)

// Table 5 covers the real-world scenarios where the two graphs are not
// random copies of a common parent: DBLP split by even/odd publication
// years, Gowalla split by odd/even check-in months, and the French/German
// Wikipedia pair.

// Table5DBLPData reproduces Table 5 (top left). Paper, at 10% seeds:
// T5 42797/58 · T4 53026/641 · T2 68641/2985 (error < 4.2%), identifying
// over half the nodes of degree ≥ 11.
func Table5DBLPData(cfg Config) ([]GoodBadRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.rng(0xDB)
	d := datasets.DBLP(r, cfg.Scale)
	g1, g2 := d.Split()
	return goodBadSweep(cfg, g1, g2, eval.IdentityTruth(d.Nodes), graph.IdentityPairs(d.Nodes),
		[]float64{0.10}, []int{5, 4, 2}, 0xDB1)
}

// Table5DBLP renders the DBLP experiment.
func Table5DBLP(cfg Config) (*Report, error) {
	rows, err := Table5DBLPData(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "Table 5 (top left): DBLP, even vs odd publication years"}
	rep.Tables = append(rep.Tables, goodBadTable("", rows))
	rep.notef("paper: T5 42797/58 · T4 53026/641 · T2 68641/2985")
	return rep, nil
}

// Table5GowallaData reproduces Table 5 (top right). Paper, at 10% seeds:
// T5 5520/29 · T4 5917/48 · T2 7931/155 — over 4000 of the ~6000
// intersection nodes above degree 5 identified at 3.75% error.
func Table5GowallaData(cfg Config) ([]GoodBadRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.rng(0x90A)
	d := datasets.Gowalla(r, cfg.Scale)
	g1, g2 := d.Split()
	n := d.Friends.NumNodes()
	return goodBadSweep(cfg, g1, g2, eval.IdentityTruth(n), graph.IdentityPairs(n),
		[]float64{0.10}, []int{5, 4, 2}, 0x90A1)
}

// Table5Gowalla renders the Gowalla experiment.
func Table5Gowalla(cfg Config) (*Report, error) {
	rows, err := Table5GowallaData(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "Table 5 (top right): Gowalla, odd vs even check-in months"}
	rep.Tables = append(rep.Tables, goodBadTable("", rows))
	rep.notef("paper: T5 5520/29 · T4 5917/48 · T2 7931/155")
	return rep, nil
}

// Table5WikipediaData reproduces Table 5 (bottom): French vs German
// Wikipedia, seeded with 10% of the curated inter-language links. The
// graphs share no generative parent; ground truth is the concept
// correspondence. Paper: T5 108343/9441 · T3 122740/14373 — the matcher
// nearly triples the known links at a 17.5% error rate on new links.
func Table5WikipediaData(cfg Config) ([]GoodBadRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.rng(0x317)
	d := datasets.Wikipedia(r, wikiScale(cfg))
	truth := eval.FromPairs(d.Truth)
	var rows []GoodBadRow
	seeds := sampling.Seeds(r.Split(), d.InterLang, 0.10)
	for _, T := range []int{5, 3} {
		res, err := reconcile(d.FR, d.DE, seeds, T, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, GoodBadRow{
			SeedProb:  0.10,
			Threshold: T,
			Counts:    eval.Evaluate(res.Pairs, res.Seeds, truth),
		})
	}
	return rows, nil
}

// wikiScale shrinks the Wikipedia stand-in relative to the other datasets:
// the paper's FR graph is 4.36M nodes, ~70× Facebook, so running it at the
// same scale fraction would dominate the suite's runtime.
func wikiScale(cfg Config) float64 {
	s := cfg.Scale / 10
	if s < 0.001 {
		s = 0.001
	}
	return s
}

// Table5Wikipedia renders the Wikipedia experiment.
func Table5Wikipedia(cfg Config) (*Report, error) {
	rows, err := Table5WikipediaData(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "Table 5 (bottom): French vs German Wikipedia (seeds = 10% of inter-language links)"}
	rep.Tables = append(rep.Tables, goodBadTable("", rows))
	rep.notef("paper: T5 108343/9441 · T3 122740/14373 (17.5%% error on new links; graphs share no common parent)")
	return rep, nil
}
