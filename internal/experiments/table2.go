package experiments

import (
	"time"

	"github.com/sociograph/reconcile/internal/eval"
	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
)

// Table2 reproduces the scalability table: three RMAT graphs of increasing
// size (paper: RMAT24/26/28, up to 121M nodes / 8.5B edges), copies at
// s = 0.5, seed probability 0.10, and the matcher's relative running time.
// The paper reports 1 / 1.199 / 12.544 with fixed resources — growth far
// below the 13.7×/209× node/edge growth, i.e. near-linear scaling per edge.
type Table2Row struct {
	Name     string
	Scale    int
	Nodes    int
	Edges    int64
	Elapsed  time.Duration
	Relative float64
}

// Table2Data runs the experiment. RMAT scales are cfg.RMATBase, +2, +4
// (the paper's 24/26/28 spacing).
func Table2Data(cfg Config) ([]Table2Row, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var rows []Table2Row
	for i, sc := range []int{cfg.RMATBase, cfg.RMATBase + 2, cfg.RMATBase + 4} {
		r := cfg.rng(uint64(0x7B2 + i))
		g := gen.RMAT(r, gen.DefaultRMAT(sc))
		g1, g2 := sampling.IndependentCopies(r, g, 0.5, 0.5)
		seeds := sampling.Seeds(r, graph.IdentityPairs(g.NumNodes()), 0.10)
		start := time.Now()
		if _, err := reconcile(g1, g2, seeds, 2, cfg); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		rows = append(rows, Table2Row{
			Name:    rmatName(sc),
			Scale:   sc,
			Nodes:   g.NumNodes(),
			Edges:   g.NumEdges(),
			Elapsed: elapsed,
		})
	}
	base := rows[0].Elapsed
	for i := range rows {
		rows[i].Relative = float64(rows[i].Elapsed) / float64(base)
	}
	return rows, nil
}

func rmatName(scale int) string {
	return "RMAT" + itoa(scale)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Table2 renders the experiment.
func Table2(cfg Config) (*Report, error) {
	rows, err := Table2Data(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "Table 2: relative running time on growing RMAT graphs (s=0.5, seed prob 10%)"}
	t := &eval.Table{Header: []string{"network", "nodes", "edges", "time", "relative", "us/edge"}}
	for _, row := range rows {
		usPerEdge := float64(row.Elapsed.Microseconds()) / float64(row.Edges)
		t.AddRow(row.Name, row.Nodes, row.Edges, row.Elapsed.Round(time.Millisecond).String(), row.Relative, usPerEdge)
	}
	rep.Tables = append(rep.Tables, t)
	rep.notef("paper (RMAT24/26/28): relative running times 1 / 1.199 / 12.544 on a MapReduce cluster at fixed resources")
	rep.notef("single-machine runs are compute-bound, so relative time tracks the Σ deg(u1)·deg(u2) witness work (superlinear in hub degrees); per-edge cost isolates the algorithmic scaling")
	return rep, nil
}
