package experiments

import (
	"math"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/eval"
	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
	"github.com/sociograph/reconcile/internal/theory"
)

// TheoryRow compares a Section 4.1 prediction with its measurement.
type TheoryRow struct {
	Quantity  string
	Predicted float64
	Measured  float64
}

// TheoryCheckData instantiates the Erdős–Rényi model of Theorem 1 in its
// proven regime and measures the quantities the theorem bounds: the
// expected first-phase similarity witnesses of true pairs, of false pairs,
// and the resulting zero-error identification.
func TheoryCheckData(cfg Config) ([]TheoryRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := cfg.rng(0x7E0)
	n := scaled(cfg, 60000, 1500)
	model := theory.ERModel{N: n, P: 30 * math.Log(float64(n)) / float64(n), S: 0.7, L: 0.4}
	g := gen.ErdosRenyi(r, model.N, model.P)
	g1, g2 := sampling.IndependentCopies(r, g, model.S, model.S)
	seeds := sampling.Seeds(r.Split(), graph.IdentityPairs(n), model.L)
	m, err := core.NewMatching(n, n, seeds)
	if err != nil {
		return nil, err
	}

	// Sample witness counts for true and false pairs under the seed set.
	sampleR := r.Split()
	const samples = 300
	var trueSum, falseSum float64
	for i := 0; i < samples; i++ {
		v := graph.NodeID(sampleR.IntN(n))
		w := graph.NodeID(sampleR.IntN(n))
		if w == v {
			w = (w + 1) % graph.NodeID(n)
		}
		trueSum += float64(core.SimilarityWitnesses(g1, g2, m, v, v))
		falseSum += float64(core.SimilarityWitnesses(g1, g2, m, v, w))
	}

	opts := core.DefaultOptions()
	opts.Threshold = 3 // Lemma 3's threshold
	opts.Workers = cfg.Workers
	res, err := core.Reconcile(g1, g2, seeds, opts)
	if err != nil {
		return nil, err
	}
	counts := eval.Evaluate(res.Pairs, res.Seeds, eval.IdentityTruth(n))
	identified := float64(len(res.Pairs)) / float64(n)

	return []TheoryRow{
		{"true-pair witnesses (E=(n-1)ps²l)", model.ExpectedTrueWitnesses(), trueSum / samples},
		{"false-pair witnesses (E=(n-2)p²s²l)", model.ExpectedFalseWitnesses(), falseSum / samples},
		{"wrong matches (Thm 1+Lemma 3: 0)", 0, float64(counts.Bad)},
		{"identified fraction (Thm 4: 1-o(1))", 1, identified},
	}, nil
}

// TheoryCheck renders the Theorem 1 validation.
func TheoryCheck(cfg Config) (*Report, error) {
	rows, err := TheoryCheckData(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "Extension: Section 4.1 theory check (G(n,p) in Theorem 1's regime, T=3)"}
	t := &eval.Table{Header: []string{"quantity", "predicted", "measured"}}
	for _, row := range rows {
		t.AddRow(row.Quantity, row.Predicted, row.Measured)
	}
	rep.Tables = append(rep.Tables, t)
	rep.notef("witness expectations are the exact formulas of Section 4.1; the gap factor between them is p")
	return rep, nil
}
