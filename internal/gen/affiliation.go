package gen

import (
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// The Affiliation Networks model (Lattanzi & Sivakumar, STOC 2009) builds a
// bipartite graph of users and interests by an evolving copying process; the
// social graph is its folded one-mode projection (users are connected iff
// they share an interest). The paper uses it for the correlated-deletion
// experiment (Table 4): an entire interest — and hence the community clique
// it induces — survives or dies together in each copy.

// AffiliationParams configures the generator.
type AffiliationParams struct {
	// Users is the number of user nodes in the folded graph.
	Users int
	// MeanMemberships is the average number of interests per user
	// (memberships are 1 + Geometric, so the minimum is one).
	MeanMemberships float64
	// NewInterestProb is the probability that a membership creates a fresh
	// interest instead of joining an existing one preferentially by size.
	NewInterestProb float64
	// MaxCommunity caps community size: a user joining a full community is
	// connected to MaxCommunity random members instead of all (keeps the
	// folded graph's density bounded, as the published model's parameters do).
	MaxCommunity int
}

// DefaultAffiliation mirrors the shape of the paper's AN dataset (60k users,
// very dense folded graph — 8.07M edges, avg degree ≈ 270 — built from
// overlapping communities) at an arbitrary user count.
func DefaultAffiliation(users int) AffiliationParams {
	return AffiliationParams{
		Users:           users,
		MeanMemberships: 4,
		NewInterestProb: 0.08,
		MaxCommunity:    150,
	}
}

// AffiliationNetwork is the generated bipartite structure. Communities[i]
// lists the members of interest i. The folded social graph is produced by
// Fold (all interests) or FoldKeeping (a surviving subset — the correlated
// deletion model of Table 4).
type AffiliationNetwork struct {
	Users       int
	Communities [][]graph.NodeID
	// SparseSeed drives the sparsification of over-large communities.
	// Folding is deterministic given the network: a community contributes
	// the same edge set to every fold that keeps it. This matters for the
	// correlated-deletion experiment — the two copies must agree on a
	// community's internal edges, exactly as the paper's model keeps or
	// deletes "all the edges inside the community".
	SparseSeed uint64
}

// Affiliation generates an affiliation network by preferential community
// joining: each membership either creates a new interest (probability
// NewInterestProb) or joins an existing interest chosen proportional to its
// current size — the rich-get-richer dynamic of the published model, which
// yields power-law community sizes.
func Affiliation(r *xrand.Rand, p AffiliationParams) *AffiliationNetwork {
	if p.Users < 0 {
		panic("gen: Affiliation requires Users >= 0")
	}
	if p.MeanMemberships < 2 {
		panic("gen: Affiliation requires MeanMemberships >= 2")
	}
	if p.NewInterestProb <= 0 || p.NewInterestProb > 1 {
		panic("gen: Affiliation requires NewInterestProb in (0,1]")
	}
	if p.MaxCommunity < 2 {
		panic("gen: Affiliation requires MaxCommunity >= 2")
	}
	an := &AffiliationNetwork{Users: p.Users, SparseSeed: r.Uint64()}
	// membershipSlots holds one entry per (user, interest) membership so a
	// uniform draw is size-proportional interest selection.
	var membershipSlots []int
	// Every user affiliates with at least two interests (as in the published
	// model, where users accumulate multiple affiliations); the geometric
	// tail supplies the remainder of the mean.
	pJoinMore := 1 - 1/(p.MeanMemberships-1)
	if p.MeanMemberships <= 2 {
		pJoinMore = 0
	}
	for u := 0; u < p.Users; u++ {
		k := 2
		if pJoinMore > 0 {
			k += r.Geometric(1 - pJoinMore)
		}
		joined := map[int]bool{}
		for j := 0; j < k; j++ {
			var interest int
			if len(an.Communities) == 0 || r.Bool(p.NewInterestProb) {
				interest = len(an.Communities)
				an.Communities = append(an.Communities, nil)
			} else {
				interest = membershipSlots[r.IntN(len(membershipSlots))]
			}
			if joined[interest] {
				continue
			}
			joined[interest] = true
			an.Communities[interest] = append(an.Communities[interest], graph.NodeID(u))
			membershipSlots = append(membershipSlots, interest)
		}
	}
	return an
}

// Fold returns the one-mode projection using every community.
func (an *AffiliationNetwork) Fold(maxCommunity int) *graph.Graph {
	keep := make([]bool, len(an.Communities))
	for i := range keep {
		keep[i] = true
	}
	return an.FoldKeeping(keep, maxCommunity)
}

// FoldKeeping returns the one-mode projection using only communities i with
// keep[i] == true. Within a community of size <= maxCommunity a full clique
// is added; larger communities are sparsified by giving each member
// maxCommunity in-community neighbors drawn from a per-community
// deterministic stream, so every fold that keeps a community contributes
// the identical edge set.
func (an *AffiliationNetwork) FoldKeeping(keep []bool, maxCommunity int) *graph.Graph {
	if len(keep) != len(an.Communities) {
		panic("gen: FoldKeeping mask length mismatch")
	}
	if maxCommunity < 2 {
		panic("gen: FoldKeeping requires maxCommunity >= 2")
	}
	b := graph.NewBuilder(an.Users, 0)
	for ci, members := range an.Communities {
		if !keep[ci] || len(members) < 2 {
			continue
		}
		if len(members) <= maxCommunity {
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					b.AddEdge(members[i], members[j])
				}
			}
			continue
		}
		// Sparsify deterministically per community.
		cr := xrand.New(an.SparseSeed + uint64(ci)*0x9e3779b97f4a7c15)
		for i, u := range members {
			for t := 0; t < maxCommunity; t++ {
				j := cr.IntN(len(members) - 1)
				if j >= i {
					j++
				}
				b.AddEdge(u, members[j])
			}
		}
	}
	return b.Build()
}

// NumCommunities returns the number of interests generated.
func (an *AffiliationNetwork) NumCommunities() int { return len(an.Communities) }
