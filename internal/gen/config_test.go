package gen

import (
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

func TestConfigurationModelDegrees(t *testing.T) {
	r := xrand.New(1)
	degrees := r.PowerLawDegrees(3000, 2, 100, 2.5)
	g := ConfigurationModel(r, degrees)
	if g.NumNodes() != 3000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Erased configuration model: realized degree <= prescribed, and the
	// total loss to collisions must be small for sparse sequences.
	var prescribed, realized int64
	for v, d := range degrees {
		got := g.Degree(graph.NodeID(v))
		if got > d {
			t.Fatalf("node %d realized degree %d > prescribed %d", v, got, d)
		}
		prescribed += int64(d)
		realized += int64(got)
	}
	if realized < prescribed*9/10 {
		t.Fatalf("realized stub total %d, prescribed %d: too much erased", realized, prescribed)
	}
}

func TestConfigurationModelOddSumPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd degree sum did not panic")
		}
	}()
	ConfigurationModel(xrand.New(1), []int{1, 1, 1})
}

func TestConfigurationModelNegativeDegreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative degree did not panic")
		}
	}()
	ConfigurationModel(xrand.New(1), []int{2, -1, 1})
}

func TestConfigurationModelEmpty(t *testing.T) {
	g := ConfigurationModel(xrand.New(1), nil)
	if g.NumNodes() != 0 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	g = ConfigurationModel(xrand.New(1), []int{0, 0})
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Fatalf("zero-degree graph: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestTriadicClosure(t *testing.T) {
	r := xrand.New(2)
	base := ErdosRenyi(r, 500, 0.01)
	closed := TriadicClosure(r, base, 2, 0.5)
	if closed.NumEdges() < base.NumEdges() {
		t.Fatalf("closure lost edges: %d < %d", closed.NumEdges(), base.NumEdges())
	}
	base.Edges(func(e graph.Edge) bool {
		if !closed.HasEdge(e.U, e.V) {
			t.Fatalf("original edge %v missing after closure", e)
		}
		return true
	})
	if err := closed.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zero rounds is the identity.
	same := TriadicClosure(r, base, 0, 0.5)
	if same.NumEdges() != base.NumEdges() {
		t.Fatalf("0 rounds changed the graph: %d vs %d", same.NumEdges(), base.NumEdges())
	}
}

func TestTriadicClosurePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative rounds did not panic")
		}
	}()
	TriadicClosure(xrand.New(1), ErdosRenyi(xrand.New(1), 10, 0.2), -1, 0.5)
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0: pure ring lattice, every node has degree exactly 2k.
	g := WattsStrogatz(xrand.New(1), 100, 3, 0)
	for v := 0; v < 100; v++ {
		if d := g.Degree(graph.NodeID(v)); d != 6 {
			t.Fatalf("node %d degree %d, want 6", v, d)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWattsStrogatzRewired(t *testing.T) {
	g := WattsStrogatz(xrand.New(2), 500, 4, 0.3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	// Rewiring deduplicates occasionally; average degree stays near 2k.
	if s.AvgDegree < 6.5 || s.AvgDegree > 8.01 {
		t.Fatalf("avg degree = %v, want ≈ 8", s.AvgDegree)
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	for _, f := range []func(){
		func() { WattsStrogatz(xrand.New(1), -1, 2, 0) },
		func() { WattsStrogatz(xrand.New(1), 10, 0, 0) },
		func() { WattsStrogatz(xrand.New(1), 10, 5, 0) }, // 2k >= n
		func() { WattsStrogatz(xrand.New(1), 10, 2, -0.1) },
		func() { WattsStrogatz(xrand.New(1), 10, 2, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
