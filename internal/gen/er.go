// Package gen implements the random graph generators the paper evaluates on:
// Erdős–Rényi G(n,p), preferential attachment (Bollobás–Riordan formulation,
// Definition 2 of the paper), RMAT, and the Affiliation Networks model, plus
// auxiliary models used to build dataset stand-ins (configuration model,
// triadic closure, Watts–Strogatz).
//
// Every generator takes an explicit *xrand.Rand so that experiments are pure
// functions of their seeds.
package gen

import (
	"math"

	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// ErdosRenyi samples G(n, p): each of the C(n,2) undirected edges is present
// independently with probability p. The implementation skips between edges
// with geometric jumps, so it runs in O(E) rather than O(n²) time.
func ErdosRenyi(r *xrand.Rand, n int, p float64) *graph.Graph {
	if n < 0 {
		panic("gen: negative node count")
	}
	if p < 0 || p > 1 {
		panic("gen: edge probability outside [0,1]")
	}
	b := graph.NewBuilder(n, int64(p*float64(n)*float64(n-1)/2)+16)
	if n < 2 || p == 0 {
		return b.Build()
	}
	if p == 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
		return b.Build()
	}
	// Enumerate pairs (u,v), u<v, as a linear index and jump geometrically.
	total := int64(n) * int64(n-1) / 2
	idx := int64(-1)
	for {
		idx += 1 + int64(r.Geometric(p))
		if idx >= total {
			break
		}
		u, v := pairFromIndex(idx, n)
		b.AddEdge(u, v)
	}
	return b.Build()
}

// pairFromIndex maps a linear index in [0, C(n,2)) to the lexicographic pair
// (u, v) with u < v.
func pairFromIndex(idx int64, n int) (graph.NodeID, graph.NodeID) {
	// Row u starts at offset u*n - u*(u+3)/2 ... solve by the quadratic
	// formula then adjust for rounding.
	fn := float64(n)
	u := int64((2*fn - 1 - math.Sqrt((2*fn-1)*(2*fn-1)-8*float64(idx))) / 2)
	if u < 0 {
		u = 0
	}
	rowStart := func(u int64) int64 { return u*int64(n) - u*(u+1)/2 }
	for u > 0 && rowStart(u) > idx {
		u--
	}
	for rowStart(u+1) <= idx {
		u++
	}
	v := u + 1 + (idx - rowStart(u))
	return graph.NodeID(u), graph.NodeID(v)
}
