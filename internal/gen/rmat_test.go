package gen

import (
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

func TestRMATBasic(t *testing.T) {
	p := DefaultRMAT(12)
	g := RMAT(xrand.New(1), p)
	n := 1 << 12
	if g.NumNodes() > n {
		t.Fatalf("nodes = %d > 2^scale", g.NumNodes())
	}
	if g.NumNodes() < n/4 {
		t.Fatalf("nodes = %d; too many isolated drops", g.NumNodes())
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Isolated nodes must be gone.
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(graph.NodeID(v)) == 0 {
			t.Fatalf("isolated node %d survived DropIsolated", v)
		}
	}
}

func TestRMATKeepIsolated(t *testing.T) {
	p := DefaultRMAT(10)
	p.DropIsolated = false
	g := RMAT(xrand.New(2), p)
	if g.NumNodes() != 1<<10 {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), 1<<10)
	}
}

func TestRMATSkew(t *testing.T) {
	g := RMAT(xrand.New(3), DefaultRMAT(13))
	s := graph.ComputeStats(g)
	if s.MaxDegree < 8*s.MedDegree {
		t.Fatalf("maxdeg=%d meddeg=%d: RMAT should be skewed", s.MaxDegree, s.MedDegree)
	}
}

func TestRMATDeterministic(t *testing.T) {
	g1 := RMAT(xrand.New(5), DefaultRMAT(10))
	g2 := RMAT(xrand.New(5), DefaultRMAT(10))
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different RMAT graphs")
	}
}

func TestRMATPanics(t *testing.T) {
	r := xrand.New(1)
	bad := []RMATParams{
		{Scale: -1, EdgeFactor: 4, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 31, EdgeFactor: 4, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 4, EdgeFactor: 0, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 4, EdgeFactor: 4, A: 0.9, B: 0.25, C: 0.25, D: 0.25}, // sum > 1
		{Scale: 4, EdgeFactor: 4, A: 0, B: 0.5, C: 0.25, D: 0.25},    // zero quadrant
	}
	for _, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RMAT(%+v) did not panic", p)
				}
			}()
			RMAT(r, p)
		}()
	}
}

func TestRMATNoNoise(t *testing.T) {
	p := DefaultRMAT(10)
	p.Noise = 0
	g := RMAT(xrand.New(7), p)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
