package gen

import (
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// PreferentialAttachment generates G^m_n exactly as in Definition 2 of the
// paper (the Bollobás–Riordan formulation of the Barabási–Albert model):
// node u arrives with m edges inserted one after another; each endpoint is
// chosen with probability proportional to current degree, counting the
// half-edge being inserted (which is what gives the (d(u)+1)/(M_i+1)
// self-selection probability in the definition).
//
// The implementation keeps the classic "linearized chord diagram" endpoint
// array: every half-edge occupies one slot, and choosing a slot uniformly at
// random is exactly degree-proportional selection. Self-loops and duplicate
// edges occur during generation, as in the model; Build drops them, matching
// the paper's treatment of the PA graph as simple when matching.
func PreferentialAttachment(r *xrand.Rand, n, m int) *graph.Graph {
	if n < 0 || m < 1 {
		panic("gen: PreferentialAttachment requires n >= 0, m >= 1")
	}
	b := graph.NewBuilder(n, int64(n)*int64(m))
	if n == 0 {
		return b.Build()
	}
	ends := make([]graph.NodeID, 0, 2*n*m)
	for u := 0; u < n; u++ {
		for e := 0; e < m; e++ {
			// The new node's own half-edge participates in the selection,
			// giving the self-loop probability of the definition.
			ends = append(ends, graph.NodeID(u))
			j := r.IntN(len(ends))
			target := ends[j]
			ends = append(ends, target)
			b.AddEdge(graph.NodeID(u), target)
		}
	}
	return b.Build()
}

// PAWithEnds is PreferentialAttachment but also returns the raw multigraph
// edge list (before self-loop/duplicate removal). The raw list is used by
// tests that check the degree evolution properties of Section 4.2 (e.g.
// first-mover advantage) where multiplicities matter.
func PAWithEnds(r *xrand.Rand, n, m int) (*graph.Graph, []graph.Edge) {
	if n < 0 || m < 1 {
		panic("gen: PAWithEnds requires n >= 0, m >= 1")
	}
	b := graph.NewBuilder(n, int64(n)*int64(m))
	raw := make([]graph.Edge, 0, n*m)
	ends := make([]graph.NodeID, 0, 2*n*m)
	for u := 0; u < n; u++ {
		for e := 0; e < m; e++ {
			ends = append(ends, graph.NodeID(u))
			j := r.IntN(len(ends))
			target := ends[j]
			ends = append(ends, target)
			raw = append(raw, graph.Edge{U: graph.NodeID(u), V: target})
			b.AddEdge(graph.NodeID(u), target)
		}
	}
	return b.Build(), raw
}
