package gen

import (
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

func TestAffiliationBasic(t *testing.T) {
	an := Affiliation(xrand.New(1), DefaultAffiliation(2000))
	if an.Users != 2000 {
		t.Fatalf("users = %d", an.Users)
	}
	if an.NumCommunities() == 0 {
		t.Fatal("no communities generated")
	}
	total := 0
	for _, c := range an.Communities {
		for _, u := range c {
			if int(u) >= an.Users {
				t.Fatalf("member %d out of range", u)
			}
		}
		total += len(c)
	}
	if total < an.Users {
		t.Fatalf("only %d memberships for %d users (every user joins >= 1)", total, an.Users)
	}
}

func TestAffiliationCommunitySkew(t *testing.T) {
	// Preferential joining must produce a heavy-tailed community size
	// distribution: the largest community should dwarf the median.
	an := Affiliation(xrand.New(2), DefaultAffiliation(20000))
	maxSize, sum := 0, 0
	for _, c := range an.Communities {
		if len(c) > maxSize {
			maxSize = len(c)
		}
		sum += len(c)
	}
	avg := float64(sum) / float64(len(an.Communities))
	if float64(maxSize) < 10*avg {
		t.Fatalf("max community %d vs avg %.1f: not skewed", maxSize, avg)
	}
}

func TestFoldProducesCommunityCliques(t *testing.T) {
	an := &AffiliationNetwork{
		Users: 6,
		Communities: [][]graph.NodeID{
			{0, 1, 2},
			{3, 4},
			{5},
		},
	}
	g := an.Fold(100)
	if g.NumEdges() != 4 { // triangle (3) + pair (1)
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	for _, e := range [][2]graph.NodeID{{0, 1}, {0, 2}, {1, 2}, {3, 4}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v missing", e)
		}
	}
	if g.Degree(5) != 0 {
		t.Fatal("singleton community should add no edges")
	}
}

func TestFoldKeepingSubset(t *testing.T) {
	an := Affiliation(xrand.New(3), DefaultAffiliation(500))
	full := an.Fold(150)
	keep := make([]bool, an.NumCommunities())
	for i := range keep {
		keep[i] = i%2 == 0
	}
	half := an.FoldKeeping(keep, 150)
	if half.NumEdges() > full.NumEdges() {
		t.Fatalf("partial fold has more edges (%d) than full (%d)", half.NumEdges(), full.NumEdges())
	}
	// Every edge of the partial fold must exist in the full fold.
	half.Edges(func(e graph.Edge) bool {
		if !full.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v in partial fold but not full", e)
		}
		return true
	})
}

func TestFoldSparsifiesLargeCommunities(t *testing.T) {
	members := make([]graph.NodeID, 500)
	for i := range members {
		members[i] = graph.NodeID(i)
	}
	an := &AffiliationNetwork{Users: 500, Communities: [][]graph.NodeID{members}}
	g := an.Fold(20)
	// Full clique would be 124750 edges; sparsified: at most 500*20.
	if g.NumEdges() > 500*20 {
		t.Fatalf("edges = %d; sparsification cap not applied", g.NumEdges())
	}
	if g.NumEdges() < 500*10 {
		t.Fatalf("edges = %d; too sparse", g.NumEdges())
	}
}

func TestAffiliationPanics(t *testing.T) {
	r := xrand.New(1)
	bad := []AffiliationParams{
		{Users: -1, MeanMemberships: 2, NewInterestProb: 0.1, MaxCommunity: 10},
		{Users: 10, MeanMemberships: 0.5, NewInterestProb: 0.1, MaxCommunity: 10},
		{Users: 10, MeanMemberships: 2, NewInterestProb: 0, MaxCommunity: 10},
		{Users: 10, MeanMemberships: 2, NewInterestProb: 0.1, MaxCommunity: 1},
	}
	for _, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Affiliation(%+v) did not panic", p)
				}
			}()
			Affiliation(r, p)
		}()
	}

	an := Affiliation(r, DefaultAffiliation(10))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("FoldKeeping with bad mask did not panic")
			}
		}()
		an.FoldKeeping(make([]bool, an.NumCommunities()+1), 10)
	}()
}
