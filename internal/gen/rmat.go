package gen

import (
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// RMATParams configures the recursive-matrix generator of Chakrabarti, Zhan
// and Faloutsos (SDM 2004), the model behind the paper's RMAT24/26/28
// scalability graphs.
type RMATParams struct {
	// Scale: the graph has 2^Scale nodes.
	Scale int
	// EdgeFactor: number of generated edges per node (duplicates and
	// self-loops are removed afterwards, so the final count is lower —
	// exactly as in the reference generator, which is why the paper's
	// RMAT24 has 8.87M nodes rather than 16.7M: isolated nodes are dropped).
	EdgeFactor int
	// Quadrant probabilities; must be positive and sum to 1.
	A, B, C, D float64
	// Noise perturbs the quadrant probabilities at every recursion level by
	// a uniform factor in [1-Noise, 1+Noise] (renormalized), the standard
	// smoothing that avoids degree oscillations. 0 disables.
	Noise float64
	// DropIsolated removes nodes that end up with no edges, renumbering the
	// remainder densely (Graph500 convention; matches the paper's node
	// counts being below 2^Scale).
	DropIsolated bool
}

// DefaultRMAT returns the Graph500-style parameterization used throughout the
// experiments: (a,b,c,d) = (0.57, 0.19, 0.19, 0.05), 16 edges per node.
func DefaultRMAT(scale int) RMATParams {
	return RMATParams{Scale: scale, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, D: 0.05, Noise: 0.1, DropIsolated: true}
}

// RMAT generates a graph from the recursive matrix model.
func RMAT(r *xrand.Rand, p RMATParams) *graph.Graph {
	if p.Scale < 0 || p.Scale > 30 {
		panic("gen: RMAT scale out of range [0, 30]")
	}
	if p.EdgeFactor < 1 {
		panic("gen: RMAT edge factor must be >= 1")
	}
	sum := p.A + p.B + p.C + p.D
	if p.A <= 0 || p.B <= 0 || p.C <= 0 || p.D <= 0 || sum < 0.999 || sum > 1.001 {
		panic("gen: RMAT quadrant probabilities must be positive and sum to 1")
	}
	n := 1 << uint(p.Scale)
	edges := int64(n) * int64(p.EdgeFactor)
	b := graph.NewBuilder(n, edges)
	for i := int64(0); i < edges; i++ {
		u, v := rmatEdge(r, p)
		b.AddEdge(u, v)
	}
	g := b.Build()
	if !p.DropIsolated {
		return g
	}
	return dropIsolated(g)
}

func rmatEdge(r *xrand.Rand, p RMATParams) (graph.NodeID, graph.NodeID) {
	var u, v uint32
	a, bb, c := p.A, p.B, p.C
	for level := 0; level < p.Scale; level++ {
		al, bl, cl := a, bb, c
		if p.Noise > 0 {
			al *= 1 + p.Noise*(2*r.Float64()-1)
			bl *= 1 + p.Noise*(2*r.Float64()-1)
			cl *= 1 + p.Noise*(2*r.Float64()-1)
			dl := (1 - a - bb - c) * (1 + p.Noise*(2*r.Float64()-1))
			norm := al + bl + cl + dl
			al, bl, cl = al/norm, bl/norm, cl/norm
		}
		x := r.Float64()
		u <<= 1
		v <<= 1
		switch {
		case x < al:
			// top-left: no bits set
		case x < al+bl:
			v |= 1
		case x < al+bl+cl:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	return graph.NodeID(u), graph.NodeID(v)
}

// dropIsolated renumbers nodes with degree >= 1 densely and discards the rest.
func dropIsolated(g *graph.Graph) *graph.Graph {
	n := g.NumNodes()
	remap := make([]graph.NodeID, n)
	kept := 0
	for v := 0; v < n; v++ {
		if g.Degree(graph.NodeID(v)) > 0 {
			remap[v] = graph.NodeID(kept)
			kept++
		} else {
			remap[v] = ^graph.NodeID(0)
		}
	}
	b := graph.NewBuilder(kept, g.NumEdges())
	g.Edges(func(e graph.Edge) bool {
		b.AddEdge(remap[e.U], remap[e.V])
		return true
	})
	return b.Build()
}
