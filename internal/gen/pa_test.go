package gen

import (
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

func TestPreferentialAttachmentBasic(t *testing.T) {
	r := xrand.New(1)
	n, m := 5000, 5
	g := PreferentialAttachment(r, n, m)
	if g.NumNodes() != n {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() > int64(n)*int64(m) {
		t.Fatalf("edges = %d exceeds nm", g.NumEdges())
	}
	// After dedup a large fraction of the nm generated edges must survive.
	if g.NumEdges() < int64(n)*int64(m)*8/10 {
		t.Fatalf("edges = %d; too many lost to dedup", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPASkewedDegrees(t *testing.T) {
	// The hallmark of PA: max degree far above the median, and a power-law
	// exponent near 3 for the pure BA process.
	g := PreferentialAttachment(xrand.New(2), 20000, 4)
	s := graph.ComputeStats(g)
	if s.MaxDegree < 20*s.MedDegree {
		t.Fatalf("maxdeg=%d meddeg=%d: not skewed", s.MaxDegree, s.MedDegree)
	}
	alpha := graph.PowerLawExponentMLE(g, 8)
	if alpha < 2.0 || alpha > 4.0 {
		t.Fatalf("power-law exponent = %v, want within [2,4]", alpha)
	}
}

func TestPAFirstMoverAdvantage(t *testing.T) {
	// Lemma 7 flavor: early nodes accumulate much higher degree than late
	// ones. Compare mean degree of the first 1% vs the last 50%.
	g := PreferentialAttachment(xrand.New(3), 10000, 4)
	early, late := 0.0, 0.0
	nEarly, nLate := 100, 5000
	for v := 0; v < nEarly; v++ {
		early += float64(g.Degree(graph.NodeID(v)))
	}
	for v := 5000; v < 10000; v++ {
		late += float64(g.Degree(graph.NodeID(v)))
	}
	early /= float64(nEarly)
	late /= float64(nLate)
	if early < 5*late {
		t.Fatalf("early mean degree %v not ≫ late mean degree %v", early, late)
	}
}

func TestPADeterministic(t *testing.T) {
	g1 := PreferentialAttachment(xrand.New(9), 1000, 3)
	g2 := PreferentialAttachment(xrand.New(9), 1000, 3)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different PA graphs")
	}
}

func TestPAEdgeCases(t *testing.T) {
	if g := PreferentialAttachment(xrand.New(1), 0, 3); g.NumNodes() != 0 {
		t.Fatal("n=0 should be empty")
	}
	g := PreferentialAttachment(xrand.New(1), 1, 3)
	// A single node can only produce self-loops, all dropped.
	if g.NumEdges() != 0 {
		t.Fatalf("n=1 edges = %d", g.NumEdges())
	}
	for _, f := range []func(){
		func() { PreferentialAttachment(xrand.New(1), -1, 3) },
		func() { PreferentialAttachment(xrand.New(1), 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPAWithEnds(t *testing.T) {
	g, raw := PAWithEnds(xrand.New(4), 500, 3)
	if len(raw) != 500*3 {
		t.Fatalf("raw edges = %d, want 1500", len(raw))
	}
	// Every simple edge must appear in the raw list.
	rawSet := map[graph.Edge]bool{}
	for _, e := range raw {
		rawSet[e.Canonical()] = true
	}
	g.Edges(func(e graph.Edge) bool {
		if !rawSet[e] {
			t.Fatalf("edge %v in graph but not raw list", e)
		}
		return true
	})
	// Raw list orders edges by arrival: edge i belongs to node i/m.
	for i, e := range raw {
		u := graph.NodeID(i / 3)
		if e.U != u {
			t.Fatalf("raw edge %d has U=%d, want %d", i, e.U, u)
		}
		if e.V > u {
			t.Fatalf("raw edge %d attaches to future node %d > %d", i, e.V, u)
		}
	}
}
