package gen

import (
	"math"
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

func TestPairFromIndexExhaustive(t *testing.T) {
	for _, n := range []int{2, 3, 5, 10} {
		idx := int64(0)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				gu, gv := pairFromIndex(idx, n)
				if int(gu) != u || int(gv) != v {
					t.Fatalf("n=%d idx=%d: got (%d,%d), want (%d,%d)", n, idx, gu, gv, u, v)
				}
				idx++
			}
		}
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	r := xrand.New(1)
	n, p := 2000, 0.01
	g := ErdosRenyi(r, n, p)
	if g.NumNodes() != n {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	want := p * float64(n) * float64(n-1) / 2
	got := float64(g.NumEdges())
	sd := math.Sqrt(want * (1 - p))
	if math.Abs(got-want) > 6*sd {
		t.Fatalf("edges = %v, want %v ± %v", got, want, 6*sd)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	r := xrand.New(2)
	if g := ErdosRenyi(r, 50, 0); g.NumEdges() != 0 {
		t.Fatalf("p=0 edges = %d", g.NumEdges())
	}
	if g := ErdosRenyi(r, 50, 1); g.NumEdges() != 50*49/2 {
		t.Fatalf("p=1 edges = %d", g.NumEdges())
	}
	if g := ErdosRenyi(r, 0, 0.5); g.NumNodes() != 0 {
		t.Fatal("n=0 should be empty")
	}
	if g := ErdosRenyi(r, 1, 0.5); g.NumEdges() != 0 {
		t.Fatal("n=1 has no possible edges")
	}
}

func TestErdosRenyiPanics(t *testing.T) {
	r := xrand.New(3)
	for _, f := range []func(){
		func() { ErdosRenyi(r, -1, 0.5) },
		func() { ErdosRenyi(r, 10, -0.1) },
		func() { ErdosRenyi(r, 10, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	g1 := ErdosRenyi(xrand.New(7), 200, 0.05)
	g2 := ErdosRenyi(xrand.New(7), 200, 0.05)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed, different edge count")
	}
	g1.Edges(func(e graph.Edge) bool {
		if !g2.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v missing in replica", e)
		}
		return true
	})
}

func TestErdosRenyiEdgeIndependence(t *testing.T) {
	// Each specific edge should appear with probability ≈ p across seeds.
	const trials = 400
	p := 0.3
	count := 0
	for s := 0; s < trials; s++ {
		g := ErdosRenyi(xrand.New(uint64(s)), 6, p)
		if g.HasEdge(2, 4) {
			count++
		}
	}
	got := float64(count) / trials
	if math.Abs(got-p) > 0.1 {
		t.Fatalf("edge rate %v, want ≈ %v", got, p)
	}
}
