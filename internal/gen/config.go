package gen

import (
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// ConfigurationModel builds a graph with (approximately) the given degree
// sequence by uniform stub matching. Self-loops and multi-edges produced by
// the matching are discarded (the "erased configuration model"), so realized
// degrees can fall slightly below the prescribed ones — the standard
// behaviour, negligible for the sparse power-law sequences we use to build
// dataset stand-ins.
func ConfigurationModel(r *xrand.Rand, degrees []int) *graph.Graph {
	n := len(degrees)
	var total int64
	for i, d := range degrees {
		if d < 0 {
			panic("gen: ConfigurationModel negative degree")
		}
		_ = i
		total += int64(d)
	}
	if total%2 != 0 {
		panic("gen: ConfigurationModel degree sum must be even")
	}
	stubs := make([]graph.NodeID, 0, total)
	for v, d := range degrees {
		for i := 0; i < d; i++ {
			stubs = append(stubs, graph.NodeID(v))
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	b := graph.NewBuilder(n, total/2)
	for i := 0; i+1 < len(stubs); i += 2 {
		b.AddEdge(stubs[i], stubs[i+1])
	}
	return b.Build()
}

// TriadicClosure adds clustering to g: for rounds passes, every node picks
// two random distinct neighbors and closes the triangle with probability p.
// Used to push configuration-model stand-ins toward the clustering levels of
// real social graphs (the matcher's similarity witnesses live on triangles
// across copies, so stand-ins must not be locally tree-like).
func TriadicClosure(r *xrand.Rand, g *graph.Graph, rounds int, p float64) *graph.Graph {
	if rounds < 0 {
		panic("gen: TriadicClosure negative rounds")
	}
	n := g.NumNodes()
	b := graph.NewBuilder(n, g.NumEdges()*int64(rounds+1))
	g.Edges(func(e graph.Edge) bool { b.AddEdge(e.U, e.V); return true })
	for round := 0; round < rounds; round++ {
		for v := 0; v < n; v++ {
			ns := g.Neighbors(graph.NodeID(v))
			if len(ns) < 2 {
				continue
			}
			if !r.Bool(p) {
				continue
			}
			i := r.IntN(len(ns))
			j := r.IntN(len(ns) - 1)
			if j >= i {
				j++
			}
			b.AddEdge(ns[i], ns[j])
		}
	}
	return b.Build()
}

// WattsStrogatz builds a small-world graph: a ring lattice where every node
// connects to its k nearest neighbors on each side, with each edge rewired to
// a random endpoint with probability beta. Included as an additional
// underlying-network model for robustness experiments (the paper asks whether
// results depend on the PA model specifically).
func WattsStrogatz(r *xrand.Rand, n, k int, beta float64) *graph.Graph {
	if n < 0 || k < 1 {
		panic("gen: WattsStrogatz requires n >= 0, k >= 1")
	}
	if beta < 0 || beta > 1 {
		panic("gen: WattsStrogatz beta outside [0,1]")
	}
	if n > 0 && 2*k >= n {
		panic("gen: WattsStrogatz requires 2k < n")
	}
	b := graph.NewBuilder(n, int64(n)*int64(k))
	for u := 0; u < n; u++ {
		for d := 1; d <= k; d++ {
			v := (u + d) % n
			if r.Bool(beta) {
				// Rewire to a uniform random non-self target.
				w := r.IntN(n - 1)
				if w >= u {
					w++
				}
				v = w
			}
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return b.Build()
}
