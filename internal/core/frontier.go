package core

import (
	"math/bits"
	"sync"

	"github.com/sociograph/reconcile/internal/graph"
)

// EngineFrontier is a scheduling optimization, never a semantic change: its
// output is bit-identical to EngineSequential and EngineParallel for every
// option combination (the equivalence, fuzz and equivariance suites pin
// this). The full engines re-score every node on both sides in each of the
// k·log D bucket passes even though a node's proposal can only change when a
// link is committed near it. The frontier engine instead keeps, per side,
//
//   - a persistent proposal cache: for every node, its best-candidate
//     proposal at every bucket level of the schedule, computed in one pass
//     over the node's candidate set (the witness accumulation does not depend
//     on the degree floor — the floor only gates which accumulated candidates
//     are eligible — so all levels can be derived from one accumulation);
//   - a dirty worklist of nodes whose cached proposals may be stale, seeded
//     from the initial links with every unmatched node whose linked-neighbor
//     count reaches the threshold (nodes below it provably abstain — the
//     zero-initialized row — until a new link queues them).
//
// A bucket pass refreshes the dirty nodes, runs the same ascending
// mutual-best commit scan as the full engines over the cached proposals, and
// then invalidates exactly the nodes whose scoring inputs a committed link
// (a, b) touched:
//
//   - N1(a) / N2(b): they gained a witness source (and their linked-neighbor
//     count changed);
//   - every node that could reach the newly matched partner as a candidate —
//     for the left side, N1(partner(u2)) for each already-matched u2 ∈ N2(b)
//     — because the partner's exclusion can change best, ties and margins.
//
// Matchings only grow and a node's proposal depends on nothing else, so a
// clean cache entry equals what a fresh scoring would produce. Steady-state
// sweeps (and incremental AddSeeds runs) touch only the neighborhoods of new
// links instead of both full node sets; the engine degenerates to full
// rescans only while most of the graph is within two hops of a fresh link —
// i.e. when almost every pass commits links everywhere, in which case it does
// the same work as the full engines.
type frontierState struct {
	levels    []int // descending 2^j degree floors, one per bucket pass of a sweep
	topExp    int   // log2(levels[0])
	threshold int32 // Options.Threshold, fixed for the session

	left  frontierSide
	right frontierSide

	// rescored counts nodes drained from the worklists over the session's
	// lifetime — the engine's total scoring work. The full engines'
	// equivalent is (n1+n2) × passes; tests assert the frontier stays far
	// below that and goes fully idle once a sweep commits nothing.
	rescored int64
}

// frontierSide is the per-side persistent state: the proposal cache and the
// dirty worklist.
type frontierSide struct {
	// cache holds each node's proposal at every bucket level, row-major:
	// cache[v*len(levels)+j] is node v's proposal at schedule level j. Rows of
	// matched nodes are stale and gated out by the commit scan's Matching
	// check.
	cache   []candidate
	nLevels int
	// queued[v] reports whether v is on dirty; it dedups invalidations
	// between refreshes.
	queued []bool
	// dirty lists the nodes to re-score before the next commit scan.
	dirty []graph.NodeID

	run     []graph.NodeID    // scratch: the eligible slice of a drain
	scratch []*frontierScorer // per-worker scoring scratch, reused across passes
}

// topExpOf returns log2 of the schedule's highest degree floor.
func topExpOf(levels []int) int { return bits.Len(uint(levels[0])) - 1 }

func newFrontierState(g1, g2 *graph.Graph, m *Matching, lc *linkedCounts, opts Options) *frontierState {
	levels := opts.buckets(g1, g2)
	f := &frontierState{
		levels:    levels,
		topExp:    topExpOf(levels),
		threshold: int32(opts.Threshold),
	}
	f.left.init(g1.NumNodes(), len(levels), m.left, lc.left, f.threshold)
	f.right.init(g2.NumNodes(), len(levels), m.right, lc.right, f.threshold)
	return f
}

// init sizes the side and seeds the worklist from the initial links. Only
// nodes that could propose at all are queued: an unmatched node with at
// least threshold linked neighbors. Everything else already has its correct
// row — the zero row is exactly the abstention a scoring would cache — and
// is queued by invalidatePair the moment a new link changes that.
func (s *frontierSide) init(n, nLevels int, selfMatched []graph.NodeID, linked []int32, threshold int32) {
	s.cache = make([]candidate, n*nLevels)
	s.nLevels = nLevels
	s.queued = make([]bool, n)
	s.dirty = make([]graph.NodeID, 0, n)
	for v := 0; v < n; v++ {
		if selfMatched[v] == NoMatch && linked[v] >= threshold {
			s.queued[v] = true
			s.dirty = append(s.dirty, graph.NodeID(v))
		}
	}
}

// mark queues v for re-scoring unless already queued.
func (s *frontierSide) mark(v graph.NodeID) {
	if !s.queued[v] {
		s.queued[v] = true
		s.dirty = append(s.dirty, v)
	}
}

// bandOf returns the first (highest-floor) schedule index whose floor is
// <= d, i.e. the earliest bucket pass at which a partner of degree d is
// eligible. Levels are consecutive descending powers of two, so this is pure
// bit arithmetic. d must be >= levels[len(levels)-1].
func (f *frontierState) bandOf(d int) int {
	b := f.topExp - (bits.Len(uint(d)) - 1)
	if b < 0 {
		return 0
	}
	return b
}

// runBucket performs one frontier bucket pass at schedule level `level`
// (floor minDeg == levels[level]): refresh stale proposals, commit mutual
// bests in the same ascending order as the full engines, then invalidate
// around the new links. Returns the number of links committed.
func (f *frontierState) runBucket(g1, g2 *graph.Graph, m *Matching, lc *linkedCounts, level, minDeg int, opts Options) int {
	f.refreshSide(fromLeft, g1, g2, m, lc, minDeg, opts)
	f.refreshSide(fromRight, g1, g2, m, lc, minDeg, opts)

	nLevels := len(f.levels)
	n1 := g1.NumNodes()
	start := m.Len()
	for v1 := 0; v1 < n1; v1++ {
		id := graph.NodeID(v1)
		// Most rows abstain; check the cache cell before the degree lookup.
		c := f.left.cache[v1*nLevels+level]
		if c.score == 0 {
			continue
		}
		// A node matched in an earlier pass has a stale cache row; gating on
		// the Matching here is equivalent to the full engines' empty proposal
		// (left nodes only become matched at their own scan index, so the
		// check also matches the pass-start state during the scan).
		if m.left[id] != NoMatch || g1.Degree(id) < minDeg {
			continue
		}
		// The partner's own floor and threshold eligibility are already baked
		// into the cached back-proposal: level-j candidates have degree >=
		// levels[j], and a node below the linked-count threshold caches empty
		// proposals.
		back := f.right.cache[int(c.node)*nLevels+level]
		if back.score == 0 || back.node != id {
			continue
		}
		pr := graph.Pair{Left: id, Right: c.node}
		m.add(pr)
		lc.addPair(g1, g2, pr)
	}
	committed := m.pairs[start:]
	for _, pr := range committed {
		f.invalidatePair(g1, g2, m, lc, pr)
	}
	return len(committed)
}

// invalidatePair marks every node whose cached proposals the new link (a, b)
// could have changed. Enumerating candidate-reachability with the current
// (grown) matching visits a superset of the links present at any earlier
// scoring, so no stale cache entry survives. Two classes of nodes are
// invalidated, per side:
//
//   - witness gain: neighbors of a (resp. b) now have a matched neighbor and
//     a changed linked-count — their scores against everything can rise;
//   - candidate loss: nodes that could score the newly matched b (resp. a)
//     as a candidate — via some matched u2 ∈ N2(b) — no longer may. Here the
//     cached rows prove most nodes unaffected (see markIfAffected), so only
//     rows that name the lost candidate or abstained are re-opened.
//
// Already-matched nodes are skipped throughout: they never propose again and
// their stale rows are gated out of the commit scan by the Matching.
func (f *frontierState) invalidatePair(g1, g2 *graph.Graph, m *Matching, lc *linkedCounts, pr graph.Pair) {
	for _, u := range g1.Neighbors(pr.Left) {
		if m.left[u] == NoMatch && lc.left[u] >= f.threshold {
			f.left.mark(u)
		}
	}
	for _, u2 := range g2.Neighbors(pr.Right) {
		if u1 := m.right[u2]; u1 != NoMatch {
			for _, w := range g1.Neighbors(u1) {
				f.left.markIfAffected(w, pr.Right, m.left, lc.left, f.threshold)
			}
		}
	}
	// Right side, symmetric.
	for _, u2 := range g2.Neighbors(pr.Right) {
		if m.right[u2] == NoMatch && lc.right[u2] >= f.threshold {
			f.right.mark(u2)
		}
	}
	for _, u1 := range g1.Neighbors(pr.Left) {
		if u2 := m.left[u1]; u2 != NoMatch {
			for _, w := range g2.Neighbors(u2) {
				f.right.markIfAffected(w, pr.Left, m.right, lc.right, f.threshold)
			}
		}
	}
}

// markIfAffected queues v after the candidate `lost` became ineligible, but
// only when v's cached row could actually change:
//
//   - v matched: never proposes again — skip;
//   - v's linked-count below the threshold (and unqueued, so unchanged since
//     its scoring): the row is a cached abstention that removing a candidate
//     cannot flip — skip;
//   - a level proposes `lost`: stale — queue;
//   - a level abstained (score 0): `lost` may have been the blocking tie or
//     margin runner-up — queue;
//   - a level proposes someone else: removing a non-selected candidate
//     cannot change the selection — the argmax stays the argmax (under
//     TieReject a surviving proposal means `lost` scored strictly below it;
//     under TieLowestID the selected node is the lowest-ID argmax, which
//     `lost` ≠ best tied with it cannot displace), the witness count is
//     untouched, and the margin gate only loosens as competitors leave —
//     skip.
func (s *frontierSide) markIfAffected(v, lost graph.NodeID, selfMatched []graph.NodeID, linked []int32, threshold int32) {
	if s.queued[v] || selfMatched[v] != NoMatch || linked[v] < threshold {
		return
	}
	row := s.cache[int(v)*s.nLevels : (int(v)+1)*s.nLevels]
	for _, c := range row {
		if c.score == 0 || c.node == lost {
			s.queued[v] = true
			s.dirty = append(s.dirty, v)
			return
		}
	}
}

// frontierGrain is the minimum dirty-worklist share per goroutine before the
// refresh fans out; below it the spawn overhead dominates.
const frontierGrain = 256

// refreshSide re-scores the queued nodes on one side that this pass can
// actually read — those with degree >= minDeg; the rest cannot propose or be
// proposed at this floor, so they stay queued and are scored at their first
// eligible (lower-floor) pass, collapsing any dirtying in between. Workers
// (if any) write disjoint cache rows from read-only shared state, so the
// result is independent of scheduling.
func (f *frontierState) refreshSide(dir passDirection, g1, g2 *graph.Graph, m *Matching, lc *linkedCounts, minDeg int, opts Options) {
	side := &f.left
	ga, nPartners := g1, g2.NumNodes()
	if dir == fromRight {
		side = &f.right
		ga, nPartners = g2, g1.NumNodes()
	}
	if len(side.dirty) == 0 {
		return
	}
	floor := f.levels[len(f.levels)-1]
	deferred := side.dirty[:0]
	work := side.run[:0]
	for _, v := range side.dirty {
		if d := ga.Degree(v); d < minDeg {
			if d < floor {
				// Below the schedule's lowest floor: never proposes, never a
				// candidate — its row is never read, so drop it for good.
				side.queued[v] = false
				continue
			}
			deferred = append(deferred, v)
			continue
		}
		side.queued[v] = false
		work = append(work, v)
	}
	side.dirty = deferred
	side.run = work
	if len(work) == 0 {
		return
	}
	f.rescored += int64(len(work))
	// Accumulate candidates down to the schedule's lowest floor; per-level
	// eligibility is applied during derivation.
	p := opts.passParams(f.levels[len(f.levels)-1])

	workers := opts.workers()
	if max := len(work) / frontierGrain; workers > max {
		workers = max
	}
	if workers <= 1 {
		sc := side.scorer(0, nPartners, p.weighted, len(f.levels))
		for _, v := range work {
			f.rescoreNode(dir, sc, v, g1, g2, m, lc, p)
		}
	} else {
		var wg sync.WaitGroup
		chunk := (len(work) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(work) {
				break
			}
			hi := lo + chunk
			if hi > len(work) {
				hi = len(work)
			}
			sc := side.scorer(w, nPartners, p.weighted, len(f.levels))
			wg.Add(1)
			go func(sc *frontierScorer, part []graph.NodeID) {
				defer wg.Done()
				for _, v := range part {
					f.rescoreNode(dir, sc, v, g1, g2, m, lc, p)
				}
			}(sc, work[lo:hi])
		}
		wg.Wait()
	}
}

// scorer returns the side's persistent scratch for worker i, growing the pool
// on first use.
func (s *frontierSide) scorer(i, nPartners int, weighted bool, nLevels int) *frontierScorer {
	for len(s.scratch) <= i {
		s.scratch = append(s.scratch, newFrontierScorer(nPartners, weighted, nLevels))
	}
	return s.scratch[i]
}

// rescoreNode recomputes v's cache row — its proposal at every bucket level —
// from the current matching state.
func (f *frontierState) rescoreNode(dir passDirection, sc *frontierScorer, v graph.NodeID, g1, g2 *graph.Graph, m *Matching, lc *linkedCounts, p passParams) {
	ga, gb, link, selfMatched, partnerMatched := passViews(dir, g1, g2, m)
	linked := lc.left
	cache := f.left.cache
	if dir == fromRight {
		linked = lc.right
		cache = f.right.cache
	}
	nLevels := len(f.levels)
	row := cache[int(v)*nLevels : (int(v)+1)*nLevels]
	if selfMatched[v] != NoMatch {
		// Matched nodes never propose again; the commit scan gates their
		// stale rows on the Matching.
		return
	}
	if linked[v] < p.threshold {
		// The node's score with any partner is bounded by its linked-neighbor
		// count; cache the abstention (valid until the count changes, which
		// re-queues the node).
		for j := range row {
			row[j] = candidate{}
		}
		return
	}
	sc.allLevels(v, ga, gb, link, partnerMatched, p, f, row)
}

// frontierScorer is the per-worker scratch for all-levels scoring: the same
// dense score/weight arrays as scorer, plus the touched partners grouped by
// the bucket level at which they first become eligible.
type frontierScorer struct {
	scores  []int32
	weights []float32 // nil unless weighted scoring is on
	touched []graph.NodeID
	bands   [][]graph.NodeID
}

func newFrontierScorer(nPartners int, weighted bool, nLevels int) *frontierScorer {
	s := &frontierScorer{
		scores: make([]int32, nPartners),
		bands:  make([][]graph.NodeID, nLevels),
	}
	if weighted {
		s.weights = make([]float32, nPartners)
	}
	return s
}

// allLevels computes out[j] — v's proposal at every schedule level j — in one
// accumulation pass. The witness accumulation is identical to
// scorer.bestFor's (same iteration order, so weighted float sums are
// bit-identical); the degree floor only gates which candidates participate
// in the selection, so the per-level selections are derived by adding
// candidates band by band as the floor descends, maintaining the running
// best/tie state and the top-two witness counts for the margin rule.
func (sc *frontierScorer) allLevels(
	v graph.NodeID,
	ga, gb *graph.Graph,
	link, partnerMatched []graph.NodeID,
	p passParams,
	f *frontierState,
	out []candidate,
) {
	for _, u := range ga.Neighbors(v) {
		u2 := link[u]
		if u2 == NoMatch {
			continue
		}
		var wt float32
		if sc.weights != nil {
			wt = witnessWeight(ga.Degree(u), gb.Degree(u2))
		}
		for _, w := range gb.Neighbors(u2) {
			if partnerMatched[w] != NoMatch {
				continue
			}
			d := gb.Degree(w)
			if d < p.minDeg {
				continue
			}
			if sc.scores[w] == 0 {
				sc.touched = append(sc.touched, w)
				b := f.bandOf(d)
				sc.bands[b] = append(sc.bands[b], w)
			}
			sc.scores[w]++
			if sc.weights != nil {
				sc.weights[w] += wt
			}
		}
	}

	var (
		best    graph.NodeID
		bestKey float64
		tie     bool
		have    bool
		cnt1    int32 // top witness count among candidates so far
		mult1   int32 // how many candidates attain cnt1
		cnt2    int32 // runner-up witness count
	)
	for j := range out {
		for _, w := range sc.bands[j] {
			k := float64(sc.scores[w])
			if sc.weights != nil {
				k = float64(sc.weights[w])
			}
			switch {
			case !have || k > bestKey:
				best, bestKey, tie, have = w, k, false, true
			case k == bestKey:
				if p.ties == TieLowestID && w < best {
					best = w
				}
				tie = true
			}
			c := sc.scores[w]
			switch {
			case c > cnt1:
				cnt1, cnt2, mult1 = c, cnt1, 1
			case c == cnt1:
				mult1++
			case c > cnt2:
				cnt2 = c
			}
		}
		if !have {
			out[j] = candidate{}
			continue
		}
		selCount := sc.scores[best]
		// Max witness count among candidates other than the selected one.
		maxOther := cnt1
		if selCount == cnt1 && mult1 == 1 {
			maxOther = cnt2
		}
		switch {
		case selCount < p.threshold:
			out[j] = candidate{}
		case tie && p.ties == TieReject:
			out[j] = candidate{}
		case p.minMargin > 0 && selCount-maxOther < p.minMargin:
			out[j] = candidate{}
		default:
			out[j] = candidate{node: best, score: selCount}
		}
	}

	for _, w := range sc.touched {
		sc.scores[w] = 0
		if sc.weights != nil {
			sc.weights[w] = 0
		}
	}
	sc.touched = sc.touched[:0]
	for j := range sc.bands {
		sc.bands[j] = sc.bands[j][:0]
	}
}
