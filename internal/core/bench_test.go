package core

import (
	"fmt"
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
)

// Matcher micro-benchmarks: the per-bucket scoring pass under different
// schedules and policies, on a mid-size PA instance.

func benchInstance(b *testing.B) (*graph.Graph, *graph.Graph, []graph.Pair) {
	b.Helper()
	return testInstance(77, 20000)
}

func benchRun(b *testing.B, opts Options) {
	g1, g2, seeds := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconcile(g1, g2, seeds, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBucketed(b *testing.B) {
	benchRun(b, DefaultOptions())
}

// BenchmarkEngine compares the four in-core engines on the identical
// instance and configuration; their outputs are bit-identical, so the
// ns/op ratios are pure scheduling cost.
func BenchmarkEngine(b *testing.B) {
	for _, engine := range []Engine{EngineSequential, EngineParallel, EngineFrontier, EngineHybrid} {
		b.Run(engine.String(), func(b *testing.B) {
			o := DefaultOptions()
			o.Engine = engine
			benchRun(b, o)
		})
	}
}

// BenchmarkHybridCrossover is the calibration harness behind
// hybridCrossoverRate: on the BenchmarkEngine instance it prices one
// additional sweep at each point of the commit-rate decay, on both fixed
// regimes. Each sub-benchmark advances a session to sweep boundary s-1 once,
// then repeatedly restores that state and times sweep s alone, reporting the
// sweep's commit rate (matched per node, scaled by 1e6 to survive the metric
// format) alongside ns/op. The crossover constant is chosen between the
// commit rate of the last parallel-won sweep and the first frontier-won
// sweep; see hybrid.go for the recorded numbers.
func BenchmarkHybridCrossover(b *testing.B) {
	g1, g2, seeds := benchInstance(b)
	nodes := float64(g1.NumNodes() + g2.NumNodes())
	for s := 1; s <= 6; s++ {
		for _, engine := range []Engine{EngineParallel, EngineFrontier} {
			b.Run(fmt.Sprintf("sweep%d/%s", s, engine), func(b *testing.B) {
				o := DefaultOptions()
				o.Engine = engine
				base, err := NewSession(g1, g2, seeds, o)
				if err != nil {
					b.Fatal(err)
				}
				base.Run(s - 1)
				st := base.ExportState()
				matched := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					sess, err := RestoreSession(g1, g2, st)
					if err != nil {
						b.Fatal(err)
					}
					before := sess.Len()
					b.StartTimer()
					sess.Run(1)
					b.StopTimer()
					matched = sess.Len() - before
					b.StartTimer()
				}
				b.ReportMetric(float64(matched)/nodes*1e6, "commit-rate-ppm")
			})
		}
	}
}

// BenchmarkEngineHighThreshold is the frontier's best case during a cold
// run: at T=5 most nodes abstain, so after the first pass almost nothing is
// dirty while the full engines keep re-scanning both node sets.
func BenchmarkEngineHighThreshold(b *testing.B) {
	for _, engine := range []Engine{EngineParallel, EngineFrontier} {
		b.Run(engine.String(), func(b *testing.B) {
			o := DefaultOptions()
			o.Engine = engine
			o.Threshold = 5
			benchRun(b, o)
		})
	}
}

func BenchmarkUnbucketed(b *testing.B) {
	o := DefaultOptions()
	o.DisableBucketing = true
	benchRun(b, o)
}

func BenchmarkHighThreshold(b *testing.B) {
	o := DefaultOptions()
	o.Threshold = 5 // the linked-count skip prunes most nodes
	benchRun(b, o)
}

func BenchmarkWeightedScoring(b *testing.B) {
	o := DefaultOptions()
	o.Scoring = ScoreAdamicAdar
	benchRun(b, o)
}

func BenchmarkSimilarityWitnesses(b *testing.B) {
	g1, g2, seeds := benchInstance(b)
	m, err := NewMatching(g1.NumNodes(), g2.NumNodes(), seeds)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := graph.NodeID(i % g1.NumNodes())
		SimilarityWitnesses(g1, g2, m, v, v)
	}
}
