package core

import (
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
)

// Matcher micro-benchmarks: the per-bucket scoring pass under different
// schedules and policies, on a mid-size PA instance.

func benchInstance(b *testing.B) (*graph.Graph, *graph.Graph, []graph.Pair) {
	b.Helper()
	return testInstance(77, 20000)
}

func benchRun(b *testing.B, opts Options) {
	g1, g2, seeds := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconcile(g1, g2, seeds, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBucketed(b *testing.B) {
	benchRun(b, DefaultOptions())
}

// BenchmarkEngine compares the three in-core engines on the identical
// instance and configuration; their outputs are bit-identical, so the
// ns/op ratios are pure scheduling cost.
func BenchmarkEngine(b *testing.B) {
	for _, engine := range []Engine{EngineSequential, EngineParallel, EngineFrontier} {
		b.Run(engine.String(), func(b *testing.B) {
			o := DefaultOptions()
			o.Engine = engine
			benchRun(b, o)
		})
	}
}

// BenchmarkEngineHighThreshold is the frontier's best case during a cold
// run: at T=5 most nodes abstain, so after the first pass almost nothing is
// dirty while the full engines keep re-scanning both node sets.
func BenchmarkEngineHighThreshold(b *testing.B) {
	for _, engine := range []Engine{EngineParallel, EngineFrontier} {
		b.Run(engine.String(), func(b *testing.B) {
			o := DefaultOptions()
			o.Engine = engine
			o.Threshold = 5
			benchRun(b, o)
		})
	}
}

func BenchmarkUnbucketed(b *testing.B) {
	o := DefaultOptions()
	o.DisableBucketing = true
	benchRun(b, o)
}

func BenchmarkHighThreshold(b *testing.B) {
	o := DefaultOptions()
	o.Threshold = 5 // the linked-count skip prunes most nodes
	benchRun(b, o)
}

func BenchmarkWeightedScoring(b *testing.B) {
	o := DefaultOptions()
	o.Scoring = ScoreAdamicAdar
	benchRun(b, o)
}

func BenchmarkSimilarityWitnesses(b *testing.B) {
	g1, g2, seeds := benchInstance(b)
	m, err := NewMatching(g1.NumNodes(), g2.NumNodes(), seeds)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := graph.NodeID(i % g1.NumNodes())
		SimilarityWitnesses(g1, g2, m, v, v)
	}
}
