package core

import (
	"errors"
	"fmt"

	"github.com/sociograph/reconcile/internal/graph"
)

// SessionState is the complete serializable state of a Session beyond the two
// immutable graphs: the configuration, the matching with its seed boundary,
// the bucket-schedule position, the phase log, and (for EngineFrontier) the
// persistent scheduling state. Exporting at any bucket boundary and restoring
// over the same graphs yields a session whose future output is bit-identical
// to the uninterrupted original — the guarantee the resume-equivalence and
// snapshot fuzz suites pin.
//
// All slices are deep copies; a SessionState shares no memory with the
// session it was exported from.
type SessionState struct {
	Opts Options

	// N1, N2 are the node counts of the graphs the state belongs to; restore
	// rejects a graph pair of any other shape before deeper checks run.
	N1, N2 int

	// Pairs is the matching in insertion order, the first Seeds of which are
	// the construction-time seed links.
	Pairs []graph.Pair
	Seeds int

	// Sweeps counts started sweeps and NextBucket is the index of the next
	// bucket within the current sweep (0 = at a sweep boundary), together the
	// exact position in the k·log D schedule.
	Sweeps     int
	NextBucket int

	// Phases is the bounded per-bucket progress log: the most recent
	// PhaseRetainSweeps sweeps. PhasesDropped counts the evicted older
	// entries (always a whole number of sweeps) and DroppedMatched the pairs
	// they accepted, so PhasesDropped+len(Phases) is the total number of
	// bucket passes ever run.
	Phases         []PhaseStat
	PhasesDropped  int
	DroppedMatched int

	// HybridFrontier records EngineHybrid's regime at export: false while
	// still in the parallel regime, true once the session has decided to
	// hand off to the frontier engine. Always false for fixed engines.
	HybridFrontier bool

	// Frontier is the frontier engine's persistent state; nil for the
	// parallel and sequential engines and for EngineHybrid's parallel
	// regime. It may be nil for EngineFrontier — or for EngineHybrid with
	// HybridFrontier set, e.g. exported between the regime decision and the
	// first frontier bucket — in which case restore rebuilds an equivalent
	// state from the matching.
	Frontier *FrontierSnapshot
}

// FrontierSnapshot is the frontier engine's persistent scheduling state: both
// sides' proposal caches and dirty worklists, plus the lifetime re-scoring
// counter.
type FrontierSnapshot struct {
	Left, Right FrontierSideSnapshot

	// Rescored is the engine's lifetime scoring-work counter (observability
	// only; it never influences output).
	Rescored int64
}

// FrontierSideSnapshot is one side's cache and worklist. The proposal cache
// is row-major like frontierSide.cache: entry v*nLevels+j is node v's
// proposal at schedule level j, split into parallel node/score slices.
type FrontierSideSnapshot struct {
	ProposalNode  []graph.NodeID
	ProposalScore []int32

	// Dirty lists the queued nodes awaiting re-scoring, in queue order. The
	// queued-bitmap is implied: a node is queued iff it appears here.
	Dirty []graph.NodeID
}

// ExportState deep-copies the session's complete state. It may be called at
// any bucket boundary — between runs, or from inside a progress hook (which
// runs synchronously between buckets on the run's own goroutine).
func (s *Session) ExportState() *SessionState {
	st := &SessionState{
		Opts:           s.opts,
		N1:             s.g1.NumNodes(),
		N2:             s.g2.NumNodes(),
		Pairs:          s.m.Pairs(),
		Seeds:          s.m.SeedCount(),
		Sweeps:         s.sweeps,
		NextBucket:     s.pos,
		Phases:         append([]PhaseStat(nil), s.phases...),
		PhasesDropped:  s.dropped.Buckets,
		DroppedMatched: s.dropped.Matched,
		HybridFrontier: s.opts.Engine == EngineHybrid && s.hybridSwitched,
	}
	if s.fr != nil {
		st.Frontier = s.fr.export()
	}
	return st
}

// RestoreSession rebuilds a Session over the two graphs from an exported
// state, re-deriving everything the state omits (linked-neighbor counts, the
// bucket schedule). Every invariant the state must satisfy is checked before
// any of it is installed: an invalid or corrupt state returns an error and
// never a session in a half-restored shape. The restored session's future
// output is bit-identical to the exporting session's.
func RestoreSession(g1, g2 *graph.Graph, st *SessionState) (*Session, error) {
	if g1 == nil || g2 == nil {
		return nil, errors.New("core: restore: nil graph")
	}
	if st == nil {
		return nil, errors.New("core: restore: nil state")
	}
	if err := st.Opts.Validate(); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	if st.N1 != g1.NumNodes() || st.N2 != g2.NumNodes() {
		return nil, fmt.Errorf("core: restore: state is for %d x %d nodes, graphs have %d x %d",
			st.N1, st.N2, g1.NumNodes(), g2.NumNodes())
	}
	if st.Seeds < 0 || st.Seeds > len(st.Pairs) {
		return nil, fmt.Errorf("core: restore: seed count %d out of range for %d pairs", st.Seeds, len(st.Pairs))
	}
	m, err := NewMatching(g1.NumNodes(), g2.NumNodes(), st.Pairs)
	if err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	if m.Len() != len(st.Pairs) {
		// NewMatching tolerates exact duplicates; a session never records one.
		return nil, fmt.Errorf("core: restore: %d pairs contain duplicates", len(st.Pairs))
	}
	m.seeds = st.Seeds

	buckets := st.Opts.buckets(g1, g2)
	if st.Sweeps < 0 {
		return nil, fmt.Errorf("core: restore: negative sweep count %d", st.Sweeps)
	}
	if st.NextBucket < 0 || st.NextBucket >= len(buckets) {
		return nil, fmt.Errorf("core: restore: bucket position %d outside schedule of %d buckets", st.NextBucket, len(buckets))
	}
	if st.NextBucket > 0 && st.Sweeps == 0 {
		return nil, errors.New("core: restore: mid-sweep position without a started sweep")
	}
	// Every sweep runs the full schedule in order, so the phase log length
	// and per-entry schedule fields are determined by the position. The log
	// is a bounded window; the evicted prefix is whole sweeps only.
	ran := st.Sweeps * len(buckets)
	if st.NextBucket > 0 {
		ran = (st.Sweeps-1)*len(buckets) + st.NextBucket
	}
	if st.PhasesDropped < 0 || st.DroppedMatched < 0 {
		return nil, fmt.Errorf("core: restore: negative evicted-phase totals (%d entries, %d matched)", st.PhasesDropped, st.DroppedMatched)
	}
	if st.PhasesDropped%len(buckets) != 0 {
		return nil, fmt.Errorf("core: restore: evicted phase prefix of %d entries is not whole sweeps of %d buckets", st.PhasesDropped, len(buckets))
	}
	if st.PhasesDropped+len(st.Phases) != ran {
		return nil, fmt.Errorf("core: restore: phase log has %d+%d entries, schedule position implies %d", st.PhasesDropped, len(st.Phases), ran)
	}
	prevTotal := 0
	for i, ph := range st.Phases {
		gi := st.PhasesDropped + i
		if ph.Iteration != gi/len(buckets)+1 || ph.MinDegree != buckets[gi%len(buckets)] {
			return nil, fmt.Errorf("core: restore: phase %d (%+v) disagrees with the bucket schedule", gi, ph)
		}
		if ph.Matched < 0 || ph.TotalL < prevTotal {
			return nil, fmt.Errorf("core: restore: phase %d (%+v) not monotone", gi, ph)
		}
		prevTotal = ph.TotalL
	}
	if prevTotal > m.Len() {
		return nil, fmt.Errorf("core: restore: phase log reaches %d links, matching has %d", prevTotal, m.Len())
	}
	if st.HybridFrontier && st.Opts.Engine != EngineHybrid {
		return nil, fmt.Errorf("core: restore: hybrid regime flag set under fixed engine %v", st.Opts.Engine)
	}
	if st.Opts.Engine == EngineHybrid && !st.HybridFrontier && st.Frontier != nil {
		return nil, errors.New("core: restore: frontier caches present but hybrid state is in the parallel regime")
	}

	s := &Session{
		g1:             g1,
		g2:             g2,
		opts:           st.Opts,
		m:              m,
		lc:             newLinkedCounts(g1, g2, m),
		phases:         append([]PhaseStat(nil), st.Phases...),
		dropped:        PhaseTotals{Buckets: st.PhasesDropped, Matched: st.DroppedMatched},
		sweeps:         st.Sweeps,
		pos:            st.NextBucket,
		hybridSwitched: st.HybridFrontier,
	}
	if st.NextBucket > 0 {
		// Rebuild the current sweep's commit counter from the retained log
		// (the window always covers the sweep in progress), so a hybrid
		// session restored mid-sweep makes the same regime decision at the
		// sweep's end as the uninterrupted run.
		for _, ph := range s.phases[len(s.phases)-st.NextBucket:] {
			s.sweepMatched += ph.Matched
		}
	}
	wantFrontier := st.Opts.Engine == EngineFrontier ||
		(st.Opts.Engine == EngineHybrid && st.HybridFrontier)
	if wantFrontier {
		if st.Frontier != nil {
			fr, err := restoreFrontier(g1, g2, st.Opts, st.Frontier)
			if err != nil {
				return nil, err
			}
			s.fr = fr
		} else if st.Opts.Engine == EngineFrontier {
			// No serialized frontier state (e.g. an engine switch at restore):
			// a fresh initialization is equivalent — every node that could
			// propose is queued, and re-scoring a clean node reproduces its
			// cached row, so only the scheduling-work counter differs. A
			// hybrid session in the frontier regime takes the same rebuild
			// lazily at its next bucket (ensureHybridFrontier).
			s.fr = newFrontierState(g1, g2, m, s.lc, st.Opts)
		}
	}
	return s, nil
}

// export deep-copies the frontier state into its serializable form.
func (f *frontierState) export() *FrontierSnapshot {
	return &FrontierSnapshot{
		Left:     f.left.export(),
		Right:    f.right.export(),
		Rescored: f.rescored,
	}
}

func (s *frontierSide) export() FrontierSideSnapshot {
	nodes := make([]graph.NodeID, len(s.cache))
	scores := make([]int32, len(s.cache))
	for i, c := range s.cache {
		nodes[i], scores[i] = c.node, c.score
	}
	return FrontierSideSnapshot{
		ProposalNode:  nodes,
		ProposalScore: scores,
		Dirty:         append([]graph.NodeID(nil), s.dirty...),
	}
}

// restoreFrontier validates a serialized frontier state against the graphs
// and schedule and rebuilds the engine state from it.
func restoreFrontier(g1, g2 *graph.Graph, opts Options, snap *FrontierSnapshot) (*frontierState, error) {
	levels := opts.buckets(g1, g2)
	if snap.Rescored < 0 {
		return nil, fmt.Errorf("core: restore: negative frontier work counter %d", snap.Rescored)
	}
	f := &frontierState{
		levels:    levels,
		topExp:    topExpOf(levels),
		threshold: int32(opts.Threshold),
		rescored:  snap.Rescored,
	}
	if err := f.left.restore(g1.NumNodes(), len(levels), g2.NumNodes(), snap.Left); err != nil {
		return nil, fmt.Errorf("core: restore: left frontier: %w", err)
	}
	if err := f.right.restore(g2.NumNodes(), len(levels), g1.NumNodes(), snap.Right); err != nil {
		return nil, fmt.Errorf("core: restore: right frontier: %w", err)
	}
	return f, nil
}

func (s *frontierSide) restore(n, nLevels, nPartners int, snap FrontierSideSnapshot) error {
	if len(snap.ProposalNode) != n*nLevels || len(snap.ProposalScore) != n*nLevels {
		return fmt.Errorf("cache is %dx%d entries, schedule needs %d x %d levels",
			len(snap.ProposalNode), len(snap.ProposalScore), n, nLevels)
	}
	cache := make([]candidate, n*nLevels)
	for i := range cache {
		node, score := snap.ProposalNode[i], snap.ProposalScore[i]
		switch {
		case score < 0:
			return fmt.Errorf("cache entry %d has negative score %d", i, score)
		case score == 0 && node != 0:
			return fmt.Errorf("cache entry %d is an abstention naming node %d", i, node)
		case score > 0 && int(node) >= nPartners:
			return fmt.Errorf("cache entry %d proposes out-of-range node %d (%d partners)", i, node, nPartners)
		}
		cache[i] = candidate{node: node, score: score}
	}
	queued := make([]bool, n)
	dirty := make([]graph.NodeID, 0, len(snap.Dirty))
	for _, v := range snap.Dirty {
		if int(v) >= n {
			return fmt.Errorf("dirty entry %d out of range (%d nodes)", v, n)
		}
		if queued[v] {
			return fmt.Errorf("node %d queued twice", v)
		}
		queued[v] = true
		dirty = append(dirty, v)
	}
	s.cache = cache
	s.nLevels = nLevels
	s.queued = queued
	s.dirty = dirty
	s.run = nil
	s.scratch = nil
	return nil
}
