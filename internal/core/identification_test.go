package core

import (
	"testing"

	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
	"github.com/sociograph/reconcile/internal/xrand"
)

// End-to-end identification quality on the paper's theoretical models. These
// are the Section 4 claims at test scale: near-complete identification with
// zero errors on G(n,p) (Theorems 1-4) and on PA graphs (Lemmas 10-12).

func evaluate(t *testing.T, res *Result) (correct, wrong int) {
	t.Helper()
	for _, p := range res.NewPairs {
		if p.Left == p.Right {
			correct++
		} else {
			wrong++
		}
	}
	return correct, wrong
}

func TestIdentifyErdosRenyi(t *testing.T) {
	// n=3000, np ≈ 20 > c log n keeps both copies connected (the theorem's
	// regime); s = 0.7, l = 0.1, T = 3 as in Lemma 3.
	r := xrand.New(1)
	n := 3000
	g := gen.ErdosRenyi(r, n, 20.0/float64(n))
	g1, g2 := sampling.IndependentCopies(r, g, 0.7, 0.7)
	seeds := sampling.Seeds(r, graph.IdentityPairs(n), 0.1)
	opts := DefaultOptions()
	opts.Threshold = 3
	opts.Iterations = 3
	res, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	correct, wrong := evaluate(t, res)
	if wrong != 0 {
		t.Errorf("G(n,p): %d wrong matches (theory predicts zero)", wrong)
	}
	identified := len(seeds) + correct
	if identified < n*80/100 {
		t.Errorf("G(n,p): identified %d/%d nodes; theory predicts 1-o(1)", identified, n)
	}
}

func TestIdentifyPreferentialAttachment(t *testing.T) {
	// ms² = 12.8 here, below Lemma 12's ms² ≥ 22 regime, but the paper's
	// experiments show the algorithm works well outside the proof constants.
	// At this small scale (n=5000; the paper uses n=1M) a handful of
	// dense-core coincidences can slip past the mutual-best filter, so we
	// assert near-perfect precision (≤ 0.1% error) and high recall rather
	// than exactly zero errors.
	r := xrand.New(2)
	n := 5000
	g := gen.PreferentialAttachment(r, n, 20)
	g1, g2 := sampling.IndependentCopies(r, g, 0.8, 0.8)
	seeds := sampling.Seeds(r, graph.IdentityPairs(n), 0.1)
	opts := DefaultOptions()
	opts.Threshold = 3
	opts.Iterations = 2
	res, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	correct, wrong := evaluate(t, res)
	if wrong*1000 > correct {
		t.Errorf("PA: %d wrong vs %d correct matches (>0.1%%)", wrong, correct)
	}
	identified := len(seeds) + correct
	if identified < n*90/100 {
		t.Errorf("PA: identified %d/%d nodes", identified, n)
	}
}

func TestHighDegreeNodesIdentifiedFirst(t *testing.T) {
	// Lemma 11: all high-degree nodes are identified (in the first sweep).
	r := xrand.New(3)
	n := 4000
	g := gen.PreferentialAttachment(r, n, 8)
	g1, g2 := sampling.IndependentCopies(r, g, 0.8, 0.8)
	seeds := sampling.Seeds(r, graph.IdentityPairs(n), 0.1)
	opts := DefaultOptions()
	opts.Threshold = 2
	opts.Iterations = 1
	res, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	matched := make(map[graph.NodeID]bool)
	for _, p := range res.Pairs {
		matched[p.Left] = true
	}
	// Count identification among the top-degree decile of the intersection.
	inter := graph.Intersection(g1, g2)
	missedHigh, high := 0, 0
	for v := 0; v < n; v++ {
		if inter.Degree(graph.NodeID(v)) >= 30 {
			high++
			if !matched[graph.NodeID(v)] {
				missedHigh++
			}
		}
	}
	if high == 0 {
		t.Skip("no high-degree nodes at this scale")
	}
	if missedHigh*20 > high {
		t.Errorf("missed %d/%d high-degree nodes", missedHigh, high)
	}
}

func TestDisableBucketingStillRuns(t *testing.T) {
	g1, g2, seeds := testInstance(5, 300)
	opts := DefaultOptions()
	opts.DisableBucketing = true
	res, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) < len(seeds) {
		t.Fatal("unbucketed run lost seeds")
	}
	// Exactly one bucket per iteration.
	if len(res.Phases) != opts.Iterations {
		t.Fatalf("phases = %d, want %d", len(res.Phases), opts.Iterations)
	}
}

func TestPhaseStatsConsistent(t *testing.T) {
	g1, g2, seeds := testInstance(6, 300)
	res, err := Reconcile(g1, g2, seeds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	total := len(seeds)
	for i, ph := range res.Phases {
		total += ph.Matched
		if ph.TotalL != total {
			t.Fatalf("phase %d: TotalL=%d, want %d", i, ph.TotalL, total)
		}
		if ph.Iteration < 1 || ph.Iteration > DefaultOptions().Iterations {
			t.Fatalf("phase %d: bad iteration %d", i, ph.Iteration)
		}
		if ph.MinDegree < 1 {
			t.Fatalf("phase %d: bad min degree %d", i, ph.MinDegree)
		}
	}
	if total != len(res.Pairs) {
		t.Fatalf("phase totals %d != pairs %d", total, len(res.Pairs))
	}
}

// Regression guard: matching must work when the two graphs have different
// node counts (e.g. the sybil-attacked copy has 2n nodes).
func TestAsymmetricNodeCounts(t *testing.T) {
	r := xrand.New(9)
	n := 500
	g := gen.PreferentialAttachment(r, n, 6)
	g1, g2 := sampling.IndependentCopies(r, g, 0.75, 0.75)
	g2 = sampling.SybilAttack(r, g2, 0.5)
	seeds := sampling.Seeds(r, graph.IdentityPairs(n), 0.15)
	res, err := Reconcile(g1, g2, seeds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	correct, wrong := 0, 0
	for _, p := range res.NewPairs {
		if p.Left == p.Right {
			correct++
		} else {
			wrong++
		}
	}
	if correct == 0 {
		t.Fatal("no correct matches under attack")
	}
	if wrong*10 > correct {
		t.Errorf("attack: %d wrong vs %d correct", wrong, correct)
	}
}
