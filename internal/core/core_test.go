package core

import (
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
)

func TestOptionsValidate(t *testing.T) {
	good := DefaultOptions()
	if err := good.Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	bad := []Options{
		{Threshold: 0, Iterations: 1},
		{Threshold: 1, Iterations: 0},
		{Threshold: 1, Iterations: 1, MinBucketExp: -1},
		{Threshold: 1, Iterations: 1, MaxDegree: -2},
		{Threshold: 1, Iterations: 1, Workers: -1},
		{Threshold: 1, Iterations: 1, Engine: Engine(9)},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, o)
		}
	}
}

func TestEngineString(t *testing.T) {
	if EngineParallel.String() != "parallel" || EngineSequential.String() != "sequential" {
		t.Fatal("engine names wrong")
	}
	if Engine(7).String() == "" {
		t.Fatal("unknown engine should still render")
	}
}

func TestBuckets(t *testing.T) {
	g := graph.FromEdges(10, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}, {U: 0, V: 5}, {U: 0, V: 6}, {U: 0, V: 7}, {U: 0, V: 8}, {U: 0, V: 9},
	}) // max degree 9
	o := DefaultOptions()
	got := o.buckets(g, g)
	want := []int{8, 4, 2} // j = 3, 2, 1
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}

	o.MinBucketExp = 0
	got = o.buckets(g, g)
	if got[len(got)-1] != 1 {
		t.Fatalf("MinBucketExp=0 buckets = %v, want final 1", got)
	}

	o.DisableBucketing = true
	got = o.buckets(g, g)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("unbucketed = %v, want [1]", got)
	}

	o = DefaultOptions()
	o.MaxDegree = 100
	got = o.buckets(g, g)
	if got[0] != 64 {
		t.Fatalf("MaxDegree=100 first bucket = %d, want 64", got[0])
	}

	// Degenerate: empty graphs.
	e := graph.FromEdges(0, nil)
	got = DefaultOptions().buckets(e, e)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("empty-graph buckets = %v, want [2]", got)
	}
}

func TestNewMatchingValidation(t *testing.T) {
	if _, err := NewMatching(3, 3, []graph.Pair{{Left: 5, Right: 0}}); err == nil {
		t.Error("out-of-range left seed accepted")
	}
	if _, err := NewMatching(3, 3, []graph.Pair{{Left: 0, Right: 5}}); err == nil {
		t.Error("out-of-range right seed accepted")
	}
	if _, err := NewMatching(3, 3, []graph.Pair{{Left: 0, Right: 1}, {Left: 0, Right: 2}}); err == nil {
		t.Error("conflicting left seed accepted")
	}
	if _, err := NewMatching(3, 3, []graph.Pair{{Left: 0, Right: 1}, {Left: 2, Right: 1}}); err == nil {
		t.Error("conflicting right seed accepted")
	}
	m, err := NewMatching(3, 3, []graph.Pair{{Left: 0, Right: 1}, {Left: 0, Right: 1}})
	if err != nil {
		t.Fatalf("exact duplicate seed rejected: %v", err)
	}
	if m.Len() != 1 || m.SeedCount() != 1 {
		t.Fatalf("duplicate seed stored twice: len=%d", m.Len())
	}
	if m.LeftMatch(0) != 1 || m.RightMatch(1) != 0 || m.LeftMatch(1) != NoMatch {
		t.Fatal("matching arrays wrong")
	}
	if err := m.validateInjective(); err != nil {
		t.Fatal(err)
	}
}

func TestReconcileInputErrors(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	if _, err := Reconcile(nil, g, nil, DefaultOptions()); err == nil {
		t.Error("nil g1 accepted")
	}
	if _, err := Reconcile(g, nil, nil, DefaultOptions()); err == nil {
		t.Error("nil g2 accepted")
	}
	if _, err := Reconcile(g, g, nil, Options{}); err == nil {
		t.Error("zero options accepted")
	}
	if _, err := Reconcile(g, g, []graph.Pair{{Left: 9, Right: 0}}, DefaultOptions()); err == nil {
		t.Error("bad seed accepted")
	}
}

func TestReconcileEmptyInputs(t *testing.T) {
	e := graph.FromEdges(0, nil)
	res, err := Reconcile(e, e, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 || len(res.NewPairs) != 0 {
		t.Fatal("empty inputs produced pairs")
	}

	// No seeds: no witnesses can ever exist, so no matches.
	g := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
	res, err = Reconcile(g, g, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NewPairs) != 0 {
		t.Fatalf("no-seed run matched %d pairs", len(res.NewPairs))
	}
}

// A chain of triangles hanging off hub 0: each unseeded node becomes the
// unique partner with two witnesses once its predecessor is identified, so
// the iterated sweeps should identify the whole graph one node at a time.
func TestReconcileHandCrafted(t *testing.T) {
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, // triangle seeds 2
		{U: 0, V: 3}, {U: 2, V: 3}, // 3 hangs off 0 and 2
		{U: 0, V: 4}, {U: 3, V: 4}, // 4 hangs off 0 and 3
	}
	g := graph.FromEdges(5, edges)
	opts := DefaultOptions()
	opts.Threshold = 2
	opts.MinBucketExp = 0
	opts.Engine = EngineSequential
	seeds := []graph.Pair{{Left: 0, Right: 0}, {Left: 1, Right: 1}}
	res, err := Reconcile(g, g, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 is the only node adjacent to both seeds (score 2); once it is
	// linked, node 3 is the only node adjacent to {0, 2}; then node 4 to
	// {0, 3}. Everything should be identified.
	if len(res.Pairs) != 5 {
		t.Fatalf("matched %d pairs, want all 5: %v", len(res.Pairs), res.Pairs)
	}
	for _, p := range res.Pairs {
		if p.Left != p.Right {
			t.Fatalf("mismatched pair %v on identical graphs", p)
		}
	}
	if res.Seeds != 2 || len(res.NewPairs) != 3 {
		t.Fatalf("seeds=%d new=%d", res.Seeds, len(res.NewPairs))
	}
	if len(res.Phases) == 0 {
		t.Fatal("no phase stats recorded")
	}
}

// A perfectly symmetric square: 0-1-2-3-0. Seeding only node 0 leaves nodes
// 1 and 3 indistinguishable (both neighbors of 0) — tie rejection must keep
// them unmatched rather than guess.
func TestReconcileTieRejection(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	opts := DefaultOptions()
	opts.Threshold = 1
	opts.MinBucketExp = 0
	opts.Engine = EngineSequential
	res, err := Reconcile(g, g, []graph.Pair{{Left: 0, Right: 0}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.NewPairs {
		if p.Left != p.Right {
			t.Fatalf("tie broke wrongly: %v", p)
		}
		if p.Left == 1 || p.Left == 3 {
			t.Fatalf("node %d matched despite symmetric ambiguity", p.Left)
		}
	}
}

func TestReconcileThreshold(t *testing.T) {
	// Path 0-1-2: seed 0; node 1's only witness is 0 (score 1).
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	opts := DefaultOptions()
	opts.MinBucketExp = 0
	opts.Engine = EngineSequential
	opts.Threshold = 2
	res, err := Reconcile(g, g, []graph.Pair{{Left: 0, Right: 0}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NewPairs) != 0 {
		t.Fatalf("T=2 matched pairs with single witnesses: %v", res.NewPairs)
	}
	opts.Threshold = 1
	res, err = Reconcile(g, g, []graph.Pair{{Left: 0, Right: 0}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// With T=1, node 1 is the unique neighbor pair of the seed on both
	// sides... but node 1 in G1 scores against node 1 in G2 only; match it,
	// then node 2 follows.
	if len(res.NewPairs) != 2 {
		t.Fatalf("T=1 matched %d pairs, want 2: %v", len(res.NewPairs), res.NewPairs)
	}
}

func TestSimilarityWitnesses(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
	m, err := NewMatching(5, 5, []graph.Pair{{Left: 0, Right: 0}, {Left: 2, Right: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Witnesses for (1,1): neighbors of 1 in G1 = {0,2}; both linked to
	// themselves; 0 and 2 are neighbors of 1 in G2 → 2 witnesses.
	if got := SimilarityWitnesses(g, g, m, 1, 1); got != 2 {
		t.Fatalf("witnesses(1,1) = %d, want 2", got)
	}
	// Witnesses for (4,4): neighbor 3 unlinked → 0.
	if got := SimilarityWitnesses(g, g, m, 4, 4); got != 0 {
		t.Fatalf("witnesses(4,4) = %d, want 0", got)
	}
	// Witnesses for (1,3): N(1)={0,2} linked to {0,2}; N_G2(3)={2,4};
	// only 2 qualifies → 1.
	if got := SimilarityWitnesses(g, g, m, 1, 3); got != 1 {
		t.Fatalf("witnesses(1,3) = %d, want 1", got)
	}
}
