package core

import (
	"context"
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
)

// runToBoundary starts a session and cancels it after exactly `stop` bucket
// passes, returning the session frozen at that phase boundary.
func runToBoundary(t *testing.T, g1, g2 *graph.Graph, seeds []graph.Pair, opts Options, sweeps, stop int) *Session {
	t.Helper()
	s, err := NewSession(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buckets := 0
	s.SetProgress(func(PhaseEvent) {
		buckets++
		if buckets == stop {
			cancel()
		}
	})
	if _, err := s.RunContext(ctx, sweeps); err != context.Canceled {
		t.Fatalf("stop=%d: err = %v, want context.Canceled", stop, err)
	}
	if buckets != stop {
		t.Fatalf("ran %d buckets, want %d", buckets, stop)
	}
	s.SetProgress(nil)
	return s
}

// finishSchedule completes an interrupted k-sweep schedule: the partial
// sweep (free), then whatever full sweeps remain.
func finishSchedule(t *testing.T, s *Session, sweeps int) {
	t.Helper()
	remaining := sweeps - s.Sweeps()
	if _, err := s.RunContext(context.Background(), remaining); err != nil {
		t.Fatal(err)
	}
}

// TestResumeEquivalence is the crash-injection harness: for every engine,
// kill a run at every bucket boundary in turn, export the session state at
// the point of death, restore it into a fresh session, finish the schedule —
// and require the result to be bit-identical (pairs, discovery order, phase
// log) to the run that was never interrupted. It extends the PR 2
// cancel-prefix tests from "the prefix is valid" to "the resumed whole is
// the uninterrupted whole".
func TestResumeEquivalence(t *testing.T) {
	g1, g2, seeds := testInstance(5, 400)
	for _, engine := range []Engine{EngineSequential, EngineParallel, EngineFrontier, EngineHybrid} {
		t.Run(engine.String(), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Engine = engine

			full, err := Reconcile(g1, g2, seeds, opts)
			if err != nil {
				t.Fatal(err)
			}
			totalBuckets := len(full.Phases)
			if totalBuckets < 4 {
				t.Fatalf("instance too small to interrupt: %d buckets", totalBuckets)
			}

			for stop := 1; stop < totalBuckets; stop++ {
				victim := runToBoundary(t, g1, g2, seeds, opts, opts.Iterations, stop)
				st := victim.ExportState()

				restored, err := RestoreSession(g1, g2, st)
				if err != nil {
					t.Fatalf("stop=%d: restore: %v", stop, err)
				}
				finishSchedule(t, restored, opts.Iterations)
				if got := restored.Result(); !resultsIdentical(full, got) {
					t.Fatalf("stop=%d: restored run diverged: %d pairs / %d phases, want %d / %d",
						stop, len(got.Pairs), len(got.Phases), len(full.Pairs), len(full.Phases))
				}

				// The victim itself must also finish identically: restore is a
				// copy, not a transfer.
				finishSchedule(t, victim, opts.Iterations)
				if got := victim.Result(); !resultsIdentical(full, got) {
					t.Fatalf("stop=%d: interrupted session itself diverged after finishing", stop)
				}
			}
		})
	}
}

// TestResumeEquivalenceCrossEngine restores frontier-engine snapshots into
// the sequential engine and sequential snapshots into the frontier engine at
// every boundary; the finished runs must still be bit-identical. Switching
// into the frontier exercises the rebuild-from-matching path (no serialized
// caches to lean on).
func TestResumeEquivalenceCrossEngine(t *testing.T) {
	g1, g2, seeds := testInstance(11, 350)
	opts := DefaultOptions()

	full, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	totalBuckets := len(full.Phases)
	if totalBuckets < 4 {
		t.Fatalf("instance too small to interrupt: %d buckets", totalBuckets)
	}

	for _, tc := range []struct {
		name     string
		runAs    Engine
		resumeAs Engine
	}{
		{"frontier to sequential", EngineFrontier, EngineSequential},
		{"sequential to frontier", EngineSequential, EngineFrontier},
		{"parallel to frontier", EngineParallel, EngineFrontier},
		{"hybrid to frontier", EngineHybrid, EngineFrontier},
		{"hybrid to sequential", EngineHybrid, EngineSequential},
		{"frontier to hybrid", EngineFrontier, EngineHybrid},
		{"parallel to hybrid", EngineParallel, EngineHybrid},
		{"sequential to hybrid", EngineSequential, EngineHybrid},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for stop := 1; stop < totalBuckets; stop++ {
				o := opts
				o.Engine = tc.runAs
				victim := runToBoundary(t, g1, g2, seeds, o, o.Iterations, stop)
				st := victim.ExportState()
				st.Opts.Engine = tc.resumeAs
				// Mirror the public restore mask (restoreReconciler): the
				// frontier engine keeps or rebuilds caches, the hybrid engine
				// derives its regime from the commit history, fixed scan
				// engines drop both.
				switch tc.resumeAs {
				case EngineFrontier:
					st.HybridFrontier = false
					st.Frontier = nil // force the rebuild path explicitly
				case EngineHybrid:
					if tc.runAs != EngineHybrid {
						st.HybridFrontier = st.InferHybridRegime()
					}
					if !st.HybridFrontier {
						st.Frontier = nil
					}
				default:
					st.HybridFrontier = false
					st.Frontier = nil
				}
				restored, err := RestoreSession(g1, g2, st)
				if err != nil {
					t.Fatalf("stop=%d: restore: %v", stop, err)
				}
				finishSchedule(t, restored, o.Iterations)
				if got := restored.Result(); !resultsIdentical(full, got) {
					t.Fatalf("stop=%d: cross-engine resume diverged: %d pairs, want %d",
						stop, len(got.Pairs), len(full.Pairs))
				}
			}
		})
	}
}

// TestResumeMidSweepContinuation pins the schedule-position semantics
// directly: a cancelled mid-sweep run completes the interrupted sweep at the
// start of the next Run without consuming its sweep budget, so phase logs of
// interrupted and uninterrupted runs are identical bucket for bucket.
func TestResumeMidSweepContinuation(t *testing.T) {
	g1, g2, seeds := testInstance(7, 300)
	opts := DefaultOptions()

	full, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	perSweep := len(full.Phases) / opts.Iterations
	if perSweep < 2 {
		t.Fatalf("schedule too short: %d buckets/sweep", perSweep)
	}

	// Stop inside the first sweep.
	s := runToBoundary(t, g1, g2, seeds, opts, opts.Iterations, 1)
	if s.Sweeps() != 1 {
		t.Fatalf("started sweeps = %d, want 1", s.Sweeps())
	}
	// Run(0) finishes the interrupted sweep and nothing more.
	if _, err := s.RunContext(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Result().Phases); got != perSweep {
		t.Fatalf("after Run(0): %d phases, want %d (one completed sweep)", got, perSweep)
	}
	if s.Sweeps() != 1 {
		t.Fatalf("Run(0) consumed a sweep: %d", s.Sweeps())
	}
	// The remaining budget completes the schedule identically.
	finishSchedule(t, s, opts.Iterations)
	if got := s.Result(); !resultsIdentical(full, got) {
		t.Fatal("mid-sweep continuation diverged from the uninterrupted run")
	}
}

// TestRestoreSessionRejectsInvalidState walks every class of invariant the
// import checks enforce: a corrupted state must be refused, never installed.
func TestRestoreSessionRejectsInvalidState(t *testing.T) {
	g1, g2, seeds := testInstance(19, 200)
	opts := DefaultOptions()
	opts.Engine = EngineFrontier // the frontier-cache corruptions below need caches present
	s, err := NewSession(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1)
	good := s.ExportState()

	check := func(name string, corrupt func(st *SessionState)) {
		t.Helper()
		st := s.ExportState() // fresh deep copy each time
		corrupt(st)
		if _, err := RestoreSession(g1, g2, st); err == nil {
			t.Errorf("%s: corrupt state accepted", name)
		}
	}

	if _, err := RestoreSession(g1, g2, good); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	if _, err := RestoreSession(nil, g2, good); err == nil {
		t.Error("nil graph accepted")
	}

	check("invalid options", func(st *SessionState) { st.Opts.Threshold = 0 })
	check("wrong node counts", func(st *SessionState) { st.N1++ })
	check("seed count past pairs", func(st *SessionState) { st.Seeds = len(st.Pairs) + 1 })
	check("negative seed count", func(st *SessionState) { st.Seeds = -1 })
	check("out-of-range pair", func(st *SessionState) {
		st.Pairs[0].Left = graph.NodeID(g1.NumNodes())
	})
	check("conflicting pairs", func(st *SessionState) { st.Pairs[1] = st.Pairs[0] })
	check("negative sweeps", func(st *SessionState) { st.Sweeps = -1 })
	check("bucket position past schedule", func(st *SessionState) { st.NextBucket = len(st.Opts.buckets(g1, g2)) })
	check("phase log too short", func(st *SessionState) { st.Phases = st.Phases[:len(st.Phases)-1] })
	check("phase log off schedule", func(st *SessionState) { st.Phases[0].MinDegree++ })
	check("phase log non-monotone", func(st *SessionState) {
		st.Phases[len(st.Phases)-1].TotalL = st.Phases[0].TotalL - 1
	})
	check("frontier cache truncated", func(st *SessionState) {
		st.Frontier.Left.ProposalNode = st.Frontier.Left.ProposalNode[:1]
	})
	check("frontier proposal out of range", func(st *SessionState) {
		st.Frontier.Left.ProposalNode[0] = graph.NodeID(g2.NumNodes())
		st.Frontier.Left.ProposalScore[0] = 1
	})
	check("frontier abstention naming a node", func(st *SessionState) {
		st.Frontier.Left.ProposalNode[0] = 1
		st.Frontier.Left.ProposalScore[0] = 0
	})
	check("frontier negative score", func(st *SessionState) { st.Frontier.Right.ProposalScore[0] = -1 })
	check("frontier dirty out of range", func(st *SessionState) {
		st.Frontier.Left.Dirty = append(st.Frontier.Left.Dirty, graph.NodeID(g1.NumNodes()))
	})
	check("frontier dirty duplicate", func(st *SessionState) {
		if len(st.Frontier.Left.Dirty) == 0 {
			st.Frontier.Left.Dirty = []graph.NodeID{0, 0}
		} else {
			st.Frontier.Left.Dirty = append(st.Frontier.Left.Dirty, st.Frontier.Left.Dirty[0])
		}
	})
	check("negative rescored counter", func(st *SessionState) { st.Frontier.Rescored = -1 })
	check("negative evicted-phase count", func(st *SessionState) { st.PhasesDropped = -1 })
	check("negative evicted-match count", func(st *SessionState) { st.DroppedMatched = -1 })
	check("evicted prefix not whole sweeps", func(st *SessionState) {
		// Pretend one extra entry was evicted: the count stops being a
		// multiple of the schedule length and disagrees with the position.
		st.PhasesDropped++
		st.Phases = st.Phases[1:]
	})
	check("evicted prefix overstates position", func(st *SessionState) {
		st.PhasesDropped += len(st.Opts.buckets(g1, g2))
	})
	check("hybrid flag under fixed engine", func(st *SessionState) { st.HybridFrontier = true })
	check("hybrid parallel regime with caches", func(st *SessionState) {
		st.Opts.Engine = EngineHybrid
		st.HybridFrontier = false
		// keep st.Frontier: caches without the frontier regime are inconsistent
	})
}

// TestExportStateIsDeepCopy ensures a snapshot is immune to the session
// continuing (and vice versa).
func TestExportStateIsDeepCopy(t *testing.T) {
	g1, g2, seeds := testInstance(23, 250)
	s, err := NewSession(g1, g2, seeds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1)
	st := s.ExportState()
	pairsBefore := len(st.Pairs)
	phasesBefore := len(st.Phases)
	s.Run(1)
	s.RunUntilStable(5)
	if len(st.Pairs) != pairsBefore || len(st.Phases) != phasesBefore {
		t.Fatal("exported state aliases the live session")
	}
	restored, err := RestoreSession(g1, g2, st)
	if err != nil {
		t.Fatal(err)
	}
	finishSchedule(t, restored, DefaultOptions().Iterations)
	restored.RunUntilStable(5)
	if !pairsEqual(restored.Result().Pairs, s.Result().Pairs) {
		t.Fatal("restored continuation diverged from the live session")
	}
}
