package core

import (
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
)

// nodesEq compares NodeID slices treating nil and empty as equal.
func nodesEq(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// statesEqual is deep SessionState equality with nil and empty slices
// identified — the merge materializes fresh slices, so pointer-shape
// equality is not the contract; content equality is.
func statesEqual(a, b *SessionState) bool {
	if a.Opts != b.Opts || a.N1 != b.N1 || a.N2 != b.N2 ||
		a.Seeds != b.Seeds || a.Sweeps != b.Sweeps || a.NextBucket != b.NextBucket ||
		a.PhasesDropped != b.PhasesDropped || a.DroppedMatched != b.DroppedMatched ||
		a.HybridFrontier != b.HybridFrontier {
		return false
	}
	if len(a.Pairs) != len(b.Pairs) {
		return false
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			return false
		}
	}
	if len(a.Phases) != len(b.Phases) {
		return false
	}
	for i := range a.Phases {
		if a.Phases[i] != b.Phases[i] {
			return false
		}
	}
	if (a.Frontier == nil) != (b.Frontier == nil) {
		return false
	}
	if a.Frontier != nil {
		fa, fb := a.Frontier, b.Frontier
		if fa.Rescored != fb.Rescored {
			return false
		}
		for _, s := range []struct{ x, y *FrontierSideSnapshot }{{&fa.Left, &fb.Left}, {&fa.Right, &fb.Right}} {
			if !nodesEq(s.x.ProposalNode, s.y.ProposalNode) || !nodesEq(s.x.Dirty, s.y.Dirty) {
				return false
			}
			if len(s.x.ProposalScore) != len(s.y.ProposalScore) {
				return false
			}
			for i := range s.x.ProposalScore {
				if s.x.ProposalScore[i] != s.y.ProposalScore[i] {
					return false
				}
			}
		}
	}
	return true
}

func TestRangeCount(t *testing.T) {
	cases := []struct {
		n1, n2, target, want int
	}{
		{0, 0, 1 << 20, 1},
		{100, 100, 0, 1},
		{100, 100, -5, 1},
		{1 << 20, 0, 1 << 20, 1},
		{1 << 20, 1, 1 << 20, 2},
		{10 << 20, 10 << 20, 1 << 20, 20},
		{1 << 30, 1 << 30, 1 << 20, MaxStateRanges},
		{5000, 5000, 1000, 10},
	}
	for _, c := range cases {
		if got := RangeCount(c.n1, c.n2, c.target); got != c.want {
			t.Errorf("RangeCount(%d, %d, %d) = %d, want %d", c.n1, c.n2, c.target, got, c.want)
		}
	}
}

func TestRangeSpansPartition(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 65, 1000} {
		for _, ranges := range []int{1, 2, 3, 7, 64} {
			spans := rangeSpans(n, ranges)
			if len(spans) != ranges {
				t.Fatalf("rangeSpans(%d, %d): %d spans", n, ranges, len(spans))
			}
			at := 0
			for r, s := range spans {
				if s.start != at || s.len() < 0 {
					t.Fatalf("rangeSpans(%d, %d): span %d = %+v, want start %d", n, ranges, r, s, at)
				}
				if d := spans[0].len() - s.len(); d < 0 || d > 1 {
					t.Fatalf("rangeSpans(%d, %d): unbalanced span %d", n, ranges, r)
				}
				at = s.end
			}
			if at != n {
				t.Fatalf("rangeSpans(%d, %d): spans end at %d", n, ranges, at)
			}
		}
	}
}

// syntheticState builds a structurally rich state by hand — frontier caches,
// dirty worklists, a phase log — without needing a session, so the
// round-trip test covers shapes (non-empty worklists) that depend on where
// a real run happens to stop.
func syntheticState(n1, n2, nLevels int) *SessionState {
	st := &SessionState{
		Opts:           DefaultOptions(),
		N1:             n1,
		N2:             n2,
		Seeds:          2,
		Sweeps:         3,
		NextBucket:     1,
		PhasesDropped:  8,
		DroppedMatched: 5,
		HybridFrontier: true,
		Phases: []PhaseStat{
			{Iteration: 3, MinDegree: 4, Matched: 2, TotalL: 7},
			{Iteration: 3, MinDegree: 2, Matched: 1, TotalL: 8},
		},
	}
	for i := 0; i < 9 && i < n1 && i < n2; i++ {
		st.Pairs = append(st.Pairs, graph.Pair{Left: graph.NodeID(i), Right: graph.NodeID((i + 1) % n2)})
	}
	fr := &FrontierSnapshot{Rescored: 1234}
	for v := 0; v < n1*nLevels; v++ {
		fr.Left.ProposalNode = append(fr.Left.ProposalNode, graph.NodeID(v%n2))
		fr.Left.ProposalScore = append(fr.Left.ProposalScore, int32(v%5))
	}
	for v := 0; v < n2*nLevels; v++ {
		fr.Right.ProposalNode = append(fr.Right.ProposalNode, graph.NodeID(v%n1))
		fr.Right.ProposalScore = append(fr.Right.ProposalScore, int32(v%3))
	}
	fr.Left.Dirty = []graph.NodeID{5, 1, 3}
	fr.Right.Dirty = []graph.NodeID{2, 7}
	st.Frontier = fr
	return st
}

func TestSplitMergeRoundTrip(t *testing.T) {
	states := map[string]*SessionState{
		"frontier": syntheticState(50, 40, 3),
		"plain": {
			Opts: DefaultOptions(), N1: 30, N2: 30, Seeds: 1, Sweeps: 1,
			Pairs: []graph.Pair{{Left: 0, Right: 0}, {Left: 4, Right: 5}},
		},
		"empty": {Opts: DefaultOptions(), N1: 0, N2: 0},
	}
	for name, st := range states {
		for _, ranges := range []int{1, 2, 3, 7} {
			man, parts, err := SplitStateRanges(st, ranges, nil)
			if err != nil {
				t.Fatalf("%s/R=%d: split: %v", name, ranges, err)
			}
			if len(parts) != ranges || man.Ranges != ranges {
				t.Fatalf("%s/R=%d: got %d parts", name, ranges, len(parts))
			}
			got, err := MergeStateRanges(man, parts)
			if err != nil {
				t.Fatalf("%s/R=%d: merge: %v", name, ranges, err)
			}
			if !statesEqual(st, got) {
				t.Fatalf("%s/R=%d: merge(split(st)) != st", name, ranges)
			}
		}
	}
}

// TestSplitFrozenChunksDelta pins the delta-chain contract: splitting a
// later state with the base split's chunk cut makes every shard diff as a
// pure prefix (appended pairs land in the last chunk), the per-shard deltas
// apply cleanly, and the merged result is the later state.
func TestSplitFrozenChunksDelta(t *testing.T) {
	g1, g2, seeds := testInstance(42, 200)
	opts := DefaultOptions()
	opts.Engine = EngineFrontier
	opts.Threshold = 2
	opts.Iterations = 4
	s, err := NewSession(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2)
	base := s.ExportState()
	s.Run(2)
	cur := s.ExportState()

	const ranges = 4
	_, baseParts, err := SplitStateRanges(base, ranges, nil)
	if err != nil {
		t.Fatal(err)
	}
	starts := PairChunkStarts(baseParts)
	manCur, curParts, err := SplitStateRanges(cur, ranges, starts)
	if err != nil {
		t.Fatal(err)
	}

	applied := make([]*SessionState, ranges)
	for r := 0; r < ranges; r++ {
		d, err := DiffStates(baseParts[r], curParts[r])
		if err != nil {
			t.Fatalf("shard %d: diff: %v", r, err)
		}
		if applied[r], err = ApplyDelta(baseParts[r], d); err != nil {
			t.Fatalf("shard %d: apply: %v", r, err)
		}
	}
	got, err := MergeStateRanges(manCur, applied)
	if err != nil {
		t.Fatalf("merge after apply: %v", err)
	}
	if !statesEqual(cur, got) {
		t.Fatal("delta-replayed ranged state differs from the directly exported state")
	}
}

// TestRangedResumeEquivalence is the core half of the matrix acceptance:
// restoring from a split+merged mid-run state and finishing must be
// bit-identical to the uninterrupted run, per engine.
func TestRangedResumeEquivalence(t *testing.T) {
	for _, engine := range []Engine{EngineFrontier, EngineHybrid, EngineParallel} {
		for _, ranges := range []int{2, 5} {
			g1, g2, seeds := testInstance(7, 250)
			opts := DefaultOptions()
			opts.Engine = engine
			opts.Threshold = 2
			opts.Iterations = 4

			full, err := NewSession(g1, g2, seeds, opts)
			if err != nil {
				t.Fatal(err)
			}
			full.Run(4)
			want := full.ExportState()

			s, err := NewSession(g1, g2, seeds, opts)
			if err != nil {
				t.Fatal(err)
			}
			s.Run(2)
			man, parts, err := SplitStateRanges(s.ExportState(), ranges, nil)
			if err != nil {
				t.Fatalf("engine %d/R=%d: split: %v", engine, ranges, err)
			}
			merged, err := MergeStateRanges(man, parts)
			if err != nil {
				t.Fatalf("engine %d/R=%d: merge: %v", engine, ranges, err)
			}
			restored, err := RestoreSession(g1, g2, merged)
			if err != nil {
				t.Fatalf("engine %d/R=%d: restore: %v", engine, ranges, err)
			}
			restored.Run(2)
			got := restored.ExportState()
			if !statesEqual(want, got) {
				t.Fatalf("engine %d/R=%d: ranged resume diverged from uninterrupted run", engine, ranges)
			}
		}
	}
}

func TestMergeRejectsInconsistentShards(t *testing.T) {
	split := func() (*RangeManifest, []*SessionState) {
		man, parts, err := SplitStateRanges(syntheticState(50, 40, 2), 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Deep-copy the shards so a mutation cannot leak between cases
		// through the aliased source state.
		cp := make([]*SessionState, len(parts))
		for i, p := range parts {
			c := *p
			if p.Frontier != nil {
				f := *p.Frontier
				f.Left.ProposalNode = append([]graph.NodeID(nil), p.Frontier.Left.ProposalNode...)
				f.Left.ProposalScore = append([]int32(nil), p.Frontier.Left.ProposalScore...)
				c.Frontier = &f
			}
			cp[i] = &c
		}
		return man, cp
	}

	cases := map[string]func(man *RangeManifest, parts []*SessionState) ([]*SessionState, *RangeManifest){
		"shard-count": func(man *RangeManifest, parts []*SessionState) ([]*SessionState, *RangeManifest) {
			return parts[:2], man
		},
		"nil-shard": func(man *RangeManifest, parts []*SessionState) ([]*SessionState, *RangeManifest) {
			parts[1] = nil
			return parts, man
		},
		"fingerprint": func(man *RangeManifest, parts []*SessionState) ([]*SessionState, *RangeManifest) {
			parts[2].Sweeps++
			return parts, man
		},
		"options": func(man *RangeManifest, parts []*SessionState) ([]*SessionState, *RangeManifest) {
			parts[1].Opts.Threshold++
			return parts, man
		},
		"span": func(man *RangeManifest, parts []*SessionState) ([]*SessionState, *RangeManifest) {
			parts[0].N1++
			return parts, man
		},
		"phases-in-shard": func(man *RangeManifest, parts []*SessionState) ([]*SessionState, *RangeManifest) {
			parts[0].Phases = []PhaseStat{{Iteration: 1}}
			return parts, man
		},
		"dirty-in-shard": func(man *RangeManifest, parts []*SessionState) ([]*SessionState, *RangeManifest) {
			parts[0].Frontier.Left.Dirty = []graph.NodeID{1}
			return parts, man
		},
		"cache-shape": func(man *RangeManifest, parts []*SessionState) ([]*SessionState, *RangeManifest) {
			parts[1].Frontier.Left.ProposalNode = parts[1].Frontier.Left.ProposalNode[:1]
			return parts, man
		},
		"rescored": func(man *RangeManifest, parts []*SessionState) ([]*SessionState, *RangeManifest) {
			parts[1].Frontier.Rescored++
			return parts, man
		},
		"pair-total": func(man *RangeManifest, parts []*SessionState) ([]*SessionState, *RangeManifest) {
			man.TotalPairs++
			return parts, man
		},
		"seed-lie": func(man *RangeManifest, parts []*SessionState) ([]*SessionState, *RangeManifest) {
			man.Seeds = man.TotalPairs
			return parts, man
		},
		"frontier-presence": func(man *RangeManifest, parts []*SessionState) ([]*SessionState, *RangeManifest) {
			parts[2].Frontier = nil
			return parts, man
		},
		"range-bounds": func(man *RangeManifest, parts []*SessionState) ([]*SessionState, *RangeManifest) {
			man.Ranges = MaxStateRanges + 1
			return parts, man
		},
	}
	for name, mutate := range cases {
		man, parts := split()
		mp, mm := mutate(man, parts)
		if _, err := MergeStateRanges(mm, mp); err == nil {
			t.Errorf("%s: merge accepted inconsistent shard set", name)
		}
	}

	// Control: the unmutated set must merge.
	man, parts := split()
	if _, err := MergeStateRanges(man, parts); err != nil {
		t.Fatalf("control merge failed: %v", err)
	}
}

func TestSplitRejectsBadChunkStarts(t *testing.T) {
	st := syntheticState(20, 20, 1)
	for name, starts := range map[string][]int{
		"wrong-len":  {0, 1},
		"nonzero":    {1, 2, 3},
		"descending": {0, 5, 3},
		"past-end":   {0, 2, len(st.Pairs) + 1},
	} {
		if _, _, err := SplitStateRanges(st, 3, starts); err == nil {
			t.Errorf("%s: split accepted bad chunk starts", name)
		}
	}
	if _, _, err := SplitStateRanges(st, 0, nil); err == nil {
		t.Error("split accepted zero ranges")
	}
	if _, _, err := SplitStateRanges(nil, 2, nil); err == nil {
		t.Error("split accepted nil state")
	}
}

// TestSeedClampPartition: shard seed counts always sum to the global count,
// wherever the seed boundary falls relative to the chunk cut.
func TestSeedClampPartition(t *testing.T) {
	st := &SessionState{Opts: DefaultOptions(), N1: 40, N2: 40}
	for i := 0; i < 30; i++ {
		st.Pairs = append(st.Pairs, graph.Pair{Left: graph.NodeID(i), Right: graph.NodeID(i)})
	}
	for seedCount := 0; seedCount <= 30; seedCount += 3 {
		st.Seeds = seedCount
		for _, ranges := range []int{1, 4, 7} {
			man, parts, err := SplitStateRanges(st, ranges, nil)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0
			for _, p := range parts {
				sum += p.Seeds
			}
			if sum != seedCount || man.Seeds != seedCount {
				t.Fatalf("seeds %d, R=%d: shards sum to %d", seedCount, ranges, sum)
			}
		}
	}
}
