package core

import (
	"context"
	"errors"
	"testing"

	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
	"github.com/sociograph/reconcile/internal/xrand"
)

// deltaInstance builds a session over a small PA instance.
func deltaInstance(t testing.TB, seed uint64, n int, opts Options) (*graph.Graph, *graph.Graph, *Session) {
	t.Helper()
	r := xrand.New(seed)
	g := gen.PreferentialAttachment(r, n, 5)
	g1, g2 := sampling.IndependentCopies(r, g, 0.7, 0.8)
	seeds := sampling.Seeds(r, graph.IdentityPairs(n), 0.12)
	s, err := NewSession(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g1, g2, s
}

// statesEquivalent compares two states field by field, treating nil and
// empty slices as equal (ApplyDelta normalizes empties to nil).
func statesEquivalent(a, b *SessionState) bool {
	if a.Opts != b.Opts || a.N1 != b.N1 || a.N2 != b.N2 ||
		a.Seeds != b.Seeds || a.Sweeps != b.Sweeps || a.NextBucket != b.NextBucket {
		return false
	}
	if a.PhasesDropped != b.PhasesDropped || a.DroppedMatched != b.DroppedMatched ||
		a.HybridFrontier != b.HybridFrontier {
		return false
	}
	if len(a.Pairs) != len(b.Pairs) || len(a.Phases) != len(b.Phases) {
		return false
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			return false
		}
	}
	for i := range a.Phases {
		if a.Phases[i] != b.Phases[i] {
			return false
		}
	}
	if (a.Frontier == nil) != (b.Frontier == nil) {
		return false
	}
	if a.Frontier == nil {
		return true
	}
	if a.Frontier.Rescored != b.Frontier.Rescored {
		return false
	}
	for _, s := range []struct{ x, y *FrontierSideSnapshot }{
		{&a.Frontier.Left, &b.Frontier.Left},
		{&a.Frontier.Right, &b.Frontier.Right},
	} {
		if len(s.x.ProposalNode) != len(s.y.ProposalNode) || len(s.x.Dirty) != len(s.y.Dirty) {
			return false
		}
		for i := range s.x.ProposalNode {
			if s.x.ProposalNode[i] != s.y.ProposalNode[i] || s.x.ProposalScore[i] != s.y.ProposalScore[i] {
				return false
			}
		}
		for i := range s.x.Dirty {
			if s.x.Dirty[i] != s.y.Dirty[i] {
				return false
			}
		}
	}
	return true
}

// TestDiffApplyIdentity pins the delta contract on every engine: for states
// exported at consecutive sweep boundaries (with incremental seeds arriving
// in between), ApplyDelta(base, DiffStates(base, cur)) == cur, and a session
// restored from the replayed state finishes bit-identically to one restored
// from cur directly.
func TestDiffApplyIdentity(t *testing.T) {
	for _, engine := range []Engine{EngineFrontier, EngineParallel, EngineSequential, EngineHybrid} {
		t.Run(engine.String(), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Engine = engine
			g1, g2, s := deltaInstance(t, 17, 400, opts)

			base := s.ExportState()
			injected := false
			notDiffable := 0
			for sweep := 0; sweep < 4; sweep++ {
				s.Run(1)
				if sweep == 1 && !injected {
					// An incremental seed between checkpoints must flow
					// through the delta like any other append.
					for v := 0; v < s.g1.NumNodes() && v < s.g2.NumNodes(); v++ {
						p := graph.Pair{Left: graph.NodeID(v), Right: graph.NodeID(v)}
						if s.m.LeftMatch(p.Left) == NoMatch && s.m.RightMatch(p.Right) == NoMatch {
							if err := s.AddSeeds([]graph.Pair{p}); err != nil {
								t.Fatal(err)
							}
							injected = true
							break
						}
					}
				}
				cur := s.ExportState()
				d, err := DiffStates(base, cur)
				if errors.Is(err, ErrNotDiffable) && engine == EngineHybrid {
					// The hybrid regime handoff makes the frontier caches
					// appear between checkpoints; a Checkpointer falls back
					// to one full snapshot there, so the chain just restarts.
					notDiffable++
					base = cur
					continue
				}
				if err != nil {
					t.Fatalf("sweep %d: diff: %v", sweep, err)
				}
				got, err := ApplyDelta(base, d)
				if err != nil {
					t.Fatalf("sweep %d: apply: %v", sweep, err)
				}
				if !statesEquivalent(cur, got) {
					t.Fatalf("sweep %d: apply(diff(base, cur)) != cur", sweep)
				}
				// The replayed state restores to a session whose future is
				// bit-identical to one restored from the direct export.
				a, err := RestoreSession(g1, g2, got)
				if err != nil {
					t.Fatalf("sweep %d: restore replayed: %v", sweep, err)
				}
				b, err := RestoreSession(g1, g2, cur)
				if err != nil {
					t.Fatalf("sweep %d: restore direct: %v", sweep, err)
				}
				a.Run(2)
				b.Run(2)
				ra, rb := a.Result(), b.Result()
				if len(ra.Pairs) != len(rb.Pairs) {
					t.Fatalf("sweep %d: replayed restore diverged (%d vs %d pairs)", sweep, len(ra.Pairs), len(rb.Pairs))
				}
				for i := range ra.Pairs {
					if ra.Pairs[i] != rb.Pairs[i] {
						t.Fatalf("sweep %d: replayed restore diverged at pair %d", sweep, i)
					}
				}
				base = cur
			}
			if !injected {
				t.Fatal("no free identity pair to inject; instance too saturated")
			}
			if notDiffable > 1 {
				t.Fatalf("hybrid forced %d full checkpoints, the one-way handoff allows at most 1", notDiffable)
			}
		})
	}
}

// TestDiffApplyMidSweep exports the base and target at bucket (not sweep)
// boundaries, the other positions serve checkpoints from.
func TestDiffApplyMidSweep(t *testing.T) {
	opts := DefaultOptions()
	g1, g2, s := deltaInstance(t, 23, 300, opts)
	stops := []int{1, 3, 5}
	var states []*SessionState
	buckets := 0
	ctx := context.Background()
	s.SetProgress(func(PhaseEvent) {
		buckets++
		for _, stop := range stops {
			if buckets == stop {
				states = append(states, s.ExportState())
			}
		}
	})
	s.RunContext(ctx, opts.Iterations)
	s.SetProgress(nil)
	if len(states) != len(stops) {
		t.Fatalf("captured %d states, want %d", len(states), len(stops))
	}
	for i := 1; i < len(states); i++ {
		d, err := DiffStates(states[i-1], states[i])
		if err != nil {
			t.Fatalf("diff %d: %v", i, err)
		}
		got, err := ApplyDelta(states[i-1], d)
		if err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		if !statesEquivalent(states[i], got) {
			t.Fatalf("mid-sweep chain step %d: apply(diff) != target", i)
		}
		if _, err := RestoreSession(g1, g2, got); err != nil {
			t.Fatalf("restore of replayed mid-sweep state: %v", err)
		}
	}
}

// TestDiffNotDiffable pins the fallback contract: states that are not
// related by appends and cache edits return ErrNotDiffable, never a delta
// that would replay wrongly.
func TestDiffNotDiffable(t *testing.T) {
	opts := DefaultOptions()
	opts.Engine = EngineFrontier // the frontier-cache corruptions below need caches present
	_, _, s := deltaInstance(t, 31, 200, opts)
	s.Run(1)
	base := s.ExportState()

	alt := s.ExportState()
	alt.Opts.Threshold++
	if _, err := DiffStates(base, alt); !errors.Is(err, ErrNotDiffable) {
		t.Fatalf("options change: err = %v, want ErrNotDiffable", err)
	}

	alt = s.ExportState()
	alt.N1++
	if _, err := DiffStates(base, alt); !errors.Is(err, ErrNotDiffable) {
		t.Fatalf("shape change: err = %v, want ErrNotDiffable", err)
	}

	alt = s.ExportState()
	if len(alt.Pairs) == 0 {
		t.Fatal("instance produced no pairs")
	}
	alt.Pairs[0].Left++
	if _, err := DiffStates(base, alt); !errors.Is(err, ErrNotDiffable) {
		t.Fatalf("mutated pair: err = %v, want ErrNotDiffable", err)
	}

	alt = s.ExportState()
	alt.Frontier = nil
	if _, err := DiffStates(base, alt); !errors.Is(err, ErrNotDiffable) {
		t.Fatalf("vanished frontier: err = %v, want ErrNotDiffable", err)
	}

	// A target behind the base (replay order reversed) is refused.
	s.Run(1)
	if _, err := DiffStates(s.ExportState(), base); !errors.Is(err, ErrNotDiffable) {
		t.Fatalf("reversed diff: err = %v, want ErrNotDiffable", err)
	}
}

// TestApplyDeltaValidation pins that a delta applied onto the wrong base, or
// with malformed edits, errors instead of producing a wrong state.
func TestApplyDeltaValidation(t *testing.T) {
	opts := DefaultOptions()
	opts.Engine = EngineFrontier // the cache-edit corruptions below need frontier churn
	_, _, s := deltaInstance(t, 37, 200, opts)
	base := s.ExportState()
	s.Run(1)
	cur := s.ExportState()
	d, err := DiffStates(base, cur)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong base: applying the sweep-1 delta onto the sweep-1 state.
	if _, err := ApplyDelta(cur, d); err == nil {
		t.Fatal("delta applied onto the wrong base")
	}

	// Non-ascending edit indices.
	if d.Frontier == nil || len(d.Frontier.Left.Index) < 2 {
		t.Fatal("expected frontier cache churn in the first sweep")
	}
	bad := *d
	badFr := *d.Frontier
	badFr.Left.Index = append([]int(nil), d.Frontier.Left.Index...)
	badFr.Left.Index[1] = badFr.Left.Index[0]
	bad.Frontier = &badFr
	if _, err := ApplyDelta(base, &bad); err == nil {
		t.Fatal("non-ascending edit indices accepted")
	}

	// Out-of-range edit index.
	badFr2 := *d.Frontier
	badFr2.Left.Index = append([]int(nil), d.Frontier.Left.Index...)
	badFr2.Left.Index[len(badFr2.Left.Index)-1] = len(base.Frontier.Left.ProposalNode)
	bad.Frontier = &badFr2
	if _, err := ApplyDelta(base, &bad); err == nil {
		t.Fatal("out-of-range edit index accepted")
	}

	// Mismatched parallel edit slices.
	badFr3 := *d.Frontier
	badFr3.Left.Node = badFr3.Left.Node[:len(badFr3.Left.Node)-1]
	bad.Frontier = &badFr3
	if _, err := ApplyDelta(base, &bad); err == nil {
		t.Fatal("mismatched edit slices accepted")
	}
}
