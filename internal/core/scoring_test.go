package core

import (
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
)

func TestScoringString(t *testing.T) {
	if ScoreWitnessCount.String() != "witness-count" || ScoreAdamicAdar.String() != "adamic-adar" {
		t.Fatal("scoring names wrong")
	}
	if Scoring(9).String() == "" {
		t.Fatal("unknown scoring should still render")
	}
}

func TestScoringValidation(t *testing.T) {
	o := DefaultOptions()
	o.Scoring = Scoring(7)
	if err := o.Validate(); err == nil {
		t.Error("invalid scoring accepted")
	}
	o = DefaultOptions()
	o.MinMargin = -1
	if err := o.Validate(); err == nil {
		t.Error("negative margin accepted")
	}
}

// adamicGraph builds the disambiguation scenario: node 9 ("u") is adjacent
// to two hubs and one low-degree node. Its true copy is adjacent to hub1 and
// the low-degree node; a decoy (node 8) is adjacent to both hubs. Under raw
// counts the true copy and the decoy tie at two witnesses; the Adamic-Adar
// weighting resolves the tie toward the low-degree witness.
func adamicScenario() (g1, g2 *graph.Graph, seeds []graph.Pair) {
	// Nodes: 0 = hub1, 1 = hub2, 2 = low, 3..7 = hub filler, 8 = decoy, 9 = u.
	b1 := graph.NewBuilder(10, 32)
	// Hubs connect to filler to get high degree.
	for _, hub := range []graph.NodeID{0, 1} {
		for f := graph.NodeID(3); f <= 7; f++ {
			b1.AddEdge(hub, f)
		}
	}
	// u's neighborhood in G1: hub1, hub2, low.
	b1.AddEdge(9, 0)
	b1.AddEdge(9, 1)
	b1.AddEdge(9, 2)
	g1 = b1.Build()

	b2 := graph.NewBuilder(10, 32)
	for _, hub := range []graph.NodeID{0, 1} {
		for f := graph.NodeID(3); f <= 7; f++ {
			b2.AddEdge(hub, f)
		}
	}
	// True copy of u (node 9): hub1 + low. Decoy (node 8): hub1 + hub2.
	b2.AddEdge(9, 0)
	b2.AddEdge(9, 2)
	b2.AddEdge(8, 0)
	b2.AddEdge(8, 1)
	// u also keeps hub2 in G2 so counts tie: witnesses for (9,9) are
	// {hub1, low}; for (9,8) they are {hub1, hub2}.
	b2.AddEdge(9, 1)
	g2 = b2.Build()

	seeds = []graph.Pair{
		{Left: 0, Right: 0}, // hub1
		{Left: 1, Right: 1}, // hub2
		{Left: 2, Right: 2}, // low
	}
	return g1, g2, seeds
}

func TestAdamicAdarBreaksHubTies(t *testing.T) {
	g1, g2, seeds := adamicScenario()
	// Sanity: counts tie — (9,9) and (9,8) both have... (9,9) has witnesses
	// hub1, hub2, low = 3; decoy (9,8) has hub1, hub2 = 2. To make a true
	// tie, check with SimilarityWitnesses and assert the intended structure.
	m, err := NewMatching(10, 10, seeds)
	if err != nil {
		t.Fatal(err)
	}
	wTrue := SimilarityWitnesses(g1, g2, m, 9, 9)
	wDecoy := SimilarityWitnesses(g1, g2, m, 9, 8)
	if wTrue != 3 || wDecoy != 2 {
		t.Fatalf("scenario witnesses: true=%d decoy=%d", wTrue, wDecoy)
	}
	// Both scorings must identify node 9 here; the weighted one must also
	// rank (9,9) strictly above (9,8).
	for _, scoring := range []Scoring{ScoreWitnessCount, ScoreAdamicAdar} {
		opts := DefaultOptions()
		opts.Threshold = 2
		opts.MinBucketExp = 0
		opts.Scoring = scoring
		opts.Engine = EngineSequential
		res, err := Reconcile(g1, g2, seeds, opts)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, p := range res.NewPairs {
			if p.Left == 9 {
				if p.Right != 9 {
					t.Fatalf("scoring %v matched 9 to %d", scoring, p.Right)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("scoring %v did not match node 9 (pairs %v)", scoring, res.NewPairs)
		}
	}
}

func TestAdamicAdarQualityOnPA(t *testing.T) {
	g1, g2, seeds := testInstance(21, 2000)
	for _, scoring := range []Scoring{ScoreWitnessCount, ScoreAdamicAdar} {
		opts := DefaultOptions()
		opts.Scoring = scoring
		res, err := Reconcile(g1, g2, seeds, opts)
		if err != nil {
			t.Fatal(err)
		}
		correct, wrong := 0, 0
		for _, p := range res.NewPairs {
			if p.Left == p.Right {
				correct++
			} else {
				wrong++
			}
		}
		if correct < 1000 {
			t.Errorf("scoring %v: only %d correct", scoring, correct)
		}
		if wrong*20 > correct {
			t.Errorf("scoring %v: %d wrong vs %d correct", scoring, wrong, correct)
		}
	}
}

func TestMinMarginRejectsCloseCalls(t *testing.T) {
	// Path-triangle: u (node 3) has witnesses {0,1,2}; a rival (node 4) has
	// witnesses {0,1}. Margin 0 and 1 accept u (3 vs 2); margin 2 rejects.
	b := graph.NewBuilder(5, 16)
	b.AddEdge(3, 0)
	b.AddEdge(3, 1)
	b.AddEdge(3, 2)
	b.AddEdge(4, 0)
	b.AddEdge(4, 1)
	g := b.Build()
	seeds := []graph.Pair{{Left: 0, Right: 0}, {Left: 1, Right: 1}, {Left: 2, Right: 2}}

	run := func(margin int) int {
		opts := DefaultOptions()
		opts.Threshold = 2
		opts.MinBucketExp = 0
		opts.MinMargin = margin
		opts.Engine = EngineSequential
		opts.Iterations = 1
		res, err := Reconcile(g, g, seeds, opts)
		if err != nil {
			t.Fatal(err)
		}
		matched := 0
		for _, p := range res.NewPairs {
			if p.Left == 3 && p.Right == 3 {
				matched++
			}
		}
		return matched
	}
	if run(0) != 1 {
		t.Error("margin 0 should match node 3")
	}
	if run(1) != 1 {
		t.Error("margin 1 should match node 3 (3 vs 2 witnesses)")
	}
	if run(2) != 0 {
		t.Error("margin 2 should reject node 3 (gap is only 1)")
	}
}

func TestMinMarginMonotone(t *testing.T) {
	// Higher margins can only reduce the number of matches.
	g1, g2, seeds := testInstance(23, 800)
	prev := -1
	for _, margin := range []int{0, 1, 2, 4} {
		opts := DefaultOptions()
		opts.MinMargin = margin
		res, err := Reconcile(g1, g2, seeds, opts)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && len(res.Pairs) > prev {
			t.Errorf("margin %d found %d pairs, more than smaller margin's %d", margin, len(res.Pairs), prev)
		}
		prev = len(res.Pairs)
	}
}

func TestWeightedEnginesAgree(t *testing.T) {
	g1, g2, seeds := testInstance(29, 500)
	opts := DefaultOptions()
	opts.Scoring = ScoreAdamicAdar
	opts.Engine = EngineSequential
	seq, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = EngineParallel
	opts.Workers = 5
	par, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Pairs) != len(par.Pairs) {
		t.Fatalf("sequential %d pairs, parallel %d", len(seq.Pairs), len(par.Pairs))
	}
	for i := range seq.Pairs {
		if seq.Pairs[i] != par.Pairs[i] {
			t.Fatalf("pair %d differs between engines", i)
		}
	}
}
