package core

import (
	"testing"
)

// TestHybridMatchesSequential pins the hybrid engine's bit-identity against
// the sequential reference over batch runs on the standard instances.
func TestHybridMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{1, 5, 9} {
		g1, g2, seeds := testInstance(seed, 300)
		opts := DefaultOptions()
		opts.Engine = EngineSequential
		seq, err := Reconcile(g1, g2, seeds, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Engine = EngineHybrid
		hy, err := Reconcile(g1, g2, seeds, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsIdentical(seq, hy) {
			t.Fatalf("seed %d: hybrid %d pairs, sequential %d", seed, len(hy.Pairs), len(seq.Pairs))
		}
	}
}

// TestHybridIncrementalMatchesSequential drives the production workflow —
// run, ingest late seeds, run to convergence — across the switch point and
// requires identical output.
func TestHybridIncrementalMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{3, 9, 27} {
		g1, g2, seeds := testInstance(seed, 400)
		half := len(seeds) / 2
		run := func(engine Engine) *Result {
			o := DefaultOptions()
			o.Engine = engine
			s, err := NewSession(g1, g2, seeds[:half], o)
			if err != nil {
				t.Fatal(err)
			}
			s.Run(1)
			if err := s.AddSeeds(seeds[half:]); err != nil {
				t.Logf("engine %v: AddSeeds: %v", engine, err)
			}
			s.Run(1)
			s.RunUntilStable(4)
			return s.Result()
		}
		seq := run(EngineSequential)
		hy := run(EngineHybrid)
		if !resultsIdentical(seq, hy) {
			t.Fatalf("seed %d: incremental schedule diverged: seq %d pairs, hybrid %d",
				seed, len(seq.Pairs), len(hy.Pairs))
		}
	}
}

// TestHybridAutoSwitch pins the handoff mechanics: the session starts in the
// parallel regime (no frontier caches), the switch decision arrives once the
// per-sweep commit rate decays below the crossover, the frontier state is
// built lazily at the next bucket — and from then on converged sweeps
// re-score nothing, which is the scheduling win the handoff buys.
func TestHybridAutoSwitch(t *testing.T) {
	g1, g2, seeds := testInstance(5, 400)
	o := DefaultOptions()
	o.Engine = EngineHybrid
	s, err := NewSession(g1, g2, seeds, o)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1)
	if s.hybridSwitched {
		t.Fatal("switched during the commit-dense first sweep")
	}
	if s.fr != nil {
		t.Fatal("frontier caches exist before the switch")
	}
	s.RunUntilStable(10)
	if !s.hybridSwitched {
		t.Fatal("no switch by convergence: a stable sweep commits nothing, which is below any crossover")
	}
	// The decision may have landed on the final sweep; one more sweep forces
	// the lazy build.
	s.Run(1)
	if s.fr == nil {
		t.Fatal("frontier state not built after the switch")
	}
	idle := s.fr.rescored
	s.Run(1)
	if s.fr.rescored != idle {
		t.Fatalf("converged hybrid sweep re-scored %d nodes, want 0", s.fr.rescored-idle)
	}
}

// TestHybridRestoreAfterSwitch kills a hybrid run at every bucket boundary
// of a multi-sweep schedule — both sides of the automatic switch — and pins
// that the exported regime flag matches the session, that restore resumes in
// that regime rather than restarting parallel, and that the restored run
// finishes bit-identically.
func TestHybridRestoreAfterSwitch(t *testing.T) {
	g1, g2, seeds := testInstance(11, 350)
	opts := DefaultOptions()
	opts.Engine = EngineHybrid
	// Enough sweeps to converge and switch mid-schedule: this instance's
	// commit decay crosses the rate crossover after sweep 4.
	opts.Iterations = 6

	full, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	totalBuckets := full.Totals.Buckets
	if totalBuckets < 4 {
		t.Fatalf("instance too small to interrupt: %d buckets", totalBuckets)
	}

	sawSwitched := false
	for stop := 1; stop < totalBuckets; stop++ {
		victim := runToBoundary(t, g1, g2, seeds, opts, opts.Iterations, stop)
		st := victim.ExportState()
		if st.HybridFrontier != victim.hybridSwitched {
			t.Fatalf("stop=%d: exported regime flag %v, session %v", stop, st.HybridFrontier, victim.hybridSwitched)
		}
		sawSwitched = sawSwitched || st.HybridFrontier

		restored, err := RestoreSession(g1, g2, st)
		if err != nil {
			t.Fatalf("stop=%d: restore: %v", stop, err)
		}
		if restored.hybridSwitched != st.HybridFrontier {
			t.Fatalf("stop=%d: restored regime %v, snapshot says %v", stop, restored.hybridSwitched, st.HybridFrontier)
		}
		finishSchedule(t, restored, opts.Iterations)
		if got := restored.Result(); !resultsIdentical(full, got) {
			t.Fatalf("stop=%d: restored run diverged: %d pairs, want %d", stop, len(got.Pairs), len(full.Pairs))
		}
	}
	if !sawSwitched {
		t.Fatal("no boundary observed the frontier regime; the schedule never crossed the switch point")
	}
}

// TestInferHybridRegime pins the restore-mask helper: a converged snapshot
// reads as the frontier regime, a commit-dense early one as parallel, and an
// empty history defaults to parallel.
func TestInferHybridRegime(t *testing.T) {
	g1, g2, seeds := testInstance(7, 400)
	o := DefaultOptions()
	o.Engine = EngineSequential
	s, err := NewSession(g1, g2, seeds, o)
	if err != nil {
		t.Fatal(err)
	}
	if s.ExportState().InferHybridRegime() {
		t.Fatal("empty history inferred as frontier regime")
	}
	s.Run(1)
	if s.ExportState().InferHybridRegime() {
		t.Fatal("commit-dense first sweep inferred as frontier regime")
	}
	s.RunUntilStable(10)
	if !s.ExportState().InferHybridRegime() {
		t.Fatal("converged history inferred as parallel regime")
	}
}

// TestPhaseRetention pins the bounded phase log: a long-lived session keeps
// per-bucket entries for the last PhaseRetainSweeps sweeps only, folds the
// evicted prefix into Result.Totals without losing a single count, and
// export/restore at a late boundary reproduces the identical window and
// totals.
func TestPhaseRetention(t *testing.T) {
	g1, g2, seeds := testInstance(7, 200)
	for _, engine := range []Engine{EngineSequential, EngineHybrid} {
		t.Run(engine.String(), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Engine = engine
			s, err := NewSession(g1, g2, seeds, opts)
			if err != nil {
				t.Fatal(err)
			}
			events, matchedSum := 0, 0
			s.SetProgress(func(e PhaseEvent) {
				events++
				matchedSum += e.Matched
			})
			const sweeps = phaseRetainSweeps + 5
			s.Run(sweeps)
			s.SetProgress(nil)

			buckets := len(opts.BucketSchedule(g1, g2))
			res := s.Result()
			if want := phaseRetainSweeps * buckets; len(res.Phases) != want {
				t.Fatalf("window holds %d entries, want %d", len(res.Phases), want)
			}
			if first := res.Phases[0].Iteration; first != sweeps-phaseRetainSweeps+1 {
				t.Fatalf("window starts at sweep %d, want %d", first, sweeps-phaseRetainSweeps+1)
			}
			if res.Totals.Buckets != events {
				t.Fatalf("Totals.Buckets = %d, ran %d bucket passes", res.Totals.Buckets, events)
			}
			if res.Totals.Matched != matchedSum {
				t.Fatalf("Totals.Matched = %d, phases reported %d", res.Totals.Matched, matchedSum)
			}

			st := s.ExportState()
			if st.PhasesDropped != (sweeps-phaseRetainSweeps)*buckets {
				t.Fatalf("exported %d evicted entries, want %d", st.PhasesDropped, (sweeps-phaseRetainSweeps)*buckets)
			}
			restored, err := RestoreSession(g1, g2, st)
			if err != nil {
				t.Fatal(err)
			}
			if got := restored.Result(); !resultsIdentical(res, got) {
				t.Fatal("restore across the evicted prefix changed the result")
			}
		})
	}
}

// TestPhaseRetentionResumeEquivalence extends the crash-injection harness
// past the retention horizon: on a schedule long enough that early sweeps
// are evicted, kill/export/restore/finish at boundaries before, around and
// after eviction starts — the finished run must stay bit-identical to the
// uninterrupted one, including the cumulative totals.
func TestPhaseRetentionResumeEquivalence(t *testing.T) {
	g1, g2, seeds := testInstance(13, 150)
	opts := DefaultOptions()
	opts.Engine = EngineHybrid
	opts.Iterations = phaseRetainSweeps + 4

	full, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	buckets := len(opts.BucketSchedule(g1, g2))
	totalBuckets := full.Totals.Buckets
	if totalBuckets != opts.Iterations*buckets {
		t.Fatalf("ran %d bucket passes, want %d", totalBuckets, opts.Iterations*buckets)
	}

	stops := []int{
		1,                             // before anything is evicted
		phaseRetainSweeps * buckets,   // the last boundary with nothing evicted
		phaseRetainSweeps*buckets + 1, // first boundary after eviction begins
		(phaseRetainSweeps+2)*buckets + buckets/2, // mid-sweep, deep in eviction
		totalBuckets - 1, // the final boundary
	}
	for _, stop := range stops {
		victim := runToBoundary(t, g1, g2, seeds, opts, opts.Iterations, stop)
		st := victim.ExportState()
		restored, err := RestoreSession(g1, g2, st)
		if err != nil {
			t.Fatalf("stop=%d: restore: %v", stop, err)
		}
		finishSchedule(t, restored, opts.Iterations)
		if got := restored.Result(); !resultsIdentical(full, got) {
			t.Fatalf("stop=%d: restored run diverged (totals %+v, want %+v)", stop, got.Totals, full.Totals)
		}
	}
}

// TestPhaseRetentionHistoryIndependent pins that the exported state at a
// schedule position does not depend on how the session got there: reaching
// sweep S in one uninterrupted run and reaching it through an export/restore
// in the middle must produce byte-equal windows and eviction counters.
func TestPhaseRetentionHistoryIndependent(t *testing.T) {
	g1, g2, seeds := testInstance(3, 150)
	opts := DefaultOptions()
	opts.Engine = EngineSequential
	const sweeps = phaseRetainSweeps + 3

	direct, err := NewSession(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct.Run(sweeps)

	hopped, err := NewSession(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	hopped.Run(sweeps / 2)
	mid, err := RestoreSession(g1, g2, hopped.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	mid.Run(sweeps - sweeps/2)

	if !resultsIdentical(direct.Result(), mid.Result()) {
		t.Fatal("export/restore mid-run changed the retained window or totals")
	}
}
