package core

import (
	"context"
	"sync"

	"github.com/sociograph/reconcile/internal/graph"
)

// PhaseStat records one bucket pass of one iteration for observability.
type PhaseStat struct {
	Iteration int // 1-based sweep number
	MinDegree int // the 2^j floor of this bucket
	Matched   int // pairs accepted in this pass
	TotalL    int // |L| after the pass
}

// PhaseTotals aggregates a run's complete phase history, including entries
// evicted from the bounded Phases window of a long-lived session.
type PhaseTotals struct {
	Buckets int // bucket passes ever run
	Matched int // pairs accepted across all passes (seeds excluded)
}

// Result is the output of Reconcile.
type Result struct {
	// Pairs holds every link in L: the seeds first, then discoveries in the
	// order they were made.
	Pairs []graph.Pair
	// NewPairs holds only the discovered links.
	NewPairs []graph.Pair
	// Seeds is the number of seed links the run started from.
	Seeds int
	// Phases records per-bucket progress. Sessions retain a bounded window
	// (the most recent PhaseRetainSweeps sweeps); Totals carries what the
	// window no longer shows.
	Phases []PhaseStat
	// Totals aggregates every bucket pass ever run, evicted ones included.
	Totals PhaseTotals
}

// Reconcile runs User-Matching over the two observed networks and the seed
// links, returning the expanded set of identification links. It never
// modifies its inputs. The matching is injective: no node appears in two
// output pairs. Both engines are deterministic; for fixed inputs and options
// the result is identical regardless of Workers.
func Reconcile(g1, g2 *graph.Graph, seeds []graph.Pair, opts Options) (*Result, error) {
	//lint:allow ctx-propagation pre-context entry point kept for API compatibility and pinned by equivalence tests; cancellable callers use ReconcileContext
	return ReconcileContext(context.Background(), g1, g2, seeds, opts, nil)
}

// ReconcileContext is Reconcile with cancellation and observability: the
// context is checked at every bucket-phase boundary, and the optional
// progress hook receives a PhaseEvent after each pass. When the context ends
// mid-run the partial Result accumulated so far is returned together with
// ctx.Err(); the result is valid (the algorithm is monotone, links are never
// retracted), just incomplete.
func ReconcileContext(ctx context.Context, g1, g2 *graph.Graph, seeds []graph.Pair, opts Options, progress func(PhaseEvent)) (*Result, error) {
	s, err := NewSession(g1, g2, seeds, opts)
	if err != nil {
		return nil, err
	}
	s.progress = progress
	if _, err := s.RunContext(ctx, opts.Iterations); err != nil {
		return s.Result(), err
	}
	return s.Result(), nil
}

// linkedCounts tracks, per node, how many of its neighbors are currently
// linked. A node's similarity score with any partner is bounded by its
// linked-neighbor count, so nodes below the threshold can be skipped without
// scoring — a pure optimization with identical output (the engine
// equivalence and naive-reference tests pin this). It is the difference
// between rescanning every low-degree node in all k·log D bucket passes and
// touching only nodes that could possibly match.
type linkedCounts struct {
	left  []int32
	right []int32
}

func newLinkedCounts(g1, g2 *graph.Graph, m *Matching) *linkedCounts {
	lc := &linkedCounts{
		left:  make([]int32, g1.NumNodes()),
		right: make([]int32, g2.NumNodes()),
	}
	for _, p := range m.pairs {
		lc.addPair(g1, g2, p)
	}
	return lc
}

func (lc *linkedCounts) addPair(g1, g2 *graph.Graph, p graph.Pair) {
	for _, u := range g1.Neighbors(p.Left) {
		lc.left[u]++
	}
	for _, u := range g2.Neighbors(p.Right) {
		lc.right[u]++
	}
}

// runBucket performs one scoring pass at the given degree floor and commits
// every mutual-best pair with score >= T. Returns the number of new links.
func runBucket(g1, g2 *graph.Graph, m *Matching, lc *linkedCounts, minDeg int, opts Options) int {
	n1, n2 := g1.NumNodes(), g2.NumNodes()
	p := opts.passParams(minDeg)
	leftBest := make([]candidate, n1)
	rightBest := make([]candidate, n2)

	if opts.Engine == EngineSequential {
		sc := newScorer(n2, p.weighted)
		scoreRange(fromLeft, g1, g2, m, lc, p, 0, n1, sc, leftBest)
		sc2 := newScorer(n1, p.weighted)
		scoreRange(fromRight, g1, g2, m, lc, p, 0, n2, sc2, rightBest)
	} else {
		parallelPass(fromLeft, g1, g2, m, lc, p, leftBest, opts.workers())
		parallelPass(fromRight, g1, g2, m, lc, p, rightBest, opts.workers())
	}

	// Commit mutual bests. leftBest[v1] proposes v2; accept iff v2 proposes
	// v1 back. Scores agree automatically (witness counts are symmetric),
	// and each node occurs in at most one accepted pair, so the commits
	// cannot conflict.
	matched := 0
	for v1 := 0; v1 < n1; v1++ {
		c := leftBest[v1]
		if c.score == 0 {
			continue
		}
		back := rightBest[c.node]
		if back.score == 0 || back.node != graph.NodeID(v1) {
			continue
		}
		pr := graph.Pair{Left: graph.NodeID(v1), Right: c.node}
		m.add(pr)
		lc.addPair(g1, g2, pr)
		matched++
	}
	return matched
}

// parallelPass is scoreRange sharded over a worker pool. Each worker owns a
// scratch scorer; outputs land in disjoint slices of best, so no
// synchronization beyond the WaitGroup is needed and the result is
// independent of scheduling.
func parallelPass(dir passDirection, g1, g2 *graph.Graph, m *Matching, lc *linkedCounts, p passParams, best []candidate, workers int) {
	n := len(best)
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	nPartners := g1.NumNodes()
	if dir == fromLeft {
		nPartners = g2.NumNodes()
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sc := newScorer(nPartners, p.weighted)
			scoreRange(dir, g1, g2, m, lc, p, lo, hi, sc, best)
		}(lo, hi)
	}
	wg.Wait()
}

// SimilarityWitnesses counts the similarity witnesses between v1 ∈ G1 and
// v2 ∈ G2 under matching m — Definition 1 of the paper. Exposed for tests,
// diagnostics, and the theory-validation experiments.
func SimilarityWitnesses(g1, g2 *graph.Graph, m *Matching, v1, v2 graph.NodeID) int {
	count := 0
	for _, u1 := range g1.Neighbors(v1) {
		u2 := m.LeftMatch(u1)
		if u2 == NoMatch {
			continue
		}
		if g2.HasEdge(u2, v2) {
			count++
		}
	}
	return count
}
