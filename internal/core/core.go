// Package core implements User-Matching, the social-network reconciliation
// algorithm of Korula & Lattanzi (PVLDB 2014) — the paper's primary
// contribution.
//
// Given two partial realizations G1, G2 of an unknown social network and a
// seed set L of trusted cross-network links, the algorithm repeatedly scores
// candidate pairs (v1, v2) by their number of similarity witnesses — pairs
// (u1, u2) already in L with u1 ∈ N1(v1) and u2 ∈ N2(v2) — and links v1 to v2
// when (v1, v2) is the unique highest-scoring pair containing either node and
// the score clears a threshold T. A degree-bucketing schedule (phase j only
// matches nodes of degree ≥ 2^j, j descending from log D) makes the early,
// sparsest-evidence decisions on high-degree nodes, where witness counts
// concentrate; the paper measures that this step alone removes over a third
// of the errors.
//
// The package provides a sequential reference engine, a parallel engine that
// partitions the candidate scan across goroutines, a frontier engine that
// re-scores only nodes whose scoring inputs changed since their last scoring,
// and a hybrid engine (the default) that starts parallel and hands off to the
// frontier engine once the per-sweep commit rate falls below a measured
// crossover; all are deterministic and produce identical matchings. A further
// formulation as explicit MapReduce rounds lives in internal/mapreduce and is
// tested for equivalence against these engines.
package core

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"

	"github.com/sociograph/reconcile/internal/graph"
)

// Engine selects the execution strategy.
type Engine int

const (
	// EngineParallel scans all candidates every pass with a goroutine pool.
	EngineParallel Engine = iota
	// EngineSequential is the single-threaded reference implementation.
	EngineSequential
	// EngineFrontier re-scores only nodes whose scoring inputs changed since
	// their last scoring (the dirty frontier around freshly committed links),
	// caching every node's per-bucket-level proposal across passes. Output is
	// bit-identical to the other engines at a fraction of the scoring work on
	// incremental workloads, and Workers parallelizes its re-scoring batches.
	// On commit-dense cold batches its invalidation churn approaches a full
	// rescan and it runs ~0.6x the parallel engine. See frontierState for the
	// scheduling invariants.
	EngineFrontier
	// EngineHybrid is the default: it starts on the parallel engine and, at
	// the first sweep boundary whose observed commit rate falls below the
	// measured crossover (hybridCrossoverRate), hands the live matching to a
	// freshly built frontier state and continues on the frontier engine —
	// parallel's throughput where commits are dense, frontier's incremental
	// scheduling once they are sparse. The handoff is the same state transfer
	// a cross-engine restore performs, so output stays bit-identical to every
	// fixed engine; the regime choice affects performance only.
	EngineHybrid
)

func (e Engine) String() string {
	switch e {
	case EngineParallel:
		return "parallel"
	case EngineSequential:
		return "sequential"
	case EngineFrontier:
		return "frontier"
	case EngineHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// TieBreak selects how a node with several equally-scored best candidates
// behaves.
type TieBreak int

const (
	// TieReject refuses to propose when the maximum score is not unique —
	// the conservative reading of the paper's rule, maximizing precision.
	// This is the default.
	TieReject TieBreak = iota
	// TieLowestID proposes the tied candidate with the smallest node ID — a
	// deterministic stand-in for the arbitrary tie-breaking a greedy "take
	// the highest-scoring pair" implementation performs. The paper's
	// degree-bucketing ablation (errors +50% without bucketing at T=1) is
	// only reproducible under this policy: at threshold 1 almost every
	// low-degree candidate is tied, so TieReject simply abstains.
	TieLowestID
)

func (t TieBreak) String() string {
	switch t {
	case TieReject:
		return "reject"
	case TieLowestID:
		return "lowest-id"
	default:
		return fmt.Sprintf("TieBreak(%d)", int(t))
	}
}

// Scoring selects the candidate ranking function.
type Scoring int

const (
	// ScoreWitnessCount ranks candidates by the raw number of similarity
	// witnesses — the paper's algorithm. Default.
	ScoreWitnessCount Scoring = iota
	// ScoreAdamicAdar keeps the paper's threshold on the witness count but
	// ranks candidates by an Adamic–Adar style weighted sum: a witness pair
	// (u1, u2) contributes 1/log2(2 + max(deg(u1), deg(u2))). Low-degree
	// witnesses are far more discriminative than celebrity accounts, whose
	// links witness half the network; this is the kind of domain-free
	// refinement the paper's discussion invites ("it may be possible to
	// improve on the performance of our algorithm by adding heuristics").
	ScoreAdamicAdar
)

func (s Scoring) String() string {
	switch s {
	case ScoreWitnessCount:
		return "witness-count"
	case ScoreAdamicAdar:
		return "adamic-adar"
	default:
		return fmt.Sprintf("Scoring(%d)", int(s))
	}
}

// Options configures User-Matching. The zero value is not valid; start from
// DefaultOptions.
type Options struct {
	// Threshold is the minimum matching score T. The paper notes T = 2 or 3
	// already gives very high precision on real networks; its G(n,p) theory
	// uses 3 and the PA theory 9.
	Threshold int

	// Iterations is k, the number of full bucket sweeps. Small constants
	// (1 or 2) suffice in the paper's experiments.
	Iterations int

	// MinBucketExp is the lowest degree exponent j in the sweep; the sweep
	// runs j = ⌊log2 D⌋ … MinBucketExp. The paper's pseudocode stops at
	// j = 1 (degree ≥ 2); set 0 to let degree-1 nodes match in the last
	// bucket.
	MinBucketExp int

	// DisableBucketing collapses the degree schedule into a single
	// unrestricted pass per iteration. Used by the ablation experiment
	// (Section 5, last question): the paper reports ~50% more bad matches
	// without bucketing.
	DisableBucketing bool

	// MaxDegree overrides D, the degree that seeds the bucket schedule.
	// 0 means max(Δ(G1), Δ(G2)).
	MaxDegree int

	// Engine selects the execution strategy: hybrid (default), frontier,
	// parallel, or sequential. All engines produce bit-identical output.
	Engine Engine

	// Workers bounds the goroutines of the parallel engine's candidate scan
	// and of the frontier engine's re-scoring batches; 0 means GOMAXPROCS.
	Workers int

	// Ties selects the tie-breaking policy (default TieReject).
	Ties TieBreak

	// Scoring selects the candidate ranking function (default
	// ScoreWitnessCount). The Threshold always applies to the witness
	// count, whatever the ranking.
	Scoring Scoring

	// MinMargin requires the best candidate's witness count to exceed the
	// second best's by at least this much (0 — the paper's rule — only
	// applies the tie policy). Raising it trades recall for precision,
	// hardening the matcher against near-ambiguous pairs.
	MinMargin int
}

// DefaultOptions returns the configuration used throughout the paper's
// experiments: T = 2, k = 2 sweeps, bucketing down to degree 2, on the
// hybrid engine (identical output to the fixed engines, least work on both
// commit-dense and incremental workloads).
func DefaultOptions() Options {
	return Options{
		Threshold:    2,
		Iterations:   2,
		MinBucketExp: 1,
		Engine:       EngineHybrid,
	}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.Threshold < 1 {
		return errors.New("core: Threshold must be >= 1")
	}
	if o.Iterations < 1 {
		return errors.New("core: Iterations must be >= 1")
	}
	if o.MinBucketExp < 0 {
		return errors.New("core: MinBucketExp must be >= 0")
	}
	if o.MaxDegree < 0 {
		return errors.New("core: MaxDegree must be >= 0")
	}
	if o.Workers < 0 {
		return errors.New("core: Workers must be >= 0")
	}
	switch o.Engine {
	case EngineParallel, EngineSequential, EngineFrontier, EngineHybrid:
	default:
		return fmt.Errorf("core: unknown engine %d", int(o.Engine))
	}
	if o.Ties != TieReject && o.Ties != TieLowestID {
		return fmt.Errorf("core: unknown tie-break policy %d", int(o.Ties))
	}
	if o.Scoring != ScoreWitnessCount && o.Scoring != ScoreAdamicAdar {
		return fmt.Errorf("core: unknown scoring %d", int(o.Scoring))
	}
	if o.MinMargin < 0 {
		return fmt.Errorf("core: MinMargin must be >= 0")
	}
	return nil
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// BucketSchedule returns the descending list of minimum degrees (2^j) for
// one sweep of the algorithm. Exported for alternative engines (the
// MapReduce formulation) that must follow the same schedule.
func (o Options) BucketSchedule(g1, g2 *graph.Graph) []int { return o.buckets(g1, g2) }

// buckets returns the descending list of minimum degrees (2^j) for one sweep.
func (o Options) buckets(g1, g2 *graph.Graph) []int {
	if o.DisableBucketing {
		return []int{1}
	}
	d := o.MaxDegree
	if d == 0 {
		d = g1.MaxDegree()
		if g2.MaxDegree() > d {
			d = g2.MaxDegree()
		}
	}
	if d < 1 {
		d = 1
	}
	top := bits.Len(uint(d)) - 1 // ⌊log2 d⌋
	if top < o.MinBucketExp {
		top = o.MinBucketExp
	}
	out := make([]int, 0, top-o.MinBucketExp+1)
	for j := top; j >= o.MinBucketExp; j-- {
		out = append(out, 1<<uint(j))
	}
	return out
}
