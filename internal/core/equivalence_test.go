package core

import (
	"testing"
	"testing/quick"

	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
	"github.com/sociograph/reconcile/internal/xrand"
)

// naiveReconcile is an O(n1·n2) reference implementation of User-Matching
// semantics, computing the full score matrix per bucket via the
// SimilarityWitnesses definition and committing mutual unique bests. The
// optimized engines must agree with it exactly.
func naiveReconcile(t *testing.T, g1, g2 *graph.Graph, seeds []graph.Pair, opts Options) []graph.Pair {
	t.Helper()
	m, err := NewMatching(g1.NumNodes(), g2.NumNodes(), seeds)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < opts.Iterations; iter++ {
		for _, minDeg := range opts.buckets(g1, g2) {
			type prop struct {
				node  graph.NodeID
				score int
				tie   bool
			}
			bestL := make([]prop, g1.NumNodes())
			bestR := make([]prop, g2.NumNodes())
			for v1 := 0; v1 < g1.NumNodes(); v1++ {
				if m.LeftMatch(graph.NodeID(v1)) != NoMatch || g1.Degree(graph.NodeID(v1)) < minDeg {
					continue
				}
				for v2 := 0; v2 < g2.NumNodes(); v2++ {
					if m.RightMatch(graph.NodeID(v2)) != NoMatch || g2.Degree(graph.NodeID(v2)) < minDeg {
						continue
					}
					s := SimilarityWitnesses(g1, g2, m, graph.NodeID(v1), graph.NodeID(v2))
					if s == 0 {
						continue
					}
					if s > bestL[v1].score {
						bestL[v1] = prop{graph.NodeID(v2), s, false}
					} else if s == bestL[v1].score {
						bestL[v1].tie = true
					}
					if s > bestR[v2].score {
						bestR[v2] = prop{graph.NodeID(v1), s, false}
					} else if s == bestR[v2].score {
						bestR[v2].tie = true
					}
				}
			}
			for v1 := range bestL {
				p := bestL[v1]
				if p.score < opts.Threshold || p.tie {
					continue
				}
				q := bestR[p.node]
				if q.score < opts.Threshold || q.tie || q.node != graph.NodeID(v1) {
					continue
				}
				m.add(graph.Pair{Left: graph.NodeID(v1), Right: p.node})
			}
		}
	}
	return m.Pairs()
}

func pairsEqual(a, b []graph.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[graph.Pair]bool, len(a))
	for _, p := range a {
		set[p] = true
	}
	for _, p := range b {
		if !set[p] {
			return false
		}
	}
	return true
}

// testInstance builds a random reconciliation instance.
func testInstance(seed uint64, n int) (*graph.Graph, *graph.Graph, []graph.Pair) {
	r := xrand.New(seed)
	g := gen.PreferentialAttachment(r, n, 4)
	g1, g2 := sampling.IndependentCopies(r, g, 0.7, 0.7)
	seeds := sampling.Seeds(r, graph.IdentityPairs(n), 0.15)
	return g1, g2, seeds
}

func TestSequentialMatchesNaive(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g1, g2, seeds := testInstance(seed, 120)
		opts := DefaultOptions()
		opts.Engine = EngineSequential
		opts.Threshold = 2
		res, err := Reconcile(g1, g2, seeds, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveReconcile(t, g1, g2, seeds, opts)
		if !pairsEqual(res.Pairs, want) {
			t.Fatalf("seed %d: engine %d pairs, naive %d pairs", seed, len(res.Pairs), len(want))
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g1, g2, seeds := testInstance(seed, 300)
		seqOpts := DefaultOptions()
		seqOpts.Engine = EngineSequential
		seq, err := Reconcile(g1, g2, seeds, seqOpts)
		if err != nil {
			return false
		}
		for _, workers := range []int{1, 2, 3, 7} {
			parOpts := DefaultOptions()
			parOpts.Engine = EngineParallel
			parOpts.Workers = workers
			par, err := Reconcile(g1, g2, seeds, parOpts)
			if err != nil {
				return false
			}
			if !pairsEqual(seq.Pairs, par.Pairs) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 8})
	if err != nil {
		t.Error(err)
	}
}

func TestReconcileDeterministic(t *testing.T) {
	g1, g2, seeds := testInstance(42, 500)
	opts := DefaultOptions()
	a, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("runs differ: %d vs %d pairs", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, a.Pairs[i], b.Pairs[i])
		}
	}
}

func TestReconcileInjective(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g1, g2, seeds := testInstance(seed, 250)
		res, err := Reconcile(g1, g2, seeds, DefaultOptions())
		if err != nil {
			return false
		}
		seenL := map[graph.NodeID]bool{}
		seenR := map[graph.NodeID]bool{}
		for _, p := range res.Pairs {
			if seenL[p.Left] || seenR[p.Right] {
				return false
			}
			seenL[p.Left] = true
			seenR[p.Right] = true
		}
		return true
	}, &quick.Config{MaxCount: 10})
	if err != nil {
		t.Error(err)
	}
}

func TestSeedsPreserved(t *testing.T) {
	g1, g2, seeds := testInstance(7, 200)
	res, err := Reconcile(g1, g2, seeds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds != len(seeds) {
		t.Fatalf("Seeds = %d, want %d", res.Seeds, len(seeds))
	}
	for i, s := range seeds {
		if res.Pairs[i] != s {
			t.Fatalf("seed %d not preserved at position %d", i, i)
		}
	}
}

func TestMoreIterationsNeverShrink(t *testing.T) {
	g1, g2, seeds := testInstance(11, 400)
	opts := DefaultOptions()
	opts.Iterations = 1
	one, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Iterations = 3
	three, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(three.Pairs) < len(one.Pairs) {
		t.Fatalf("3 iterations found %d pairs, 1 iteration %d", len(three.Pairs), len(one.Pairs))
	}
}
