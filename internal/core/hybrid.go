package core

import "github.com/sociograph/reconcile/internal/trace"

// EngineHybrid regime control. The hybrid engine is a scheduling policy, not
// a new algorithm: before the switch the session runs the parallel engine's
// full scans, after it the frontier engine's incremental re-scoring. Both
// produce bit-identical matchings (the engine-equivalence suites pin this),
// so the switch decision influences performance only — a wrong regime is
// slow, never wrong.
//
// The decision signal is the per-sweep commit rate, which the session already
// tracks for the phase log: commits are what the frontier engine pays for
// (every committed link invalidates its neighborhood on both sides), while
// the parallel engine pays for graph size regardless. When the sweep commit
// rate is high, frontier invalidation churn approaches a full rescan and the
// cache maintenance makes it ~0.6x parallel; when it is low, frontier skips
// almost all scoring work and wins by an order of magnitude.

// hybridCrossoverRate is the per-sweep commit rate — pairs committed during
// the sweep divided by the total node count n1+n2 — below which EngineHybrid
// hands off to the frontier engine at the sweep boundary. The handoff is
// one-way: commit rates decay as the matching converges (the algorithm is
// monotone), and the frontier engine handles later seed bursts through its
// own invalidation.
//
// Measured with BenchmarkHybridCrossover (internal/core/bench_test.go) on
// the recording machine of BENCH_engines.json (linux/amd64, GOMAXPROCS=1,
// go1.24, 2026-08-08). On the 2x20k-node preferential-attachment calibration
// instance, per-sweep cost (parallel vs frontier, ns):
//
//	rate 0.241  35.4M vs 66.6M  (parallel 1.9x)
//	rate 0.062  10.4M vs 12.2M  (parallel 1.2x)
//	rate 0.012   6.1M vs  5.0M  (frontier 1.2x)
//	rate 0.0023  5.2M vs  2.7M  (frontier 1.9x)
//	rate 0.0006  5.0M vs  1.6M  (frontier 3.1x)
//
// The regimes trade places between observed rates 0.062 and 0.012. 0.02
// makes the switch fire at the first sweep whose rate lands in frontier-won
// territory (0.012 here) while staying 3x below the last parallel-won rate,
// so commit-dense sweeps never trigger it: cold-batch sweeps on the recorded
// workloads run at rates 0.05-0.3 until convergence, incremental AddSeeds
// sweeps at <0.001. Firing a sweep earlier (crossover above 0.062) would pay
// the all-dirty handoff rebuild while commits are still active; a sweep later
// (below 0.012) forgoes a ~2x frontier win on the following sweep.
const hybridCrossoverRate = 0.02

// phaseRetainSweeps bounds the session's phase log: at every completed sweep
// boundary, entries older than the most recent phaseRetainSweeps sweeps are
// folded into the session's cumulative PhaseTotals and dropped. Eviction is
// whole-sweep and purely position-driven, so an exported state at a given
// schedule position holds the same window regardless of how many runs,
// restores, or checkpoints led there — the resume-equivalence suites depend
// on that. 16 sweeps is an order of magnitude more than the paper's k=2
// schedule and comfortably covers every consumer (serve's live phase feed,
// the hybrid regime decision, delta diffing between per-sweep checkpoints)
// while keeping long-lived incremental sessions' checkpoints O(window), not
// O(lifetime).
const phaseRetainSweeps = 16

// PhaseRetainSweeps is the phase-log retention window, exported for callers
// that mirror the session's bounded log (cmd/serve's wire-phase feed).
const PhaseRetainSweeps = phaseRetainSweeps

// FrontierActive reports whether a hybrid session has handed off to the
// frontier regime. Always false for fixed-engine sessions (they have no
// regime to switch), always true once a hybrid session crosses over (the
// handoff is one-way). Safe wherever session state is readable — the run
// goroutine between buckets, or any goroutine while no run is in flight —
// which is exactly where the serve layer's progress hook samples it for
// the regime-switch counter.
func (s *Session) FrontierActive() bool {
	return s.opts.Engine == EngineHybrid && s.hybridSwitched
}

// endSweep performs the bookkeeping owed at every completed sweep boundary:
// the hybrid engine's regime decision and phase-log eviction. It must run at
// sweep completions and nowhere else — both effects are position-driven and
// exported state must not depend on run history.
func (s *Session) endSweep() {
	if s.opts.Engine == EngineHybrid && !s.hybridSwitched &&
		float64(s.sweepMatched) < hybridCrossoverRate*float64(s.g1.NumNodes()+s.g2.NumNodes()) {
		// Record the decision only; the frontier state is built lazily when
		// the next bucket actually runs, so a run that ends here pays
		// nothing, and a kill/restore at this exact boundary rebuilds the
		// identical state from the matching (the cross-engine restore path).
		s.hybridSwitched = true
	}
	s.evictPhases()
}

// ensureHybridFrontier builds the frontier state for a hybrid session that
// has decided to switch but not yet run a bucket in the new regime. Building
// from the live matching queues every node once, exactly like a cross-engine
// restore, so the first frontier sweep re-scores each node once and the
// output is bit-identical to having run any fixed engine throughout.
func (s *Session) ensureHybridFrontier() {
	if s.hybridSwitched && s.fr == nil {
		sp := s.tracer.Begin(trace.KindHandoff, "parallel->frontier state build")
		s.fr = newFrontierState(s.g1, s.g2, s.m, s.lc, s.opts)
		sp.End()
	}
}

// evictPhases drops phase-log entries older than the retention window,
// folding them into the cumulative totals. Called at completed sweep
// boundaries only, so the log always starts at a sweep boundary and the
// evicted prefix is a whole number of sweeps.
func (s *Session) evictPhases() {
	minIter := s.sweeps - phaseRetainSweeps + 1
	if minIter <= 1 {
		return
	}
	cut := 0
	for cut < len(s.phases) && s.phases[cut].Iteration < minIter {
		s.dropped.Buckets++
		s.dropped.Matched += s.phases[cut].Matched
		cut++
	}
	if cut == 0 {
		return
	}
	s.phases = append(s.phases[:0], s.phases[cut:]...)
}

// InferHybridRegime returns the regime EngineHybrid would run at the state's
// schedule position, judged from the recorded commit history: true (frontier)
// when the last completed sweep's commit rate is below the crossover, false
// (parallel) when it is above or when no completed sweep is in the log. It
// exists for restores that switch a fixed-engine state onto the hybrid
// engine, where no regime was recorded — resuming a converged run in the
// parallel regime would be correct but slow, so the restore path derives the
// regime from the history instead of always starting parallel.
func (st *SessionState) InferHybridRegime() bool {
	last := st.Sweeps
	if st.NextBucket > 0 {
		last--
	}
	if last < 1 {
		return false
	}
	matched, seen := 0, false
	for _, ph := range st.Phases {
		if ph.Iteration == last {
			matched += ph.Matched
			seen = true
		}
	}
	if !seen {
		return false
	}
	return float64(matched) < hybridCrossoverRate*float64(st.N1+st.N2)
}
