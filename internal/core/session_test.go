package core

import (
	"context"
	"errors"
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
	"github.com/sociograph/reconcile/internal/xrand"
)

func TestSessionMatchesBatchReconcile(t *testing.T) {
	g1, g2, seeds := testInstance(51, 400)
	opts := DefaultOptions()

	batch, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	sess.Run(opts.Iterations)
	got := sess.Result()
	if len(got.Pairs) != len(batch.Pairs) {
		t.Fatalf("session %d pairs, batch %d", len(got.Pairs), len(batch.Pairs))
	}
	for i := range batch.Pairs {
		if got.Pairs[i] != batch.Pairs[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
	if got.Seeds != batch.Seeds || len(got.Phases) != len(batch.Phases) {
		t.Fatalf("metadata differs: seeds %d/%d phases %d/%d",
			got.Seeds, batch.Seeds, len(got.Phases), len(batch.Phases))
	}
}

func TestSessionIncrementalSeedsCatchUp(t *testing.T) {
	// Splitting the seed set into two installments and running between them
	// must reach at least as many links as the one-shot run with all seeds
	// (monotonicity: earlier sweeps only add links, which only add
	// witnesses).
	r := xrand.New(53)
	g1, g2, _ := testInstance(53, 600)
	all := sampling.Seeds(r, graph.IdentityPairs(600), 0.2)
	half := len(all) / 2

	opts := DefaultOptions()
	batch, err := Reconcile(g1, g2, all, opts)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := NewSession(g1, g2, all[:half], opts)
	if err != nil {
		t.Fatal(err)
	}
	sess.RunUntilStable(10)
	before := sess.Len()
	// Later seeds may conflict with links the first phase already made (a
	// seed exposes an earlier wrong or alternative match). Production
	// callers decide the policy; here we skip conflicts.
	conflicts := 0
	for _, s := range all[half:] {
		if err := sess.AddSeeds([]graph.Pair{s}); err != nil {
			conflicts++
		}
	}
	t.Logf("%d/%d late seeds conflicted with phase-1 links", conflicts, len(all)-half)
	sess.RunUntilStable(10)
	if sess.Len() < before {
		t.Fatal("session lost links")
	}
	if sess.Len() < len(batch.Pairs)*90/100 {
		t.Errorf("incremental session found %d links, batch %d", sess.Len(), len(batch.Pairs))
	}
}

func TestSessionAddSeedsDuplicate(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	sess, err := NewSession(g, g, []graph.Pair{{Left: 0, Right: 0}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Exact duplicate is a no-op.
	if err := sess.AddSeeds([]graph.Pair{{Left: 0, Right: 0}}); err != nil {
		t.Fatalf("duplicate seed rejected: %v", err)
	}
	if sess.Len() != 1 {
		t.Fatalf("len = %d", sess.Len())
	}
	// Conflicting seed is an error.
	if err := sess.AddSeeds([]graph.Pair{{Left: 0, Right: 1}}); err == nil {
		t.Fatal("conflicting seed accepted")
	}
}

func TestSessionValidation(t *testing.T) {
	g := graph.FromEdges(2, nil)
	if _, err := NewSession(nil, g, nil, DefaultOptions()); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewSession(g, g, nil, Options{}); err == nil {
		t.Error("zero options accepted")
	}
	if _, err := NewSession(g, g, []graph.Pair{{Left: 5, Right: 0}}, DefaultOptions()); err == nil {
		t.Error("bad seed accepted")
	}
}

// Cancelling mid-run stops at the next bucket boundary; the session keeps
// its partial progress and remains resumable.
func TestSessionRunContextCancellation(t *testing.T) {
	g1, g2, seeds := testInstance(61, 500)
	sess, err := NewSession(g1, g2, seeds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	sess.SetProgress(func(e PhaseEvent) {
		calls++
		if calls == 2 {
			cancel()
		}
	})
	_, err = sess.RunContext(ctx, 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 2 || len(sess.Result().Phases) != 2 {
		t.Fatalf("run continued past the boundary: %d hook calls, %d phases", calls, len(sess.Result().Phases))
	}

	sess.SetProgress(nil)
	before := sess.Len()
	if _, err := sess.RunUntilStableContext(context.Background(), 20); err != nil {
		t.Fatal(err)
	}
	if sess.Len() < before {
		t.Fatal("session lost links across cancellation")
	}
}

// ReconcileContext returns the partial Result together with the context
// error when cancelled before any bucket runs.
func TestReconcileContextPreCancelled(t *testing.T) {
	g1, g2, seeds := testInstance(63, 300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ReconcileContext(ctx, g1, g2, seeds, DefaultOptions(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Pairs) != res.Seeds || len(res.Phases) != 0 {
		t.Fatalf("partial result: %d pairs, %d seeds, %d phases", len(res.Pairs), res.Seeds, len(res.Phases))
	}
}

func TestSessionRunUntilStableStops(t *testing.T) {
	g1, g2, seeds := testInstance(57, 300)
	sess, err := NewSession(g1, g2, seeds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sess.RunUntilStable(50)
	n := sess.Len()
	// Once stable, further sweeps find nothing.
	if extra := sess.Run(2); extra != 0 {
		t.Fatalf("stable session found %d more links", extra)
	}
	if sess.Len() != n {
		t.Fatal("length changed after stability")
	}
}
