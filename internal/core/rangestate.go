package core

import (
	"errors"
	"fmt"

	"github.com/sociograph/reconcile/internal/graph"
)

// Per-node-range state sharding: a SessionState splits into R shard states
// plus one manifest, each shard holding a contiguous slice of both node
// spaces (frontier cache rows) and a contiguous chunk of the pair log, so a
// huge job's checkpoint encode and recovery decode parallelize across
// shards the way a fleet parallelizes across jobs. Each shard is itself a
// well-formed SessionState, so the existing full/delta codec applies per
// shard unchanged; the manifest carries everything global — the schedule
// position, the bounded phase log, the frontier worklists (whose queue
// order a per-node split would destroy) — plus the fingerprint fields the
// shards repeat, so a merge can prove the shards belong to the same
// checkpoint before concatenating them.
//
// The split is purely structural: MergeStateRanges(SplitStateRanges(st))
// reproduces st exactly, and the restore guarantee (resume bit-identically)
// is inherited from RestoreSession on the merged state.

// MaxStateRanges caps the shard count however large the graphs get: past
// ~64-way parallel encode the fsync path is the bottleneck, and the cap
// bounds what a corrupt manifest can demand.
const MaxStateRanges = 64

// RangeCount returns the number of state shards for a graph pair:
// ceil((n1+n2)/targetNodes), clamped to [1, MaxStateRanges]. A
// non-positive targetNodes disables sharding (returns 1).
func RangeCount(n1, n2, targetNodes int) int {
	if targetNodes <= 0 || n1 < 0 || n2 < 0 {
		return 1
	}
	total := int64(n1) + int64(n2)
	r := (total + int64(targetNodes) - 1) / int64(targetNodes)
	if r < 1 {
		return 1
	}
	if r > MaxStateRanges {
		return MaxStateRanges
	}
	return int(r)
}

// rangeSpan is a half-open node interval [start, end).
type rangeSpan struct {
	start, end int
}

func (s rangeSpan) len() int { return s.end - s.start }

// rangeSpans cuts 0..n into ranges balanced contiguous spans (sizes differ
// by at most one, larger spans first). The deterministic cut is part of the
// on-disk contract: ranged checkpoints written with one span layout must
// merge under the same layout on recovery.
func rangeSpans(n, ranges int) []rangeSpan {
	spans := make([]rangeSpan, ranges)
	base, rem := n/ranges, n%ranges
	at := 0
	for r := range spans {
		w := base
		if r < rem {
			w++
		}
		spans[r] = rangeSpan{at, at + w}
		at += w
	}
	return spans
}

// clampSeeds is a shard's seed count: the part of the global seed prefix
// that falls inside its pair chunk.
func clampSeeds(globalSeeds, chunkStart, chunkLen int) int {
	s := globalSeeds - chunkStart
	if s < 0 {
		return 0
	}
	if s > chunkLen {
		return chunkLen
	}
	return s
}

// RangeManifest is the global record accompanying a set of state shards:
// the shard geometry, every whole-checkpoint scalar, and the state that
// must not be split (phase log, frontier worklists in queue order).
type RangeManifest struct {
	Ranges  int
	NLevels int // frontier cache rows per node; 0 when no frontier state
	N1, N2  int

	TotalPairs int
	Seeds      int

	Sweeps         int
	NextBucket     int
	PhasesDropped  int
	DroppedMatched int
	HybridFrontier bool

	Phases []PhaseStat

	// Frontier is non-nil exactly when the checkpoint carries frontier
	// state; the per-node cache rows live in the shards, the queue-ordered
	// worklists and the lifetime counter live here.
	Frontier *ManifestFrontier
}

// ManifestFrontier is the unsplittable part of a frontier snapshot.
type ManifestFrontier struct {
	Rescored   int64
	DirtyLeft  []graph.NodeID
	DirtyRight []graph.NodeID
}

// frontierLevels derives the cache-rows-per-node count from a snapshot's
// side lengths, verifying the two sides agree.
func frontierLevels(st *SessionState) (int, error) {
	fr := st.Frontier
	if len(fr.Left.ProposalNode) != len(fr.Left.ProposalScore) ||
		len(fr.Right.ProposalNode) != len(fr.Right.ProposalScore) {
		return 0, errors.New("core: range split: frontier node/score lengths disagree")
	}
	nl := -1
	if st.N1 > 0 {
		if len(fr.Left.ProposalNode)%st.N1 != 0 {
			return 0, fmt.Errorf("core: range split: left cache length %d not a multiple of n1=%d", len(fr.Left.ProposalNode), st.N1)
		}
		nl = len(fr.Left.ProposalNode) / st.N1
	} else if len(fr.Left.ProposalNode) != 0 {
		return 0, errors.New("core: range split: left cache nonempty with n1=0")
	}
	if st.N2 > 0 {
		nr := len(fr.Right.ProposalNode) / st.N2
		if len(fr.Right.ProposalNode)%st.N2 != 0 {
			return 0, fmt.Errorf("core: range split: right cache length %d not a multiple of n2=%d", len(fr.Right.ProposalNode), st.N2)
		}
		if nl >= 0 && nr != nl {
			return 0, fmt.Errorf("core: range split: cache levels disagree: left %d, right %d", nl, nr)
		}
		nl = nr
	} else if len(fr.Right.ProposalNode) != 0 {
		return 0, errors.New("core: range split: right cache nonempty with n2=0")
	}
	if nl < 0 {
		nl = 0
	}
	return nl, nil
}

// SplitStateRanges splits st into ranges shard states plus a manifest.
//
// chunkStarts optionally pins where the pair log is cut: chunkStarts[r] is
// the global index where shard r's chunk begins (chunkStarts[0] = 0,
// non-decreasing, all ≤ len(st.Pairs); shard r owns [chunkStarts[r],
// chunkStarts[r+1]) and the last shard runs to the end). A delta chain
// freezes the cut at the base checkpoint's chunk lengths so appended pairs
// land in the last shard and every earlier shard diffs as a pure prefix;
// nil cuts the log evenly. The returned shards and manifest alias st's
// slices — encode or copy them before st changes.
func SplitStateRanges(st *SessionState, ranges int, chunkStarts []int) (*RangeManifest, []*SessionState, error) {
	if st == nil {
		return nil, nil, errors.New("core: range split: nil state")
	}
	if ranges < 1 || ranges > MaxStateRanges {
		return nil, nil, fmt.Errorf("core: range split: range count %d outside [1, %d]", ranges, MaxStateRanges)
	}
	if st.N1 < 0 || st.N2 < 0 {
		return nil, nil, fmt.Errorf("core: range split: negative node count (%d, %d)", st.N1, st.N2)
	}
	total := len(st.Pairs)
	starts := chunkStarts
	if starts == nil {
		starts = make([]int, ranges)
		base, rem := total/ranges, total%ranges
		at := 0
		for r := range starts {
			starts[r] = at
			at += base
			if r < rem {
				at++
			}
		}
	}
	if len(starts) != ranges {
		return nil, nil, fmt.Errorf("core: range split: %d chunk starts for %d ranges", len(starts), ranges)
	}
	for r, s := range starts {
		if s < 0 || s > total || (r > 0 && s < starts[r-1]) || (r == 0 && s != 0) {
			return nil, nil, fmt.Errorf("core: range split: bad chunk start %d at range %d", s, r)
		}
	}

	nLevels := 0
	if st.Frontier != nil {
		nl, err := frontierLevels(st)
		if err != nil {
			return nil, nil, err
		}
		nLevels = nl
	}

	man := &RangeManifest{
		Ranges:         ranges,
		NLevels:        nLevels,
		N1:             st.N1,
		N2:             st.N2,
		TotalPairs:     total,
		Seeds:          st.Seeds,
		Sweeps:         st.Sweeps,
		NextBucket:     st.NextBucket,
		PhasesDropped:  st.PhasesDropped,
		DroppedMatched: st.DroppedMatched,
		HybridFrontier: st.HybridFrontier,
		Phases:         st.Phases,
	}
	if st.Frontier != nil {
		man.Frontier = &ManifestFrontier{
			Rescored:   st.Frontier.Rescored,
			DirtyLeft:  st.Frontier.Left.Dirty,
			DirtyRight: st.Frontier.Right.Dirty,
		}
	}

	spans1 := rangeSpans(st.N1, ranges)
	spans2 := rangeSpans(st.N2, ranges)
	parts := make([]*SessionState, ranges)
	for r := 0; r < ranges; r++ {
		end := total
		if r+1 < ranges {
			end = starts[r+1]
		}
		p := &SessionState{
			Opts:           st.Opts,
			N1:             spans1[r].len(),
			N2:             spans2[r].len(),
			Pairs:          st.Pairs[starts[r]:end],
			Seeds:          clampSeeds(st.Seeds, starts[r], end-starts[r]),
			Sweeps:         st.Sweeps,
			NextBucket:     st.NextBucket,
			PhasesDropped:  st.PhasesDropped,
			DroppedMatched: st.DroppedMatched,
			HybridFrontier: st.HybridFrontier,
		}
		if st.Frontier != nil {
			p.Frontier = &FrontierSnapshot{
				Left: FrontierSideSnapshot{
					ProposalNode:  st.Frontier.Left.ProposalNode[spans1[r].start*nLevels : spans1[r].end*nLevels],
					ProposalScore: st.Frontier.Left.ProposalScore[spans1[r].start*nLevels : spans1[r].end*nLevels],
				},
				Right: FrontierSideSnapshot{
					ProposalNode:  st.Frontier.Right.ProposalNode[spans2[r].start*nLevels : spans2[r].end*nLevels],
					ProposalScore: st.Frontier.Right.ProposalScore[spans2[r].start*nLevels : spans2[r].end*nLevels],
				},
				Rescored: st.Frontier.Rescored,
			}
		}
		parts[r] = p
	}
	return man, parts, nil
}

// PairChunkStarts returns the chunk cut implied by a set of shard states:
// where each shard's pair chunk begins in the global log. Feeding it back
// into SplitStateRanges freezes the cut for a delta chain.
func PairChunkStarts(parts []*SessionState) []int {
	starts := make([]int, len(parts))
	at := 0
	for r, p := range parts {
		starts[r] = at
		at += len(p.Pairs)
	}
	return starts
}

// MergeStateRanges reassembles a SessionState from a manifest and its
// shards. It proves the shards belong together — span geometry, repeated
// fingerprint scalars, cache row counts, pair totals — before
// concatenating; mismatches mean a torn or mixed checkpoint and fail
// cleanly. Semantic validation of the merged state (pair injectivity,
// schedule position, frontier contents) stays where it always was:
// RestoreSession.
func MergeStateRanges(man *RangeManifest, parts []*SessionState) (*SessionState, error) {
	if man == nil {
		return nil, errors.New("core: range merge: nil manifest")
	}
	if man.Ranges < 1 || man.Ranges > MaxStateRanges {
		return nil, fmt.Errorf("core: range merge: range count %d outside [1, %d]", man.Ranges, MaxStateRanges)
	}
	if len(parts) != man.Ranges {
		return nil, fmt.Errorf("core: range merge: %d shards for %d ranges", len(parts), man.Ranges)
	}
	if man.N1 < 0 || man.N2 < 0 || man.NLevels < 0 || man.TotalPairs < 0 {
		return nil, errors.New("core: range merge: negative manifest geometry")
	}
	if man.Seeds < 0 || man.Seeds > man.TotalPairs {
		return nil, fmt.Errorf("core: range merge: seed count %d outside pair log of %d", man.Seeds, man.TotalPairs)
	}
	spans1 := rangeSpans(man.N1, man.Ranges)
	spans2 := rangeSpans(man.N2, man.Ranges)

	totalPairs := 0
	at := 0
	for r, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("core: range merge: nil shard %d", r)
		}
		if p.Opts != parts[0].Opts {
			return nil, fmt.Errorf("core: range merge: shard %d options diverge", r)
		}
		if p.N1 != spans1[r].len() || p.N2 != spans2[r].len() {
			return nil, fmt.Errorf("core: range merge: shard %d spans (%d, %d), manifest wants (%d, %d)",
				r, p.N1, p.N2, spans1[r].len(), spans2[r].len())
		}
		if p.Sweeps != man.Sweeps || p.NextBucket != man.NextBucket ||
			p.PhasesDropped != man.PhasesDropped || p.DroppedMatched != man.DroppedMatched ||
			p.HybridFrontier != man.HybridFrontier {
			return nil, fmt.Errorf("core: range merge: shard %d fingerprint diverges from manifest", r)
		}
		if len(p.Phases) != 0 {
			return nil, fmt.Errorf("core: range merge: shard %d carries %d phase entries; phases live in the manifest", r, len(p.Phases))
		}
		if p.Seeds != clampSeeds(man.Seeds, at, len(p.Pairs)) {
			return nil, fmt.Errorf("core: range merge: shard %d seed count %d inconsistent with manifest", r, p.Seeds)
		}
		if (p.Frontier != nil) != (man.Frontier != nil) {
			return nil, fmt.Errorf("core: range merge: shard %d frontier presence diverges from manifest", r)
		}
		if p.Frontier != nil {
			if len(p.Frontier.Left.ProposalNode) != p.N1*man.NLevels ||
				len(p.Frontier.Left.ProposalScore) != p.N1*man.NLevels ||
				len(p.Frontier.Right.ProposalNode) != p.N2*man.NLevels ||
				len(p.Frontier.Right.ProposalScore) != p.N2*man.NLevels {
				return nil, fmt.Errorf("core: range merge: shard %d cache rows disagree with %d levels", r, man.NLevels)
			}
			if len(p.Frontier.Left.Dirty) != 0 || len(p.Frontier.Right.Dirty) != 0 {
				return nil, fmt.Errorf("core: range merge: shard %d carries dirty worklists; worklists live in the manifest", r)
			}
			if p.Frontier.Rescored != man.Frontier.Rescored {
				return nil, fmt.Errorf("core: range merge: shard %d rescored counter diverges from manifest", r)
			}
		}
		totalPairs += len(p.Pairs)
		at += len(p.Pairs)
	}
	if totalPairs != man.TotalPairs {
		return nil, fmt.Errorf("core: range merge: shards hold %d pairs, manifest wants %d", totalPairs, man.TotalPairs)
	}

	out := &SessionState{
		Opts:           parts[0].Opts,
		N1:             man.N1,
		N2:             man.N2,
		Pairs:          make([]graph.Pair, 0, totalPairs),
		Seeds:          man.Seeds,
		Sweeps:         man.Sweeps,
		NextBucket:     man.NextBucket,
		Phases:         append([]PhaseStat(nil), man.Phases...),
		PhasesDropped:  man.PhasesDropped,
		DroppedMatched: man.DroppedMatched,
		HybridFrontier: man.HybridFrontier,
	}
	for _, p := range parts {
		out.Pairs = append(out.Pairs, p.Pairs...)
	}
	if man.Frontier != nil {
		fr := &FrontierSnapshot{Rescored: man.Frontier.Rescored}
		fr.Left.ProposalNode = make([]graph.NodeID, 0, man.N1*man.NLevels)
		fr.Left.ProposalScore = make([]int32, 0, man.N1*man.NLevels)
		fr.Right.ProposalNode = make([]graph.NodeID, 0, man.N2*man.NLevels)
		fr.Right.ProposalScore = make([]int32, 0, man.N2*man.NLevels)
		for _, p := range parts {
			fr.Left.ProposalNode = append(fr.Left.ProposalNode, p.Frontier.Left.ProposalNode...)
			fr.Left.ProposalScore = append(fr.Left.ProposalScore, p.Frontier.Left.ProposalScore...)
			fr.Right.ProposalNode = append(fr.Right.ProposalNode, p.Frontier.Right.ProposalNode...)
			fr.Right.ProposalScore = append(fr.Right.ProposalScore, p.Frontier.Right.ProposalScore...)
		}
		fr.Left.Dirty = append([]graph.NodeID(nil), man.Frontier.DirtyLeft...)
		fr.Right.Dirty = append([]graph.NodeID(nil), man.Frontier.DirtyRight...)
		out.Frontier = fr
	}
	return out, nil
}
