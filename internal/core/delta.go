package core

import (
	"errors"
	"fmt"

	"github.com/sociograph/reconcile/internal/graph"
)

// State diffing: between two checkpoints of the same run, almost everything
// in a SessionState is either append-only (the matching is monotone; the
// phase history only grows, even though the retained window over it is
// bounded and slides) or a small dense structure of which only a small
// fraction changes (the frontier proposal cache — exactly the entries the
// engine re-scored). A StateDelta captures precisely that churn, so a
// per-sweep checkpoint costs O(changes since the last checkpoint) instead of
// O(matching + caches). ApplyDelta replays a delta onto the base state it was
// diffed from and reproduces the later state exactly — restore from
// (full + deltas) is therefore bit-identical to restore from a monolithic
// snapshot, which the delta round-trip fuzz suite and the chain
// resume-equivalence suite pin.

// ErrNotDiffable reports that two states cannot be related by a StateDelta —
// they belong to different runs (options, graph shape or seed boundary
// differ), the matching is not an append (never the case within one run), or
// the frontier caches changed shape. Callers fall back to a full snapshot.
var ErrNotDiffable = errors.New("core: states are not delta-compatible; write a full snapshot")

// StateDelta is the change record between a base SessionState and a later
// state of the same run. The Base* fields fingerprint the position of the
// base state; ApplyDelta refuses a base at any other position, so a chain
// with a missing or reordered record fails loudly instead of replaying into
// a wrong state.
type StateDelta struct {
	// Base fingerprint: the schedule position, log lengths, evicted-phase
	// offset and hybrid regime of the state this delta applies to.
	BasePairs         int
	BasePhases        int
	BaseSweeps        int
	BaseNextBucket    int
	BasePhasesDropped int

	// The new schedule position.
	Sweeps     int
	NextBucket int

	// The target's phase-window offset and evicted totals. Deltas never span
	// a hybrid regime change (the frontier caches appearing makes the states
	// not diffable), so a single regime flag fingerprints the base and
	// describes the target.
	PhasesDropped  int
	DroppedMatched int
	HybridFrontier bool

	// NewPairs holds the matching entries appended since the base state;
	// NewPhases the phase entries beyond the base window's end (the target
	// window may also have evicted part of the base's — PhasesDropped says
	// how far it slid).
	NewPairs  []graph.Pair
	NewPhases []PhaseStat

	// Frontier carries the frontier-engine churn; nil when the run has no
	// frontier state (and then both base and target must have none).
	Frontier *FrontierDelta
}

// FrontierDelta is the frontier engine's churn between two checkpoints: the
// proposal-cache entries that were re-scored, plus both dirty worklists
// (recorded whole — queue order matters and the lists are small next to the
// cache).
type FrontierDelta struct {
	Left, Right FrontierSideDelta
	Rescored    int64
}

// FrontierSideDelta is one side's cache churn. Index holds the changed
// row-major cache positions in strictly ascending order; Node and Score are
// the new values at those positions, parallel to Index.
type FrontierSideDelta struct {
	Index []int
	Node  []graph.NodeID
	Score []int32

	// Dirty is the complete new worklist, replacing the base's.
	Dirty []graph.NodeID
}

// DiffStates computes the delta from base to cur, two exported states of the
// same run with base the earlier checkpoint. It returns ErrNotDiffable when
// the states cannot be related by appends and cache edits — different
// options, shapes, or seed boundaries, or a matching that is not an append
// (none of which occur between checkpoints of a live session).
func DiffStates(base, cur *SessionState) (*StateDelta, error) {
	if base == nil || cur == nil {
		return nil, errors.New("core: diff: nil state")
	}
	if base.Opts != cur.Opts {
		return nil, fmt.Errorf("%w: options differ", ErrNotDiffable)
	}
	if base.N1 != cur.N1 || base.N2 != cur.N2 {
		return nil, fmt.Errorf("%w: graph shapes differ", ErrNotDiffable)
	}
	if base.Seeds != cur.Seeds {
		return nil, fmt.Errorf("%w: seed boundaries differ", ErrNotDiffable)
	}
	if len(cur.Pairs) < len(base.Pairs) {
		return nil, fmt.Errorf("%w: target state is behind the base", ErrNotDiffable)
	}
	if base.HybridFrontier != cur.HybridFrontier {
		return nil, fmt.Errorf("%w: hybrid regime changed", ErrNotDiffable)
	}
	for i, p := range base.Pairs {
		if cur.Pairs[i] != p {
			return nil, fmt.Errorf("%w: matching is not an append (pair %d changed)", ErrNotDiffable, i)
		}
	}
	// The phase logs are bounded windows over the same append-only history;
	// compare them in global coordinates. The target window may start later
	// (eviction slid it) but must still cover everything the base's covers
	// beyond its own start, with identical entries.
	baseEnd := base.PhasesDropped + len(base.Phases)
	curEnd := cur.PhasesDropped + len(cur.Phases)
	if cur.PhasesDropped < base.PhasesDropped || curEnd < baseEnd ||
		cur.DroppedMatched < base.DroppedMatched {
		return nil, fmt.Errorf("%w: target state is behind the base", ErrNotDiffable)
	}
	for g := cur.PhasesDropped; g < baseEnd; g++ {
		if cur.Phases[g-cur.PhasesDropped] != base.Phases[g-base.PhasesDropped] {
			return nil, fmt.Errorf("%w: phase log is not an append (entry %d changed)", ErrNotDiffable, g)
		}
	}
	newFrom := baseEnd - cur.PhasesDropped
	if newFrom < 0 {
		newFrom = 0 // the target window starts past the base's end entirely
	}
	d := &StateDelta{
		BasePairs:         len(base.Pairs),
		BasePhases:        len(base.Phases),
		BaseSweeps:        base.Sweeps,
		BaseNextBucket:    base.NextBucket,
		BasePhasesDropped: base.PhasesDropped,
		Sweeps:            cur.Sweeps,
		NextBucket:        cur.NextBucket,
		PhasesDropped:     cur.PhasesDropped,
		DroppedMatched:    cur.DroppedMatched,
		HybridFrontier:    cur.HybridFrontier,
		NewPairs:          append([]graph.Pair(nil), cur.Pairs[len(base.Pairs):]...),
		NewPhases:         append([]PhaseStat(nil), cur.Phases[newFrom:]...),
	}
	switch {
	case base.Frontier == nil && cur.Frontier == nil:
	case base.Frontier == nil || cur.Frontier == nil:
		return nil, fmt.Errorf("%w: frontier state appeared or vanished", ErrNotDiffable)
	default:
		fd := &FrontierDelta{Rescored: cur.Frontier.Rescored}
		for _, s := range []struct {
			base, cur *FrontierSideSnapshot
			dst       *FrontierSideDelta
		}{
			{&base.Frontier.Left, &cur.Frontier.Left, &fd.Left},
			{&base.Frontier.Right, &cur.Frontier.Right, &fd.Right},
		} {
			var err error
			*s.dst, err = diffSide(s.base, s.cur)
			if err != nil {
				return nil, err
			}
		}
		d.Frontier = fd
	}
	return d, nil
}

func diffSide(base, cur *FrontierSideSnapshot) (FrontierSideDelta, error) {
	var d FrontierSideDelta
	if len(base.ProposalNode) != len(cur.ProposalNode) ||
		len(base.ProposalScore) != len(cur.ProposalScore) ||
		len(cur.ProposalNode) != len(cur.ProposalScore) {
		return d, fmt.Errorf("%w: frontier cache shapes differ", ErrNotDiffable)
	}
	for i := range cur.ProposalNode {
		if cur.ProposalNode[i] != base.ProposalNode[i] || cur.ProposalScore[i] != base.ProposalScore[i] {
			d.Index = append(d.Index, i)
			d.Node = append(d.Node, cur.ProposalNode[i])
			d.Score = append(d.Score, cur.ProposalScore[i])
		}
	}
	d.Dirty = append([]graph.NodeID(nil), cur.Dirty...)
	return d, nil
}

// ApplyDelta replays a delta onto the base state it was diffed from and
// returns the resulting state; base is not modified. The base's position is
// checked against the delta's fingerprint and every edit is bounds-checked,
// so a delta applied out of order, onto the wrong base, or after corruption
// the codec's CRC somehow missed returns an error — never a wrong state.
// ApplyDelta(base, d) for d = DiffStates(base, cur) reproduces cur exactly.
func ApplyDelta(base *SessionState, d *StateDelta) (*SessionState, error) {
	if base == nil || d == nil {
		return nil, errors.New("core: apply delta: nil argument")
	}
	if len(base.Pairs) != d.BasePairs || len(base.Phases) != d.BasePhases ||
		base.Sweeps != d.BaseSweeps || base.NextBucket != d.BaseNextBucket ||
		base.PhasesDropped != d.BasePhasesDropped || base.HybridFrontier != d.HybridFrontier {
		return nil, fmt.Errorf("core: apply delta: base at position (pairs %d, phases %d+%d, sweep %d.%d, hybrid %v), delta expects (%d, %d+%d, %d.%d, %v)",
			len(base.Pairs), base.PhasesDropped, len(base.Phases), base.Sweeps, base.NextBucket, base.HybridFrontier,
			d.BasePairs, d.BasePhasesDropped, d.BasePhases, d.BaseSweeps, d.BaseNextBucket, d.HybridFrontier)
	}
	if d.PhasesDropped < d.BasePhasesDropped {
		return nil, fmt.Errorf("core: apply delta: phase window slides backwards (%d to %d)", d.BasePhasesDropped, d.PhasesDropped)
	}
	// Rebuild the target phase window in global coordinates: keep the part
	// of the base window the target still covers, then the appended entries.
	baseEnd := d.BasePhasesDropped + d.BasePhases
	var phases []PhaseStat
	if d.PhasesDropped >= baseEnd {
		phases = appendCopy(nil, d.NewPhases)
	} else {
		phases = appendCopy(base.Phases[d.PhasesDropped-d.BasePhasesDropped:], d.NewPhases)
	}
	st := &SessionState{
		Opts:           base.Opts,
		N1:             base.N1,
		N2:             base.N2,
		Seeds:          base.Seeds,
		Sweeps:         d.Sweeps,
		NextBucket:     d.NextBucket,
		PhasesDropped:  d.PhasesDropped,
		DroppedMatched: d.DroppedMatched,
		HybridFrontier: d.HybridFrontier,
		Pairs:          appendCopy(base.Pairs, d.NewPairs),
		Phases:         phases,
	}
	switch {
	case base.Frontier == nil && d.Frontier == nil:
	case base.Frontier == nil || d.Frontier == nil:
		return nil, errors.New("core: apply delta: frontier state present on one side only")
	default:
		fr := &FrontierSnapshot{Rescored: d.Frontier.Rescored}
		for _, s := range []struct {
			base *FrontierSideSnapshot
			d    *FrontierSideDelta
			dst  *FrontierSideSnapshot
		}{
			{&base.Frontier.Left, &d.Frontier.Left, &fr.Left},
			{&base.Frontier.Right, &d.Frontier.Right, &fr.Right},
		} {
			var err error
			*s.dst, err = applySide(s.base, s.d)
			if err != nil {
				return nil, err
			}
		}
		st.Frontier = fr
	}
	return st, nil
}

func applySide(base *FrontierSideSnapshot, d *FrontierSideDelta) (FrontierSideSnapshot, error) {
	var out FrontierSideSnapshot
	if len(d.Index) != len(d.Node) || len(d.Index) != len(d.Score) {
		return out, fmt.Errorf("core: apply delta: edit slices disagree (%d indices, %d nodes, %d scores)",
			len(d.Index), len(d.Node), len(d.Score))
	}
	out.ProposalNode = append([]graph.NodeID(nil), base.ProposalNode...)
	out.ProposalScore = append([]int32(nil), base.ProposalScore...)
	prev := -1
	for i, idx := range d.Index {
		if idx <= prev {
			return out, fmt.Errorf("core: apply delta: cache edit indices not ascending (%d after %d)", idx, prev)
		}
		if idx >= len(out.ProposalNode) {
			return out, fmt.Errorf("core: apply delta: cache edit index %d out of range (%d entries)", idx, len(out.ProposalNode))
		}
		out.ProposalNode[idx] = d.Node[i]
		out.ProposalScore[idx] = d.Score[i]
		prev = idx
	}
	out.Dirty = append([]graph.NodeID(nil), d.Dirty...)
	return out, nil
}

// appendCopy returns a fresh slice holding base followed by extra; unlike
// append(base, extra...) it never aliases the base's backing array.
func appendCopy[T any](base, extra []T) []T {
	if len(base)+len(extra) == 0 {
		return nil
	}
	out := make([]T, 0, len(base)+len(extra))
	return append(append(out, base...), extra...)
}
