package core

import (
	"context"
	"testing"
	"testing/quick"

	"github.com/sociograph/reconcile/internal/graph"
)

func TestFrontierMatchesNaive(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g1, g2, seeds := testInstance(seed, 120)
		opts := DefaultOptions()
		opts.Engine = EngineFrontier
		opts.Threshold = 2
		res, err := Reconcile(g1, g2, seeds, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveReconcile(t, g1, g2, seeds, opts)
		if !pairsEqual(res.Pairs, want) {
			t.Fatalf("seed %d: engine %d pairs, naive %d pairs", seed, len(res.Pairs), len(want))
		}
	}
}

// TestFrontierMatchesSequential pins the engine across the whole option
// surface: for random instances and every combination of tie policy,
// scoring, bucketing, margin and threshold, the frontier engine must produce
// the exact pair sequence and phase statistics of the sequential reference.
func TestFrontierMatchesSequential(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g1, g2, seeds := testInstance(seed, 300)
		for _, ties := range []TieBreak{TieReject, TieLowestID} {
			for _, scoring := range []Scoring{ScoreWitnessCount, ScoreAdamicAdar} {
				for _, nobuck := range []bool{false, true} {
					opts := DefaultOptions()
					opts.Threshold = 1 + int(seed%3)
					opts.MinMargin = int(seed % 2)
					opts.Ties = ties
					opts.Scoring = scoring
					opts.DisableBucketing = nobuck
					opts.Engine = EngineSequential
					seq, err := Reconcile(g1, g2, seeds, opts)
					if err != nil {
						return false
					}
					for _, workers := range []int{0, 1, 3} {
						opts.Engine = EngineFrontier
						opts.Workers = workers
						fr, err := Reconcile(g1, g2, seeds, opts)
						if err != nil {
							return false
						}
						if !resultsIdentical(seq, fr) {
							t.Logf("mismatch: seed=%d ties=%v scoring=%v nobuck=%v workers=%d",
								seed, ties, scoring, nobuck, workers)
							return false
						}
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 6})
	if err != nil {
		t.Error(err)
	}
}

// resultsIdentical requires bit-identical results: same pairs in the same
// discovery order, the same per-bucket phase statistics (the retained
// window), and the same cumulative totals.
func resultsIdentical(a, b *Result) bool {
	if len(a.Pairs) != len(b.Pairs) || len(a.Phases) != len(b.Phases) || a.Seeds != b.Seeds ||
		a.Totals != b.Totals {
		return false
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			return false
		}
	}
	for i := range a.Phases {
		if a.Phases[i] != b.Phases[i] {
			return false
		}
	}
	return true
}

// TestFrontierIncrementalMatchesSequential drives the same multi-run
// schedule — run, ingest late seeds, run again, run to convergence — on both
// engines and requires identical state at the end. This is the production
// Session workflow the frontier's persistent caches must survive.
func TestFrontierIncrementalMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{3, 9, 27} {
		g1, g2, seeds := testInstance(seed, 400)
		half := len(seeds) / 2
		run := func(engine Engine) *Result {
			o := DefaultOptions()
			o.Engine = engine
			s, err := NewSession(g1, g2, seeds[:half], o)
			if err != nil {
				t.Fatal(err)
			}
			s.Run(1)
			// A link discovered in the first run may conflict with a late
			// seed; the error and the partial seed application must be
			// identical across engines, so it is data, not a failure.
			if err := s.AddSeeds(seeds[half:]); err != nil {
				t.Logf("engine %v: AddSeeds: %v", engine, err)
			}
			s.Run(1)
			s.RunUntilStable(4)
			return s.Result()
		}
		seq := run(EngineSequential)
		fr := run(EngineFrontier)
		if !resultsIdentical(seq, fr) {
			t.Fatalf("seed %d: incremental schedule diverged: seq %d pairs, frontier %d pairs",
				seed, len(seq.Pairs), len(fr.Pairs))
		}
	}
}

// TestFrontierCancelPartialResult cancels a frontier run at every bucket
// boundary in turn and checks that each partial Result is a valid prefix of
// the full run: the same leading pairs (monotonicity — links are never
// retracted), injective, and every discovered link has at least Threshold
// similarity witnesses under the partial matching itself (witness counts
// only grow with the matching, so clearing T at commit time implies clearing
// it under any later matching).
func TestFrontierCancelPartialResult(t *testing.T) {
	g1, g2, seeds := testInstance(5, 400)
	opts := DefaultOptions()
	opts.Engine = EngineFrontier

	full, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	totalBuckets := len(full.Phases)
	if totalBuckets < 4 {
		t.Fatalf("instance too small to cancel mid-run: %d buckets", totalBuckets)
	}

	for stop := 1; stop < totalBuckets; stop++ {
		ctx, cancel := context.WithCancel(context.Background())
		buckets := 0
		res, err := ReconcileContext(ctx, g1, g2, seeds, opts, func(e PhaseEvent) {
			buckets++
			if buckets == stop {
				cancel()
			}
		})
		cancel()
		if err != context.Canceled {
			t.Fatalf("stop=%d: err = %v, want context.Canceled", stop, err)
		}
		if len(res.Phases) != stop {
			t.Fatalf("stop=%d: ran %d buckets", stop, len(res.Phases))
		}

		// Prefix of the full run, pair for pair.
		if len(res.Pairs) > len(full.Pairs) {
			t.Fatalf("stop=%d: partial has %d pairs, full only %d", stop, len(res.Pairs), len(full.Pairs))
		}
		for i, p := range res.Pairs {
			if full.Pairs[i] != p {
				t.Fatalf("stop=%d: pair %d is %v, full run has %v — not a prefix", stop, i, p, full.Pairs[i])
			}
		}

		// Injective, and discoveries clear the threshold under the partial
		// matching.
		m, err := NewMatching(g1.NumNodes(), g2.NumNodes(), res.Pairs)
		if err != nil {
			t.Fatalf("stop=%d: partial result not injective: %v", stop, err)
		}
		if err := m.validateInjective(); err != nil {
			t.Fatalf("stop=%d: %v", stop, err)
		}
		for _, p := range res.Pairs[res.Seeds:] {
			if s := SimilarityWitnesses(g1, g2, m, p.Left, p.Right); s < opts.Threshold {
				t.Fatalf("stop=%d: discovered pair %v has %d witnesses < T=%d", stop, p, s, opts.Threshold)
			}
		}
	}
}

// TestFrontierSkipsCleanNodes pins the scheduling claim itself: once a sweep
// commits nothing, every cache is clean and further sweeps re-score nothing,
// where the full engines would rescan both node sets every pass.
func TestFrontierSkipsCleanNodes(t *testing.T) {
	g1, g2, seeds := testInstance(13, 600)
	opts := DefaultOptions()
	opts.Engine = EngineFrontier
	s, err := NewSession(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntilStable(10)
	afterStable := s.fr.rescored

	// The stable sweep found nothing, so no node was invalidated.
	s.Run(1)
	if got := s.fr.rescored; got != afterStable {
		t.Fatalf("converged sweep re-scored %d nodes, want 0", got-afterStable)
	}

	// Sanity-bound the total scheduling work: a full engine scores up to
	// (n1+n2) nodes per bucket pass; the frontier's lifetime total should
	// stay well under the full engines' per-sweep cost times the sweep count.
	passes := len(s.Result().Phases)
	fullWork := int64(g1.NumNodes()+g2.NumNodes()) * int64(passes)
	if s.fr.rescored*2 > fullWork {
		t.Fatalf("frontier re-scored %d nodes over %d passes; full engines would score %d — no scheduling win",
			s.fr.rescored, passes, fullWork)
	}
}

// TestFrontierAddSeedsReactivates checks that seed ingestion after
// convergence re-opens exactly the neighborhoods of the new links: the next
// run re-scores something, discovers whatever the sequential engine would,
// and goes idle again.
func TestFrontierAddSeedsReactivates(t *testing.T) {
	g1, g2, seeds := testInstance(21, 500)
	if len(seeds) < 8 {
		t.Fatal("instance has too few seeds")
	}
	late := seeds[len(seeds)-4:]
	early := seeds[:len(seeds)-4]

	o := DefaultOptions()
	o.Engine = EngineFrontier
	s, err := NewSession(g1, g2, early, o)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntilStable(10)
	idle := s.fr.rescored
	s.Run(1)
	if s.fr.rescored != idle {
		t.Fatal("converged session not idle")
	}

	// Keep only late seeds that do not collide with links the first phase
	// already discovered, so at least one genuinely new link is ingested.
	fresh := late[:0:0]
	for _, p := range late {
		if s.m.LeftMatch(p.Left) == NoMatch && s.m.RightMatch(p.Right) == NoMatch {
			fresh = append(fresh, p)
		}
	}
	if len(fresh) == 0 {
		t.Fatal("all late seeds collide with discovered links; pick another instance seed")
	}
	late = fresh
	if err := s.AddSeeds(late); err != nil {
		t.Fatal(err)
	}
	s.RunUntilStable(10)
	if s.fr.rescored == idle {
		t.Fatal("AddSeeds did not re-open the frontier")
	}

	// Same final state as the sequential engine driven through the same
	// schedule.
	oSeq := o
	oSeq.Engine = EngineSequential
	sq, err := NewSession(g1, g2, early, oSeq)
	if err != nil {
		t.Fatal(err)
	}
	sq.RunUntilStable(10)
	sq.Run(1)
	if err := sq.AddSeeds(late); err != nil {
		t.Fatal(err)
	}
	sq.RunUntilStable(10)
	if !pairsEqual(s.Result().Pairs, sq.Result().Pairs) {
		t.Fatalf("post-AddSeeds states diverge: frontier %d pairs, sequential %d",
			s.Len(), sq.Len())
	}
}

// TestFrontierValidateAccepts covers the new engine constant in option
// validation and its String form.
func TestFrontierValidateAccepts(t *testing.T) {
	o := DefaultOptions()
	if o.Engine != EngineHybrid {
		t.Fatalf("default engine = %v, want hybrid", o.Engine)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	o.Engine = EngineFrontier
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if EngineFrontier.String() != "frontier" {
		t.Fatalf("String() = %q", EngineFrontier.String())
	}
	if EngineHybrid.String() != "hybrid" {
		t.Fatalf("String() = %q", EngineHybrid.String())
	}
	o.Engine = Engine(99)
	if err := o.Validate(); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestFrontierEmptyAndTinyGraphs exercises degenerate shapes the worklists
// must survive: empty sides, no seeds, single nodes.
func TestFrontierEmptyAndTinyGraphs(t *testing.T) {
	empty := graph.FromEdges(0, nil)
	one := graph.FromEdges(1, nil)
	o := DefaultOptions()
	o.Engine = EngineFrontier
	for _, tc := range []struct {
		name   string
		g1, g2 *graph.Graph
	}{
		{"both empty", empty, empty},
		{"left empty", empty, one},
		{"right empty", one, empty},
		{"singletons", one, one},
	} {
		res, err := Reconcile(tc.g1, tc.g2, nil, o)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(res.Pairs) != 0 {
			t.Fatalf("%s: found %d pairs in trivial instance", tc.name, len(res.Pairs))
		}
	}
}
