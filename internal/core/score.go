package core

import (
	"math"

	"github.com/sociograph/reconcile/internal/graph"
)

// candidate is one side's best partner proposal: the top-ranked partner for
// a node, or none (score 0) when the node had no eligible partner, no
// witness count >= T, a disqualifying tie, or an insufficient margin.
type candidate struct {
	node  graph.NodeID
	score int32 // witness count of the selected partner
}

// passParams bundles the per-bucket scoring configuration.
type passParams struct {
	minDeg    int
	threshold int32
	ties      TieBreak
	weighted  bool // rank by Adamic-Adar weights instead of raw counts
	minMargin int32
}

func (o Options) passParams(minDeg int) passParams {
	return passParams{
		minDeg:    minDeg,
		threshold: int32(o.Threshold),
		ties:      o.Ties,
		weighted:  o.Scoring == ScoreAdamicAdar,
		minMargin: int32(o.MinMargin),
	}
}

// witnessWeight is the Adamic-Adar style contribution of a witness pair
// whose endpoints have the given degrees: rarely-linked witnesses count for
// more than celebrities.
func witnessWeight(d1, d2 int) float32 {
	d := d1
	if d2 > d {
		d = d2
	}
	return float32(1 / math.Log2(float64(2+d)))
}

// scorer is the per-worker scratch for one directional scoring pass. Scores
// are accumulated in dense arrays indexed by partner node, with a touched
// list for O(candidates) clearing — the matcher's hot path allocates nothing
// per node.
type scorer struct {
	scores  []int32
	weights []float32 // nil unless weighted scoring is on
	touched []graph.NodeID
}

func newScorer(nPartners int, weighted bool) *scorer {
	s := &scorer{scores: make([]int32, nPartners)}
	if weighted {
		s.weights = make([]float32, nPartners)
	}
	return s
}

// bestFor computes the similarity-witness scores of every candidate partner
// for node v in graph ga, where partners live in graph gb:
//
//	for each neighbor u of v in ga that is linked to u' = link[u],
//	    every unmatched w ∈ N_gb(u') with deg_gb(w) >= minDeg
//	    gains one witness (u, u').
//
// Candidates are ranked by witness count (or by Adamic-Adar weight under
// weighted scoring); the winner must have count >= threshold, survive the
// tie policy, and beat every other candidate's count by minMargin.
// partnerMatched[w] != NoMatch excludes already-linked partners.
func (s *scorer) bestFor(
	v graph.NodeID,
	ga, gb *graph.Graph,
	link, partnerMatched []graph.NodeID,
	p passParams,
) candidate {
	for _, u := range ga.Neighbors(v) {
		u2 := link[u]
		if u2 == NoMatch {
			continue
		}
		var wt float32
		if s.weights != nil {
			wt = witnessWeight(ga.Degree(u), gb.Degree(u2))
		}
		for _, w := range gb.Neighbors(u2) {
			if partnerMatched[w] != NoMatch {
				continue
			}
			if gb.Degree(w) < p.minDeg {
				continue
			}
			if s.scores[w] == 0 {
				s.touched = append(s.touched, w)
			}
			s.scores[w]++
			if s.weights != nil {
				s.weights[w] += wt
			}
		}
	}
	if len(s.touched) == 0 {
		return candidate{}
	}

	// Selection pass: rank by the configured key with the tie policy.
	rank := func(w graph.NodeID) float64 {
		if s.weights != nil {
			return float64(s.weights[w])
		}
		return float64(s.scores[w])
	}
	best := s.touched[0]
	bestKey := rank(best)
	tie := false
	for _, w := range s.touched[1:] {
		k := rank(w)
		switch {
		case k > bestKey:
			best, bestKey = w, k
			tie = false
		case k == bestKey:
			if p.ties == TieLowestID && w < best {
				best = w
			}
			tie = true
		}
	}

	// Margin pass: the selected candidate's count must clear the threshold
	// and beat every other candidate's count by minMargin; clear scratch.
	selCount := s.scores[best]
	var maxOther int32
	for _, w := range s.touched {
		if w != best && s.scores[w] > maxOther {
			maxOther = s.scores[w]
		}
		s.scores[w] = 0
		if s.weights != nil {
			s.weights[w] = 0
		}
	}
	s.touched = s.touched[:0]

	switch {
	case selCount < p.threshold:
		return candidate{}
	case tie && p.ties == TieReject:
		return candidate{}
	case p.minMargin > 0 && selCount-maxOther < p.minMargin:
		return candidate{}
	}
	return candidate{node: best, score: selCount}
}

// passDirection identifies which side of the bipartite candidate space a
// scoring pass iterates.
type passDirection int

const (
	fromLeft  passDirection = iota // iterate v1 ∈ G1, partners in G2
	fromRight                      // iterate v2 ∈ G2, partners in G1
)

// passViews bundles the graph/matching views for one direction.
func passViews(dir passDirection, g1, g2 *graph.Graph, m *Matching) (ga, gb *graph.Graph, link, selfMatched, partnerMatched []graph.NodeID) {
	if dir == fromLeft {
		return g1, g2, m.left, m.left, m.right
	}
	return g2, g1, m.right, m.right, m.left
}

// scoreRange computes candidates for nodes [lo, hi) of the iterating side.
// out[v] receives the proposal for node v (zero candidate when none).
// Eligibility: the node itself is unmatched, has degree >= minDeg, and has
// at least threshold linked neighbors (its score with any partner is
// bounded by that count, so fewer linked neighbors cannot clear T).
func scoreRange(
	dir passDirection,
	g1, g2 *graph.Graph,
	m *Matching,
	lc *linkedCounts,
	p passParams,
	lo, hi int,
	sc *scorer,
	out []candidate,
) {
	ga, gb, link, selfMatched, partnerMatched := passViews(dir, g1, g2, m)
	linked := lc.left
	if dir == fromRight {
		linked = lc.right
	}
	for v := lo; v < hi; v++ {
		out[v] = candidate{}
		id := graph.NodeID(v)
		if selfMatched[id] != NoMatch || ga.Degree(id) < p.minDeg || linked[id] < p.threshold {
			continue
		}
		out[v] = sc.bestFor(id, ga, gb, link, partnerMatched, p)
	}
}
