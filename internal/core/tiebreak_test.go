package core

import (
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
)

func TestTieBreakString(t *testing.T) {
	if TieReject.String() != "reject" || TieLowestID.String() != "lowest-id" {
		t.Fatal("tie-break names wrong")
	}
	if TieBreak(9).String() == "" {
		t.Fatal("unknown policy should still render")
	}
}

func TestTieBreakValidation(t *testing.T) {
	o := DefaultOptions()
	o.Ties = TieBreak(5)
	if err := o.Validate(); err == nil {
		t.Fatal("invalid tie policy accepted")
	}
}

// On the symmetric square 0-1-2-3-0 with only node 0 seeded, nodes 1 and 3
// tie. TieReject abstains (tested elsewhere); TieLowestID matches node 1
// (the lowest ID), after which the symmetry is broken and the rest follows.
func TestTieLowestIDResolvesSymmetry(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	opts := DefaultOptions()
	opts.Threshold = 1
	opts.MinBucketExp = 0
	opts.Ties = TieLowestID
	opts.Iterations = 3
	res, err := Reconcile(g, g, []graph.Pair{{Left: 0, Right: 0}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 4 {
		t.Fatalf("matched %d pairs, want all 4: %v", len(res.Pairs), res.Pairs)
	}
	for _, p := range res.Pairs {
		if p.Left != p.Right {
			t.Fatalf("wrong pair %v (identical graphs, lowest-ID tie-break is self-consistent)", p)
		}
	}
}

// TieLowestID must stay deterministic across engines and worker counts.
func TestTieLowestIDDeterministic(t *testing.T) {
	g1, g2, seeds := testInstance(13, 300)
	opts := DefaultOptions()
	opts.Threshold = 1
	opts.Ties = TieLowestID
	opts.Engine = EngineSequential
	seq, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 3, 8} {
		opts.Engine = EngineParallel
		opts.Workers = w
		par, err := Reconcile(g1, g2, seeds, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Pairs) != len(seq.Pairs) {
			t.Fatalf("workers=%d: %d pairs vs %d sequential", w, len(par.Pairs), len(seq.Pairs))
		}
		for i := range seq.Pairs {
			if par.Pairs[i] != seq.Pairs[i] {
				t.Fatalf("workers=%d: pair %d differs", w, i)
			}
		}
	}
}

// Tie acceptance can only add matches relative to rejection at threshold 1.
func TestTieLowestIDSupersetOfReject(t *testing.T) {
	g1, g2, seeds := testInstance(17, 400)
	reject := DefaultOptions()
	reject.Threshold = 1
	a, err := Reconcile(g1, g2, seeds, reject)
	if err != nil {
		t.Fatal(err)
	}
	accept := reject
	accept.Ties = TieLowestID
	b, err := Reconcile(g1, g2, seeds, accept)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Pairs) < len(a.Pairs) {
		t.Fatalf("tie-accepting run found fewer pairs (%d) than rejecting (%d)", len(b.Pairs), len(a.Pairs))
	}
}
