package core

import (
	"context"
	"fmt"
	"testing"

	"github.com/sociograph/reconcile/internal/trace"
)

// traceClock is the injected deterministic clock for session trace tests.
type traceClock struct{ now int64 }

func (c *traceClock) read() int64 { c.now++; return c.now }

// TestTraceRetentionMatchesPhaseLog pins the promise made in internal/trace:
// its default span retention mirrors the session phase log's window, so a
// job's trace and its phase feed cover the same recent history. (The trace
// package cannot import core to share the constant — core imports trace.)
func TestTraceRetentionMatchesPhaseLog(t *testing.T) {
	if trace.DefaultRetainSweeps != PhaseRetainSweeps {
		t.Fatalf("trace.DefaultRetainSweeps = %d, core.PhaseRetainSweeps = %d — the windows must match",
			trace.DefaultRetainSweeps, PhaseRetainSweeps)
	}
}

// spansByKind buckets an exported trace for assertion convenience.
func spansByKind(p *trace.Persisted) map[trace.Kind][]trace.Span {
	out := map[trace.Kind][]trace.Span{}
	for _, s := range p.Spans {
		out[s.Kind] = append(out[s.Kind], s)
	}
	return out
}

func TestSessionEmitsSweepAndBucketSpans(t *testing.T) {
	g1, g2, seeds := testInstance(11, 150)
	opts := DefaultOptions()
	opts.Engine = EngineSequential
	s, err := NewSession(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{Clock: (&traceClock{}).read})
	s.SetTracer(tr)

	const sweeps = 3
	if _, err := s.RunContext(context.Background(), sweeps); err != nil {
		t.Fatal(err)
	}
	by := spansByKind(tr.Export())
	if len(by[trace.KindSweep]) != sweeps {
		t.Fatalf("sweep spans = %d, want %d", len(by[trace.KindSweep]), sweeps)
	}
	buckets := opts.buckets(g1, g2)
	if want := sweeps * len(buckets); len(by[trace.KindBucket]) != want {
		t.Fatalf("bucket spans = %d, want %d", len(by[trace.KindBucket]), want)
	}
	for i, sp := range by[trace.KindSweep] {
		if sp.Sweep != i+1 {
			t.Fatalf("sweep span %d stamped sweep %d", i, sp.Sweep)
		}
		if sp.Detail != fmt.Sprintf("sweep %d", i+1) {
			t.Fatalf("sweep span detail = %q", sp.Detail)
		}
	}
	// Each sweep span must enclose its buckets on the timeline.
	for _, b := range by[trace.KindBucket] {
		sw := by[trace.KindSweep][b.Sweep-1]
		if b.Start < sw.Start || b.End > sw.End {
			t.Fatalf("bucket span %+v escapes sweep span %+v", b, sw)
		}
	}
}

func TestSessionSeedIngestSpan(t *testing.T) {
	g1, g2, seeds := testInstance(12, 100)
	s, err := NewSession(g1, g2, seeds[:len(seeds)/2], DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{Clock: (&traceClock{}).read})
	s.SetTracer(tr)
	if err := s.AddSeeds(seeds[len(seeds)/2:]); err != nil {
		t.Fatal(err)
	}
	by := spansByKind(tr.Export())
	if len(by[trace.KindSeedIngest]) != 1 {
		t.Fatalf("seed-ingest spans = %d, want 1", len(by[trace.KindSeedIngest]))
	}
	want := fmt.Sprintf("%d seeds", len(seeds)-len(seeds)/2)
	if d := by[trace.KindSeedIngest][0].Detail; d != want {
		t.Fatalf("detail = %q, want %q", d, want)
	}
}

// TestHybridHandoffSpan drives a hybrid session to convergence so the regime
// switches, and requires exactly one engine-handoff span (the switch is
// one-way and the state build happens once).
func TestHybridHandoffSpan(t *testing.T) {
	g1, g2, seeds := testInstance(13, 200)
	opts := DefaultOptions()
	opts.Engine = EngineHybrid
	s, err := NewSession(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{Clock: (&traceClock{}).read})
	s.SetTracer(tr)
	if _, err := s.RunUntilStableContext(context.Background(), 30); err != nil {
		t.Fatal(err)
	}
	if !s.FrontierActive() {
		t.Skip("instance never crossed the hybrid regime threshold")
	}
	by := spansByKind(tr.Export())
	if len(by[trace.KindHandoff]) != 1 {
		t.Fatalf("handoff spans = %d, want exactly 1", len(by[trace.KindHandoff]))
	}
}

// TestTraceContinuousAcrossRestore is the core half of the resume-continuity
// story: kill a traced run mid-sweep, restore the session and the trace, and
// require every sweep to appear exactly once — the interrupted sweep's span
// covers its post-restore portion, and none are duplicated or lost.
func TestTraceContinuousAcrossRestore(t *testing.T) {
	for _, eng := range []Engine{EngineSequential, EngineParallel, EngineFrontier, EngineHybrid} {
		t.Run(fmt.Sprintf("engine-%d", eng), func(t *testing.T) {
			g1, g2, seeds := testInstance(14, 150)
			opts := DefaultOptions()
			opts.Engine = eng
			s, err := NewSession(g1, g2, seeds, opts)
			if err != nil {
				t.Fatal(err)
			}
			tr := trace.New(trace.Config{Clock: (&traceClock{}).read})
			s.SetTracer(tr)

			// Cancel from inside the progress hook partway through sweep 2.
			ctx, cancel := context.WithCancel(context.Background())
			s.SetProgress(func(e PhaseEvent) {
				if e.Iteration == 2 && e.Bucket == 1 {
					cancel()
				}
			})
			if _, err := s.RunContext(ctx, 4); err == nil {
				t.Fatal("expected cancellation")
			}
			st := s.ExportState()
			p := tr.Export()

			// A fresh process: restore state, re-seat the trace, mark the seam.
			s2, err := RestoreSession(g1, g2, st)
			if err != nil {
				t.Fatal(err)
			}
			tr2 := trace.Restore(trace.Config{Clock: (&traceClock{}).read}, p)
			tr2.Mark(trace.KindResume, "test restart")
			s2.SetTracer(tr2)
			if _, err := s2.RunContext(context.Background(), 2); err != nil {
				t.Fatal(err)
			}

			by := spansByKind(tr2.Export())
			if len(by[trace.KindResume]) != 1 {
				t.Fatalf("resume spans = %d, want 1", len(by[trace.KindResume]))
			}
			seen := map[int]int{}
			for _, sp := range by[trace.KindSweep] {
				seen[sp.Sweep]++
			}
			for want := 1; want <= s2.Sweeps(); want++ {
				if seen[want] != 1 {
					t.Fatalf("sweep %d has %d spans (trace %v), want exactly 1", want, seen[want], seen)
				}
			}
			// Timeline must not rewind across the seam.
			var last int64
			for _, sp := range tr2.Export().Spans {
				if sp.End < last {
					t.Fatalf("trace timeline rewound: span %+v ends before %d", sp, last)
				}
				last = sp.End
			}
		})
	}
}
