package core

import (
	"context"
	"testing"

	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
	"github.com/sociograph/reconcile/internal/xrand"
)

// FuzzEngineEquivalence generates random reconciliation instances and option
// combinations and asserts that all four engines — sequential reference,
// parallel, frontier, hybrid — produce bit-identical output: same pairs in
// the same discovery order and the same phase statistics. It then drives the
// frontier, hybrid and sequential engines through an incremental schedule
// (run, ingest the held-back seeds, run to convergence) and requires the
// final states to agree, pinning the frontier's persistent caches and
// invalidation and the hybrid's automatic regime handoff under arbitrary
// option mixes. Finally it kills a run at a cfg-derived bucket boundary and
// restores the exported state under a different engine — crossing the hybrid
// switch point in both directions — and requires the finished run to match.
//
// Run the smoke corpus with the normal test suite, or explore with
//
//	go test -fuzz=FuzzEngineEquivalence -fuzztime=20s ./internal/core
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(60), uint16(0))
	f.Add(uint64(2), uint16(150), uint16(0x35))
	f.Add(uint64(3), uint16(300), uint16(0x1ff))
	f.Add(uint64(77), uint16(200), uint16(0x0aa))
	f.Add(uint64(1234), uint16(90), uint16(0x155))

	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint16, cfg uint16) {
		// Derive a small instance: PA parent, independent edge-sampled
		// copies, Bernoulli seed reveal — the paper's basic model.
		n := 20 + int(nRaw)%280
		r := xrand.New(seed)
		g := gen.PreferentialAttachment(r, n, 3+int(seed%3))
		g1, g2 := sampling.IndependentCopies(r, g, 0.6, 0.8)
		seeds := sampling.Seeds(r, graph.IdentityPairs(n), 0.15)

		// Decode the option combination from cfg bits.
		opts := DefaultOptions()
		opts.Threshold = 1 + int(cfg&0x3)         // 1..4
		opts.Iterations = 1 + int((cfg>>2)&0x1)   // 1..2
		opts.MinMargin = int((cfg >> 3) & 0x1)    // 0..1
		opts.MinBucketExp = int((cfg >> 4) & 0x1) // 0..1
		opts.DisableBucketing = cfg&0x20 != 0
		if cfg&0x40 != 0 {
			opts.Ties = TieLowestID
		}
		if cfg&0x80 != 0 {
			opts.Scoring = ScoreAdamicAdar
		}
		if cfg&0x100 != 0 {
			opts.MaxDegree = 1 + int(cfg>>9) // exercise schedule overrides
		}

		run := func(engine Engine, workers int) *Result {
			o := opts
			o.Engine = engine
			o.Workers = workers
			res, err := Reconcile(g1, g2, seeds, o)
			if err != nil {
				t.Fatalf("%v engine: %v", engine, err)
			}
			return res
		}
		seq := run(EngineSequential, 0)
		if par := run(EngineParallel, 3); !resultsIdentical(seq, par) {
			t.Fatalf("parallel diverges from sequential: %d vs %d pairs (cfg=%#x n=%d)",
				len(par.Pairs), len(seq.Pairs), cfg, n)
		}
		for _, workers := range []int{1, 4} {
			if fr := run(EngineFrontier, workers); !resultsIdentical(seq, fr) {
				t.Fatalf("frontier(workers=%d) diverges from sequential: %d vs %d pairs (cfg=%#x n=%d)",
					workers, len(fr.Pairs), len(seq.Pairs), cfg, n)
			}
		}
		if hy := run(EngineHybrid, 2); !resultsIdentical(seq, hy) {
			t.Fatalf("hybrid diverges from sequential: %d vs %d pairs (cfg=%#x n=%d)",
				len(hy.Pairs), len(seq.Pairs), cfg, n)
		}

		// Forced mid-run engine switch: kill a run at a cfg-derived bucket
		// boundary, export, restore under another engine (mirroring the
		// public restore mask), finish — still bit-identical. When the victim
		// is hybrid this crosses its automatic switch point from both sides.
		if total := len(seq.Phases); total > 1 {
			engines := []Engine{EngineSequential, EngineParallel, EngineFrontier, EngineHybrid}
			runAs := engines[int(cfg>>3)%len(engines)]
			resumeAs := engines[int(cfg>>5)%len(engines)]
			stop := 1 + int(seed>>13)%(total-1)
			o := opts
			o.Engine = runAs
			s, err := NewSession(g1, g2, seeds, o)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			buckets := 0
			s.SetProgress(func(PhaseEvent) {
				buckets++
				if buckets == stop {
					cancel()
				}
			})
			if _, err := s.RunContext(ctx, o.Iterations); err != context.Canceled {
				t.Fatalf("victim err = %v, want context.Canceled", err)
			}
			cancel()
			st := s.ExportState()
			st.Opts.Engine = resumeAs
			switch resumeAs {
			case EngineFrontier:
				st.HybridFrontier = false
			case EngineHybrid:
				if runAs != EngineHybrid {
					st.HybridFrontier = st.InferHybridRegime()
				}
				if !st.HybridFrontier {
					st.Frontier = nil
				}
			default:
				st.HybridFrontier = false
				st.Frontier = nil
			}
			restored, err := RestoreSession(g1, g2, st)
			if err != nil {
				t.Fatalf("%v->%v stop=%d: restore: %v", runAs, resumeAs, stop, err)
			}
			remaining := o.Iterations - restored.Sweeps()
			if _, err := restored.RunContext(context.Background(), remaining); err != nil {
				t.Fatal(err)
			}
			if got := restored.Result(); !resultsIdentical(seq, got) {
				t.Fatalf("%v->%v stop=%d: switched run diverged: %d vs %d pairs (cfg=%#x n=%d)",
					runAs, resumeAs, stop, len(got.Pairs), len(seq.Pairs), cfg, n)
			}
		}

		// Incremental schedule: the same session workflow on both engines.
		if len(seeds) < 2 {
			return
		}
		half := len(seeds) / 2
		incremental := func(engine Engine) (*Result, string) {
			o := opts
			o.Engine = engine
			s, err := NewSession(g1, g2, seeds[:half], o)
			if err != nil {
				t.Fatalf("%v engine: %v", engine, err)
			}
			s.Run(1)
			// Late seeds may conflict with discovered links; the error (and
			// the partial application preceding it) must match across
			// engines, so it is part of the compared output.
			errStr := ""
			if err := s.AddSeeds(seeds[half:]); err != nil {
				errStr = err.Error()
			}
			s.RunUntilStable(3)
			return s.Result(), errStr
		}
		seqInc, seqErr := incremental(EngineSequential)
		for _, engine := range []Engine{EngineFrontier, EngineHybrid} {
			inc, incErr := incremental(engine)
			if seqErr != incErr {
				t.Fatalf("incremental %v AddSeeds errors diverge: %q vs %q (cfg=%#x n=%d)",
					engine, incErr, seqErr, cfg, n)
			}
			if !resultsIdentical(seqInc, inc) {
				t.Fatalf("incremental %v diverges: %d vs %d pairs (cfg=%#x n=%d)",
					engine, len(inc.Pairs), len(seqInc.Pairs), cfg, n)
			}
		}
	})
}
