package core

import (
	"fmt"

	"github.com/sociograph/reconcile/internal/graph"
)

// NoMatch marks an unlinked node in a Matching's direction arrays.
const NoMatch = ^graph.NodeID(0)

// Matching is the evolving partial injective mapping L between the node sets
// of G1 and G2: seed links plus every identification made so far.
type Matching struct {
	left  []graph.NodeID // left[v1] = v2 or NoMatch
	right []graph.NodeID // right[v2] = v1 or NoMatch
	pairs []graph.Pair   // insertion order; seeds first
	seeds int            // how many of pairs are seeds
}

// NewMatching builds the initial matching from the seed links. It rejects
// out-of-range nodes and conflicting seeds (a node seeded to two different
// partners); an exact duplicate pair is tolerated and stored once.
func NewMatching(n1, n2 int, seeds []graph.Pair) (*Matching, error) {
	m := &Matching{
		left:  make([]graph.NodeID, n1),
		right: make([]graph.NodeID, n2),
	}
	for i := range m.left {
		m.left[i] = NoMatch
	}
	for i := range m.right {
		m.right[i] = NoMatch
	}
	for _, p := range seeds {
		if int(p.Left) >= n1 {
			return nil, fmt.Errorf("core: seed %v: left node out of range (n1=%d)", p, n1)
		}
		if int(p.Right) >= n2 {
			return nil, fmt.Errorf("core: seed %v: right node out of range (n2=%d)", p, n2)
		}
		if cur := m.left[p.Left]; cur != NoMatch {
			if cur == p.Right {
				continue // exact duplicate
			}
			return nil, fmt.Errorf("core: conflicting seeds for left node %d: %d and %d", p.Left, cur, p.Right)
		}
		if cur := m.right[p.Right]; cur != NoMatch {
			return nil, fmt.Errorf("core: conflicting seeds for right node %d: %d and %d", p.Right, cur, p.Left)
		}
		m.add(p)
	}
	m.seeds = len(m.pairs)
	return m, nil
}

func (m *Matching) add(p graph.Pair) {
	m.left[p.Left] = p.Right
	m.right[p.Right] = p.Left
	m.pairs = append(m.pairs, p)
}

// Add links p.Left to p.Right, rejecting out-of-range or already-matched
// endpoints. It is the safe entry point for alternative engines (the
// MapReduce formulation) that drive a Matching from outside this package.
func (m *Matching) Add(p graph.Pair) error {
	if int(p.Left) >= len(m.left) || int(p.Right) >= len(m.right) {
		return fmt.Errorf("core: Add %v: node out of range", p)
	}
	if m.left[p.Left] != NoMatch {
		return fmt.Errorf("core: Add %v: left node already matched to %d", p, m.left[p.Left])
	}
	if m.right[p.Right] != NoMatch {
		return fmt.Errorf("core: Add %v: right node already matched to %d", p, m.right[p.Right])
	}
	m.add(p)
	return nil
}

// LeftMatch returns v1's partner in G2, or NoMatch.
func (m *Matching) LeftMatch(v1 graph.NodeID) graph.NodeID { return m.left[v1] }

// RightMatch returns v2's partner in G1, or NoMatch.
func (m *Matching) RightMatch(v2 graph.NodeID) graph.NodeID { return m.right[v2] }

// Len returns the number of linked pairs, seeds included.
func (m *Matching) Len() int { return len(m.pairs) }

// SeedCount returns how many of the pairs are original seeds.
func (m *Matching) SeedCount() int { return m.seeds }

// Pairs returns all linked pairs in insertion order (seeds first). The
// returned slice is a copy.
func (m *Matching) Pairs() []graph.Pair {
	out := make([]graph.Pair, len(m.pairs))
	copy(out, m.pairs)
	return out
}

// NewPairs returns the discovered pairs (everything after the seeds).
func (m *Matching) NewPairs() []graph.Pair {
	out := make([]graph.Pair, len(m.pairs)-m.seeds)
	copy(out, m.pairs[m.seeds:])
	return out
}

// validateInjective is a test hook: it checks that left and right arrays
// describe the same injective mapping as pairs.
func (m *Matching) validateInjective() error {
	seenL := map[graph.NodeID]bool{}
	seenR := map[graph.NodeID]bool{}
	for _, p := range m.pairs {
		if seenL[p.Left] || seenR[p.Right] {
			return fmt.Errorf("core: duplicate endpoint in pair %v", p)
		}
		seenL[p.Left] = true
		seenR[p.Right] = true
		if m.left[p.Left] != p.Right || m.right[p.Right] != p.Left {
			return fmt.Errorf("core: arrays disagree with pair %v", p)
		}
	}
	nl, nr := 0, 0
	for _, v := range m.left {
		if v != NoMatch {
			nl++
		}
	}
	for _, v := range m.right {
		if v != NoMatch {
			nr++
		}
	}
	if nl != len(m.pairs) || nr != len(m.pairs) {
		return fmt.Errorf("core: array population %d/%d != pairs %d", nl, nr, len(m.pairs))
	}
	return nil
}
