package core

import (
	"fmt"

	"github.com/sociograph/reconcile/internal/graph"
)

// Session is the incremental form of Reconcile for production pipelines:
// networks are reconciled once, then new trusted links trickle in (users
// keep connecting their accounts) and the matching is extended without
// recomputing from scratch. A Session holds the evolving link set and its
// bookkeeping; each Run performs full bucket sweeps, so results after
// AddSeeds+Run are exactly what a fresh Reconcile with the union of seeds
// would eventually find (the algorithm is monotone: links are never
// retracted).
type Session struct {
	g1, g2 *graph.Graph
	opts   Options
	m      *Matching
	lc     *linkedCounts
	phases []PhaseStat
	sweeps int
}

// NewSession prepares an incremental matcher over the two networks with the
// initial seed links. The Iterations option is ignored; sweeps are driven
// by Run.
func NewSession(g1, g2 *graph.Graph, seeds []graph.Pair, opts Options) (*Session, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if g1 == nil || g2 == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	m, err := NewMatching(g1.NumNodes(), g2.NumNodes(), seeds)
	if err != nil {
		return nil, err
	}
	return &Session{
		g1:   g1,
		g2:   g2,
		opts: opts,
		m:    m,
		lc:   newLinkedCounts(g1, g2, m),
	}, nil
}

// AddSeeds injects newly learned trusted links. A seed whose endpoints are
// already linked to each other is ignored; a seed conflicting with an
// existing link (either endpoint linked elsewhere) is rejected with an
// error and no partial state change for that seed.
func (s *Session) AddSeeds(seeds []graph.Pair) error {
	for _, p := range seeds {
		if int(p.Left) < len(s.m.left) && s.m.left[p.Left] == p.Right {
			continue // already known
		}
		if err := s.m.Add(p); err != nil {
			return err
		}
		s.lc.addPair(s.g1, s.g2, p)
	}
	return nil
}

// Run performs the given number of full bucket sweeps and returns how many
// new links were found.
func (s *Session) Run(sweeps int) int {
	found := 0
	buckets := s.opts.buckets(s.g1, s.g2)
	for i := 0; i < sweeps; i++ {
		s.sweeps++
		for _, minDeg := range buckets {
			matched := runBucket(s.g1, s.g2, s.m, s.lc, minDeg, s.opts)
			found += matched
			s.phases = append(s.phases, PhaseStat{
				Iteration: s.sweeps,
				MinDegree: minDeg,
				Matched:   matched,
				TotalL:    s.m.Len(),
			})
		}
	}
	return found
}

// RunUntilStable sweeps until a full sweep finds nothing new (or maxSweeps
// is reached), returning the total number of links found.
func (s *Session) RunUntilStable(maxSweeps int) int {
	total := 0
	for i := 0; i < maxSweeps; i++ {
		found := s.Run(1)
		total += found
		if found == 0 {
			break
		}
	}
	return total
}

// Len returns the current number of links, seeds included.
func (s *Session) Len() int { return s.m.Len() }

// Result snapshots the session as a Result (same layout as Reconcile's).
func (s *Session) Result() *Result {
	return &Result{
		Pairs:    s.m.Pairs(),
		NewPairs: s.m.NewPairs(),
		Seeds:    s.m.SeedCount(),
		Phases:   append([]PhaseStat(nil), s.phases...),
	}
}
