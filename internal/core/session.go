package core

import (
	"context"
	"fmt"

	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/trace"
)

// PhaseEvent describes one completed bucket pass. Sessions deliver events to
// the progress hook (SetProgress) synchronously as the run advances, so a
// caller can observe phase, bucket and match counts live — and cancel the
// run's context from inside the hook if it has seen enough.
type PhaseEvent struct {
	Iteration  int // 1-based sweep number, cumulative across Runs
	Bucket     int // 1-based bucket index within the sweep
	Buckets    int // buckets per sweep under the current schedule
	MinDegree  int // the 2^j degree floor of this pass
	Matched    int // pairs accepted in this pass
	TotalLinks int // |L| after the pass, seeds included
}

// Session is the incremental form of Reconcile for production pipelines:
// networks are reconciled once, then new trusted links trickle in (users
// keep connecting their accounts) and the matching is extended without
// recomputing from scratch. A Session holds the evolving link set and its
// bookkeeping; each Run performs full bucket sweeps, so results after
// AddSeeds+Run are exactly what a fresh Reconcile with the union of seeds
// would eventually find (the algorithm is monotone: links are never
// retracted).
type Session struct {
	g1, g2 *graph.Graph
	opts   Options
	m      *Matching
	lc     *linkedCounts
	// fr is the frontier engine's persistent scheduling state: non-nil for
	// EngineFrontier always, and for EngineHybrid once the session has
	// switched regimes and run a bucket on the frontier engine.
	fr     *frontierState
	phases []PhaseStat
	// dropped aggregates the phase entries evicted from the bounded log
	// (see evictPhases); phases plus dropped is the complete history.
	dropped PhaseTotals
	sweeps  int
	pos     int // next bucket index within the current sweep; 0 = sweep boundary
	// sweepMatched counts the pairs committed in the current sweep — the
	// hybrid engine's regime signal, reset when a sweep is claimed.
	sweepMatched int
	// hybridSwitched records EngineHybrid's one-way handoff decision; the
	// frontier state itself is built lazily at the next bucket.
	hybridSwitched bool
	progress       func(PhaseEvent)
	// tracer receives execution spans (sweeps, buckets, handoffs, seed
	// ingests) when installed. Like progress it is not part of exported
	// state: a restored session gets its tracer re-installed by the caller.
	// The session never reads a clock — all timestamps come from the
	// recorder, whose clock is injectable, so determinism is untouched.
	tracer *trace.Recorder
	// sweepSpan is the open span of the sweep currently running. It is
	// begun lazily at the first bucket that runs under the sweep — which,
	// after a mid-sweep restore, is not the sweep-claim boundary — so a
	// resumed sweep gets exactly one span covering its post-restore part
	// and sweeps are never double-counted across a kill/resume.
	sweepSpan *trace.Active
}

// NewSession prepares an incremental matcher over the two networks with the
// initial seed links. The Iterations option is ignored; sweeps are driven
// by Run.
func NewSession(g1, g2 *graph.Graph, seeds []graph.Pair, opts Options) (*Session, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if g1 == nil || g2 == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	m, err := NewMatching(g1.NumNodes(), g2.NumNodes(), seeds)
	if err != nil {
		return nil, err
	}
	s := &Session{
		g1:   g1,
		g2:   g2,
		opts: opts,
		m:    m,
		lc:   newLinkedCounts(g1, g2, m),
	}
	if opts.Engine == EngineFrontier {
		s.fr = newFrontierState(g1, g2, m, s.lc, opts)
	}
	return s, nil
}

// AddSeeds injects newly learned trusted links. A seed whose endpoints are
// already linked to each other is ignored; a seed conflicting with an
// existing link (either endpoint linked elsewhere) is rejected with an
// error and no partial state change for that seed.
func (s *Session) AddSeeds(seeds []graph.Pair) error {
	if s.tracer != nil {
		sp := s.tracer.Begin(trace.KindSeedIngest, fmt.Sprintf("%d seeds", len(seeds)))
		defer sp.End()
	}
	for _, p := range seeds {
		if int(p.Left) < len(s.m.left) && s.m.left[p.Left] == p.Right {
			continue // already known
		}
		if err := s.m.Add(p); err != nil {
			return err
		}
		s.lc.addPair(s.g1, s.g2, p)
		if s.fr != nil {
			s.fr.invalidatePair(s.g1, s.g2, s.m, s.lc, p)
		}
	}
	return nil
}

// SetProgress installs a hook called synchronously after every bucket pass.
// A nil fn removes the hook. The hook must not call back into the Session.
func (s *Session) SetProgress(fn func(PhaseEvent)) { s.progress = fn }

// SetTracer installs a span recorder observing the session's execution
// (sweeps, bucket phases, hybrid handoff, seed ingests). A nil tr removes
// it. Like the progress hook, the tracer does not serialize with session
// state — restore paths re-install it.
func (s *Session) SetTracer(tr *trace.Recorder) { s.tracer = tr }

// Run performs the given number of full bucket sweeps and returns how many
// new links were found.
func (s *Session) Run(sweeps int) int {
	//lint:allow ctx-propagation deprecated pre-context wrapper kept for API compatibility and pinned by equivalence tests; new callers use RunContext
	found, _ := s.RunContext(context.Background(), sweeps)
	return found
}

// Sweeps returns the number of sweeps started so far (a sweep interrupted by
// cancellation counts: its remaining buckets run, at no extra sweep cost, at
// the start of the next Run). Iterations - Sweeps is therefore the number of
// sweeps still owed on the original schedule.
func (s *Session) Sweeps() int { return s.sweeps }

// Graphs returns the two networks the session reconciles. The graphs are
// immutable and shared, not copied.
func (s *Session) Graphs() (g1, g2 *graph.Graph) { return s.g1, s.g2 }

// RunContext performs the given number of full bucket sweeps, honoring
// cancellation and deadlines: the context is checked at every bucket-phase
// boundary, and on expiry the run stops there with ctx.Err(). Links found
// before the stop are kept — the session remains valid, Result reflects the
// partial progress, and a later Run picks up exactly where this one stopped:
// a sweep interrupted mid-schedule is completed first (its remaining buckets
// do not count toward the new call's sweep budget), so an interrupted
// schedule replays bucket for bucket as if it had never stopped. RunContext
// with sweeps <= 0 runs nothing beyond that completion.
func (s *Session) RunContext(ctx context.Context, sweeps int) (int, error) {
	found := 0
	buckets := s.opts.buckets(s.g1, s.g2)
	remaining := sweeps
	for remaining > 0 || s.pos > 0 {
		// Check before every bucket — in particular before claiming a sweep
		// number: a cancelled run must not consume an iteration label no
		// bucket ever ran under.
		if err := ctx.Err(); err != nil {
			return found, err
		}
		if s.pos == 0 {
			s.sweeps++
			remaining--
			s.sweepMatched = 0
		}
		if s.tracer != nil && s.sweepSpan == nil {
			// Begun at the first bucket that runs under this sweep — at the
			// claim above normally, mid-schedule after a restore — so every
			// sweep gets exactly one span even across kill/resume.
			s.tracer.SetSweep(s.sweeps)
			s.sweepSpan = s.tracer.Begin(trace.KindSweep, fmt.Sprintf("sweep %d", s.sweeps))
		}
		s.ensureHybridFrontier()
		bi := s.pos
		minDeg := buckets[bi]
		var bsp *trace.Active
		if s.tracer != nil {
			bsp = s.tracer.Begin(trace.KindBucket, "")
		}
		var matched int
		if s.fr != nil {
			matched = s.fr.runBucket(s.g1, s.g2, s.m, s.lc, bi, minDeg, s.opts)
		} else {
			matched = runBucket(s.g1, s.g2, s.m, s.lc, minDeg, s.opts)
		}
		if bsp != nil {
			bsp.SetDetail(fmt.Sprintf("b%d/%d min %d matched %d", bi+1, len(buckets), minDeg, matched))
			bsp.End()
		}
		s.pos = bi + 1
		if s.pos == len(buckets) {
			s.pos = 0
		}
		found += matched
		s.sweepMatched += matched
		s.phases = append(s.phases, PhaseStat{
			Iteration: s.sweeps,
			MinDegree: minDeg,
			Matched:   matched,
			TotalL:    s.m.Len(),
		})
		if s.pos == 0 {
			s.endSweep()
			s.sweepSpan.End()
			s.sweepSpan = nil
		}
		if s.progress != nil {
			s.progress(PhaseEvent{
				Iteration:  s.sweeps,
				Bucket:     bi + 1,
				Buckets:    len(buckets),
				MinDegree:  minDeg,
				Matched:    matched,
				TotalLinks: s.m.Len(),
			})
		}
	}
	return found, nil
}

// RunUntilStable sweeps until a full sweep finds nothing new (or maxSweeps
// is reached), returning the total number of links found.
func (s *Session) RunUntilStable(maxSweeps int) int {
	//lint:allow ctx-propagation deprecated pre-context wrapper kept for API compatibility and pinned by equivalence tests; new callers use RunUntilStableContext
	total, _ := s.RunUntilStableContext(context.Background(), maxSweeps)
	return total
}

// RunUntilStableContext is RunUntilStable with cancellation: it sweeps until
// a full sweep finds nothing new, maxSweeps is reached, or the context ends
// (checked at bucket boundaries, like RunContext). A sweep a previous run
// left interrupted is completed first, outside the maxSweeps budget and the
// stability check — its links belong to a sweep that already counted, so
// only whole fresh sweeps decide convergence.
func (s *Session) RunUntilStableContext(ctx context.Context, maxSweeps int) (int, error) {
	total, err := s.RunContext(ctx, 0) // finish any interrupted sweep
	if err != nil {
		return total, err
	}
	for i := 0; i < maxSweeps; i++ {
		found, err := s.RunContext(ctx, 1)
		total += found
		if err != nil {
			return total, err
		}
		if found == 0 {
			break
		}
	}
	return total, nil
}

// Len returns the current number of links, seeds included.
func (s *Session) Len() int { return s.m.Len() }

// Result snapshots the session as a Result (same layout as Reconcile's).
func (s *Session) Result() *Result {
	t := s.dropped
	t.Buckets += len(s.phases)
	for _, ph := range s.phases {
		t.Matched += ph.Matched
	}
	return &Result{
		Pairs:    s.m.Pairs(),
		NewPairs: s.m.NewPairs(),
		Seeds:    s.m.SeedCount(),
		Phases:   append([]PhaseStat(nil), s.phases...),
		Totals:   t,
	}
}
