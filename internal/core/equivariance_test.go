package core

import (
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// User-Matching depends only on graph structure, so it must be equivariant
// under node relabeling: permuting G2's node IDs (and the seeds' right
// endpoints accordingly) must permute the output pairs the same way.
// This is the formal statement of "the matcher can't cheat by reading IDs"
// — except for the documented TieLowestID policy, which is ID-dependent by
// design, so the test runs under TieReject.
func TestReconcileEquivariantUnderRelabeling(t *testing.T) {
	r := xrand.New(31)
	g1, g2, seeds := testInstance(31, 400)
	n2 := g2.NumNodes()

	permInts := r.Perm(n2)
	perm := make([]graph.NodeID, n2)
	for i, p := range permInts {
		perm[i] = graph.NodeID(p)
	}
	g2p := graph.Relabel(g2, perm)
	seedsP := make([]graph.Pair, len(seeds))
	for i, s := range seeds {
		seedsP[i] = graph.Pair{Left: s.Left, Right: perm[s.Right]}
	}

	opts := DefaultOptions()
	base, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	permuted, err := Reconcile(g1, g2p, seedsP, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Pairs) != len(permuted.Pairs) {
		t.Fatalf("pair counts differ: %d vs %d", len(base.Pairs), len(permuted.Pairs))
	}
	want := make(map[graph.Pair]bool, len(base.Pairs))
	for _, p := range base.Pairs {
		want[graph.Pair{Left: p.Left, Right: perm[p.Right]}] = true
	}
	for _, p := range permuted.Pairs {
		if !want[p] {
			t.Fatalf("pair %v not the image of a base pair", p)
		}
	}
}

// TestFrontierEquivariantUnderRelabeling is the node-relabeling metamorphic
// property for the frontier engine: permuting BOTH sides' node IDs (and the
// seeds accordingly) must permute the output pairs the same way. The frontier
// caches proposals by node ID and drains its worklists in insertion order, so
// this pins that none of that bookkeeping leaks IDs into the matching
// semantics. Run under TieReject (TieLowestID is ID-dependent by design).
func TestFrontierEquivariantUnderRelabeling(t *testing.T) {
	for _, seed := range []uint64{31, 77} {
		r := xrand.New(seed ^ 0xfeed)
		g1, g2, seeds := testInstance(seed, 350)
		n1, n2 := g1.NumNodes(), g2.NumNodes()

		perm1 := make([]graph.NodeID, n1)
		for i, p := range r.Perm(n1) {
			perm1[i] = graph.NodeID(p)
		}
		perm2 := make([]graph.NodeID, n2)
		for i, p := range r.Perm(n2) {
			perm2[i] = graph.NodeID(p)
		}
		g1p := graph.Relabel(g1, perm1)
		g2p := graph.Relabel(g2, perm2)
		seedsP := make([]graph.Pair, len(seeds))
		for i, s := range seeds {
			seedsP[i] = graph.Pair{Left: perm1[s.Left], Right: perm2[s.Right]}
		}

		opts := DefaultOptions()
		opts.Engine = EngineFrontier
		base, err := Reconcile(g1, g2, seeds, opts)
		if err != nil {
			t.Fatal(err)
		}
		permuted, err := Reconcile(g1p, g2p, seedsP, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(base.Pairs) != len(permuted.Pairs) {
			t.Fatalf("seed %d: pair counts differ: %d vs %d", seed, len(base.Pairs), len(permuted.Pairs))
		}
		want := make(map[graph.Pair]bool, len(base.Pairs))
		for _, p := range base.Pairs {
			want[graph.Pair{Left: perm1[p.Left], Right: perm2[p.Right]}] = true
		}
		for _, p := range permuted.Pairs {
			if !want[p] {
				t.Fatalf("seed %d: pair %v not the image of a base pair", seed, p)
			}
		}
		// And the relabeled run itself must still be bit-identical to the
		// sequential engine on the relabeled instance.
		opts.Engine = EngineSequential
		seqP, err := Reconcile(g1p, g2p, seedsP, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsIdentical(seqP, permuted) {
			t.Fatalf("seed %d: frontier diverges from sequential on relabeled instance", seed)
		}
	}
}

func TestMatchingAdd(t *testing.T) {
	m, err := NewMatching(3, 3, []graph.Pair{{Left: 0, Right: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(graph.Pair{Left: 1, Right: 2}); err != nil {
		t.Fatal(err)
	}
	if m.LeftMatch(1) != 2 || m.RightMatch(2) != 1 {
		t.Fatal("Add did not link")
	}
	if err := m.Add(graph.Pair{Left: 1, Right: 1}); err == nil {
		t.Error("re-adding matched left accepted")
	}
	if err := m.Add(graph.Pair{Left: 0, Right: 1}); err == nil {
		t.Error("re-adding matched left (seed) accepted")
	}
	if err := m.Add(graph.Pair{Left: 2, Right: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(graph.Pair{Left: 5, Right: 0}); err == nil {
		t.Error("out-of-range left accepted")
	}
	if err := m.Add(graph.Pair{Left: 0, Right: 5}); err == nil {
		t.Error("out-of-range right accepted")
	}
	if m.Len() != 3 || m.SeedCount() != 1 {
		t.Fatalf("len=%d seeds=%d", m.Len(), m.SeedCount())
	}
	if got := m.NewPairs(); len(got) != 2 {
		t.Fatalf("new pairs = %v", got)
	}
	if err := m.validateInjective(); err != nil {
		t.Fatal(err)
	}
}
