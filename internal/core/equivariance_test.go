package core

import (
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/xrand"
)

// User-Matching depends only on graph structure, so it must be equivariant
// under node relabeling: permuting G2's node IDs (and the seeds' right
// endpoints accordingly) must permute the output pairs the same way.
// This is the formal statement of "the matcher can't cheat by reading IDs"
// — except for the documented TieLowestID policy, which is ID-dependent by
// design, so the test runs under TieReject.
func TestReconcileEquivariantUnderRelabeling(t *testing.T) {
	r := xrand.New(31)
	g1, g2, seeds := testInstance(31, 400)
	n2 := g2.NumNodes()

	permInts := r.Perm(n2)
	perm := make([]graph.NodeID, n2)
	for i, p := range permInts {
		perm[i] = graph.NodeID(p)
	}
	g2p := graph.Relabel(g2, perm)
	seedsP := make([]graph.Pair, len(seeds))
	for i, s := range seeds {
		seedsP[i] = graph.Pair{Left: s.Left, Right: perm[s.Right]}
	}

	opts := DefaultOptions()
	base, err := Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	permuted, err := Reconcile(g1, g2p, seedsP, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Pairs) != len(permuted.Pairs) {
		t.Fatalf("pair counts differ: %d vs %d", len(base.Pairs), len(permuted.Pairs))
	}
	want := make(map[graph.Pair]bool, len(base.Pairs))
	for _, p := range base.Pairs {
		want[graph.Pair{Left: p.Left, Right: perm[p.Right]}] = true
	}
	for _, p := range permuted.Pairs {
		if !want[p] {
			t.Fatalf("pair %v not the image of a base pair", p)
		}
	}
}

func TestMatchingAdd(t *testing.T) {
	m, err := NewMatching(3, 3, []graph.Pair{{Left: 0, Right: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(graph.Pair{Left: 1, Right: 2}); err != nil {
		t.Fatal(err)
	}
	if m.LeftMatch(1) != 2 || m.RightMatch(2) != 1 {
		t.Fatal("Add did not link")
	}
	if err := m.Add(graph.Pair{Left: 1, Right: 1}); err == nil {
		t.Error("re-adding matched left accepted")
	}
	if err := m.Add(graph.Pair{Left: 0, Right: 1}); err == nil {
		t.Error("re-adding matched left (seed) accepted")
	}
	if err := m.Add(graph.Pair{Left: 2, Right: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(graph.Pair{Left: 5, Right: 0}); err == nil {
		t.Error("out-of-range left accepted")
	}
	if err := m.Add(graph.Pair{Left: 0, Right: 5}); err == nil {
		t.Error("out-of-range right accepted")
	}
	if m.Len() != 3 || m.SeedCount() != 1 {
		t.Fatalf("len=%d seeds=%d", m.Len(), m.SeedCount())
	}
	if got := m.NewPairs(); len(got) != 2 {
		t.Fatalf("new pairs = %v", got)
	}
	if err := m.validateInjective(); err != nil {
		t.Fatal(err)
	}
}
