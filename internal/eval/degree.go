package eval

import (
	"fmt"
	"strings"

	"github.com/sociograph/reconcile/internal/graph"
)

// DegreeBucket is one row of a Figure-4 style curve: precision and recall
// restricted to nodes whose degree (in the first copy) falls in [Lo, Hi].
type DegreeBucket struct {
	Lo, Hi    int
	Total     int // identifiable nodes in the bucket
	Seeds     int
	Good, Bad int
}

// Precision within the bucket (new links only).
func (b DegreeBucket) Precision() float64 {
	if b.Good+b.Bad == 0 {
		return 1
	}
	return float64(b.Good) / float64(b.Good+b.Bad)
}

// Recall within the bucket, seeds included.
func (b DegreeBucket) Recall() float64 {
	if b.Total == 0 {
		return 1
	}
	got := b.Good + b.Seeds
	if got > b.Total {
		got = b.Total
	}
	return float64(got) / float64(b.Total)
}

// DegreeCurve computes precision/recall per power-of-two degree bucket
// (1, 2-3, 4-7, 8-15, ...), reproducing the Figure 4 analysis. Degrees are
// taken in g1; nodes identifiable per Identifiable's criterion populate the
// buckets' totals.
func DegreeCurve(g1, g2 *graph.Graph, pairs []graph.Pair, nSeeds int, truth Truth) []DegreeBucket {
	maxDeg := g1.MaxDegree()
	nBuckets := 1
	for lo := 1; lo <= maxDeg; lo *= 2 {
		nBuckets++
	}
	buckets := make([]DegreeBucket, nBuckets)
	for i := range buckets {
		if i == 0 {
			buckets[i] = DegreeBucket{Lo: 0, Hi: 0}
			continue
		}
		lo := 1 << (i - 1)
		buckets[i] = DegreeBucket{Lo: lo, Hi: 2*lo - 1}
	}
	idx := func(d int) int {
		if d <= 0 {
			return 0
		}
		i := 1
		for lo := 1; lo*2 <= d; lo *= 2 {
			i++
		}
		return i
	}
	for l, r := range truth {
		if int(l) < g1.NumNodes() && int(r) < g2.NumNodes() &&
			g1.Degree(l) > 0 && g2.Degree(r) > 0 {
			buckets[idx(g1.Degree(l))].Total++
		}
	}
	for i, p := range pairs {
		if int(p.Left) >= g1.NumNodes() {
			continue
		}
		b := &buckets[idx(g1.Degree(p.Left))]
		if i < nSeeds {
			b.Seeds++
			continue
		}
		if want, ok := truth[p.Left]; ok && want == p.Right {
			b.Good++
		} else {
			b.Bad++
		}
	}
	return buckets
}

// FormatDegreeCurve renders the curve as an aligned text table.
func FormatDegreeCurve(buckets []DegreeBucket) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%12s %8s %8s %6s %6s %10s %8s\n", "degree", "nodes", "seeds", "good", "bad", "precision", "recall")
	for _, b := range buckets {
		if b.Total == 0 && b.Good+b.Bad+b.Seeds == 0 {
			continue
		}
		rng := fmt.Sprintf("%d-%d", b.Lo, b.Hi)
		if b.Lo == b.Hi {
			rng = fmt.Sprintf("%d", b.Lo)
		}
		fmt.Fprintf(&sb, "%12s %8d %8d %6d %6d %9.1f%% %7.1f%%\n",
			rng, b.Total, b.Seeds, b.Good, b.Bad, 100*b.Precision(), 100*b.Recall())
	}
	return sb.String()
}
