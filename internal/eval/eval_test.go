package eval

import (
	"math"
	"strings"
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
)

func TestEvaluateCounts(t *testing.T) {
	truth := IdentityTruth(10)
	pairs := []graph.Pair{
		{Left: 0, Right: 0}, // seed
		{Left: 1, Right: 1}, // seed
		{Left: 2, Right: 2}, // good
		{Left: 3, Right: 4}, // bad
		{Left: 5, Right: 5}, // good
	}
	c := Evaluate(pairs, 2, truth)
	if c.Seeds != 2 || c.Good != 2 || c.Bad != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if math.Abs(c.Precision()-2.0/3.0) > 1e-9 {
		t.Fatalf("precision = %v", c.Precision())
	}
	if math.Abs(c.ErrorRate()-1.0/3.0) > 1e-9 {
		t.Fatalf("error rate = %v", c.ErrorRate())
	}
	if !strings.Contains(c.String(), "good=2") {
		t.Fatalf("String() = %q", c.String())
	}
}

func TestEvaluateUnknownLeftIsBad(t *testing.T) {
	// A match whose left node has no true counterpart (sybil, language-
	// specific article) counts as bad.
	truth := Truth{0: 0}
	pairs := []graph.Pair{{Left: 5, Right: 5}}
	c := Evaluate(pairs, 0, truth)
	if c.Bad != 1 || c.Good != 0 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestPrecisionEmpty(t *testing.T) {
	c := Counts{Seeds: 5}
	if c.Precision() != 1 || c.ErrorRate() != 0 {
		t.Fatalf("empty counts precision = %v", c.Precision())
	}
}

func TestIdentifiable(t *testing.T) {
	// g1: edge 0-1; node 2 isolated. g2: edge 0-1, 2 isolated.
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	truth := IdentityTruth(3)
	if got := Identifiable(g, g, truth); got != 2 {
		t.Fatalf("identifiable = %d, want 2", got)
	}
	// Out-of-range truth entries are skipped.
	truth[graph.NodeID(9)] = 9
	if got := Identifiable(g, g, truth); got != 2 {
		t.Fatalf("identifiable with oob = %d, want 2", got)
	}
}

func TestRecall(t *testing.T) {
	c := Counts{Seeds: 10, Good: 40}
	if got := Recall(c, 100); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("recall = %v", got)
	}
	if got := Recall(c, 0); got != 1 {
		t.Fatalf("recall with zero identifiable = %v", got)
	}
	// Capped at 1 even if seeds exceed the identifiable population.
	if got := Recall(Counts{Seeds: 200}, 100); got != 1 {
		t.Fatalf("capped recall = %v", got)
	}
}

func TestFromPairs(t *testing.T) {
	tr := FromPairs([]graph.Pair{{Left: 1, Right: 2}, {Left: 3, Right: 4}})
	if tr[1] != 2 || tr[3] != 4 || len(tr) != 2 {
		t.Fatalf("truth = %v", tr)
	}
}

func TestDegreeCurve(t *testing.T) {
	// Star: hub 0 (degree 4), leaves degree 1.
	g := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}})
	truth := IdentityTruth(5)
	pairs := []graph.Pair{
		{Left: 0, Right: 0}, // seed (degree 4)
		{Left: 1, Right: 1}, // good (degree 1)
		{Left: 2, Right: 3}, // bad (degree 1)
	}
	buckets := DegreeCurve(g, g, pairs, 1, truth)
	// Bucket for degree 1 is index 1 (lo=1, hi=1).
	var deg1, deg4 *DegreeBucket
	for i := range buckets {
		if buckets[i].Lo == 1 && buckets[i].Hi == 1 {
			deg1 = &buckets[i]
		}
		if buckets[i].Lo == 4 {
			deg4 = &buckets[i]
		}
	}
	if deg1 == nil || deg4 == nil {
		t.Fatalf("buckets missing: %+v", buckets)
	}
	if deg1.Total != 4 || deg1.Good != 1 || deg1.Bad != 1 {
		t.Fatalf("deg1 bucket = %+v", deg1)
	}
	if deg4.Total != 1 || deg4.Seeds != 1 {
		t.Fatalf("deg4 bucket = %+v", deg4)
	}
	if math.Abs(deg1.Precision()-0.5) > 1e-9 {
		t.Fatalf("deg1 precision = %v", deg1.Precision())
	}
	if math.Abs(deg1.Recall()-0.25) > 1e-9 {
		t.Fatalf("deg1 recall = %v", deg1.Recall())
	}
	if deg4.Recall() != 1 {
		t.Fatalf("deg4 recall = %v", deg4.Recall())
	}

	out := FormatDegreeCurve(buckets)
	if !strings.Contains(out, "degree") || !strings.Contains(out, "4-7") {
		t.Fatalf("formatted curve:\n%s", out)
	}
}

func TestDegreeBucketEmptyDefaults(t *testing.T) {
	b := DegreeBucket{}
	if b.Precision() != 1 || b.Recall() != 1 {
		t.Fatal("empty bucket should default to perfect scores")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "Results for Foo",
		Header: []string{"Pr", "Good", "Bad"},
	}
	tb.AddRow("10%", 1234, 5)
	tb.AddRow("5%", 99, 0.5)
	out := tb.String()
	if !strings.Contains(out, "Results for Foo") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "Good") || !strings.Contains(out, "1234") {
		t.Fatalf("missing cells:\n%s", out)
	}
	if !strings.Contains(out, "0.500") {
		t.Fatalf("float formatting:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
}

func TestTableRowWidthPanic(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("row width mismatch did not panic")
		}
	}()
	tb.AddRow(1)
}

func TestTableNoHeader(t *testing.T) {
	tb := &Table{}
	tb.AddRow("x", 1)
	if !strings.Contains(tb.String(), "x") {
		t.Fatal("headerless table should render rows")
	}
}
