// Package eval provides the evaluation machinery of Section 5: good/bad
// match counts against ground truth, precision and recall, the per-degree
// curves of Figure 4, and text rendering of paper-style result tables.
package eval

import (
	"fmt"

	"github.com/sociograph/reconcile/internal/graph"
)

// Truth is the ground-truth correspondence from G1 nodes to G2 nodes. Nodes
// absent from the map have no true counterpart (e.g. language-specific
// Wikipedia articles, sybil clones); matching them is always an error.
type Truth map[graph.NodeID]graph.NodeID

// IdentityTruth returns the identity correspondence over n nodes — the
// ground truth whenever both copies inherit the parent graph's numbering.
func IdentityTruth(n int) Truth {
	t := make(Truth, n)
	for i := 0; i < n; i++ {
		t[graph.NodeID(i)] = graph.NodeID(i)
	}
	return t
}

// FromPairs builds a Truth from an explicit pair list.
func FromPairs(ps []graph.Pair) Truth {
	t := make(Truth, len(ps))
	for _, p := range ps {
		t[p.Left] = p.Right
	}
	return t
}

// Counts aggregates a matching evaluation, in the Good/Bad vocabulary of the
// paper's tables. Only non-seed links are judged (the paper evaluates newly
// found links; seeds are given).
type Counts struct {
	Seeds int // seed links (not judged)
	Good  int // new links agreeing with the truth
	Bad   int // new links contradicting it (or matching an unmatchable node)
}

// Precision returns Good/(Good+Bad); 1 when nothing was judged.
func (c Counts) Precision() float64 {
	if c.Good+c.Bad == 0 {
		return 1
	}
	return float64(c.Good) / float64(c.Good+c.Bad)
}

// ErrorRate returns Bad/(Good+Bad); 0 when nothing was judged.
func (c Counts) ErrorRate() float64 { return 1 - c.Precision() }

func (c Counts) String() string {
	return fmt.Sprintf("good=%d bad=%d (precision %.2f%%, %d seeds)", c.Good, c.Bad, 100*c.Precision(), c.Seeds)
}

// Evaluate judges the links produced by a run: pairs must contain all links
// with the first nSeeds entries being the seeds (the layout of
// core.Result.Pairs).
func Evaluate(pairs []graph.Pair, nSeeds int, truth Truth) Counts {
	c := Counts{Seeds: nSeeds}
	for _, p := range pairs[nSeeds:] {
		if want, ok := truth[p.Left]; ok && want == p.Right {
			c.Good++
		} else {
			c.Bad++
		}
	}
	return c
}

// Identifiable counts the nodes that structure alone can ever identify: the
// nodes with degree >= 1 in both copies (footnote 4 of the paper). Recall
// should be reported against this population, not all of V.
func Identifiable(g1, g2 *graph.Graph, truth Truth) int {
	n := 0
	for l, r := range truth {
		if int(l) < g1.NumNodes() && int(r) < g2.NumNodes() &&
			g1.Degree(l) > 0 && g2.Degree(r) > 0 {
			n++
		}
	}
	return n
}

// Recall returns (Good + Seeds counted in the identifiable set) over the
// identifiable population. The paper's figures report the fraction of
// recoverable nodes found, seeds included.
func Recall(c Counts, identifiable int) float64 {
	if identifiable == 0 {
		return 1
	}
	got := c.Good + c.Seeds
	if got > identifiable {
		got = identifiable
	}
	return float64(got) / float64(identifiable)
}

// LinkedRecall returns the exact fraction of identifiable nodes (degree >= 1
// in both copies, per Identifiable) whose true pair appears in pairs — the
// precise form of the recall the figures report, unaffected by seeds that
// land on unidentifiable nodes.
func LinkedRecall(pairs []graph.Pair, truth Truth, g1, g2 *graph.Graph) float64 {
	ident := Identifiable(g1, g2, truth)
	if ident == 0 {
		return 1
	}
	got := 0
	for _, p := range pairs {
		want, ok := truth[p.Left]
		if !ok || want != p.Right {
			continue
		}
		if int(p.Left) < g1.NumNodes() && int(p.Right) < g2.NumNodes() &&
			g1.Degree(p.Left) > 0 && g2.Degree(p.Right) > 0 {
			got++
		}
	}
	return float64(got) / float64(ident)
}
