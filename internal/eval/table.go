package eval

import (
	"fmt"
	"strings"
)

// Table renders paper-style experiment tables as aligned text: a header row
// and any number of data rows. Cells are stringified with %v.
type Table struct {
	Title  string
	Header []string
	Rows   [][]any
}

// AddRow appends a data row; it must match the header width.
func (t *Table) AddRow(cells ...any) {
	if len(t.Header) != 0 && len(cells) != len(t.Header) {
		panic(fmt.Sprintf("eval: row width %d != header width %d", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	cell := func(v any) string {
		switch x := v.(type) {
		case float64:
			return fmt.Sprintf("%.3f", x)
		default:
			return fmt.Sprint(v)
		}
	}
	for i, h := range t.Header {
		if len(h) > widths[i] {
			widths[i] = len(h)
		}
	}
	for _, r := range t.Rows {
		for i, v := range r {
			if s := cell(v); len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		sb.WriteString(strings.Repeat("-", total-2))
		sb.WriteByte('\n')
	}
	for _, r := range t.Rows {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = cell(v)
		}
		writeRow(cells)
	}
	return sb.String()
}
