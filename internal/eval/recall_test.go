package eval

import (
	"math"
	"testing"

	"github.com/sociograph/reconcile/internal/graph"
)

func TestLinkedRecall(t *testing.T) {
	// Graph: edge 0-1 in both copies; node 2 isolated in g2 → identifiable
	// nodes are 0 and 1.
	g1 := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	g2 := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	truth := IdentityTruth(3)

	// Pairs: (0,0) correct-identifiable, (2,2) correct but unidentifiable
	// (degree 0 in g2), (1,0) wrong — only (0,0) counts.
	pairs := []graph.Pair{{Left: 0, Right: 0}, {Left: 2, Right: 2}}
	got := LinkedRecall(pairs, truth, g1, g2)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("recall = %v, want 0.5", got)
	}

	// Adding node 1's correct pair completes the identifiable set.
	pairs = append(pairs, graph.Pair{Left: 1, Right: 1})
	if got := LinkedRecall(pairs, truth, g1, g2); got != 1 {
		t.Fatalf("recall = %v, want 1", got)
	}

	// Wrong pairs contribute nothing.
	wrong := []graph.Pair{{Left: 0, Right: 1}}
	if got := LinkedRecall(wrong, truth, g1, g2); got != 0 {
		t.Fatalf("recall of wrong pair = %v, want 0", got)
	}
}

func TestLinkedRecallEmptyIdentifiable(t *testing.T) {
	g := graph.FromEdges(2, nil) // all isolated
	if got := LinkedRecall(nil, IdentityTruth(2), g, g); got != 1 {
		t.Fatalf("recall with nothing identifiable = %v, want 1", got)
	}
}

func TestLinkedRecallOutOfRangePairs(t *testing.T) {
	// Pairs referencing nodes outside either graph are ignored gracefully.
	g1 := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	g2 := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	truth := Truth{0: 0, 1: 1, 9: 9}
	pairs := []graph.Pair{{Left: 9, Right: 9}, {Left: 0, Right: 0}}
	got := LinkedRecall(pairs, truth, g1, g2)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("recall = %v, want 0.5", got)
	}
}
