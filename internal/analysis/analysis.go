// Package analysis is the repo's custom invariant linter: a suite of
// static analyzers that machine-check the properties every headline
// guarantee rests on — deterministic execution in the bit-identity-critical
// packages, one audited canonical byte path in the snapshot codec,
// crash-safe atomic writes in the serve store, panic-free defensive
// decoding, context propagation through blocking APIs, and constant-time
// secret handling.
//
// The suite is built on the stdlib toolchain only (go/parser, go/types,
// go/importer), preserving the module's zero-dependency property. Analyzers
// are pure functions over a type-checked package; which analyzers run where
// is a data question answered by a Policy table, so tests can point the same
// analyzers at golden fixtures with a fixture-local policy.
//
// Findings print as "file:line: [analyzer] message". An intentional
// exception is suppressed inline with
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line or the line above; the reason is mandatory, and a
// directive that suppresses nothing is itself a finding, so stale escape
// hatches cannot accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one reported invariant violation.
type Finding struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String renders the finding in the canonical "file:line: [analyzer]
// message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// Analyzer is one invariant checker. Run inspects a single type-checked
// package and reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-(analyzer, package) invocation state handed to
// Analyzer.Run.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// RelDir is the package directory relative to the module root ("." for
	// the root package) — the key the policy table uses.
	RelDir string
	// Options carries the policy rule's per-package analyzer configuration.
	Options map[string]string

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Option returns a policy option with a default.
func (p *Pass) Option(key, def string) string {
	if v, ok := p.Options[key]; ok {
		return v
	}
	return def
}

// All returns the full analyzer suite, keyed by name.
func All() map[string]*Analyzer {
	suite := []*Analyzer{
		DeterminismAnalyzer,
		CodecAnalyzer,
		AtomicWriteAnalyzer,
		DecodeAnalyzer,
		CtxAnalyzer,
		SecretAnalyzer,
	}
	out := make(map[string]*Analyzer, len(suite))
	for _, a := range suite {
		out[a.Name] = a
	}
	return out
}

// sortFindings orders findings by file, line, column, then analyzer, so
// output is stable across runs.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
