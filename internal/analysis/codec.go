package analysis

import (
	"go/ast"
	"strings"
)

// CodecAnalyzer keeps the snapshot and graph codecs canonical: one byte
// stream per value, every byte through the packages' own audited
// little-endian append/read helpers. It forbids the encoders that break
// that property:
//
//   - encoding/gob and encoding/json: self-describing, version- and
//     field-order-dependent, never byte-canonical;
//   - binary.BigEndian: the wire format is little-endian; a single
//     big-endian write forks the format;
//   - binary.Write/binary.Read: reflection-driven, struct-layout-coupled,
//     and they bypass the CRC-summed writer/reader the framing depends on.
var CodecAnalyzer = &Analyzer{
	Name: "canonical-codec",
	Doc:  "require the codec packages' canonical little-endian helpers; forbid gob/json/binary.Write and big-endian byte order",
	Run:  runCodec,
}

func runCodec(p *Pass) {
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path == "encoding/gob" || path == "encoding/json" {
				p.Reportf(spec.Pos(), "import of %s in a codec package: encodings must stay canonical — use the package's little-endian helpers", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if usesPkgObject(p.Info, sel, "encoding/binary", "BigEndian") {
				p.Reportf(sel.Pos(), "binary.BigEndian: the snapshot wire format is canonical little-endian; a mixed byte order forks the format")
			}
			for _, fn := range []string{"Write", "Read"} {
				if usesPkgObject(p.Info, sel, "encoding/binary", fn) {
					p.Reportf(sel.Pos(), "binary.%s is reflection-driven and bypasses the audited CRC-framed helpers; encode fields explicitly", fn)
				}
			}
			return true
		})
	}
}
