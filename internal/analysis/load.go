package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked module package.
type Package struct {
	RelDir string // module-relative directory, "." for the module root
	Path   string // import path
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
}

// LoadConfig configures Load.
type LoadConfig struct {
	// Dir is the tree to load: a module root (go.mod present) or, for
	// fixture trees, any directory of packages.
	Dir string
	// ModulePath overrides the module path read from Dir/go.mod. Required
	// when Dir has no go.mod (golden-fixture trees).
	ModulePath string
}

// Load parses and type-checks every package under cfg.Dir, in dependency
// order, resolving module-internal imports from the loaded set and
// everything else through the compiler's importer. Test files and testdata
// trees are skipped: the linter checks shipped code.
func Load(cfg LoadConfig) ([]*Package, *token.FileSet, error) {
	root, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, nil, err
	}
	modPath := cfg.ModulePath
	if modPath == "" {
		if modPath, err = modulePath(root); err != nil {
			return nil, nil, err
		}
	}

	fset := token.NewFileSet()
	pkgs := map[string]*Package{} // import path -> package
	var relDirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		relDirs = append(relDirs, rel)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	for _, rel := range relDirs {
		dir := filepath.Join(root, rel)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			// Honor build constraints for the host platform, so per-platform
			// twins (e.g. the mmap syscall path and its portable fallback)
			// don't collide as redeclarations. The platform-selected file is
			// the shipped code this build would run; its twin is covered by
			// the CI lane that builds with the opposite tag set.
			if ok, err := build.Default.MatchFile(dir, e.Name()); err != nil || !ok {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		p := &Package{RelDir: filepath.ToSlash(rel), Files: files}
		if p.RelDir == "." {
			p.Path = modPath
		} else {
			p.Path = modPath + "/" + p.RelDir
		}
		pkgs[p.Path] = p
	}

	imp := newImporter(fset, pkgs)
	var order []*Package
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.Path] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", p.Path)
		case 2:
			return nil
		}
		state[p.Path] = 1
		for _, f := range p.Files {
			for _, spec := range f.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if dep := pkgs[path]; dep != nil {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		state[p.Path] = 2
		order = append(order, p)
		return nil
	}
	var paths []string
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(pkgs[path]); err != nil {
			return nil, nil, err
		}
	}

	for _, p := range order {
		if err := check(fset, p, imp); err != nil {
			return nil, nil, err
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Path < order[j].Path })
	return order, fset, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %s is not a module root: %w", root, err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// check type-checks one package, filling in Pkg and Info.
func check(fset *token.FileSet, p *Package, imp types.Importer) error {
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(p.Path, fset, p.Files, p.Info)
	if err != nil {
		if len(errs) > 0 {
			return fmt.Errorf("analysis: type-checking %s: %w (and %d more)", p.Path, errs[0], len(errs)-1)
		}
		return fmt.Errorf("analysis: type-checking %s: %w", p.Path, err)
	}
	p.Pkg = pkg
	return nil
}

// moduleImporter resolves module-internal imports from the loaded set and
// defers everything else to the toolchain: export data first, source as the
// fallback so the linter still runs where no export data is installed.
type moduleImporter struct {
	fset   *token.FileSet
	mods   map[string]*Package
	std    types.Importer
	source types.Importer
	cache  map[string]*types.Package
}

func newImporter(fset *token.FileSet, mods map[string]*Package) *moduleImporter {
	return &moduleImporter{
		fset:  fset,
		mods:  mods,
		std:   importer.Default(),
		cache: map[string]*types.Package{},
	}
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := m.mods[path]; p != nil {
		if p.Pkg == nil {
			return nil, fmt.Errorf("analysis: import %s before it was checked", path)
		}
		return p.Pkg, nil
	}
	if pkg := m.cache[path]; pkg != nil {
		return pkg, nil
	}
	pkg, err := m.std.Import(path)
	if err != nil {
		if m.source == nil {
			m.source = importer.ForCompiler(m.fset, "source", nil)
		}
		if pkg, serr := m.source.Import(path); serr == nil {
			m.cache[path] = pkg
			return pkg, nil
		}
		return nil, err
	}
	m.cache[path] = pkg
	return pkg, nil
}
