package analysis

import "fmt"

// Lint loads the tree at cfg.Dir and runs the policy's analyzers over the
// packages selected by patterns (module-relative; "..." suffix for
// subtrees; empty or "./..." selects everything). It returns the surviving
// findings — suppressions applied, malformed or unused //lint:allow
// directives included — sorted for stable output.
func Lint(cfg LoadConfig, policy Policy, patterns ...string) ([]Finding, error) {
	pkgs, fset, err := Load(cfg)
	if err != nil {
		return nil, err
	}
	suite := All()
	var findings []Finding
	for _, p := range pkgs {
		if !selected(p.RelDir, patterns) {
			continue
		}
		enabled := policy.analyzersFor(p.RelDir)
		allows, malformed := collectAllows(fset, p.Files)
		var pkgFindings []Finding
		for name, opts := range enabled {
			a := suite[name]
			if a == nil {
				return nil, fmt.Errorf("analysis: policy names unknown analyzer %q", name)
			}
			pass := &Pass{
				Fset:     fset,
				Files:    p.Files,
				Pkg:      p.Pkg,
				Info:     p.Info,
				RelDir:   p.RelDir,
				Options:  opts,
				analyzer: a,
				findings: &pkgFindings,
			}
			a.Run(pass)
		}
		pkgFindings = applySuppressions(pkgFindings, allows, fset)
		findings = append(findings, pkgFindings...)
		findings = append(findings, malformed...)
	}
	sortFindings(findings)
	return findings, nil
}

// selected reports whether a package directory matches any pattern.
func selected(relDir string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		if pat == "..." || matches(pat, relDir) {
			return true
		}
	}
	return false
}
