package analysis

import (
	"go/ast"
	"go/types"
)

// CtxAnalyzer keeps library blocking paths cancellable — the property the
// serve layer's drain, deadline, and DELETE semantics are built on. Three
// rules, applied in non-main, non-test packages:
//
//   - no context.Background() (or context.TODO()): a library that mints
//     its own root context detaches the work from every caller deadline
//     and from graceful shutdown;
//   - a context.Context parameter must actually be threaded: an accepted
//     ctx that the body never reads is cancellation theater;
//   - an exported API that visibly blocks (channel receive, select, or a
//     .Wait call) must accept a context.Context so callers can bound it.
var CtxAnalyzer = &Analyzer{
	Name: "ctx-propagation",
	Doc:  "exported blocking APIs accept and thread context.Context; no context.Background() in library code",
	Run:  runCtx,
}

func runCtx(p *Pass) {
	if p.Pkg.Name() == "main" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			for _, fn := range []string{"Background", "TODO"} {
				if usesPkgObject(p.Info, sel, "context", fn) {
					p.Reportf(sel.Pos(), "context.%s in library code: accept a caller context so deadlines and shutdown propagate", fn)
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFunc(p, fd)
		}
	}
}

func checkCtxFunc(p *Pass, fd *ast.FuncDecl) {
	var ctxParams []*ast.Ident
	for _, field := range fd.Type.Params.List {
		t := p.Info.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				ctxParams = append(ctxParams, name)
			}
		}
	}

	for _, name := range ctxParams {
		obj := p.Info.Defs[name]
		if obj == nil {
			continue
		}
		used := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
				used = true
			}
			return !used
		})
		if !used {
			p.Reportf(name.Pos(), "%s accepts %s but never threads it: pass it to the blocking work or check ctx.Err()", funcName(fd), name.Name)
		}
	}

	// Exported visible blocking without a ctx parameter.
	if !fd.Name.IsExported() || len(ctxParams) > 0 || hasVariadicCtxRecv(p, fd) {
		return
	}
	var blockPos ast.Node
	var how string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if blockPos != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // goroutine bodies block on their own schedule
		case *ast.UnaryExpr:
			if n.OpPos.IsValid() && n.Op.String() == "<-" {
				blockPos, how = n, "receives from a channel"
			}
		case *ast.SelectStmt:
			blockPos, how = n, "selects on channels"
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if f, ok := p.Info.Uses[sel.Sel].(*types.Func); ok {
					if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
						blockPos, how = n, "calls "+sel.Sel.Name
					}
				}
			}
		}
		return blockPos == nil
	})
	if blockPos != nil {
		p.Reportf(fd.Pos(), "exported %s %s but has no context.Context parameter: callers cannot bound or cancel it", funcName(fd), how)
	}
}

// hasVariadicCtxRecv exempts methods whose receiver type itself carries a
// context-bearing design (a stored ctx field named ctx) — rare, but a
// legitimate pattern for option structs.
func hasVariadicCtxRecv(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := p.Info.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "ctx" && isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}
