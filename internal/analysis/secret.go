package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// SecretAnalyzer covers the two ways bearer tokens actually leak:
//
//   - timing: == / != on a secret-named string short-circuits at the first
//     differing byte, so response latency reveals the token one byte at a
//     time — subtle.ConstantTimeCompare is required (comparisons against
//     the empty string are presence checks and stay allowed);
//   - logs: a secret-named value passed to fmt/log formatting lands in
//     error messages, journals, and HTTP responses that outlive the
//     request.
//
// A value is secret-named when its identifier matches the token/secret/
// password/credential family, excluding the Env/File/Path/Name/Len/Hash
// suffixes that name metadata about a secret rather than the secret
// itself, and its type is string or []byte.
var SecretAnalyzer = &Analyzer{
	Name: "secret-hygiene",
	Doc:  "secrets compare in constant time and never reach fmt/log formatting",
	Run:  runSecret,
}

var (
	secretNameRe  = regexp.MustCompile(`(?i)(token|secret|passw|credential|bearer|apikey)`)
	secretExclRe  = regexp.MustCompile(`(?i)(env|file|path|name|len|hash|count|header|hint)s?$`)
	logMethodRe   = regexp.MustCompile(`(?i)^(print(f|ln)?|errorf?|fatalf?|panicf?|logf?|warn(f|ing)?|infof?|debugf?|sprintf?|sprintln|fprintf?|fprintln|appendf)$`)
	fmtLikePkgs   = map[string]bool{"fmt": true, "log": true, "log/slog": true}
	secretExempts = map[string]bool{"crypto/subtle": true}
)

func runSecret(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, pair := range [][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
					sec, other := pair[0], pair[1]
					if !isSecretExpr(p.Info, sec) || isEmptyStringLit(other) {
						continue
					}
					p.Reportf(n.Pos(), "%s compared with %s: short-circuit comparison leaks the secret byte-by-byte through timing — use subtle.ConstantTimeCompare", exprName(sec), n.Op)
					break
				}
			case *ast.CallExpr:
				callee := calleeFunc(p.Info, n)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				if secretExempts[callee.Pkg().Path()] {
					return true
				}
				if !fmtLikePkgs[callee.Pkg().Path()] && !logMethodRe.MatchString(callee.Name()) {
					return true
				}
				for _, arg := range n.Args {
					if leaked := findSecretIn(p.Info, arg); leaked != nil {
						p.Reportf(arg.Pos(), "%s reaches %s.%s: secrets must never be formatted or logged", exprName(leaked), calleePkgName(callee), callee.Name())
					}
				}
			}
			return true
		})
	}
}

// isSecretExpr reports whether the expression is a secret-named string or
// []byte identifier/selector.
func isSecretExpr(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	var name string
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	if !secretNameRe.MatchString(name) || secretExclRe.MatchString(name) {
		return false
	}
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.String || u.Kind() == types.UntypedString
	case *types.Slice:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	return false
}

// findSecretIn returns a secret-named expression appearing anywhere inside
// e, including through a string/[]byte conversion; nil if none.
func findSecretIn(info *types.Info, e ast.Expr) ast.Expr {
	var hit ast.Expr
	ast.Inspect(e, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		if x, ok := n.(ast.Expr); ok && isSecretExpr(info, x) {
			hit = x
		}
		return hit == nil
	})
	return hit
}

func isEmptyStringLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.STRING && (lit.Value == `""` || lit.Value == "``")
}

func exprName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := baseIdent(x.X); base != nil {
			return base.Name + "." + x.Sel.Name
		}
		return x.Sel.Name
	}
	return "secret"
}

func calleePkgName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return strings.TrimPrefix(sig.Recv().Type().String(), "*")
	}
	return f.Pkg().Name()
}
