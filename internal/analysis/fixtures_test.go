package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden fixtures live one mini-module per analyzer under testdata/.
// Expected findings are marked in the fixture source with trailing
//
//	// want "substring" ["substring" ...]
//
// comments: every want must be matched by a finding on that line whose
// message contains the substring, and every finding must be claimed by a
// want. Clean fixtures are the negative half of the same contract — any
// finding in them fails the test as unexpected.

var (
	wantLineRe = regexp.MustCompile(`//\s*want\s+(".*)$`)
	wantArgRe  = regexp.MustCompile(`"([^"]*)"`)
)

type wantKey struct {
	file string // base name
	line int
}

// readWants scans a fixture directory for want comments.
func readWants(t *testing.T, dir string) map[wantKey][]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[wantKey][]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(raw), "\n") {
			m := wantLineRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			k := wantKey{file: e.Name(), line: i + 1}
			for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				wants[k] = append(wants[k], arg[1])
			}
		}
	}
	return wants
}

// diffWants checks findings against want comments, both directions.
func diffWants(t *testing.T, wants map[wantKey][]string, findings []Finding) {
	t.Helper()
	pending := map[wantKey][]string{}
	for k, v := range wants {
		pending[k] = append([]string(nil), v...)
	}
	for _, f := range findings {
		k := wantKey{file: filepath.Base(f.File), line: f.Line}
		matched := -1
		for i, w := range pending[k] {
			if strings.Contains(f.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		pending[k] = append(pending[k][:matched], pending[k][matched+1:]...)
	}
	for k, rest := range pending {
		for _, w := range rest {
			t.Errorf("%s:%d: expected a finding containing %q, got none", k.file, k.line, w)
		}
	}
}

func lintFixture(t *testing.T, dir, analyzer string, opts map[string]string) []Finding {
	t.Helper()
	findings, err := Lint(
		LoadConfig{Dir: filepath.Join("testdata", dir), ModulePath: "fixture.test/" + dir},
		Policy{Rules: []Rule{{Analyzer: analyzer, Packages: []string{"."}, Options: opts}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		dir      string
		analyzer string
		opts     map[string]string
	}{
		{dir: "determinism", analyzer: "determinism"},
		{dir: "codec", analyzer: "canonical-codec"},
		{dir: "atomicwrite", analyzer: "atomic-write"},
		{dir: "decode", analyzer: "no-panic-decode"},
		{dir: "ctx", analyzer: "ctx-propagation"},
		{dir: "secret", analyzer: "secret-hygiene"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			findings := lintFixture(t, tc.dir, tc.analyzer, tc.opts)
			diffWants(t, readWants(t, filepath.Join("testdata", tc.dir)), findings)
		})
	}
}

// TestSuppression pins the escape-hatch contract on the suppress fixture:
// a well-formed //lint:allow with a reason suppresses exactly its finding, a
// directive missing the mandatory reason is itself a finding (and hides
// nothing), and a directive covering no finding is flagged as stale.
func TestSuppression(t *testing.T) {
	findings := lintFixture(t, "suppress", "determinism", nil)
	var malformed, unused, surfaced int
	for _, f := range findings {
		switch {
		case f.Analyzer == "lint" && strings.Contains(f.Message, "malformed //lint:allow"):
			malformed++
		case f.Analyzer == "lint" && strings.Contains(f.Message, "unused //lint:allow determinism"):
			unused++
		case f.Analyzer == "determinism":
			surfaced++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	// Exactly one of each: the suppressed time.Now stays silent, the one
	// under the malformed directive surfaces.
	if malformed != 1 || unused != 1 || surfaced != 1 || len(findings) != 3 {
		t.Errorf("got %d findings (malformed=%d unused=%d surfaced=%d), want 3 (1/1/1):", len(findings), malformed, unused, surfaced)
		for _, f := range findings {
			t.Errorf("  %s", f)
		}
	}
}

// TestLintRepoClean is the regression pin for the sweep: the shipped tree
// holds zero findings under the production policy. Any new violation — or a
// //lint:allow that stops suppressing anything — fails this test before CI
// even reaches the dedicated lint job.
func TestLintRepoClean(t *testing.T) {
	findings, err := Lint(LoadConfig{Dir: filepath.Join("..", "..")}, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repo not lint-clean: %s", f)
	}
}
