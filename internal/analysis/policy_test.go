package analysis

import "testing"

func TestPolicyMatches(t *testing.T) {
	cases := []struct {
		pattern, relDir string
		want            bool
	}{
		{"internal/core", "internal/core", true},
		{"internal/core", "internal/core/sub", false},
		{"internal/...", "internal/core", true},
		{"internal/...", "internal", true},
		{"internal/...", "internalx", false},
		{".", ".", true},
		{".", "cmd/serve", false},
	}
	for _, tc := range cases {
		if got := matches(tc.pattern, tc.relDir); got != tc.want {
			t.Errorf("matches(%q, %q) = %v, want %v", tc.pattern, tc.relDir, got, tc.want)
		}
	}
}

func TestDefaultPolicyNamesKnownAnalyzers(t *testing.T) {
	suite := All()
	for _, r := range DefaultPolicy().Rules {
		if suite[r.Analyzer] == nil {
			t.Errorf("policy rule names unknown analyzer %q", r.Analyzer)
		}
		if len(r.Packages) == 0 {
			t.Errorf("policy rule for %q selects no packages", r.Analyzer)
		}
	}
}

// TestPolicyCoversTracePackage pins the observability rows: the span
// recorder stays under the determinism ban (its one wall-clock read lives
// behind a reasoned //lint:allow) and under secret-hygiene (span details are
// served verbatim by the /trace endpoint).
func TestPolicyCoversTracePackage(t *testing.T) {
	got := DefaultPolicy().analyzersFor("internal/trace")
	for _, a := range []string{"determinism", "secret-hygiene"} {
		if _, ok := got[a]; !ok {
			t.Errorf("internal/trace not covered by the %q rule", a)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{File: "internal/core/engine.go", Line: 37, Analyzer: "ctx-propagation", Message: "context.Background in library code"}
	want := "internal/core/engine.go:37: [ctx-propagation] context.Background in library code"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
