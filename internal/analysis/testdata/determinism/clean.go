package fixture

import "sort"

func histogram(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // commutative integer update: every order sums the same
	}
	return total
}

func count(m map[string]bool) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k // keyed into another map: order-insensitive
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys) // collect-then-sort erases the iteration order
	return keys
}

func scoped(m map[string]int) int {
	n := 0
	for _, v := range m {
		double := v * 2 // declared inside the loop: invisible outside
		n += double
	}
	return n
}
