package fixture

import (
	"bytes"
	"time"

	_ "math/rand" // want "internal/xrand"
)

func stamp() time.Time {
	return time.Now() // want "time.Now"
}

func age(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since"
}

func collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "writes to keys"
	}
	return keys
}

func render(m map[string]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k) // want "buf.WriteString"
	}
}

func last(m map[string]int) string {
	var best string
	for k := range m {
		best = k // want "writes to best"
	}
	return best
}
