package fixture

import (
	"sync"
	"time"
)

// The span-recorder clock pattern (internal/trace): deterministic callers
// inject their own clock, and the single wall-clock default sits behind a
// reasoned //lint:allow. The analyzer must stay silent here — the directive
// is consumed by the reads on the next line, so it is not stale either.
type recorder struct {
	clock func() int64
}

func newRecorder(clock func() int64) *recorder {
	r := &recorder{clock: clock}
	if r.clock == nil {
		r.clock = nanos
	}
	return r
}

//lint:allow determinism observability timestamps never feed deterministic state; deterministic callers inject their own clock
func nanos() int64 { tOnce.Do(func() { t0 = time.Now() }); return int64(time.Since(t0)) }

var (
	tOnce sync.Once
	t0    time.Time
)
