package fixture

import "encoding/binary"

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func readU32(b []byte) uint32 {
	return binary.LittleEndian.Uint32(b)
}
