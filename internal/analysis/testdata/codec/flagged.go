package fixture

import (
	"encoding/binary"
	_ "encoding/gob"  // want "encoding/gob"
	_ "encoding/json" // want "encoding/json"
	"io"
)

func putLen(b []byte, v uint32) {
	binary.BigEndian.PutUint32(b, v) // want "BigEndian"
}

func writeFrame(w io.Writer, v uint64) error {
	return binary.Write(w, binary.LittleEndian, v) // want "binary.Write is reflection-driven"
}

func readFrame(r io.Reader, v *uint64) error {
	return binary.Read(r, binary.LittleEndian, v) // want "binary.Read is reflection-driven"
}
