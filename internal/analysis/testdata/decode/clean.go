package fixture

import (
	"bytes"
	"errors"
	"io"
)

var errInvalid = errors.New("invalid input")

func readU32(r *bytes.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

func readPayloadBounded(r *bytes.Reader, max int) ([]byte, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if int(n) > max {
		return nil, errInvalid
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func readVec(r *bytes.Reader) ([]uint32, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	// Chunked helper: the bytes for each element must actually arrive, so a
	// forged count fails at a truncated read instead of pre-allocating.
	return appendU32s(r, nil, n)
}

func appendU32s(r *bytes.Reader, dst []uint32, n uint32) ([]uint32, error) {
	for i := uint32(0); i < n; i++ {
		v, err := readU32(r)
		if err != nil {
			return nil, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

func decodeAny(v any) (int, error) {
	n, ok := v.(int)
	if !ok {
		return 0, errInvalid
	}
	return n, nil
}

func mustAlign(n int) {
	if n%8 != 0 {
		panic("misaligned") // not a decode-path function: out of scope
	}
}
