package fixture

import (
	"bytes"
	"io"
)

func decodeMagic(r *bytes.Reader) (uint32, error) {
	magic, err := readU32(r)
	if err != nil {
		return 0, err
	}
	if magic == 0 {
		panic("zero magic") // want "panic in decode path"
	}
	return magic, nil
}

func decodeValue(v any) int {
	return v.(int) // want "unchecked type assertion"
}

func readPayload(r *bytes.Reader) ([]byte, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n) // want "wire-controlled"
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
