package fixture

import "time"

// A justified exception: the finding on the next line is suppressed.
func suppressed() time.Time {
	//lint:allow determinism fixture exception with a recorded reason
	return time.Now()
}

// A directive with no reason is malformed: it suppresses nothing, and is
// itself a finding — so the time.Now below surfaces too.
func missingReason() time.Time {
	//lint:allow determinism
	return time.Now()
}

// A directive that suppresses nothing is a stale escape hatch.
//
//lint:allow determinism nothing on the next line violates determinism
func unusedDirective() int {
	return 4
}
