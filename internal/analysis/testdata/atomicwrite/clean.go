package fixture

import (
	"os"
	"path/filepath"
)

func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
