package fixture

import "os"

func saveConfig(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "os.WriteFile bypasses"
}

func truncateLog(path string) error {
	f, err := os.Create(path) // want "os.Create truncates in place"
	if err != nil {
		return err
	}
	return f.Close()
}

func swap(oldPath, newPath string) error {
	return os.Rename(oldPath, newPath) // want "os.Rename outside atomicWrite"
}

func halfAtomic(dir, path string, data []byte) error { // want "without fsyncing the file" "without syncDir"
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path) // want "os.Rename outside atomicWrite"
}
