package fixture

import (
	"context"
	"sync"
)

func runDetached(job func(context.Context)) {
	job(context.Background()) // want "context.Background in library code"
}

func pollDefault() context.Context {
	return context.TODO() // want "context.TODO in library code"
}

func Process(ctx context.Context, items []int) int { // want "Process accepts ctx but never threads it"
	total := 0
	for _, v := range items {
		total += v
	}
	return total
}

func WaitResult(ch chan int) int { // want "receives from a channel"
	return <-ch
}

func Drain(wg *sync.WaitGroup) { // want "calls Wait"
	wg.Wait()
}
