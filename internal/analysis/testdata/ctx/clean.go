package fixture

import (
	"context"
	"sync"
)

func WaitResultCtx(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func helperWait(ch chan int) int {
	return <-ch // unexported: ctx-aware exported APIs wrap it
}

func Spawn(fn func()) *sync.WaitGroup {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fn()
	}()
	return &wg
}
