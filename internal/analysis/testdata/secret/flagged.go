package fixture

import (
	"fmt"
	"log"
)

func checkToken(token, presented string) bool {
	return token == presented // want "token compared with =="
}

func rejectKey(apiKey, presented string) bool {
	return apiKey != presented // want "apiKey compared with !="
}

func debugDump(token string) {
	fmt.Printf("token=%s\n", token) // want "token reaches fmt.Printf"
}

func auditLog(secret []byte) {
	log.Printf("denied for %x", secret) // want "secret reaches log.Printf"
}

// Execution-trace span details are served verbatim by the /trace endpoint,
// so formatting a secret into one is a leak like any log line.
func spanDetail(token string) string {
	return fmt.Sprintf("auth %s", token) // want "token reaches fmt.Sprintf"
}
