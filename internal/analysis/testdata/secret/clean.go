package fixture

import (
	"crypto/subtle"
	"fmt"
)

func validToken(token, presented string) bool {
	if token == "" { // presence check, not a data comparison
		return false
	}
	return subtle.ConstantTimeCompare([]byte(token), []byte(presented)) == 1
}

func describeSource(tokenFile string, tokenLen int) string {
	// Metadata about a secret (its file, its length) is not the secret.
	return fmt.Sprintf("token from %s (%d bytes)", tokenFile, tokenLen)
}
