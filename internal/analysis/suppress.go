package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is one parsed "//lint:allow <analyzer> <reason>" escape
// hatch. It suppresses findings of the named analyzer on its own line and
// on the line directly below (a directive on its own comment line covers
// the statement it precedes).
type allowDirective struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

const allowPrefix = "lint:allow"

// collectAllows parses every //lint:allow directive in the files. Malformed
// directives — missing analyzer, or missing the mandatory reason — are
// returned as findings: an escape hatch without a recorded justification is
// itself a violation.
func collectAllows(fset *token.FileSet, files []*ast.File) (allows []*allowDirective, malformed []Finding) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments are not directives
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), allowPrefix)
				if !ok {
					continue
				}
				position := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Finding{
						Pos:      position,
						File:     position.Filename,
						Line:     position.Line,
						Col:      position.Column,
						Analyzer: "lint",
						Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\" (the reason is mandatory)",
					})
					continue
				}
				allows = append(allows, &allowDirective{
					file:     position.Filename,
					line:     position.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      c.Pos(),
				})
			}
		}
	}
	return allows, malformed
}

// applySuppressions drops findings covered by an allow directive and flags
// directives that covered nothing: a stale escape hatch hides the next real
// violation at that line, so it must go when the violation does. Findings
// of the "lint" meta-analyzer are never suppressible.
func applySuppressions(findings []Finding, allows []*allowDirective, fset *token.FileSet) []Finding {
	byKey := map[[2]any][]*allowDirective{}
	for _, a := range allows {
		byKey[[2]any{a.file, a.analyzer}] = append(byKey[[2]any{a.file, a.analyzer}], a)
	}
	var kept []Finding
	for _, f := range findings {
		suppressed := false
		if f.Analyzer != "lint" {
			for _, a := range byKey[[2]any{f.File, f.Analyzer}] {
				if a.line == f.Line || a.line == f.Line-1 {
					a.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, a := range allows {
		if a.used {
			continue
		}
		position := fset.Position(a.pos)
		kept = append(kept, Finding{
			Pos:      position,
			File:     position.Filename,
			Line:     position.Line,
			Col:      position.Column,
			Analyzer: "lint",
			Message:  "unused //lint:allow " + a.analyzer + ": no " + a.analyzer + " finding on this or the next line — delete the directive",
		})
	}
	return kept
}
