package analysis

import "strings"

// Rule enables one analyzer for a set of packages, with optional
// per-package configuration.
type Rule struct {
	Analyzer string
	// Packages are module-relative package directories ("." is the module
	// root). A trailing "/..." matches the whole subtree.
	Packages []string
	Options  map[string]string
}

// Policy is the table deciding which analyzers run where. It is plain data
// so the golden-fixture tests can aim the same analyzers at fixture
// packages with a policy of their own.
type Policy struct {
	Rules []Rule
}

// matches reports whether pattern covers the module-relative directory.
func matches(pattern, relDir string) bool {
	if sub, ok := strings.CutSuffix(pattern, "/..."); ok {
		return relDir == sub || strings.HasPrefix(relDir, sub+"/")
	}
	return pattern == relDir
}

// analyzersFor returns the analyzers enabled for a package directory, with
// their options.
func (p Policy) analyzersFor(relDir string) map[string]map[string]string {
	out := map[string]map[string]string{}
	for _, r := range p.Rules {
		for _, pat := range r.Packages {
			if matches(pat, relDir) {
				out[r.Analyzer] = r.Options
				break
			}
		}
	}
	return out
}

// DefaultPolicy is the production table: which invariant is load-bearing in
// which package. DESIGN.md ("Machine-checked invariants") documents each
// row; changing a row is an architectural decision, not a lint tweak.
func DefaultPolicy() Policy {
	return Policy{Rules: []Rule{
		{
			// Bit-identical output across engines and resumes: no wall
			// clock, no global randomness, no map-iteration-ordered writes
			// in the packages that compute or encode session state.
			// internal/eval rides along because the coming validation API
			// (ROADMAP) turns its metrics into served answers.
			// internal/trace is covered with exactly one sanctioned
			// exception: its default wall clock (wallNanos) carries a
			// //lint:allow determinism directive with the reason on record —
			// every deterministic emitter injects Config.Clock instead, and
			// the analyzer keeps it that way.
			Analyzer: "determinism",
			Packages: []string{"internal/core", "internal/snapshot", "internal/graph", "internal/bitset", "internal/eval", "internal/trace"},
		},
		{
			// The serve layer's restore, listing, and drain order must be
			// reproducible run for run, but a server legitimately reads
			// the clock (timeouts, metrics): map-order discipline only.
			Analyzer: "determinism",
			Packages: []string{"cmd/serve"},
			Options:  map[string]string{"checks": "maprange"},
		},
		{
			// One audited byte path: the snapshot and graph codecs write
			// canonical little-endian bytes through their own helpers, never
			// through gob/json/binary.Write or a big-endian order.
			Analyzer: "canonical-codec",
			Packages: []string{"internal/snapshot", "internal/graph"},
		},
		{
			// Every durable byte in the serve store goes through the
			// temp-file + fsync + rename + dir-fsync sequence.
			Analyzer: "atomic-write",
			Packages: []string{"cmd/serve"},
			Options:  map[string]string{"funcs": "atomicWrite", "dirsync": "syncDir"},
		},
		{
			// Decode and replay paths never panic, never assert without the
			// comma-ok form, and never size an allocation from a
			// wire-controlled integer that nothing has bounded.
			Analyzer: "no-panic-decode",
			Packages: []string{"internal/snapshot", "internal/graph", "internal/core", "."},
		},
		{
			// The mmap store makes every byte of a mapped file wire input, so
			// internal/graph widens the decode-path name net beyond the
			// generic row above (later rows override earlier ones per
			// analyzer): the open/parse/validate/merge entry points that
			// touch mapped memory are held to the same no-panic,
			// bounded-allocation rules as Decode itself.
			Analyzer: "no-panic-decode",
			Packages: []string{"internal/graph"},
			Options:  map[string]string{"names": "^(Read|read|Decode|decode|Apply|apply|Restore|restore|Unmarshal|unmarshal|Open|open|Merge|merge|parse|validate|view)"},
		},
		{
			// internal/graph writes durable container files (EncodeMappable
			// output) in tests and tools; any file-writing helper it grows
			// must use the same temp+fsync+rename discipline as the store.
			Analyzer: "atomic-write",
			Packages: []string{"internal/graph"},
			Options:  map[string]string{"funcs": "atomicWrite", "dirsync": "syncDir"},
		},
		{
			// Library blocking paths stay cancellable: no
			// context.Background() outside main and tests, ctx parameters
			// actually threaded, blocking exported APIs take a ctx.
			Analyzer: "ctx-propagation",
			Packages: []string{"internal/core", "internal/tenant", "."},
		},
		{
			// Bearer tokens are compared in constant time and never reach
			// formatting or logging. internal/metrics and the load driver
			// joined when GET /metrics landed: metric labels and load-run
			// reports are exactly the kind of side channel a token leaks
			// through. internal/trace joined with the /trace endpoint: span
			// details are served verbatim to clients, so nothing secret may
			// ever be formatted into one.
			Analyzer: "secret-hygiene",
			Packages: []string{"internal/tenant", "cmd/serve", "internal/metrics", "internal/loadgen", "cmd/loadgen", "internal/trace"},
		},
	}}
}
