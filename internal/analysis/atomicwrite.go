package analysis

import (
	"go/ast"
	"go/types"
	"slices"
)

// AtomicWriteAnalyzer guards the store's crash-safety contract: every
// durable byte is written via a temp file in the destination directory,
// fsynced, renamed into place, and the directory fsynced — so a crash at
// any instant leaves either the complete old file or the complete new one.
// Two rules enforce it:
//
//   - os.WriteFile, os.Create, and os.Rename are forbidden outside the
//     blessed writer functions (option "funcs", default "atomicWrite"):
//     each is a way to produce a torn or non-durable file on crash;
//   - any function that builds the temp-file-then-rename shape itself
//     (os.CreateTemp + os.Rename) must contain both halves of the fsync
//     pair: a file Sync before the rename, and the directory sync helper
//     (option "dirsync", default "syncDir") after it.
var AtomicWriteAnalyzer = &Analyzer{
	Name: "atomic-write",
	Doc:  "data-dir writes go through the atomic temp+fsync+rename+dirsync path",
	Run:  runAtomicWrite,
}

func runAtomicWrite(p *Pass) {
	allowed := splitList(p.Option("funcs", "atomicWrite"))
	dirsync := p.Option("dirsync", "syncDir")
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inAllowed := slices.Contains(allowed, funcName(fd))
			var hasCreateTemp, hasRename, hasFileSync, hasDirSync bool
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(p.Info, call)
				if callee == nil {
					return true
				}
				switch {
				case isPkgFunc(callee, "os", "WriteFile") && !inAllowed:
					p.Reportf(call.Pos(), "os.WriteFile bypasses the atomic write path: a crash mid-write leaves a torn file — use %s", allowed[0])
				case isPkgFunc(callee, "os", "Create") && !inAllowed:
					p.Reportf(call.Pos(), "os.Create truncates in place: readers and crash recovery can observe a partial file — use %s", allowed[0])
				case isPkgFunc(callee, "os", "Rename"):
					hasRename = true
					if !inAllowed {
						p.Reportf(call.Pos(), "os.Rename outside %s: renames are atomic but not durable without the fsync pair around them", allowed[0])
					}
				case isPkgFunc(callee, "os", "CreateTemp"):
					hasCreateTemp = true
				case callee.Name() == dirsync && callee.Pkg() != nil && callee.Pkg().Path() == p.Pkg.Path():
					hasDirSync = true
				case callee.Name() == "Sync":
					if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
						hasFileSync = true
					}
				}
				return true
			})
			if hasCreateTemp && hasRename {
				if !hasFileSync {
					p.Reportf(fd.Pos(), "%s builds a temp-then-rename write without fsyncing the file first: the rename can become durable before the data", funcName(fd))
				}
				if !hasDirSync {
					p.Reportf(fd.Pos(), "%s renames a temp file into place without %s: the rename itself can be lost on power failure", funcName(fd), dirsync)
				}
			}
		}
	}
}
