package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterminismAnalyzer pins the property every engine-equivalence and
// resume-equivalence suite assumes: code in the bit-identity-critical
// packages computes the same bytes on every run. It forbids the three ways
// nondeterminism actually sneaks in:
//
//   - wall-clock reads (time.Now, time.Since): timestamps in state or
//     time-dependent branches diverge across runs;
//   - math/rand outside internal/xrand: the repo's only sanctioned
//     randomness is the seeded, versioned generator, so results are
//     reproducible from a seed;
//   - iterating a map while writing state visible outside the loop: Go
//     randomizes map order, so any order-sensitive effect (appending to a
//     slice or encoded buffer, overwriting a scalar, calling a writer)
//     diverges between runs. Three shapes are order-insensitive and stay
//     allowed: writes keyed into another map, commutative integer updates
//     (x++, x += n, and the other ring operations — every iteration order
//     produces the same total), and the collect-then-sort idiom (the
//     loop's target is later passed to sort/slices).
//
// The option "checks" restricts the rule set per package ("time", "rand",
// "maprange", comma-separated; default all three) — cmd/serve, for
// example, needs deterministic restore and drain order but will
// legitimately read the clock for metrics.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, unseeded randomness, and map-iteration-ordered writes in bit-identity-critical packages",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	checks := map[string]bool{}
	for _, c := range splitList(p.Option("checks", "time,rand,maprange")) {
		checks[c] = true
	}
	for _, f := range p.Files {
		if checks["rand"] {
			for _, spec := range f.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if path == "math/rand" || path == "math/rand/v2" {
					p.Reportf(spec.Pos(), "import of %s: bit-identity-critical packages draw randomness only through internal/xrand (seeded, versioned)", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if !checks["time"] {
					return true
				}
				for _, fn := range []string{"Now", "Since"} {
					if usesPkgObject(p.Info, n, "time", fn) {
						p.Reportf(n.Pos(), "time.%s in a bit-identity-critical package: wall-clock reads break run-for-run determinism", fn)
					}
				}
			case *ast.RangeStmt:
				if checks["maprange"] {
					checkMapRange(p, f, n)
				}
			}
			return true
		})
	}
}

// checkMapRange flags order-sensitive writes inside a range over a map.
func checkMapRange(p *Pass, file *ast.File, rs *ast.RangeStmt) {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	report := func(pos ast.Node, what string) {
		p.Reportf(pos.Pos(), "map iteration %s: map order is randomized, so the result depends on it — iterate a sorted key slice instead", what)
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if commutativeOp(n.Tok) && len(n.Lhs) == 1 && isIntegerExpr(p.Info, n.Lhs[0]) {
				return true // n += k over ints: every iteration order sums the same
			}
			for _, lhs := range n.Lhs {
				checkOrderedWrite(p, file, rs, lhs, report)
			}
		case *ast.IncDecStmt:
			if isIntegerExpr(p.Info, n.X) {
				return true
			}
			checkOrderedWrite(p, file, rs, n.X, report)
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !mutatorName(sel.Sel.Name) {
				return true
			}
			recv := baseIdent(sel.X)
			if recv == nil || declaredWithin(p.Info, recv, rs) {
				return true
			}
			// Method call on a receiver from outside the loop with a
			// mutating name: each iteration's effect lands in map order.
			report(n, "calls "+recv.Name+"."+sel.Sel.Name+" on state declared outside the loop")
		}
		return true
	})
}

// checkOrderedWrite reports an assignment target declared outside the map
// range, unless the write itself is order-insensitive (a map index) or the
// target is visibly sorted after the loop.
func checkOrderedWrite(p *Pass, file *ast.File, rs *ast.RangeStmt, lhs ast.Expr, report func(ast.Node, string)) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
		return
	}
	// m2[k] = v: writes keyed into another map commute across iteration
	// orders (last-write-wins only matters for duplicate keys, which one
	// map iteration cannot produce).
	if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if xt := p.Info.TypeOf(ix.X); xt != nil {
			if _, isMap := xt.Underlying().(*types.Map); isMap {
				return
			}
		}
	}
	base := baseIdent(lhs)
	if base == nil || declaredWithin(p.Info, base, rs) {
		return
	}
	obj := p.Info.Uses[base]
	if obj == nil {
		obj = p.Info.Defs[base]
	}
	if obj == nil {
		return
	}
	if sortedAfter(p, file, rs, obj) {
		return
	}
	report(lhs, "writes to "+base.Name+" declared outside the loop")
}

// sortedAfter recognizes the collect-then-sort idiom: the written variable
// is passed to a sort or slices call after the loop, which erases the
// iteration order before anything observes it.
func sortedAfter(p *Pass, file *ast.File, rs *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || sorted {
			return !sorted
		}
		f := calleeFunc(p.Info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if pkg := f.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if refersTo(p.Info, arg, obj) {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

// commutativeOp reports whether the compound assignment operator commutes
// across iteration orders when applied to integers: addition, subtraction
// (a sequence of subtractions from the same accumulator commutes), and the
// bitwise ring operations. Shifts, division, and float/string forms of
// these do not qualify.
func commutativeOp(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		return true
	}
	return false
}

// isIntegerExpr reports whether the expression has an integer type.
func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// mutatorName matches method names whose call plausibly appends to or
// mutates external state — the write/append/encode family.
func mutatorName(name string) bool {
	lower := strings.ToLower(name)
	for _, prefix := range []string{"write", "append", "add", "push", "set", "encode", "put", "insert", "record"} {
		if strings.HasPrefix(lower, prefix) {
			return true
		}
	}
	return false
}
