package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves a call's target to a *types.Func when the callee is a
// plain function, method, or method value; nil for builtins, conversions,
// and function-typed variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.IndexExpr: // instantiated generic function
		return calleeFunc(info, &ast.CallExpr{Fun: fun.X})
	case *ast.IndexListExpr:
		return calleeFunc(info, &ast.CallExpr{Fun: fun.X})
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

// usesPkgObject reports whether the selector refers to the package-level
// object pkgPath.name (function, var, or const), resolving through the
// type-checker so local shadows of the package name do not confuse it.
func usesPkgObject(info *types.Info, sel *ast.SelectorExpr, pkgPath, name string) bool {
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if obj.Pkg().Path() != pkgPath || obj.Name() != name {
		return false
	}
	// Package-level only: a method or field that happens to share the name
	// does not count.
	if f, ok := obj.(*types.Func); ok && f.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return true
}

// baseIdent unwraps index, selector, star, and paren expressions to the
// identifier at the base of an lvalue; nil when the base is not a plain
// identifier (e.g. a call result).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the identifier's object is declared inside
// the node (by position).
func declaredWithin(info *types.Info, id *ast.Ident, n ast.Node) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

// refersTo reports whether expr mentions the object.
func refersTo(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// funcName returns the name of a function declaration, receiver-less.
func funcName(fd *ast.FuncDecl) string { return fd.Name.Name }

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasReadMethod reports whether t (or *t) has a Read or ReadByte method —
// the linter's notion of "a wire reader": values produced through it are
// attacker-controlled until something bounds them.
func hasReadMethod(t types.Type) bool {
	for _, name := range []string{"Read", "ReadByte"} {
		if obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name); obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}

// splitList splits a comma-separated option value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
