package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// DecodeAnalyzer hardens the decode and replay paths — the functions that
// consume wire bytes an attacker (or a corrupt disk) controls. In functions
// matching the decode-path name shape (Read*/Decode*/Apply*/Restore*,
// exported or not; option "names" overrides the regexp) it forbids:
//
//   - panic: corrupt input must surface as an error, never a crash — the
//     store's recovery loop walks chains of possibly-torn records and
//     survives only because decoders return errors;
//   - single-value type assertions: x.(T) panics on the wrong dynamic
//     type; the comma-ok form is required;
//   - allocations sized by a wire-controlled integer nothing has bounded: a
//     forged length must fail at a truncated read, not pre-allocate
//     gigabytes. An integer read through a reader (any value whose type has
//     Read/ReadByte) is tainted until it is compared against a bound or
//     consumed by a bounded read helper (a call that also takes the
//     reader); make() sized by a still-tainted value is flagged.
var DecodeAnalyzer = &Analyzer{
	Name: "no-panic-decode",
	Doc:  "decode/replay paths return errors — no panics, no unchecked assertions, no unbounded wire-sized allocations",
	Run:  runDecode,
}

const defaultDecodeNames = `^(Read|read|Decode|decode|Apply|apply|Restore|restore|Unmarshal|unmarshal)`

func runDecode(p *Pass) {
	nameRe, err := regexp.Compile(p.Option("names", defaultDecodeNames))
	if err != nil {
		p.Reportf(p.Files[0].Pos(), "bad \"names\" option: %v", err)
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !nameRe.MatchString(funcName(fd)) {
				continue
			}
			checkDecodeFunc(p, fd)
		}
	}
}

func checkDecodeFunc(p *Pass, fd *ast.FuncDecl) {
	okForm := commaOkAsserts(fd.Body)
	tainted := map[types.Object]bool{}

	// exprReadsWire reports whether the expression contains a call that
	// touches a reader — the source of wire-controlled values.
	exprReadsWire := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil {
					if v, ok := obj.(*types.Var); ok && hasReadMethod(v.Type()) {
						found = true
					}
				}
			}
			return !found
		})
		return found
	}
	exprTaintedVar := func(e ast.Expr) types.Object {
		var hit types.Object
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil && tainted[obj] {
					hit = obj
				}
			}
			return hit == nil
		})
		return hit
	}
	untaintIn := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil {
					delete(tainted, obj)
				}
			}
			return true
		})
	}

	// Pre-order traversal approximates execution order well enough for the
	// straight-line read-check-allocate shape decoders have.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			wire := false
			taintedRHS := false
			for _, rhs := range n.Rhs {
				if exprReadsWire(rhs) {
					wire = true
				}
				if exprTaintedVar(rhs) != nil {
					taintedRHS = true
				}
			}
			for _, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if _, isErr := obj.Type().(*types.Named); isErr && obj.Type().String() == "error" {
					continue
				}
				if wire || taintedRHS {
					tainted[obj] = true
				} else {
					delete(tainted, obj)
				}
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				// A comparison is the bound check the rule wants: the
				// author looked at the value. Clear both sides.
				untaintIn(n.X)
				untaintIn(n.Y)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "panic":
						p.Reportf(n.Pos(), "panic in decode path %s: corrupt input must return an error, not crash the process", funcName(fd))
					case "make":
						for _, arg := range n.Args[1:] {
							if obj := exprTaintedVar(arg); obj != nil {
								p.Reportf(n.Pos(), "allocation sized by wire-controlled %q with no bound check: a forged length must fail at a truncated read, not pre-allocate", obj.Name())
							}
						}
					}
					return true
				}
			}
			// A call that takes the reader alongside a tainted value is a
			// bounded-read helper: by the time it returns, the payload
			// bytes for that count actually arrived (or it errored).
			involvesReader := false
			for _, arg := range n.Args {
				if exprReadsWire(arg) {
					involvesReader = true
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && exprReadsWire(sel.X) {
				involvesReader = true
			}
			if involvesReader {
				for _, arg := range n.Args {
					untaintIn(arg)
				}
			}
		case *ast.TypeAssertExpr:
			if n.Type != nil && !okForm[n] {
				p.Reportf(n.Pos(), "unchecked type assertion in decode path %s: use the comma-ok form — the wrong dynamic type must not panic", funcName(fd))
			}
		}
		return true
	})
}

// commaOkAsserts collects the type assertions appearing in two-value
// (comma-ok) assignment forms, which cannot panic.
func commaOkAsserts(body *ast.BlockStmt) map[*ast.TypeAssertExpr]bool {
	ok := map[*ast.TypeAssertExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				if ta, is := ast.Unparen(n.Rhs[0]).(*ast.TypeAssertExpr); is {
					ok[ta] = true
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == 2 && len(n.Values) == 1 {
				if ta, is := ast.Unparen(n.Values[0]).(*ast.TypeAssertExpr); is {
					ok[ta] = true
				}
			}
		}
		return true
	})
	return ok
}
