package baseline

import (
	"fmt"
	"math"

	"github.com/sociograph/reconcile/internal/graph"
)

// PropagationOptions configures the Narayanan–Shmatikov-style matcher.
type PropagationOptions struct {
	// MinEccentricity is the acceptance bar: the gap between the best and
	// second-best candidate scores, measured in standard deviations of the
	// candidate score distribution (NS09's eccentricity heuristic).
	MinEccentricity float64
	// Iterations bounds the number of full propagation sweeps.
	Iterations int
}

// DefaultPropagation uses NS09's published eccentricity threshold of 0.5
// and enough sweeps to converge on the workloads in this repository.
func DefaultPropagation() PropagationOptions {
	return PropagationOptions{MinEccentricity: 0.5, Iterations: 3}
}

// Propagation grows the seed set in the style of Narayanan & Shmatikov
// (S&P 2009): candidate scores are common linked neighbors normalized by
// 1/sqrt(deg) of the candidate (cosine-style normalization), and a match is
// accepted when its eccentricity — (best − second) / σ(scores) — clears the
// threshold. Unlike User-Matching there is no degree schedule and no strict
// mutual-best requirement; a reverse check (the reverse best must agree) is
// applied as in the published algorithm.
//
// The per-node cost is Θ(d1 · d2) over linked neighbors, the O((E1+E2)Δ1Δ2)
// total the paper contrasts with its own O((E1+E2) min(Δ1,Δ2) log …).
func Propagation(g1, g2 *graph.Graph, seeds []graph.Pair, opts PropagationOptions) ([]graph.Pair, error) {
	if opts.Iterations < 1 {
		return nil, fmt.Errorf("baseline: Iterations must be >= 1")
	}
	if opts.MinEccentricity < 0 {
		return nil, fmt.Errorf("baseline: MinEccentricity must be >= 0")
	}
	n1, n2 := g1.NumNodes(), g2.NumNodes()
	const none = ^graph.NodeID(0)
	link := make([]graph.NodeID, n1)
	rlink := make([]graph.NodeID, n2)
	for i := range link {
		link[i] = none
	}
	for i := range rlink {
		rlink[i] = none
	}
	var pairs []graph.Pair
	for _, s := range seeds {
		if int(s.Left) >= n1 || int(s.Right) >= n2 {
			return nil, fmt.Errorf("baseline: seed %v out of range", s)
		}
		if link[s.Left] != none || rlink[s.Right] != none {
			return nil, fmt.Errorf("baseline: conflicting seed %v", s)
		}
		link[s.Left] = s.Right
		rlink[s.Right] = s.Left
		pairs = append(pairs, s)
	}

	scores := make([]float64, n2)
	var touched []graph.NodeID
	// forwardBest returns v1's best candidate and its eccentricity.
	forwardBest := func(v1 graph.NodeID) (graph.NodeID, float64, bool) {
		for _, u1 := range g1.Neighbors(v1) {
			u2 := link[u1]
			if u2 == none {
				continue
			}
			for _, v2 := range g2.Neighbors(u2) {
				if rlink[v2] != none {
					continue
				}
				if scores[v2] == 0 {
					touched = append(touched, v2)
				}
				scores[v2] += 1 / math.Sqrt(float64(g2.Degree(v2)))
			}
		}
		if len(touched) == 0 {
			return 0, 0, false
		}
		best, second := -1.0, -1.0
		var bestNode graph.NodeID
		var sum, sumSq float64
		for _, v2 := range touched {
			sc := scores[v2]
			scores[v2] = 0
			sum += sc
			sumSq += sc * sc
			if sc > best {
				second = best
				best = sc
				bestNode = v2
			} else if sc > second {
				second = sc
			}
		}
		count := float64(len(touched))
		touched = touched[:0]
		if second < 0 {
			second = 0
		}
		mean := sum / count
		variance := sumSq/count - mean*mean
		if variance < 1e-12 {
			// Degenerate distribution: a single distinct value. Accept only
			// a lone candidate (second == 0 and count == 1).
			if count == 1 {
				return bestNode, math.Inf(1), true
			}
			return 0, 0, false
		}
		ecc := (best - second) / math.Sqrt(variance)
		return bestNode, ecc, true
	}
	// reverseBest is forwardBest mirrored, scoring candidates in G1 for a
	// node of G2.
	rscores := make([]float64, n1)
	var rtouched []graph.NodeID
	reverseBest := func(v2 graph.NodeID) (graph.NodeID, bool) {
		for _, u2 := range g2.Neighbors(v2) {
			u1 := rlink[u2]
			if u1 == none {
				continue
			}
			for _, v1 := range g1.Neighbors(u1) {
				if link[v1] != none {
					continue
				}
				if rscores[v1] == 0 {
					rtouched = append(rtouched, v1)
				}
				rscores[v1] += 1 / math.Sqrt(float64(g1.Degree(v1)))
			}
		}
		best := -1.0
		var bestNode graph.NodeID
		found := false
		for _, v1 := range rtouched {
			sc := rscores[v1]
			rscores[v1] = 0
			if sc > best {
				best = sc
				bestNode = v1
				found = true
			}
		}
		rtouched = rtouched[:0]
		return bestNode, found
	}

	for iter := 0; iter < opts.Iterations; iter++ {
		added := 0
		for v1 := 0; v1 < n1; v1++ {
			if link[v1] != none {
				continue
			}
			cand, ecc, ok := forwardBest(graph.NodeID(v1))
			if !ok || ecc < opts.MinEccentricity {
				continue
			}
			// Reverse check: the candidate's best reverse match must be v1.
			back, ok := reverseBest(cand)
			if !ok || back != graph.NodeID(v1) {
				continue
			}
			link[v1] = cand
			rlink[cand] = graph.NodeID(v1)
			pairs = append(pairs, graph.Pair{Left: graph.NodeID(v1), Right: cand})
			added++
		}
		if added == 0 {
			break
		}
	}
	return pairs, nil
}
