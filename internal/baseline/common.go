// Package baseline implements the comparison algorithms of Section 5's last
// experiment block:
//
//   - CommonNeighbors — the "straightforward algorithm that just counts the
//     number of common neighbors", i.e. User-Matching without the degree
//     bucketing schedule and with a low threshold. The paper shows it loses
//     half its recall under attack and its error rate on the Wikipedia-style
//     workload roughly doubles.
//   - Propagation — a Narayanan–Shmatikov (S&P 2009) style matcher with
//     degree-normalized scores and an eccentricity acceptance test; the
//     related-work comparator. Its per-candidate cost is Θ(Δ1·Δ2), the
//     complexity the paper criticizes as unscalable.
//
// Both are deliberately independent implementations (not wrappers over
// internal/core) so they can serve as semantic cross-checks in tests.
package baseline

import (
	"fmt"

	"github.com/sociograph/reconcile/internal/graph"
)

// CommonNeighborsOptions configures the simple matcher.
type CommonNeighborsOptions struct {
	// Threshold is the minimum number of common (linked) neighbors; the
	// paper's ablation uses 1.
	Threshold int
	// Iterations is the number of full passes.
	Iterations int
}

// DefaultCommonNeighbors mirrors the ablation setup: threshold 1, and as
// many passes as the paper's default k.
func DefaultCommonNeighbors() CommonNeighborsOptions {
	return CommonNeighborsOptions{Threshold: 1, Iterations: 2}
}

// CommonNeighbors expands the seed links by repeatedly linking mutual-best
// pairs under the raw common-linked-neighbor count, with no degree
// schedule. Returns all links, seeds first.
func CommonNeighbors(g1, g2 *graph.Graph, seeds []graph.Pair, opts CommonNeighborsOptions) ([]graph.Pair, error) {
	if opts.Threshold < 1 {
		return nil, fmt.Errorf("baseline: Threshold must be >= 1")
	}
	if opts.Iterations < 1 {
		return nil, fmt.Errorf("baseline: Iterations must be >= 1")
	}
	n1, n2 := g1.NumNodes(), g2.NumNodes()
	link := make([]graph.NodeID, n1)  // left -> right
	rlink := make([]graph.NodeID, n2) // right -> left
	const none = ^graph.NodeID(0)
	for i := range link {
		link[i] = none
	}
	for i := range rlink {
		rlink[i] = none
	}
	var pairs []graph.Pair
	for _, s := range seeds {
		if int(s.Left) >= n1 || int(s.Right) >= n2 {
			return nil, fmt.Errorf("baseline: seed %v out of range", s)
		}
		if link[s.Left] != none || rlink[s.Right] != none {
			return nil, fmt.Errorf("baseline: conflicting seed %v", s)
		}
		link[s.Left] = s.Right
		rlink[s.Right] = s.Left
		pairs = append(pairs, s)
	}

	scores := make([]int32, n2)
	var touched []graph.NodeID
	type prop struct {
		node  graph.NodeID
		score int32
	}
	for iter := 0; iter < opts.Iterations; iter++ {
		bestL := make([]prop, n1)
		bestR := make([]prop, n2)
		for v1 := 0; v1 < n1; v1++ {
			if link[v1] != none {
				continue
			}
			for _, u1 := range g1.Neighbors(graph.NodeID(v1)) {
				u2 := link[u1]
				if u2 == none {
					continue
				}
				for _, v2 := range g2.Neighbors(u2) {
					if rlink[v2] != none {
						continue
					}
					if scores[v2] == 0 {
						touched = append(touched, v2)
					}
					scores[v2]++
				}
			}
			var best prop
			tie := false
			for _, v2 := range touched {
				sc := scores[v2]
				scores[v2] = 0
				switch {
				case sc > best.score:
					best = prop{v2, sc}
					tie = false
				case sc == best.score:
					tie = true
				}
			}
			touched = touched[:0]
			if tie || best.score < int32(opts.Threshold) {
				continue
			}
			bestL[v1] = best
			// Track the global per-right-node maximum among proposals.
			if best.score > bestR[best.node].score {
				bestR[best.node] = prop{graph.NodeID(v1), best.score}
			} else if best.score == bestR[best.node].score {
				bestR[best.node].node = none // tie marker
			}
		}
		added := 0
		for v1 := 0; v1 < n1; v1++ {
			p := bestL[v1]
			if p.score == 0 {
				continue
			}
			q := bestR[p.node]
			if q.node != graph.NodeID(v1) || q.score != p.score {
				continue
			}
			if link[v1] != none || rlink[p.node] != none {
				continue
			}
			link[v1] = p.node
			rlink[p.node] = graph.NodeID(v1)
			pairs = append(pairs, graph.Pair{Left: graph.NodeID(v1), Right: p.node})
			added++
		}
		if added == 0 {
			break
		}
	}
	return pairs, nil
}
