package baseline

import (
	"testing"

	"github.com/sociograph/reconcile/internal/core"
	"github.com/sociograph/reconcile/internal/gen"
	"github.com/sociograph/reconcile/internal/graph"
	"github.com/sociograph/reconcile/internal/sampling"
	"github.com/sociograph/reconcile/internal/xrand"
)

func instance(seed uint64, n, m int, s, l float64) (*graph.Graph, *graph.Graph, []graph.Pair) {
	r := xrand.New(seed)
	g := gen.PreferentialAttachment(r, n, m)
	g1, g2 := sampling.IndependentCopies(r, g, s, s)
	seeds := sampling.Seeds(r, graph.IdentityPairs(n), l)
	return g1, g2, seeds
}

func score(pairs []graph.Pair, nSeeds int) (good, bad int) {
	for _, p := range pairs[nSeeds:] {
		if p.Left == p.Right {
			good++
		} else {
			bad++
		}
	}
	return good, bad
}

func TestCommonNeighborsIdentifies(t *testing.T) {
	g1, g2, seeds := instance(1, 1500, 10, 0.8, 0.1)
	pairs, err := CommonNeighbors(g1, g2, seeds, DefaultCommonNeighbors())
	if err != nil {
		t.Fatal(err)
	}
	good, bad := score(pairs, len(seeds))
	if good < 800 {
		t.Errorf("good = %d; baseline should still identify many nodes", good)
	}
	// It makes errors, but should not be garbage on an easy instance.
	if bad > good/2 {
		t.Errorf("bad = %d vs good = %d", bad, good)
	}
}

func TestCommonNeighborsValidation(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	if _, err := CommonNeighbors(g, g, nil, CommonNeighborsOptions{Threshold: 0, Iterations: 1}); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := CommonNeighbors(g, g, nil, CommonNeighborsOptions{Threshold: 1, Iterations: 0}); err == nil {
		t.Error("iterations 0 accepted")
	}
	if _, err := CommonNeighbors(g, g, []graph.Pair{{Left: 9, Right: 0}}, DefaultCommonNeighbors()); err == nil {
		t.Error("out-of-range seed accepted")
	}
	if _, err := CommonNeighbors(g, g, []graph.Pair{{Left: 0, Right: 0}, {Left: 0, Right: 1}}, DefaultCommonNeighbors()); err == nil {
		t.Error("conflicting seed accepted")
	}
}

func TestCommonNeighborsInjective(t *testing.T) {
	g1, g2, seeds := instance(2, 800, 6, 0.7, 0.15)
	pairs, err := CommonNeighbors(g1, g2, seeds, DefaultCommonNeighbors())
	if err != nil {
		t.Fatal(err)
	}
	seenL := map[graph.NodeID]bool{}
	seenR := map[graph.NodeID]bool{}
	for _, p := range pairs {
		if seenL[p.Left] || seenR[p.Right] {
			t.Fatalf("duplicate endpoint in %v", p)
		}
		seenL[p.Left] = true
		seenR[p.Right] = true
	}
}

// The headline ablation claim: on an adversarial (sybil-attacked) instance,
// the bucketed User-Matching algorithm finds substantially more correct
// matches than the plain common-neighbor baseline at equal precision tier,
// and the baseline's precision collapses relative to core on harder inputs.
func TestBaselineWeakerThanCoreUnderAttack(t *testing.T) {
	r := xrand.New(3)
	n := 1200
	g := gen.PreferentialAttachment(r, n, 10)
	g1, g2 := sampling.IndependentCopies(r, g, 0.75, 0.75)
	g1 = sampling.SybilAttack(r, g1, 0.5)
	g2 = sampling.SybilAttack(r, g2, 0.5)
	seeds := sampling.Seeds(r, graph.IdentityPairs(n), 0.1)

	opts := core.DefaultOptions()
	opts.Threshold = 2
	coreRes, err := core.Reconcile(g1, g2, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	coreGood, coreBad := score(coreRes.Pairs, len(seeds))

	basePairs, err := CommonNeighbors(g1, g2, seeds, DefaultCommonNeighbors())
	if err != nil {
		t.Fatal(err)
	}
	baseGood, baseBad := score(basePairs, len(seeds))

	t.Logf("core: good=%d bad=%d; baseline: good=%d bad=%d", coreGood, coreBad, baseGood, baseBad)
	if coreGood <= baseGood {
		t.Errorf("core should out-recall the baseline under attack: core %d vs baseline %d", coreGood, baseGood)
	}
	_ = coreBad
	_ = baseBad
}

func TestPropagationIdentifies(t *testing.T) {
	g1, g2, seeds := instance(4, 1500, 10, 0.8, 0.1)
	pairs, err := Propagation(g1, g2, seeds, DefaultPropagation())
	if err != nil {
		t.Fatal(err)
	}
	good, bad := score(pairs, len(seeds))
	if good < 500 {
		t.Errorf("good = %d; propagation should identify many nodes", good)
	}
	if bad > good {
		t.Errorf("bad = %d vs good = %d", bad, good)
	}
}

func TestPropagationValidation(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	if _, err := Propagation(g, g, nil, PropagationOptions{MinEccentricity: -1, Iterations: 1}); err == nil {
		t.Error("negative eccentricity accepted")
	}
	if _, err := Propagation(g, g, nil, PropagationOptions{MinEccentricity: 0.5, Iterations: 0}); err == nil {
		t.Error("iterations 0 accepted")
	}
	if _, err := Propagation(g, g, []graph.Pair{{Left: 9, Right: 0}}, DefaultPropagation()); err == nil {
		t.Error("out-of-range seed accepted")
	}
	if _, err := Propagation(g, g, []graph.Pair{{Left: 0, Right: 0}, {Left: 1, Right: 0}}, DefaultPropagation()); err == nil {
		t.Error("conflicting seed accepted")
	}
}

func TestPropagationInjective(t *testing.T) {
	g1, g2, seeds := instance(5, 600, 6, 0.7, 0.15)
	pairs, err := Propagation(g1, g2, seeds, DefaultPropagation())
	if err != nil {
		t.Fatal(err)
	}
	seenL := map[graph.NodeID]bool{}
	seenR := map[graph.NodeID]bool{}
	for _, p := range pairs {
		if seenL[p.Left] || seenR[p.Right] {
			t.Fatalf("duplicate endpoint in %v", p)
		}
		seenL[p.Left] = true
		seenR[p.Right] = true
	}
}

func TestBaselinesNoSeeds(t *testing.T) {
	g1, g2, _ := instance(6, 200, 5, 0.8, 0)
	pairs, err := CommonNeighbors(g1, g2, nil, DefaultCommonNeighbors())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Error("no seeds should yield no matches (common neighbors)")
	}
	pairs, err = Propagation(g1, g2, nil, DefaultPropagation())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Error("no seeds should yield no matches (propagation)")
	}
}
