// Package graph implements the sparse undirected graph substrate used by the
// reconciliation algorithm and all experiments.
//
// Graphs are immutable after construction and stored in compressed sparse row
// (CSR) form: a single offsets array and a single adjacency array with each
// node's neighbor list sorted and duplicate-free. This layout gives
// cache-friendly sequential scans (the matcher's hot loop), O(log d) edge
// queries, and about 4 bytes per directed edge — the paper's largest graphs
// (hundreds of millions of edges) fit in laptop RAM at this density.
//
// Use Builder to construct graphs incrementally; generators in internal/gen
// and the sampling models in internal/sampling all produce *Graph values.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. IDs are dense: a graph with n nodes uses IDs
// 0..n-1.
type NodeID uint32

// Edge is an undirected edge between two nodes.
type Edge struct {
	U, V NodeID
}

// Canonical returns the edge with endpoints ordered U <= V, so that an
// undirected edge has a single canonical representation usable as a map key.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Graph is an immutable undirected graph in CSR form. The zero value is an
// empty graph with no nodes.
type Graph struct {
	offsets   []int64  // len = n+1; adj[offsets[v]:offsets[v+1]] are v's neighbors
	adj       []NodeID // sorted, duplicate-free per node; both directions stored
	maxDegree int
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int {
	if g == nil || len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int64 {
	if g == nil {
		return 0
	}
	return int64(len(g.adj)) / 2
}

// Degree returns the degree of v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns v's neighbor list in increasing order. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	// Search the smaller adjacency list.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// MaxDegree returns the largest degree in the graph (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	if g == nil {
		return 0
	}
	return g.maxDegree
}

// Edges calls fn for every undirected edge exactly once, with U < V.
// Iteration stops early if fn returns false.
func (g *Graph) Edges(fn func(e Edge) bool) {
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < v {
				if !fn(Edge{NodeID(u), v}) {
					return
				}
			}
		}
	}
}

// EdgeSlice materializes all undirected edges with U < V. Intended for tests
// and small graphs; large graphs should use Edges.
func (g *Graph) EdgeSlice() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	g.Edges(func(e Edge) bool {
		out = append(out, e)
		return true
	})
	return out
}

// CommonNeighborCount returns |N(u) ∩ N(v)| by merging the two sorted
// adjacency lists.
func (g *Graph) CommonNeighborCount(u, v NodeID) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	count, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// CrossCommonNeighborCount returns the number of IDs present both in u's
// neighborhood in g and in v's neighborhood in h. It is the similarity
// measure between aligned node-ID spaces of two graph copies.
func CrossCommonNeighborCount(g *Graph, u NodeID, h *Graph, v NodeID) int {
	a, b := g.Neighbors(u), h.Neighbors(v)
	count, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// Validate checks structural invariants (sorted unique adjacency, symmetric
// edges, no self-loops, offsets monotone). It is O(E log d) and intended for
// tests and debugging, returning the first violation found.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if len(g.offsets) != 0 && len(g.offsets) != n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.offsets), n+1)
	}
	if n > 0 && g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	maxd := 0
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		if lo > hi {
			return fmt.Errorf("graph: offsets not monotone at node %d", v)
		}
		if d := int(hi - lo); d > maxd {
			maxd = d
		}
		ns := g.adj[lo:hi]
		for i, w := range ns {
			if w == NodeID(v) {
				return fmt.Errorf("graph: self-loop at node %d", v)
			}
			if int(w) >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", v, w)
			}
			if i > 0 && ns[i-1] >= w {
				return fmt.Errorf("graph: adjacency of node %d not sorted-unique at pos %d", v, i)
			}
			if !g.HasEdge(w, NodeID(v)) {
				return fmt.Errorf("graph: edge %d-%d not symmetric", v, w)
			}
		}
	}
	if n > 0 && g.offsets[n] != int64(len(g.adj)) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.offsets[n], len(g.adj))
	}
	if maxd != g.maxDegree {
		return fmt.Errorf("graph: cached max degree %d, actual %d", g.maxDegree, maxd)
	}
	return nil
}
