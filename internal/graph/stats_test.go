package graph

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestComputeStatsPath(t *testing.T) {
	g := path(5) // degrees 1,2,2,2,1
	s := ComputeStats(g)
	if s.Nodes != 5 || s.Edges != 4 {
		t.Fatalf("nodes=%d edges=%d", s.Nodes, s.Edges)
	}
	if s.MaxDegree != 2 || s.MedDegree != 2 {
		t.Fatalf("maxdeg=%d meddeg=%d", s.MaxDegree, s.MedDegree)
	}
	if math.Abs(s.AvgDegree-1.6) > 1e-9 {
		t.Fatalf("avgdeg=%v", s.AvgDegree)
	}
	if s.Isolated != 0 || s.DegreeLE5 != 5 {
		t.Fatalf("isolated=%d le5=%d", s.Isolated, s.DegreeLE5)
	}
	if s.Components != 1 || s.LargestComp != 5 {
		t.Fatalf("comps=%d largest=%d", s.Components, s.LargestComp)
	}
	if !strings.Contains(s.String(), "nodes=5") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestComputeStatsDisconnected(t *testing.T) {
	b := NewBuilder(6, 4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	// node 5 isolated
	g := b.Build()
	s := ComputeStats(g)
	if s.Components != 3 {
		t.Fatalf("components = %d, want 3", s.Components)
	}
	if s.LargestComp != 3 {
		t.Fatalf("largest = %d, want 3", s.LargestComp)
	}
	if s.Isolated != 1 {
		t.Fatalf("isolated = %d, want 1", s.Isolated)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(NewBuilder(0, 0).Build())
	if s.Nodes != 0 || s.Components != 0 {
		t.Fatalf("stats of empty graph: %+v", s)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := path(4) // degrees 1,2,2,1
	h := DegreeHistogram(g)
	if len(h) != 3 {
		t.Fatalf("len(hist) = %d", len(h))
	}
	if h[0] != 0 || h[1] != 2 || h[2] != 2 {
		t.Fatalf("hist = %v", h)
	}
}

func TestDegreeSumEquals2E(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := randomGraph(seed, 40, 120)
		var sum int64
		for v := 0; v < g.NumNodes(); v++ {
			sum += int64(g.Degree(NodeID(v)))
		}
		return sum == 2*g.NumEdges() && g.Validate() == nil
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []int
		want int
	}{
		{nil, 0},
		{[]int{5}, 5},
		{[]int{1, 2, 3}, 2},
		{[]int{1, 2, 3, 4}, 2},
		{[]int{0, 0, 0, 9}, 0},
	}
	for _, c := range cases {
		if got := median(append([]int(nil), c.in...)); got != c.want {
			t.Errorf("median(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPowerLawExponentMLEOnUniform(t *testing.T) {
	// A clique has all degrees equal; the MLE should be far above 2
	// (degenerate distribution), while NaN for an empty graph.
	if !math.IsNaN(PowerLawExponentMLE(NewBuilder(0, 0).Build(), 1)) {
		t.Error("expected NaN for empty graph")
	}
	// dmin clamp: dmin < 1 treated as 1.
	g := clique(5)
	a := PowerLawExponentMLE(g, 0)
	if math.IsNaN(a) || a <= 1 {
		t.Errorf("exponent = %v", a)
	}
}

func TestFormatHistogram(t *testing.T) {
	if got := FormatHistogram([]int{0}); got != "(empty)" {
		t.Fatalf("FormatHistogram(zero) = %q", got)
	}
	out := FormatHistogram([]int{0, 10, 5, 0, 1})
	if !strings.Contains(out, "deg") || !strings.Contains(out, "#") {
		t.Fatalf("unexpected histogram output %q", out)
	}
}
