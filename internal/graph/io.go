package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Edge-list I/O in the SNAP text convention used by the paper's public
// datasets (Facebook/WOSN, Enron, Gowalla): one "u<tab or space>v" pair per
// line, lines starting with '#' are comments. ReadEdgeList accepts arbitrary
// non-dense IDs and densifies them; WriteEdgeList emits the canonical form.

// ReadEdgeList parses an edge list from r. Node IDs in the input may be
// arbitrary non-negative integers; they are remapped to dense IDs 0..n-1 in
// first-appearance order. The returned ids slice maps dense ID -> original ID.
func ReadEdgeList(r io.Reader) (g *Graph, ids []int64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	remap := make(map[int64]NodeID)
	var from, to []NodeID
	lookup := func(raw int64) NodeID {
		if id, ok := remap[raw]; ok {
			return id
		}
		id := NodeID(len(ids))
		remap[raw] = id
		ids = append(ids, raw)
		return id
	}
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineno, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad node id %q: %v", lineno, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad node id %q: %v", lineno, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, nil, fmt.Errorf("graph: line %d: negative node id", lineno)
		}
		from = append(from, lookup(u))
		to = append(to, lookup(v))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	b := NewBuilder(len(ids), int64(len(from)))
	for i := range from {
		b.AddEdge(from[i], to[i])
	}
	return b.Build(), ids, nil
}

// WriteEdgeList writes g as a SNAP-style edge list with a header comment,
// one undirected edge per line (u < v), dense IDs.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# undirected graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(e Edge) bool {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", e.U, e.V); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}
