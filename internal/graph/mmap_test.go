package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// encodeMappableBytes encodes g and fails the test on error.
func encodeMappableBytes(t testing.TB, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeMappable(&buf, g); err != nil {
		t.Fatalf("EncodeMappable: %v", err)
	}
	return buf.Bytes()
}

// writeMappableFile writes data to a fresh file under dir and returns its
// path.
func writeMappableFile(t testing.TB, dir, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	return path
}

// binaryBytes is the canonical legacy encoding of g, the equality yardstick
// for "bit-identical to the decoded graph".
func binaryBytes(t testing.TB, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, g); err != nil {
		t.Fatalf("EncodeBinary: %v", err)
	}
	return buf.Bytes()
}

// TestMappableRoundTrip: encode → open (mapped and heap decode) must
// reproduce the source graph bit-identically, for empty through
// moderately-sized random graphs, and re-encoding must reproduce the exact
// input bytes (the container is canonical).
func TestMappableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	graphs := map[string]*Graph{
		"zero":   {},
		"empty":  FromEdges(5, nil),
		"single": FromEdges(2, []Edge{{0, 1}}),
		"random": randomGraph(3, 500, 2500),
		"dense":  randomGraph(4, 40, 700),
	}
	names := []string{"zero", "empty", "single", "random", "dense"}
	for _, name := range names {
		g := graphs[name]
		want := binaryBytes(t, g)
		data := encodeMappableBytes(t, g)

		dec, err := DecodeMappable(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: DecodeMappable: %v", name, err)
		}
		if got := binaryBytes(t, dec); !bytes.Equal(got, want) {
			t.Fatalf("%s: heap decode not bit-identical to source", name)
		}
		if got := encodeMappableBytes(t, dec); !bytes.Equal(got, data) {
			t.Fatalf("%s: re-encode not canonical", name)
		}

		path := writeMappableFile(t, dir, name+".rgmm", data)
		m, err := OpenMapped(path)
		if err != nil {
			t.Fatalf("%s: OpenMapped: %v", name, err)
		}
		if m.Heap() != !MmapSupported {
			t.Fatalf("%s: Heap() = %v with MmapSupported = %v", name, m.Heap(), MmapSupported)
		}
		mg := m.Graph()
		if got := binaryBytes(t, mg); !bytes.Equal(got, want) {
			t.Fatalf("%s: mapped graph not bit-identical to source", name)
		}
		if err := mg.Validate(); err != nil {
			t.Fatalf("%s: mapped graph invalid: %v", name, err)
		}
		if mg.MaxDegree() != g.MaxDegree() || mg.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: mapped stats diverge", name)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
	}
}

// reCRC rewrites the checksum word so a corruption test exercises the
// validation step it targets instead of tripping the CRC first.
func reCRC(data []byte) []byte {
	binary.LittleEndian.PutUint32(data[12:16], crc32.ChecksumIEEE(data[16:]))
	return data
}

// TestMappableRejectsCorrupt: every class of corrupt or structurally lying
// image is rejected with an error — never a panic — by both the mmap open
// and the heap decode.
func TestMappableRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	valid := encodeMappableBytes(t, randomGraph(9, 50, 200))

	// Structural liars: syntactically well-formed containers whose arrays
	// violate a CSR invariant. EncodeMappable encodes whatever the struct
	// holds, so invalid in-memory graphs craft them directly.
	structural := map[string]*Graph{
		"self-loop":    {offsets: []int64{0, 1, 2, 2}, adj: []NodeID{0, 0}, maxDegree: 1},
		"out-of-range": {offsets: []int64{0, 1, 2, 2}, adj: []NodeID{1, 9}, maxDegree: 1},
		"unsorted":     {offsets: []int64{0, 2, 3, 4, 4}, adj: []NodeID{3, 1, 2, 0}, maxDegree: 2},
		"odd-total":    {offsets: []int64{0, 1, 1, 1}, adj: []NodeID{1}, maxDegree: 1},
		"nonmonotone":  {offsets: []int64{0, 2, 1, 2}, adj: []NodeID{1, 2}, maxDegree: 2},
		"degree-lie":   {offsets: []int64{0, 1, 2}, adj: []NodeID{1, 0}, maxDegree: 2},
	}

	cases := map[string][]byte{
		"empty":       {},
		"short":       valid[:mappedHdrSize+4],
		"bad-magic":   reCRC(append([]byte("RGXX"), valid[4:]...)),
		"bad-version": func() []byte { d := bytes.Clone(valid); binary.LittleEndian.PutUint32(d[4:8], 2); return reCRC(d) }(),
		"reserved":    func() []byte { d := bytes.Clone(valid); d[9] = 1; return reCRC(d) }(),
		"bad-crc":     func() []byte { d := bytes.Clone(valid); d[len(d)-1] ^= 0x40; return d }(),
		"truncated":   reCRC(bytes.Clone(valid[:len(valid)-4])),
		"padded":      reCRC(append(bytes.Clone(valid), 0, 0, 0, 0)),
		"node-count-lie": func() []byte {
			d := bytes.Clone(valid)
			binary.LittleEndian.PutUint64(d[16:24], 1<<40)
			return reCRC(d)
		}(),
		"adj-len-lie": func() []byte {
			d := bytes.Clone(valid)
			binary.LittleEndian.PutUint64(d[24:32], 1<<39)
			return reCRC(d)
		}(),
	}
	for name, g := range structural {
		cases["struct-"+name] = encodeMappableBytes(t, g)
	}

	for name, data := range cases {
		if _, err := DecodeMappable(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: DecodeMappable accepted corrupt image", name)
		}
		path := writeMappableFile(t, dir, strings.ReplaceAll(name, "/", "_")+".bad", data)
		m, err := OpenMapped(path)
		if err == nil {
			m.Close()
			t.Errorf("%s: OpenMapped accepted corrupt image", name)
		}
	}
}

// TestMappedLifetime pins the Close protocol: Acquire blocks Close until
// Release, Acquire after Close begins is a clean error, Graph goes nil, and
// Close is idempotent.
func TestMappedLifetime(t *testing.T) {
	dir := t.TempDir()
	path := writeMappableFile(t, dir, "g.rgmm", encodeMappableBytes(t, randomGraph(5, 100, 400)))
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}

	g, err := m.Acquire()
	if err != nil || g == nil {
		t.Fatalf("Acquire: %v", err)
	}

	closed := make(chan error, 1)
	go func() { closed <- m.Close() }()

	// Close marks the instance closed before it drains, so new Acquires
	// start failing promptly; poll rather than assume scheduling order.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := m.Acquire(); err != nil {
			if !errors.Is(err, ErrMappedClosed) {
				t.Fatalf("Acquire during close: %v, want ErrMappedClosed", err)
			}
			break
		}
		m.Release()
		if time.Now().After(deadline) {
			t.Fatal("Acquire kept succeeding after Close began")
		}
		time.Sleep(time.Millisecond)
	}
	if m.Graph() != nil {
		t.Fatal("Graph() non-nil after Close began")
	}

	// The mapping must survive while the ref is held: Close cannot have
	// returned, and the acquired graph still reads coherently.
	select {
	case <-closed:
		t.Fatal("Close returned while a reference was still held")
	case <-time.After(50 * time.Millisecond):
	}
	if g.NumNodes() != 100 {
		t.Fatalf("acquired graph unreadable during close: n=%d", g.NumNodes())
	}

	m.Release()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the last Release")
	}

	if _, err := m.Acquire(); !errors.Is(err, ErrMappedClosed) {
		t.Fatalf("Acquire after Close: %v, want ErrMappedClosed", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestNewHeapMapped: the uniform-lifetime wrapper for legacy heap graphs
// honors the same protocol with nothing to unmap.
func TestNewHeapMapped(t *testing.T) {
	g := randomGraph(6, 30, 60)
	m := NewHeapMapped(g)
	if !m.Heap() {
		t.Fatal("NewHeapMapped not heap-backed")
	}
	if got, err := m.Acquire(); err != nil || got != g {
		t.Fatalf("Acquire: %v", err)
	}
	m.Release()
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if m.Graph() != nil {
		t.Fatal("Graph() non-nil after Close")
	}
}

// FuzzOpenGraphMapped: for arbitrary bytes, the mmap open and the heap
// decode must agree on validity, never panic, and on acceptance produce
// bit-identical graphs whose canonical re-encoding reproduces the input
// exactly.
func FuzzOpenGraphMapped(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeMappableBytes(f, &Graph{}))
	f.Add(encodeMappableBytes(f, FromEdges(2, []Edge{{0, 1}})))
	f.Add(encodeMappableBytes(f, randomGraph(11, 40, 120)))
	corrupt := encodeMappableBytes(f, randomGraph(12, 20, 50))
	corrupt[20] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, decErr := DecodeMappable(bytes.NewReader(data))

		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.rgmm")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		m, openErr := OpenMapped(path)
		if (decErr == nil) != (openErr == nil) {
			t.Fatalf("decode err %v, open err %v: paths disagree on validity", decErr, openErr)
		}
		if openErr != nil {
			return
		}
		defer m.Close()
		if !bytes.Equal(binaryBytes(t, m.Graph()), binaryBytes(t, dec)) {
			t.Fatal("mapped and heap-decoded graphs differ")
		}
		if !bytes.Equal(encodeMappableBytes(t, m.Graph()), data) {
			t.Fatal("accepted image is not canonical")
		}
	})
}

// benchOpenFiles writes one graph in both on-disk forms and returns the two
// paths (mappable container, legacy varint stream).
func benchOpenFiles(b *testing.B) (mapped, legacy string) {
	b.Helper()
	g := randomGraph(7, 50000, 400000)
	dir := b.TempDir()
	mapped = writeMappableFile(b, dir, "g.rgmm", encodeMappableBytes(b, g))
	legacy = writeMappableFile(b, dir, "g.bin", binaryBytes(b, g))
	return mapped, legacy
}

// BenchmarkGraphOpenMapped measures the mmap open path: map, checksum,
// validate — no array materialization. Paired with BenchmarkGraphOpenHeap
// under a benchcheck dominance rule: opening mapped must not lose to the
// heap decode it replaces.
func BenchmarkGraphOpenMapped(b *testing.B) {
	mapped, _ := benchOpenFiles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := OpenMapped(mapped)
		if err != nil {
			b.Fatal(err)
		}
		if m.Graph().NumNodes() != 50000 {
			b.Fatal("bad open")
		}
		if err := m.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphOpenHeap measures the legacy path the mapped open is gated
// against: stream the varint container from disk into heap arrays.
func BenchmarkGraphOpenHeap(b *testing.B) {
	_, legacy := benchOpenFiles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(legacy)
		if err != nil {
			b.Fatal(err)
		}
		g, err := DecodeBinary(bufio.NewReaderSize(f, 1<<16))
		f.Close()
		if err != nil {
			b.Fatal(err)
		}
		if g.NumNodes() != 50000 {
			b.Fatal("bad decode")
		}
	}
}
