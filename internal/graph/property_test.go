package graph

import (
	"testing"
	"testing/quick"

	"github.com/sociograph/reconcile/internal/xrand"
)

// Property tests over randomized builds: every constructed graph satisfies
// the CSR invariants, edge membership matches a reference map, and repeated
// builds are deterministic.

func TestBuildMatchesReferenceSet(t *testing.T) {
	err := quick.Check(func(seed uint64, nEdges8 uint8) bool {
		const n = 25
		nEdges := int(nEdges8) // 0..255 edges
		r := xrand.New(seed)
		b := NewBuilder(n, int64(nEdges))
		ref := map[Edge]bool{}
		for i := 0; i < nEdges; i++ {
			u := NodeID(r.IntN(n))
			v := NodeID(r.IntN(n))
			b.AddEdge(u, v)
			if u != v {
				ref[Edge{u, v}.Canonical()] = true
			}
		}
		g := b.Build()
		if g.Validate() != nil {
			return false
		}
		if int(g.NumEdges()) != len(ref) {
			return false
		}
		for e := range ref {
			if !g.HasEdge(e.U, e.V) {
				return false
			}
		}
		// No extra edges.
		extra := false
		g.Edges(func(e Edge) bool {
			if !ref[e] {
				extra = true
				return false
			}
			return true
		})
		return !extra
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestBuildDeterministic(t *testing.T) {
	g1 := randomGraph(99, 50, 200)
	g2 := randomGraph(99, 50, 200)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	for v := 0; v < 50; v++ {
		a, b := g1.Neighbors(NodeID(v)), g2.Neighbors(NodeID(v))
		if len(a) != len(b) {
			t.Fatalf("node %d degree differs", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d adjacency differs", v)
			}
		}
	}
}

func TestBuilderReuse(t *testing.T) {
	// Build twice from the same builder: identical graphs, and edges added
	// after the first Build appear only in the second.
	b := NewBuilder(4, 4)
	b.AddEdge(0, 1)
	g1 := b.Build()
	b.AddEdge(2, 3)
	g2 := b.Build()
	if g1.NumEdges() != 1 {
		t.Fatalf("g1 edges = %d", g1.NumEdges())
	}
	if g2.NumEdges() != 2 || !g2.HasEdge(2, 3) || !g2.HasEdge(0, 1) {
		t.Fatalf("g2 edges = %v", g2.EdgeSlice())
	}
	if b.PendingEdges() != 2 {
		t.Fatalf("pending = %d", b.PendingEdges())
	}
}
