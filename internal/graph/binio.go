package graph

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary CSR I/O: the graph's exact in-memory layout — node count, per-node
// degrees, then the adjacency array — encoded as uvarint degrees and
// fixed-width little-endian node IDs. The encoding is canonical (one byte
// stream per graph) and decoding re-checks every structural invariant the
// CSR form relies on, so a decoded graph is safe to use without a separate
// Validate pass. The stream carries no magic number or checksum; framing and
// integrity are the caller's job (internal/snapshot wraps these in a
// versioned, CRC-protected envelope).

// BinaryReader is the reader DecodeBinary needs: uvarints want a ByteReader,
// bulk arrays want io.Reader.
type BinaryReader interface {
	io.Reader
	io.ByteReader
}

// maxNodes bounds decoded node counts to what NodeID can address.
const maxNodes = 1 << 31

// chunkIDs is how many NodeIDs the binary codec moves per bulk Read/Write.
const chunkIDs = 16 * 1024

// EncodeBinary writes g to w in binary CSR form.
func EncodeBinary(w io.Writer, g *Graph) error {
	n := g.NumNodes()
	buf := make([]byte, 0, binary.MaxVarintLen64*512)
	buf = binary.AppendUvarint(buf, uint64(n))
	for v := 0; v < n; v++ {
		buf = binary.AppendUvarint(buf, uint64(g.Degree(NodeID(v))))
		if len(buf) >= cap(buf)-binary.MaxVarintLen64 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	return writeIDs(w, g.adj)
}

// writeIDs writes the slice as little-endian uint32s in bounded chunks.
func writeIDs(w io.Writer, ids []NodeID) error {
	buf := make([]byte, 0, 4*chunkIDs)
	for len(ids) > 0 {
		c := len(ids)
		if c > chunkIDs {
			c = chunkIDs
		}
		buf = buf[:0]
		for _, id := range ids[:c] {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		ids = ids[c:]
	}
	return nil
}

// readUvarint reads a uvarint, mapping a clean EOF at the first byte to
// io.ErrUnexpectedEOF: inside a payload, running out of bytes is always a
// truncation.
func readUvarint(r io.ByteReader) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err == io.EOF {
		return 0, io.ErrUnexpectedEOF
	}
	return v, err
}

// readIDs reads count little-endian uint32s in bounded chunks, so that a
// forged length fails at the truncated read instead of allocating the forged
// size up front.
func readIDs(r io.Reader, count uint64) ([]NodeID, error) {
	out := []NodeID(nil)
	buf := make([]byte, 4*chunkIDs)
	for count > 0 {
		c := count
		if c > chunkIDs {
			c = chunkIDs
		}
		b := buf[:4*c]
		if _, err := io.ReadFull(r, b); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		for i := uint64(0); i < c; i++ {
			out = append(out, NodeID(binary.LittleEndian.Uint32(b[4*i:])))
		}
		count -= c
	}
	return out, nil
}

// DecodeBinary reads a graph in binary CSR form and re-validates its
// structural invariants: monotone offsets, per-node sorted duplicate-free
// in-range adjacency, no self-loops, an even directed-edge total. Any
// violation, truncation, or overflow returns an error; DecodeBinary never
// panics on corrupt input.
func DecodeBinary(r BinaryReader) (*Graph, error) {
	nRaw, err := readUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("graph: decode: node count: %w", err)
	}
	if nRaw > maxNodes {
		return nil, fmt.Errorf("graph: decode: node count %d exceeds limit", nRaw)
	}
	n := int(nRaw)
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		d, err := readUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("graph: decode: degree of node %d: %w", v, err)
		}
		if d >= nRaw {
			return nil, fmt.Errorf("graph: decode: node %d has degree %d in a %d-node graph", v, d, n)
		}
		offsets[v+1] = offsets[v] + int64(d)
	}
	total := uint64(offsets[n])
	if total%2 != 0 {
		return nil, fmt.Errorf("graph: decode: odd directed-edge total %d", total)
	}
	adj, err := readIDs(r, total)
	if err != nil {
		return nil, fmt.Errorf("graph: decode: adjacency: %w", err)
	}
	maxd := 0
	for v := 0; v < n; v++ {
		ns := adj[offsets[v]:offsets[v+1]]
		if len(ns) > maxd {
			maxd = len(ns)
		}
		for i, w := range ns {
			if int(w) >= n {
				return nil, fmt.Errorf("graph: decode: node %d has out-of-range neighbor %d", v, w)
			}
			if w == NodeID(v) {
				return nil, fmt.Errorf("graph: decode: self-loop at node %d", v)
			}
			if i > 0 && ns[i-1] >= w {
				return nil, fmt.Errorf("graph: decode: adjacency of node %d not sorted-unique at pos %d", v, i)
			}
		}
	}
	return &Graph{offsets: offsets, adj: adj, maxDegree: maxd}, nil
}
