package graph

// Ops on graphs that the experiments need: intersection (nodes alive in both
// copies), relabeling (anonymization), induced subgraphs, and union.

// Intersection returns the graph on the same node set containing exactly the
// edges present in both g and h. The paper evaluates recall against the
// intersection of the two copies: nodes with degree 0 in the intersection
// can never be identified from structure alone.
func Intersection(g, h *Graph) *Graph {
	n := g.NumNodes()
	if h.NumNodes() != n {
		panic("graph: Intersection requires aligned node sets")
	}
	b := NewBuilder(n, min64(g.NumEdges(), h.NumEdges()))
	for u := 0; u < n; u++ {
		a, c := g.Neighbors(NodeID(u)), h.Neighbors(NodeID(u))
		i, j := 0, 0
		for i < len(a) && j < len(c) {
			switch {
			case a[i] < c[j]:
				i++
			case a[i] > c[j]:
				j++
			default:
				if NodeID(u) < a[i] {
					b.AddEdge(NodeID(u), a[i])
				}
				i++
				j++
			}
		}
	}
	return b.Build()
}

// Union returns the graph containing every edge of g or h, over aligned node
// sets.
func Union(g, h *Graph) *Graph {
	n := g.NumNodes()
	if h.NumNodes() != n {
		panic("graph: Union requires aligned node sets")
	}
	b := NewBuilder(n, g.NumEdges()+h.NumEdges())
	g.Edges(func(e Edge) bool { b.AddEdge(e.U, e.V); return true })
	h.Edges(func(e Edge) bool { b.AddEdge(e.U, e.V); return true })
	return b.Build()
}

// Relabel returns a copy of g with node v renamed to perm[v]. perm must be a
// permutation of 0..n-1. Relabeling models anonymization: the de-anonymization
// example releases Relabel(g, perm) and asks the matcher to recover perm.
func Relabel(g *Graph, perm []NodeID) *Graph {
	n := g.NumNodes()
	if len(perm) != n {
		panic("graph: Relabel permutation has wrong length")
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if int(p) >= n || seen[p] {
			panic("graph: Relabel argument is not a permutation")
		}
		seen[p] = true
	}
	b := NewBuilder(n, g.NumEdges())
	g.Edges(func(e Edge) bool {
		b.AddEdge(perm[e.U], perm[e.V])
		return true
	})
	return b.Build()
}

// InducedSubgraph returns the subgraph induced by keep (nodes with
// keep[v] == true), preserving node IDs (dropped nodes become isolated).
func InducedSubgraph(g *Graph, keep []bool) *Graph {
	n := g.NumNodes()
	if len(keep) != n {
		panic("graph: InducedSubgraph mask has wrong length")
	}
	b := NewBuilder(n, g.NumEdges())
	g.Edges(func(e Edge) bool {
		if keep[e.U] && keep[e.V] {
			b.AddEdge(e.U, e.V)
		}
		return true
	})
	return b.Build()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
