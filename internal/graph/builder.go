package graph

import "sort"

// Builder accumulates undirected edges and produces an immutable Graph.
// Duplicate edges and self-loops may be added freely; Build removes them.
// Builder is not safe for concurrent use.
type Builder struct {
	n    int
	from []NodeID
	to   []NodeID
}

// NewBuilder returns a builder for a graph with n nodes (IDs 0..n-1).
// expectedEdges sizes internal buffers and may be 0.
func NewBuilder(n int, expectedEdges int64) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	if expectedEdges < 0 {
		expectedEdges = 0
	}
	return &Builder{
		n:    n,
		from: make([]NodeID, 0, expectedEdges),
		to:   make([]NodeID, 0, expectedEdges),
	}
}

// NumNodes returns the node count the builder was created with (possibly
// grown by EnsureNode).
func (b *Builder) NumNodes() int { return b.n }

// EnsureNode grows the node space so that id is a valid node.
func (b *Builder) EnsureNode(id NodeID) {
	if int(id) >= b.n {
		b.n = int(id) + 1
	}
}

// AddEdge records the undirected edge {u, v}. Self-loops are accepted and
// silently dropped at Build time, matching the paper's simple-graph model
// (the PA process generates self-loops that the analysis ignores).
func (b *Builder) AddEdge(u, v NodeID) {
	if int(u) >= b.n || int(v) >= b.n {
		panic("graph: AddEdge endpoint out of range; call EnsureNode first")
	}
	b.from = append(b.from, u)
	b.to = append(b.to, v)
}

// PendingEdges returns the number of (possibly duplicate) edges recorded.
func (b *Builder) PendingEdges() int { return len(b.from) }

// Build constructs the immutable CSR graph: both directions stored, each
// adjacency list sorted with duplicates and self-loops removed. The builder
// may be reused afterwards (its recorded edges are kept).
func (b *Builder) Build() *Graph {
	n := b.n
	// Degree counting pass (both directions, skipping self-loops).
	counts := make([]int64, n+1)
	for i := range b.from {
		u, v := b.from[i], b.to[i]
		if u == v {
			continue
		}
		counts[u+1]++
		counts[v+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	offsets := counts // counts is now the prefix-sum offsets array
	adj := make([]NodeID, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for i := range b.from {
		u, v := b.from[i], b.to[i]
		if u == v {
			continue
		}
		adj[cursor[u]] = v
		cursor[u]++
		adj[cursor[v]] = u
		cursor[v]++
	}
	// Sort and dedup each adjacency list in place, then compact.
	newOffsets := make([]int64, n+1)
	write := int64(0)
	maxd := 0
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		ns := adj[lo:hi]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		newOffsets[v] = write
		var prev NodeID
		first := true
		for _, w := range ns {
			if !first && w == prev {
				continue
			}
			adj[write] = w
			write++
			prev = w
			first = false
		}
		if d := int(write - newOffsets[v]); d > maxd {
			maxd = d
		}
	}
	newOffsets[n] = write
	return &Graph{offsets: newOffsets, adj: adj[:write:write], maxDegree: maxd}
}

// FromEdges builds a graph with n nodes from an edge list in one call.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n, int64(len(edges)))
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}
