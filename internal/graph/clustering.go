package graph

// Clustering coefficients. Real social networks are strongly clustered
// (friends of friends are friends); the matcher's similarity witnesses live
// on cross-copy triangles, so clustering is the single most important
// structural property a dataset stand-in must carry. These helpers are used
// to calibrate the stand-ins and to characterize generated graphs.

// LocalClustering returns the clustering coefficient of v: the fraction of
// its neighbor pairs that are themselves connected. Nodes of degree < 2
// return 0.
func LocalClustering(g *Graph, v NodeID) float64 {
	ns := g.Neighbors(v)
	d := len(ns)
	if d < 2 {
		return 0
	}
	closed := 0
	for i := 0; i < d; i++ {
		// Count, via sorted-list merge, how many later neighbors each
		// neighbor connects to.
		closed += countIntersectAfter(g.Neighbors(ns[i]), ns[i+1:])
	}
	return float64(closed) / float64(d*(d-1)/2)
}

// countIntersectAfter counts elements common to the two sorted lists.
func countIntersectAfter(a, b []NodeID) int {
	count, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// AverageClustering returns the mean local clustering coefficient over
// nodes of degree >= 2 (the Watts–Strogatz average). For large graphs,
// sampleEvery > 1 evaluates only every k-th node — clustering concentrates
// well, so sparse sampling is accurate and keeps this O(E·d/k).
func AverageClustering(g *Graph, sampleEvery int) float64 {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	var sum float64
	var count int
	for v := 0; v < g.NumNodes(); v += sampleEvery {
		if g.Degree(NodeID(v)) < 2 {
			continue
		}
		sum += LocalClustering(g, NodeID(v))
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// GlobalClustering returns the transitivity: 3 × triangles / open triads.
// Exact; O(Σ d²) — use on small or sampled graphs.
func GlobalClustering(g *Graph) float64 {
	var triangles, triads int64
	for v := 0; v < g.NumNodes(); v++ {
		ns := g.Neighbors(NodeID(v))
		d := len(ns)
		if d < 2 {
			continue
		}
		triads += int64(d) * int64(d-1) / 2
		for i := 0; i < d; i++ {
			triangles += int64(countIntersectAfter(g.Neighbors(ns[i]), ns[i+1:]))
		}
	}
	if triads == 0 {
		return 0
	}
	// Each triangle is counted once per corner by the wedge scan.
	return float64(triangles) / float64(triads)
}
