//go:build !((linux || darwin) && (amd64 || arm64)) || reconcile_nommap

package graph

import (
	"fmt"
	"os"
)

// MmapSupported reports whether this build serves mapped graphs from a real
// file mapping (false here: either the platform lacks syscall.Mmap / is not
// known little-endian, or the reconcile_nommap tag forced the portable
// path).
const MmapSupported = false

// openMappedFile is the portable fallback: read the whole file and decode
// it into heap arrays with explicit little-endian loads. Same container,
// same validation, same accessor results as the mmap path — but nothing
// aliases the file, so Close has nothing to unmap (the returned mapping is
// nil).
func openMappedFile(path string) (*Graph, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	g, err := decodeMappableImage(data)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil, nil
}

// unmapFile matches the mmap path's signature; the fallback never maps.
func unmapFile([]byte) error {
	return nil
}
