package graph

import (
	"testing"
	"testing/quick"

	"github.com/sociograph/reconcile/internal/xrand"
)

// randomGraph builds a deterministic pseudo-random graph for property tests.
func randomGraph(seed uint64, n int, edges int) *Graph {
	r := xrand.New(seed)
	b := NewBuilder(n, int64(edges))
	for i := 0; i < edges; i++ {
		u := NodeID(r.IntN(n))
		v := NodeID(r.IntN(n))
		b.AddEdge(u, v)
	}
	return b.Build()
}

func TestIntersection(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	h := FromEdges(4, []Edge{{0, 1}, {2, 3}, {0, 3}})
	x := Intersection(g, h)
	if x.NumEdges() != 2 || !x.HasEdge(0, 1) || !x.HasEdge(2, 3) {
		t.Fatalf("intersection edges = %v", x.EdgeSlice())
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnion(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}})
	h := FromEdges(4, []Edge{{0, 1}, {2, 3}})
	u := Union(g, h)
	if u.NumEdges() != 2 || !u.HasEdge(0, 1) || !u.HasEdge(2, 3) {
		t.Fatalf("union edges = %v", u.EdgeSlice())
	}
}

func TestIntersectionUnionProperties(t *testing.T) {
	// |E(g ∩ h)| + |E(g ∪ h)| == |E(g)| + |E(h)|, and subset relations hold.
	err := quick.Check(func(seed uint64) bool {
		g := randomGraph(seed, 30, 80)
		h := randomGraph(seed+1, 30, 80)
		x := Intersection(g, h)
		u := Union(g, h)
		if x.NumEdges()+u.NumEdges() != g.NumEdges()+h.NumEdges() {
			return false
		}
		ok := true
		x.Edges(func(e Edge) bool {
			if !g.HasEdge(e.U, e.V) || !h.HasEdge(e.U, e.V) {
				ok = false
				return false
			}
			return true
		})
		g.Edges(func(e Edge) bool {
			if !u.HasEdge(e.U, e.V) {
				ok = false
				return false
			}
			return true
		})
		return ok && x.Validate() == nil && u.Validate() == nil
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestIntersectionMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched node sets")
		}
	}()
	Intersection(FromEdges(3, nil), FromEdges(4, nil))
}

func TestRelabel(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	perm := []NodeID{3, 2, 1, 0} // reverse
	h := Relabel(g, perm)
	if h.NumEdges() != g.NumEdges() {
		t.Fatalf("edges = %d", h.NumEdges())
	}
	// Edge {0,1} becomes {3,2}, etc.
	if !h.HasEdge(3, 2) || !h.HasEdge(2, 1) || !h.HasEdge(1, 0) {
		t.Fatalf("relabeled edges = %v", h.EdgeSlice())
	}
	for v := 0; v < 4; v++ {
		if g.Degree(NodeID(v)) != h.Degree(perm[v]) {
			t.Fatalf("degree of %d not preserved under relabel", v)
		}
	}
}

func TestRelabelRejectsNonPermutation(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}})
	for _, perm := range [][]NodeID{
		{0, 1},    // wrong length
		{0, 0, 1}, // duplicate
		{0, 1, 3}, // out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Relabel(%v) did not panic", perm)
				}
			}()
			Relabel(g, perm)
		}()
	}
}

func TestRelabelRoundTrip(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := randomGraph(seed, 20, 40)
		r := xrand.New(seed ^ 0xabcdef)
		permInts := r.Perm(20)
		perm := make([]NodeID, 20)
		inv := make([]NodeID, 20)
		for i, p := range permInts {
			perm[i] = NodeID(p)
			inv[p] = NodeID(i)
		}
		h := Relabel(Relabel(g, perm), inv)
		if h.NumEdges() != g.NumEdges() {
			return false
		}
		same := true
		g.Edges(func(e Edge) bool {
			if !h.HasEdge(e.U, e.V) {
				same = false
				return false
			}
			return true
		})
		return same
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := clique(4)
	keep := []bool{true, true, true, false}
	h := InducedSubgraph(g, keep)
	if h.NumNodes() != 4 {
		t.Fatalf("nodes = %d (IDs must be preserved)", h.NumNodes())
	}
	if h.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", h.NumEdges())
	}
	if h.Degree(3) != 0 {
		t.Fatal("dropped node should be isolated")
	}
}

func TestInducedSubgraphBadMask(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong mask length")
		}
	}()
	InducedSubgraph(clique(3), []bool{true})
}
