package graph

import (
	"errors"
	"sync"
	"sync/atomic"
)

// openMappings counts live file mappings: +1 when OpenMapped maps a file,
// -1 when Close unmaps it. Heap-backed instances (legacy files, fallback
// builds, NewHeapMapped) are not counted — the gauge answers "how many
// graph files does this process currently have mapped".
var openMappings atomic.Int64

// OpenMappings returns the number of graph file mappings currently open in
// this process. cmd/serve exports it as a /metrics gauge.
func OpenMappings() int { return int(openMappings.Load()) }

// ErrMappedClosed is returned by Acquire once Close has begun: the mapping
// is (or is about to be) gone, and the caller must reopen rather than race
// the unmap.
var ErrMappedClosed = errors.New("graph: mapped graph is closed")

// Mapped is a graph whose CSR arrays live in a read-only file mapping — or,
// on builds without mmap support, in a private heap copy behind the same
// API. Unlike an ordinary *Graph, a mapped graph has a lifetime: every
// slice it hands out aliases the mapping, so the mapping may only be
// unmapped once no reader can still touch it. The refcount protocol makes
// that safe to state locally:
//
//   - short-lived readers call Graph() and stay on the opener's goroutine;
//   - long-running readers (an engine sweep, a job run) bracket their use
//     with Acquire/Release;
//   - the owner calls Close at purge/shutdown, which fails all future
//     Acquires, waits for outstanding ones to drain, then unmaps.
//
// Close blocking until readers drain is the lifetime contract the serve
// store relies on: deleting a job cannot yank pages out from under a sweep
// that is still scanning them.
type Mapped struct {
	mu     sync.Mutex
	drain  sync.Cond
	refs   int
	closed bool
	g      *Graph
	data   []byte // raw mapping; nil for heap-backed instances
	heap   bool
}

// OpenMapped opens a mappable container file (EncodeMappable's output),
// validates its header, checksum, and structural invariants, and returns a
// graph served from a read-only mapping of the file — or from a validated
// heap copy on builds where MmapSupported is false. The two paths are
// bit-identical: same validation, same accessor results.
func OpenMapped(path string) (*Mapped, error) {
	g, data, err := openMappedFile(path)
	if err != nil {
		return nil, err
	}
	m := &Mapped{g: g, data: data, heap: data == nil}
	m.drain.L = &m.mu
	if data != nil {
		openMappings.Add(1)
	}
	return m, nil
}

// NewHeapMapped wraps an ordinary heap graph in the Mapped lifetime API,
// for callers that must treat legacy (non-mappable) graph files uniformly
// with mapped ones. Close still drains readers but has nothing to unmap.
func NewHeapMapped(g *Graph) *Mapped {
	m := &Mapped{g: g, heap: true}
	m.drain.L = &m.mu
	return m
}

// Heap reports whether this instance is backed by a private heap copy
// rather than a live file mapping (always true when !MmapSupported).
func (m *Mapped) Heap() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.heap
}

// Graph returns the mapped graph, or nil once Close has begun. The graph —
// and every slice it hands out — is valid only until Close; readers that
// may overlap a Close must hold an Acquire/Release pair instead.
func (m *Mapped) Graph() *Graph {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	return m.g
}

// Acquire pins the mapping and returns its graph. Every successful Acquire
// must be paired with exactly one Release; Close waits for the pairs to
// balance. After Close has begun, Acquire fails with ErrMappedClosed.
func (m *Mapped) Acquire() (*Graph, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrMappedClosed
	}
	m.refs++
	return m.g, nil
}

// Release undoes one Acquire.
func (m *Mapped) Release() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.refs > 0 {
		m.refs--
	}
	if m.refs == 0 {
		m.drain.Broadcast()
	}
}

// Close marks the mapping closed (failing all future Acquires), waits for
// outstanding Acquires to be released, then unmaps. It is idempotent, and
// concurrent Closes all wait for the drain; only the first performs the
// unmap.
func (m *Mapped) Close() error {
	m.mu.Lock()
	m.closed = true
	for m.refs > 0 {
		m.drain.Wait()
	}
	data := m.data
	m.data, m.g = nil, nil
	m.mu.Unlock()
	if data == nil {
		return nil
	}
	// The mapping is gone either way — count it closed even if the unmap
	// syscall reports an error.
	openMappings.Add(-1)
	return unmapFile(data)
}
