//go:build (linux || darwin) && (amd64 || arm64) && !reconcile_nommap

package graph

import (
	"fmt"
	"math"
	"os"
	"syscall"
	"unsafe"
)

// MmapSupported reports whether this build serves mapped graphs from a real
// file mapping (true here) or from the portable heap fallback
// (mmap_fallback.go). The build tag pins this path to little-endian
// platforms, so the fixed-width container fields can be viewed in place
// without a byte-order pass.
const MmapSupported = true

// openMappedFile maps path read-only, validates the full image (header,
// CRC, structural invariants), and returns a Graph whose arrays view the
// mapping in place plus the mapping itself for Close to unmap. The offsets
// view starts at byte 40 of a page-aligned mapping and the adjacency view
// directly after 8*(n+1) more bytes, so both are naturally aligned.
func openMappedFile(path string) (*Graph, []byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size < mappedHdrSize+8 {
		return nil, nil, fmt.Errorf("graph: mapped: %s: %d-byte file shorter than header", path, size)
	}
	if size > math.MaxInt {
		return nil, nil, fmt.Errorf("graph: mapped: %s: %d-byte file too large to map", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: mapped: mmap %s: %w", path, err)
	}
	n, adjLen, maxd, err := parseMappableHeader(data)
	if err != nil {
		_ = syscall.Munmap(data)
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	offsets := unsafe.Slice((*int64)(unsafe.Pointer(&data[mappedHdrSize])), n+1)
	var adj []NodeID
	if adjLen > 0 {
		adj = unsafe.Slice((*NodeID)(unsafe.Pointer(&data[mappedHdrSize+8*(n+1)])), adjLen)
	}
	if err := validateMappable(n, offsets, adj, maxd); err != nil {
		_ = syscall.Munmap(data)
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return &Graph{offsets: offsets, adj: adj, maxDegree: maxd}, data, nil
}

// unmapFile releases a mapping produced by openMappedFile.
func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}
