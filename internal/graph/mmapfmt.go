package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Mappable CSR container ("RGMM"): the graph's two arrays laid out
// fixed-width, little-endian, and naturally aligned, so a page-aligned
// read-only mapping of the file can serve as the in-memory form directly —
// no decode pass, no per-job heap copy, one page-cache copy shared by every
// process that maps it. The legacy varint stream (EncodeBinary) packs the
// adjacency right behind variable-width degrees and therefore cannot be
// viewed in place; this container trades a slightly larger file (fixed-width
// offsets) for zero-copy opens.
//
// Layout (all integers little-endian):
//
//	[0:4]    magic "RGMM"
//	[4:8]    format version (uint32) = 1
//	[8:12]   reserved, must be zero
//	[12:16]  CRC32 (IEEE) over bytes [16:EOF]
//	[16:24]  node count n (uint64)
//	[24:32]  adjacency length (uint64, directed-edge count)
//	[32:40]  max degree (uint64)
//	[40:..]  offsets, (n+1) × int64
//	[..:EOF] adjacency, adjLen × uint32
//
// The file size is exactly determined by the header, the offsets start
// 8-aligned and the adjacency 4-aligned (40 + 8*(n+1) ≡ 0 mod 4), and the
// CRC covers every body byte, so OpenMapped can validate the whole image
// before handing out views. Opening re-checks the same structural
// invariants DecodeBinary does; a mapped graph is interchangeable with a
// decoded one.

// MappableMagic is the 4-byte magic prefix of the mappable container,
// exported so callers can sniff a file or stream and route it to
// OpenMapped/DecodeMappable versus the legacy varint decoder.
const MappableMagic = "RGMM"

const (
	mappedVersion = 1
	mappedHdrSize = 40
	// maxMappedAdj bounds the adjacency-length header field before it
	// enters size arithmetic: 2^38 directed edges (~1 TiB of adjacency) is
	// far past anything the format targets and keeps the exact-size
	// equation free of int64 overflow.
	maxMappedAdj = 1 << 38
)

// EncodeMappable writes g to w in mappable container form. The body is
// generated twice — once through the checksum, once to w — so the encoder
// needs no body-sized buffer.
func EncodeMappable(w io.Writer, g *Graph) error {
	crc := crc32.NewIEEE()
	if err := writeMappableBody(crc, g); err != nil {
		return err
	}
	var pre [16]byte
	copy(pre[0:4], MappableMagic)
	binary.LittleEndian.PutUint32(pre[4:8], mappedVersion)
	binary.LittleEndian.PutUint32(pre[12:16], crc.Sum32())
	if _, err := w.Write(pre[:]); err != nil {
		return err
	}
	return writeMappableBody(w, g)
}

// writeMappableBody writes bytes [16:EOF] of the container: the three fixed
// counts, the offsets array, then the adjacency.
func writeMappableBody(w io.Writer, g *Graph) error {
	n := g.NumNodes()
	var fix [24]byte
	binary.LittleEndian.PutUint64(fix[0:8], uint64(n))
	binary.LittleEndian.PutUint64(fix[8:16], uint64(len(g.adj)))
	binary.LittleEndian.PutUint64(fix[16:24], uint64(g.MaxDegree()))
	if _, err := w.Write(fix[:]); err != nil {
		return err
	}
	if len(g.offsets) == 0 {
		// Zero-value graph: emit the canonical empty offsets array [0].
		var zero [8]byte
		if _, err := w.Write(zero[:]); err != nil {
			return err
		}
	} else if err := writeInt64s(w, g.offsets); err != nil {
		return err
	}
	return writeIDs(w, g.adj)
}

// writeInt64s writes the slice as little-endian uint64s in bounded chunks.
func writeInt64s(w io.Writer, vals []int64) error {
	buf := make([]byte, 0, 8*chunkIDs)
	for len(vals) > 0 {
		c := len(vals)
		if c > chunkIDs {
			c = chunkIDs
		}
		buf = buf[:0]
		for _, v := range vals[:c] {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		vals = vals[c:]
	}
	return nil
}

// parseMappableHeader validates the fixed-size prefix of a complete
// container image: magic, version, reserved field, the CRC over everything
// after the checksum word, and the exact size equation tying the three
// counts to len(data). On success the three counts are safe to use as
// slice bounds into data.
func parseMappableHeader(data []byte) (n int, adjLen int64, maxd int, err error) {
	if len(data) < mappedHdrSize+8 {
		return 0, 0, 0, fmt.Errorf("graph: mapped: %d-byte image shorter than header", len(data))
	}
	if string(data[0:4]) != MappableMagic {
		return 0, 0, 0, fmt.Errorf("graph: mapped: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != mappedVersion {
		return 0, 0, 0, fmt.Errorf("graph: mapped: unsupported version %d", v)
	}
	if r := binary.LittleEndian.Uint32(data[8:12]); r != 0 {
		return 0, 0, 0, fmt.Errorf("graph: mapped: nonzero reserved field %#x", r)
	}
	if sum := crc32.ChecksumIEEE(data[16:]); sum != binary.LittleEndian.Uint32(data[12:16]) {
		return 0, 0, 0, fmt.Errorf("graph: mapped: checksum mismatch")
	}
	nRaw := binary.LittleEndian.Uint64(data[16:24])
	if nRaw > maxNodes {
		return 0, 0, 0, fmt.Errorf("graph: mapped: node count %d exceeds limit", nRaw)
	}
	adjRaw := binary.LittleEndian.Uint64(data[24:32])
	if adjRaw > maxMappedAdj {
		return 0, 0, 0, fmt.Errorf("graph: mapped: adjacency length %d exceeds limit", adjRaw)
	}
	maxdRaw := binary.LittleEndian.Uint64(data[32:40])
	if maxdRaw > nRaw {
		return 0, 0, 0, fmt.Errorf("graph: mapped: max degree %d exceeds node count %d", maxdRaw, nRaw)
	}
	want := int64(mappedHdrSize) + 8*(int64(nRaw)+1) + 4*int64(adjRaw)
	if int64(len(data)) != want {
		return 0, 0, 0, fmt.Errorf("graph: mapped: %d-byte image, header describes %d", len(data), want)
	}
	return int(nRaw), int64(adjRaw), int(maxdRaw), nil
}

// validateMappable re-checks every structural invariant DecodeBinary
// guarantees — monotone offsets with degree < n, per-node sorted
// duplicate-free in-range adjacency, no self-loops, even directed-edge
// total, and an honest max-degree header — so graphs opened from a mapping
// are safe to use without a separate Validate pass. It never panics on a
// corrupt image: every index it takes is derived from bounds it has already
// established.
func validateMappable(n int, offsets []int64, adj []NodeID, maxd int) error {
	if offsets[0] != 0 {
		return fmt.Errorf("graph: mapped: offsets[0] = %d, want 0", offsets[0])
	}
	for v := 0; v < n; v++ {
		d := offsets[v+1] - offsets[v]
		if d < 0 || d >= int64(n) {
			return fmt.Errorf("graph: mapped: node %d has degree %d in a %d-node graph", v, d, n)
		}
	}
	if offsets[n] != int64(len(adj)) {
		return fmt.Errorf("graph: mapped: offsets end at %d, adjacency holds %d", offsets[n], len(adj))
	}
	if len(adj)%2 != 0 {
		return fmt.Errorf("graph: mapped: odd directed-edge total %d", len(adj))
	}
	got := 0
	for v := 0; v < n; v++ {
		ns := adj[offsets[v]:offsets[v+1]]
		if len(ns) > got {
			got = len(ns)
		}
		for i, w := range ns {
			if int(w) >= n {
				return fmt.Errorf("graph: mapped: node %d has out-of-range neighbor %d", v, w)
			}
			if w == NodeID(v) {
				return fmt.Errorf("graph: mapped: self-loop at node %d", v)
			}
			if i > 0 && ns[i-1] >= w {
				return fmt.Errorf("graph: mapped: adjacency of node %d not sorted-unique at pos %d", v, i)
			}
		}
	}
	if got != maxd {
		return fmt.Errorf("graph: mapped: header max degree %d, actual %d", maxd, got)
	}
	return nil
}

// decodeMappableImage decodes a complete container image into heap-backed
// arrays: the byte-order-explicit twin of the mmap views, shared by the
// portable fallback and the streaming decoder. Allocation sizes come from
// the header only after parseMappableHeader has tied them to len(data).
func decodeMappableImage(data []byte) (*Graph, error) {
	n, adjLen, maxd, err := parseMappableHeader(data)
	if err != nil {
		return nil, err
	}
	offsets := make([]int64, n+1)
	for i := range offsets {
		offsets[i] = int64(binary.LittleEndian.Uint64(data[mappedHdrSize+8*i:]))
	}
	adj := make([]NodeID, adjLen)
	base := mappedHdrSize + 8*(n+1)
	for i := range adj {
		adj[i] = NodeID(binary.LittleEndian.Uint32(data[base+4*i:]))
	}
	if err := validateMappable(n, offsets, adj, maxd); err != nil {
		return nil, err
	}
	return &Graph{offsets: offsets, adj: adj, maxDegree: maxd}, nil
}

// DecodeMappable reads a complete mappable container from r into heap-backed
// arrays — the portable twin of OpenMapped, and the path stream readers take
// after sniffing MappableMagic. The image is buffered as the bytes arrive
// (no allocation is sized by an unverified header field) and validated
// exactly as OpenMapped validates a mapping.
func DecodeMappable(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: mapped: read: %w", err)
	}
	return decodeMappableImage(data)
}
