package graph

import (
	"testing"

	"github.com/sociograph/reconcile/internal/xrand"
)

// Substrate micro-benchmarks: CSR construction and the query primitives on
// the matcher's hot path.

func benchGraph(b *testing.B, n, edges int) *Graph {
	b.Helper()
	return randomGraph(1, n, edges)
}

func BenchmarkBuild(b *testing.B) {
	r := xrand.New(1)
	const n, edges = 100000, 1000000
	from := make([]NodeID, edges)
	to := make([]NodeID, edges)
	for i := range from {
		from[i] = NodeID(r.IntN(n))
		to[i] = NodeID(r.IntN(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd := NewBuilder(n, edges)
		for j := range from {
			bd.AddEdge(from[j], to[j])
		}
		g := bd.Build()
		if g.NumNodes() != n {
			b.Fatal("bad build")
		}
	}
	b.ReportMetric(float64(edges), "edges")
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(b, 10000, 100000)
	r := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := NodeID(r.IntN(10000))
		v := NodeID(r.IntN(10000))
		g.HasEdge(u, v)
	}
}

func BenchmarkCommonNeighborCount(b *testing.B) {
	g := benchGraph(b, 10000, 200000)
	r := xrand.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := NodeID(r.IntN(10000))
		v := NodeID(r.IntN(10000))
		g.CommonNeighborCount(u, v)
	}
}

func BenchmarkNeighborsScan(b *testing.B) {
	g := benchGraph(b, 10000, 200000)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.NumNodes(); v++ {
			sink += len(g.Neighbors(NodeID(v)))
		}
	}
	_ = sink
}

func BenchmarkIntersection(b *testing.B) {
	g := benchGraph(b, 10000, 200000)
	h := randomGraph(2, 10000, 200000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Intersection(g, h)
	}
}

func BenchmarkAverageClustering(b *testing.B) {
	g := benchGraph(b, 10000, 200000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AverageClustering(g, 10)
	}
}
