package graph

import (
	"bytes"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"empty", FromEdges(0, nil)},
		{"isolated", FromEdges(5, nil)},
		{"path", FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})},
		{"dups and loops", FromEdges(4, []Edge{{0, 1}, {1, 0}, {2, 2}, {1, 3}})},
		{"star", FromEdges(6, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := EncodeBinary(&buf, tc.g); err != nil {
				t.Fatal(err)
			}
			got, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if err := got.Validate(); err != nil {
				t.Fatal(err)
			}
			if got.NumNodes() != tc.g.NumNodes() || got.NumEdges() != tc.g.NumEdges() || got.MaxDegree() != tc.g.MaxDegree() {
				t.Fatalf("decoded %d nodes / %d edges / max %d, want %d / %d / %d",
					got.NumNodes(), got.NumEdges(), got.MaxDegree(),
					tc.g.NumNodes(), tc.g.NumEdges(), tc.g.MaxDegree())
			}
			for v := 0; v < got.NumNodes(); v++ {
				a, b := got.Neighbors(NodeID(v)), tc.g.Neighbors(NodeID(v))
				if len(a) != len(b) {
					t.Fatalf("node %d: %d neighbors, want %d", v, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("node %d neighbor %d: %d, want %d", v, i, a[i], b[i])
					}
				}
			}
			// Canonical: re-encoding the decoded graph reproduces the bytes.
			var again bytes.Buffer
			if err := EncodeBinary(&again, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), again.Bytes()) {
				t.Fatal("re-encoding is not byte-identical")
			}
		})
	}
}

func TestDecodeBinaryRejectsCorruption(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}})
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Every truncation errors, never panics.
	for cut := 0; cut < len(valid); cut++ {
		if _, err := DecodeBinary(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}

	// Targeted corruptions of the structural invariants.
	mutate := func(name string, f func(b []byte) []byte) {
		b := f(append([]byte(nil), valid...))
		g, err := DecodeBinary(bytes.NewReader(b))
		if err == nil && g.Validate() == nil {
			t.Errorf("%s: corrupt stream decoded to a valid graph", name)
		}
	}
	mutate("huge node count", func(b []byte) []byte {
		return append([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, b[1:]...)
	})
	mutate("odd degree sum", func(b []byte) []byte {
		b[1]++ // bump node 0's degree
		return b
	})
	mutate("unsorted adjacency", func(b []byte) []byte {
		// The adjacency section is the trailing 4-byte IDs; swapping the first
		// node's two sorted neighbors breaks strict ordering.
		adj := b[len(b)-4*12:]
		copy(adj[0:4], []byte{4, 0, 0, 0})
		copy(adj[4:8], []byte{1, 0, 0, 0})
		return b
	})
	mutate("out-of-range neighbor", func(b []byte) []byte {
		copy(b[len(b)-4:], []byte{9, 0, 0, 0})
		return b
	})
}
