package graph

// Pair links a node of a "left" graph G1 to a node of a "right" graph G2.
// Pairs represent both the trusted seed links the model provides and the
// identifications the matcher outputs.
type Pair struct {
	Left  NodeID // node in G1
	Right NodeID // node in G2
}

// IdentityPairs returns the n pairs (i, i) — the ground truth when both
// copies share the parent graph's node numbering.
func IdentityPairs(n int) []Pair {
	ps := make([]Pair, n)
	for i := range ps {
		ps[i] = Pair{NodeID(i), NodeID(i)}
	}
	return ps
}
