package graph

import (
	"fmt"
	"math"
	"strings"
)

// Stats summarizes a graph for experiment logs (Table 1 of the paper reports
// exactly nodes and edges; we add degree statistics used to calibrate the
// dataset stand-ins).
type Stats struct {
	Nodes       int
	Edges       int64
	MaxDegree   int
	AvgDegree   float64
	MedDegree   int
	Isolated    int // nodes with degree 0
	DegreeLE5   int // nodes with degree <= 5 (paper's recall ceiling driver)
	Components  int
	LargestComp int
}

// ComputeStats returns summary statistics for g.
func ComputeStats(g *Graph) Stats {
	n := g.NumNodes()
	s := Stats{Nodes: n, Edges: g.NumEdges(), MaxDegree: g.MaxDegree()}
	if n == 0 {
		return s
	}
	degs := make([]int, n)
	var sum int64
	for v := 0; v < n; v++ {
		d := g.Degree(NodeID(v))
		degs[v] = d
		sum += int64(d)
		if d == 0 {
			s.Isolated++
		}
		if d <= 5 {
			s.DegreeLE5++
		}
	}
	s.AvgDegree = float64(sum) / float64(n)
	s.MedDegree = median(degs)
	s.Components, s.LargestComp = componentStats(g)
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d edges=%d maxdeg=%d avgdeg=%.2f meddeg=%d deg<=5=%d isolated=%d comps=%d largest=%d",
		s.Nodes, s.Edges, s.MaxDegree, s.AvgDegree, s.MedDegree, s.DegreeLE5, s.Isolated, s.Components, s.LargestComp)
}

func median(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	// Counting selection: degrees are small non-negative ints bounded by max.
	maxv := 0
	for _, x := range xs {
		if x > maxv {
			maxv = x
		}
	}
	counts := make([]int, maxv+1)
	for _, x := range xs {
		counts[x]++
	}
	target := (len(xs) - 1) / 2
	run := 0
	for v, c := range counts {
		run += c
		if run > target {
			return v
		}
	}
	return maxv
}

// DegreeHistogram returns counts[d] = number of nodes of degree d, for
// d in [0, MaxDegree].
func DegreeHistogram(g *Graph) []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.NumNodes(); v++ {
		counts[g.Degree(NodeID(v))]++
	}
	return counts
}

// componentStats returns the number of connected components (counting
// isolated nodes) and the size of the largest, via iterative BFS.
func componentStats(g *Graph) (count, largest int) {
	n := g.NumNodes()
	visited := make([]bool, n)
	queue := make([]NodeID, 0, 1024)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		count++
		size := 0
		visited[start] = true
		queue = append(queue[:0], NodeID(start))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, w := range g.Neighbors(v) {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
		if size > largest {
			largest = size
		}
	}
	return count, largest
}

// PowerLawExponentMLE estimates the exponent of a power-law degree
// distribution by the discrete maximum-likelihood estimator of Clauset,
// Shalizi & Newman restricted to degrees >= dmin. It is used to verify that
// the PA generator and the dataset stand-ins are in the expected regime.
func PowerLawExponentMLE(g *Graph, dmin int) float64 {
	if dmin < 1 {
		dmin = 1
	}
	var sum float64
	var count int
	for v := 0; v < g.NumNodes(); v++ {
		d := g.Degree(NodeID(v))
		if d >= dmin {
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
			count++
		}
	}
	if count == 0 || sum == 0 {
		return math.NaN()
	}
	return 1 + float64(count)/sum
}

// FormatHistogram renders a degree histogram as a compact log-bucketed text
// bar chart for experiment logs.
func FormatHistogram(counts []int) string {
	var b strings.Builder
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return "(empty)"
	}
	for lo := 1; lo < len(counts); lo *= 2 {
		hi := lo*2 - 1
		sum := 0
		for d := lo; d <= hi && d < len(counts); d++ {
			sum += counts[d]
		}
		if sum == 0 {
			continue
		}
		bar := strings.Repeat("#", 1+sum*50/total)
		fmt.Fprintf(&b, "deg %6d-%-6d %8d %s\n", lo, hi, sum, bar)
	}
	return b.String()
}
