package graph

import (
	"testing"
)

// path returns the path graph 0-1-2-...-(n-1).
func path(n int) *Graph {
	b := NewBuilder(n, int64(n))
	for i := 0; i < n-1; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	return b.Build()
}

// clique returns the complete graph on n nodes.
func clique(n int) *Graph {
	b := NewBuilder(n, int64(n*n/2))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(NodeID(i), NodeID(j))
		}
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0, 0).Build()
	if g.NumNodes() != 0 || g.NumEdges() != 0 || g.MaxDegree() != 0 {
		t.Fatalf("empty graph: nodes=%d edges=%d maxdeg=%d", g.NumNodes(), g.NumEdges(), g.MaxDegree())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	var nilg *Graph
	if nilg.NumNodes() != 0 || nilg.NumEdges() != 0 || nilg.MaxDegree() != 0 {
		t.Fatal("nil graph accessors should be zero")
	}
}

func TestIsolatedNodes(t *testing.T) {
	g := NewBuilder(5, 0).Build()
	if g.NumNodes() != 5 || g.NumEdges() != 0 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	for v := NodeID(0); v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3, 10)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate in reverse
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self-loop dropped
	b.AddEdge(1, 2)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(1, 2) {
		t.Fatal("expected edges missing")
	}
	if g.HasEdge(0, 2) || g.HasEdge(2, 2) {
		t.Fatal("unexpected edge present")
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 || g.Degree(2) != 1 {
		t.Fatalf("degrees: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(6, 10)
	for _, v := range []NodeID{5, 2, 4, 1, 3} {
		b.AddEdge(0, v)
	}
	g := b.Build()
	ns := g.Neighbors(0)
	want := []NodeID{1, 2, 3, 4, 5}
	if len(ns) != len(want) {
		t.Fatalf("neighbors = %v", ns)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", ns, want)
		}
	}
	if g.MaxDegree() != 5 {
		t.Fatalf("maxdeg = %d", g.MaxDegree())
	}
}

func TestEnsureNodeAndPanics(t *testing.T) {
	b := NewBuilder(2, 0)
	b.EnsureNode(9)
	if b.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d", b.NumNodes())
	}
	b.AddEdge(9, 0)
	g := b.Build()
	if !g.HasEdge(0, 9) {
		t.Fatal("edge 0-9 missing")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(2, 0).AddEdge(0, 2)
}

func TestNegativeBuilderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBuilder(-1, _) did not panic")
		}
	}()
	NewBuilder(-1, 0)
}

func TestEdgesIterationAndEarlyStop(t *testing.T) {
	g := clique(5)
	count := 0
	g.Edges(func(e Edge) bool {
		if e.U >= e.V {
			t.Fatalf("edge %v not canonical", e)
		}
		count++
		return true
	})
	if count != 10 {
		t.Fatalf("edge count = %d, want 10", count)
	}
	count = 0
	g.Edges(func(e Edge) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d edges", count)
	}
	if len(g.EdgeSlice()) != 10 {
		t.Fatalf("EdgeSlice length %d", len(g.EdgeSlice()))
	}
}

func TestCommonNeighborCount(t *testing.T) {
	// Star: node 0 connected to 1..4; 1 and 2 share only node 0.
	b := NewBuilder(5, 8)
	for v := NodeID(1); v < 5; v++ {
		b.AddEdge(0, v)
	}
	b.AddEdge(1, 2)
	g := b.Build()
	if got := g.CommonNeighborCount(1, 2); got != 1 {
		t.Fatalf("common(1,2) = %d, want 1", got)
	}
	if got := g.CommonNeighborCount(3, 4); got != 1 {
		t.Fatalf("common(3,4) = %d, want 1", got)
	}
	if got := g.CommonNeighborCount(0, 3); got != 0 {
		t.Fatalf("common(0,3) = %d, want 0", got)
	}
	k := clique(6)
	if got := k.CommonNeighborCount(0, 1); got != 4 {
		t.Fatalf("clique common = %d, want 4", got)
	}
}

func TestCrossCommonNeighborCount(t *testing.T) {
	g := path(4) // 0-1-2-3
	h := clique(4)
	// In g, N(1) = {0,2}; in h, N(1) = {0,2,3}; shared IDs: 0 and 2.
	if got := CrossCommonNeighborCount(g, 1, h, 1); got != 2 {
		t.Fatalf("cross common = %d, want 2", got)
	}
	if got := CrossCommonNeighborCount(g, 0, h, 3); got != 1 {
		t.Fatalf("cross common = %d, want 1", got)
	}
}

func TestEdgeCanonical(t *testing.T) {
	if (Edge{3, 1}).Canonical() != (Edge{1, 3}) {
		t.Fatal("Canonical did not order endpoints")
	}
	if (Edge{1, 3}).Canonical() != (Edge{1, 3}) {
		t.Fatal("Canonical changed an ordered edge")
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 1}})
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHasEdgeSearchesSmallerList(t *testing.T) {
	// Hub with many neighbors; HasEdge(hub, leaf) should still be correct.
	const n = 1000
	b := NewBuilder(n, n)
	for v := NodeID(1); v < n; v++ {
		b.AddEdge(0, v)
	}
	g := b.Build()
	if !g.HasEdge(0, 500) || !g.HasEdge(500, 0) {
		t.Fatal("hub edge missing")
	}
	if g.HasEdge(1, 2) {
		t.Fatal("leaf-leaf edge should not exist")
	}
}
