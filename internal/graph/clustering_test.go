package graph

import (
	"math"
	"testing"
)

func TestLocalClusteringTriangle(t *testing.T) {
	g := clique(3)
	for v := NodeID(0); v < 3; v++ {
		if got := LocalClustering(g, v); got != 1 {
			t.Fatalf("triangle node %d clustering = %v", v, got)
		}
	}
}

func TestLocalClusteringStar(t *testing.T) {
	b := NewBuilder(4, 3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	g := b.Build()
	if got := LocalClustering(g, 0); got != 0 {
		t.Fatalf("star hub clustering = %v", got)
	}
	if got := LocalClustering(g, 1); got != 0 {
		t.Fatalf("degree-1 node clustering = %v, want 0", got)
	}
}

func TestLocalClusteringHalf(t *testing.T) {
	// Node 0 with neighbors 1,2,3; only edge 1-2 among them: C = 1/3.
	g := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}})
	if got := LocalClustering(g, 0); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("clustering = %v, want 1/3", got)
	}
}

func TestAverageClustering(t *testing.T) {
	// Two disjoint triangles: every node has C = 1.
	g := FromEdges(6, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
	})
	if got := AverageClustering(g, 1); got != 1 {
		t.Fatalf("avg clustering = %v", got)
	}
	// Sampling every 2nd node still lands on triangle corners only.
	if got := AverageClustering(g, 2); got != 1 {
		t.Fatalf("sampled avg clustering = %v", got)
	}
	// Path: no triangles.
	if got := AverageClustering(path(5), 1); got != 0 {
		t.Fatalf("path clustering = %v", got)
	}
	// Empty graph.
	if got := AverageClustering(NewBuilder(0, 0).Build(), 1); got != 0 {
		t.Fatalf("empty clustering = %v", got)
	}
	// sampleEvery < 1 is clamped.
	if got := AverageClustering(g, 0); got != 1 {
		t.Fatalf("clamped sampling = %v", got)
	}
}

func TestGlobalClustering(t *testing.T) {
	if got := GlobalClustering(clique(4)); got != 1 {
		t.Fatalf("clique transitivity = %v", got)
	}
	if got := GlobalClustering(path(6)); got != 0 {
		t.Fatalf("path transitivity = %v", got)
	}
	// Triangle plus a pendant: triangles 1 (×3 wedge hits), triads:
	// deg(0)=2:1, deg(1)=3:3, deg(2)=2:1, deg(3)=1:0 → 5 wedges, 3 closed.
	g := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 1, V: 3}})
	if got := GlobalClustering(g); math.Abs(got-3.0/5.0) > 1e-12 {
		t.Fatalf("transitivity = %v, want 0.6", got)
	}
	if got := GlobalClustering(NewBuilder(3, 0).Build()); got != 0 {
		t.Fatalf("edgeless transitivity = %v", got)
	}
}
