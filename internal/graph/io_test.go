package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# comment line
10 20
20	30

# another comment
10 30
30 10
`
	g, ids, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Densification is first-appearance order: 10->0, 20->1, 30->2.
	want := []int64{10, 20, 30}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) {
		t.Fatalf("edges = %v", g.EdgeSlice())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"single field":  "12\n",
		"non-numeric u": "a 2\n",
		"non-numeric v": "1 b\n",
		"negative id":   "-1 2\n",
	}
	for name, in := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadEdgeListEmpty(t *testing.T) {
	g, ids, err := ReadEdgeList(strings.NewReader("# only comments\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || len(ids) != 0 {
		t.Fatalf("nodes=%d ids=%v", g.NumNodes(), ids)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, ids, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Written IDs are dense already; the read-back graph may renumber by
	// first appearance but must be isomorphic via the ids mapping. Since
	// WriteEdgeList emits edges with u < v ordered by u, first-appearance
	// order equals numeric order here.
	if h.NumEdges() != g.NumEdges() {
		t.Fatalf("edges = %d, want %d", h.NumEdges(), g.NumEdges())
	}
	g.Edges(func(e Edge) bool {
		// Map original IDs to dense read IDs.
		var ue, ve NodeID = ^NodeID(0), ^NodeID(0)
		for dense, orig := range ids {
			if orig == int64(e.U) {
				ue = NodeID(dense)
			}
			if orig == int64(e.V) {
				ve = NodeID(dense)
			}
		}
		if !h.HasEdge(ue, ve) {
			t.Fatalf("edge %v lost in round trip", e)
		}
		return true
	})
}
