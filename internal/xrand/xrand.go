// Package xrand provides deterministic, splittable pseudo-randomness for the
// reconciliation experiments.
//
// Every generator in this package is seeded explicitly, so a whole experiment
// — graph generation, copy sampling, seed selection, matching — is a pure
// function of its seed. Child streams derived with Split are statistically
// independent of the parent and of each other, which lets parallel workers
// draw randomness without locks while keeping runs reproducible.
package xrand

import (
	"math"
	"math/rand/v2"
)

// Rand is a deterministic random stream. It wraps the standard PCG source
// with experiment-oriented helpers (Bernoulli, Binomial, Zipf, permutations).
type Rand struct {
	src *rand.Rand
	// state used for deriving child seeds; advanced by Split.
	splitState uint64
}

// New returns a stream seeded from seed. Two streams created with the same
// seed produce identical sequences.
func New(seed uint64) *Rand {
	lo, hi := splitMix64(seed), splitMix64(seed+0x9e3779b97f4a7c15)
	return &Rand{
		src:        rand.New(rand.NewPCG(lo, hi)),
		splitState: splitMix64(seed ^ 0xd1342543de82ef95),
	}
}

// splitMix64 is the SplitMix64 finalizer; it turns correlated seeds into
// well-distributed ones.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Split derives a child stream. Successive calls yield independent children;
// the parent stream's future output is unaffected by how many children are
// split off (the split state is separate from the draw state).
func (r *Rand) Split() *Rand {
	r.splitState = splitMix64(r.splitState)
	return New(r.splitState)
}

// Uint64 returns a uniformly random 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Int64N returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int64N(n int64) int64 { return r.src.Int64N(n) }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Uint32N returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint32N(n uint32) uint32 { return r.src.Uint32N(n) }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Binomial draws from Binomial(n, p). For small n it sums Bernoulli trials;
// for large n it uses the normal approximation clamped to [0, n], which is
// accurate enough for workload generation (we never test exact binomial
// tails against it).
func (r *Rand) Binomial(n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(mean + sd*r.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// NormFloat64 returns a standard normal variate.
func (r *Rand) NormFloat64() float64 { return r.src.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 { return r.src.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle randomizes the order of n elements using the provided swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Geometric returns a draw from the geometric distribution on {0,1,2,...}
// with success probability p: the number of failures before the first
// success. It panics if p is not in (0, 1].
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric requires p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	u := r.src.Float64()
	return int(math.Floor(math.Log1p(-u) / math.Log1p(-p)))
}

// SampleK fills dst with a uniform sample without replacement from [0, n)
// using Floyd's algorithm. len(dst) must be <= n. The result order is
// unspecified but deterministic for a given stream state.
func (r *Rand) SampleK(dst []int, n int) {
	k := len(dst)
	if k > n {
		panic("xrand: SampleK with k > n")
	}
	seen := make(map[int]struct{}, k)
	i := 0
	for j := n - k; j < n; j++ {
		t := r.IntN(j + 1)
		if _, dup := seen[t]; dup {
			t = j
		}
		seen[t] = struct{}{}
		dst[i] = t
		i++
	}
}

// Zipf is a bounded Zipf(s, v, imax) sampler over {0, ..., imax}.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a Zipf sampler. s > 1 is the exponent, v >= 1 shifts the
// distribution, imax is the largest value returned.
func (r *Rand) NewZipf(s, v float64, imax uint64) *Zipf {
	return &Zipf{z: rand.NewZipf(r.src, s, v, imax)}
}

// Uint64 draws the next Zipf value.
func (z *Zipf) Uint64() uint64 { return z.z.Uint64() }

// PowerLawDegrees samples n integer degrees from a discrete power law with
// the given exponent alpha (> 1), truncated to [dmin, dmax]. The returned
// sequence has an even sum (a requirement of configuration-model graph
// construction); if the raw sum is odd the first entry is incremented.
func (r *Rand) PowerLawDegrees(n, dmin, dmax int, alpha float64) []int {
	if n <= 0 {
		return nil
	}
	if dmin < 1 || dmax < dmin {
		panic("xrand: PowerLawDegrees requires 1 <= dmin <= dmax")
	}
	if alpha <= 1 {
		panic("xrand: PowerLawDegrees requires alpha > 1")
	}
	// Inverse-CDF sampling of a continuous power law, rounded down, which is
	// the standard discrete approximation.
	degs := make([]int, n)
	sum := 0
	a := 1 - alpha
	lo := math.Pow(float64(dmin), a)
	hi := math.Pow(float64(dmax)+1, a)
	for i := range degs {
		u := r.Float64()
		x := math.Pow(lo+u*(hi-lo), 1/a)
		d := int(x)
		if d < dmin {
			d = dmin
		}
		if d > dmax {
			d = dmax
		}
		degs[i] = d
		sum += d
	}
	if sum%2 == 1 {
		degs[0]++
	}
	return degs
}
