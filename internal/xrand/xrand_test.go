package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agreed on %d/100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	// The parent's draw sequence must be unaffected by splitting children.
	p1 := New(7)
	want := make([]uint64, 10)
	for i := range want {
		want[i] = p1.Uint64()
	}
	p2 := New(7)
	c1 := p2.Split()
	c2 := p2.Split()
	for i := range want {
		if got := p2.Uint64(); got != want[i] {
			t.Fatalf("split changed parent stream at draw %d", i)
		}
	}
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling children produced identical first draws (suspicious)")
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split children of identical parents diverged at %d", i)
		}
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolRate(t *testing.T) {
	r := New(11)
	const n = 200000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bool(%v) empirical rate %v, want within 0.01", p, got)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(17)
	cases := []struct {
		n int
		p float64
	}{{10, 0.3}, {64, 0.5}, {1000, 0.02}, {5000, 0.7}}
	for _, c := range cases {
		const trials = 2000
		sum := 0
		for i := 0; i < trials; i++ {
			k := r.Binomial(c.n, c.p)
			if k < 0 || k > c.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", c.n, c.p, k)
			}
			sum += k
		}
		mean := float64(sum) / trials
		want := float64(c.n) * c.p
		sd := math.Sqrt(want * (1 - c.p))
		if math.Abs(mean-want) > 5*sd/math.Sqrt(trials)+0.5 {
			t.Errorf("Binomial(%d,%v) mean %v, want ≈ %v", c.n, c.p, mean, want)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(5)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0,0.5) = %d", got)
	}
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10,0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10,1) = %d", got)
	}
	if got := r.Binomial(-3, 0.5); got != 0 {
		t.Errorf("Binomial(-3,0.5) = %d", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(23)
	p := 0.2
	const trials = 100000
	sum := 0
	for i := 0; i < trials; i++ {
		g := r.Geometric(p)
		if g < 0 {
			t.Fatalf("Geometric returned negative %d", g)
		}
		sum += g
	}
	mean := float64(sum) / trials
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("Geometric(%v) mean %v, want ≈ %v", p, mean, want)
	}
}

func TestGeometricPanics(t *testing.T) {
	r := New(1)
	for _, p := range []float64{0, -1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) did not panic", p)
				}
			}()
			r.Geometric(p)
		}()
	}
	if got := r.Geometric(1); got != 0 {
		t.Errorf("Geometric(1) = %d, want 0", got)
	}
}

func TestSampleK(t *testing.T) {
	r := New(31)
	for _, k := range []int{0, 1, 5, 50} {
		dst := make([]int, k)
		r.SampleK(dst, 50)
		seen := map[int]bool{}
		for _, v := range dst {
			if v < 0 || v >= 50 {
				t.Fatalf("SampleK produced out-of-range value %d", v)
			}
			if seen[v] {
				t.Fatalf("SampleK produced duplicate %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleKPanicsWhenKTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleK(k>n) did not panic")
		}
	}()
	New(1).SampleK(make([]int, 5), 3)
}

func TestSampleKUniform(t *testing.T) {
	// Each element of [0,10) should appear in a 5-subset with prob 1/2.
	r := New(37)
	counts := make([]int, 10)
	const trials = 20000
	dst := make([]int, 5)
	for i := 0; i < trials; i++ {
		r.SampleK(dst, 10)
		for _, v := range dst {
			counts[v]++
		}
	}
	for v, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-0.5) > 0.02 {
			t.Errorf("element %d sampled with rate %v, want ≈ 0.5", v, got)
		}
	}
}

func TestPowerLawDegrees(t *testing.T) {
	r := New(41)
	degs := r.PowerLawDegrees(10000, 2, 500, 2.5)
	if len(degs) != 10000 {
		t.Fatalf("len = %d", len(degs))
	}
	sum := 0
	for _, d := range degs {
		if d < 2 || d > 500+1 { // +1 allows the parity fix on degs[0]
			t.Fatalf("degree %d outside [2, 501]", d)
		}
		sum += d
	}
	if sum%2 != 0 {
		t.Errorf("degree sum %d is odd", sum)
	}
	// A power law with alpha 2.5 must be strongly skewed: the median should
	// sit at the minimum degree while the max is much larger.
	maxd := 0
	atMin := 0
	for _, d := range degs {
		if d > maxd {
			maxd = d
		}
		if d == 2 {
			atMin++
		}
	}
	if atMin < len(degs)/3 {
		t.Errorf("only %d/%d nodes at dmin; distribution not skewed", atMin, len(degs))
	}
	if maxd < 50 {
		t.Errorf("max degree %d too small for a power-law tail", maxd)
	}
}

func TestPowerLawDegreesPanics(t *testing.T) {
	r := New(1)
	cases := []struct {
		n, dmin, dmax int
		alpha         float64
	}{{10, 0, 5, 2.0}, {10, 3, 2, 2.0}, {10, 1, 5, 1.0}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PowerLawDegrees(%+v) did not panic", c)
				}
			}()
			r.PowerLawDegrees(c.n, c.dmin, c.dmax, c.alpha)
		}()
	}
	if got := r.PowerLawDegrees(0, 1, 5, 2.0); got != nil {
		t.Errorf("PowerLawDegrees(0,...) = %v, want nil", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, n8 uint8) bool {
		n := int(n8%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(53)
	z := r.NewZipf(1.5, 1, 1000)
	zeroes := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if z.Uint64() == 0 {
			zeroes++
		}
	}
	if zeroes < trials/4 {
		t.Errorf("Zipf(1.5) returned 0 only %d/%d times; expected heavy head", zeroes, trials)
	}
}
