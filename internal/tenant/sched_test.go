package tenant

import (
	"context"
	"sync"
	"testing"
	"time"
)

// grab acquires synchronously and fails the test on error.
func grab(t *testing.T, s *Scheduler, name string) func() {
	t.Helper()
	release, err := s.Acquire(context.Background(), name)
	if err != nil {
		t.Fatalf("Acquire(%s): %v", name, err)
	}
	return release
}

// enqueue starts an Acquire that is expected to block, returning a channel
// that yields the release function once granted.
func enqueue(s *Scheduler, name string) <-chan func() {
	ch := make(chan func(), 1)
	ready := make(chan struct{})
	go func() {
		close(ready)
		release, err := s.Acquire(context.Background(), name)
		if err == nil {
			ch <- release
		}
	}()
	<-ready
	// Wait for the waiter to be visibly queued (or granted) so test
	// ordering is deterministic.
	for i := 0; i < 1000; i++ {
		if s.Queued(name) > 0 || len(ch) > 0 || s.InFlight(name) > 0 {
			return ch
		}
		time.Sleep(time.Millisecond)
	}
	return ch
}

func granted(t *testing.T, ch <-chan func()) func() {
	t.Helper()
	select {
	case release := <-ch:
		return release
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not granted within 5s")
		return nil
	}
}

func notGranted(t *testing.T, ch <-chan func()) {
	t.Helper()
	select {
	case <-ch:
		t.Fatal("waiter granted, want queued")
	case <-time.After(50 * time.Millisecond):
	}
}

func regWith(t *testing.T, configs ...Config) *Registry {
	t.Helper()
	r := NewRegistry()
	for _, c := range configs {
		if _, err := r.Register(c); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// TestSchedulerAloneGetsWholePool: with no competing demand a tenant may
// hold every slot — the share bound only bites under contention.
func TestSchedulerAloneGetsWholePool(t *testing.T) {
	s := NewScheduler(4, regWith(t, Config{Name: "a"}))
	var releases []func()
	for i := 0; i < 4; i++ {
		releases = append(releases, grab(t, s, "a"))
	}
	if got := s.InFlight("a"); got != 4 {
		t.Fatalf("inflight = %d, want 4", got)
	}
	ch := enqueue(s, "a")
	notGranted(t, ch)
	releases[0]()
	release := granted(t, ch)
	release()
	for _, r := range releases[1:] {
		r()
	}
	if got := s.InFlight("a"); got != 0 {
		t.Fatalf("inflight after releases = %d", got)
	}
}

// TestSchedulerBoundedWait pins the headline guarantee: a greedy tenant
// holding the whole pool cannot make a newcomer wait more than one
// release — the moment the newcomer queues, the greedy tenant's share
// contracts and the next free slot is the newcomer's.
func TestSchedulerBoundedWait(t *testing.T) {
	s := NewScheduler(2, regWith(t, Config{Name: "greedy"}, Config{Name: "small"}))
	r1 := grab(t, s, "greedy")
	r2 := grab(t, s, "greedy")
	// Greedy queues 10 more runs; small queues one, last in line.
	var greedyQ []<-chan func()
	for i := 0; i < 10; i++ {
		greedyQ = append(greedyQ, enqueue(s, "greedy"))
	}
	smallQ := enqueue(s, "small")
	notGranted(t, smallQ)

	// One release: the freed slot must go to small (share(greedy) is now
	// 1 while it holds 1), not to any of greedy's 10 earlier waiters.
	r1()
	release := granted(t, smallQ)
	for _, q := range greedyQ {
		notGranted(t, q)
	}
	if got := s.InFlight("small"); got != 1 {
		t.Fatalf("small inflight = %d, want 1", got)
	}
	// Small leaves, greedy has the pool to itself again and drains FIFO.
	release()
	g1 := granted(t, greedyQ[0])
	r2()
	g2 := granted(t, greedyQ[1])
	g1()
	g2()
	for _, q := range greedyQ[2:] {
		granted(t, q)()
	}
}

// TestSchedulerRoundRobin: freed slots rotate across queueing tenants
// instead of draining one tenant's backlog first.
func TestSchedulerRoundRobin(t *testing.T) {
	s := NewScheduler(1, regWith(t, Config{Name: "a"}, Config{Name: "b"}))
	hold := grab(t, s, "a")
	a1 := enqueue(s, "a")
	a2 := enqueue(s, "a")
	b1 := enqueue(s, "b")

	// Release the held slot: with both tenants queued the rotation serves
	// a (next after the initial inline grant), then b, then a again.
	hold()
	ra1 := granted(t, a1)
	notGranted(t, b1)
	ra1()
	rb1 := granted(t, b1)
	notGranted(t, a2)
	rb1()
	granted(t, a2)()
}

// TestSchedulerWeightedShares: a weight-2 tenant stabilizes at twice the
// slots of a weight-1 tenant under saturation.
func TestSchedulerWeightedShares(t *testing.T) {
	s := NewScheduler(3, regWith(t, Config{Name: "big", Weight: 2}, Config{Name: "small", Weight: 1}))
	// Saturate both queues well beyond capacity.
	var bigQ, smallQ []<-chan func()
	for i := 0; i < 6; i++ {
		bigQ = append(bigQ, enqueue(s, "big"))
		smallQ = append(smallQ, enqueue(s, "small"))
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.InFlight("big") == 2 && s.InFlight("small") == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if b, sm := s.InFlight("big"), s.InFlight("small"); b != 2 || sm != 1 {
		t.Fatalf("steady-state slots big=%d small=%d, want 2/1", b, sm)
	}
	// Drain everything so goroutines exit.
	var mu sync.Mutex
	var rel []func()
	collect := func(chans []<-chan func()) {
		for _, ch := range chans {
			go func(ch <-chan func()) {
				r := granted(t, ch)
				mu.Lock()
				rel = append(rel, r)
				mu.Unlock()
				r()
			}(ch)
		}
	}
	collect(bigQ)
	collect(smallQ)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(rel)
		mu.Unlock()
		if n == 12 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("queued runs did not all complete")
}

// TestSchedulerCancelledWaiter: a cancelled Acquire leaves the queue and
// its would-be slot flows to the next waiter; a cancellation racing a
// grant returns the slot.
func TestSchedulerCancelledWaiter(t *testing.T) {
	s := NewScheduler(1, regWith(t, Config{Name: "a"}, Config{Name: "b"}))
	hold := grab(t, s, "a")

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, "a")
		errCh <- err
	}()
	for i := 0; i < 1000 && s.Queued("a") == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	b1 := enqueue(s, "b")
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("cancelled Acquire: err = %v", err)
	}
	hold()
	// The abandoned waiter must not absorb the slot: b gets it.
	granted(t, b1)()
	if got := s.InFlight("a"); got != 0 {
		t.Fatalf("a inflight = %d after cancellation", got)
	}
}

// TestSchedulerUnlimited: capacity <= 0 never blocks and still counts.
func TestSchedulerUnlimited(t *testing.T) {
	s := NewScheduler(0, NewRegistry())
	var releases []func()
	for i := 0; i < 50; i++ {
		releases = append(releases, grab(t, s, Default))
	}
	if got := s.InFlight(Default); got != 50 {
		t.Fatalf("inflight = %d, want 50", got)
	}
	for _, r := range releases {
		r()
	}
	if got := s.InFlight(Default); got != 0 {
		t.Fatalf("inflight after release = %d", got)
	}
}

// checkRingExact asserts the scheduler's structural invariant: every ring
// entry is unique and has a non-empty queue, and every non-empty queue has
// a ring entry.
func checkRingExact(t *testing.T, s *Scheduler) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := map[string]bool{}
	for _, name := range s.ring {
		if seen[name] {
			t.Fatalf("ring holds %q twice: %v", name, s.ring)
		}
		seen[name] = true
		if len(s.queues[name]) == 0 {
			t.Fatalf("ring entry %q has empty queue", name)
		}
	}
	for name, q := range s.queues {
		if len(q) > 0 && !seen[name] {
			t.Fatalf("tenant %q has %d waiters but no ring entry", name, len(q))
		}
	}
}

// TestSchedulerRingNoDuplicates pins the ring-duplication regression: a
// grant that empties a tenant's queue while the pool is full used to leave
// the stale ring entry behind, so the tenant's next Acquire appended the
// name a second time and doubled its round-robin weight forever.
func TestSchedulerRingNoDuplicates(t *testing.T) {
	s := NewScheduler(1, regWith(t, Config{Name: "a"}, Config{Name: "b"}))
	hold := grab(t, s, "a")
	q1 := enqueue(s, "a")
	// Release: pump grants q1 and empties a's queue with the pool full
	// again — exactly the state that used to strand a's ring entry.
	hold()
	r1 := granted(t, q1)
	checkRingExact(t, s)
	q2 := enqueue(s, "a")
	qb := enqueue(s, "b")
	checkRingExact(t, s)
	// Rotation must now alternate a, b — with a duplicated ring entry a
	// would be scanned twice per pass.
	r1()
	granted(t, q2)()
	granted(t, qb)()
	checkRingExact(t, s)
}

// TestSchedulerCancelClearsDemand: a cancelled waiter leaves the queue and
// the ring immediately, so it stops counting as demand in share() — it
// used to linger until a later grant pass swept it, transiently shrinking
// other tenants' shares on phantom demand.
func TestSchedulerCancelClearsDemand(t *testing.T) {
	s := NewScheduler(2, regWith(t, Config{Name: "a"}, Config{Name: "b"}))
	ra := grab(t, s, "a")
	rb := grab(t, s, "b")

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, "b")
		errCh <- err
	}()
	for i := 0; i < 1000 && s.Queued("b") == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.Queued("b") != 1 {
		t.Fatal("waiter never queued")
	}
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("cancelled Acquire: err = %v", err)
	}
	s.mu.Lock()
	_, stillQueued := s.queues["b"]
	ringLen := len(s.ring)
	s.mu.Unlock()
	if stillQueued || ringLen != 0 {
		t.Fatalf("cancelled waiter left residue: queues[b] present=%v ring=%d", stillQueued, ringLen)
	}
	checkRingExact(t, s)
	ra()
	rb()
}

// TestSchedulerWaitObserver: the observer fires once per successful
// Acquire — zero seconds for inline grants, elapsed wait for queued ones —
// and never for cancelled waiters.
func TestSchedulerWaitObserver(t *testing.T) {
	s := NewScheduler(1, regWith(t, Config{Name: "a"}))
	var mu sync.Mutex
	type obs struct {
		tenant  string
		seconds float64
	}
	var got []obs
	s.SetWaitObserver(func(tenant string, seconds float64) {
		mu.Lock()
		got = append(got, obs{tenant, seconds})
		mu.Unlock()
	})

	hold := grab(t, s, "a") // inline grant: 0s
	q := enqueue(s, "a")    // queued grant: >= 0s after a real wait
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Acquire(ctx, "a"); err == nil {
		t.Fatal("pre-cancelled Acquire succeeded")
	}

	hold()
	granted(t, q)()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("observer fired %d times, want 2: %v", len(got), got)
	}
	if got[0].tenant != "a" || got[0].seconds != 0 {
		t.Fatalf("inline grant observed as %+v, want a/0", got[0])
	}
	if got[1].tenant != "a" || got[1].seconds < 0.015 {
		t.Fatalf("queued grant observed as %+v, want a/>=15ms", got[1])
	}
}

// TestSchedulerCancelGrantRace is the targeted slot-leak probe: waiters
// park in Acquire's select while a separate goroutine fires their
// cancellation, so grants and cancellations land concurrently on live
// waiters (TestSchedulerStress only cancels before Acquire or after it
// returns). Worker goroutines keep slots churning so the pump is granting
// throughout. Under -race this is also the grant/cancel data-race suite.
// Invariant afterwards: zero slots held, zero waiters queued, exact ring.
func TestSchedulerCancelGrantRace(t *testing.T) {
	reg := regWith(t, Config{Name: "a", Weight: 2}, Config{Name: "b"}, Config{Name: "c"})
	s := NewScheduler(2, reg)
	names := []string{"a", "b", "c", Default}
	iters := 150
	if testing.Short() {
		iters = 40
	}
	var wg sync.WaitGroup
	// Workers: acquire, hold briefly, release — constant grant traffic.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				release, err := s.Acquire(context.Background(), names[(g+i)%len(names)])
				if err != nil {
					t.Errorf("worker Acquire: %v", err)
					return
				}
				if i%5 == 0 {
					time.Sleep(time.Microsecond)
				}
				release()
			}
		}(g)
	}
	// Cancellers: park in the select, then get cancelled from the side at
	// staggered delays so the cancellation races pump grants.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				done := make(chan struct{})
				go func(delay int) {
					if delay > 0 {
						time.Sleep(time.Duration(delay) * time.Microsecond)
					}
					cancel()
					close(done)
				}(i % 7)
				release, err := s.Acquire(ctx, names[(g+i)%len(names)])
				if err == nil {
					release()
				}
				<-done
			}
		}(g)
	}
	wg.Wait()
	for _, name := range names {
		if got := s.InFlight(name); got != 0 {
			t.Fatalf("tenant %s leaked %d slots", name, got)
		}
		if got := s.Queued(name); got != 0 {
			t.Fatalf("tenant %s left %d waiters queued", name, got)
		}
	}
	s.mu.Lock()
	total, ringLen := s.total, len(s.ring)
	s.mu.Unlock()
	if total != 0 {
		t.Fatalf("scheduler leaked %d total slots", total)
	}
	if ringLen != 0 {
		t.Fatalf("ring not drained: %d entries", ringLen)
	}
	checkRingExact(t, s)
}

// TestSchedulerStress hammers Acquire/release from many goroutines across
// tenants with random cancellations; run under -race this is the
// scheduler's data-race suite. Invariant at the end: no slots leak.
func TestSchedulerStress(t *testing.T) {
	reg := regWith(t, Config{Name: "a", Weight: 2}, Config{Name: "b"}, Config{Name: "c"})
	s := NewScheduler(4, reg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			names := []string{"a", "b", "c", Default}
			for i := 0; i < 50; i++ {
				name := names[(g+i)%len(names)]
				ctx, cancel := context.WithCancel(context.Background())
				if (g+i)%7 == 0 {
					cancel() // racing cancellation
				}
				release, err := s.Acquire(ctx, name)
				if err == nil {
					release()
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	for _, name := range []string{"a", "b", "c", Default} {
		if got := s.InFlight(name); got != 0 {
			t.Fatalf("tenant %s leaked %d slots", name, got)
		}
		if got := s.Queued(name); got != 0 {
			t.Fatalf("tenant %s left %d waiters queued", name, got)
		}
	}
	s.mu.Lock()
	total := s.total
	s.mu.Unlock()
	if total != 0 {
		t.Fatalf("scheduler leaked %d total slots", total)
	}
}

// TestSchedulerAcquireTraced: the per-call observer reports zero for inline
// grants and the elapsed wait for queued ones — the hook cmd/serve hangs a
// job's slot-wait trace span on.
func TestSchedulerAcquireTraced(t *testing.T) {
	s := NewScheduler(1, regWith(t, Config{Name: "a"}))
	inline := int64(-1)
	r1, err := s.AcquireTraced(context.Background(), "a", func(ns int64) { inline = ns })
	if err != nil {
		t.Fatal(err)
	}
	if inline != 0 {
		t.Fatalf("inline grant wait = %dns, want 0", inline)
	}

	done := make(chan int64, 1)
	go func() {
		r2, err := s.AcquireTraced(context.Background(), "a", func(ns int64) { done <- ns })
		if err != nil {
			t.Error(err)
			done <- -1
			return
		}
		r2()
	}()
	time.Sleep(20 * time.Millisecond)
	r1()
	if ns := <-done; ns < int64(15*time.Millisecond) {
		t.Fatalf("queued grant wait = %dns, want >= 15ms", ns)
	}
}
