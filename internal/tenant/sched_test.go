package tenant

import (
	"context"
	"sync"
	"testing"
	"time"
)

// grab acquires synchronously and fails the test on error.
func grab(t *testing.T, s *Scheduler, name string) func() {
	t.Helper()
	release, err := s.Acquire(context.Background(), name)
	if err != nil {
		t.Fatalf("Acquire(%s): %v", name, err)
	}
	return release
}

// enqueue starts an Acquire that is expected to block, returning a channel
// that yields the release function once granted.
func enqueue(s *Scheduler, name string) <-chan func() {
	ch := make(chan func(), 1)
	ready := make(chan struct{})
	go func() {
		close(ready)
		release, err := s.Acquire(context.Background(), name)
		if err == nil {
			ch <- release
		}
	}()
	<-ready
	// Wait for the waiter to be visibly queued (or granted) so test
	// ordering is deterministic.
	for i := 0; i < 1000; i++ {
		if s.Queued(name) > 0 || len(ch) > 0 || s.InFlight(name) > 0 {
			return ch
		}
		time.Sleep(time.Millisecond)
	}
	return ch
}

func granted(t *testing.T, ch <-chan func()) func() {
	t.Helper()
	select {
	case release := <-ch:
		return release
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not granted within 5s")
		return nil
	}
}

func notGranted(t *testing.T, ch <-chan func()) {
	t.Helper()
	select {
	case <-ch:
		t.Fatal("waiter granted, want queued")
	case <-time.After(50 * time.Millisecond):
	}
}

func regWith(t *testing.T, configs ...Config) *Registry {
	t.Helper()
	r := NewRegistry()
	for _, c := range configs {
		if _, err := r.Register(c); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// TestSchedulerAloneGetsWholePool: with no competing demand a tenant may
// hold every slot — the share bound only bites under contention.
func TestSchedulerAloneGetsWholePool(t *testing.T) {
	s := NewScheduler(4, regWith(t, Config{Name: "a"}))
	var releases []func()
	for i := 0; i < 4; i++ {
		releases = append(releases, grab(t, s, "a"))
	}
	if got := s.InFlight("a"); got != 4 {
		t.Fatalf("inflight = %d, want 4", got)
	}
	ch := enqueue(s, "a")
	notGranted(t, ch)
	releases[0]()
	release := granted(t, ch)
	release()
	for _, r := range releases[1:] {
		r()
	}
	if got := s.InFlight("a"); got != 0 {
		t.Fatalf("inflight after releases = %d", got)
	}
}

// TestSchedulerBoundedWait pins the headline guarantee: a greedy tenant
// holding the whole pool cannot make a newcomer wait more than one
// release — the moment the newcomer queues, the greedy tenant's share
// contracts and the next free slot is the newcomer's.
func TestSchedulerBoundedWait(t *testing.T) {
	s := NewScheduler(2, regWith(t, Config{Name: "greedy"}, Config{Name: "small"}))
	r1 := grab(t, s, "greedy")
	r2 := grab(t, s, "greedy")
	// Greedy queues 10 more runs; small queues one, last in line.
	var greedyQ []<-chan func()
	for i := 0; i < 10; i++ {
		greedyQ = append(greedyQ, enqueue(s, "greedy"))
	}
	smallQ := enqueue(s, "small")
	notGranted(t, smallQ)

	// One release: the freed slot must go to small (share(greedy) is now
	// 1 while it holds 1), not to any of greedy's 10 earlier waiters.
	r1()
	release := granted(t, smallQ)
	for _, q := range greedyQ {
		notGranted(t, q)
	}
	if got := s.InFlight("small"); got != 1 {
		t.Fatalf("small inflight = %d, want 1", got)
	}
	// Small leaves, greedy has the pool to itself again and drains FIFO.
	release()
	g1 := granted(t, greedyQ[0])
	r2()
	g2 := granted(t, greedyQ[1])
	g1()
	g2()
	for _, q := range greedyQ[2:] {
		granted(t, q)()
	}
}

// TestSchedulerRoundRobin: freed slots rotate across queueing tenants
// instead of draining one tenant's backlog first.
func TestSchedulerRoundRobin(t *testing.T) {
	s := NewScheduler(1, regWith(t, Config{Name: "a"}, Config{Name: "b"}))
	hold := grab(t, s, "a")
	a1 := enqueue(s, "a")
	a2 := enqueue(s, "a")
	b1 := enqueue(s, "b")

	// Release the held slot: with both tenants queued the rotation serves
	// a (next after the initial inline grant), then b, then a again.
	hold()
	ra1 := granted(t, a1)
	notGranted(t, b1)
	ra1()
	rb1 := granted(t, b1)
	notGranted(t, a2)
	rb1()
	granted(t, a2)()
}

// TestSchedulerWeightedShares: a weight-2 tenant stabilizes at twice the
// slots of a weight-1 tenant under saturation.
func TestSchedulerWeightedShares(t *testing.T) {
	s := NewScheduler(3, regWith(t, Config{Name: "big", Weight: 2}, Config{Name: "small", Weight: 1}))
	// Saturate both queues well beyond capacity.
	var bigQ, smallQ []<-chan func()
	for i := 0; i < 6; i++ {
		bigQ = append(bigQ, enqueue(s, "big"))
		smallQ = append(smallQ, enqueue(s, "small"))
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.InFlight("big") == 2 && s.InFlight("small") == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if b, sm := s.InFlight("big"), s.InFlight("small"); b != 2 || sm != 1 {
		t.Fatalf("steady-state slots big=%d small=%d, want 2/1", b, sm)
	}
	// Drain everything so goroutines exit.
	var mu sync.Mutex
	var rel []func()
	collect := func(chans []<-chan func()) {
		for _, ch := range chans {
			go func(ch <-chan func()) {
				r := granted(t, ch)
				mu.Lock()
				rel = append(rel, r)
				mu.Unlock()
				r()
			}(ch)
		}
	}
	collect(bigQ)
	collect(smallQ)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(rel)
		mu.Unlock()
		if n == 12 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("queued runs did not all complete")
}

// TestSchedulerCancelledWaiter: a cancelled Acquire leaves the queue and
// its would-be slot flows to the next waiter; a cancellation racing a
// grant returns the slot.
func TestSchedulerCancelledWaiter(t *testing.T) {
	s := NewScheduler(1, regWith(t, Config{Name: "a"}, Config{Name: "b"}))
	hold := grab(t, s, "a")

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, "a")
		errCh <- err
	}()
	for i := 0; i < 1000 && s.Queued("a") == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	b1 := enqueue(s, "b")
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("cancelled Acquire: err = %v", err)
	}
	hold()
	// The abandoned waiter must not absorb the slot: b gets it.
	granted(t, b1)()
	if got := s.InFlight("a"); got != 0 {
		t.Fatalf("a inflight = %d after cancellation", got)
	}
}

// TestSchedulerUnlimited: capacity <= 0 never blocks and still counts.
func TestSchedulerUnlimited(t *testing.T) {
	s := NewScheduler(0, NewRegistry())
	var releases []func()
	for i := 0; i < 50; i++ {
		releases = append(releases, grab(t, s, Default))
	}
	if got := s.InFlight(Default); got != 50 {
		t.Fatalf("inflight = %d, want 50", got)
	}
	for _, r := range releases {
		r()
	}
	if got := s.InFlight(Default); got != 0 {
		t.Fatalf("inflight after release = %d", got)
	}
}

// TestSchedulerStress hammers Acquire/release from many goroutines across
// tenants with random cancellations; run under -race this is the
// scheduler's data-race suite. Invariant at the end: no slots leak.
func TestSchedulerStress(t *testing.T) {
	reg := regWith(t, Config{Name: "a", Weight: 2}, Config{Name: "b"}, Config{Name: "c"})
	s := NewScheduler(4, reg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			names := []string{"a", "b", "c", Default}
			for i := 0; i < 50; i++ {
				name := names[(g+i)%len(names)]
				ctx, cancel := context.WithCancel(context.Background())
				if (g+i)%7 == 0 {
					cancel() // racing cancellation
				}
				release, err := s.Acquire(ctx, name)
				if err == nil {
					release()
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	for _, name := range []string{"a", "b", "c", Default} {
		if got := s.InFlight(name); got != 0 {
			t.Fatalf("tenant %s leaked %d slots", name, got)
		}
		if got := s.Queued(name); got != 0 {
			t.Fatalf("tenant %s left %d waiters queued", name, got)
		}
	}
	s.mu.Lock()
	total := s.total
	s.mu.Unlock()
	if total != 0 {
		t.Fatalf("scheduler leaked %d total slots", total)
	}
}
